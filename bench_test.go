// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 4). Run with:
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1_* covers the four SDFG categories × three optimal
// methods; BenchmarkTable2_* covers the industrial and synthetic CSDFGs ×
// three methods (with and without buffer bounds); BenchmarkFig* covers the
// figure reproductions; BenchmarkAblation* covers the design choices
// called out in DESIGN.md. Absolute numbers are machine-specific — the
// shapes to check are recorded in EXPERIMENTS.md.
package kiter_test

import (
	"math/rand"
	"sync"
	"testing"

	"kiter/internal/bench"
	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/mcr"
	"kiter/internal/rat"
	"kiter/internal/sizing"
	"kiter/internal/symbexec"
)

// Benchmark-scale knobs: a handful of graphs per random category keeps a
// full -bench=. run in minutes; cmd/benchtables scales to paper-size
// suites via flags.
const (
	benchMimic       = 5
	benchLgHSDF      = 5
	benchLgTransient = 5
	benchSeed        = 1
	benchSymBudget   = 1_000_000
)

var (
	suiteOnce   sync.Once
	suiteCache  []gen.Suite
	table2Once  sync.Once
	table2Cache map[string]*csdf.Graph
)

func table1Suites() []gen.Suite {
	suiteOnce.Do(func() {
		suiteCache = bench.Table1Suites(benchMimic, benchLgHSDF, benchLgTransient, benchSeed)
	})
	return suiteCache
}

// table2Graphs builds (once) the unbounded and bounded stand-ins small
// enough to benchmark repeatedly.
func table2Graphs(tb testing.TB) map[string]*csdf.Graph {
	table2Once.Do(func() {
		table2Cache = map[string]*csdf.Graph{}
		for _, spec := range gen.IndustrialSpecs() {
			g, err := gen.Industrial(spec)
			if err != nil {
				continue
			}
			table2Cache[spec.Name] = g
			if spec.Tasks <= 300 { // bounded variants: skip the heaviest
				if b, err := gen.IndustrialBounded(spec); err == nil {
					table2Cache[spec.Name+"+buffers"] = b
				}
			}
		}
		for _, spec := range gen.SyntheticSpecs()[:3] { // graph1..graph3
			if b, err := gen.IndustrialBounded(spec); err == nil {
				table2Cache[spec.Name] = b
			}
		}
	})
	if len(table2Cache) == 0 {
		tb.Fatal("no table 2 graphs generated")
	}
	return table2Cache
}

func benchMethodOnSuite(b *testing.B, graphs []*csdf.Graph, m bench.Method) {
	lim := bench.Limits{SymbolicMaxEvents: benchSymBudget}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			out := bench.Run(g, m, lim)
			if out.Err != nil && !out.Skipped {
				b.Fatalf("%s on %s: %v", m, g.Name, out.Err)
			}
		}
	}
}

// --- Table 1: SDFG categories × optimal methods -------------------------

func BenchmarkTable1(b *testing.B) {
	for _, suite := range table1Suites() {
		for _, m := range []bench.Method{bench.MethodKIter, bench.MethodExpansion, bench.MethodSymbolic} {
			suite, m := suite, m
			b.Run(suite.Name+"/"+string(m), func(b *testing.B) {
				benchMethodOnSuite(b, suite.Graphs, m)
			})
		}
	}
}

// --- Table 2: CSDFG applications × methods ------------------------------

func BenchmarkTable2(b *testing.B) {
	graphs := table2Graphs(b)
	// Stable presentation order.
	names := []string{
		"BlackScholes", "Echo", "JPEG2000", "Pdetect", "H264Enc",
		"BlackScholes+buffers", "Echo+buffers", "JPEG2000+buffers", "Pdetect+buffers",
		"graph1", "graph2", "graph3",
	}
	for _, name := range names {
		g, ok := graphs[name]
		if !ok {
			continue
		}
		for _, m := range []bench.Method{bench.MethodPeriodic, bench.MethodKIter, bench.MethodSymbolic} {
			g, m := g, m
			b.Run(name+"/"+string(m), func(b *testing.B) {
				lim := bench.Limits{SymbolicMaxEvents: benchSymBudget}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out := bench.Run(g, m, lim)
					_ = out // N/S and budget outcomes are legitimate rows
				}
			})
		}
	}
}

// --- Figures -------------------------------------------------------------

// BenchmarkFig2RepetitionVector covers the consistency analysis of the
// running example (Figure 2).
func BenchmarkFig2RepetitionVector(b *testing.B) {
	g := gen.Figure2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.RepetitionVector(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3SymbolicASAP regenerates the self-timed schedule prefix of
// Figure 3.
func BenchmarkFig3SymbolicASAP(b *testing.B) {
	g := gen.Figure2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := symbexec.Simulate(g, 26); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4EvaluateK evaluates the fixed-K schedule of Figure 4 (the
// optimal periodicity vector of the running example).
func BenchmarkFig4EvaluateK(b *testing.B) {
	g := gen.Figure2()
	q, err := g.RepetitionVector()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kperiodic.EvaluateK(g, q, kperiodic.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5BivaluedGraph constructs the bi-valued graph of Figure 5.
func BenchmarkFig5BivaluedGraph(b *testing.B) {
	g := gen.Figure2()
	K := []int64{1, 1, 1, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := kperiodic.BivaluedGraph(g, K, kperiodic.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) --------------------------------------------

// BenchmarkAblationCertification isolates the cost of the exact
// certification pass on top of the float64 Howard fast path.
func BenchmarkAblationCertification(b *testing.B) {
	suites := table1Suites()
	for _, mode := range []struct {
		name string
		opt  kperiodic.Options
	}{
		{"certified", kperiodic.Options{}},
		{"float-only", kperiodic.Options{SkipCertify: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, g := range suites[0].Graphs { // ActualDSP
					if _, err := kperiodic.KIter(g, mode.opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationKUpdate compares the paper's lcm periodicity update
// with the jump-to-q ablation (FullUpdate).
func BenchmarkAblationKUpdate(b *testing.B) {
	graphs := []*csdf.Graph{gen.Figure2(), gen.MultiRateCycle(), gen.CyclicCSDF(), gen.SampleRateConverter()}
	for _, mode := range []struct {
		name string
		opt  kperiodic.Options
	}{
		{"lcm-update", kperiodic.Options{}},
		{"full-update", kperiodic.Options{FullUpdate: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, g := range graphs {
					if _, err := kperiodic.KIter(g, mode.opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationMCREngine compares the three MCRP engines on random
// strongly-connected bi-valued graphs: Howard+certification (the default),
// the float-free exact refinement loop, and Karp's max cycle mean on the
// unit-time special case.
func BenchmarkAblationMCREngine(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	mkGraph := func(n int, unitH bool) *mcr.Graph {
		g := mcr.New(n)
		for i := 0; i < n; i++ {
			h := rat.FromInt(1)
			if !unitH {
				h = rat.NewRat(1+rng.Int63n(9), 1+rng.Int63n(7))
			}
			g.AddArc(i, (i+1)%n, rng.Int63n(50), h)
		}
		for e := 0; e < 3*n; e++ {
			h := rat.FromInt(1)
			if !unitH {
				h = rat.NewRat(1+rng.Int63n(9), 1+rng.Int63n(7))
			}
			g.AddArc(rng.Intn(n), rng.Intn(n), rng.Int63n(50), h)
		}
		return g
	}
	ratGraph := mkGraph(200, false)
	unitGraph := mkGraph(200, true)
	b.Run("howard-certified", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mcr.Solve(ratGraph, mcr.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("howard-float", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mcr.Solve(ratGraph, mcr.Options{SkipCertify: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-refinement", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mcr.SolveExact(ratGraph); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("karp-unit-time", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mcr.MaxCycleMean(unitGraph); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBufferSizing covers the sizing extension: throughput-preserving
// per-buffer capacities on the running example.
func BenchmarkBufferSizing(b *testing.B) {
	g := gen.Figure2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := sizing.OptimalCapacities(g, kperiodic.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
