package kiter_test

import (
	"bytes"
	"strings"
	"testing"

	"kiter"
)

func TestFacadeQuickstart(t *testing.T) {
	g := kiter.NewGraph("pipeline")
	a := g.AddTask("A", []int64{1, 2})
	b := g.AddSDFTask("B", 3)
	g.AddBuffer("ab", a, b, []int64{2, 1}, []int64{1}, 0)
	res, err := kiter.Throughput(g)
	if err != nil {
		t.Fatal(err)
	}
	// q = [1, 3]: task bounds are 3 (A) and 9 (B); no feedback, so Ω = 9.
	if res.Period.String() != "9" {
		t.Errorf("Ω = %s, want 9", res.Period)
	}
	if !res.Optimal || !res.Certified {
		t.Error("facade result not optimal/certified")
	}
}

func TestFacadeFigure2(t *testing.T) {
	g := kiter.Figure2()
	res, err := kiter.Throughput(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period.String() != "13" {
		t.Errorf("Ω = %s, want 13", res.Period)
	}
	p, err := kiter.ThroughputPeriodic(g, kiter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Period.String() != "18" {
		t.Errorf("periodic Ω = %s, want 18", p.Period)
	}
	e, err := kiter.ThroughputExpansion(g, kiter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Period.Cmp(res.Period) != 0 {
		t.Error("expansion disagrees with K-Iter")
	}
	sym, err := kiter.ThroughputSymbolic(g, kiter.SymbolicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Period.Cmp(res.Period) != 0 {
		t.Error("symbolic execution disagrees with K-Iter")
	}
}

func TestFacadeScheduleAndGantt(t *testing.T) {
	g := kiter.Figure2()
	res, err := kiter.Throughput(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := kiter.BuildSchedule(g, res.K, kiter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, 2); err != nil {
		t.Fatal(err)
	}
	out := kiter.GanttFromSchedule(g, s, 1, "fig4").Render(80)
	if !strings.Contains(out, "fig4") {
		t.Error("gantt render missing title")
	}
	lat := kiter.IterationLatency(g, s)
	if lat.Sign() <= 0 {
		t.Error("non-positive latency")
	}
	trace, dead, err := kiter.Simulate(g, 26)
	if err != nil || dead {
		t.Fatalf("simulate: %v dead=%v", err, dead)
	}
	out = kiter.GanttFromTrace(g, trace, "fig3").Render(80)
	if !strings.Contains(out, "fig3") {
		t.Error("trace gantt missing title")
	}
}

func TestFacadeSizing(t *testing.T) {
	g := kiter.Figure2()
	caps, period, err := kiter.OptimalCapacities(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != g.NumBuffers() || period.Sign() <= 0 {
		t.Error("bad sizing result")
	}
	points, err := kiter.BufferTradeOff(g, []int64{1, 4})
	if err != nil || len(points) != 2 {
		t.Fatalf("trade-off: %v (%d points)", err, len(points))
	}
	scale, err := kiter.MinUniformScale(g, period, 32)
	if err != nil {
		t.Fatal(err)
	}
	if scale < 1 {
		t.Error("bad scale")
	}
}

func TestFacadeIO(t *testing.T) {
	g := kiter.Figure2()
	var buf bytes.Buffer
	if err := kiter.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := kiter.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() {
		t.Error("JSON round trip lost tasks")
	}
	buf.Reset()
	if err := kiter.WriteXML(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := kiter.ReadXML(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRats(t *testing.T) {
	if kiter.NewRat(6, 4).String() != "3/2" {
		t.Error("NewRat broken")
	}
	if kiter.IntRat(7).String() != "7" {
		t.Error("IntRat broken")
	}
}

func TestFacadeSampleRateConverter(t *testing.T) {
	g := kiter.SampleRateConverter()
	res, err := kiter.Throughput(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period.Sign() <= 0 {
		t.Error("bad period")
	}
}
