// Metamorphic and property-based tests tying the analyses together: known
// scaling laws of dataflow throughput must hold across every engine. These
// complement the per-package unit tests and the symbolic-execution
// cross-validation in internal/gen.
package kiter_test

import (
	"math/rand"
	"testing"

	"kiter"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/mcr"
	"kiter/internal/rat"
	"kiter/internal/symbexec"
)

// scaleDurations multiplies every phase duration by c.
func scaleDurations(g *csdf.Graph, c int64) *csdf.Graph {
	out := g.Clone()
	for _, t := range out.Tasks() {
		for p := range t.Durations {
			out.Task(t.ID).Durations[p] *= c
		}
	}
	return out
}

// TestPropertyDurationScaling: multiplying all durations by c multiplies
// the optimal period by exactly c (time-rescaling invariance), for both
// K-Iter and symbolic execution.
func TestPropertyDurationScaling(t *testing.T) {
	for seed := int64(300); seed < 312; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := kperiodic.KIter(g, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		const c = 3
		scaled := scaleDurations(g, c)
		got, err := kperiodic.KIter(scaled, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := base.Period.Mul(rat.FromInt(c))
		if got.Period.Cmp(want) != 0 {
			t.Errorf("seed %d: Ω(3·d) = %s, want 3·Ω(d) = %s", seed, got.Period, want)
		}
		sym, err := symbexec.Run(scaled, symbexec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sym.Period.Cmp(want) != 0 {
			t.Errorf("seed %d: symbolic Ω(3·d) = %s, want %s", seed, sym.Period, want)
		}
	}
}

// TestPropertyTokenMonotonicity: adding initial tokens to any buffer can
// only relax the schedule, so the optimal period never increases.
func TestPropertyTokenMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for seed := int64(320); seed < 332; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := kperiodic.KIter(g, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		relaxed := g.Clone()
		bid := csdf.BufferID(rng.Intn(relaxed.NumBuffers()))
		relaxed.Buffer(bid).Initial += 1 + rng.Int63n(5)
		got, err := kperiodic.KIter(relaxed, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Period.Cmp(base.Period) > 0 {
			t.Errorf("seed %d: adding tokens increased Ω from %s to %s",
				seed, base.Period, got.Period)
		}
	}
}

// TestPropertyKRefinement: refining the periodicity vector component-wise
// (K → m·K) can only improve the fixed-K bound (the schedule space grows).
func TestPropertyKRefinement(t *testing.T) {
	for seed := int64(340); seed < 352; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			t.Fatal(err)
		}
		q, err := g.RepetitionVector()
		if err != nil {
			t.Fatal(err)
		}
		K1 := make([]int64, len(q))
		K2 := make([]int64, len(q))
		for i := range q {
			K1[i] = 1
			K2[i] = 2
		}
		e1, err := kperiodic.EvaluateK(g, K1, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e2, err := kperiodic.EvaluateK(g, K2, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e2.Period.Cmp(e1.Period) > 0 {
			t.Errorf("seed %d: Ω(K=2) = %s exceeds Ω(K=1) = %s",
				seed, e2.Period, e1.Period)
		}
		// And the optimum lower-bounds every fixed-K evaluation.
		opt, err := kperiodic.KIter(g, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Period.Cmp(e2.Period) > 0 {
			t.Errorf("seed %d: optimal Ω = %s exceeds Ω(K=2) = %s",
				seed, opt.Period, e2.Period)
		}
	}
}

// TestPropertyMCRScaling: scaling all costs by c scales the ratio by c;
// scaling all times by c divides it by c.
func TestPropertyMCRScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		type arcSpec struct {
			from, to int
			l        int64
			h        rat.Rat
		}
		var arcs []arcSpec
		for i := 0; i < n; i++ {
			arcs = append(arcs, arcSpec{i, (i + 1) % n, rng.Int63n(20), rat.NewRat(1+rng.Int63n(6), 1+rng.Int63n(4))})
		}
		for e := rng.Intn(n); e > 0; e-- {
			arcs = append(arcs, arcSpec{rng.Intn(n), rng.Intn(n), rng.Int63n(20), rat.NewRat(1+rng.Int63n(6), 1+rng.Int63n(4))})
		}
		build := func(lScale int64, hScale rat.Rat) *mcr.Graph {
			g := mcr.New(n)
			for _, a := range arcs {
				g.AddArc(a.from, a.to, a.l*lScale, a.h.Mul(hScale))
			}
			return g
		}
		base, err := mcr.Solve(build(1, rat.FromInt(1)), mcr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		costScaled, err := mcr.Solve(build(5, rat.FromInt(1)), mcr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if costScaled.Ratio.Cmp(base.Ratio.Mul(rat.FromInt(5))) != 0 {
			t.Errorf("trial %d: 5·L ratio = %s, want %s", trial, costScaled.Ratio,
				base.Ratio.Mul(rat.FromInt(5)))
		}
		timeScaled, err := mcr.Solve(build(1, rat.FromInt(4)), mcr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if timeScaled.Ratio.Cmp(base.Ratio.Div(rat.FromInt(4))) != 0 {
			t.Errorf("trial %d: 4·H ratio = %s, want %s", trial, timeScaled.Ratio,
				base.Ratio.Div(rat.FromInt(4)))
		}
	}
}

// TestPropertyRoundTripStability: serializing to JSON and XML and back
// never changes any analysis result.
func TestPropertyRoundTripStability(t *testing.T) {
	for seed := int64(360); seed < 368; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := kperiodic.KIter(g, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ext := range []string{"json", "xml"} {
			path := t.TempDir() + "/g." + ext
			if err := kiter.WriteFile(path, g); err != nil {
				t.Fatal(err)
			}
			back, err := kiter.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := kperiodic.KIter(back, kperiodic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Period.Cmp(want.Period) != 0 {
				t.Errorf("seed %d %s: Ω changed from %s to %s", seed, ext, want.Period, got.Period)
			}
		}
	}
}

// TestPropertySimulationMatchesSchedulePrefix: the throughput reached by
// the ASAP simulation over a long horizon approaches the analytical
// optimum from below (Little's-law style sanity bound).
func TestPropertySimulationConvergence(t *testing.T) {
	g := gen.Figure2()
	res, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	horizon := int64(2000)
	trace, dead, err := symbexec.Simulate(g, horizon)
	if err != nil || dead {
		t.Fatalf("simulate: %v dead=%v", err, dead)
	}
	// Count completed iterations of task D (q_D = 1): each firing of D is
	// one graph iteration.
	var dFirings int64
	for _, f := range trace {
		if g.Task(f.Task).Name == "D" {
			dFirings++
		}
	}
	// Over `horizon` time units at Ω = 13, roughly horizon/13 iterations
	// complete; allow the transient a ±2 margin.
	expect := horizon/13 - 2
	if dFirings < expect {
		t.Errorf("D fired %d times in %d units, expected ≥ %d (Ω = %s)",
			dFirings, horizon, expect, res.Period)
	}
	if dFirings > horizon/13+2 {
		t.Errorf("D fired %d times, faster than the proven optimum Ω = %s",
			dFirings, res.Period)
	}
}
