// Videopipeline models an H.264-style encoder front end as a CSDF graph —
// the kind of industrial application (H264 Encoder, 665 tasks in the
// paper's Table 2) whose throughput motivated K-Iter. This scaled-down
// version keeps the characteristic structure: macroblock-phased tasks, a
// reference-frame feedback loop, and bounded buffers between pipeline
// stages.
//
// Run with: go run ./examples/videopipeline
package main

import (
	"errors"
	"fmt"
	"log"

	"kiter"
)

func main() {
	const mbPerFrame = 16 // macroblocks per (tiny) frame

	g := kiter.NewGraph("video-encoder")
	// The camera emits one frame per firing.
	camera := g.AddSDFTask("camera", 10)
	// Motion estimation processes macroblocks in two phases: load (fast)
	// and search (slow), 8 MB pairs per frame.
	me := g.AddTask("motion-est", []int64{2, 6})
	// Transform+quantize runs per macroblock.
	tq := g.AddSDFTask("transform", 3)
	// Entropy coding consumes a whole frame's macroblocks in one firing.
	ec := g.AddSDFTask("entropy", 20)
	// The reconstruction loop feeds reference macroblocks back to motion
	// estimation (one frame of reference data circulates).
	recon := g.AddSDFTask("recon", 4)

	g.AddBuffer("frames", camera, me, []int64{mbPerFrame}, []int64{1, 1}, 0)
	g.AddBuffer("mbs", me, tq, []int64{1, 1}, []int64{1}, 0)
	g.AddBuffer("coeffs", tq, ec, []int64{1}, []int64{mbPerFrame}, 0)
	g.AddBuffer("to-recon", tq, recon, []int64{1}, []int64{1}, 0)
	// Motion estimation consumes two reference macroblocks in its search
	// phase (q_me·2 = q_recon·1 keeps the loop balanced).
	g.AddBuffer("reference", recon, me, []int64{1}, []int64{0, 2}, mbPerFrame)
	// Rate-control credits: entropy coding paces the camera.
	g.AddBuffer("rate-ctl", ec, camera, []int64{1}, []int64{1}, 2)

	q, err := g.RepetitionVector()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline repetition vector q = %v\n", q)

	res, err := kiter.Throughput(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbounded buffers: Ω = %s time units per frame-iteration (throughput %s)\n",
		res.Period, res.Throughput)

	// Size the buffers without losing throughput.
	caps, optimal, err := kiter.OptimalCapacities(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthroughput-preserving buffer sizes:")
	var total int64
	for i, b := range g.Buffers() {
		fmt.Printf("  %-10s capacity %4d tokens\n", b.Name, caps[i])
		total += caps[i]
	}
	fmt.Printf("  total %d tokens, period still %s\n", total, optimal)

	// What happens under tighter memory? Explore the trade-off.
	fmt.Println("\nuniform capacity scale → period:")
	points, err := kiter.BufferTradeOff(g, []int64{1, 2, 3, 4, 6, 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range points {
		if pt.Deadlocked {
			fmt.Printf("  scale %2d: %6d tokens  → deadlock\n", pt.Scale, pt.TotalCapacity)
			continue
		}
		fmt.Printf("  scale %2d: %6d tokens  → Ω = %s\n", pt.Scale, pt.TotalCapacity, pt.Period)
	}

	// Apply the tightest uniform scale that keeps the optimum.
	scale, err := kiter.MinUniformScale(g, res.Period, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsmallest uniform scale preserving Ω = %s: %d\n", res.Period, scale)

	// Demonstrate the deadlock certificate on an over-tight sizing.
	tight := g.ScaleCapacities(1)
	bounded, err := tight.WithCapacities()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := kiter.Throughput(bounded); err != nil {
		var dead *kiter.DeadlockError
		if errors.As(err, &dead) {
			fmt.Printf("scale 1 deadlocks; certificate circuit over tasks %v\n", dead.Tasks)
		} else {
			fmt.Printf("scale 1: %v\n", err)
		}
	} else {
		fmt.Println("scale 1 remains schedulable")
	}
}
