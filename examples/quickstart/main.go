// Quickstart: build a small cyclo-static dataflow graph, evaluate its exact
// maximum throughput with K-Iter, compare against the baselines, and print
// an optimal schedule.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kiter"
)

func main() {
	// A producer/worker/consumer pipeline with a feedback credit loop.
	// The worker is cyclo-static: it alternates a cheap setup phase (1
	// token in, nothing out) and an expensive compute phase (1 token in,
	// 2 tokens out).
	g := kiter.NewGraph("quickstart")
	producer := g.AddSDFTask("producer", 2)
	worker := g.AddTask("worker", []int64{1, 4})
	consumer := g.AddSDFTask("consumer", 3)
	g.AddBuffer("in", producer, worker, []int64{1}, []int64{1, 1}, 0)
	g.AddBuffer("out", worker, consumer, []int64{0, 2}, []int64{1}, 0)
	// Credit loop: the consumer returns one credit per token, the
	// producer needs a credit per firing; 4 credits are in flight.
	g.AddBuffer("credits", consumer, producer, []int64{1}, []int64{1}, 4)

	q, err := g.RepetitionVector()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %s, repetition vector q = %v\n", g.Name, q)

	// Exact maximum throughput (K-Iter, Algorithm 1 of the paper).
	res, err := kiter.Throughput(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K-Iter:    Ω = %-6s (throughput %s iterations/time unit)"+
		" — converged in %d iterations at K = %v, certified optimal = %v\n",
		res.Period, res.Throughput, res.Iterations, res.K, res.Optimal)

	// The 1-periodic approximation can be pessimistic.
	p, err := kiter.ThroughputPeriodic(g, kiter.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("periodic:  Ω = %-6s (lower bound on throughput; tight here: %v)\n",
		p.Period, p.Period.Cmp(res.Period) == 0)

	// Symbolic execution confirms the result the expensive way.
	sym, err := kiter.ThroughputSymbolic(g, kiter.SymbolicOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symbolic:  Ω = %-6s (state-space baseline; %d events)\n",
		sym.Period, sym.Events)

	// Materialize and validate an optimal schedule, then draw it.
	s, err := kiter.BuildSchedule(g, res.K, kiter.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(g, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(kiter.GanttFromSchedule(g, s, 2, "optimal K-periodic schedule (2 iterations)").Render(100))
	fmt.Printf("first-iteration latency: %s time units\n", kiter.IterationLatency(g, s))
}
