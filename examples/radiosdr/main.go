// Radiosdr analyses a software-defined-radio chain: the classical CD-to-DAT
// sample-rate converter (44.1 kHz → 48 kHz in four polyphase stages), the
// flagship multirate SDF application. It shows why multirate graphs need
// K-periodic analysis: the repetition vector is highly non-uniform
// (q = [147, 147, 98, 28, 32, 160]), so 1-periodic schedules can be far
// from the self-timed optimum on constrained variants.
//
// Run with: go run ./examples/radiosdr
package main

import (
	"fmt"
	"log"

	"kiter"
)

func main() {
	g := kiter.SampleRateConverter()
	q, err := g.RepetitionVector()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample-rate converter, q = %v\n", q)
	for _, b := range g.Buffers() {
		fmt.Printf("  %-4s %s: %v -> %v\n", b.Name,
			g.Task(b.Src).Name+"→"+g.Task(b.Dst).Name, b.In, b.Out)
	}

	// Exact throughput of the unconstrained chain.
	res, err := kiter.Throughput(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunbounded: Ω = %s per full conversion block (throughput %s)\n",
		res.Period, res.Throughput)

	// The ASAP warm-up: watch the first samples flow.
	trace, dead, err := kiter.Simulate(g, 40)
	if err != nil || dead {
		log.Fatalf("simulate: %v dead=%v", err, dead)
	}
	fmt.Println()
	fmt.Print(kiter.GanttFromTrace(g, trace, "self-timed warm-up (first 40 time units)").Render(110))

	// Constrain the inter-stage FIFOs to hardware-realistic sizes and
	// compare the approximate periodic method with the exact optimum.
	for i, b := range g.Buffers() {
		g.SetCapacity(kiter.BufferID(i), 4*(b.TotalIn()+b.TotalOut()))
	}
	bounded, err := g.WithCapacities()
	if err != nil {
		log.Fatal(err)
	}
	exact, err := kiter.Throughput(bounded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bounded FIFOs: exact Ω = %s, converged at K = %v in %d iterations\n",
		exact.Period, exact.K, exact.Iterations)
	approx, err := kiter.ThroughputPeriodic(bounded, kiter.Options{})
	if err != nil {
		fmt.Printf("bounded FIFOs: 1-periodic method finds no schedule (%v)\n", err)
	} else {
		pct := exact.Period.Div(approx.Period).Mul(kiter.IntRat(100))
		fmt.Printf("bounded FIFOs: 1-periodic Ω = %s (%s%% of optimal throughput)\n",
			approx.Period, pct.Format(1))
	}

	// Latency of one conversion block under the optimal schedule.
	s, err := kiter.BuildSchedule(bounded, exact.K, kiter.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(bounded, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first-block latency under the optimal schedule: %s time units\n",
		kiter.IterationLatency(bounded, s))
}
