// Buffersizing explores the throughput/buffering trade-off on the paper's
// running example (Figure 2): how small can the buffers get before the
// throughput degrades, and where is the deadlock cliff? This is the
// design-space-exploration use case for which fast exact throughput
// evaluation matters (Section 5 of the paper).
//
// Run with: go run ./examples/buffersizing
package main

import (
	"fmt"
	"log"
	"strings"

	"kiter"
)

func main() {
	g := kiter.Figure2()
	fmt.Printf("graph: %s\n", g.ComputeStats())

	unbounded, err := kiter.Throughput(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbounded optimum: Ω = %s\n\n", unbounded.Period)

	// Sweep uniform capacity scales and plot the trade-off curve.
	scales := []int64{1, 2, 3, 4, 5, 6, 8}
	points, err := kiter.BufferTradeOff(g, scales)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("capacity scale → total tokens → period (bar ∝ throughput):")
	for _, pt := range points {
		if pt.Deadlocked {
			fmt.Printf("  scale %2d %6d tokens   deadlock\n", pt.Scale, pt.TotalCapacity)
			continue
		}
		// Bar length proportional to throughput (1/Ω), normalized to the
		// unbounded optimum.
		ratio := unbounded.Period.Div(pt.Period).Float() // ≤ 1
		bar := strings.Repeat("█", int(ratio*40+0.5))
		fmt.Printf("  scale %2d %6d tokens   Ω = %-8s %s\n",
			pt.Scale, pt.TotalCapacity, pt.Period, bar)
	}

	// Per-buffer sizing from an optimal schedule beats uniform scaling.
	caps, period, err := kiter.OptimalCapacities(g)
	if err != nil {
		log.Fatal(err)
	}
	var total int64
	fmt.Println("\nschedule-derived per-buffer capacities (throughput preserved):")
	for i, b := range g.Buffers() {
		fmt.Printf("  %-6s %4d tokens\n", b.Name, caps[i])
		total += caps[i]
	}
	fmt.Printf("  total %d tokens at Ω = %s\n", total, period)

	// Find the smallest uniform scale matching a relaxed target: allow
	// 50%% more period than optimal.
	target := unbounded.Period.Mul(kiter.NewRat(3, 2))
	scale, err := kiter.MinUniformScale(g, target, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsmallest uniform scale with Ω ≤ %s: %d\n", target, scale)

	// Verify the sized graph against the exact symbolic-execution oracle.
	sizedGraph := g.ScaleCapacities(scale)
	bounded, err := sizedGraph.WithCapacities()
	if err != nil {
		log.Fatal(err)
	}
	analytic, err := kiter.Throughput(bounded)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := kiter.ThroughputSymbolic(bounded, kiter.SymbolicOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-check at scale %d: K-Iter Ω = %s, symbolic Ω = %s, agree = %v\n",
		scale, analytic.Period, oracle.Period, analytic.Period.Cmp(oracle.Period) == 0)
}
