// Package bench is the shared harness behind the Table 1 / Table 2
// reproductions: it runs each throughput method on each benchmark graph
// with guard rails (symbolic-execution budgets, expansion size caps) and
// aggregates the statistics the paper reports (task/channel/Σq min-avg-max,
// per-method mean runtimes, optimality percentages).
package bench

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
	"kiter/internal/symbexec"
)

// Method selects a throughput evaluation technique.
type Method string

const (
	// MethodKIter is the paper's contribution (Algorithm 1).
	MethodKIter Method = "kiter"
	// MethodPeriodic is the 1-periodic approximate method [4].
	MethodPeriodic Method = "periodic"
	// MethodExpansion is the K = q full expansion (the optimal baseline
	// class of [6, 10] in Table 1).
	MethodExpansion Method = "expansion"
	// MethodSymbolic is symbolic execution [8, 16].
	MethodSymbolic Method = "symbolic"
)

// Methods lists all techniques in presentation order.
func Methods() []Method {
	return []Method{MethodPeriodic, MethodKIter, MethodExpansion, MethodSymbolic}
}

// Limits guards against the methods' exponential blow-ups.
type Limits struct {
	// SymbolicMaxEvents bounds symbolic execution (0 = engine default).
	SymbolicMaxEvents int64
	// ExpansionMaxNodes skips the K = q evaluation when the expanded
	// bi-valued graph would exceed this node count (0 = 2 000 000).
	ExpansionMaxNodes int64
	// KIterMaxNodes / KIterMaxPairs abort a K-Iter (or periodic) run
	// whose bi-valued graph outgrows the budget — the analogue of the
	// paper's "> 1 day" rows (0 = 2 000 000 nodes / 50 000 000 pairs).
	KIterMaxNodes int64
	KIterMaxPairs int64
}

const (
	defaultExpansionMaxNodes = 2_000_000
	defaultKIterMaxNodes     = 2_000_000
	defaultKIterMaxPairs     = 50_000_000
)

func (l Limits) kiterOptions() kperiodic.Options {
	opt := kperiodic.Options{MaxNodes: l.KIterMaxNodes, MaxPairs: l.KIterMaxPairs}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = defaultKIterMaxNodes
	}
	if opt.MaxPairs <= 0 {
		opt.MaxPairs = defaultKIterMaxPairs
	}
	return opt
}

// Outcome is one (graph, method) measurement.
type Outcome struct {
	Period  rat.Rat
	Err     error
	Elapsed time.Duration
	Skipped bool // guard rail prevented the run
}

// ErrTooLarge marks an expansion skipped by the node-count guard.
var ErrTooLarge = errors.New("bench: expansion would exceed the node budget")

// Run evaluates one graph with one method under the guard rails.
func Run(g *csdf.Graph, m Method, lim Limits) Outcome {
	switch m {
	case MethodKIter:
		start := time.Now()
		res, err := kperiodic.KIter(g, lim.kiterOptions())
		out := Outcome{Err: err, Elapsed: time.Since(start)}
		var tl *kperiodic.ErrTooLarge
		if errors.As(err, &tl) {
			out.Skipped = true
		}
		if err == nil {
			out.Period = res.Period
		}
		return out
	case MethodPeriodic:
		start := time.Now()
		res, err := kperiodic.Evaluate1(g, lim.kiterOptions())
		out := Outcome{Err: err, Elapsed: time.Since(start)}
		var tl *kperiodic.ErrTooLarge
		if errors.As(err, &tl) {
			out.Skipped = true
		}
		if err == nil {
			out.Period = res.Period
		}
		return out
	case MethodExpansion:
		maxNodes := lim.ExpansionMaxNodes
		if maxNodes <= 0 {
			maxNodes = defaultExpansionMaxNodes
		}
		if n, err := expansionNodes(g); err != nil || n > maxNodes {
			return Outcome{Err: ErrTooLarge, Skipped: true}
		}
		opt := lim.kiterOptions()
		opt.MaxNodes = maxNodes
		start := time.Now()
		res, err := kperiodic.Expansion(g, opt)
		out := Outcome{Err: err, Elapsed: time.Since(start)}
		var tl *kperiodic.ErrTooLarge
		if errors.As(err, &tl) {
			out.Skipped = true
		}
		if err == nil {
			out.Period = res.Period
		}
		return out
	case MethodSymbolic:
		start := time.Now()
		res, err := symbexec.Run(g, symbexec.Options{MaxEvents: lim.SymbolicMaxEvents})
		out := Outcome{Err: err, Elapsed: time.Since(start)}
		if err == nil {
			out.Period = res.Period
		}
		return out
	}
	return Outcome{Err: fmt.Errorf("bench: unknown method %q", m)}
}

// expansionNodes estimates the K = q bi-valued graph node count Σ qt·ϕ(t).
func expansionNodes(g *csdf.Graph) (int64, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, t := range g.Tasks() {
		n, ok := rat.MulCheck(q[t.ID], int64(t.Phases()))
		if !ok {
			return 0, &rat.ErrOverflow{Op: "expansion size"}
		}
		total, ok = rat.AddCheck(total, n)
		if !ok {
			return 0, &rat.ErrOverflow{Op: "expansion size"}
		}
	}
	return total, nil
}

// SuiteStats aggregates the descriptive columns of Table 1.
type SuiteStats struct {
	Graphs                       int
	TaskMin, TaskAvg, TaskMax    int
	ChanMin, ChanAvg, ChanMax    int
	SumQMin, SumQAvg, SumQMax    *big.Int
	SumQOverflowedOrInconsistent bool
}

// Stats computes descriptive statistics over a suite.
func Stats(graphs []*csdf.Graph) SuiteStats {
	s := SuiteStats{Graphs: len(graphs)}
	if len(graphs) == 0 {
		return s
	}
	s.TaskMin, s.ChanMin = 1<<31, 1<<31
	s.SumQMin, s.SumQMax = nil, nil
	sumTasks, sumChans := 0, 0
	sumQTotal := new(big.Int)
	count := 0
	for _, g := range graphs {
		nt, nb := g.NumTasks(), g.NumBuffers()
		sumTasks += nt
		sumChans += nb
		if nt < s.TaskMin {
			s.TaskMin = nt
		}
		if nt > s.TaskMax {
			s.TaskMax = nt
		}
		if nb < s.ChanMin {
			s.ChanMin = nb
		}
		if nb > s.ChanMax {
			s.ChanMax = nb
		}
		sq, err := g.SumRepetition()
		if err != nil {
			s.SumQOverflowedOrInconsistent = true
			continue
		}
		count++
		sumQTotal.Add(sumQTotal, sq)
		if s.SumQMin == nil || sq.Cmp(s.SumQMin) < 0 {
			s.SumQMin = sq
		}
		if s.SumQMax == nil || sq.Cmp(s.SumQMax) > 0 {
			s.SumQMax = sq
		}
	}
	s.TaskAvg = sumTasks / len(graphs)
	s.ChanAvg = sumChans / len(graphs)
	if count > 0 {
		s.SumQAvg = new(big.Int).Div(sumQTotal, big.NewInt(int64(count)))
	}
	return s
}

// MethodSummary aggregates one method's behaviour over a suite.
type MethodSummary struct {
	Mean       time.Duration
	Total      time.Duration
	Ran        int     // graphs actually evaluated
	Failed     int     // errors other than guard-rail skips
	Skipped    int     // guard-rail skips (too large / budget)
	OptimalPct float64 // period vs reference optimum, 100 = always optimal
}

// Summarize runs a method over a suite. reference, when non-nil, supplies
// the exact optimal period per graph for optimality accounting (Table 2's
// percentage column: the ratio optimum/obtained, averaged over solved
// graphs).
func Summarize(graphs []*csdf.Graph, m Method, lim Limits, reference []rat.Rat) MethodSummary {
	var sum MethodSummary
	var optAcc float64
	optCount := 0
	for i, g := range graphs {
		out := Run(g, m, lim)
		if out.Skipped || errors.Is(out.Err, symbexec.ErrBudget) {
			sum.Skipped++
			continue
		}
		if out.Err != nil {
			sum.Failed++
			continue
		}
		sum.Ran++
		sum.Total += out.Elapsed
		if reference != nil && i < len(reference) && reference[i].Sign() > 0 && out.Period.Sign() > 0 {
			// period ≥ optimum; ratio in (0,1].
			optAcc += reference[i].Div(out.Period).Float()
			optCount++
		}
	}
	if sum.Ran > 0 {
		sum.Mean = sum.Total / time.Duration(sum.Ran)
	}
	if optCount > 0 {
		sum.OptimalPct = 100 * optAcc / float64(optCount)
	}
	return sum
}

// Table1Suites builds the four SDFG categories with the given sizes.
func Table1Suites(mimic, lghsdf, lgtransient int, seed int64) []gen.Suite {
	return []gen.Suite{
		gen.ActualDSP(),
		gen.MimicDSP(mimic, seed),
		gen.LgHSDF(lghsdf, seed+1000),
		gen.LgTransient(lgtransient, seed+2000),
	}
}
