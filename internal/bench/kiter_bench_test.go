package bench

import (
	"testing"

	"kiter/internal/kperiodic"
)

// BenchmarkKIter tracks the Algorithm 1 hot path over the perf suite
// (PerfCases): single-round sanity cases plus the multi-round KIterChain
// family that exercises the incremental expansion. cmd/benchjson runs the
// same cases to regenerate BENCH_*.json.
func BenchmarkKIter(b *testing.B) {
	for _, pc := range PerfCases() {
		b.Run(pc.Name, func(b *testing.B) {
			g := pc.Build()
			opt := Limits{}.kiterOptions()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kperiodic.KIter(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluate1 tracks the single-round 1-periodic evaluation — the
// floor the incremental machinery must not regress.
func BenchmarkEvaluate1(b *testing.B) {
	for _, pc := range PerfCases() {
		b.Run(pc.Name, func(b *testing.B) {
			g := pc.Build()
			opt := Limits{}.kiterOptions()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kperiodic.Evaluate1(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
