package bench_test

import (
	"errors"
	"testing"

	"kiter/internal/bench"
	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/rat"
)

func TestRunAllMethodsAgreeOnFigure2(t *testing.T) {
	g := gen.Figure2()
	lim := bench.Limits{}
	var periods []string
	for _, m := range []bench.Method{bench.MethodKIter, bench.MethodExpansion, bench.MethodSymbolic} {
		out := bench.Run(g, m, lim)
		if out.Err != nil {
			t.Fatalf("%s: %v", m, out.Err)
		}
		periods = append(periods, out.Period.String())
	}
	for _, p := range periods {
		if p != "13" {
			t.Fatalf("periods = %v, want all 13", periods)
		}
	}
	// Periodic is an upper bound on the period.
	out := bench.Run(g, bench.MethodPeriodic, lim)
	if out.Err != nil || out.Period.String() != "18" {
		t.Fatalf("periodic: %v %s", out.Err, out.Period)
	}
}

func TestExpansionGuardRail(t *testing.T) {
	g := gen.Figure2()
	out := bench.Run(g, bench.MethodExpansion, bench.Limits{ExpansionMaxNodes: 2})
	if !out.Skipped || !errors.Is(out.Err, bench.ErrTooLarge) {
		t.Errorf("guard rail did not trip: %+v", out)
	}
}

func TestSymbolicBudgetCountsAsSkip(t *testing.T) {
	g := gen.Figure2()
	sum := bench.Summarize([]*csdf.Graph{g}, bench.MethodSymbolic, bench.Limits{SymbolicMaxEvents: 2}, nil)
	if sum.Skipped != 1 || sum.Ran != 0 {
		t.Errorf("summary = %+v, want 1 skip", sum)
	}
}

func TestStats(t *testing.T) {
	suite := gen.MimicDSP(6, 7)
	st := bench.Stats(suite.Graphs)
	if st.Graphs != len(suite.Graphs) {
		t.Fatal("graph count wrong")
	}
	if st.TaskMin > st.TaskAvg || st.TaskAvg > st.TaskMax {
		t.Errorf("task stats inconsistent: %d/%d/%d", st.TaskMin, st.TaskAvg, st.TaskMax)
	}
	if st.SumQMin == nil || st.SumQMax == nil || st.SumQMin.Cmp(st.SumQMax) > 0 {
		t.Errorf("Σq stats inconsistent: %v/%v", st.SumQMin, st.SumQMax)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := bench.Stats(nil)
	if st.Graphs != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestSummarizeOptimality(t *testing.T) {
	graphs := gen.ActualDSP().Graphs
	lim := bench.Limits{SymbolicMaxEvents: 5_000_000}
	// Reference optima via K-Iter.
	refs := make([]rat.Rat, len(graphs))
	for i, g := range graphs {
		out := bench.Run(g, bench.MethodKIter, lim)
		if out.Err != nil {
			t.Fatalf("%s: %v", g.Name, out.Err)
		}
		refs[i] = out.Period
	}
	ks := bench.Summarize(graphs, bench.MethodKIter, lim, refs)
	if ks.Ran != len(graphs) || ks.Failed != 0 {
		t.Fatalf("K-Iter summary: %+v", ks)
	}
	if ks.OptimalPct < 99.999 {
		t.Errorf("K-Iter optimality = %.2f%%, want 100%%", ks.OptimalPct)
	}
	ps := bench.Summarize(graphs, bench.MethodPeriodic, lim, refs)
	if ps.OptimalPct > 100.0001 {
		t.Errorf("periodic optimality %.2f%% exceeds 100%%", ps.OptimalPct)
	}
}

func TestTable1Suites(t *testing.T) {
	suites := bench.Table1Suites(3, 3, 2, 1)
	if len(suites) != 4 {
		t.Fatalf("want 4 categories, got %d", len(suites))
	}
	names := map[string]bool{}
	for _, s := range suites {
		names[s.Name] = true
		if len(s.Graphs) == 0 {
			t.Errorf("category %s is empty", s.Name)
		}
	}
	for _, want := range []string{"ActualDSP", "MimicDSP", "LgHSDF", "LgTransient"} {
		if !names[want] {
			t.Errorf("missing category %s", want)
		}
	}
}

func TestMethodsList(t *testing.T) {
	if len(bench.Methods()) != 4 {
		t.Fatal("methods list drifted")
	}
}
