package bench

import (
	"testing"

	"kiter/internal/gen"
)

// Benchmark smoke targets for CI: one run per method on the paper's
// running example keeps the harness honest without Table-scale runtimes.

func BenchmarkRunKIterFigure2(b *testing.B) {
	g := gen.Figure2()
	for i := 0; i < b.N; i++ {
		if out := Run(g, MethodKIter, Limits{}); out.Err != nil {
			b.Fatal(out.Err)
		}
	}
}

func BenchmarkRunPeriodicFigure2(b *testing.B) {
	g := gen.Figure2()
	for i := 0; i < b.N; i++ {
		if out := Run(g, MethodPeriodic, Limits{}); out.Err != nil {
			b.Fatal(out.Err)
		}
	}
}

func BenchmarkRunSymbolicFigure2(b *testing.B) {
	g := gen.Figure2()
	for i := 0; i < b.N; i++ {
		if out := Run(g, MethodSymbolic, Limits{}); out.Err != nil {
			b.Fatal(out.Err)
		}
	}
}
