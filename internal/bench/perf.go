package bench

import (
	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
)

// PerfCase is one graph of the tracked performance suite. The same cases
// back the `go test -bench BenchmarkKIter` targets and the BENCH_*.json
// emitter (cmd/benchjson), so the checked-in trajectory and the CI smoke
// numbers always measure the same work.
type PerfCase struct {
	Name string
	// MultiRound marks cases whose K-Iter run takes several Algorithm 1
	// rounds — the regime the incremental expansion pipeline targets.
	MultiRound bool
	Build      func() *csdf.Graph
}

// PerfCases returns the tracked suite: the paper's running example and an
// industrial-shaped decoder as single-digit-round sanity cases, plus the
// KIterChain family whose interleaved critical circuits force one
// periodicity bump per round.
func PerfCases() []PerfCase {
	return []PerfCase{
		{Name: "figure2", Build: gen.Figure2},
		{Name: "h263decoder", Build: gen.H263Decoder},
		{Name: "chain4", MultiRound: true, Build: func() *csdf.Graph { return gen.KIterChain(4) }},
		{Name: "chain8", MultiRound: true, Build: func() *csdf.Graph { return gen.KIterChain(8) }},
		{Name: "chain16", MultiRound: true, Build: func() *csdf.Graph { return gen.KIterChain(16) }},
	}
}

// KIterOptions exposes the guard-railed kperiodic options Run uses, so
// external benchmark drivers (cmd/benchjson) measure exactly the suite's
// configuration.
func (l Limits) KIterOptions() kperiodic.Options { return l.kiterOptions() }

// KIterMeta summarizes one Algorithm 1 run on a perf case: convergence
// rounds, the final bi-valued graph size, and the incremental-expansion
// arc accounting (how many constraint arcs were recomputed vs. replayed
// from a previous round's block cache).
type KIterMeta struct {
	Rounds     int   `json:"rounds"`
	Nodes      int   `json:"nodes"`
	Arcs       int   `json:"arcs"`
	ArcsBuilt  int64 `json:"arcs_built"`
	ArcsReused int64 `json:"arcs_reused"`
}

// MeasureKIter runs K-Iter once on g and extracts the meta counters from
// the iteration trace.
func MeasureKIter(g *csdf.Graph) (KIterMeta, error) {
	res, err := kperiodic.KIter(g, Limits{}.kiterOptions())
	if err != nil {
		return KIterMeta{}, err
	}
	meta := KIterMeta{Rounds: res.Iterations}
	for _, step := range res.Trace {
		meta.Nodes, meta.Arcs = step.Nodes, step.Arcs
		meta.ArcsBuilt += int64(step.ArcsBuilt)
		meta.ArcsReused += int64(step.ArcsReused)
	}
	return meta, nil
}
