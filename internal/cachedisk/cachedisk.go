// Package cachedisk is a dependency-free disk-backed result cache
// implementing engine.CacheBackend. Results are appended to segment files
// under a cache directory as CRC-checked records keyed by the engine's
// fingerprint-derived cache keys; an in-memory index maps each key to its
// newest record. Opening the same directory again rebuilds the index from
// the segments, which is what lets a restarted (or replicated, over shared
// storage) kiterd warm-start from prior runs.
//
// Record payloads are resultcodec frames (segment format v2) — the same
// binary encoding the cluster wire speaks, so a record written here and a
// result fetched from a peer are the same bytes. Segments written by
// pre-codec builds (format v1, JSON payloads) are still read: the segment
// header's version selects the payload decoder, so a live kiterd upgrade
// keeps its warm cache while all new appends land in v2 segments.
//
// Durability is deliberately best-effort: the store is a cache, never a
// source of truth. Writes are not fsynced, corrupt records (truncation,
// bit flips) are skipped at open and demoted to misses at read time, and
// segment files with an unknown header version are discarded wholesale so
// a format change never poisons a newer process. When the directory grows
// past its byte quota a background compactor drops whole segments oldest
// first — segment-granular FIFO eviction, not LRU; the memory tier above
// this store keeps the hot set, and write-through repopulates anything
// recomputed.
package cachedisk

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"kiter/internal/engine"
	"kiter/internal/faultinject"
	"kiter/internal/resultcodec"
)

// Segment file layout: an 8-byte header (magic "KITC" + little-endian
// uint32 format version), then records back to back. Each record is a
// 12-byte header — uint32 key length, uint32 payload length, uint32
// IEEE CRC over key+payload — followed by the key bytes and the payload
// (a resultcodec frame in v2 segments, JSON in legacy v1 segments).
// Records are immutable once written; a re-Put of a key appends a new
// record and the index forgets the old one.
const (
	magic          = "KITC"
	formatVersion  = 2
	legacyVersion  = 1 // JSON payloads; still readable, never written
	fileHeaderLen  = 8
	recHeaderLen   = 12
	maxKeyLen      = 1 << 20  // keys are fingerprint+knobs, well under this
	maxPayloadLen  = 64 << 20 // matches the server's request body cap
	defaultQuota   = 256 << 20
	minSegmentSize = 64 << 10
	maxSegmentSize = 8 << 20
)

// Options tunes a Store.
type Options struct {
	// MaxBytes caps the directory's total segment bytes; past it the
	// background compactor evicts the oldest segments until back under
	// quota (<= 0 picks the 256 MiB default).
	MaxBytes int64
	// SegmentBytes is the active-segment rotation threshold (<= 0 picks
	// MaxBytes/8 clamped to [64 KiB, 8 MiB]). Smaller segments mean
	// finer-grained eviction at the cost of more files.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = defaultQuota
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = min(max(o.MaxBytes/8, minSegmentSize), maxSegmentSize)
	}
	return o
}

// Store is the disk backend. It is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	index  map[string]recordRef
	segs   []*segment // oldest first
	active *segment   // the append target, last in segs; nil in read-only mode
	total  int64      // sum of segment sizes
	nextID int
	closed bool

	hits, misses atomic.Uint64

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

type segment struct {
	id      int
	path    string
	f       *os.File // read-only for loaded segments, read-write for the active one
	size    int64
	version uint32 // payload format: formatVersion or legacyVersion
}

type recordRef struct {
	seg        *segment
	off        int64 // record header offset
	keyLen     uint32
	payloadLen uint32
}

// Open opens (creating if needed) the cache directory and rebuilds the
// index from its segments. Unreadable, truncated or corrupt content is
// skipped, never fatal: the worst case is an empty cache.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachedisk: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		index:     make(map[string]recordRef),
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	// Appends always go to a fresh segment: loaded segments stay frozen
	// behind read-only handles, which is what lets a replica be seeded
	// from a read-only snapshot of another cache's directory. If even the
	// fresh segment cannot be created — the directory itself is read-only
	// — the store degrades to a read-only cache: Gets serve the snapshot,
	// Puts are dropped, compaction never runs.
	if err := s.rotateLocked(); err != nil {
		s.active = nil
	}
	s.wg.Add(1)
	go s.compactLoop()
	s.maybeCompact()
	return s, nil
}

// load scans every segment file in the directory, oldest first, so that
// within and across segments the newest record of a key wins the index.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cachedisk: %w", err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.kcache", &id); err == nil && !e.IsDir() {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		path := filepath.Join(s.dir, segName(id))
		seg, stale := s.openSegment(id, path)
		if seg == nil {
			if stale {
				// Wrong magic or a stale format version: the file is one
				// of ours by name but confirmed unreadable by design —
				// discard it rather than let dead bytes linger forever. A
				// transient I/O failure (permissions, fd pressure) is NOT
				// grounds for deletion: the segment is skipped this run
				// and may well load on the next.
				os.Remove(path)
			}
			continue
		}
		// Every id ever seen — even a stale one we just removed — bumps
		// nextID, so a fresh active segment never collides.
		s.segs = append(s.segs, seg)
		s.total += seg.size
	}
	return nil
}

// openSegment validates one segment's header and scans its records into
// the index. Loaded segments are frozen: they are opened read-only (so a
// directory seeded from a read-only snapshot works) and appends only ever
// go to the fresh active segment. On failure seg is nil and stale reports
// whether the file is confirmed to be a dead format (delete-worthy) as
// opposed to transiently unreadable (leave it for the next open).
func (s *Store) openSegment(id int, path string) (seg *segment, stale bool) {
	if id >= s.nextID {
		s.nextID = id + 1
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, false
	}
	if fi.Size() < fileHeaderLen {
		// Too short to even hold a header: a torn segment creation.
		f.Close()
		return nil, true
	}
	var hdr [fileHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, false
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if string(hdr[:4]) != magic || (version != formatVersion && version != legacyVersion) {
		f.Close()
		return nil, true
	}
	seg = &segment{id: id, path: path, f: f, version: version}
	// An unparseable tail (a torn final write) is excluded from the
	// segment's logical size; since frozen segments take no appends, the
	// dead bytes are merely carried until compaction drops the segment.
	seg.size = s.scanRecords(seg, fi.Size())
	return seg, false
}

// scanRecords walks seg's records from the file header to the first
// structural inconsistency, indexing every record whose CRC holds. A CRC
// mismatch with plausible lengths (a bit flip in the body) skips just that
// record; an implausible length or a record overrunning the file (torn
// write, flipped length field) abandons the rest of the segment, since
// record boundaries downstream of it can no longer be trusted. Returns
// the end offset of the last well-formed record.
func (s *Store) scanRecords(seg *segment, size int64) int64 {
	off := int64(fileHeaderLen)
	var hdr [recHeaderLen]byte
	for off+recHeaderLen <= size {
		if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		keyLen := binary.LittleEndian.Uint32(hdr[0:])
		payloadLen := binary.LittleEndian.Uint32(hdr[4:])
		sum := binary.LittleEndian.Uint32(hdr[8:])
		if keyLen == 0 || keyLen > maxKeyLen || payloadLen > maxPayloadLen {
			break
		}
		next := off + recHeaderLen + int64(keyLen) + int64(payloadLen)
		if next > size {
			break
		}
		body := make([]byte, keyLen+payloadLen)
		if _, err := seg.f.ReadAt(body, off+recHeaderLen); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) == sum {
			key := string(body[:keyLen])
			s.index[key] = recordRef{seg: seg, off: off, keyLen: keyLen, payloadLen: payloadLen}
		}
		off = next
	}
	return off
}

func segName(id int) string { return fmt.Sprintf("seg-%06d.kcache", id) }

// rotateLocked starts a fresh active segment. Callers hold s.mu (or are
// single-threaded in Open).
func (s *Store) rotateLocked() error {
	path := filepath.Join(s.dir, segName(s.nextID))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cachedisk: %w", err)
	}
	var hdr [fileHeaderLen]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("cachedisk: %w", err)
	}
	seg := &segment{id: s.nextID, path: path, f: f, size: fileHeaderLen, version: formatVersion}
	s.segs = append(s.segs, seg)
	s.active = seg
	s.total += fileHeaderLen
	s.nextID++
	return nil
}

// Get implements engine.CacheBackend. The record's CRC is re-verified on
// every read, so corruption that postdates the open scan (or slipped past
// it) degrades to a miss, never a bad Result. Only the index lookup holds
// the store lock: the read, CRC and JSON decode (up to 64 MiB of payload)
// run outside it, so concurrent workers' cache traffic is not serialized
// behind one slow hit. That is safe because records are immutable and
// compaction closes a segment's handle only after de-indexing it — a
// racing eviction surfaces here as a read error, i.e. a miss.
func (s *Store) Get(key string) (*engine.Result, bool) {
	// Chaos seam: an injected "cache.get" fault degrades to a miss, the
	// same path a corrupt or evicted record takes.
	if faultinject.Fire(faultinject.PointCacheGet) != nil {
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	ref, ok := s.index[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	f := ref.seg.f
	s.mu.Unlock()

	buf := make([]byte, recHeaderLen+int64(ref.keyLen)+int64(ref.payloadLen))
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return s.drop(key, ref)
	}
	body := buf[recHeaderLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[8:]) ||
		string(body[:ref.keyLen]) != key {
		return s.drop(key, ref)
	}
	// The segment's header version picks the payload decoder: current
	// segments hold resultcodec frames, legacy v1 segments hold JSON. A
	// payload that passes the record CRC but fails its own decode (e.g. a
	// v1 record in a mislabelled segment) degrades to a miss like any
	// other corruption.
	var res *engine.Result
	if ref.seg.version == legacyVersion {
		res = new(engine.Result)
		if err := json.Unmarshal(body[ref.keyLen:], res); err != nil {
			return s.drop(key, ref)
		}
	} else {
		var err error
		if res, err = resultcodec.Decode(body[ref.keyLen:]); err != nil {
			return s.drop(key, ref)
		}
	}
	s.hits.Add(1)
	return res, true
}

// drop forgets a record that failed read-time verification — unless a
// concurrent Put or compaction already replaced or removed the index
// entry, in which case the newer state stands.
func (s *Store) drop(key string, ref recordRef) (*engine.Result, bool) {
	s.mu.Lock()
	if cur, ok := s.index[key]; ok && cur == ref {
		delete(s.index, key)
	}
	s.mu.Unlock()
	s.misses.Add(1)
	return nil, false
}

// Put implements engine.CacheBackend: append-only write-behind of one
// result. Only the offset reservation (and, when needed, the segment
// rotation) holds the store lock; the marshal happens before it and the
// disk write after it, so a slow multi-megabyte append never stalls other
// workers' index lookups. The record is indexed only once its write fully
// succeeded: concurrent readers can never see in-progress bytes, and a
// failed write just leaves an unindexed hole that the reopen scan treats
// as the segment's end (losing at worst the records appended after it in
// that segment — recomputation, not corruption). Failures are otherwise
// swallowed: the entry simply isn't cached.
func (s *Store) Put(key string, res *engine.Result) {
	if key == "" || len(key) > maxKeyLen || res == nil {
		return
	}
	// Chaos seam: an injected "cache.put" fault drops the write, exactly
	// like a failed append (the entry simply isn't cached).
	if faultinject.Fire(faultinject.PointCachePut) != nil {
		return
	}
	// Size the payload before encoding it: an over-quota record is
	// rejected without paying for the (potentially multi-megabyte)
	// allocation it would have produced.
	payloadLen := resultcodec.EncodedSize(res)
	if payloadLen > maxPayloadLen {
		return
	}
	payload := resultcodec.Encode(res)
	rec := make([]byte, recHeaderLen+len(key)+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(payload)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], payload)
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(rec[recHeaderLen:]))

	s.mu.Lock()
	if s.closed || s.active == nil {
		s.mu.Unlock()
		return
	}
	if s.active.size+int64(len(rec)) > s.opts.SegmentBytes && s.active.size > fileHeaderLen {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			return
		}
	}
	active := s.active
	off := active.size
	active.size += int64(len(rec))
	s.total += int64(len(rec))
	needCompact := s.total > s.opts.MaxBytes
	s.mu.Unlock()

	if _, err := active.f.WriteAt(rec, off); err == nil {
		s.mu.Lock()
		if !s.closed {
			s.index[key] = recordRef{
				seg:        active,
				off:        off,
				keyLen:     uint32(len(key)),
				payloadLen: uint32(len(payload)),
			}
		}
		s.mu.Unlock()
	}
	if needCompact {
		s.maybeCompact()
	}
}

// maybeCompact nudges the compactor without blocking the caller.
func (s *Store) maybeCompact() {
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			s.compact()
		}
	}
}

// compact evicts the oldest segments until the directory is back under
// quota. The active segment is never evicted (quota pressure first forces
// a rotation via Put, so there is always an older segment to drop), and a
// read-only store never compacts: it could not delete the snapshot's
// files anyway.
func (s *Store) compact() {
	for {
		s.mu.Lock()
		if s.closed || s.active == nil || s.total <= s.opts.MaxBytes ||
			len(s.segs) <= 1 || s.segs[0] == s.active {
			s.mu.Unlock()
			return
		}
		oldest := s.segs[0]
		s.segs = s.segs[1:]
		for k, ref := range s.index {
			if ref.seg == oldest {
				delete(s.index, k)
			}
		}
		s.total -= oldest.size
		s.mu.Unlock()
		oldest.f.Close()
		os.Remove(oldest.path)
	}
}

// Len implements engine.CacheBackend.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the directory's current segment byte total.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// TierStats reports the store as the "disk" tier on engine.Stats.
func (s *Store) TierStats() []engine.CacheTierStats {
	s.mu.Lock()
	entries, bytes := len(s.index), s.total
	s.mu.Unlock()
	return []engine.CacheTierStats{{
		Tier:    "disk",
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Entries: entries,
		Bytes:   bytes,
	}}
}

// Close implements engine.CacheBackend: it stops the compactor and closes
// every segment handle. Close is idempotent, and Get/Put after Close are
// no-op misses.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	segs := s.segs
	s.mu.Unlock()
	s.wg.Wait()
	for _, seg := range segs {
		seg.f.Close()
	}
	return nil
}
