package cachedisk

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kiter/internal/engine"
	"kiter/internal/gen"
)

// The store is an engine cache backend with per-tier telemetry.
var (
	_ engine.CacheBackend = (*Store)(nil)
	_ engine.TierStatser  = (*Store)(nil)
)

func testResult(fp string) *engine.Result {
	return &engine.Result{
		Fingerprint: fp,
		Throughput: &engine.ThroughputResult{
			Period:     "3/2",
			Throughput: "2/3",
			Optimal:    true,
			Method:     engine.MethodKIter,
		},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if _, ok := s.Get("absent"); ok {
		t.Fatal("hit on empty store")
	}
	s.Put("k", testResult("fp-k"))
	res, ok := s.Get("k")
	if !ok || res.Fingerprint != "fp-k" || res.Throughput.Period != "3/2" {
		t.Fatalf("roundtrip: %+v, %v", res, ok)
	}
	s.Put("k", testResult("fp-k2"))
	if res, _ := s.Get("k"); res.Fingerprint != "fp-k2" {
		t.Fatal("re-Put did not supersede the old record")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	ts := s.TierStats()
	if len(ts) != 1 || ts[0].Tier != "disk" || ts[0].Hits != 2 || ts[0].Misses != 1 {
		t.Fatalf("tier stats = %+v", ts)
	}
	if ts[0].Bytes <= 0 || ts[0].Entries != 1 {
		t.Fatalf("tier gauges = %+v", ts[0])
	}
}

// TestRestartPersistence is the reason this package exists: a reopened
// directory answers everything a previous process stored.
func TestRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprint("key-", i), testResult(fmt.Sprint("fp-", i)))
	}
	s.Put("key-3", testResult("fp-3-superseded"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reopened len = %d, want 10", s2.Len())
	}
	for i := 0; i < 10; i++ {
		res, ok := s2.Get(fmt.Sprint("key-", i))
		if !ok {
			t.Fatalf("key-%d lost across restart", i)
		}
		want := fmt.Sprint("fp-", i)
		if i == 3 {
			want = "fp-3-superseded"
		}
		if res.Fingerprint != want {
			t.Fatalf("key-%d = %q, want %q (newest record must win)", i, res.Fingerprint, want)
		}
	}
}

// segmentFiles returns the store directory's segment paths, oldest first.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.kcache"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no segment files in %s (%v)", dir, err)
	}
	return paths
}

func TestTruncatedSegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprint("key-", i), testResult(fmt.Sprint("fp-", i)))
	}
	s.Close()

	// Tear the tail of the (single) segment mid-record: the last-written
	// key dies, everything before it survives.
	path := segmentFiles(t, dir)[0]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get("key-4"); ok {
		t.Fatal("truncated record served")
	}
	for i := 0; i < 4; i++ {
		if _, ok := s2.Get(fmt.Sprint("key-", i)); !ok {
			t.Fatalf("key-%d lost to an unrelated truncation", i)
		}
	}
	// The torn tail was discarded, so new appends land on a well-formed
	// boundary and survive another restart.
	s2.Put("key-new", testResult("fp-new"))
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	if _, ok := s3.Get("key-new"); !ok {
		t.Fatal("append after truncation repair lost")
	}
}

func TestBitFlippedRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprint("key-", i), testResult(fmt.Sprint("fp-", i)))
	}
	s.Close()

	// Flip one byte inside the last record's JSON payload: its CRC fails,
	// the scan skips it and keeps every record before it.
	path := segmentFiles(t, dir)[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get("key-4"); ok {
		t.Fatal("bit-flipped record served")
	}
	for i := 0; i < 4; i++ {
		if _, ok := s2.Get(fmt.Sprint("key-", i)); !ok {
			t.Fatalf("key-%d lost to an unrelated bit flip", i)
		}
	}
}

func TestStaleFormatIgnored(t *testing.T) {
	dir := t.TempDir()
	// A future-format segment and a non-segment imposter, both named like
	// ours: neither may poison the open, both are discarded.
	future := []byte("KITC\x09\x00\x00\x00some future layout")
	if err := os.WriteFile(filepath.Join(dir, "seg-000098.kcache"), future, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-000099.kcache"), []byte("not a cache"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("stale segments produced %d entries", s.Len())
	}
	for _, p := range segmentFiles(t, dir) {
		if strings.HasSuffix(p, "seg-000098.kcache") || strings.HasSuffix(p, "seg-000099.kcache") {
			t.Fatalf("stale segment %s survived open", p)
		}
	}
	// New writes allocate past the discarded ids, never colliding.
	s.Put("k", testResult("fp"))
	if _, ok := s.Get("k"); !ok {
		t.Fatal("store unusable after discarding stale segments")
	}
}

// TestReadOnlySnapshotSeeding opens a directory whose segment files are
// read-only (a snapshot of another cache): entries must be served, the
// files must survive the open, and new writes must land in a fresh
// segment.
func TestReadOnlySnapshotSeeding(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprint("key-", i), testResult(fmt.Sprint("fp-", i)))
	}
	s.Close()
	snapshot := segmentFiles(t, dir)
	for _, p := range snapshot {
		if err := os.Chmod(p, 0o444); err != nil {
			t.Fatal(err)
		}
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("snapshot seeded %d entries, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		if _, ok := s2.Get(fmt.Sprint("key-", i)); !ok {
			t.Fatalf("key-%d unreadable from read-only snapshot", i)
		}
	}
	s2.Put("key-new", testResult("fp-new"))
	if _, ok := s2.Get("key-new"); !ok {
		t.Fatal("write alongside a read-only snapshot failed")
	}
	for _, p := range snapshot {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("snapshot segment %s deleted by open: %v", p, err)
		}
	}
}

// TestReadOnlyDirectoryDegrades opens a cache whose directory itself is
// unwritable: the store must come up read-only — serving every snapshot
// entry, dropping writes — instead of failing Open.
func TestReadOnlyDirectoryDegrades(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root bypasses directory write permissions")
	}
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprint("key-", i), testResult(fmt.Sprint("fp-", i)))
	}
	s.Close()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) }) // let TempDir cleanup succeed

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	for i := 0; i < 3; i++ {
		if _, ok := s2.Get(fmt.Sprint("key-", i)); !ok {
			t.Fatalf("key-%d unreadable from read-only directory", i)
		}
	}
	s2.Put("key-new", testResult("fp-new"))
	if _, ok := s2.Get("key-new"); ok {
		t.Fatal("write accepted by a read-only store")
	}
}

// TestQuotaCompaction fills the store well past its byte quota and waits
// for the background compactor to evict oldest segments back under it.
func TestQuotaCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxBytes: 8 << 10, SegmentBytes: 1 << 10})
	defer s.Close()
	const n = 200
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprint("key-", i), testResult(fmt.Sprint("fp-", i)))
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Bytes() > 8<<10 {
		if time.Now().After(deadline) {
			t.Fatalf("still %d bytes after deadline, quota 8192", s.Bytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Len() >= n {
		t.Fatalf("compaction evicted nothing: %d entries", s.Len())
	}
	// The newest write lives in the active segment, which is never evicted.
	if _, ok := s.Get(fmt.Sprint("key-", n-1)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestCloseIdempotentAndPostCloseNoop(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	s.Put("k", testResult("fp"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	s.Put("k2", testResult("fp2"))
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get after Close returned a hit")
	}
}

// TestEngineWarmRestart drives the real engine: a tiered memory→disk cache
// survives an engine restart, and the second engine's first repeat Submit
// is a disk-tier hit that the per-tier stats account for.
func TestEngineWarmRestart(t *testing.T) {
	dir := t.TempDir()
	submit := func(e *engine.Engine) *engine.Result {
		t.Helper()
		res, err := e.Submit(context.Background(), &engine.Request{
			Graph:  gen.TwoTaskChain(3, 2),
			Method: engine.MethodKIter,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	newEngine := func() *engine.Engine {
		t.Helper()
		disk := mustOpen(t, dir, Options{})
		return engine.New(engine.Config{
			Workers:      2,
			CacheBackend: engine.NewTieredCache(engine.NewMemoryCache(4, 64), disk),
		})
	}

	e1 := newEngine()
	first := submit(e1)
	if first.CacheHit {
		t.Fatal("first submission claims a cache hit")
	}
	e1.Close() // closes the tiered backend, flushing nothing: writes are synchronous

	e2 := newEngine()
	defer e2.Close()
	second := submit(e2)
	if !second.CacheHit {
		t.Fatal("restarted engine did not answer from the disk tier")
	}
	if second.Throughput == nil || second.Throughput.Period != first.Throughput.Period {
		t.Fatalf("disk-tier result drifted: %+v vs %+v", second.Throughput, first.Throughput)
	}
	tiers := map[string]engine.CacheTierStats{}
	for _, ts := range e2.Stats().CacheTiers {
		tiers[ts.Tier] = ts
	}
	if tiers["disk"].Hits != 1 {
		t.Fatalf("disk tier hits = %d, want 1 (stats: %+v)", tiers["disk"].Hits, tiers)
	}
	if tiers["memory"].Misses != 1 {
		t.Fatalf("memory tier misses = %d, want 1 (stats: %+v)", tiers["memory"].Misses, tiers)
	}
	// The disk hit was promoted: a third identical submission stays in memory.
	submit(e2)
	for _, ts := range e2.Stats().CacheTiers {
		tiers[ts.Tier] = ts
	}
	if tiers["memory"].Hits != 1 || tiers["disk"].Hits != 1 {
		t.Fatalf("promotion failed: %+v", tiers)
	}
}
