package cachedisk

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kiter/internal/faultinject"
)

// TestCloseDuringCompaction races Store.Close against the background
// compactor while writers keep the store over quota. Close must win
// cleanly — no panic, no deadlock, no use of a closed segment handle —
// and the directory must reopen afterwards. This is the shutdown path a
// drained kiterd takes while a compaction pass is mid-flight.
func TestCloseDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	// A quota small enough that every few Puts trip rotation + compaction.
	s := mustOpen(t, dir, Options{MaxBytes: 8 << 10, SegmentBytes: 2 << 10})

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Put(fmt.Sprintf("w%d-k%d", w, i), testResult(fmt.Sprintf("fp-%d-%d", w, i)))
			}
		}(w)
	}

	// Let the writers push the store past quota a few times so the
	// compactor is genuinely running when Close lands.
	deadline := time.Now().Add(time.Second)
	for s.Bytes() < 8<<10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked against compaction")
	}
	close(stop)
	writers.Wait()

	// Post-Close operations are no-op misses, never panics.
	s.Put("late", testResult("late"))
	if _, ok := s.Get("late"); ok {
		t.Fatal("Get after Close returned a hit")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The directory survived the race in a loadable state.
	s2 := mustOpen(t, dir, Options{MaxBytes: 8 << 10, SegmentBytes: 2 << 10})
	defer s2.Close()
	s2.Put("reopened", testResult("reopened"))
	if _, ok := s2.Get("reopened"); !ok {
		t.Fatal("reopened store does not serve writes")
	}
}

// TestFaultInjectionDegradesToMiss: armed cache failpoints turn Gets into
// counted misses and swallow Puts — the degrade-to-miss contract chaos
// runs rely on — and disarming restores normal service.
func TestFaultInjectionDegradesToMiss(t *testing.T) {
	arm := func(spec string) {
		t.Helper()
		set, err := faultinject.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Activate(set)
	}
	defer faultinject.Activate(nil)

	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()

	arm("cache.put:error::1")
	s.Put("k", testResult("fp")) // injected: dropped
	if _, ok := s.Get("k"); ok { // clean Get proves the drop
		t.Fatal("injected Put stored a record")
	}
	s.Put("k", testResult("fp")) // budget burned: stored
	arm("cache.get:error::1")
	if _, ok := s.Get("k"); ok { // injected: forced miss
		t.Fatal("injected Get returned a hit")
	}
	misses := s.misses.Load()
	if misses < 2 {
		t.Fatalf("misses = %d, want >= 2 (injected faults count as misses)", misses)
	}
	if res, ok := s.Get("k"); !ok || res.Fingerprint != "fp" {
		t.Fatalf("post-budget Get = %v, %v; want stored result", res, ok)
	}
}
