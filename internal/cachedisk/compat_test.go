package cachedisk

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// writeRawSegment fabricates a segment file of the given format version
// with one record per (key, payload) pair — byte-identical to what a
// pre-codec (v1) or current (v2) build would have written.
func writeRawSegment(t *testing.T, path string, version uint32, recs map[string][]byte) {
	t.Helper()
	buf := make([]byte, fileHeaderLen)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	for key, payload := range recs {
		rec := make([]byte, recHeaderLen+len(key)+len(payload))
		binary.LittleEndian.PutUint32(rec[0:], uint32(len(key)))
		binary.LittleEndian.PutUint32(rec[4:], uint32(len(payload)))
		copy(rec[recHeaderLen:], key)
		copy(rec[recHeaderLen+len(key):], payload)
		binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(rec[recHeaderLen:]))
		buf = append(buf, rec...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyJSONSegmentStillLoads is the upgrade guarantee: a directory
// written by a pre-codec build (v1 segments, JSON payloads) keeps its warm
// cache when opened by this build, and new writes land alongside it in a
// v2 segment without disturbing the legacy reads.
func TestLegacyJSONSegmentStillLoads(t *testing.T) {
	dir := t.TempDir()
	legacy := testResult("fp-legacy")
	payload, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	writeRawSegment(t, filepath.Join(dir, segName(0)), legacyVersion,
		map[string][]byte{"legacy-key": payload})

	s := mustOpen(t, dir, Options{})
	defer s.Close()
	res, ok := s.Get("legacy-key")
	if !ok || res.Fingerprint != "fp-legacy" || res.Throughput.Period != "3/2" {
		t.Fatalf("legacy record lost across format upgrade: %+v, %v", res, ok)
	}

	s.Put("new-key", testResult("fp-new"))
	if res, ok := s.Get("new-key"); !ok || res.Fingerprint != "fp-new" {
		t.Fatalf("post-upgrade write unreadable: %+v, %v", res, ok)
	}
	if res, ok := s.Get("legacy-key"); !ok || res.Fingerprint != "fp-legacy" {
		t.Fatalf("legacy record lost after new writes: %+v, %v", res, ok)
	}

	// A re-Put of the legacy key supersedes the JSON record with a codec
	// one, and the whole mixed directory survives a restart.
	s.Put("legacy-key", testResult("fp-upgraded"))
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	for key, want := range map[string]string{"legacy-key": "fp-upgraded", "new-key": "fp-new"} {
		if res, ok := s2.Get(key); !ok || res.Fingerprint != want {
			t.Fatalf("%s after mixed-format restart: %+v, %v (want %s)", key, res, ok, want)
		}
	}
}

// TestCodecGarbagePayloadIsMiss covers the corruption case the record CRC
// cannot: a record whose bytes are internally consistent but whose payload
// is not a resultcodec frame (e.g. a JSON payload in a segment labelled
// v2). The decode failure must degrade to a miss, never a wrong result.
func TestCodecGarbagePayloadIsMiss(t *testing.T) {
	dir := t.TempDir()
	payload, err := json.Marshal(testResult("fp-json"))
	if err != nil {
		t.Fatal(err)
	}
	writeRawSegment(t, filepath.Join(dir, segName(0)), formatVersion,
		map[string][]byte{"mislabelled": payload})

	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if res, ok := s.Get("mislabelled"); ok {
		t.Fatalf("garbage payload decoded to %+v", res)
	}
	// The poisoned entry is dropped from the index, so the miss is
	// permanent rather than re-verified on every lookup.
	if s.Len() != 0 {
		t.Fatalf("len = %d after dropping garbage record, want 0", s.Len())
	}
}

// TestFutureFormatDiscarded pins the forward-compat rule: a segment from a
// format this build has never heard of is discarded wholesale, not parsed.
func TestFutureFormatDiscarded(t *testing.T) {
	dir := t.TempDir()
	writeRawSegment(t, filepath.Join(dir, segName(0)), formatVersion+1,
		map[string][]byte{"future": []byte("payload")})
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("len = %d, want 0 (future-format segment must be discarded)", s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, segName(0))); !os.IsNotExist(err) {
		t.Fatalf("future-format segment not removed: %v", err)
	}
}
