package sweep

import (
	"context"
	"encoding/json"
	"math/big"
	"sync"
	"testing"

	"kiter/internal/engine"
)

// TestPropertySweepMatchesDirectSubmit is the subsystem's core contract:
// for random parametric specs, every sweep point is exactly the result an
// independent engine.Submit of the materialized scenario produces —
// throughput as an exact rational, winning method, optimality flag and
// per-section error — and the envelope min/max match a brute-force fold
// over the direct results. The sweep engine and the reference engine are
// separate instances, so shared caching cannot mask a divergence.
func TestPropertySweepMatchesDirectSubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is not short")
	}
	const seeds = 12
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			spec, err := RandomSpec(seed)
			if err != nil {
				t.Skipf("seed %d: no base graph: %v", seed, err)
			}
			spec.Method = "kiter" // deterministic contestant, exact results
			// Round-trip through the wire form, as /sweep would.
			data, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			x, err := Compile(parsed, false)
			if err != nil {
				t.Fatalf("seed %d: random spec did not compile: %v", seed, err)
			}

			sweepEng := engine.New(engine.Config{Workers: 4})
			defer sweepEng.Close()
			refEng := engine.New(engine.Config{Workers: 2})
			defer refEng.Close()

			var mu sync.Mutex
			points := map[int]Point{}
			r := Runner{Engine: sweepEng}
			env, err := r.Run(context.Background(), x, func(p Point) error {
				mu.Lock()
				defer mu.Unlock()
				if _, dup := points[p.Scenario]; dup {
					t.Errorf("scenario %d emitted twice", p.Scenario)
				}
				points[p.Scenario] = p
				return nil
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if len(points) != x.Total() {
				t.Fatalf("seed %d: %d points for %d scenarios", seed, len(points), x.Total())
			}

			// Brute-force reference fold.
			var bfMin, bfMax *big.Rat
			var bfCompleted, bfFailed, bfAnalysisErrs int
			for i := 0; i < x.Total(); i++ {
				p, ok := points[i]
				if !ok {
					t.Fatalf("seed %d: scenario %d never emitted", seed, i)
				}
				g, merr := x.Materialize(i)
				if merr != nil {
					bfFailed++
					if p.Error == "" {
						t.Fatalf("seed %d scenario %d: direct materialization failed (%v) but sweep point succeeded", seed, i, merr)
					}
					continue
				}
				want, werr := refEng.Submit(context.Background(), &engine.Request{
					Graph:  g,
					Method: engine.MethodKIter,
				})
				if werr != nil {
					t.Fatalf("seed %d scenario %d: direct submit: %v", seed, i, werr)
				}
				if p.Error != "" {
					t.Fatalf("seed %d scenario %d: sweep failed (%s) but direct submit succeeded", seed, i, p.Error)
				}
				bfCompleted++
				got := p.Result.Throughput
				ref := want.Throughput
				if (got == nil) != (ref == nil) {
					t.Fatalf("seed %d scenario %d: section mismatch: %+v vs %+v", seed, i, got, ref)
				}
				if got == nil {
					continue
				}
				if got.Error != ref.Error {
					t.Fatalf("seed %d scenario %d: error %q vs %q", seed, i, got.Error, ref.Error)
				}
				if got.Error != "" {
					bfAnalysisErrs++
					continue
				}
				if got.Method != ref.Method || got.Optimal != ref.Optimal {
					t.Fatalf("seed %d scenario %d: method/optimal %v/%v vs %v/%v",
						seed, i, got.Method, got.Optimal, ref.Method, ref.Optimal)
				}
				gr, ok1 := new(big.Rat).SetString(got.Throughput)
				rr, ok2 := new(big.Rat).SetString(ref.Throughput)
				if !ok1 || !ok2 || gr.Cmp(rr) != 0 {
					t.Fatalf("seed %d scenario %d: throughput %q vs %q", seed, i, got.Throughput, ref.Throughput)
				}
				gp, ok1 := new(big.Rat).SetString(got.Period)
				rp, ok2 := new(big.Rat).SetString(ref.Period)
				if !ok1 || !ok2 || gp.Cmp(rp) != 0 {
					t.Fatalf("seed %d scenario %d: period %q vs %q", seed, i, got.Period, ref.Period)
				}
				if bfMin == nil || gr.Cmp(bfMin) < 0 {
					bfMin = gr
				}
				if bfMax == nil || gr.Cmp(bfMax) > 0 {
					bfMax = gr
				}
			}

			if env.Completed != bfCompleted || env.Failed != bfFailed || env.AnalysisErrors != bfAnalysisErrs {
				t.Fatalf("seed %d: envelope counts %d/%d/%d vs brute force %d/%d/%d",
					seed, env.Completed, env.Failed, env.AnalysisErrors, bfCompleted, bfFailed, bfAnalysisErrs)
			}
			checkBound := func(name, got string, want *big.Rat) {
				if want == nil {
					if got != "" {
						t.Fatalf("seed %d: envelope %s = %q with no successful points", seed, name, got)
					}
					return
				}
				gr, ok := new(big.Rat).SetString(got)
				if !ok || gr.Cmp(want) != 0 {
					t.Fatalf("seed %d: envelope %s = %q, brute force %s", seed, name, got, want.RatString())
				}
			}
			checkBound("minThroughput", env.MinThroughput, bfMin)
			checkBound("maxThroughput", env.MaxThroughput, bfMax)
		})
	}
}
