package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/sdf3x"
)

// GraphJSON marshals a graph into the wire form sweep specs embed as their
// base.
func GraphJSON(g *csdf.Graph) json.RawMessage {
	var buf bytes.Buffer
	if err := sdf3x.WriteJSON(&buf, g); err != nil {
		// The repository JSON writer only fails on I/O, which bytes.Buffer
		// never reports.
		panic(fmt.Sprintf("sweep: marshaling graph: %v", err))
	}
	return buf.Bytes()
}

// VideoPipelineSpec returns a two-parameter sweep over gen.VideoPipeline:
// the motion-estimation search duration crossed with the reference-window
// token count — rows·cols scenarios exploring how much search time the
// reference loop can absorb. It is the README's runnable example and the
// acceptance fixture for the ≥100-scenario streaming test.
func VideoPipelineSpec(rows, cols int) *Spec {
	search := make([]int64, rows)
	for i := range search {
		search[i] = int64(2 + i)
	}
	return &Spec{
		Base: GraphJSON(gen.VideoPipeline()),
		Parameters: []Param{
			{
				Name:   "search",
				Target: Target{Kind: "duration", Task: "motion-est", Phase: 2},
				Values: search,
			},
			{
				Name:   "window",
				Target: Target{Kind: "initial", Buffer: "reference"},
				Range:  &Range{From: 16, To: int64(16 + 2*(cols-1)), Step: 2},
			},
		},
		Pareto: "window",
	}
}

// RandomSpec returns a seeded random parametric sweep over a
// gen.RandomSmall base graph: 1–3 parameters targeting random valid sites
// (durations, rates, initial tokens) with small value lists or ranges.
// Deterministic in seed. Specs are always well-formed — the scenario
// *outcomes* may legitimately include analysis errors (a rate substitution
// can make a graph inconsistent, a token substitution can deadlock it),
// which is exactly what the property harness wants to cross-check.
func RandomSpec(seed int64) (*Spec, error) {
	rng := rand.New(rand.NewSource(seed))
	base, err := gen.RandomSmall(rng.Int63())
	if err != nil {
		return nil, err
	}
	spec := &Spec{Base: GraphJSON(base)}
	nparams := 1 + rng.Intn(3)
	// Overlapping sites are a compile error (a later parameter would
	// shadow an earlier one), so re-draw collisions; on a tiny base graph
	// the parameter list may come up shorter than drawn.
	taken := func(t Target) bool {
		s1, err := t.resolve(base, "probe")
		if err != nil {
			return true
		}
		for _, q := range spec.Parameters {
			s2, err := q.Target.resolve(base, q.Name)
			if err == nil && s1.overlaps(s2) {
				return true
			}
		}
		return false
	}
	for p := 0; p < nparams; p++ {
		name := fmt.Sprintf("p%d", p)
		var t Target
		var tokens *csdf.Buffer
		// Weighted site choice: durations dominate (they always preserve
		// consistency, so most scenarios analyze successfully), initial
		// tokens next (may deadlock — a legitimate analysis error), and
		// rates occasionally (usually break consistency — also legitimate).
		switch rng.Intn(8) {
		case 0: // production rate
			b := base.Buffer(csdf.BufferID(rng.Intn(base.NumBuffers())))
			t = Target{Kind: "production", Buffer: b.Name, Phase: rng.Intn(len(b.In) + 1)}
		case 1: // consumption rate
			b := base.Buffer(csdf.BufferID(rng.Intn(base.NumBuffers())))
			t = Target{Kind: "consumption", Buffer: b.Name, Phase: rng.Intn(len(b.Out) + 1)}
		case 2, 3: // initial tokens, biased above the base marking
			tokens = base.Buffer(csdf.BufferID(rng.Intn(base.NumBuffers())))
			t = Target{Kind: "initial", Buffer: tokens.Name}
		default: // task duration
			task := base.Task(csdf.TaskID(rng.Intn(base.NumTasks())))
			t = Target{Kind: "duration", Task: task.Name, Phase: rng.Intn(task.Phases() + 1)}
		}
		if taken(t) {
			continue // collision on a tiny base graph; draw fewer parameters
		}
		param := Param{Name: name, Target: t}
		switch {
		case tokens != nil:
			param.Range = &Range{From: tokens.Initial, To: tokens.Initial + 1 + rng.Int63n(4)}
		case rng.Intn(2) == 0:
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				param.Values = append(param.Values, 1+rng.Int63n(6))
			}
		default:
			from := 1 + rng.Int63n(4)
			param.Range = &Range{From: from, To: from + rng.Int63n(4), Step: 1 + rng.Int63n(2)}
		}
		spec.Parameters = append(spec.Parameters, param)
	}
	if len(spec.Parameters) == 0 {
		// Every draw collided; fall back to a guaranteed-fresh duration
		// sweep on the first task so the spec always compiles.
		task := base.Task(0)
		spec.Parameters = append(spec.Parameters, Param{
			Name:   "p0",
			Target: Target{Kind: "duration", Task: task.Name, Phase: 1},
			Values: []int64{1, 2, 3},
		})
	}
	return spec, nil
}
