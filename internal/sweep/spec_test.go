package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"kiter/internal/gen"
)

// mustCompile parses and compiles a spec literal.
func mustCompile(t *testing.T, spec *Spec) *Expansion {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Compile(parsed, false)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"base": {}, "vaules": []}`,
		`{"base": {}, "parameters": [{"name": "p", "tarqet": {}}]}`,
		`{"base": {}, "parameters": [], "pareto": 3}`,
		`not json at all`,
		`{"base": {}} trailing`,
	}
	for _, c := range cases {
		if _, err := ParseSpec([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestCompileScenarioEnumeration(t *testing.T) {
	x := mustCompile(t, &Spec{
		Base: GraphJSON(gen.TwoTaskChain(3, 4)),
		Parameters: []Param{
			{Name: "dA", Target: Target{Kind: "duration", Task: "A"}, Values: []int64{1, 2, 3}},
			{Name: "dB", Target: Target{Kind: "duration", Task: "B"}, Range: &Range{From: 10, To: 20, Step: 5}},
		},
	})
	if x.Total() != 9 {
		t.Fatalf("total = %d, want 9", x.Total())
	}
	if got := x.ParamNames(); got[0] != "dA" || got[1] != "dB" {
		t.Fatalf("names = %v", got)
	}
	// Row-major, last parameter fastest: scenario 0 = (1,10), 1 = (1,15),
	// 3 = (2,10), 8 = (3,20).
	for _, c := range []struct {
		i    int
		want [2]int64
	}{{0, [2]int64{1, 10}}, {1, [2]int64{1, 15}}, {3, [2]int64{2, 10}}, {8, [2]int64{3, 20}}} {
		if got := x.Values(c.i); got[0] != c.want[0] || got[1] != c.want[1] {
			t.Fatalf("Values(%d) = %v, want %v", c.i, got, c.want)
		}
	}
	a := x.Assignment(5)
	if a["dA"] != 2 || a["dB"] != 20 {
		t.Fatalf("Assignment(5) = %v", a)
	}

	g, err := x.Materialize(5)
	if err != nil {
		t.Fatal(err)
	}
	idA, _ := g.TaskByName("A")
	idB, _ := g.TaskByName("B")
	if g.Task(idA).Durations[0] != 2 || g.Task(idB).Durations[0] != 20 {
		t.Fatalf("materialized durations = %v / %v", g.Task(idA).Durations, g.Task(idB).Durations)
	}
	// The base graph itself must stay untouched across materializations.
	base := x.Base()
	if base.Task(idA).Durations[0] != 3 || base.Task(idB).Durations[0] != 4 {
		t.Fatal("base graph mutated by Materialize")
	}
}

func TestCompileTargetsAllSiteKinds(t *testing.T) {
	base := gen.Figure2() // multi-phase tasks, named buffers
	x := mustCompile(t, &Spec{
		Base: GraphJSON(base),
		Parameters: []Param{
			{Name: "dur", Target: Target{Kind: "duration", Task: "B", Phase: 2}, Values: []int64{9}},
			{Name: "prod", Target: Target{Kind: "production", Buffer: "B->C", Phase: 1}, Values: []int64{7}},
			{Name: "cons", Target: Target{Kind: "consumption", Buffer: "C->A", Phase: 2}, Values: []int64{8}},
			{Name: "m0", Target: Target{Kind: "initial", Buffer: "A->D"}, Values: []int64{21}},
		},
	})
	g, err := x.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.TaskByName("B")
	if g.Task(b).Durations[1] != 9 {
		t.Fatalf("duration = %v", g.Task(b).Durations)
	}
	var checked int
	for _, buf := range g.Buffers() {
		switch buf.Name {
		case "B->C":
			if buf.In[0] != 7 {
				t.Fatalf("production = %v", buf.In)
			}
			checked++
		case "C->A":
			if buf.Out[1] != 8 {
				t.Fatalf("consumption = %v", buf.Out)
			}
			checked++
		case "A->D":
			if buf.Initial != 21 {
				t.Fatalf("initial = %d", buf.Initial)
			}
			checked++
		}
	}
	if checked != 3 {
		t.Fatalf("checked %d buffers, want 3", checked)
	}
}

func TestCompileRejectsBadSpecs(t *testing.T) {
	base := GraphJSON(gen.TwoTaskChain(1, 2))
	dur := func(task string) Target { return Target{Kind: "duration", Task: task} }
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no base", Spec{Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{1}}}}, "no base graph"},
		{"bad base", Spec{Base: json.RawMessage(`{"tasks": [{"name": "a"}]}`), Parameters: []Param{{Name: "p", Target: dur("a"), Values: []int64{1}}}}, "base graph"},
		{"no parameters", Spec{Base: base}, "no parameters"},
		{"unnamed parameter", Spec{Base: base, Parameters: []Param{{Target: dur("A"), Values: []int64{1}}}}, "no name"},
		{"duplicate name", Spec{Base: base, Parameters: []Param{
			{Name: "p", Target: dur("A"), Values: []int64{1}},
			{Name: "p", Target: dur("B"), Values: []int64{1}},
		}}, "duplicate"},
		{"no values", Spec{Base: base, Parameters: []Param{{Name: "p", Target: dur("A")}}}, "no values"},
		{"empty values list", Spec{Base: base, Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{}}}}, "empty values"},
		{"values and range", Spec{Base: base, Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{1}, Range: &Range{From: 1, To: 2}}}}, "both"},
		{"empty values and range", Spec{Base: base, Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{}, Range: &Range{From: 1, To: 2}}}}, "both"},
		{"inverted range", Spec{Base: base, Parameters: []Param{{Name: "p", Target: dur("A"), Range: &Range{From: 5, To: 1}}}}, "inverted"},
		{"negative step", Spec{Base: base, Parameters: []Param{{Name: "p", Target: dur("A"), Range: &Range{From: 1, To: 5, Step: -1}}}}, "negative step"},
		{"unknown kind", Spec{Base: base, Parameters: []Param{{Name: "p", Target: Target{Kind: "tokens", Buffer: "A->B"}, Values: []int64{1}}}}, "unknown target kind"},
		{"unknown task", Spec{Base: base, Parameters: []Param{{Name: "p", Target: dur("Z"), Values: []int64{1}}}}, "unknown task"},
		{"unknown buffer", Spec{Base: base, Parameters: []Param{{Name: "p", Target: Target{Kind: "initial", Buffer: "zzz"}, Values: []int64{1}}}}, "unknown buffer"},
		{"duration on buffer", Spec{Base: base, Parameters: []Param{{Name: "p", Target: Target{Kind: "duration", Task: "A", Buffer: "A->B"}, Values: []int64{1}}}}, "names a buffer"},
		{"initial on task", Spec{Base: base, Parameters: []Param{{Name: "p", Target: Target{Kind: "initial", Task: "A"}, Values: []int64{1}}}}, "names a task"},
		{"initial with phase", Spec{Base: base, Parameters: []Param{{Name: "p", Target: Target{Kind: "initial", Buffer: "A->B", Phase: 1}, Values: []int64{1}}}}, "no phase"},
		{"phase out of range", Spec{Base: base, Parameters: []Param{{Name: "p", Target: Target{Kind: "duration", Task: "A", Phase: 2}, Values: []int64{1}}}}, "exceeds"},
		{"negative phase", Spec{Base: base, Parameters: []Param{{Name: "p", Target: Target{Kind: "duration", Task: "A", Phase: -1}, Values: []int64{1}}}}, "negative phase"},
		{"rate phase out of range", Spec{Base: base, Parameters: []Param{{Name: "p", Target: Target{Kind: "production", Buffer: "A->B", Phase: 3}, Values: []int64{1}}}}, "exceeds"},
		{"bad method", Spec{Base: base, Method: "bogus", Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{1}}}}, "unknown method"},
		{"bad analysis", Spec{Base: base, Analyses: []string{"bogus"}, Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{1}}}}, "unknown analysis"},
		{"bad pareto axis", Spec{Base: base, Pareto: "q", Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{1}}}}, "not a parameter"},
		{"negative cap", Spec{Base: base, MaxScenarios: -1, Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{1}}}}, "negative maxScenarios"},
		{"cap above hard cap", Spec{Base: base, MaxScenarios: HardMaxScenarios + 1, Parameters: []Param{{Name: "p", Target: dur("A"), Values: []int64{1}}}}, "hard cap"},
	}
	for _, c := range cases {
		_, err := Compile(&c.spec, false)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: error is %T, want *SpecError (%v)", c.name, err, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestCompileRejectsOverlappingTargets: two parameters editing the same
// site would let the later one shadow the earlier, producing grid points
// whose recorded assignment never reached the graph.
func TestCompileRejectsOverlappingTargets(t *testing.T) {
	base := GraphJSON(gen.Figure2())
	cases := []struct {
		name   string
		t1, t2 Target
	}{
		{"same duration phase", Target{Kind: "duration", Task: "B", Phase: 1}, Target{Kind: "duration", Task: "B", Phase: 1}},
		{"phase 0 shadows phase 2", Target{Kind: "duration", Task: "B"}, Target{Kind: "duration", Task: "B", Phase: 2}},
		{"same initial", Target{Kind: "initial", Buffer: "C->A"}, Target{Kind: "initial", Buffer: "C->A"}},
		{"same production vector", Target{Kind: "production", Buffer: "B->C", Phase: 1}, Target{Kind: "production", Buffer: "B->C"}},
	}
	for _, c := range cases {
		spec := &Spec{Base: base, Parameters: []Param{
			{Name: "a", Target: c.t1, Values: []int64{1, 2}},
			{Name: "b", Target: c.t2, Values: []int64{3, 4}},
		}}
		if _, err := Compile(spec, false); err == nil || !strings.Contains(err.Error(), "same site") {
			t.Errorf("%s: err = %v, want same-site rejection", c.name, err)
		}
	}
	// Disjoint sites of the same kind stay legal.
	ok := &Spec{Base: base, Parameters: []Param{
		{Name: "a", Target: Target{Kind: "duration", Task: "B", Phase: 1}, Values: []int64{1, 2}},
		{Name: "b", Target: Target{Kind: "duration", Task: "B", Phase: 2}, Values: []int64{3, 4}},
		{Name: "c", Target: Target{Kind: "duration", Task: "A", Phase: 1}, Values: []int64{5}},
	}}
	if _, err := Compile(ok, false); err != nil {
		t.Fatalf("disjoint sites rejected: %v", err)
	}
}

func TestCompileCrossProductCap(t *testing.T) {
	big := make([]int64, 100)
	for i := range big {
		big[i] = int64(i + 1)
	}
	spec := &Spec{
		Base: GraphJSON(gen.TwoTaskChain(1, 2)),
		Parameters: []Param{
			{Name: "a", Target: Target{Kind: "duration", Task: "A"}, Values: big},
			{Name: "b", Target: Target{Kind: "duration", Task: "B"}, Values: big},
		},
	}
	// 10k scenarios: above the default cap, accepted with an explicit one.
	if _, err := Compile(spec, false); err == nil || !strings.Contains(err.Error(), "cross product exceeds") {
		t.Fatalf("default cap not enforced: %v", err)
	}
	spec.MaxScenarios = 10_000
	x, err := Compile(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if x.Total() != 10_000 {
		t.Fatalf("total = %d", x.Total())
	}
	// A range alone can also blow the hard cap.
	huge := &Spec{
		Base: GraphJSON(gen.TwoTaskChain(1, 2)),
		Parameters: []Param{
			{Name: "a", Target: Target{Kind: "duration", Task: "A"}, Range: &Range{From: 0, To: 1 << 40}},
		},
	}
	if _, err := Compile(huge, false); err == nil {
		t.Fatal("2^40-value range accepted")
	}
}

func TestRangeValueGeneration(t *testing.T) {
	cases := []struct {
		r    Range
		want []int64
	}{
		{Range{From: 1, To: 5}, []int64{1, 2, 3, 4, 5}},
		{Range{From: 0, To: 10, Step: 4}, []int64{0, 4, 8}},
		{Range{From: 7, To: 7}, []int64{7}},
		{Range{From: -3, To: 3, Step: 3}, []int64{-3, 0, 3}},
	}
	for _, c := range cases {
		p := Param{Name: "p", Range: &c.r}
		got, err := p.values()
		if err != nil {
			t.Fatalf("%+v: %v", c.r, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("%+v: got %v, want %v", c.r, got, c.want)
		}
	}
}

// TestMaterializeSharesBaseStructure verifies the copy-on-write contract at
// the expansion level: untouched vectors alias the base across the family.
func TestMaterializeSharesBaseStructure(t *testing.T) {
	x := mustCompile(t, &Spec{
		Base: GraphJSON(gen.Figure2()),
		Parameters: []Param{
			{Name: "m0", Target: Target{Kind: "initial", Buffer: "C->A"}, Range: &Range{From: 0, To: 7}},
		},
	})
	base := x.Base()
	for i := 0; i < x.Total(); i++ {
		g, err := x.Materialize(i)
		if err != nil {
			t.Fatal(err)
		}
		for tid := range g.Tasks() {
			if &g.Tasks()[tid].Durations[0] != &base.Tasks()[tid].Durations[0] {
				t.Fatalf("scenario %d: task %d durations copied", i, tid)
			}
		}
		for bid := range g.Buffers() {
			if &g.Buffers()[bid].In[0] != &base.Buffers()[bid].In[0] {
				t.Fatalf("scenario %d: buffer %d rates copied", i, bid)
			}
		}
	}
}
