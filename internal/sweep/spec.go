// Package sweep implements the parametric scenario sweep subsystem: a JSON
// specification naming parameters over a base CSDF graph (actor execution
// times, channel rates, initial tokens; each a value list or an arithmetic
// range), a capped cross-product expander that materializes every scenario
// as a concrete graph sharing the base structure, and a runner that streams
// the scenario family through the analysis engine and folds the per-point
// results into a throughput envelope (min/max, argmin/argmax, optional
// Pareto front over one parameter axis).
//
// It is the workload class behind POST /sweep and kiterd -sweep: one
// request answers a design-space question ("how does throughput move as
// this rate varies?") instead of one concrete graph.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"

	"kiter/internal/csdf"
	"kiter/internal/engine"
	"kiter/internal/sdf3x"
)

// DefaultMaxScenarios caps the cross-product expansion when the spec does
// not set its own (lower) bound. The cap keeps a typo'd range from turning
// one HTTP request into millions of jobs.
const DefaultMaxScenarios = 4096

// HardMaxScenarios is the ceiling a spec's own maxScenarios may request.
const HardMaxScenarios = 1 << 20

// Spec is the wire form of a parametric sweep.
type Spec struct {
	// Base is the base graph in the repository's JSON graph format.
	Base json.RawMessage `json:"base"`
	// Parameters are the swept parameters; the scenario family is their
	// cross product, enumerated with the last parameter varying fastest.
	Parameters []Param `json:"parameters"`
	// MaxScenarios caps the expansion (default DefaultMaxScenarios, at
	// most HardMaxScenarios). Exceeding the cap is a spec error.
	MaxScenarios int `json:"maxScenarios,omitempty"`
	// Method, Analyses, Capacities and NoCache mirror the /analyze knobs
	// and apply to every scenario; empty values inherit server defaults.
	Method     string   `json:"method,omitempty"`
	Analyses   []string `json:"analyses,omitempty"`
	Capacities *bool    `json:"capacities,omitempty"`
	NoCache    bool     `json:"noCache,omitempty"`
	// Pareto names the parameter axis for the envelope's Pareto front
	// (minimize that parameter, maximize throughput). Empty disables it.
	Pareto string `json:"pareto,omitempty"`
}

// Param is one swept parameter: a target site in the base graph plus the
// values it takes. Exactly one of Values and Range must be set.
type Param struct {
	Name   string  `json:"name"`
	Target Target  `json:"target"`
	Values []int64 `json:"values,omitempty"`
	Range  *Range  `json:"range,omitempty"`
}

// Target locates the swept quantity in the base graph.
type Target struct {
	// Kind is "duration" (task execution time), "production" or
	// "consumption" (channel rates), or "initial" (initial tokens).
	Kind string `json:"kind"`
	// Task names the target task (duration targets).
	Task string `json:"task,omitempty"`
	// Buffer names the target buffer (rate and initial-token targets).
	Buffer string `json:"buffer,omitempty"`
	// Phase is the 1-indexed phase within the target's rate or duration
	// vector; 0 (the default) substitutes every phase.
	Phase int `json:"phase,omitempty"`
}

// Range generates From, From+Step, … while ≤ To. Step defaults to 1 and
// must be positive; an inverted range (From > To) is an error rather than
// an empty sweep, because it is always a spec mistake.
type Range struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
	Step int64 `json:"step,omitempty"`
}

// SpecError reports an invalid sweep specification. It is the caller's cue
// for HTTP 400 / usage-error handling as opposed to an execution failure.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return "sweep: " + e.msg }

func specErrf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// ParseSpec decodes a sweep spec, rejecting unknown fields so a typo'd key
// (a misspelled "parameters", a stray "vaules") fails loudly instead of
// silently sweeping nothing.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, specErrf("decoding spec: %v", err)
	}
	// Trailing garbage after the spec object is a malformed request too.
	if dec.More() {
		return nil, specErrf("decoding spec: trailing data after spec object")
	}
	return &s, nil
}

// knownKinds lists the valid Target.Kind values.
var knownKinds = map[string]bool{
	"duration":    true,
	"production":  true,
	"consumption": true,
	"initial":     true,
}

// values materializes the parameter's point list.
func (p *Param) values() ([]int64, error) {
	switch {
	case p.Values != nil && p.Range != nil:
		return nil, specErrf("parameter %q sets both values and range", p.Name)
	case len(p.Values) > 0:
		return p.Values, nil
	case p.Values != nil:
		return nil, specErrf("parameter %q has an empty values list", p.Name)
	case p.Range != nil:
		r := *p.Range
		if r.Step == 0 {
			r.Step = 1
		}
		if r.Step < 0 {
			return nil, specErrf("parameter %q: negative step %d", p.Name, r.Step)
		}
		if r.From > r.To {
			return nil, specErrf("parameter %q: inverted range %d..%d", p.Name, r.From, r.To)
		}
		// uint64(To−From) is the exact difference even when the int64
		// subtraction would overflow (e.g. From = −2⁶², To = 2⁶²). Compare
		// the step count against the cap before adding the +1, which would
		// itself wrap for the full-int64 range.
		steps := uint64(r.To-r.From) / uint64(r.Step)
		if steps >= HardMaxScenarios {
			return nil, specErrf("parameter %q: range yields over %d values (cap %d)", p.Name, steps, HardMaxScenarios)
		}
		n := steps + 1
		vs := make([]int64, n)
		v := r.From
		for i := range vs {
			vs[i] = v
			if i+1 < len(vs) {
				v += r.Step
			}
		}
		return vs, nil
	default:
		return nil, specErrf("parameter %q has no values and no range", p.Name)
	}
}

// site is a resolved target: the concrete IDs edits are built from.
type site struct {
	kind   string
	task   csdf.TaskID
	buffer csdf.BufferID
	phase  int
}

// overlaps reports whether two sites touch a common graph quantity: the
// same vector entry, or one substituting a whole vector (phase 0) that the
// other touches.
func (s site) overlaps(o site) bool {
	if s.kind != o.kind {
		return false
	}
	if s.kind == "duration" {
		if s.task != o.task {
			return false
		}
	} else if s.buffer != o.buffer {
		return false
	}
	return s.phase == o.phase || s.phase == 0 || o.phase == 0
}

// edit builds the csdf edit substituting v at the site.
func (s site) edit(v int64) csdf.Edit {
	switch s.kind {
	case "duration":
		return csdf.SetDuration(s.task, s.phase, v)
	case "production":
		return csdf.SetProduction(s.buffer, s.phase, v)
	case "consumption":
		return csdf.SetConsumption(s.buffer, s.phase, v)
	default: // "initial"; kinds are validated at resolve time
		return csdf.SetInitial(s.buffer, v)
	}
}

// resolve checks the target against the base graph and returns the site.
func (t Target) resolve(g *csdf.Graph, pname string) (site, error) {
	if !knownKinds[t.Kind] {
		return site{}, specErrf("parameter %q: unknown target kind %q (want duration, production, consumption or initial)", pname, t.Kind)
	}
	if t.Phase < 0 {
		return site{}, specErrf("parameter %q: negative phase %d", pname, t.Phase)
	}
	if t.Kind == "duration" {
		if t.Buffer != "" {
			return site{}, specErrf("parameter %q: duration target names a buffer", pname)
		}
		id, ok := g.TaskByName(t.Task)
		if !ok {
			return site{}, specErrf("parameter %q: unknown task %q", pname, t.Task)
		}
		if t.Phase > g.Task(id).Phases() {
			return site{}, specErrf("parameter %q: phase %d exceeds task %q's %d phases", pname, t.Phase, t.Task, g.Task(id).Phases())
		}
		return site{kind: t.Kind, task: id, phase: t.Phase}, nil
	}
	if t.Task != "" {
		return site{}, specErrf("parameter %q: %s target names a task", pname, t.Kind)
	}
	if t.Buffer == "" {
		return site{}, specErrf("parameter %q: %s target needs a buffer name", pname, t.Kind)
	}
	var id csdf.BufferID = -1
	for _, b := range g.Buffers() {
		if b.Name == t.Buffer {
			if id >= 0 {
				return site{}, specErrf("parameter %q: buffer name %q is ambiguous", pname, t.Buffer)
			}
			id = b.ID
		}
	}
	if id < 0 {
		return site{}, specErrf("parameter %q: unknown buffer %q", pname, t.Buffer)
	}
	var vlen int
	switch t.Kind {
	case "production":
		vlen = len(g.Buffer(id).In)
	case "consumption":
		vlen = len(g.Buffer(id).Out)
	case "initial":
		if t.Phase != 0 {
			return site{}, specErrf("parameter %q: initial-token target takes no phase", pname)
		}
	}
	if t.Phase > 0 && t.Phase > vlen {
		return site{}, specErrf("parameter %q: phase %d exceeds buffer %q's %d-entry %s vector", pname, t.Phase, t.Buffer, vlen, t.Kind)
	}
	return site{kind: t.Kind, buffer: id, phase: t.Phase}, nil
}

// engineKnobs converts the spec's per-scenario analysis knobs, validating
// them once up front. Zero values mean "inherit the caller's defaults".
func (s *Spec) engineKnobs() (engine.Method, []engine.AnalysisKind, error) {
	m := engine.Method(s.Method)
	if s.Method != "" && !engine.ValidMethod(m) {
		return "", nil, specErrf("unknown method %q", s.Method)
	}
	var as []engine.AnalysisKind
	for _, a := range s.Analyses {
		k := engine.AnalysisKind(a)
		if !engine.ValidAnalysis(k) {
			return "", nil, specErrf("unknown analysis %q", a)
		}
		as = append(as, k)
	}
	return m, as, nil
}

// parseBase decodes and validates the spec's base graph.
func (s *Spec) parseBase() (*csdf.Graph, error) {
	if len(s.Base) == 0 {
		return nil, &SpecError{msg: "spec has no base graph"}
	}
	g, err := sdf3x.ReadJSON(bytes.NewReader(s.Base))
	if err != nil {
		return nil, specErrf("base graph: %v", err)
	}
	return g, nil
}
