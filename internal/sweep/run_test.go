package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/engine"
	"kiter/internal/gen"
)

// namedRing builds a homogeneous ring with named buffers ("loop" closes
// it), the sweep-targetable version of gen.HSDFRing. Its optimal period is
// max(Σd/tokens, max d) — the classic event-graph formula.
func namedRing(durations []int64, tokens int64) *csdf.Graph {
	g := csdf.NewGraph("named-ring")
	n := len(durations)
	ids := make([]csdf.TaskID, n)
	for i, d := range durations {
		ids[i] = g.AddSDFTask(fmt.Sprintf("t%d", i), d)
	}
	for i := 0; i < n-1; i++ {
		g.AddSDFBuffer(fmt.Sprintf("b%d", i), ids[i], ids[i+1], 1, 1, 0)
	}
	g.AddSDFBuffer("loop", ids[n-1], ids[0], 1, 1, tokens)
	return g
}

func newTestEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{Workers: 4})
	t.Cleanup(e.Close)
	return e
}

// TestRunEnvelopeOracle sweeps the duration of one task of a two-task
// chain, whose optimal period is exactly max(dA, dB) — an analytic oracle
// for the envelope fold.
func TestRunEnvelopeOracle(t *testing.T) {
	x := mustCompile(t, &Spec{
		Base:   GraphJSON(gen.TwoTaskChain(3, 4)),
		Method: "kiter",
		Parameters: []Param{
			{Name: "dA", Target: Target{Kind: "duration", Task: "A"}, Range: &Range{From: 1, To: 10}},
		},
	})
	r := Runner{Engine: newTestEngine(t)}
	var mu sync.Mutex
	var points []Point
	env, err := r.Run(context.Background(), x, func(p Point) error {
		mu.Lock()
		defer mu.Unlock()
		points = append(points, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 || env.Scenarios != 10 || env.Completed != 10 || env.Failed != 0 {
		t.Fatalf("points=%d envelope=%+v", len(points), env)
	}
	// Period oracle: max(dA, 4). Max throughput at dA ≤ 4 (period 4), min
	// at dA = 10 (period 10).
	for _, p := range points {
		if p.Result == nil || p.Result.Throughput == nil || p.Result.Throughput.Error != "" {
			t.Fatalf("scenario %d: bad result: %+v", p.Scenario, p.Result)
		}
		if !p.Result.Throughput.Optimal {
			t.Fatalf("scenario %d not optimal", p.Scenario)
		}
		dA := p.Params["dA"]
		want := dA
		if want < 4 {
			want = 4
		}
		wantRat := big.NewRat(want, 1)
		got, ok := new(big.Rat).SetString(p.Result.Throughput.Period)
		if !ok || got.Cmp(wantRat) != 0 {
			t.Fatalf("dA=%d: period %s, want %d", dA, p.Result.Throughput.Period, want)
		}
	}
	if env.ArgMin["dA"] != 10 {
		t.Fatalf("argMin = %v, want dA=10", env.ArgMin)
	}
	if env.ArgMax["dA"] > 4 {
		t.Fatalf("argMax = %v, want dA ≤ 4", env.ArgMax)
	}
	minR, _ := new(big.Rat).SetString(env.MinThroughput)
	maxR, _ := new(big.Rat).SetString(env.MaxThroughput)
	if minR == nil || maxR == nil || minR.Cmp(maxR) >= 0 {
		t.Fatalf("envelope min %s !< max %s", env.MinThroughput, env.MaxThroughput)
	}
	// Period mirrors: max throughput ↔ min period.
	if env.MinPeriod != "4" || env.MaxPeriod != "10" {
		t.Fatalf("period envelope = [%s, %s], want [4, 10]", env.MinPeriod, env.MaxPeriod)
	}
	if env.Stats.Evaluations == 0 || env.ElapsedMS < 0 {
		t.Fatalf("stats delta missing: %+v", env.Stats)
	}
}

// TestRunParetoFront sweeps the token count of an HSDF ring with period
// oracle max(Σd/tokens, max d): throughput rises with tokens until it
// saturates, so the Pareto front (tokens ↓, throughput ↑) is exactly the
// pre-saturation prefix.
func TestRunParetoFront(t *testing.T) {
	base := namedRing([]int64{1, 3, 4, 4}, 1) // Σd = 12, max d = 4
	x := mustCompile(t, &Spec{
		Base:   GraphJSON(base),
		Method: "kiter",
		Pareto: "tokens",
		Parameters: []Param{
			{Name: "tokens", Target: Target{Kind: "initial", Buffer: "loop"}, Range: &Range{From: 1, To: 6}},
		},
	})
	r := Runner{Engine: newTestEngine(t)}
	env, err := r.Run(context.Background(), x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.Completed != 6 {
		t.Fatalf("completed = %d", env.Completed)
	}
	// Saturation at tokens = 3 (12/3 = 4 = max d): front = tokens 1, 2, 3.
	if len(env.Pareto) != 3 {
		t.Fatalf("front = %+v, want 3 points", env.Pareto)
	}
	var prev *big.Rat
	for i, pp := range env.Pareto {
		if pp.Axis != int64(i+1) {
			t.Fatalf("front axis order = %+v", env.Pareto)
		}
		r, ok := new(big.Rat).SetString(pp.Throughput)
		if !ok {
			t.Fatalf("front throughput %q", pp.Throughput)
		}
		if prev != nil && r.Cmp(prev) <= 0 {
			t.Fatal("front throughput not strictly increasing")
		}
		prev = r
	}
}

// TestRunEnvelopeDeterministic runs the same tie-heavy sweep repeatedly:
// argmin/argmax and the Pareto front must not depend on completion order.
func TestRunEnvelopeDeterministic(t *testing.T) {
	spec := VideoPipelineSpec(5, 5) // several scenarios share the max throughput
	spec.Method = "kiter"
	var ref *Envelope
	for i := 0; i < 4; i++ {
		x := mustCompile(t, spec)
		r := Runner{Engine: newTestEngine(t), Width: 8}
		env, err := r.Run(context.Background(), x, nil)
		if err != nil {
			t.Fatal(err)
		}
		env.ElapsedMS = 0
		env.Stats = engine.Stats{}
		if ref == nil {
			ref = env
			continue
		}
		got, _ := json.Marshal(env)
		want, _ := json.Marshal(ref)
		if string(got) != string(want) {
			t.Fatalf("run %d envelope differs:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestRunEmitErrorCancels proves a failing emit (a disconnected client)
// aborts the sweep: Run returns the emit error and stops issuing scenarios.
func TestRunEmitErrorCancels(t *testing.T) {
	x := mustCompile(t, &Spec{
		Base:   GraphJSON(gen.TwoTaskChain(3, 4)),
		Method: "kiter",
		// NoCache keeps every scenario a real evaluation, so the family
		// cannot finish before the cancel takes effect.
		NoCache: true,
		Parameters: []Param{
			{Name: "dA", Target: Target{Kind: "duration", Task: "A"}, Range: &Range{From: 1, To: 200}},
		},
	})
	boom := errors.New("client gone")
	r := Runner{Engine: newTestEngine(t), Width: 2}
	var emitted int
	_, err := r.Run(context.Background(), x, func(p Point) error {
		emitted++
		if emitted == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want emit error", err)
	}
	if emitted > 5 {
		t.Fatalf("emit called %d times after failure", emitted)
	}
}

// TestRunContextCancel proves an outer cancellation surfaces as ctx.Err().
func TestRunContextCancel(t *testing.T) {
	x := mustCompile(t, &Spec{
		Base:    GraphJSON(gen.TwoTaskChain(3, 4)),
		Method:  "kiter",
		NoCache: true,
		Parameters: []Param{
			{Name: "dA", Target: Target{Kind: "duration", Task: "A"}, Range: &Range{From: 1, To: 500}},
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	r := Runner{Engine: newTestEngine(t), Width: 2}
	var once sync.Once
	_, err := r.Run(ctx, x, func(p Point) error {
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunMaterializationFailuresAreFailedPoints sweeps a rate down to zero:
// the infeasible scenario fails validation at materialization and is
// counted in Failed without aborting the family.
func TestRunMaterializationFailuresAreFailedPoints(t *testing.T) {
	x := mustCompile(t, &Spec{
		Base:   GraphJSON(gen.TwoTaskChain(3, 4)),
		Method: "kiter",
		Parameters: []Param{
			{Name: "rate", Target: Target{Kind: "production", Buffer: "A->B"}, Range: &Range{From: 0, To: 2}},
		},
	})
	r := Runner{Engine: newTestEngine(t)}
	var failed, ok int
	env, err := r.Run(context.Background(), x, func(p Point) error {
		if p.Error != "" {
			failed++
		} else {
			ok++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 || ok != 2 {
		t.Fatalf("failed=%d ok=%d", failed, ok)
	}
	if env.Failed != 1 || env.Completed != 2 {
		t.Fatalf("envelope = %+v", env)
	}
}

// TestRunDeadlockIsAnalysisError sweeps initial tokens to zero on a ring:
// the deadlocked scenario completes with a per-section error and counts as
// an analysis error, not a run failure.
func TestRunDeadlockIsAnalysisError(t *testing.T) {
	base := namedRing([]int64{1, 1, 1}, 2)
	x := mustCompile(t, &Spec{
		Base:   GraphJSON(base),
		Method: "kiter",
		Parameters: []Param{
			{Name: "tokens", Target: Target{Kind: "initial", Buffer: "loop"}, Range: &Range{From: 0, To: 2}},
		},
	})
	r := Runner{Engine: newTestEngine(t)}
	env, err := r.Run(context.Background(), x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.Failed != 0 {
		t.Fatalf("deadlock counted as run failure: %+v", env)
	}
	if env.AnalysisErrors != 1 {
		t.Fatalf("analysisErrors = %d, want 1 (tokens=0 deadlocks)", env.AnalysisErrors)
	}
	if env.Completed != 3 {
		t.Fatalf("completed = %d", env.Completed)
	}
}

// TestPointJSONShape pins the wire contract of a streamed point.
func TestPointJSONShape(t *testing.T) {
	p := Point{Scenario: 3, Params: map[string]int64{"dA": 7}}
	buf, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	if m["scenario"] != float64(3) {
		t.Fatalf("scenario field: %v", m)
	}
	if _, ok := m["result"]; ok {
		t.Fatal("empty result not omitted")
	}
}
