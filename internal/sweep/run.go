package sweep

import (
	"context"
	"math/big"
	"sort"
	"time"

	"kiter/internal/engine"
)

// Point is one scenario's outcome: its index and parameter assignment plus
// either the engine result or a submission-level error. Analysis-level
// failures (deadlock, budget exhaustion) live inside Result's per-section
// Error fields, like everywhere else in the system.
type Point struct {
	Scenario int              `json:"scenario"`
	Params   map[string]int64 `json:"params"`
	Result   *engine.Result   `json:"result,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// ParetoPoint is one undominated scenario of the envelope's Pareto front.
type ParetoPoint struct {
	Scenario   int              `json:"scenario"`
	Axis       int64            `json:"axis"`
	Throughput string           `json:"throughput"`
	Params     map[string]int64 `json:"params"`
}

// Envelope is the aggregate a sweep folds its points into.
type Envelope struct {
	// Scenarios is the family size; Failed counts submission-level
	// failures (materialization errors, engine errors, cancellations);
	// AnalysisErrors counts scenarios whose throughput analysis reported a
	// per-section error (deadlock, budget exhaustion) — a legitimate sweep
	// outcome, not a run failure.
	Scenarios      int `json:"scenarios"`
	Completed      int `json:"completed"`
	Failed         int `json:"failed"`
	AnalysisErrors int `json:"analysisErrors"`

	// Min/Max describe the throughput envelope over the successfully
	// analyzed points, with the scenario assignments achieving them.
	MinThroughput string           `json:"minThroughput,omitempty"`
	MaxThroughput string           `json:"maxThroughput,omitempty"`
	MinPeriod     string           `json:"minPeriod,omitempty"`
	MaxPeriod     string           `json:"maxPeriod,omitempty"`
	ArgMin        map[string]int64 `json:"argMin,omitempty"`
	ArgMax        map[string]int64 `json:"argMax,omitempty"`
	ArgMinIndex   int              `json:"argMinScenario"`
	ArgMaxIndex   int              `json:"argMaxScenario"`

	// Pareto is the undominated set over (axis parameter ↓, throughput ↑),
	// sorted by ascending axis value; present when the spec set an axis.
	Pareto []ParetoPoint `json:"pareto,omitempty"`

	// ElapsedMS is the sweep wall-clock; Stats the engine counter movement
	// during the sweep (cache hits across overlapping scenarios show here).
	ElapsedMS float64      `json:"elapsedMs"`
	Stats     engine.Stats `json:"stats"`
}

// Runner streams sweeps through an engine.
type Runner struct {
	Engine *engine.Engine
	// Width bounds concurrent scenario submissions (0 = the engine's batch
	// default, 2·workers clamped below the load-shedding threshold).
	Width int
	// PointTimeout bounds each scenario individually (0 = none) — the
	// server's per-request analysis budget applied per scenario, so a
	// large sweep of fast scenarios never times out as a whole while one
	// pathological scenario still cannot pin a worker forever.
	PointTimeout time.Duration
	// MemberContext, when set, derives each scenario's submission context
	// — the server uses it to open sampled per-scenario trace spans that
	// hang off the sweep's root. It may be called from many scenario
	// goroutines concurrently.
	MemberContext func(ctx context.Context, i int) context.Context
}

// rCmpOrNew compares r to a possibly-nil current bound (0 when unset).
func rCmpOrNew(r, cur *big.Rat) int {
	if cur == nil {
		return 0
	}
	return r.Cmp(cur)
}

// throughputRat parses a result's exact throughput for envelope folding.
func throughputRat(res *engine.Result) (*big.Rat, bool) {
	t := res.Throughput
	if t == nil || t.Error != "" || t.Throughput == "" {
		return nil, false
	}
	r, ok := new(big.Rat).SetString(t.Throughput)
	return r, ok
}

// paretoCand is a Pareto candidate with its throughput already parsed, so
// finish never re-parses what add validated.
type paretoCand struct {
	point ParetoPoint
	rat   *big.Rat
}

// fold accumulates the envelope as points complete.
type fold struct {
	env     Envelope
	x       *Expansion
	min     *big.Rat
	max     *big.Rat
	paretos []paretoCand // candidate set; reduced at finish
}

func (f *fold) add(p Point) {
	if p.Error != "" {
		f.env.Failed++
		return
	}
	f.env.Completed++
	r, ok := throughputRat(p.Result)
	if !ok {
		if t := p.Result.Throughput; t != nil && t.Error != "" {
			f.env.AnalysisErrors++
		}
		return
	}
	// Ties break toward the lowest scenario index so identical specs yield
	// identical envelopes regardless of completion order.
	if c := rCmpOrNew(r, f.min); f.min == nil || c < 0 || (c == 0 && p.Scenario < f.env.ArgMinIndex) {
		f.min = r
		f.env.MinThroughput = p.Result.Throughput.Throughput
		f.env.MaxPeriod = p.Result.Throughput.Period
		f.env.ArgMin = p.Params
		f.env.ArgMinIndex = p.Scenario
	}
	if c := rCmpOrNew(r, f.max); f.max == nil || c > 0 || (c == 0 && p.Scenario < f.env.ArgMaxIndex) {
		f.max = r
		f.env.MaxThroughput = p.Result.Throughput.Throughput
		f.env.MinPeriod = p.Result.Throughput.Period
		f.env.ArgMax = p.Params
		f.env.ArgMaxIndex = p.Scenario
	}
	if f.x.paretoAxis >= 0 {
		f.paretos = append(f.paretos, paretoCand{
			point: ParetoPoint{
				Scenario:   p.Scenario,
				Axis:       f.x.Values(p.Scenario)[f.x.paretoAxis],
				Throughput: p.Result.Throughput.Throughput,
				Params:     p.Params,
			},
			rat: r,
		})
	}
}

// finish reduces the Pareto candidates to the undominated set: minimize the
// axis parameter, maximize throughput. A point survives iff no other point
// has axis ≤ and throughput ≥ with one strict.
func (f *fold) finish() {
	if f.x.paretoAxis < 0 || len(f.paretos) == 0 {
		return
	}
	ps := f.paretos
	// Ascending axis, ties broken by descending throughput (so the first
	// point of each axis value is its best), then by scenario index — the
	// last key makes the front deterministic under completion-order races.
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].point.Axis != ps[b].point.Axis {
			return ps[a].point.Axis < ps[b].point.Axis
		}
		if c := ps[a].rat.Cmp(ps[b].rat); c != 0 {
			return c > 0
		}
		return ps[a].point.Scenario < ps[b].point.Scenario
	})
	var front []ParetoPoint
	var best *big.Rat
	lastAxis := int64(0)
	for _, c := range ps {
		if best != nil && c.point.Axis == lastAxis {
			continue // dominated by the better point at the same axis value
		}
		if best == nil || c.rat.Cmp(best) > 0 {
			front = append(front, c.point)
			best = c.rat
			lastAxis = c.point.Axis
		}
	}
	f.env.Pareto = front
}

// Run expands and executes the sweep, invoking emit for every point in
// completion order (emit is serialized; it may write straight to a network
// stream). The envelope is returned once every scenario resolved. An emit
// error — a disconnected client — cancels the remaining scenarios,
// including in-flight solves, and is returned after the tail drains.
// A ctx cancellation likewise stops the sweep and returns ctx.Err();
// scenarios already completed are still reflected in the partial fold, but
// no envelope is produced for an aborted sweep.
func (r *Runner) Run(ctx context.Context, x *Expansion, emit func(Point) error) (*Envelope, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	f := fold{x: x}
	f.env.Scenarios = x.Total()
	f.env.ArgMinIndex = -1
	f.env.ArgMaxIndex = -1
	before := r.Engine.Stats()
	start := time.Now()

	var emitErr error
	cfg := engine.FamilyConfig{Width: r.Width, MemberTimeout: r.PointTimeout, MemberContext: r.MemberContext}
	err := r.Engine.SubmitFamily(ctx, x.Total(), cfg, x.Request, func(fr engine.FamilyResult) {
		p := Point{Scenario: fr.Index, Params: x.Assignment(fr.Index), Result: fr.Result}
		if fr.Err != nil {
			p.Error = fr.Err.Error()
		}
		f.add(p)
		if emitErr != nil {
			return // client already gone; drain silently
		}
		if emit != nil {
			if err := emit(p); err != nil {
				emitErr = err
				cancel()
			}
		}
	})
	if emitErr != nil {
		return nil, emitErr
	}
	if err != nil {
		return nil, err
	}
	f.finish()
	f.env.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	f.env.Stats = r.Engine.Stats().Delta(before)
	return &f.env, nil
}
