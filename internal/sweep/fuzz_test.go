package sweep

import (
	"encoding/json"
	"errors"
	"testing"

	"kiter/internal/gen"
)

// FuzzParseSpec throws arbitrary bytes at the spec parser, compiler and
// expander: malformed JSON, unknown fields, empty/inverted ranges,
// zero/negative rates and cross-product blowups must all surface as errors
// — never as a panic — and whatever compiles must materialize cleanly or
// fail scenario-locally.
func FuzzParseSpec(f *testing.F) {
	// Well-formed seeds: the canonical fixture plus targeted mutations that
	// sit on each validation boundary.
	if data, err := json.Marshal(VideoPipelineSpec(3, 3)); err == nil {
		f.Add(data)
	}
	if spec, err := RandomSpec(7); err == nil {
		if data, err := json.Marshal(spec); err == nil {
			f.Add(data)
		}
	}
	chain := string(GraphJSON(gen.TwoTaskChain(3, 4)))
	f.Add([]byte(`{"base": ` + chain + `, "parameters": [{"name": "p", "target": {"kind": "duration", "task": "A"}, "values": [1, 2]}]}`))
	f.Add([]byte(`{"base": ` + chain + `, "parameters": [{"name": "p", "target": {"kind": "production", "buffer": "A->B"}, "range": {"from": 0, "to": 3}}]}`))
	f.Add([]byte(`{"base": ` + chain + `, "parameters": [{"name": "p", "target": {"kind": "initial", "buffer": "A->B"}, "range": {"from": 5, "to": 1}}]}`))
	f.Add([]byte(`{"base": ` + chain + `, "parameters": [{"name": "p", "target": {"kind": "duration", "task": "A"}, "range": {"from": 0, "to": 9007199254740993}}]}`))
	f.Add([]byte(`{"base": {}, "parameters": []}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		x, err := Compile(spec, false)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("compile error %q is not a *SpecError", err)
			}
			return
		}
		if x.Total() < 1 || x.Total() > HardMaxScenarios {
			t.Fatalf("total %d outside (0, %d]", x.Total(), HardMaxScenarios)
		}
		// Materialize a bounded sample; every scenario must either build a
		// valid graph or fail with an error, never panic, and never mutate
		// the base.
		baseFP := x.Base().FingerprintHex()
		limit := x.Total()
		if limit > 64 {
			limit = 64
		}
		for i := 0; i < limit; i++ {
			if g, err := x.Materialize(i); err == nil {
				if err := g.Validate(); err != nil {
					t.Fatalf("scenario %d: materialized graph fails validation: %v", i, err)
				}
			}
			vals := x.Values(i)
			if len(vals) != len(x.ParamNames()) {
				t.Fatalf("scenario %d: %d values for %d parameters", i, len(vals), len(x.ParamNames()))
			}
		}
		if x.Base().FingerprintHex() != baseFP {
			t.Fatal("materialization mutated the base graph")
		}
	})
}

// FuzzExpandRange drives the range expander over arbitrary int64 corners
// (extreme From/To, huge steps, overflow-adjacent bounds): it must either
// reject the range or generate a value list that starts at From, steps
// uniformly and never leaves [From, To].
func FuzzExpandRange(f *testing.F) {
	f.Add(int64(1), int64(10), int64(1))
	f.Add(int64(-5), int64(5), int64(3))
	f.Add(int64(0), int64(0), int64(0))
	f.Add(int64(9223372036854775807), int64(9223372036854775807), int64(1))
	f.Add(int64(-9223372036854775808), int64(9223372036854775807), int64(1))
	f.Add(int64(5), int64(1), int64(1))
	f.Add(int64(0), int64(1<<40), int64(1))
	f.Fuzz(func(t *testing.T, from, to, step int64) {
		p := Param{Name: "p", Range: &Range{From: from, To: to, Step: step}}
		vs, err := p.values()
		if err != nil {
			return
		}
		if len(vs) == 0 || len(vs) > HardMaxScenarios {
			t.Fatalf("range %d..%d/%d: %d values", from, to, step, len(vs))
		}
		if vs[0] != from {
			t.Fatalf("range %d..%d/%d starts at %d", from, to, step, vs[0])
		}
		eff := step
		if eff == 0 {
			eff = 1
		}
		for i, v := range vs {
			if v < from || v > to {
				t.Fatalf("range %d..%d/%d: value %d outside bounds", from, to, step, v)
			}
			if i > 0 && v-vs[i-1] != eff {
				t.Fatalf("range %d..%d/%d: non-uniform step at %d", from, to, step, i)
			}
		}
		// Maximal: one more step would leave the range. uint64 keeps the
		// difference exact when to−last would overflow int64.
		if last := vs[len(vs)-1]; uint64(to-last) >= uint64(eff) {
			t.Fatalf("range %d..%d/%d: stops early at %d", from, to, step, last)
		}
	})
}

// FuzzTargetResolve drives target resolution over arbitrary names, kinds
// and phases against a fixed multi-phase base graph: resolution must
// accept exactly the structurally valid sites and reject everything else
// without panicking, and an accepted site must materialize.
func FuzzTargetResolve(f *testing.F) {
	f.Add("duration", "B", "", 2, int64(9))
	f.Add("production", "", "B->C", 1, int64(7))
	f.Add("consumption", "", "C->A", 0, int64(3))
	f.Add("initial", "", "A->D", 0, int64(0))
	f.Add("tokens", "A", "A->B", -1, int64(-4))
	f.Fuzz(func(t *testing.T, kind, task, buffer string, phase int, value int64) {
		base := gen.Figure2()
		tgt := Target{Kind: kind, Task: task, Buffer: buffer, Phase: phase}
		st, err := tgt.resolve(base, "p")
		if err != nil {
			return
		}
		if _, err := base.CloneWithEdits(st.edit(value)); err != nil {
			t.Fatalf("resolved site %+v failed to materialize: %v", tgt, err)
		}
	})
}
