package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"kiter/internal/gen"
)

// TestRunEmitErrorHandoff pins the emitErr handoff contract in Runner.Run:
// the SubmitFamily completion callback *writes* emitErr (and cancels the
// family) from whatever goroutine delivers completions, and Run *reads* it
// after SubmitFamily returns. That is only race-free because SubmitFamily
// serializes its callbacks and establishes a happens-before between the
// last callback and its own return — a contract this test makes explicit
// (run it under -race; CI always does) instead of leaving it as a comment.
//
// The sweep is wide (Width 8 over a ≥60-scenario family) and the emit
// failure is injected mid-stream, so plenty of in-flight scenarios are
// still completing — and draining through the callback — while Run is on
// its way to the emitErr read.
func TestRunEmitErrorHandoff(t *testing.T) {
	e := newTestEngine(t)
	sentinel := errors.New("client disconnected")

	for round := 0; round < 5; round++ {
		x := mustCompile(t, VideoPipelineSpec(8, 8))
		r := Runner{Engine: e, Width: 8}

		var emitted, afterErr atomic.Int64
		env, err := r.Run(context.Background(), x, func(p Point) error {
			if emitted.Add(1) == 3 {
				return sentinel
			}
			// The runner must never invoke emit again after it returned an
			// error: the client is gone, remaining points drain silently.
			if emitted.Load() > 3 {
				afterErr.Add(1)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("round %d: err = %v, want the emit error", round, err)
		}
		if env != nil {
			t.Fatalf("round %d: envelope produced for an aborted sweep", round)
		}
		if n := afterErr.Load(); n != 0 {
			t.Fatalf("round %d: emit invoked %d times after it failed", round, n)
		}
	}
}

// TestRunEmitErrorFirstPoint hits the handoff at the earliest possible
// moment — the very first completion fails the stream while the rest of
// the family is still being submitted — the worst case for the
// cancel-while-submitting path.
func TestRunEmitErrorFirstPoint(t *testing.T) {
	e := newTestEngine(t)
	sentinel := errors.New("gone immediately")
	x := mustCompile(t, &Spec{
		Base:   GraphJSON(gen.TwoTaskChain(3, 4)),
		Method: "kiter",
		Parameters: []Param{
			{Name: "dA", Target: Target{Kind: "duration", Task: "A"}, Range: &Range{From: 1, To: 64}},
		},
	})
	r := Runner{Engine: e, Width: 4}
	env, err := r.Run(context.Background(), x, func(Point) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if env != nil {
		t.Fatal("envelope produced for an aborted sweep")
	}
}
