package sweep

import (
	"kiter/internal/csdf"
	"kiter/internal/engine"
)

// param is a compiled parameter: its point list plus the resolved edit site.
type param struct {
	name   string
	site   site
	values []int64
}

// Expansion is a compiled sweep: the validated base graph, the parameter
// grid, and the scenario enumeration. Scenarios are indexed 0..Total()−1 in
// row-major order over the parameter declaration order (the last parameter
// varies fastest), so neighbouring indices differ in one value — the order
// that maximizes structural overlap for the engine's fingerprint cache.
type Expansion struct {
	base   *csdf.Graph
	params []param
	total  int

	// per-scenario engine knobs, validated at compile time
	method     engine.Method
	analyses   []engine.AnalysisKind
	capacities bool
	noCache    bool
	paretoAxis int // index into params, -1 = none
}

// Compile validates a parsed spec against its base graph and returns the
// scenario family. Every error is a *SpecError. capacitiesDefault is the
// server-level default the spec's "capacities" field may override.
func Compile(s *Spec, capacitiesDefault bool) (*Expansion, error) {
	base, err := s.parseBase()
	if err != nil {
		return nil, err
	}
	method, analyses, err := s.engineKnobs()
	if err != nil {
		return nil, err
	}
	if len(s.Parameters) == 0 {
		return nil, specErrf("spec has no parameters")
	}
	limit := s.MaxScenarios
	switch {
	case limit == 0:
		limit = DefaultMaxScenarios
	case limit < 0:
		return nil, specErrf("negative maxScenarios %d", limit)
	case limit > HardMaxScenarios:
		return nil, specErrf("maxScenarios %d exceeds the hard cap %d", limit, HardMaxScenarios)
	}
	x := &Expansion{
		base:       base,
		total:      1,
		method:     method,
		analyses:   analyses,
		capacities: capacitiesDefault,
		noCache:    s.NoCache,
		paretoAxis: -1,
	}
	if s.Capacities != nil {
		x.capacities = *s.Capacities
	}
	seen := map[string]bool{}
	for i, p := range s.Parameters {
		if p.Name == "" {
			return nil, specErrf("parameter %d has no name", i)
		}
		if seen[p.Name] {
			return nil, specErrf("duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		vs, err := p.values()
		if err != nil {
			return nil, err
		}
		st, err := p.Target.resolve(base, p.Name)
		if err != nil {
			return nil, err
		}
		// Overlapping targets would make later parameters silently shadow
		// earlier ones: the grid would enumerate value combinations that
		// never reach the graph, attributing throughput differences to a
		// parameter with no effect. Reject them up front.
		for k := range x.params {
			if x.params[k].site.overlaps(st) {
				return nil, specErrf("parameters %q and %q target the same site", x.params[k].name, p.Name)
			}
		}
		// The running total is already ≤ limit and each factor is bounded
		// by the body size, so the product cannot overflow int64 — but it
		// can overflow a 32-bit int, so widen before multiplying. Compare
		// against the cap after every factor so the error names the first
		// parameter that blows the budget.
		if int64(x.total)*int64(len(vs)) > int64(limit) {
			return nil, specErrf("cross product exceeds %d scenarios at parameter %q (raise maxScenarios or shrink a range)", limit, p.Name)
		}
		x.total *= len(vs)
		x.params = append(x.params, param{name: p.Name, site: st, values: vs})
	}
	if s.Pareto != "" {
		for i := range x.params {
			if x.params[i].name == s.Pareto {
				x.paretoAxis = i
			}
		}
		if x.paretoAxis < 0 {
			return nil, specErrf("pareto axis %q is not a parameter", s.Pareto)
		}
	}
	return x, nil
}

// Total returns the scenario count of the family.
func (x *Expansion) Total() int { return x.total }

// Base returns the validated base graph. Callers must treat it as
// immutable; scenario clones share its structure.
func (x *Expansion) Base() *csdf.Graph { return x.base }

// ParamNames returns the parameter names in declaration order.
func (x *Expansion) ParamNames() []string {
	names := make([]string, len(x.params))
	for i := range x.params {
		names[i] = x.params[i].name
	}
	return names
}

// Values returns scenario i's parameter values in declaration order.
func (x *Expansion) Values(i int) []int64 {
	vals := make([]int64, len(x.params))
	// Row-major decode: the last parameter varies fastest.
	for k := len(x.params) - 1; k >= 0; k-- {
		n := len(x.params[k].values)
		vals[k] = x.params[k].values[i%n]
		i /= n
	}
	return vals
}

// Assignment returns scenario i's parameter values keyed by name — the
// wire form of a sweep point.
func (x *Expansion) Assignment(i int) map[string]int64 {
	vals := x.Values(i)
	m := make(map[string]int64, len(vals))
	for k := range x.params {
		m[x.params[k].name] = vals[k]
	}
	return m
}

// Materialize builds scenario i's concrete graph: the base structure with
// every parameter substituted, validated. The clone shares untouched rate
// and duration vectors with the base (see csdf.CloneWithEdits), so a large
// family costs O(edits) extra memory per member.
func (x *Expansion) Materialize(i int) (*csdf.Graph, error) {
	vals := x.Values(i)
	edits := make([]csdf.Edit, len(vals))
	for k := range x.params {
		edits[k] = x.params[k].site.edit(vals[k])
	}
	g, err := x.base.CloneWithEdits(edits...)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Request builds the engine request for scenario i.
func (x *Expansion) Request(i int) (*engine.Request, error) {
	g, err := x.Materialize(i)
	if err != nil {
		return nil, err
	}
	return &engine.Request{
		Graph:           g,
		Analyses:        x.analyses,
		Method:          x.method,
		ApplyCapacities: x.capacities,
		NoCache:         x.noCache,
	}, nil
}
