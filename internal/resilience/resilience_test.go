package resilience

import (
	"sync"
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(3)
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	if b.Failure() {
		t.Fatal("opened on 1st failure")
	}
	if b.Failure() {
		t.Fatal("opened on 2nd failure")
	}
	if !b.Failure() {
		t.Fatal("3rd failure did not open")
	}
	if b.Allow() || b.State() != BreakerOpen {
		t.Fatal("open breaker allowing traffic")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
	// Failures against an already-open breaker are not new transitions.
	if b.Failure() {
		t.Fatal("failure on open breaker reported a transition")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d after redundant failure, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	b := NewBreaker(1)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker not open after one failure")
	}
	// HalfOpen only acts on an open breaker.
	b.HalfOpen()
	if b.State() != BreakerHalfOpen || !b.Allow() {
		t.Fatal("probe success did not half-open")
	}
	// Failed trial → straight back to open, counting a fresh transition.
	if !b.Failure() {
		t.Fatal("half-open failure did not re-open")
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
	b.HalfOpen()
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful trial did not close")
	}
	// HalfOpen on a closed breaker must not regress it.
	b.HalfOpen()
	if b.State() != BreakerClosed {
		t.Fatal("HalfOpen regressed a closed breaker")
	}
}

func TestBreakerForceOpen(t *testing.T) {
	b := NewBreaker(5)
	if !b.ForceOpen() {
		t.Fatal("ForceOpen on closed breaker returned false")
	}
	if b.ForceOpen() {
		t.Fatal("ForceOpen on open breaker returned true")
	}
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state=%v opens=%d", b.State(), b.Opens())
	}
}

func TestBreakerConcurrency(t *testing.T) {
	b := NewBreaker(2)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				b.Failure()
			} else {
				b.Success()
			}
			b.Allow()
			b.State()
		}(i)
	}
	wg.Wait() // the race detector is the assertion
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}

func estimatorOf(pending, workers int, p90 float64) Estimator {
	return Estimator{
		QuantileWait: func(q float64) float64 { return p90 },
		Pending:      func() int { return pending },
		Workers:      workers,
	}
}

func TestEstimateWait(t *testing.T) {
	// Free worker → no wait, regardless of history.
	e := estimatorOf(1, 2, 10)
	if got := e.EstimateWait(); got != 0 {
		t.Fatalf("underloaded estimate = %v, want 0", got)
	}
	// Saturated pool: p90 scaled by backlog ratio (8 pending / 2 workers).
	e = estimatorOf(8, 2, 0.5)
	if got := e.EstimateWait(); got != 2*time.Second {
		t.Fatalf("saturated estimate = %v, want 2s", got)
	}
	// No history yet → optimistic zero even when saturated.
	e = estimatorOf(8, 2, 0)
	if got := e.EstimateWait(); got != 0 {
		t.Fatalf("cold estimate = %v, want 0", got)
	}
	// Nil estimator pieces never panic.
	var nilEst *Estimator
	if nilEst.EstimateWait() != 0 {
		t.Fatal("nil estimator estimated")
	}
	if (&Estimator{Workers: 2}).EstimateWait() != 0 {
		t.Fatal("estimator without Pending estimated")
	}
}

func TestAdmissionShedsBeyondBudget(t *testing.T) {
	a := NewAdmission(estimatorOf(8, 2, 0.5)) // 2s estimated wait

	// Budget above the estimate: admitted.
	if est, shed := a.Check(5 * time.Second); shed || est != 2*time.Second {
		t.Fatalf("Check(5s) = %v, %v", est, shed)
	}
	// Budget below: shed, counted.
	if _, shed := a.Check(time.Second); !shed {
		t.Fatal("Check(1s) admitted a hopeless request")
	}
	if _, shed := a.Check(time.Second); !shed {
		t.Fatal("second hopeless request admitted")
	}
	// No deadline = infinite budget: always admitted.
	if _, shed := a.Check(0); shed {
		t.Fatal("deadline-free request shed")
	}
	s := a.Stats()
	if s.Shed != 2 {
		t.Fatalf("Shed = %d, want 2", s.Shed)
	}
	if s.EstimatedWaitMS != 2000 {
		t.Fatalf("EstimatedWaitMS = %v, want 2000", s.EstimatedWaitMS)
	}
	if a.EstimateWait() != 2*time.Second {
		t.Fatalf("EstimateWait = %v", a.EstimateWait())
	}
}

func TestAdmissionNilSafe(t *testing.T) {
	var a *Admission
	if _, shed := a.Check(time.Nanosecond); shed {
		t.Fatal("nil admission shed")
	}
	if a.EstimateWait() != 0 || a.Stats() != (AdmissionStats{}) {
		t.Fatal("nil admission reported state")
	}
}
