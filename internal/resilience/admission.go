package resilience

import (
	"math"
	"sync/atomic"
	"time"
)

// Estimator predicts the queue wait a newly submitted job will see, from
// the engine's observed queue-wait distribution and its current load. The
// model is deliberately coarse: with a free worker the wait is ~zero; at
// or beyond saturation it extrapolates the observed p90 queue wait
// linearly with the backlog ratio pending/workers (Little's-law-flavored:
// twice the backlog ≈ twice the wait). It systematically errs pessimistic
// under deepening overload, which is the correct direction for shedding.
type Estimator struct {
	// QuantileWait returns the q-quantile of observed queue waits in
	// seconds (the engine's kiter_engine_queue_wait_seconds histogram).
	// Zero (no observations yet, or nil func) disables shedding — an
	// optimistic cold start, matching the histogram's empty state.
	QuantileWait func(q float64) float64
	// Pending returns jobs submitted but not yet finished; Workers is the
	// evaluation pool size.
	Pending func() int
	Workers int
}

// waitQuantile is the queue-wait quantile the estimate extrapolates from.
const waitQuantile = 0.9

// EstimateWait returns the predicted queue wait for a job submitted now.
func (e *Estimator) EstimateWait() time.Duration {
	if e == nil || e.Workers <= 0 || e.Pending == nil {
		return 0
	}
	pending := e.Pending()
	if pending < e.Workers {
		return 0 // a worker slot is (about to be) free
	}
	var base float64
	if e.QuantileWait != nil {
		base = e.QuantileWait(waitQuantile)
	}
	if base <= 0 {
		return 0
	}
	backlog := float64(pending) / float64(e.Workers)
	secs := base * backlog
	if secs > math.MaxInt32 { // clamp pathological extrapolations
		secs = math.MaxInt32
	}
	return time.Duration(secs * float64(time.Second))
}

// Admission sheds load before it queues: requests whose estimated queue
// wait already exceeds their deadline budget are refused up front (HTTP
// 429 + Retry-After in cmd/kiterd) instead of occupying a pending slot
// only to time out. It complements — not replaces — the engine's hard
// MaxPending cliff (ErrOverloaded → 503).
type Admission struct {
	est  Estimator
	shed atomic.Uint64
}

// NewAdmission builds an admission controller over est.
func NewAdmission(est Estimator) *Admission {
	return &Admission{est: est}
}

// Check decides one request: shed=true means refuse it now, with estimate
// as the predicted wait to report via Retry-After. budget <= 0 means the
// request has no deadline, so it is always admitted (it can afford any
// wait). Nil receivers admit everything — servers without an estimator
// keep only the hard overload cliff.
func (a *Admission) Check(budget time.Duration) (estimate time.Duration, shed bool) {
	if a == nil {
		return 0, false
	}
	estimate = a.est.EstimateWait()
	if budget <= 0 || estimate <= budget {
		return estimate, false
	}
	a.shed.Add(1)
	return estimate, true
}

// EstimateWait exposes the current prediction without an admission
// decision — the Retry-After source for responses shed elsewhere (the
// engine's own ErrOverloaded 503s).
func (a *Admission) EstimateWait() time.Duration {
	if a == nil {
		return 0
	}
	return a.est.EstimateWait()
}

// AdmissionStats is the /stats view of the controller.
type AdmissionStats struct {
	// Shed counts requests refused because their estimated queue wait
	// exceeded their deadline budget.
	Shed uint64 `json:"shed"`
	// EstimatedWaitMS is the current queue-wait prediction.
	EstimatedWaitMS float64 `json:"estimatedWaitMs"`
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		Shed:            a.shed.Load(),
		EstimatedWaitMS: float64(a.est.EstimateWait()) / float64(time.Millisecond),
	}
}
