// Package resilience holds the fault-tolerance primitives shared by the
// serving stack: a consecutive-failure circuit breaker (internal/cluster
// runs one per peer) and queue-wait-based admission control (cmd/kiterd
// sheds requests whose estimated wait exceeds their deadline budget).
// Everything here is dependency-free and safe for concurrent use.
package resilience

import (
	"sync"
	"sync/atomic"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: one trial's worth of traffic is admitted after a
	// successful probe; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
	// BreakerOpen: traffic is refused until an external probe half-opens.
	BreakerOpen
)

// String renders the state for stats and metric labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker. It has no internal
// timers: the owner drives every transition. Failure in Closed counts
// toward the threshold and opens at it; Failure in HalfOpen re-opens
// immediately (the trial failed); Success resets the count and closes from
// any state; HalfOpen moves Open → HalfOpen (call it when an out-of-band
// health probe succeeds). All methods are safe for concurrent use.
type Breaker struct {
	threshold int

	mu    sync.Mutex
	state BreakerState
	fails int

	opens atomic.Uint64
}

// NewBreaker builds a closed breaker that opens after threshold
// consecutive failures (minimum 1).
func NewBreaker(threshold int) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold}
}

// Allow reports whether traffic may pass: true unless the breaker is open.
func (b *Breaker) Allow() bool { return b.State() != BreakerOpen }

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the cumulative number of closed/half-open → open
// transitions — the "breaker tripped" counter surfaced on stats.
func (b *Breaker) Opens() uint64 { return b.opens.Load() }

// Success records a successful call: the failure streak resets and the
// breaker closes (a half-open trial that succeeds ends the incident).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.state = BreakerClosed
}

// Failure records a failed call and returns true when this call tripped
// the breaker open (callers use the edge to schedule probing). In
// HalfOpen a single failure re-opens: the trial answered the question.
func (b *Breaker) Failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return false
	case BreakerHalfOpen:
		return b.openLocked()
	default:
		b.fails++
		if b.fails >= b.threshold {
			return b.openLocked()
		}
		return false
	}
}

// ForceOpen trips the breaker regardless of the failure count and reports
// whether this call performed the transition (false when already open).
func (b *Breaker) ForceOpen() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return false
	}
	return b.openLocked()
}

// HalfOpen admits a trial through an open breaker; no-op in any other
// state (a closed breaker must not regress to trialing).
func (b *Breaker) HalfOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		b.state = BreakerHalfOpen
		b.fails = 0
	}
}

func (b *Breaker) openLocked() bool {
	b.state = BreakerOpen
	b.fails = 0
	b.opens.Add(1)
	return true
}
