package sched_test

import (
	"strings"
	"testing"

	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/sched"
	"kiter/internal/symbexec"
)

func TestGanttFromTraceFigure3(t *testing.T) {
	g := gen.Figure2()
	trace, dead, err := symbexec.Simulate(g, 26)
	if err != nil || dead {
		t.Fatalf("simulate: err=%v dead=%v", err, dead)
	}
	gt := sched.FromTrace(g, trace, "ASAP schedule (Figure 3)")
	out := gt.Render(80)
	for _, frag := range []string{"A", "B", "C", "D", "Figure 3"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 6 { // title+ruler+4 rows
		t.Errorf("unexpected row count:\n%s", out)
	}
}

func TestGanttFromScheduleFigure4(t *testing.T) {
	g := gen.Figure2()
	res, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := kperiodic.ScheduleK(g, res.K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gt := sched.FromSchedule(g, s, 2, "K-periodic schedule (Figure 4)")
	out := gt.Render(100)
	if !strings.Contains(out, "A1") && !strings.Contains(out, "A") {
		t.Errorf("render missing task boxes:\n%s", out)
	}
}

func TestGanttRenderBounds(t *testing.T) {
	gt := &sched.Gantt{
		RowNames: []string{"x"},
		Boxes:    []sched.Box{{Row: 0, Label: "x1", Start: 0, Duration: 5}},
	}
	out := gt.Render(5) // clamped to minimum width
	if out == "" {
		t.Fatal("empty render")
	}
	// A box beyond the range or an empty chart must not panic.
	empty := &sched.Gantt{RowNames: []string{"y"}}
	if empty.Render(40) == "" {
		t.Fatal("empty chart render failed")
	}
	bad := &sched.Gantt{RowNames: []string{"z"}, Boxes: []sched.Box{{Row: 7, Label: "?", Start: 1, Duration: 1}}}
	_ = bad.Render(40)
}

func TestIterationLatency(t *testing.T) {
	g := gen.TwoTaskChain(2, 3)
	res, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := kperiodic.ScheduleK(g, res.K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lat := sched.IterationLatency(g, s)
	// A(2) then B(3): first iteration completes no earlier than 5.
	if lat.Float() < 5 {
		t.Errorf("latency = %s, want ≥ 5", lat)
	}
}

func TestBufferBacklog(t *testing.T) {
	g := gen.Figure2()
	res, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := kperiodic.ScheduleK(g, res.K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	peaks := sched.BufferBacklog(g, s, 3)
	if len(peaks) != g.NumBuffers() {
		t.Fatalf("got %d peaks for %d buffers", len(peaks), g.NumBuffers())
	}
	for i, b := range g.Buffers() {
		if peaks[i] < b.Initial {
			t.Errorf("buffer %s: peak %d below initial marking %d", b.Name, peaks[i], b.Initial)
		}
	}
	// Feeding the peaks back as capacities must keep the graph live at
	// the same throughput (the schedule itself fits in them).
	sized := g.Clone()
	for i := range peaks {
		sized.SetCapacity(g.Buffer(g.Buffers()[i].ID).ID, peaks[i])
	}
	bounded, err := sized.WithCapacities()
	if err != nil {
		t.Fatal(err)
	}
	bres, err := kperiodic.KIter(bounded, kperiodic.Options{})
	if err != nil {
		t.Fatalf("sized graph not schedulable: %v", err)
	}
	// The measured schedule itself fits in the measured peaks, so the
	// bounded graph reaches exactly the unbounded optimum.
	if bres.Period.Cmp(res.Period) != 0 {
		t.Errorf("bounded Ω = %s, want %s", bres.Period, res.Period)
	}
}
