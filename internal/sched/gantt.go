// Package sched renders and measures concrete schedules: ASCII Gantt
// charts of self-timed traces (Figure 3) and K-periodic schedules
// (Figure 4), first-iteration latency, and buffer-backlog measurement used
// by the buffer-sizing extension.
package sched

import (
	"fmt"
	"strings"

	"kiter/internal/csdf"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
	"kiter/internal/symbexec"
)

// Box is one execution drawn on a Gantt chart.
type Box struct {
	Row      int
	Label    string
	Start    float64
	Duration float64
}

// Gantt is a renderable schedule prefix.
type Gantt struct {
	Title    string
	RowNames []string
	Boxes    []Box
}

// FromTrace builds a Gantt chart from a self-timed execution trace.
func FromTrace(g *csdf.Graph, trace []symbexec.Firing, title string) *Gantt {
	gt := &Gantt{Title: title}
	for _, t := range g.Tasks() {
		gt.RowNames = append(gt.RowNames, taskLabel(t))
	}
	for _, f := range trace {
		gt.Boxes = append(gt.Boxes, Box{
			Row:      int(f.Task),
			Label:    fmt.Sprintf("%s%d", g.Task(f.Task).Name, f.Phase),
			Start:    float64(f.Start),
			Duration: float64(f.Duration),
		})
	}
	return gt
}

// FromSchedule builds a Gantt chart from the first `iterations` graph
// iterations of a K-periodic schedule.
func FromSchedule(g *csdf.Graph, s *kperiodic.Schedule, iterations int64, title string) *Gantt {
	gt := &Gantt{Title: title}
	for _, t := range g.Tasks() {
		gt.RowNames = append(gt.RowNames, taskLabel(t))
	}
	for ti := 0; ti < g.NumTasks(); ti++ {
		task := g.Task(csdf.TaskID(ti))
		total := iterations * s.Q[ti]
		for n := int64(1); n <= total; n++ {
			for p := 1; p <= task.Phases(); p++ {
				start := s.StartOf(csdf.TaskID(ti), p, n)
				gt.Boxes = append(gt.Boxes, Box{
					Row:      ti,
					Label:    fmt.Sprintf("%s%d", task.Name, p),
					Start:    start.Float(),
					Duration: float64(task.Durations[p-1]),
				})
			}
		}
	}
	return gt
}

func taskLabel(t csdf.Task) string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("t%d", t.ID)
}

// Render draws the chart with the given total character width for the
// timeline. Boxes are drawn with their label (truncated) followed by '='
// fill; '.' marks idle time.
func (gt *Gantt) Render(width int) string {
	if width < 20 {
		width = 20
	}
	var maxEnd float64
	for _, b := range gt.Boxes {
		if e := b.Start + b.Duration; e > maxEnd {
			maxEnd = e
		}
	}
	if maxEnd <= 0 {
		maxEnd = 1
	}
	scale := float64(width) / maxEnd
	nameW := 0
	for _, n := range gt.RowNames {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	rows := make([][]byte, len(gt.RowNames))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, b := range gt.Boxes {
		if b.Row < 0 || b.Row >= len(rows) {
			continue
		}
		c0 := int(b.Start * scale)
		c1 := int((b.Start + b.Duration) * scale)
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c0 >= width {
			continue
		}
		if c1 > width {
			c1 = width
		}
		seg := rows[b.Row][c0:c1]
		for i := range seg {
			if i < len(b.Label) {
				seg[i] = b.Label[i]
			} else {
				seg[i] = '='
			}
		}
	}
	var sb strings.Builder
	if gt.Title != "" {
		fmt.Fprintf(&sb, "%s (0 … %.1f time units)\n", gt.Title, maxEnd)
	}
	// Time ruler every width/8 columns.
	ruler := make([]byte, width)
	for i := range ruler {
		ruler[i] = ' '
	}
	step := width / 8
	if step < 1 {
		step = 1
	}
	for c := 0; c < width; c += step {
		mark := fmt.Sprintf("|%.0f", float64(c)/scale)
		for i := 0; i < len(mark) && c+i < width; i++ {
			ruler[c+i] = mark[i]
		}
	}
	fmt.Fprintf(&sb, "%*s %s\n", nameW, "", string(ruler))
	for i, name := range gt.RowNames {
		fmt.Fprintf(&sb, "%*s %s\n", nameW, name, string(rows[i]))
	}
	return sb.String()
}

// IterationLatency returns the makespan of the first graph iteration under
// a K-periodic schedule: the latest completion time over every task's
// first qt executions (the earliest start is 0 by construction).
func IterationLatency(g *csdf.Graph, s *kperiodic.Schedule) rat.Rat {
	var latest rat.Rat
	for ti := 0; ti < g.NumTasks(); ti++ {
		task := g.Task(csdf.TaskID(ti))
		for n := int64(1); n <= s.Q[ti]; n++ {
			for p := 1; p <= task.Phases(); p++ {
				end := s.StartOf(csdf.TaskID(ti), p, n).Add(rat.FromInt(task.Durations[p-1]))
				if end.Cmp(latest) > 0 {
					latest = end
				}
			}
		}
	}
	return latest
}
