package sched

import (
	"sort"

	"kiter/internal/csdf"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
)

// BufferBacklog replays a K-periodic schedule over the given number of
// graph iterations and returns, per buffer, the peak storage the schedule
// reserves under the back-pressure semantics of the reverse-buffer
// encoding: a producer claims inb(p) space when phase tp starts and a
// consumer releases outb(p′) space when phase t′p′ completes. Initial
// tokens occupy space from the start.
//
// Feeding the peaks back as capacities therefore keeps this very schedule
// feasible, which is how the sizing package derives throughput-safe buffer
// bounds. At equal time instants releases are applied before claims,
// mirroring the production-before-consumption rule of the feasibility
// checker.
func BufferBacklog(g *csdf.Graph, s *kperiodic.Schedule, iterations int64) []int64 {
	type event struct {
		time   rat.Rat
		claim  bool
		buf    csdf.BufferID
		amount int64
	}
	var events []event
	for _, b := range g.Buffers() {
		srcPhases := g.Task(b.Src).Phases()
		for n := int64(1); n <= iterations*s.Q[b.Src]; n++ {
			for p := 1; p <= srcPhases; p++ {
				if b.In[p-1] == 0 {
					continue
				}
				start := s.StartOf(b.Src, p, n)
				events = append(events, event{time: start, claim: true, buf: b.ID, amount: b.In[p-1]})
			}
		}
		dstPhases := g.Task(b.Dst).Phases()
		for n := int64(1); n <= iterations*s.Q[b.Dst]; n++ {
			for p := 1; p <= dstPhases; p++ {
				if b.Out[p-1] == 0 {
					continue
				}
				end := s.StartOf(b.Dst, p, n).Add(rat.FromInt(g.Task(b.Dst).Durations[p-1]))
				events = append(events, event{time: end, claim: false, buf: b.ID, amount: b.Out[p-1]})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		c := events[i].time.Cmp(events[j].time)
		if c != 0 {
			return c < 0
		}
		// Releases before claims at equal instants.
		return !events[i].claim && events[j].claim
	})
	occupancy := make([]int64, g.NumBuffers())
	peak := make([]int64, g.NumBuffers())
	for i, b := range g.Buffers() {
		occupancy[i] = b.Initial
		peak[i] = b.Initial
	}
	for _, ev := range events {
		if ev.claim {
			occupancy[ev.buf] += ev.amount
			if occupancy[ev.buf] > peak[ev.buf] {
				peak[ev.buf] = occupancy[ev.buf]
			}
		} else {
			occupancy[ev.buf] -= ev.amount
		}
	}
	return peak
}
