// Package resultcodec is the one binary encoding of engine.Result used
// everywhere a result leaves the process: disk cache segments
// (internal/cachedisk) and the cluster wire (forwarded evaluation replies,
// the networked cache tier's get/put bodies) all speak this format, so a
// record written by any replica is readable by every other and by the same
// replica after a restart.
//
// The format is a compact, versioned, length-prefixed binary frame:
//
//	"KRC" <version byte> <body> <crc32 LE>
//
// Body fields are varint-encoded integers, length-prefixed strings and
// length-prefixed int64 slices; optional sections (throughput, schedule,
// sizing, symbolic) are gated by a presence bitmap so an absent section
// costs zero bytes. Exact-rational quantities (periods, throughputs)
// travel as their canonical "num/den" strings, preserved byte for byte —
// the codec never rounds through a float. The trailing CRC32 (IEEE, over
// header plus body) is verified before any field is parsed, so a torn or
// bit-flipped buffer fails Decode loudly instead of yielding a plausible
// but wrong Result; every length is validated against the bytes actually
// remaining, so a corrupt length field cannot drive a huge allocation.
//
// Compared to the JSON records it replaces, an encoded throughput result
// is roughly 4-6x smaller and an order of magnitude cheaper to decode
// (see BENCH_codec_pr9.json); the savings compound across every disk
// read, forward hop and remote cache fill in a fleet.
package resultcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"kiter/internal/engine"
)

// Version is the current frame version. Decode accepts exactly this
// version: the codec is always deployed in lockstep with the struct it
// encodes, and a version bump means the field layout changed.
const Version = 1

// magic identifies a resultcodec frame.
const magic = "KRC"

const (
	headerLen  = 4 // magic + version byte
	trailerLen = 4 // CRC32
	// minFrame is the smallest well-formed frame: header, presence flags,
	// three empty strings, ElapsedMS, CRC.
	minFrame = headerLen + 1 + 3 + 8 + trailerLen
)

// Presence/flag bits of the body's leading flags byte.
const (
	flagCacheHit = 1 << iota
	flagDeduped
	flagThroughput
	flagSchedule
	flagSizing
	flagSymbolic
)

// ErrCorrupt is wrapped by every Decode failure: the buffer is not a
// well-formed frame of the current version. Callers treating the codec as
// a cache payload degrade it to a miss.
var ErrCorrupt = errors.New("resultcodec: corrupt or incompatible frame")

// EncodedSize returns the exact byte length Encode will produce for res —
// without allocating — so callers can reject oversized records before
// paying for the encode.
func EncodedSize(res *engine.Result) int {
	n := headerLen + 1 // flags byte
	n += sizeString(res.Graph) + sizeString(res.Fingerprint) + sizeString(res.Peer)
	n += 8 // ElapsedMS
	if t := res.Throughput; t != nil {
		n += sizeString(t.Period) + sizeString(t.Throughput) + 8 + 1
		n += sizeString(string(t.Method)) + sizeInt64s(t.K)
		n += sizeVarint(int64(t.Iterations)) + sizeString(t.Error)
	}
	if s := res.Schedule; s != nil {
		n += sizeInt64s(s.K) + sizeString(s.Period) + sizeString(s.Latency) + sizeString(s.Error)
	}
	if s := res.Sizing; s != nil {
		n += sizeInt64s(s.Capacities) + sizeString(s.Period) + sizeString(s.Error)
	}
	if s := res.Symbolic; s != nil {
		n += sizeString(s.Period) + sizeString(s.Throughput) + 8
		n += sizeVarint(s.TransientTime) + sizeVarint(s.CycleTime) + sizeVarint(s.Events)
		n += sizeVarint(int64(s.StatesStored)) + sizeString(s.Error)
	}
	return n + trailerLen
}

// Encode serializes res into a fresh, exactly-sized buffer.
func Encode(res *engine.Result) []byte {
	buf := make([]byte, 0, EncodedSize(res))
	buf = append(buf, magic...)
	buf = append(buf, Version)

	var flags byte
	if res.CacheHit {
		flags |= flagCacheHit
	}
	if res.Deduped {
		flags |= flagDeduped
	}
	if res.Throughput != nil {
		flags |= flagThroughput
	}
	if res.Schedule != nil {
		flags |= flagSchedule
	}
	if res.Sizing != nil {
		flags |= flagSizing
	}
	if res.Symbolic != nil {
		flags |= flagSymbolic
	}
	buf = append(buf, flags)
	buf = appendString(buf, res.Graph)
	buf = appendString(buf, res.Fingerprint)
	buf = appendString(buf, res.Peer)
	buf = appendFloat(buf, res.ElapsedMS)

	if t := res.Throughput; t != nil {
		buf = appendString(buf, t.Period)
		buf = appendString(buf, t.Throughput)
		buf = appendFloat(buf, t.Float)
		buf = appendBool(buf, t.Optimal)
		buf = appendString(buf, string(t.Method))
		buf = appendInt64s(buf, t.K)
		buf = binary.AppendVarint(buf, int64(t.Iterations))
		buf = appendString(buf, t.Error)
	}
	if s := res.Schedule; s != nil {
		buf = appendInt64s(buf, s.K)
		buf = appendString(buf, s.Period)
		buf = appendString(buf, s.Latency)
		buf = appendString(buf, s.Error)
	}
	if s := res.Sizing; s != nil {
		buf = appendInt64s(buf, s.Capacities)
		buf = appendString(buf, s.Period)
		buf = appendString(buf, s.Error)
	}
	if s := res.Symbolic; s != nil {
		buf = appendString(buf, s.Period)
		buf = appendString(buf, s.Throughput)
		buf = appendFloat(buf, s.Float)
		buf = binary.AppendVarint(buf, s.TransientTime)
		buf = binary.AppendVarint(buf, s.CycleTime)
		buf = binary.AppendVarint(buf, s.Events)
		buf = binary.AppendVarint(buf, int64(s.StatesStored))
		buf = appendString(buf, s.Error)
	}

	var crc [trailerLen]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...)
}

// Decode parses one frame back into a Result. Any structural problem —
// wrong magic, unknown version, CRC mismatch, a length overrunning the
// buffer, trailing garbage — fails with an error wrapping ErrCorrupt; a
// successful decode round-trips Encode exactly.
func Decode(buf []byte) (*engine.Result, error) {
	if len(buf) < minFrame {
		return nil, fmt.Errorf("%w: %d bytes is below the minimum frame", ErrCorrupt, len(buf))
	}
	if string(buf[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := buf[len(magic)]; v != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, Version)
	}
	body := buf[:len(buf)-trailerLen]
	want := binary.LittleEndian.Uint32(buf[len(buf)-trailerLen:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}

	d := decoder{buf: body, off: headerLen}
	flags := d.byte()
	res := &engine.Result{
		CacheHit: flags&flagCacheHit != 0,
		Deduped:  flags&flagDeduped != 0,
	}
	res.Graph = d.string()
	res.Fingerprint = d.string()
	res.Peer = d.string()
	res.ElapsedMS = d.float()

	if flags&flagThroughput != 0 {
		t := &engine.ThroughputResult{}
		t.Period = d.string()
		t.Throughput = d.string()
		t.Float = d.float()
		t.Optimal = d.bool()
		t.Method = engine.Method(d.string())
		t.K = d.int64s()
		t.Iterations = int(d.varint())
		t.Error = d.string()
		res.Throughput = t
	}
	if flags&flagSchedule != 0 {
		s := &engine.ScheduleResult{}
		s.K = d.int64s()
		s.Period = d.string()
		s.Latency = d.string()
		s.Error = d.string()
		res.Schedule = s
	}
	if flags&flagSizing != 0 {
		s := &engine.SizingResult{}
		s.Capacities = d.int64s()
		s.Period = d.string()
		s.Error = d.string()
		res.Sizing = s
	}
	if flags&flagSymbolic != 0 {
		s := &engine.SymbolicResult{}
		s.Period = d.string()
		s.Throughput = d.string()
		s.Float = d.float()
		s.TransientTime = d.varint()
		s.CycleTime = d.varint()
		s.Events = d.varint()
		s.StatesStored = int(d.varint())
		s.Error = d.string()
		res.Symbolic = s
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing body bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return res, nil
}

// decoder walks the body with sticky error handling: the first structural
// failure poisons every subsequent read, so field parsers stay linear and
// the caller checks err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated at byte field")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d overruns %d remaining bytes", n, len(d.buf)-d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf)-d.off < 8 {
		d.fail("truncated at float field")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) int64s() []int64 {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// Each varint element is at least one byte, so a count beyond the
	// remaining bytes is corrupt — checked before allocating the slice.
	if n > uint64(len(d.buf)-d.off) {
		d.fail("slice count %d overruns %d remaining bytes", n, len(d.buf)-d.off)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.varint()
	}
	return out
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendFloat(buf []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(buf, b[:]...)
}

func appendInt64s(buf []byte, vs []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		buf = binary.AppendVarint(buf, v)
	}
	return buf
}

func sizeString(s string) int { return sizeUvarint(uint64(len(s))) + len(s) }

func sizeUvarint(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func sizeVarint(v int64) int {
	// Varint zigzag-encodes through the same 7-bit groups as uvarint.
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return sizeUvarint(uv)
}

func sizeInt64s(vs []int64) int {
	n := sizeUvarint(uint64(len(vs)))
	for _, v := range vs {
		n += sizeVarint(v)
	}
	return n
}
