package resultcodec

import (
	"errors"
	"reflect"
	"testing"

	"kiter/internal/engine"
)

// sampleResults covers every section combination the engine produces,
// including exact rationals far beyond float64 precision.
func sampleResults() []*engine.Result {
	return []*engine.Result{
		{},
		{
			Graph:       "pipeline",
			Fingerprint: "fp-8c1a",
			CacheHit:    true,
			ElapsedMS:   0.125,
			Throughput: &engine.ThroughputResult{
				Period:     "47/3",
				Throughput: "3/47",
				Float:      0.06382978723404255,
				Optimal:    true,
				Method:     engine.MethodKIter,
				K:          []int64{1, 2, 3, 4},
				Iterations: 17,
			},
		},
		{
			Graph:       "huge-rationals",
			Fingerprint: "fp-exact",
			Deduped:     true,
			Peer:        "10.0.0.7:9090",
			Throughput: &engine.ThroughputResult{
				// Numerator/denominator exceed float64's 53-bit mantissa;
				// the codec must carry them verbatim.
				Period:     "123456789012345678901234567890/7",
				Throughput: "7/123456789012345678901234567890",
				Method:     engine.MethodSymbolic,
				K:          []int64{-1, 0, 9223372036854775807, -9223372036854775808},
			},
			Schedule: &engine.ScheduleResult{
				K:       []int64{5, 5, 5},
				Period:  "360/7",
				Latency: "1081/7",
			},
		},
		{
			Graph: "sizing+symbolic",
			Sizing: &engine.SizingResult{
				Capacities: []int64{2, 4, 8},
				Period:     "99/2",
				Error:      "",
			},
			Symbolic: &engine.SymbolicResult{
				Period:        "15/4",
				Throughput:    "4/15",
				Float:         0.26666666666666666,
				TransientTime: 12,
				CycleTime:     60,
				Events:        4096,
				StatesStored:  257,
			},
		},
		{
			Graph:       "errors",
			Fingerprint: "fp-err",
			Throughput:  &engine.ThroughputResult{Error: "deadlock: actor b starved"},
			Schedule:    &engine.ScheduleResult{Error: "no periodic schedule"},
			Sizing:      &engine.SizingResult{Error: "infeasible under cap"},
			Symbolic:    &engine.SymbolicResult{Error: "state budget exceeded"},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	for i, want := range sampleResults() {
		buf := Encode(want)
		if len(buf) != EncodedSize(want) {
			t.Fatalf("case %d: EncodedSize=%d but Encode produced %d bytes", i, EncodedSize(want), len(buf))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round-trip mismatch\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

func TestExactRationalsPreserved(t *testing.T) {
	want := "170141183460469231731687303715884105727/170141183460469231731687303715884105728"
	res := &engine.Result{Throughput: &engine.ThroughputResult{Period: want, Throughput: want}}
	got, err := Decode(Encode(res))
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput.Period != want || got.Throughput.Throughput != want {
		t.Fatalf("rational mangled: %q / %q", got.Throughput.Period, got.Throughput.Throughput)
	}
}

// TestBitFlipDetected asserts the CRC catches every possible single-bit
// corruption anywhere in the frame — torn disk writes and flaky wire
// transfers degrade to a miss, never to a wrong result.
func TestBitFlipDetected(t *testing.T) {
	buf := Encode(sampleResults()[1])
	for i := range buf {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("flip of byte %d bit %d decoded cleanly", i, bit)
			} else if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip of byte %d bit %d: error %v does not wrap ErrCorrupt", i, bit, err)
			}
		}
	}
}

// TestTruncationDetected asserts every torn prefix of a valid frame fails.
func TestTruncationDetected(t *testing.T) {
	buf := Encode(sampleResults()[2])
	for n := 0; n < len(buf); n++ {
		if _, err := Decode(buf[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%d-byte prefix: got err %v, want ErrCorrupt", n, err)
		}
	}
}

func TestDecodeRejectsJunk(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("{}"),
		[]byte(`{"graph":"x"}`), // old JSON payloads must read as corrupt, not as zero results
		[]byte("KRC\x02aaaaaaaaaaaaaaaaaaaaaaaa"), // future version
		append(Encode(&engine.Result{}), 0),       // trailing garbage
	}
	for i, buf := range cases {
		if _, err := Decode(buf); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("case %d: got err %v, want ErrCorrupt", i, err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	res := sampleResults()[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(res)
	}
}

func BenchmarkDecode(b *testing.B) {
	buf := Encode(sampleResults()[1])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
