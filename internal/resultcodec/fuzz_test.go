package resultcodec

import (
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the decoder. Decode must never
// panic; when it does accept a buffer, the result must survive a full
// re-encode/re-decode round trip — i.e. every accepted frame is canonical.
func FuzzDecode(f *testing.F) {
	for _, res := range sampleResults() {
		f.Add(Encode(res))
	}
	f.Add([]byte("KRC\x01"))
	f.Add([]byte(`{"throughput":{"period":"3/2"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(Encode(res))
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("accepted frame not canonical:\nfirst: %+v\nagain: %+v", res, again)
		}
	})
}
