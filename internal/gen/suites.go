package gen

import (
	"fmt"
	"math/rand"
	"sync"

	"kiter/internal/csdf"
	"kiter/internal/kperiodic"
)

// Suite is a named collection of benchmark graphs corresponding to one row
// of Table 1 or Table 2 of the paper.
type Suite struct {
	Name   string
	Graphs []*csdf.Graph
}

// ActualDSP returns the hand-reconstructed classical DSP applications
// standing in for the SDF3 "ActualDSP" category (5 graphs in the paper):
// a sample-rate converter, a satellite-receiver-like pipeline, an
// H.263-style decoder, a modem-like loop and an MP3-style playback chain.
// Rates follow the stage ratios published for these applications; see
// DESIGN.md for the substitution argument.
func ActualDSP() Suite {
	return Suite{
		Name: "ActualDSP",
		Graphs: []*csdf.Graph{
			SampleRateConverter(),
			SatelliteReceiver(),
			H263Decoder(),
			Modem(),
			MP3Playback(),
		},
	}
}

// SatelliteReceiver returns a satellite-receiver-like SDF pipeline: two
// polyphase filter chains merging into a demodulator, 22 tasks as in the
// classical Ritz benchmark shape.
func SatelliteReceiver() *csdf.Graph {
	g := csdf.NewGraph("satellite")
	mk := func(name string, d int64) csdf.TaskID { return g.AddSDFTask(name, d) }
	// Two symmetric 9-stage chains.
	var chains [2][]csdf.TaskID
	for c := 0; c < 2; c++ {
		for s := 0; s < 9; s++ {
			chains[c] = append(chains[c], mk(fmt.Sprintf("c%d_s%d", c, s), 1))
		}
		for s := 0; s+1 < 9; s++ {
			rate := int64(1)
			if s%3 == 2 {
				rate = 4 // decimation stages
			}
			g.AddSDFBuffer("", chains[c][s], chains[c][s+1], 1, rate, 0)
		}
	}
	mix := mk("mixer", 2)
	sink := mk("viterbi", 5)
	g.AddSDFBuffer("", chains[0][8], mix, 1, 1, 0)
	g.AddSDFBuffer("", chains[1][8], mix, 1, 1, 0)
	g.AddSDFBuffer("", mix, sink, 1, 1, 0)
	// Control feedback from the demodulator to both front-ends. The two
	// decimation stages divide the rate by 16, so the front-end runs 16
	// firings per demodulator firing.
	g.AddSDFBuffer("", sink, chains[0][0], 16, 1, 64)
	g.AddSDFBuffer("", sink, chains[1][0], 16, 1, 64)
	return g
}

// H263Decoder returns an H.263-style decoder SDF: the classical 4-actor
// shape with QCIF macroblock rates (1 frame = 99 macroblocks).
func H263Decoder() *csdf.Graph {
	g := csdf.NewGraph("h263decoder")
	vld := g.AddSDFTask("vld", 26018)
	iq := g.AddSDFTask("iq", 559)
	idct := g.AddSDFTask("idct", 486)
	mc := g.AddSDFTask("motion", 10958)
	g.AddSDFBuffer("", vld, iq, 99, 1, 0)
	g.AddSDFBuffer("", iq, idct, 1, 1, 0)
	g.AddSDFBuffer("", idct, mc, 1, 99, 0)
	g.AddSDFBuffer("", mc, vld, 1, 1, 1) // frame feedback
	return g
}

// Modem returns a modem-like SDF loop (equalizer/decoder ring with a
// training feedback), 16 tasks.
func Modem() *csdf.Graph {
	g := csdf.NewGraph("modem")
	n := 16
	ids := make([]csdf.TaskID, n)
	for i := range ids {
		ids[i] = g.AddSDFTask(fmt.Sprintf("m%d", i), int64(1+i%3))
	}
	for i := 0; i+1 < n; i++ {
		prod, cons := int64(1), int64(1)
		if i == 4 {
			prod, cons = 2, 1 // upsampler
		}
		if i == 10 {
			prod, cons = 1, 2 // downsampler
		}
		g.AddSDFBuffer("", ids[i], ids[i+1], prod, cons, 0)
	}
	g.AddSDFBuffer("", ids[n-1], ids[0], 1, 1, 2) // adaptation loop
	return g
}

// MP3Playback returns an MP3-playback-style SDF chain with a rate
// conversion tail and a rendering feedback.
func MP3Playback() *csdf.Graph {
	g := csdf.NewGraph("mp3playback")
	mp3 := g.AddSDFTask("mp3dec", 1000)
	src1 := g.AddSDFTask("src1", 12)
	dac := g.AddSDFTask("dac", 1)
	g.AddSDFBuffer("", mp3, src1, 2, 3, 0)
	g.AddSDFBuffer("", src1, dac, 160, 147, 0)
	// Playback pacing loop: q = [441, 294, 320], so the DAC returns 441
	// credits per 320 firings.
	g.AddSDFBuffer("", dac, mp3, 441, 320, 2*441*320)
	return g
}

// MimicDSP returns count random SDF graphs mimicking the statistics of the
// SDF3 "MimicDSP" category of Table 1: 3–25 tasks, small rates, Σq around
// 10³.
func MimicDSP(count int, seed int64) Suite {
	s := Suite{Name: "MimicDSP"}
	for i := 0; i < count; i++ {
		g, err := Random(Profile{
			Name:         fmt.Sprintf("mimicdsp-%d", i),
			Seed:         seed + int64(i),
			Tasks:        3 + i%23,
			Buffers:      3 + (i*5)%33,
			QLadder:      []int64{1, 2, 3, 4, 6, 8, 12, 24, 48, 96, 144, 288},
			MaxPhases:    1,
			MaxDuration:  10,
			RateFactor:   1,
			BackEdgeFrac: 0.3,
			TokensSlack:  2,
			Ring:         true,
		})
		if err != nil {
			continue
		}
		s.Graphs = append(s.Graphs, g)
	}
	return s
}

// LgHSDF returns count random SDF graphs with few tasks but large
// repetition vectors (large HSDF-equivalents), matching the "LgHSDF"
// category: 6–15 tasks, Σq up to ~2·10⁵.
func LgHSDF(count int, seed int64) Suite {
	s := Suite{Name: "LgHSDF"}
	// Each ladder mixes a small coprime value in so normalization keeps
	// the large repetition counts (a shared factor would divide out).
	ladders := [][]int64{
		{3, 1024, 2048, 4096, 8192},
		{2, 81, 243, 729, 6561},
		{3, 800, 1600, 3200, 12800},
		{5, 1024, 4096, 16384},
		{7, 576, 2304, 9216, 36864},
	}
	for i := 0; i < count; i++ {
		g, err := Random(Profile{
			Name:         fmt.Sprintf("lghsdf-%d", i),
			Seed:         seed + int64(i),
			Tasks:        6 + i%10,
			Buffers:      6 + (i*3)%26,
			QLadder:      ladders[i%len(ladders)],
			MaxPhases:    1,
			MaxDuration:  5,
			RateFactor:   1,
			BackEdgeFrac: 0.25,
			TokensSlack:  2,
			Ring:         true,
		})
		if err != nil {
			continue
		}
		s.Graphs = append(s.Graphs, g)
	}
	return s
}

// LgTransient returns count homogeneous (HSDF) graphs with long self-timed
// transients, matching "LgTransient": 181–300 unit-rate tasks with skewed
// durations and token placement that delays the periodic regime.
func LgTransient(count int, seed int64) Suite {
	s := Suite{Name: "LgTransient"}
	for i := 0; i < count; i++ {
		n := 181 + (i*7)%120
		durs := make([]int64, 16)
		for j := range durs {
			durs[j] = int64(1 + (j*j+i)%31)
		}
		// Deep pipelining (many tokens) plus chord cycles with coprime
		// markings: the self-timed execution takes a long transient to
		// align the cycles before a state recurs, which is exactly what
		// makes this category expensive for symbolic execution while the
		// MCRP-based methods stay unaffected.
		g := HSDFRing(n, durs, int64(29+2*(i%7)))
		g.AddSDFBuffer("", csdf.TaskID(n/2), csdf.TaskID(0), 1, 1, int64(31+i%5))
		g.AddSDFBuffer("", csdf.TaskID(2*n/3), csdf.TaskID(n/3), 1, 1, int64(23+i%7))
		g.Name = fmt.Sprintf("lgtransient-%d", i)
		s.Graphs = append(s.Graphs, g)
	}
	return s
}

// Industrial returns the stand-in for one IB+AG5CSDF application of
// Table 2, matched on task count, buffer count and repetition magnitude.
// The boolean selects the fixed-buffer-size variant (capacities applied
// with the given slack through the reverse-buffer transform).
type IndustrialSpec struct {
	Name    string
	Tasks   int
	Buffers int
	Seed    int64
	QLadder []int64
	Phases  int
	// CapacitySlack scales capacities for the bounded variant.
	CapacitySlack int64
}

// chainLadder returns {base, base·f, base·f², …}, a geometric repetition
// ladder. With a base coprime to the factor the minimal repetition vector
// keeps the full magnitudes (the overall gcd is the base only when every
// rung is used; the smooth walk guarantees adjacent tasks sit on adjacent
// rungs, so critical circuits stay between tasks with large gcds and
// K-Iter's periodicity updates remain small).
func chainLadder(base, factor int64, steps int) []int64 {
	out := make([]int64, steps+1)
	v := base
	for i := 0; i <= steps; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// IndustrialSpecs lists the Table 2 stand-ins with the published sizes:
//
//	BlackScholes  41 tasks   40 buffers  Σq ≈ 1.2·10⁴
//	Echo         240 tasks  703 buffers  Σq ≈ 8·10⁸
//	JPEG2000      38 tasks   82 buffers  Σq ≈ 3.4·10⁵
//	Pdetect       58 tasks   76 buffers  Σq ≈ 3.9·10⁶
//	H264Enc      665 tasks 3128 buffers  Σq ≈ 2.4·10⁷
func IndustrialSpecs() []IndustrialSpec {
	return []IndustrialSpec{
		{Name: "BlackScholes", Tasks: 41, Buffers: 40, Seed: 101,
			QLadder: chainLadder(3, 4, 5), Phases: 2, CapacitySlack: 3},
		{Name: "Echo", Tasks: 240, Buffers: 703, Seed: 202,
			QLadder: chainLadder(3, 4, 12), Phases: 3, CapacitySlack: 3},
		{Name: "JPEG2000", Tasks: 38, Buffers: 82, Seed: 303,
			QLadder: chainLadder(5, 4, 8), Phases: 3, CapacitySlack: 1},
		{Name: "Pdetect", Tasks: 58, Buffers: 76, Seed: 404,
			QLadder: chainLadder(3, 6, 7), Phases: 2, CapacitySlack: 2},
		{Name: "H264Enc", Tasks: 665, Buffers: 3128, Seed: 505,
			QLadder: chainLadder(7, 4, 9), Phases: 2, CapacitySlack: 3},
	}
}

// Industrial builds the stand-in graph for a spec (unbounded buffers).
func Industrial(spec IndustrialSpec) (*csdf.Graph, error) {
	return Random(Profile{
		Name:         spec.Name,
		Seed:         spec.Seed,
		Tasks:        spec.Tasks,
		Buffers:      spec.Buffers,
		QLadder:      spec.QLadder,
		MaxPhases:    spec.Phases,
		MaxDuration:  8,
		RateFactor:   1,
		BackEdgeFrac: 0.15,
		TokensSlack:  2,
		Ring:         true,
		SmoothQ:      true,
		MaxSpan:      6,
	})
}

// IndustrialBounded builds the fixed-buffer-size variant with capacities
// at the feasibility boundary. Starting from the spec's slack, the uniform
// capacity scale is doubled until a K-periodic schedule exists; then, for
// graphs small enough to afford it, buffers are greedily tightened back to
// the previous scale while K-Iter feasibility is preserved. The resulting
// heterogeneous tight sizing is the regime in which the approximate
// 1-periodic method degrades or fails outright while K-Iter still
// certifies the optimum — the phenomenon Table 2 of the paper reports for
// JPEG2000 and Echo under fixed buffer sizes.
func IndustrialBounded(spec IndustrialSpec) (*csdf.Graph, error) {
	boundedMu.Lock()
	if cached, ok := boundedCache[spec.Name]; ok {
		boundedMu.Unlock()
		return cached.g, cached.err
	}
	boundedMu.Unlock()
	g, err := buildBounded(spec)
	boundedMu.Lock()
	boundedCache[spec.Name] = boundedResult{g: g, err: err}
	boundedMu.Unlock()
	return g, err
}

type boundedResult struct {
	g   *csdf.Graph
	err error
}

var (
	boundedMu    sync.Mutex
	boundedCache = map[string]boundedResult{}
)

// tighteningMaxBuffers bounds the size of graphs that get the per-buffer
// greedy tightening pass (each step costs one K-Iter run).
const tighteningMaxBuffers = 200

func buildBounded(spec IndustrialSpec) (*csdf.Graph, error) {
	g, err := Industrial(spec)
	if err != nil {
		return nil, err
	}
	opt := kperiodic.Options{MaxNodes: 2_000_000, MaxPairs: 50_000_000, MaxIterations: 500}
	capAt := func(b *csdf.Buffer, slack int64) int64 {
		return slack*(b.TotalIn()+b.TotalOut()) + b.Initial
	}
	apply := func(caps []int64) (*csdf.Graph, error) {
		sized := g.Clone()
		for i, c := range caps {
			sized.SetCapacity(csdf.BufferID(i), c)
		}
		return sized.WithCapacities()
	}
	feasible := func(caps []int64) bool {
		b, err := apply(caps)
		if err != nil {
			return false
		}
		_, err = kperiodic.KIter(b, opt)
		return err == nil
	}
	slack := spec.CapacitySlack
	if slack < 1 {
		slack = 1
	}
	caps := make([]int64, g.NumBuffers())
	found := false
	for ; slack <= 1024; slack *= 2 {
		for i := range caps {
			caps[i] = capAt(g.Buffer(csdf.BufferID(i)), slack)
		}
		if feasible(caps) {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("gen: %s: no feasible capacity scale up to 1024", spec.Name)
	}
	if slack > 1 && g.NumBuffers() <= tighteningMaxBuffers {
		low := slack / 2
		rng := rand.New(rand.NewSource(spec.Seed * 7))
		for _, bi := range rng.Perm(g.NumBuffers()) {
			old := caps[bi]
			caps[bi] = capAt(g.Buffer(csdf.BufferID(bi)), low)
			if !feasible(caps) {
				caps[bi] = old
			}
		}
	}
	out, err := apply(caps)
	if err != nil {
		return nil, err
	}
	out.Name = spec.Name + "+buffers"
	return out, nil
}

// SyntheticSpecs matches the graph1…graph5 rows of Table 2. graph2 and
// graph3 carry repetition sums beyond a billion — the instances on which
// the paper reports that neither K-Iter nor symbolic execution finishes.
func SyntheticSpecs() []IndustrialSpec {
	return []IndustrialSpec{
		{Name: "graph1", Tasks: 90, Buffers: 617, Seed: 606,
			QLadder: chainLadder(3, 4, 8), Phases: 3, CapacitySlack: 2},
		{Name: "graph2", Tasks: 70, Buffers: 473, Seed: 707,
			QLadder: chainLadder(3, 6, 11), Phases: 3, CapacitySlack: 2},
		{Name: "graph3", Tasks: 154, Buffers: 671, Seed: 808,
			QLadder: chainLadder(5, 6, 11), Phases: 3, CapacitySlack: 2},
		{Name: "graph4", Tasks: 2426, Buffers: 2900, Seed: 909,
			QLadder: chainLadder(3, 2, 11), Phases: 2, CapacitySlack: 2},
		{Name: "graph5", Tasks: 2767, Buffers: 4894, Seed: 1010,
			QLadder: chainLadder(5, 2, 12), Phases: 2, CapacitySlack: 2},
	}
}
