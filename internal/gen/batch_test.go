package gen

import (
	"testing"

	"kiter/internal/sdf3x"
)

func TestWriteSuiteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	suite := MimicDSP(5, 99)
	paths, err := WriteSuite(dir, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(suite.Graphs) {
		t.Fatalf("wrote %d files for %d graphs", len(paths), len(suite.Graphs))
	}
	for i, p := range paths {
		g, err := sdf3x.ReadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if g.Fingerprint() != suite.Graphs[i].Fingerprint() {
			t.Fatalf("%s: round trip changed the structure", p)
		}
	}
}

func TestSuiteByName(t *testing.T) {
	for _, name := range []string{"actualdsp", "mimicdsp", "lghsdf", "lgtransient"} {
		s, err := SuiteByName(name, 3, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Graphs) == 0 {
			t.Fatalf("%s: empty suite", name)
		}
	}
	if _, err := SuiteByName("nope", 1, 1); err == nil {
		t.Fatal("unknown suite accepted")
	}
}
