package gen_test

import (
	"errors"
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/symbexec"
)

func TestFixturesValidAndConsistent(t *testing.T) {
	fig1, _ := gen.Figure1()
	graphs := []*csdf.Graph{
		fig1,
		gen.Figure2(),
		gen.TwoTaskChain(1, 2),
		gen.HSDFRing(5, []int64{1, 2}, 2),
		gen.UpDownSampler(3, 2),
		gen.SampleRateConverter(),
		gen.CyclicCSDF(),
		gen.MultiRateCycle(),
		gen.DeadlockedRing(),
		gen.SatelliteReceiver(),
		gen.H263Decoder(),
		gen.Modem(),
		gen.MP3Playback(),
	}
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", g.Name, err)
		}
		if !g.Consistent() {
			t.Errorf("%s: not consistent", g.Name)
		}
	}
}

func TestActualDSPLive(t *testing.T) {
	for _, g := range gen.ActualDSP().Graphs {
		res, err := kperiodic.KIter(g, kperiodic.Options{})
		if err != nil {
			t.Errorf("%s: KIter: %v", g.Name, err)
			continue
		}
		if res.Period.Sign() <= 0 {
			t.Errorf("%s: non-positive period %s", g.Name, res.Period)
		}
	}
}

func TestRandomDeterminism(t *testing.T) {
	p := gen.Profile{
		Name: "det", Seed: 42, Tasks: 6, Buffers: 9,
		MaxPhases: 2, MaxDuration: 4, BackEdgeFrac: 0.3, TokensSlack: 2, Ring: true,
	}
	a, err := gen.Random(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Random(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTasks() != b.NumTasks() || a.NumBuffers() != b.NumBuffers() {
		t.Fatal("same profile produced different sizes")
	}
	for i := 0; i < a.NumBuffers(); i++ {
		ba, bb := a.Buffer(csdf.BufferID(i)), b.Buffer(csdf.BufferID(i))
		if ba.Src != bb.Src || ba.Dst != bb.Dst || ba.Initial != bb.Initial {
			t.Fatalf("buffer %d differs between identical profiles", i)
		}
	}
}

func TestRandomGraphsAreLiveAndConsistent(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.Consistent() {
			t.Fatalf("seed %d: inconsistent", seed)
		}
		if _, err := kperiodic.KIter(g, kperiodic.Options{}); err != nil {
			t.Fatalf("seed %d: KIter on certified-live graph: %v", seed, err)
		}
	}
}

// TestCrossValidationKIterVsSymbolic is the central correctness experiment:
// on randomly generated live CSDF graphs, the K-Iter analytical throughput
// must equal the throughput observed by exact symbolic execution.
func TestCrossValidationKIterVsSymbolic(t *testing.T) {
	trials := int64(60)
	if testing.Short() {
		trials = 15
	}
	for seed := int64(0); seed < trials; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		ki, err := kperiodic.KIter(g, kperiodic.Options{})
		if err != nil {
			t.Fatalf("seed %d: KIter: %v", seed, err)
		}
		sym, err := symbexec.Run(g, symbexec.Options{})
		if err != nil {
			t.Fatalf("seed %d: symbolic: %v", seed, err)
		}
		if ki.Period.Cmp(sym.Period) != 0 {
			t.Errorf("seed %d (%s): K-Iter Ω = %s ≠ symbolic Ω = %s",
				seed, g.Name, ki.Period, sym.Period)
		}
		if !ki.Optimal || !ki.Certified {
			t.Errorf("seed %d: result not optimal/certified", seed)
		}
	}
}

func TestCrossValidationWithCapacities(t *testing.T) {
	trials := int64(30)
	if testing.Short() {
		trials = 8
	}
	checked := 0
	for seed := int64(100); seed < 100+trials; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			continue
		}
		bounded, err := g.ScaleCapacities(2).WithCapacities()
		if err != nil {
			continue
		}
		ki, kerr := kperiodic.KIter(bounded, kperiodic.Options{})
		sym, serr := symbexec.Run(bounded, symbexec.Options{})
		if kerr != nil || serr != nil {
			// Both analyses must agree on deadlock too.
			var kd *kperiodic.DeadlockError
			kiDead := errors.As(kerr, &kd)
			symDead := errors.Is(serr, symbexec.ErrDeadlock)
			if kiDead != symDead {
				t.Errorf("seed %d: deadlock disagreement: kiter=%v symbolic=%v", seed, kerr, serr)
			}
			continue
		}
		checked++
		if ki.Period.Cmp(sym.Period) != 0 {
			t.Errorf("seed %d (%s): K-Iter Ω = %s ≠ symbolic Ω = %s",
				seed, bounded.Name, ki.Period, sym.Period)
		}
	}
	if checked == 0 {
		t.Error("no capacity-bounded instance was checked")
	}
}

func TestMimicDSPSuite(t *testing.T) {
	s := gen.MimicDSP(10, 1)
	if len(s.Graphs) < 8 {
		t.Fatalf("only %d/10 MimicDSP graphs generated", len(s.Graphs))
	}
	for _, g := range s.Graphs {
		if !g.IsSDF() {
			t.Errorf("%s: not an SDF graph", g.Name)
		}
		if !g.Consistent() {
			t.Errorf("%s: inconsistent", g.Name)
		}
	}
}

func TestLgHSDFSuiteHasLargeQ(t *testing.T) {
	s := gen.LgHSDF(5, 1)
	if len(s.Graphs) < 3 {
		t.Fatalf("only %d/5 LgHSDF graphs generated", len(s.Graphs))
	}
	for _, g := range s.Graphs {
		sq, err := g.SumRepetition()
		if err != nil {
			t.Fatal(err)
		}
		if sq.Int64() < int64(g.NumTasks())*10 {
			t.Errorf("%s: Σq = %s too small for LgHSDF", g.Name, sq)
		}
	}
}

func TestLgTransientSuiteIsHomogeneous(t *testing.T) {
	s := gen.LgTransient(3, 1)
	for _, g := range s.Graphs {
		q, err := g.RepetitionVector()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range q {
			if v != 1 {
				t.Errorf("%s: q contains %d, want all 1 (HSDF)", g.Name, v)
				break
			}
		}
		if g.NumTasks() < 181 || g.NumTasks() > 300 {
			t.Errorf("%s: %d tasks outside the published 181–300", g.Name, g.NumTasks())
		}
	}
}

func TestIndustrialSpecsMatchPublishedSizes(t *testing.T) {
	want := map[string][2]int{
		"BlackScholes": {41, 40},
		"Echo":         {240, 703},
		"JPEG2000":     {38, 82},
		"Pdetect":      {58, 76},
		"H264Enc":      {665, 3128},
	}
	for _, spec := range gen.IndustrialSpecs() {
		w, ok := want[spec.Name]
		if !ok {
			t.Errorf("unexpected spec %s", spec.Name)
			continue
		}
		if spec.Tasks != w[0] || spec.Buffers != w[1] {
			t.Errorf("%s: spec = (%d,%d), want (%d,%d)",
				spec.Name, spec.Tasks, spec.Buffers, w[0], w[1])
		}
	}
}

func TestIndustrialBlackScholes(t *testing.T) {
	spec := gen.IndustrialSpecs()[0]
	g, err := gen.Industrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != spec.Tasks || g.NumBuffers() < spec.Buffers {
		t.Errorf("size = (%d,%d), want (%d,≥%d)",
			g.NumTasks(), g.NumBuffers(), spec.Tasks, spec.Buffers)
	}
	res, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Error("K-Iter did not certify optimality")
	}
	bounded, err := gen.IndustrialBounded(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.NumBuffers() != 2*g.NumBuffers() {
		t.Errorf("bounded variant has %d buffers, want %d",
			bounded.NumBuffers(), 2*g.NumBuffers())
	}
}

func TestSyntheticSpecsSizes(t *testing.T) {
	specs := gen.SyntheticSpecs()
	if len(specs) != 5 {
		t.Fatalf("want 5 synthetic specs, got %d", len(specs))
	}
	if specs[3].Tasks != 2426 || specs[4].Buffers != 4894 {
		t.Error("synthetic sizes drifted from Table 2")
	}
}
