package gen

import (
	"testing"

	"kiter/internal/kperiodic"
)

// TestVideoPipelineFixture pins the sweep base graph: consistent, live,
// and matching the examples/videopipeline structure it mirrors.
func TestVideoPipelineFixture(t *testing.T) {
	g := VideoPipeline()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 5 || g.NumBuffers() != 6 {
		t.Fatalf("%d tasks / %d buffers", g.NumTasks(), g.NumBuffers())
	}
	for _, name := range []string{"camera", "motion-est", "transform", "entropy", "recon"} {
		if _, ok := g.TaskByName(name); !ok {
			t.Fatalf("task %q missing", name)
		}
	}
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	me, _ := g.TaskByName("motion-est")
	camera, _ := g.TaskByName("camera")
	// 16 macroblock pairs per frame: q_me = 8·q_camera.
	if q[me] != 8*q[camera] {
		t.Fatalf("q = %v", q)
	}
	if !certifyLive(g) {
		t.Fatal("fixture is not live")
	}
	ev, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Optimal || ev.Period.Sign() <= 0 {
		t.Fatalf("fixture K-Iter result: %+v", ev)
	}
}
