package gen

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"kiter/internal/csdf"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
)

// Profile parameterizes the random graph generators. Graphs are consistent
// by construction: rates on every buffer are derived from a pre-assigned
// repetition vector, and liveness is certified by the existence of a
// 1-periodic schedule before a graph is returned.
type Profile struct {
	Name string
	Seed int64
	// Tasks is the task count; Buffers the approximate buffer count
	// (at least Tasks−1; a spanning tree is always present).
	Tasks   int
	Buffers int
	// QLadder is the pool repetition values are drawn from. Values
	// sharing small prime factors keep the derived rates moderate.
	QLadder []int64
	// MaxPhases bounds ϕ(t) (1 = SDF); MaxDuration bounds phase durations.
	MaxPhases   int
	MaxDuration int64
	// RateFactor scales the tokens exchanged per graph iteration on each
	// buffer (1 = minimum, the lcm of the endpoint repetitions).
	RateFactor int64
	// BackEdgeFrac is the fraction of extra buffers directed against the
	// topological order (feedback); such buffers receive one graph
	// iteration's worth of initial tokens, scaled by TokensSlack.
	BackEdgeFrac float64
	TokensSlack  int64
	// Ring forces a Hamiltonian ring backbone (strong connectivity)
	// instead of a spanning tree.
	Ring bool
	// SmoothQ assigns repetition values by a ±1 random walk over the
	// (sorted) ladder along the ring order, so adjacent tasks have close
	// repetition counts — the gradual rate changes of real pipelines.
	// Without it circuits can mix coprime repetition counts, which makes
	// K-Iter's periodicity vector explode (q̄t = qt/gcd becomes huge).
	SmoothQ bool
	// MaxSpan, when positive and Ring is set, limits extra edges to at
	// most this many positions along the ring, keeping feedback circuits
	// local.
	MaxSpan int
}

// ErrGenerate reports that no live graph was found within the retry budget.
var ErrGenerate = errors.New("gen: could not generate a live graph")

// Random generates a consistent, live CSDF graph from the profile. The
// same profile (including Seed) always yields the same graph.
func Random(p Profile) (*csdf.Graph, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.Tasks < 1 {
		return nil, fmt.Errorf("gen: profile needs at least one task")
	}
	if p.MaxPhases < 1 {
		p.MaxPhases = 1
	}
	if p.MaxDuration < 1 {
		p.MaxDuration = 1
	}
	if p.RateFactor < 1 {
		p.RateFactor = 1
	}
	if p.TokensSlack < 1 {
		p.TokensSlack = 1
	}
	if len(p.QLadder) == 0 {
		p.QLadder = []int64{1, 2, 3, 4, 6, 8, 12}
	}
	for attempt := 0; attempt < 10; attempt++ {
		g, err := generate(p, rng, int64(attempt))
		if err != nil {
			continue
		}
		if certifyLive(g) {
			return g, nil
		}
	}
	return nil, ErrGenerate
}

// certifyLive checks that a 1-periodic schedule exists, which is a
// sufficient liveness condition.
func certifyLive(g *csdf.Graph) bool {
	_, err := kperiodic.Evaluate1(g, kperiodic.Options{SkipCertify: true})
	return err == nil
}

func generate(p Profile, rng *rand.Rand, attempt int64) (*csdf.Graph, error) {
	g := csdf.NewGraph(p.Name)
	n := p.Tasks
	// Random topological order.
	order := rng.Perm(n)
	pos := make([]int, n)
	for i, t := range order {
		pos[t] = i
	}
	// Assign repetition values along the ring order, then create tasks in
	// ID order. SmoothQ follows a jittered triangle wave over the sorted
	// ladder: adjacent tasks (including across the ring wrap) sit on
	// adjacent rungs, and both the bottom and the top rung are covered so
	// normalization cannot collapse the magnitudes.
	q := make([]int64, n)
	ladder := append([]int64(nil), p.QLadder...)
	sortInt64(ladder)
	for i := 0; i < n; i++ {
		t := order[i]
		if p.SmoothQ && n > 1 {
			x := float64(i) / float64(n-1) // 0 ... 1 around the ring
			tri := 1 - abs64(2*x-1)        // 0 -> 1 -> 0
			rung := int(tri*float64(len(ladder)-1) + 0.5)
			rung += rng.Intn(3) - 1
			if rung < 0 {
				rung = 0
			}
			if rung >= len(ladder) {
				rung = len(ladder) - 1
			}
			// Pin the extremes so the ladder is always fully covered.
			if i == 0 || i == n-1 {
				rung = 0
			}
			if i == (n-1)/2 {
				rung = len(ladder) - 1
			}
			q[t] = ladder[rung]
		} else {
			q[t] = ladder[rng.Intn(len(ladder))]
		}
	}
	for t := 0; t < n; t++ {
		phases := 1 + rng.Intn(p.MaxPhases)
		durs := make([]int64, phases)
		for j := range durs {
			durs[j] = 1 + rng.Int63n(p.MaxDuration)
		}
		g.AddTask(fmt.Sprintf("t%d", t), durs)
	}
	tokensFor := func(src csdf.TaskID, ib int64) int64 {
		// One graph iteration's worth of production, scaled; the retry
		// counter raises the slack when liveness certification fails.
		return (p.TokensSlack + attempt) * q[src] * ib
	}
	addBufferMul := func(src, dst csdf.TaskID, back bool, mul int64) error {

		lcm, ok := rat.Lcm(q[src], q[dst])
		if !ok {
			return &rat.ErrOverflow{Op: "rate lcm"}
		}
		x, ok := rat.MulCheck(lcm, p.RateFactor)
		if !ok {
			return &rat.ErrOverflow{Op: "rate scale"}
		}
		ib, ob := x/q[src], x/q[dst]
		in := splitRates(rng, ib, g.Task(src).Phases())
		out := splitRates(rng, ob, g.Task(dst).Phases())
		var m0 int64
		if back {
			m0 = mul * tokensFor(src, ib)
		}
		g.AddBuffer(fmt.Sprintf("b%d", g.NumBuffers()), src, dst, in, out, m0)
		return nil
	}
	if p.Ring {
		for i := 0; i < n; i++ {
			src := csdf.TaskID(order[i])
			dst := csdf.TaskID(order[(i+1)%n])
			if n == 1 {
				break
			}
			// The ring-closing edge gets generous extra tokens so the
			// global circuit never becomes the bottleneck; local feedback
			// is what the benchmarks are about.
			if err := addBufferMul(src, dst, i == n-1, 4); err != nil {
				return nil, err
			}
		}
	} else {
		for i := 1; i < n; i++ {
			parent := order[rng.Intn(i)]
			if err := addBufferMul(csdf.TaskID(parent), csdf.TaskID(order[i]), false, 1); err != nil {
				return nil, err
			}
		}
	}
	for g.NumBuffers() < p.Buffers {
		var src, dst csdf.TaskID
		back := rng.Float64() < p.BackEdgeFrac
		if p.Ring && p.MaxSpan > 0 {
			// Local edges only: both endpoints within MaxSpan ring
			// positions, so feedback circuits stay between tasks with
			// close repetition counts.
			i := rng.Intn(n)
			span := 1 + rng.Intn(p.MaxSpan)
			j := i + span
			if j >= n {
				continue // skip wrapping spans; the ring edge covers them
			}
			if back {
				src, dst = csdf.TaskID(order[j]), csdf.TaskID(order[i])
			} else {
				src, dst = csdf.TaskID(order[i]), csdf.TaskID(order[j])
			}
		} else {
			a := csdf.TaskID(rng.Intn(n))
			b := csdf.TaskID(rng.Intn(n))
			if a == b {
				continue
			}
			src, dst = a, b
			if pos[src] > pos[dst] != back {
				src, dst = dst, src
			}
		}
		if err := addBufferMul(src, dst, back, 1); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func sortInt64(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// splitRates distributes total tokens over phases, each part non-negative,
// keeping the sum exact.
func splitRates(rng *rand.Rand, total int64, phases int) []int64 {
	out := make([]int64, phases)
	if phases == 1 {
		out[0] = total
		return out
	}
	remaining := total
	for i := 0; i < phases-1; i++ {
		// Bias towards an even split with occasional zeros.
		mean := remaining / int64(phases-i)
		var v int64
		if mean > 0 {
			v = rng.Int63n(2*mean + 1)
		}
		if v > remaining {
			v = remaining
		}
		out[i] = v
		remaining -= v
	}
	out[phases-1] = remaining
	return out
}

// RandomSmall generates a small strongly-connected live CSDF graph for
// property-based cross-validation against symbolic execution. Deterministic
// in seed.
func RandomSmall(seed int64) (*csdf.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	return Random(Profile{
		Name:         fmt.Sprintf("small-%d", seed),
		Seed:         rng.Int63(),
		Tasks:        2 + rng.Intn(4),
		Buffers:      3 + rng.Intn(4),
		QLadder:      []int64{1, 2, 3, 4},
		MaxPhases:    3,
		MaxDuration:  3,
		RateFactor:   1 + rng.Int63n(2),
		BackEdgeFrac: 0.4,
		TokensSlack:  1,
		Ring:         true,
	})
}
