package gen

import (
	"fmt"
	"os"
	"path/filepath"

	"kiter/internal/sdf3x"
)

// WriteSuite materializes a suite as one JSON graph file per graph under
// dir (created if needed) and returns the written paths in graph order.
// The files are the batch fixtures consumed by `kiterd -batch` and the
// engine's end-to-end tests.
func WriteSuite(dir string, s Suite) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(s.Graphs))
	for i, g := range s.Graphs {
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("%s-%d", s.Name, i)
		}
		path := filepath.Join(dir, name+".json")
		if err := sdf3x.WriteFile(path, g); err != nil {
			return nil, fmt.Errorf("gen: writing %s: %w", path, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// SuiteByName builds one of the named benchmark suites with the given
// size and seed: "actualdsp" (fixed five graphs, count ignored),
// "mimicdsp", "lghsdf" or "lgtransient".
func SuiteByName(name string, count int, seed int64) (Suite, error) {
	switch name {
	case "actualdsp":
		return ActualDSP(), nil
	case "mimicdsp":
		return MimicDSP(count, seed), nil
	case "lghsdf":
		return LgHSDF(count, seed), nil
	case "lgtransient":
		return LgTransient(count, seed), nil
	default:
		return Suite{}, fmt.Errorf("gen: unknown suite %q (want actualdsp, mimicdsp, lghsdf or lgtransient)", name)
	}
}
