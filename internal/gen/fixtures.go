// Package gen provides the benchmark graphs of the paper's evaluation
// (Section 4): the fixtures of Figures 1 and 2, reconstructions of
// classical DSP dataflow applications, and seeded random generators that
// match the published statistics of the SDF3 categories (Table 1) and of
// the IB+AG5CSDF industrial CSDF set (Table 2).
//
// The original benchmark files are not distributed with the paper; see
// DESIGN.md for the substitution argument. Every generated graph is
// consistent by construction (rates are derived from a chosen repetition
// vector) and is delivered live: generators place enough initial tokens on
// feedback arcs for a 1-periodic schedule to exist, which is a sufficient
// liveness certificate.
package gen

import (
	"fmt"

	"kiter/internal/csdf"
)

// Figure1 returns the single-buffer example of Figure 1 — a buffer b
// between tasks t (3 phases) and t′ (2 phases) with inb = [2,3,1],
// outb = [2,5] and M0 = 0 — along with the buffer's ID.
func Figure1() (*csdf.Graph, csdf.BufferID) {
	g := csdf.NewGraph("figure1")
	t := g.AddTask("t", []int64{1, 1, 1})
	tp := g.AddTask("t'", []int64{1, 1})
	b := g.AddBuffer("b", t, tp, []int64{2, 3, 1}, []int64{2, 5}, 0)
	return g, b
}

// Figure2 returns the paper's running example: four tasks
// A(ϕ=2, d=[1,1]), B(ϕ=3, d=[1,1,1]), C(ϕ=1), D(ϕ=1) connected by five
// buffers with the printed rate vectors. The graph is consistent with
// repetition vector q = [3,4,6,1]; its exact maximum throughput anchors
// (1-periodic Ω = 18, optimal Ω* = 13, K* = q) are recorded in
// EXPERIMENTS.md together with the critical-circuit correspondence to
// Figure 5.
func Figure2() *csdf.Graph {
	g := csdf.NewGraph("figure2")
	a := g.AddTask("A", []int64{1, 1})
	b := g.AddTask("B", []int64{1, 1, 1})
	c := g.AddTask("C", []int64{1})
	d := g.AddTask("D", []int64{1})
	g.AddBuffer("A->B", a, b, []int64{3, 5}, []int64{1, 1, 4}, 0)
	g.AddBuffer("B->C", b, c, []int64{6, 2, 1}, []int64{6}, 0)
	g.AddBuffer("C->A", c, a, []int64{2}, []int64{1, 3}, 4)
	g.AddBuffer("A->D", a, d, []int64{3, 5}, []int64{24}, 13)
	g.AddBuffer("D->C", d, c, []int64{36}, []int64{6}, 6)
	return g
}

// TwoTaskChain returns the smallest interesting SDF graph: A → B with unit
// rates and durations dA, dB. With sequential tasks its optimal period is
// max(dA, dB).
func TwoTaskChain(dA, dB int64) *csdf.Graph {
	g := csdf.NewGraph("two-task-chain")
	a := g.AddSDFTask("A", dA)
	b := g.AddSDFTask("B", dB)
	g.AddSDFBuffer("A->B", a, b, 1, 1, 0)
	return g
}

// HSDFRing returns a homogeneous ring of n unit-rate tasks with the given
// durations (cycled if shorter than n) and tokens initial tokens on the
// closing arc. Its optimal period is max(Σd / tokens, max d) — the classic
// event-graph formula — which makes it a precise oracle for tests.
func HSDFRing(n int, durations []int64, tokens int64) *csdf.Graph {
	g := csdf.NewGraph("hsdf-ring")
	ids := make([]csdf.TaskID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddSDFTask("", durations[i%len(durations)])
	}
	for i := 0; i < n-1; i++ {
		g.AddSDFBuffer("", ids[i], ids[i+1], 1, 1, 0)
	}
	g.AddSDFBuffer("", ids[n-1], ids[0], 1, 1, tokens)
	return g
}

// UpDownSampler returns a two-stage SDF rate converter: Src →(1/L) Up
// →(L/M)… a producer expanding by factor up then contracting by factor
// down, with a feedback arc making the graph strongly connected (tokens
// sized for liveness).
func UpDownSampler(up, down int64) *csdf.Graph {
	g := csdf.NewGraph("updown")
	src := g.AddSDFTask("src", 1)
	u := g.AddSDFTask("up", 1)
	d := g.AddSDFTask("down", 1)
	sink := g.AddSDFTask("sink", 1)
	g.AddSDFBuffer("src->up", src, u, 1, 1, 0)
	g.AddSDFBuffer("up->down", u, d, up, down, 0)
	g.AddSDFBuffer("down->sink", d, sink, 1, 1, 0)
	// Feedback with ample tokens: bounds nothing, closes the cycle.
	g.AddSDFBuffer("sink->src", sink, src, down, up, 4*up*down)
	return g
}

// SampleRateConverter returns a reconstruction of the classical CD-to-DAT
// sample-rate converter SDFG (44.1 kHz → 48 kHz in four polyphase stages),
// the flagship "ActualDSP" example of the SDF3 suite. Rates follow the
// published stage ratios; durations are unit. Σq = 612.
func SampleRateConverter() *csdf.Graph {
	g := csdf.NewGraph("samplerate")
	in := g.AddSDFTask("cd", 1)
	s1 := g.AddSDFTask("fir1", 1)
	s2 := g.AddSDFTask("fir2", 1)
	s3 := g.AddSDFTask("fir3", 1)
	s4 := g.AddSDFTask("fir4", 1)
	out := g.AddSDFTask("dat", 1)
	g.AddSDFBuffer("b1", in, s1, 1, 1, 0)
	g.AddSDFBuffer("b2", s1, s2, 2, 3, 0)
	g.AddSDFBuffer("b3", s2, s3, 2, 7, 0)
	g.AddSDFBuffer("b4", s3, s4, 8, 7, 0)
	g.AddSDFBuffer("b5", s4, out, 5, 1, 0)
	return g
}

// CyclicCSDF returns a small strongly-connected CSDF graph with non-unit
// phases, exercising the cyclo-static constraint machinery on a feedback
// loop. Tokens on the feedback arc keep it live.
func CyclicCSDF() *csdf.Graph {
	g := csdf.NewGraph("cyclic-csdf")
	a := g.AddTask("A", []int64{1, 2})
	b := g.AddTask("B", []int64{2, 1, 1})
	c := g.AddTask("C", []int64{3})
	g.AddBuffer("A->B", a, b, []int64{1, 2}, []int64{1, 0, 1}, 0)
	g.AddBuffer("B->C", b, c, []int64{1, 1, 1}, []int64{3}, 0)
	g.AddBuffer("C->A", c, a, []int64{2}, []int64{1, 2}, 8)
	return g
}

// DeadlockedRing returns a two-task ring with no initial tokens anywhere:
// a structurally dead graph used to exercise deadlock detection.
func DeadlockedRing() *csdf.Graph {
	g := csdf.NewGraph("deadlocked")
	a := g.AddSDFTask("A", 1)
	b := g.AddSDFTask("B", 1)
	g.AddSDFBuffer("A->B", a, b, 1, 1, 0)
	g.AddSDFBuffer("B->A", b, a, 1, 1, 0)
	return g
}

// MultiRateCycle returns a strongly-connected multirate SDF graph whose
// repetition vector is non-trivial (q = [3,2,6]) with feedback markings
// just large enough to be live; used to exercise K growth in K-Iter.
func MultiRateCycle() *csdf.Graph {
	g := csdf.NewGraph("multirate-cycle")
	a := g.AddSDFTask("A", 2)
	b := g.AddSDFTask("B", 3)
	c := g.AddSDFTask("C", 1)
	g.AddSDFBuffer("A->B", a, b, 2, 3, 0)
	g.AddSDFBuffer("B->C", b, c, 3, 1, 0)
	g.AddSDFBuffer("C->A", c, a, 1, 2, 7)
	return g
}

// KIterChain returns a chain of n Figure-2-style gadgets linked by loose
// unit-rate buffers. Every gadget carries its own pair of competing
// circuits whose 1-periodic bounds interleave across gadgets, so Algorithm
// 1 resolves them one critical circuit at a time: K-Iter needs on the
// order of 2n rounds, and each round bumps the periodicity of a single
// gadget's tasks while the rest of the expansion is unchanged. The family
// is the multi-round stress case of the incremental-expansion benchmarks
// (BENCH_pr2.json): n = 8 converges in 17 rounds over a 200-node
// bi-valued graph.
func KIterChain(n int) *csdf.Graph {
	g := csdf.NewGraph(fmt.Sprintf("kiter-chain-%d", n))
	var prevD csdf.TaskID
	for i := 0; i < n; i++ {
		a := g.AddTask(fmt.Sprintf("A%d", i), []int64{10, 10})
		b := g.AddTask(fmt.Sprintf("B%d", i), []int64{10, 10, 10})
		c := g.AddTask(fmt.Sprintf("C%d", i), []int64{10})
		d := g.AddTask(fmt.Sprintf("D%d", i), []int64{10})
		g.AddBuffer("", a, b, []int64{3, 5}, []int64{1, 1, 4}, 0)
		g.AddBuffer("", b, c, []int64{6, 2, 1}, []int64{6}, 0)
		g.AddBuffer("", c, a, []int64{2}, []int64{1, 3}, 4)
		g.AddBuffer("", a, d, []int64{3, 5}, []int64{24}, 13)
		g.AddBuffer("", d, c, []int64{36}, []int64{6}, 6)
		if i > 0 {
			// Loose forward link: enough tokens never to constrain the
			// steady state, present only to make the graph connected.
			g.AddSDFBuffer("", prevD, d, 1, 1, 100)
		}
		prevD = d
	}
	return g
}
