package gen

import (
	"kiter/internal/csdf"
)

// VideoPipeline returns the H.264-style encoder front end of
// examples/videopipeline: macroblock-phased motion estimation, a
// reference-frame feedback loop and a rate-control credit loop. It is the
// canonical base graph for scenario sweeps — every named task and buffer is
// a plausible design parameter (search duration, reference window, credit
// tokens).
func VideoPipeline() *csdf.Graph {
	const mbPerFrame = 16
	g := csdf.NewGraph("video-encoder")
	camera := g.AddSDFTask("camera", 10)
	me := g.AddTask("motion-est", []int64{2, 6})
	tq := g.AddSDFTask("transform", 3)
	ec := g.AddSDFTask("entropy", 20)
	recon := g.AddSDFTask("recon", 4)
	g.AddBuffer("frames", camera, me, []int64{mbPerFrame}, []int64{1, 1}, 0)
	g.AddBuffer("mbs", me, tq, []int64{1, 1}, []int64{1}, 0)
	g.AddBuffer("coeffs", tq, ec, []int64{1}, []int64{mbPerFrame}, 0)
	g.AddBuffer("to-recon", tq, recon, []int64{1}, []int64{1}, 0)
	g.AddBuffer("reference", recon, me, []int64{1}, []int64{0, 2}, mbPerFrame)
	g.AddBuffer("rate-ctl", ec, camera, []int64{1}, []int64{1}, 2)
	return g
}
