package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFireNoOpWithoutActiveSet(t *testing.T) {
	Activate(nil)
	if Active() {
		t.Fatal("Active with nil set")
	}
	if err := Fire("anything"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if Fired("anything") != 0 {
		t.Fatal("disarmed point reported fires")
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"justapoint",             // no mode
		"p:explode",              // unknown mode
		"p:error:50ms",           // argument on a no-arg mode
		"p:latency",              // latency without duration
		"p:latency:notaduration", // unparsable duration
		"p:latency:-5ms",         // negative duration
		"p:error::0",             // count below 1
		"p:error::x",             // non-numeric count
		":error",                 // empty point
		"p:error::2:extra",       // too many fields
		"p:error,p:panic",        // same point armed twice
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseEmptySpecDisarms(t *testing.T) {
	for _, spec := range []string{"", "  ", ","} {
		s, err := Parse(spec)
		if err != nil || s != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, s, err)
		}
	}
}

func TestErrorInjection(t *testing.T) {
	s, err := Parse("cache.get:error")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	Activate(s)
	defer Activate(nil)

	if err := Fire(PointCacheGet); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire = %v, want ErrInjected", err)
	}
	if err := Fire("cache.put"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if got := Fired(PointCacheGet); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestPanicInjection(t *testing.T) {
	s, err := Parse("solver.entry:panic")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	Activate(s)
	defer Activate(nil)

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic injected")
		}
		if msg, ok := v.(string); !ok || !strings.Contains(msg, "solver.entry") {
			t.Fatalf("panic value = %v", v)
		}
	}()
	Fire(PointSolverEntry)
}

func TestLatencyInjection(t *testing.T) {
	s, err := Parse("slow:latency:30ms")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	Activate(s)
	defer Activate(nil)

	start := time.Now()
	if err := Fire("slow"); err != nil {
		t.Fatalf("latency Fire returned %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency injection slept only %v", elapsed)
	}
}

// TestCountCapUnderConcurrency: a count-capped clause fires exactly its
// budget even when hammered from many goroutines, then passes forever.
func TestCountCapUnderConcurrency(t *testing.T) {
	s, err := Parse("p:error::5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	Activate(s)
	defer Activate(nil)

	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- Fire("p")
		}()
	}
	wg.Wait()
	close(errs)
	injected := 0
	for err := range errs {
		if err != nil {
			injected++
		}
	}
	if injected != 5 {
		t.Fatalf("injected %d faults, want exactly 5", injected)
	}
	if Fired("p") != 5 {
		t.Fatalf("Fired = %d, want 5", Fired("p"))
	}
	if err := Fire("p"); err != nil {
		t.Fatal("exhausted clause still firing")
	}
}

func TestMultiClauseSpec(t *testing.T) {
	s, err := Parse(" cache.get:error , dispatch.forward:error::2 ,solver.entry:latency:1ms")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	Activate(s)
	defer Activate(nil)

	if got := len(Points()); got != 3 {
		t.Fatalf("Points = %v, want 3 entries", Points())
	}
	if err := Fire(PointForward); !errors.Is(err, ErrInjected) {
		t.Fatalf("forward clause: %v", err)
	}
	if err := Fire(PointForward); !errors.Is(err, ErrInjected) {
		t.Fatalf("forward clause (2nd): %v", err)
	}
	if err := Fire(PointForward); err != nil {
		t.Fatalf("forward clause past cap: %v", err)
	}
	if err := Fire(PointSolverEntry); err != nil {
		t.Fatalf("latency clause: %v", err)
	}
}
