// Package faultinject is a dependency-free failpoint harness: named
// injection points compiled into the serving path (cache backend,
// dispatcher forward, solver entry) that do nothing until a fault spec is
// activated, then inject latency, errors or panics so the resilience
// machinery can be exercised deterministically — in chaos e2e tests and in
// live fleets via `kiterd -chaos` or the KITER_CHAOS environment variable.
//
// A spec is a comma-separated list of clauses:
//
//	point:mode[:arg[:count]]
//
// where mode is one of
//
//	error          Fire returns an injected error (wrapping ErrInjected)
//	panic          Fire panics with an injected message
//	latency        Fire sleeps for arg (a time.Duration, e.g. 200ms)
//
// and count, when present, caps how many times the clause fires before it
// burns out (absent = unlimited). Injection is deterministic — the first
// count calls fire, later ones pass — because chaos tests must converge on
// the same envelope every run. Example:
//
//	cache.get:error,dispatch.forward:error::2,solver.entry:latency:50ms
//
// When no spec is active, Fire is one atomic load and a nil return, so the
// failpoints stay in release builds at negligible cost.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Well-known injection points wired into the serving path. Points are
// plain strings — subsystems may fire dynamic names too (the engine fires
// "solver.<method>" per race contestant) — these constants just name the
// seams the ISSUE-level chaos scenarios target.
const (
	// PointSolverEntry fires at the top of every job evaluation, inside the
	// worker's panic isolation: a panic here becomes a job error, never a
	// crashed process.
	PointSolverEntry = "solver.entry"
	// PointCacheGet / PointCachePut fire in the disk cache backend; an
	// injected error degrades to a miss (Get) or a dropped write (Put),
	// matching the store's corruption philosophy.
	PointCacheGet = "cache.get"
	PointCachePut = "cache.put"
	// PointForward fires before each cluster forward attempt (initial and
	// retry), upstream of the HTTP call.
	PointForward = "dispatch.forward"
)

// ErrInjected is the sentinel wrapped by every error-mode injection, so
// callers (tests, log scrapers) can tell injected faults from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

type mode int

const (
	modeError mode = iota
	modePanic
	modeLatency
)

// failpoint is one armed clause.
type failpoint struct {
	point string
	mode  mode
	delay time.Duration // latency mode only
	// unlimited clauses skip the budget bookkeeping; otherwise remaining is
	// decremented atomically so concurrent callers cannot overshoot the cap
	// (it may go negative; only non-negative post-decrement values fire).
	unlimited bool
	remaining atomic.Int64
	fired     atomic.Uint64
}

// Set is a parsed, armed fault spec. Activate installs it globally.
type Set struct {
	points map[string]*failpoint
}

// active holds the installed Set; nil means every Fire is a no-op.
var active atomic.Pointer[Set]

// Parse compiles a spec string into a Set. An empty spec yields nil (no
// faults), which Activate treats as "disarm".
func Parse(spec string) (*Set, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := &Set{points: make(map[string]*failpoint)}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("faultinject: clause %q: want point:mode[:arg[:count]]", clause)
		}
		fp := &failpoint{point: parts[0], unlimited: true}
		if fp.point == "" {
			return nil, fmt.Errorf("faultinject: clause %q: empty point", clause)
		}
		switch parts[1] {
		case "error":
			fp.mode = modeError
		case "panic":
			fp.mode = modePanic
		case "latency":
			fp.mode = modeLatency
		default:
			return nil, fmt.Errorf("faultinject: clause %q: unknown mode %q (want error, panic or latency)", clause, parts[1])
		}
		if len(parts) >= 3 && parts[2] != "" {
			if fp.mode != modeLatency {
				return nil, fmt.Errorf("faultinject: clause %q: mode %q takes no argument", clause, parts[1])
			}
			d, err := time.ParseDuration(parts[2])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: clause %q: bad latency %q", clause, parts[2])
			}
			fp.delay = d
		} else if fp.mode == modeLatency {
			return nil, fmt.Errorf("faultinject: clause %q: latency needs a duration argument", clause)
		}
		if len(parts) == 4 {
			n, err := strconv.Atoi(parts[3])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: clause %q: bad count %q", clause, parts[3])
			}
			fp.unlimited = false
			fp.remaining.Store(int64(n))
		}
		if _, dup := s.points[fp.point]; dup {
			return nil, fmt.Errorf("faultinject: point %q armed twice", fp.point)
		}
		s.points[fp.point] = fp
	}
	if len(s.points) == 0 {
		return nil, nil
	}
	return s, nil
}

// Activate installs s as the process-wide fault set, replacing whatever
// was active. Activate(nil) disarms every failpoint. Tests that arm faults
// must defer Activate(nil) so later tests run clean.
func Activate(s *Set) { active.Store(s) }

// Active reports whether any fault set is installed.
func Active() bool { return active.Load() != nil }

// Fire triggers the failpoint named point. With no armed clause for the
// point (or no active set) it returns nil immediately. Otherwise it
// injects the clause's fault: sleeps and returns nil (latency), returns an
// injected error (error), or panics (panic). A count-capped clause stops
// injecting once its budget is spent.
func Fire(point string) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	fp := s.points[point]
	if fp == nil {
		return nil
	}
	// Spend one unit of the fire budget.
	if !fp.unlimited && fp.remaining.Add(-1) < 0 {
		return nil
	}
	fp.fired.Add(1)
	switch fp.mode {
	case modeLatency:
		time.Sleep(fp.delay)
		return nil
	case modePanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", point))
	default:
		return fmt.Errorf("faultinject: injected error at %s: %w", point, ErrInjected)
	}
}

// Fired reports how many times the named point has injected under the
// currently active set (0 when the point is unarmed or no set is active).
func Fired(point string) uint64 {
	s := active.Load()
	if s == nil {
		return 0
	}
	fp := s.points[point]
	if fp == nil {
		return 0
	}
	return fp.fired.Load()
}

// Points lists the armed point names of the active set, for startup logs.
func Points() []string {
	s := active.Load()
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.points))
	for p := range s.points {
		out = append(out, p)
	}
	return out
}
