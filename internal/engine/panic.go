package engine

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"

	"kiter/internal/csdf"
	"kiter/internal/telemetry"
)

// PanicError is a solver panic recovered by the engine's isolation layer:
// the job that hit it fails with this error while the worker (and the
// process) keeps serving. The stack is captured at the recovery site.
type PanicError struct {
	// Where names the recovery site ("evaluate" for the worker-level
	// recover, "solve.<method>" for a race contestant).
	Where string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: recovered panic in %s: %v", p.Where, p.Value)
}

// recoveredPanic accounts one recovered solver panic: it bumps the panic
// counter, attaches the stack to the request's trace span (reaching the
// -trace-log NDJSON sink for traced requests), logs it to stderr, and
// returns the PanicError the job fails with.
func (e *Engine) recoveredPanic(ctx context.Context, where string, v any) *PanicError {
	stack := debug.Stack()
	e.stats.panics.Add(1)
	if span := telemetry.FromContext(ctx); span != nil {
		span.SetAttr("panic", fmt.Sprint(v))
		span.SetAttr("panicWhere", where)
		span.SetAttr("panicStack", string(stack))
	}
	log.Printf("engine: recovered panic in %s: %v\n%s", where, v, stack)
	return &PanicError{Where: where, Value: v, Stack: stack}
}

// safeEval runs the engine's evaluation function under panic isolation:
// a panicking solver fails this one job instead of crashing the worker
// goroutine (and with it the process).
func (e *Engine) safeEval(ctx context.Context, req *Request) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, e.recoveredPanic(ctx, "evaluate", v)
		}
	}()
	return e.evalFn(ctx, req)
}

// safeRunMethod is runMethod under panic isolation, for race contestants:
// recover must run on the panicking goroutine itself, so each contestant
// wraps its solve here and a panicking method becomes one failed outcome
// while the other contestants race on.
func (e *Engine) safeRunMethod(ctx context.Context, g *csdf.Graph, m Method) (out raceOutcome) {
	defer func() {
		if v := recover(); v != nil {
			out = raceOutcome{method: m, err: e.recoveredPanic(ctx, "solve."+string(m), v)}
		}
	}()
	return e.runMethod(ctx, g, m)
}
