package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kiter/internal/gen"
)

// flightLen reports the number of in-flight keys (test-only).
func (g *flightGroup) flightLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}

// TestWaiterDepartsMidFlight: one of several coalesced waiters cancelling
// must not disturb the flight — the evaluation keeps its context, the
// remaining waiters get the result, and only the departed waiter sees its
// own cancellation. This is the hot path of the cluster: a forwarded
// waiter departing (client disconnect on another replica) while local
// submitters still want the answer.
func TestWaiterDepartsMidFlight(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var evals atomic.Int64
	var jobCtxErr atomic.Value
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		evals.Add(1)
		close(started)
		<-release
		jobCtxErr.Store(ctx.Err() == nil) // true when still live
		return &Result{Fingerprint: req.fingerprintHint}, nil
	}

	// Leader.
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
		leaderErr <- err
	}()
	<-started

	// Two more waiters join the same flight; one will depart.
	departCtx, depart := context.WithCancel(context.Background())
	departErr := make(chan error, 1)
	stayErr := make(chan error, 1)
	go func() {
		_, err := e.Submit(departCtx, &Request{Graph: gen.Figure2()})
		departErr <- err
	}()
	go func() {
		_, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
		stayErr <- err
	}()
	waitForStat(t, e, func(s Stats) bool { return s.Deduped == 2 })

	depart()
	if err := <-departErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("departed waiter got %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if err := <-stayErr; err != nil {
		t.Fatalf("staying waiter: %v", err)
	}
	if evals.Load() != 1 {
		t.Fatalf("evaluations = %d, want 1", evals.Load())
	}
	if live, _ := jobCtxErr.Load().(bool); !live {
		t.Fatal("job context was cancelled although waiters remained")
	}
	if n := e.flight.flightLen(); n != 0 {
		t.Fatalf("%d flight keys leaked after finish", n)
	}
}

// TestAllWaitersDepartReleasesKey: once the last of several waiters
// departs mid-flight, the job context fires AND the key is released, so
// the next submission of the same graph starts a fresh evaluation instead
// of inheriting the dying one.
func TestAllWaitersDepartReleasesKey(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	var evals atomic.Int64
	aborted := make(chan struct{}, 4)
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		n := evals.Add(1)
		if n == 1 {
			<-ctx.Done() // first flight: hang until abandoned
			aborted <- struct{}{}
			return nil, ctx.Err()
		}
		return &Result{Fingerprint: req.fingerprintHint}, nil
	}

	const waiters = 3
	ctx, cancelAll := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = e.Submit(ctx, &Request{Graph: gen.Figure2()})
		}()
	}
	waitForStat(t, e, func(s Stats) bool { return s.Deduped == waiters-1 })
	cancelAll()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter %d: %v, want context.Canceled", i, err)
		}
	}
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation not aborted after the last waiter left")
	}

	// The key must be free again: a fresh submission evaluates anew.
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	if err != nil {
		t.Fatalf("fresh Submit after abandonment: %v", err)
	}
	if res.Deduped || res.CacheHit {
		t.Fatalf("fresh submission rode the abandoned flight: %+v", res)
	}
	if evals.Load() != 2 {
		t.Fatalf("evaluations = %d, want 2 (abandoned + fresh)", evals.Load())
	}
	waitForStat(t, e, func(s Stats) bool { return s.Cancelled == 1 })
	if n := e.flight.flightLen(); n != 0 {
		t.Fatalf("%d flight keys leaked", n)
	}
}

// TestFlightRefcountWhiteBox exercises the flightGroup's refcount edges
// directly: leaves below the last keep the call alive, the last leave
// cancels and releases, and a leave racing a finish is harmless.
func TestFlightRefcountWhiteBox(t *testing.T) {
	g := newFlightGroup()
	c, leader := g.join("k")
	if !leader {
		t.Fatal("first join not leader")
	}
	for i := 0; i < 2; i++ {
		if _, again := g.join("k"); again {
			t.Fatal("second join elected a new leader")
		}
	}

	// Two of three leave: the call survives, context intact.
	g.leave(c)
	g.leave(c)
	if err := c.jobCtx.Err(); err != nil {
		t.Fatalf("job context died with a waiter remaining: %v", err)
	}
	if g.flightLen() != 1 {
		t.Fatal("key released early")
	}

	// Last leave: cancelled and released.
	g.leave(c)
	if c.jobCtx.Err() == nil {
		t.Fatal("job context alive after last leave")
	}
	if g.flightLen() != 0 {
		t.Fatal("key not released after last leave")
	}

	// finish after full abandonment must not resurrect or panic (the
	// worker may still publish the doomed evaluation's outcome).
	g.finish(c, nil, context.Canceled)
	if g.flightLen() != 0 {
		t.Fatal("finish resurrected a released key")
	}

	// The key is reusable: a fresh join leads a fresh call.
	c2, leader := g.join("k")
	if !leader || c2 == c {
		t.Fatal("join after release did not start a fresh call")
	}
	g.finish(c2, &Result{}, nil)
	if g.flightLen() != 0 {
		t.Fatal("key not released by finish")
	}
	// A straggler waiter leaving after finish must not underflow into a
	// fresh call's state.
	g.leave(c2)
	if g.flightLen() != 0 {
		t.Fatal("leave after finish disturbed the group")
	}
}

// waitForStat polls the engine's stats until cond holds or a deadline
// passes — counters move a hair after the observable completion events.
func waitForStat(t *testing.T, e *Engine, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(e.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats condition never held: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
