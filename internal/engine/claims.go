package engine

import "context"

// Claimer is the cross-process singleflight seam. The in-process
// flightGroup guarantees one evaluation per key per engine; a Claimer
// extends that guarantee across a fleet: before a leader job runs, the
// engine claims its cache key with the Claimer, which coordinates with
// the key's ring owner so that two replicas solving the same fingerprint
// concurrently collapse to one evaluation — even when neither replica
// forwards the job and the local memo cache is disabled.
//
// Claim blocks (bounded by the implementation's lease/poll policy and by
// ctx) until one of three outcomes:
//
//   - res != nil: another process already evaluated the key; res is its
//     published result. The engine serves it without evaluating and
//     counts it under Stats.ClaimsServed + RemoteResults.
//   - res == nil, release != nil: this process holds the claim and must
//     evaluate. The engine calls release exactly once afterwards — with
//     the completed result so the owner can publish it to the claim's
//     waiters, or with nil when the evaluation failed or was cancelled,
//     so the owner frees the key for the next claimant immediately
//     instead of waiting out the lease.
//   - both nil: claiming is unavailable (owner down, breaker open,
//     lease machinery failed). The engine degrades to a plain local
//     evaluation — claims are a dedup optimization, never a correctness
//     gate, so every error path must land here rather than block jobs.
//
// Implementations must be safe for concurrent use. internal/cluster
// implements it over /cluster/claim with leased claims at the ring owner.
type Claimer interface {
	Claim(ctx context.Context, key, fingerprint string) (res *Result, release func(res *Result))
}

// claimJob runs the Claimer handshake for one leader job. It returns
// (res, true) when the job was resolved remotely, (nil, false) when the
// engine should evaluate locally — in which case release (possibly nil)
// must be invoked with the evaluation's outcome.
func (e *Engine) claimJob(ctx context.Context, j *job) (res *Result, served bool, release func(*Result)) {
	// NoCache requests opt out of the shared result space entirely — their
	// results are never published, so claiming would serialize them behind
	// a lease for nothing.
	if e.cfg.Claims == nil || j.req.NoCache {
		return nil, false, nil
	}
	res, release = e.cfg.Claims.Claim(ctx, j.req.cacheKeyHint, j.req.fingerprintHint)
	if res != nil {
		e.stats.claimsServed.Add(1)
		e.stats.remote.Add(1)
		if e.cache != nil {
			e.cache.Put(j.req.cacheKeyHint, res)
		}
		return res, true, nil
	}
	if release != nil {
		e.stats.claimsGranted.Add(1)
	}
	return nil, false, release
}
