package engine

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent submissions of the same cache key onto
// one in-flight evaluation. Unlike the classical singleflight, waiters are
// reference-counted against a per-call job context: when every submitter
// has abandoned (their contexts cancelled), the job context is cancelled
// too, so an evaluation nobody is waiting for stops instead of running to
// completion — the cancellation propagates through KIterCtx / RunCtx into
// the analysis inner loops.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	key string
	// jobCtx governs the evaluation; cancel fires when waiters hit zero.
	jobCtx context.Context
	cancel context.CancelFunc
	// done is closed by finish, after res/err are set.
	done chan struct{}
	res  *Result
	err  error
	// waiters counts submitters still interested (guarded by group mu).
	waiters int
	// finished guards against double completion (guarded by group mu).
	finished bool
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the in-flight call for key, creating one when absent. The
// second return reports leadership: the leader is responsible for getting
// the job onto the worker pool. Every joiner must eventually call either
// wait (consuming the result) or leave (abandoning it).
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		return c, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &flightCall{
		key:     key,
		jobCtx:  ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		waiters: 1,
	}
	g.calls[key] = c
	return c, true
}

// leave abandons a call. When the last waiter leaves an unfinished call,
// the job context is cancelled and the key is released so that later
// submissions start a fresh evaluation instead of inheriting a dying one.
func (g *flightGroup) leave(c *flightCall) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c.waiters--
	if c.waiters > 0 || c.finished {
		return
	}
	c.cancel()
	if g.calls[c.key] == c {
		delete(g.calls, c.key)
	}
}

// finish publishes the outcome of a call and releases its key. Safe to
// call at most once per call; the job context is cancelled to free its
// timer/goroutine resources.
func (g *flightGroup) finish(c *flightCall, res *Result, err error) {
	g.mu.Lock()
	if c.finished {
		g.mu.Unlock()
		return
	}
	c.finished = true
	if g.calls[c.key] == c {
		delete(g.calls, c.key)
	}
	g.mu.Unlock()
	c.res, c.err = res, err
	c.cancel()
	close(c.done)
}
