package engine

import (
	"context"
	"testing"

	"kiter/internal/gen"
)

func TestBorrowSlots(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 3})
	if got := e.borrowSlots(2); got != 2 {
		t.Fatalf("borrowSlots(2) on an idle 3-slot pool = %d", got)
	}
	// One slot left: an over-ask is capped at what is free, non-blocking.
	if got := e.borrowSlots(5); got != 1 {
		t.Fatalf("borrowSlots(5) with 1 free slot = %d", got)
	}
	if got := e.borrowSlots(1); got != 0 {
		t.Fatalf("borrowSlots(1) on a drained pool = %d", got)
	}
	e.returnSlots(3)
	if got := e.borrowSlots(3); got != 3 {
		t.Fatalf("borrowSlots(3) after returnSlots(3) = %d", got)
	}
	e.returnSlots(3)
}

// TestRaceUnderFullPoolDegradesNotDeadlocks: with every evaluation slot
// already taken, a race cannot borrow extras — it must still complete (the
// contestants share the one slot the caller holds, sequentially) and must
// record the starvation. This is the regression test for the slot-weighted
// accounting: the old pool would silently run 3 contestants on top of a
// saturated Workers budget.
func TestRaceUnderFullPoolDegradesNotDeadlocks(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	// Drain the whole pool, simulating a fully busy fleet of workers.
	if got := e.borrowSlots(2); got != 2 {
		t.Fatalf("drained %d slots, want 2", got)
	}
	defer e.returnSlots(2)

	// Call the race directly the way a worker would: the worker's own slot
	// is the one admission the gate always has, so a starved race
	// degenerates to a sequential portfolio instead of deadlocking.
	tr, err := e.raceThroughput(context.Background(), gen.Figure2(), false)
	if err != nil {
		t.Fatalf("starved race failed: %v", err)
	}
	if !tr.Optimal {
		t.Fatalf("starved race result not optimal: %+v", tr)
	}
	if want := figure2Result(t); tr.Period != want {
		t.Fatalf("starved race period = %s, want %s", tr.Period, want)
	}
	s := e.Stats()
	if s.RaceStarved == 0 {
		t.Fatalf("starved race not recorded: %+v", s)
	}
	if s.RaceExtraSlots != 0 {
		t.Fatalf("race borrowed %d slots from a drained pool", s.RaceExtraSlots)
	}
}

// TestRaceBorrowsAndReturnsSlots: on an idle pool a race borrows width-1
// extra slots and hands every one of them back once its contestants exit.
func TestRaceBorrowsAndReturnsSlots(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 4})
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), Method: MethodRace})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Throughput == nil || !res.Throughput.Optimal {
		t.Fatalf("race did not settle: %+v", res)
	}
	if s := e.Stats(); s.RaceExtraSlots != 2 {
		t.Fatalf("RaceExtraSlots = %d, want 2 (3 contestants, idle pool)", s.RaceExtraSlots)
	}
	// Every slot is back: losers may still be winding down briefly after
	// the winner returned, so poll.
	waitForStat(t, e, func(Stats) bool { return len(e.slots) == 4 })
}

// TestRaceWinsByCategory: a race win lands in the graph's size bucket and
// Delta subtracts the nested counters.
func TestRaceWinsByCategory(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	before := e.Stats()
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), Method: MethodRace})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !res.Throughput.Optimal {
		t.Fatalf("race did not certify: %+v", res)
	}
	s := e.Stats()
	// Figure2 has 3 tasks → "tiny" bucket; exactly one win recorded there,
	// for whichever contestant won.
	bucket := s.RaceWinsByCategory["tiny"]
	if bucket == nil {
		t.Fatalf("no tiny-bucket wins: %+v", s.RaceWinsByCategory)
	}
	var total, overall uint64
	for _, v := range bucket {
		total += v
	}
	for _, v := range s.RaceWins {
		overall += v
	}
	if total != 1 || overall != 1 {
		t.Fatalf("tiny wins = %d, overall wins = %d, want 1/1", total, overall)
	}
	d := s.Delta(before)
	var dTotal uint64
	for _, v := range d.RaceWinsByCategory["tiny"] {
		dTotal += v
	}
	if dTotal != 1 {
		t.Fatalf("delta tiny wins = %d, want 1", dTotal)
	}
	// A no-movement window drops the bucket entirely.
	if d2 := e.Stats().Delta(s); d2.RaceWinsByCategory != nil {
		t.Fatalf("idle delta kept category wins: %+v", d2.RaceWinsByCategory)
	}
}

func TestRaceBucketBoundaries(t *testing.T) {
	cases := []struct {
		tasks int
		want  string
	}{{1, "tiny"}, {4, "tiny"}, {5, "small"}, {16, "small"}, {17, "medium"}, {64, "medium"}, {65, "large"}, {100000, "large"}}
	for _, c := range cases {
		if got := raceBuckets[raceBucket(c.tasks)].name; got != c.want {
			t.Fatalf("raceBucket(%d) = %s, want %s", c.tasks, got, c.want)
		}
	}
}
