package engine

import (
	"context"
	"errors"

	"kiter/internal/csdf"
	"kiter/internal/faultinject"
	"kiter/internal/kperiodic"
	"kiter/internal/sched"
	"kiter/internal/sizing"
	"kiter/internal/symbexec"
	"kiter/internal/telemetry"
)

// analysisOrder fixes the execution order regardless of how the request
// listed the analyses, so that later sections reuse earlier heavyweight
// work instead of recomputing it: the symbolic section feeds the
// throughput analysis (an exact symbolic answer decides a race outright),
// and the throughput section's certified periodicity vector feeds both the
// schedule and the sizing analyses.
var analysisOrder = []AnalysisKind{AnalysisSymbolic, AnalysisThroughput, AnalysisSchedule, AnalysisSizing}

// evaluate runs every requested analysis of a prepared request. Analysis
// failures land in the per-section Error fields (they are deterministic
// and cacheable); only context cancellation aborts the whole job.
func (e *Engine) evaluate(ctx context.Context, req *Request) (*Result, error) {
	// Chaos seam: "solver.entry" faults the whole job — an injected error
	// fails it, an injected panic exercises the worker-level recovery.
	if err := faultinject.Fire(faultinject.PointSolverEntry); err != nil {
		return nil, err
	}
	res := &Result{Fingerprint: req.fingerprintHint}
	if res.Fingerprint == "" {
		res.Fingerprint = req.Graph.FingerprintHex()
	}
	requested := map[AnalysisKind]bool{}
	for _, a := range req.Analyses {
		requested[a] = true
	}
	for _, a := range analysisOrder {
		if !requested[a] {
			continue
		}
		actx, aspan := telemetry.StartSpan(ctx, "analysis."+string(a))
		var err error
		switch a {
		case AnalysisThroughput:
			err = e.analyzeThroughput(actx, req, res)
		case AnalysisSchedule:
			err = e.analyzeSchedule(actx, req.Graph, res)
		case AnalysisSizing:
			err = e.analyzeSizing(actx, req.Graph, res)
		case AnalysisSymbolic:
			err = e.analyzeSymbolic(actx, req.Graph, res)
		}
		aspan.End()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// sectionErr routes an analysis error: contextual errors abort the job,
// anything else is recorded by the caller as a section error.
func sectionErr(ctx context.Context, err error) (string, error) {
	if err == nil {
		return "", nil
	}
	if contextual(err) || ctx.Err() != nil {
		return "", err
	}
	return err.Error(), nil
}

// throughputFromSymbolic reuses an already-computed symbolic section as
// the throughput answer where that is sound: an exact symbolic result (or
// a certified deadlock) settles both a race and an explicit symbolic
// request; a failed exploration settles only the explicit request. The
// second return reports whether the section was conclusive.
func throughputFromSymbolic(m Method, res *Result) (*ThroughputResult, bool) {
	sym := res.Symbolic
	if sym == nil {
		return nil, false
	}
	switch {
	case sym.Error == "":
		return &ThroughputResult{
			Period:     sym.Period,
			Throughput: sym.Throughput,
			Float:      sym.Float,
			Optimal:    true,
			Method:     MethodSymbolic,
		}, true
	case res.symDeadlock:
		return &ThroughputResult{Method: MethodSymbolic, Optimal: true, Throughput: "0", Error: sym.Error}, true
	case m == MethodSymbolic:
		return &ThroughputResult{Method: m, Error: sym.Error}, true
	}
	return nil, false
}

func (e *Engine) analyzeThroughput(ctx context.Context, req *Request, res *Result) error {
	if req.Method == MethodRace || req.Method == MethodSymbolic {
		if tr, done := throughputFromSymbolic(req.Method, res); done {
			res.Throughput = tr
			return nil
		}
	}
	if req.Method == MethodRace {
		// skip the symbolic contestant when its section already failed —
		// re-running it would hit the same budget the same way.
		tr, err := e.raceThroughput(ctx, req.Graph, res.Symbolic != nil)
		if err != nil {
			msg, abort := sectionErr(ctx, err)
			if abort != nil {
				return abort
			}
			res.Throughput = &ThroughputResult{Method: req.Method, Error: msg}
			return nil
		}
		res.Throughput = tr
		return nil
	}
	out := e.runMethod(ctx, req.Graph, req.Method)
	if out.err != nil {
		msg, abort := sectionErr(ctx, out.err)
		if abort != nil {
			return abort
		}
		res.Throughput = &ThroughputResult{Method: req.Method, Error: msg}
		return nil
	}
	res.Throughput = out.res
	return nil
}

func (e *Engine) analyzeSchedule(ctx context.Context, g *csdf.Graph, res *Result) error {
	// Reuse the throughput section's certified periodicity vector when
	// this job already computed one; otherwise run K-Iter for it.
	var K []int64
	var period string
	if t := res.Throughput; t != nil && t.Error == "" && t.Optimal && len(t.K) > 0 {
		K, period = t.K, t.Period
	} else {
		kr, err := kperiodic.KIterCtx(ctx, g, e.cfg.Options)
		if err != nil {
			msg, abort := sectionErr(ctx, err)
			if abort != nil {
				return abort
			}
			res.Schedule = &ScheduleResult{Error: msg}
			return nil
		}
		K, period = kr.K, kr.Period.String()
	}
	s, err := kperiodic.ScheduleKCtx(ctx, g, K, e.cfg.Options)
	if err != nil {
		msg, abort := sectionErr(ctx, err)
		if abort != nil {
			return abort
		}
		res.Schedule = &ScheduleResult{K: K, Error: msg}
		return nil
	}
	res.Schedule = &ScheduleResult{
		K:       K,
		Period:  period,
		Latency: sched.IterationLatency(g, s).String(),
	}
	return nil
}

func (e *Engine) analyzeSizing(ctx context.Context, g *csdf.Graph, res *Result) error {
	// With a certified periodicity vector already in hand, the optimal
	// capacities are one schedule construction away — skip the K-Iter
	// run inside OptimalCapacitiesCtx.
	if t := res.Throughput; t != nil && t.Error == "" && t.Optimal && len(t.K) > 0 {
		s, err := kperiodic.ScheduleKCtx(ctx, g, t.K, e.cfg.Options)
		if err != nil {
			msg, abort := sectionErr(ctx, err)
			if abort != nil {
				return abort
			}
			res.Sizing = &SizingResult{Error: msg}
			return nil
		}
		res.Sizing = &SizingResult{Capacities: sched.BufferBacklog(g, s, 3), Period: t.Period}
		return nil
	}
	caps, period, err := sizing.OptimalCapacitiesCtx(ctx, g, e.cfg.Options)
	if err != nil {
		msg, abort := sectionErr(ctx, err)
		if abort != nil {
			return abort
		}
		res.Sizing = &SizingResult{Error: msg}
		return nil
	}
	res.Sizing = &SizingResult{Capacities: caps, Period: period.String()}
	return nil
}

func (e *Engine) analyzeSymbolic(ctx context.Context, g *csdf.Graph, res *Result) error {
	r, err := symbexec.RunCtx(ctx, g, e.cfg.Symbolic)
	if err != nil {
		msg, abort := sectionErr(ctx, err)
		if abort != nil {
			return abort
		}
		res.Symbolic = &SymbolicResult{Error: msg}
		res.symDeadlock = errors.Is(err, symbexec.ErrDeadlock)
		return nil
	}
	res.Symbolic = &SymbolicResult{
		Period:        r.Period.String(),
		Throughput:    r.Throughput.String(),
		Float:         r.Throughput.Float(),
		TransientTime: r.TransientTime,
		CycleTime:     r.CycleTime,
		Events:        r.Events,
		StatesStored:  r.StatesStored,
	}
	return nil
}
