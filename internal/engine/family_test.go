package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kiter/internal/gen"
)

// TestSubmitFamilyCompletes runs a family of distinct graphs plus repeats
// and checks every member gets exactly one serialized done callback, with
// repeats answered from cache.
func TestSubmitFamilyCompletes(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()

	const distinct, total = 6, 12
	var mu sync.Mutex
	got := map[int]FamilyResult{}
	err := e.SubmitFamily(context.Background(), total, FamilyConfig{},
		func(i int) (*Request, error) {
			return &Request{Graph: gen.TwoTaskChain(int64(i%distinct+1), 2), Method: MethodKIter}, nil
		},
		func(r FamilyResult) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[r.Index]; dup {
				t.Errorf("done called twice for %d", r.Index)
			}
			got[r.Index] = r
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("%d done callbacks, want %d", len(got), total)
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("member %d failed: %v", i, r.Err)
		}
		if r.Result.Throughput == nil || !r.Result.Throughput.Optimal {
			t.Fatalf("member %d: no optimal throughput", i)
		}
	}
	s := e.Stats()
	if s.Evaluations != distinct {
		t.Fatalf("evaluations = %d, want %d (repeats should coalesce)", s.Evaluations, distinct)
	}
	if s.CacheHits+s.Deduped != total-distinct {
		t.Fatalf("cacheHits+deduped = %d, want %d", s.CacheHits+s.Deduped, total-distinct)
	}
}

// TestSubmitFamilyBuildErrors proves a failing build only fails its member.
func TestSubmitFamilyBuildErrors(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	boom := errors.New("boom")
	var mu sync.Mutex
	var failed, ok int
	err := e.SubmitFamily(context.Background(), 6, FamilyConfig{},
		func(i int) (*Request, error) {
			if i%2 == 1 {
				return nil, fmt.Errorf("member %d: %w", i, boom)
			}
			return &Request{Graph: gen.TwoTaskChain(int64(i+1), 1), Method: MethodKIter}, nil
		},
		func(r FamilyResult) {
			mu.Lock()
			defer mu.Unlock()
			if r.Err != nil {
				if !errors.Is(r.Err, boom) {
					t.Errorf("member %d: unexpected error %v", r.Index, r.Err)
				}
				failed++
				return
			}
			ok++
		})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 3 || ok != 3 {
		t.Fatalf("failed=%d ok=%d, want 3/3", failed, ok)
	}
}

// TestSubmitFamilyCancellation cancels mid-family: the call returns
// ctx.Err(), members never started get no callback, and the engine drains.
func TestSubmitFamilyCancellation(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Close()
	release := make(chan struct{})
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		select {
		case <-release:
			return &Result{Throughput: &ThroughputResult{Optimal: true}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	var mu sync.Mutex
	var callbacks int
	done := make(chan error, 1)
	go func() {
		done <- e.SubmitFamily(ctx, 64, FamilyConfig{Width: 2},
			func(i int) (*Request, error) {
				started <- struct{}{}
				return &Request{Graph: gen.TwoTaskChain(int64(i+1), 1), Method: MethodKIter, NoCache: true}, nil
			},
			func(r FamilyResult) {
				mu.Lock()
				callbacks++
				mu.Unlock()
			})
	}()
	// Wait until the family is saturated (width 2), then cancel.
	<-started
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitFamily did not return after cancel")
	}
	close(release)
	mu.Lock()
	got := callbacks
	mu.Unlock()
	if got > 3 {
		t.Fatalf("%d callbacks after early cancel, want at most the in-flight window", got)
	}
}

// TestSubmitFamilyMemberTimeout proves MemberTimeout bounds each member
// individually: stuck members fail with DeadlineExceeded, the family
// itself completes without error.
func TestSubmitFamilyMemberTimeout(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		<-ctx.Done() // never finishes on its own
		return nil, ctx.Err()
	}
	var mu sync.Mutex
	var timedOut int
	err := e.SubmitFamily(context.Background(), 4,
		FamilyConfig{MemberTimeout: 20 * time.Millisecond},
		func(i int) (*Request, error) {
			return &Request{Graph: gen.TwoTaskChain(int64(i+1), 1), Method: MethodKIter, NoCache: true}, nil
		},
		func(r FamilyResult) {
			mu.Lock()
			defer mu.Unlock()
			if errors.Is(r.Err, context.DeadlineExceeded) {
				timedOut++
			}
		})
	if err != nil {
		t.Fatalf("family-level error: %v (member timeouts must stay member-local)", err)
	}
	if timedOut != 4 {
		t.Fatalf("%d members timed out, want 4", timedOut)
	}
}

// TestStatsDelta checks the per-window counter view.
func TestStatsDelta(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	sub := func(n int64) {
		if _, err := e.Submit(context.Background(), &Request{Graph: gen.TwoTaskChain(n, 2), Method: MethodKIter}); err != nil {
			t.Fatal(err)
		}
	}
	sub(1)
	before := e.Stats()
	sub(1) // cache hit
	sub(2) // fresh evaluation
	d := e.Stats().Delta(before)
	if d.Submitted != 2 || d.CacheHits != 1 || d.Evaluations != 1 {
		t.Fatalf("delta = %+v, want submitted 2 / hits 1 / evals 1", d)
	}
	if d.HitRate != 0.5 {
		t.Fatalf("window hit rate = %v, want 0.5", d.HitRate)
	}
	if d.MeanLatencyMS < 0 {
		t.Fatalf("window mean latency = %v", d.MeanLatencyMS)
	}
}
