package engine

import (
	"context"
	"sync"
	"time"
)

// FamilyResult couples one family member's outcome with its index in the
// family. Exactly one of Result/Err is meaningful.
type FamilyResult struct {
	Index  int
	Result *Result
	Err    error
}

// FamilyConfig tunes one SubmitFamily call.
type FamilyConfig struct {
	// Width bounds concurrent member submissions (<= 0 picks the batch
	// default: 2·Workers). Width is clamped below MaxPending with
	// headroom so a family alone does not trip the engine's load
	// shedding; concurrent traffic sharing the pending budget can still
	// push the engine over it, in which case the affected members fail
	// with ErrOverloaded like any other submission.
	Width int
	// MemberTimeout bounds each member's submission individually (0 = no
	// per-member deadline) — the per-request budget of a server, applied
	// per scenario rather than to the family as a whole.
	MemberTimeout time.Duration
	// MemberContext, when set, derives each member's submission context
	// from the family context — the trace-sampling seam: a sweep server
	// attaches a scenario span to every Nth member so a sampled scenario
	// traces end-to-end while the rest pay nothing. It runs before
	// MemberTimeout wraps the context; returning ctx unchanged opts the
	// member out.
	MemberContext func(ctx context.Context, i int) context.Context
}

// SubmitFamily streams a family of n related requests through the engine —
// the submission pattern behind scenario sweeps and batch runs. build(i) is
// called once per member, in order, to produce the request (a build error
// fails that member without aborting the family); done is invoked exactly
// once per started member, in completion order, and is serialized — done
// implementations need no locking and may write to a stream directly.
//
// When ctx is cancelled, in-flight members fail with the context error,
// members not yet started are never built or submitted, and SubmitFamily
// returns ctx.Err() after the in-flight tail drains; members skipped this
// way get no done callback. A member that exceeds cfg.MemberTimeout fails
// alone with context.DeadlineExceeded without aborting the family.
func (e *Engine) SubmitFamily(ctx context.Context, n int, cfg FamilyConfig, build func(int) (*Request, error), done func(FamilyResult)) error {
	width := cfg.Width
	if width <= 0 {
		width = 2 * e.cfg.Workers
	}
	// Clamp to 3/4 of the pending budget: a family saturating MaxPending
	// exactly would make every concurrent /analyze submission shed load
	// for the family's whole duration. The headroom only lowers the odds —
	// other clients can still fill the remaining quarter and trip
	// ErrOverloaded for family members and themselves alike.
	if e.cfg.MaxPending > 0 {
		if budget := max(1, e.cfg.MaxPending-e.cfg.MaxPending/4); width > budget {
			width = budget
		}
	}
	if width < 1 {
		width = 1
	}
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	var doneMu sync.Mutex
	emit := func(r FamilyResult) {
		doneMu.Lock()
		defer doneMu.Unlock()
		done(r)
	}
	for i := 0; i < n; i++ {
		// The semaphore acquire doubles as the cancellation point: once ctx
		// is done no further member starts, bounding the work a disconnected
		// sweep client leaves behind to the in-flight window. The explicit
		// Err check first gives cancellation priority over a free slot
		// (select picks randomly when both are ready).
		if ctx.Err() != nil {
			wg.Wait()
			return ctx.Err()
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return ctx.Err()
		}
		req, err := build(i)
		if err != nil {
			<-sem
			emit(FamilyResult{Index: i, Err: err})
			continue
		}
		wg.Add(1)
		go func(i int, req *Request) {
			defer wg.Done()
			defer func() { <-sem }()
			mctx := ctx
			if cfg.MemberContext != nil {
				mctx = cfg.MemberContext(mctx, i)
			}
			if cfg.MemberTimeout > 0 {
				var cancel context.CancelFunc
				mctx, cancel = context.WithTimeout(mctx, cfg.MemberTimeout)
				defer cancel()
			}
			res, err := e.Submit(mctx, req)
			emit(FamilyResult{Index: i, Result: res, Err: err})
		}(i, req)
	}
	wg.Wait()
	return ctx.Err()
}
