package engine

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"kiter/internal/csdf"
	"kiter/internal/faultinject"
	"kiter/internal/kperiodic"
	"kiter/internal/symbexec"
	"kiter/internal/telemetry"
)

// raceOutcome is one contestant's report.
type raceOutcome struct {
	method Method
	res    *ThroughputResult
	err    error
	// definitive marks an outcome that settles the race even though it is
	// an error: a certified deadlock is a final answer, not a failure of
	// the contestant.
	definitive bool
}

// raceThroughput launches K-Iter, the 1-periodic method and symbolic
// execution concurrently and returns the first certified-optimal result,
// cancelling the losers. A certified deadlock from any contestant also
// settles the race. When no contestant certifies optimality, the tightest
// surviving bound (the highest guaranteed throughput) is returned with
// Optimal = false; when every contestant fails, the K-Iter error wins (it
// is the most informative). skipSymbolic drops the symbolic contestant — used
// when this job already ran the symbolic analysis and it failed, so a
// rerun would only replay the same budget exhaustion.
//
// The fan-out is slot-weighted: the race's own slot (held by the worker
// running this job) admits one contestant, and each extra concurrent
// contestant needs a slot borrowed from the engine's idle pool, so racing
// is charged against Config.Workers instead of multiplying it. Under a
// fully busy pool no extras are available and the contestants share the
// single held slot, running one after another — a sequential portfolio,
// slower but within budget, with the same outcome semantics.
func (e *Engine) raceThroughput(ctx context.Context, g *csdf.Graph, skipSymbolic bool) (*ThroughputResult, error) {
	rctx, rspan := telemetry.StartSpan(ctx, "race")
	defer rspan.End()
	raceCtx, cancel := context.WithCancel(rctx)
	defer cancel()

	contestants := []Method{MethodKIter, MethodPeriodic, MethodSymbolic}
	if skipSymbolic {
		contestants = contestants[:2]
	}
	borrowed := e.borrowSlots(len(contestants) - 1)
	e.stats.raceBorrowed.Add(uint64(borrowed))
	if borrowed < len(contestants)-1 {
		e.stats.raceStarved.Add(1)
	}
	rspan.SetAttr("borrowedSlots", int64(borrowed))
	// gate admits 1+borrowed concurrent contestants; a contestant that
	// cannot enter waits for a running one to finish or the race to settle.
	gate := make(chan struct{}, 1+borrowed)
	ch := make(chan raceOutcome, len(contestants))
	var exited sync.WaitGroup
	exited.Add(len(contestants))
	for _, m := range contestants {
		m := m
		go func() {
			defer exited.Done()
			select {
			case gate <- struct{}{}:
				defer func() { <-gate }()
				ch <- e.safeRunMethod(raceCtx, g, m)
			case <-raceCtx.Done():
				// The race settled (or was cancelled) before this
				// contestant got a slot; report the cancellation so the
				// collector's outcome count still balances.
				ch <- raceOutcome{method: m, err: raceCtx.Err()}
			}
		}()
	}
	// Borrowed slots go back only after every contestant goroutine has
	// fully exited: an early winner returns below while cancelled losers
	// are still winding down, and releasing their slots early would let
	// the pool transiently exceed Workers concurrent analyses.
	go func() {
		exited.Wait()
		e.returnSlots(borrowed)
	}()

	var fallback *ThroughputResult // tightest non-optimal surviving bound
	var firstErr error
	var kiterErr error
	for range contestants {
		out := <-ch
		if out.definitive {
			cancel()
			e.stats.raceWin(out.method, g.NumTasks())
			rspan.SetAttr("winner", string(out.method))
			return out.res, out.err
		}
		if out.err != nil {
			if contextual(out.err) {
				// The race itself was cancelled from outside.
				if err := ctx.Err(); err != nil {
					cancel()
					return nil, err
				}
				continue
			}
			if out.method == MethodKIter {
				kiterErr = out.err
			}
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		if out.res.Optimal {
			cancel()
			e.stats.raceWin(out.method, g.NumTasks())
			rspan.SetAttr("winner", string(out.method))
			return out.res, nil
		}
		// Keep the tightest surviving bound, not the first to arrive:
		// completion order is a scheduling accident, and a later
		// contestant may guarantee strictly more throughput.
		if fallback == nil || tighterBound(out.res, fallback) {
			fallback = out.res
		}
	}
	if fallback != nil {
		return fallback, nil
	}
	if kiterErr != nil {
		return nil, kiterErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, errors.New("engine: no contestant produced a result")
}

// tighterBound reports whether a is a strictly tighter throughput lower
// bound than b, i.e. guarantees more throughput. Bounds compare as exact
// rationals parsed from their Throughput strings (an absent throughput is
// zero); if either fails to parse, the float mirrors decide.
func tighterBound(a, b *ThroughputResult) bool {
	ar, aok := boundRat(a)
	br, bok := boundRat(b)
	if aok && bok {
		return ar.Cmp(br) > 0
	}
	return a.Float > b.Float
}

// boundRat parses a result's throughput as an exact rational.
func boundRat(t *ThroughputResult) (*big.Rat, bool) {
	if t.Throughput == "" {
		return new(big.Rat), true
	}
	return new(big.Rat).SetString(t.Throughput)
}

// runMethod evaluates the throughput of g with one strategy, timing it
// into the per-method solve histogram and a "solve.<method>" trace span —
// under racing this is each contestant's phase record.
func (e *Engine) runMethod(ctx context.Context, g *csdf.Graph, m Method) raceOutcome {
	mctx, span := telemetry.StartSpan(ctx, "solve."+string(m))
	start := time.Now()
	out := e.runMethodInner(mctx, g, m)
	e.met.solve.With(string(m)).Observe(time.Since(start).Seconds())
	if span != nil {
		if out.err != nil {
			span.SetAttr("error", out.err.Error())
		} else if out.res != nil {
			span.SetAttr("optimal", out.res.Optimal)
		}
		span.End()
	}
	return out
}

// observeKIter folds a K-Iter run's work counters into the solver
// histograms. res may be a partial result (cancellation, budget) or nil
// (non-convergence). Arc work is real either way and always counts; the
// rounds/Howard distributions take completed solves only — a race loser
// cancelled mid-run would otherwise skew them toward truncated counts.
func (e *Engine) observeKIter(res *kperiodic.KIterResult, err error) {
	if res == nil {
		return
	}
	var built, reused, howard int64
	for _, step := range res.Trace {
		built += int64(step.ArcsBuilt)
		reused += int64(step.ArcsReused)
		howard += int64(step.HowardIterations)
	}
	e.met.arcsBuilt.Add(uint64(built))
	e.met.arcsReused.Add(uint64(reused))
	if err == nil {
		e.met.kiterRounds.Observe(float64(res.Iterations))
		e.met.howardIters.Observe(float64(howard))
	}
}

// runMethodInner dispatches to the solver for one strategy.
func (e *Engine) runMethodInner(ctx context.Context, g *csdf.Graph, m Method) raceOutcome {
	out := raceOutcome{method: m}
	// Chaos seam: "solver.<method>" faults one contestant — under racing an
	// injected panic here is recovered by safeRunMethod while the other
	// contestants keep racing, so the job still succeeds.
	if err := faultinject.Fire("solver." + string(m)); err != nil {
		out.err = err
		return out
	}
	switch m {
	case MethodKIter:
		res, err := kperiodic.KIterCtx(ctx, g, e.cfg.Options)
		e.observeKIter(res, err)
		if err != nil {
			return kperiodicFailure(out, err)
		}
		out.res = fromEvaluation(res.Evaluation, m)
		out.res.Iterations = res.Iterations
		return out
	case MethodPeriodic:
		ev, err := kperiodic.Evaluate1Ctx(ctx, g, e.cfg.Options)
		if err != nil {
			return kperiodicFailure(out, err)
		}
		e.met.howardIters.Observe(float64(ev.HowardIterations))
		out.res = fromEvaluation(ev, m)
		return out
	case MethodExpansion:
		ev, err := kperiodic.ExpansionCtx(ctx, g, e.cfg.Options)
		if err != nil {
			return kperiodicFailure(out, err)
		}
		e.met.howardIters.Observe(float64(ev.HowardIterations))
		out.res = fromEvaluation(ev, m)
		return out
	case MethodSymbolic:
		res, err := symbexec.RunCtx(ctx, g, e.cfg.Symbolic)
		if err != nil {
			out.err = err
			if errors.Is(err, symbexec.ErrDeadlock) {
				out.definitive = true
				out.res = &ThroughputResult{Method: m, Optimal: true, Throughput: "0", Error: err.Error()}
				out.err = nil
			}
			return out
		}
		out.res = &ThroughputResult{
			Period:     res.Period.String(),
			Throughput: res.Throughput.String(),
			Float:      res.Throughput.Float(),
			Optimal:    true, // symbolic execution is exact
			Method:     m,
		}
		return out
	default:
		out.err = fmt.Errorf("engine: unknown method %q", m)
		return out
	}
}

// kperiodicFailure classifies a kperiodic error: a certified deadlock is a
// definitive throughput-zero verdict (it settles a race); anything else
// stays a contestant failure.
func kperiodicFailure(out raceOutcome, err error) raceOutcome {
	var de *kperiodic.DeadlockError
	if errors.As(err, &de) {
		out.definitive = true
		out.res = &ThroughputResult{Method: out.method, Optimal: true, Throughput: "0", Error: err.Error()}
		return out
	}
	out.err = err
	return out
}

// fromEvaluation converts a K-periodic evaluation into the wire shape.
func fromEvaluation(ev *kperiodic.Evaluation, m Method) *ThroughputResult {
	t := &ThroughputResult{
		Period:  ev.Period.String(),
		Optimal: ev.Optimal,
		Method:  m,
		K:       ev.K,
	}
	if ev.Throughput.Sign() != 0 {
		t.Throughput = ev.Throughput.String()
		t.Float = ev.Throughput.Float()
	}
	return t
}

// contextual reports whether err is a context cancellation or deadline.
func contextual(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
