package engine

import (
	"context"
	"fmt"
	"testing"

	"kiter/internal/gen"
)

func TestTieredPromotionAndWriteThrough(t *testing.T) {
	fast := NewMemoryCache(1, 8)
	slow := NewMemoryCache(1, 8)
	tc := NewTieredCache(fast, slow)

	// A slow-tier-only entry (what a restart leaves behind) is served and
	// promoted into the fast tier.
	slow.Put("warm", &Result{Fingerprint: "warm"})
	res, ok := tc.Get("warm")
	if !ok || res.Fingerprint != "warm" {
		t.Fatalf("tiered get = %+v, %v", res, ok)
	}
	if _, ok := fast.Get("warm"); !ok {
		t.Fatal("slow-tier hit was not promoted into the fast tier")
	}

	// Stores write through to both tiers.
	tc.Put("new", &Result{Fingerprint: "new"})
	if _, ok := fast.Get("new"); !ok {
		t.Fatal("put skipped the fast tier")
	}
	if _, ok := slow.Get("new"); !ok {
		t.Fatal("put skipped the slow tier")
	}
	if tc.Len() != fast.Len()+slow.Len() {
		t.Fatalf("tiered len = %d, want sum %d", tc.Len(), fast.Len()+slow.Len())
	}
	if ts, ok := tc.(TierStatser); !ok || len(ts.TierStats()) != 2 {
		t.Fatal("tiered backend does not report both tiers")
	}
}

func TestTieredNilSides(t *testing.T) {
	mem := NewMemoryCache(1, 4)
	if got := NewTieredCache(nil, mem); got != mem {
		t.Fatal("nil fast tier should unwrap to the slow one")
	}
	if got := NewTieredCache(mem, nil); got != mem {
		t.Fatal("nil slow tier should unwrap to the fast one")
	}
	if got := NewTieredCache(nil, nil); got != nil {
		t.Fatal("two nil tiers should compose to no cache")
	}
	if NewMemoryCache(4, 0) != nil {
		t.Fatal("non-positive capacity must disable the memory backend")
	}
}

// TestEngineCustomBackendStats proves Config.CacheBackend replaces the
// default cache and that per-tier counters surface on Stats.
func TestEngineCustomBackendStats(t *testing.T) {
	e := New(Config{
		Workers:      2,
		CacheBackend: NewTieredCache(NewMemoryCache(2, 16), NewMemoryCache(2, 16)),
	})
	defer e.Close()
	req := func() *Request { return &Request{Graph: gen.TwoTaskChain(2, 3), Method: MethodKIter} }
	if _, err := e.Submit(context.Background(), req()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Submit(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("repeat submission missed the configured backend")
	}
	s := e.Stats()
	if len(s.CacheTiers) != 2 {
		t.Fatalf("stats report %d tiers, want 2: %+v", len(s.CacheTiers), s.CacheTiers)
	}
	if s.CacheTiers[0].Hits != 1 {
		t.Fatalf("fast tier hits = %d, want 1", s.CacheTiers[0].Hits)
	}
	if s.CacheEntries == 0 {
		t.Fatal("CacheEntries gauge lost with a custom backend")
	}
}

// TestStatsDeltaCacheTiers checks per-tier counters subtract over a window
// while the gauges keep the newer snapshot's values.
func TestStatsDeltaCacheTiers(t *testing.T) {
	prev := Stats{CacheTiers: []CacheTierStats{{Tier: "memory", Hits: 2, Misses: 5, Entries: 3}}}
	now := Stats{CacheTiers: []CacheTierStats{
		{Tier: "memory", Hits: 6, Misses: 7, Entries: 9},
		{Tier: "disk", Hits: 4, Misses: 1, Entries: 11, Bytes: 4096},
	}}
	d := now.Delta(prev)
	if len(d.CacheTiers) != 2 {
		t.Fatalf("delta tiers = %+v", d.CacheTiers)
	}
	mem, disk := d.CacheTiers[0], d.CacheTiers[1]
	if mem.Hits != 4 || mem.Misses != 2 || mem.Entries != 9 {
		t.Fatalf("memory delta = %+v", mem)
	}
	if disk.Hits != 4 || disk.Misses != 1 || disk.Bytes != 4096 {
		t.Fatalf("disk tier absent from prev must delta from zero: %+v", disk)
	}
}

// TestCacheTotalCapacityPinned pins the remainder-distribution fix: shard
// capacities must sum exactly to the configured total, not round up.
func TestCacheTotalCapacityPinned(t *testing.T) {
	for _, tc := range []struct{ shards, capacity int }{
		{16, 17}, {16, 16}, {16, 100}, {4, 7}, {7, 3}, {1, 5},
	} {
		c := newResultCache(tc.shards, tc.capacity)
		sum := 0
		for i := range c.shards {
			if c.shards[i].capacity < 1 {
				t.Fatalf("%d/%d: shard %d has capacity %d", tc.shards, tc.capacity, i, c.shards[i].capacity)
			}
			sum += c.shards[i].capacity
		}
		if sum != tc.capacity {
			t.Fatalf("shards=%d capacity=%d: shard capacities sum to %d", tc.shards, tc.capacity, sum)
		}
		for i := 0; i < 50*tc.capacity; i++ {
			c.put(fmt.Sprint("key-", i), &Result{})
		}
		if n := c.len(); n > tc.capacity {
			t.Fatalf("shards=%d capacity=%d: cache grew to %d entries", tc.shards, tc.capacity, n)
		}
	}
}
