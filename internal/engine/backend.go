package engine

import (
	"context"
	"errors"
	"sync/atomic"
)

// CacheBackend is the pluggable memo-cache seam: the engine stores every
// completed Result under its cache key and answers repeat submissions from
// here. Implementations must be safe for concurrent use, must treat stored
// Results as immutable shared instances, and must tolerate Get/Put after
// Close as no-op misses (the engine's shutdown can race late submissions).
// A lookup miss and a store failure are indistinguishable by design — the
// cache is an optimization, never a source of truth — so backends swallow
// their own I/O errors and report them, if at all, through TierStats.
//
// The in-process sharded LRU (NewMemoryCache), the disk store
// (internal/cachedisk) and the memory→disk composition (NewTieredCache)
// implement it today; networked backends (Redis, memcached) plug in behind
// the same four methods.
type CacheBackend interface {
	// Get returns the result stored under key, or (nil, false).
	Get(key string) (*Result, bool)
	// Put stores res under key, evicting older entries as needed.
	Put(key string, res *Result)
	// Len returns the number of stored entries (summed over tiers for
	// compositions, so an entry resident in two tiers counts twice).
	Len() int
	// Close releases the backend's resources. The engine owns the backend
	// it is configured with and calls Close exactly once from Engine.Close.
	Close() error
}

// CtxCacheBackend is the optional context-aware face of a CacheBackend.
// Networked tiers (the fleet cache) implement it to propagate trace
// context — and honor cancellation — on their remote hops; the engine
// calls the ctx variants when available and falls back to Get/Put
// otherwise, so purely local backends never see a context.
type CtxCacheBackend interface {
	GetCtx(ctx context.Context, key string) (*Result, bool)
	PutCtx(ctx context.Context, key string, res *Result)
}

// cacheGet consults b, preferring the context-aware path.
func cacheGet(ctx context.Context, b CacheBackend, key string) (*Result, bool) {
	if cb, ok := b.(CtxCacheBackend); ok {
		return cb.GetCtx(ctx, key)
	}
	return b.Get(key)
}

// cachePut stores into b, preferring the context-aware path.
func cachePut(ctx context.Context, b CacheBackend, key string, res *Result) {
	if cb, ok := b.(CtxCacheBackend); ok {
		cb.PutCtx(ctx, key, res)
		return
	}
	b.Put(key, res)
}

// CacheTierStats is one tier's telemetry as reported on Stats.CacheTiers.
type CacheTierStats struct {
	// Tier names the tier ("memory", "disk", …).
	Tier string `json:"tier"`
	// Hits and Misses count Get outcomes against this tier. In a tiered
	// composition every lookup consults the tiers in order, so a memory
	// hit never reaches the disk counters, while a disk hit implies a
	// memory miss.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Entries is the current number of stored entries; Bytes the tier's
	// storage footprint: exact segment bytes for the disk tier, an
	// at-insert heap estimate for the memory tier, payload bytes
	// transferred for remote tiers.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes,omitempty"`
}

// TierStatser is the optional telemetry interface a CacheBackend may
// implement; the engine surfaces its report on Stats.CacheTiers.
type TierStatser interface {
	TierStats() []CacheTierStats
}

// memoryCache adapts the sharded LRU to CacheBackend, adding the per-tier
// hit/miss accounting the raw cache does not carry.
type memoryCache struct {
	c            *resultCache
	hits, misses atomic.Uint64
}

// NewMemoryCache returns the in-process sharded-LRU backend — the engine's
// default — with the given shard count and total entry capacity. A
// non-positive capacity disables caching (nil backend).
func NewMemoryCache(shards, capacity int) CacheBackend {
	c := newResultCache(shards, capacity)
	if c == nil {
		return nil
	}
	return &memoryCache{c: c}
}

func (m *memoryCache) Get(key string) (*Result, bool) {
	res, ok := m.c.get(key)
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return res, ok
}

func (m *memoryCache) Put(key string, res *Result) { m.c.put(key, res) }
func (m *memoryCache) Len() int                    { return m.c.len() }
func (m *memoryCache) Close() error                { return nil }

func (m *memoryCache) TierStats() []CacheTierStats {
	return []CacheTierStats{{
		Tier:    "memory",
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Entries: m.c.len(),
		Bytes:   m.c.bytes(),
	}}
}

// tieredCache composes a fast tier over a slow one: lookups read
// fast→slow, a slow-tier hit is write-through promoted into the fast tier,
// and stores go to both tiers. With a memory fast tier and a disk slow
// tier this is the warm-restart path: a fresh process misses memory,
// hits disk, and repopulates memory as it serves.
type tieredCache struct {
	fast, slow CacheBackend
}

// NewTieredCache composes fast over slow. Either side may be nil, in which
// case the other is returned unwrapped (both nil yields nil).
func NewTieredCache(fast, slow CacheBackend) CacheBackend {
	if fast == nil {
		return slow
	}
	if slow == nil {
		return fast
	}
	return &tieredCache{fast: fast, slow: slow}
}

func (t *tieredCache) Get(key string) (*Result, bool) {
	if res, ok := t.fast.Get(key); ok {
		return res, true
	}
	res, ok := t.slow.Get(key)
	if ok {
		// Promote: the next lookup of a warm key must not pay the slow
		// tier's decode again.
		t.fast.Put(key, res)
	}
	return res, ok
}

func (t *tieredCache) Put(key string, res *Result) {
	t.fast.Put(key, res)
	t.slow.Put(key, res)
}

// GetCtx and PutCtx thread the caller's context through to whichever tiers
// can use it (the fleet tier traces and cancels its remote hop; local
// tiers take the plain path).
func (t *tieredCache) GetCtx(ctx context.Context, key string) (*Result, bool) {
	if res, ok := cacheGet(ctx, t.fast, key); ok {
		return res, true
	}
	res, ok := cacheGet(ctx, t.slow, key)
	if ok {
		t.fast.Put(key, res)
	}
	return res, ok
}

func (t *tieredCache) PutCtx(ctx context.Context, key string, res *Result) {
	cachePut(ctx, t.fast, key, res)
	cachePut(ctx, t.slow, key, res)
}

func (t *tieredCache) Len() int { return t.fast.Len() + t.slow.Len() }

func (t *tieredCache) Close() error {
	return errors.Join(t.fast.Close(), t.slow.Close())
}

func (t *tieredCache) TierStats() []CacheTierStats {
	var out []CacheTierStats
	for _, b := range []CacheBackend{t.fast, t.slow} {
		if ts, ok := b.(TierStatser); ok {
			out = append(out, ts.TierStats()...)
		}
	}
	return out
}
