package engine

import (
	"context"

	"kiter/internal/csdf"
)

// DispatchJob describes one prepared submission offered to a Dispatcher
// before it reaches the local worker pool. It carries everything a remote
// replica needs to reproduce the submission exactly — the original
// (pre-capacity-rewrite) graph plus the normalized request knobs — so that
// the remote side derives the same cache key and the deduplication spans
// processes.
type DispatchJob struct {
	// Graph is the caller's graph as submitted, before any capacity
	// rewrite: forwarding the original (rather than the prepared, bounded
	// graph) lets the receiving engine run the same preparation and land on
	// the same cache key as a direct submission would.
	Graph *csdf.Graph
	// Analyses is the normalized (deduplicated, sorted) analysis list.
	Analyses []AnalysisKind
	// Method is the resolved throughput method (never empty).
	Method Method
	// ApplyCapacities and NoCache mirror the Request flags.
	ApplyCapacities bool
	NoCache         bool
	// Fingerprint is the structural hash of the graph as analyzed (after
	// the capacity rewrite, when requested) — the routing key every replica
	// computes identically, so a consistent-hash ring places the job on the
	// same owner no matter which replica received it.
	Fingerprint string
}

// Dispatcher is the work-routing seam: when configured, the engine offers
// every leader job (one per deduplicated cache key) to the Dispatcher
// before enqueueing it on the local worker pool. internal/cluster
// implements it to forward non-local jobs to their ring owner; the nil
// Dispatcher is the local engine of today.
//
// Dispatch returns handled=false to decline the job — the engine then runs
// it locally, which doubles as the transparent fallback when a remote owner
// is down. handled=true means the Dispatcher resolved the job: res is the
// remote result (cached and published to every waiter) or err is the
// failure the waiters see. ctx is derived from the job's flight context;
// it is cancelled when every submitter abandons the job or the engine
// closes, so a forward in progress for a result nobody wants anymore
// aborts instead of completing (or stalling shutdown).
//
// The engine does not take ownership of the Dispatcher: callers that wire
// one in (cmd/kiterd) close it themselves after Engine.Close.
type Dispatcher interface {
	Dispatch(ctx context.Context, job *DispatchJob) (res *Result, handled bool, err error)
}

// PeerStats is one cluster peer's dispatch telemetry as surfaced on
// Stats.Cluster and /stats.
type PeerStats struct {
	// Peer is the peer's advertised address.
	Peer string `json:"peer"`
	// Healthy reports the local health view: unhealthy peers are skipped by
	// ring placement until a probe succeeds again.
	Healthy bool `json:"healthy"`
	// Forwarded counts jobs this replica sent to the peer and got a result
	// back for; FailedOver counts forward attempts that fell back to local
	// evaluation (peer down, slow, or answering garbage).
	Forwarded  uint64 `json:"forwarded"`
	FailedOver uint64 `json:"failedOver"`
	// Served counts jobs this replica evaluated on the peer's behalf (the
	// mirror image of the peer's Forwarded, counted on the receiving side).
	Served uint64 `json:"served"`
	// Probes counts health probes sent to the peer.
	Probes uint64 `json:"probes"`
	// Retried counts forwards that got a second, jittered-backoff attempt
	// after the first failed (whatever the retry's outcome).
	Retried uint64 `json:"retried"`
	// BreakerState is the peer's circuit-breaker position ("closed",
	// "half-open" or "open" — open peers are out of the ring);
	// BreakerOpens counts how many times the breaker has tripped.
	BreakerState string `json:"breakerState,omitempty"`
	BreakerOpens uint64 `json:"breakerOpens"`
}

// DispatchStatser is the optional telemetry interface a Dispatcher may
// implement; the engine surfaces its report on Stats.Cluster.
type DispatchStatser interface {
	DispatchStats() []PeerStats
}

// launch routes a leader's job: a configured Dispatcher gets first claim
// (djob is nil when there is none, or when the request pinned itself local
// with NoForward); unhandled jobs go to the local worker pool. Remote
// results are cached under the same key a local evaluation would use, so
// repeats are answered locally.
func (e *Engine) launch(j *job, djob *DispatchJob) {
	if djob != nil {
		// The dispatch context dies with the last waiter (flight refcount)
		// or with the engine itself, so Close never has to wait out a
		// remote forward's timeout. It derives from evalCtx so the job's
		// trace span (if any) reaches the cluster's forward hop.
		dctx, cancel := context.WithCancel(j.evalCtx())
		stop := context.AfterFunc(e.shutdownCtx, cancel)
		res, handled, err := e.cfg.Dispatcher.Dispatch(dctx, djob)
		stop()
		cancel()
		if handled {
			switch {
			case err == nil:
				e.stats.remote.Add(1)
				if !j.req.NoCache && e.cache != nil {
					e.cache.Put(j.req.cacheKeyHint, res)
				}
			case contextual(err) && e.shutdownCtx.Err() != nil && j.call.jobCtx.Err() == nil:
				// Aborted by engine shutdown, not by departing waiters:
				// report it like any other job caught in Close.
				err = ErrClosed
			case contextual(err):
				e.stats.cancelled.Add(1)
			default:
				e.stats.errors.Add(1)
			}
			e.finishJob(j, res, err)
			return
		}
	}
	e.enqueue(j)
}
