package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
)

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(e.Close)
	return e
}

func figure2Result(t *testing.T) string {
	t.Helper()
	res, err := kperiodic.KIter(gen.Figure2(), kperiodic.Options{})
	if err != nil {
		t.Fatalf("reference KIter: %v", err)
	}
	return res.Period.String()
}

func TestSubmitThroughputRace(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Throughput == nil || res.Throughput.Error != "" {
		t.Fatalf("no throughput section: %+v", res)
	}
	if !res.Throughput.Optimal {
		t.Fatal("race result not certified optimal")
	}
	if want := figure2Result(t); res.Throughput.Period != want {
		t.Fatalf("period = %s, want %s", res.Throughput.Period, want)
	}
	if res.CacheHit || res.Deduped {
		t.Fatalf("first submission flagged cacheHit=%v deduped=%v", res.CacheHit, res.Deduped)
	}
}

func TestSubmitAllMethodsAgree(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	want := figure2Result(t)
	for _, m := range []Method{MethodKIter, MethodExpansion, MethodSymbolic} {
		res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Throughput.Period != want {
			t.Fatalf("%s: period = %s, want %s", m, res.Throughput.Period, want)
		}
		if !res.Throughput.Optimal {
			t.Fatalf("%s: not optimal", m)
		}
	}
}

func TestSubmitCacheHit(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	first, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	if err != nil {
		t.Fatal(err)
	}
	// A renamed but structurally identical graph must hit the cache.
	clone := gen.Figure2()
	clone.Name = "renamed"
	second, err := e.Submit(context.Background(), &Request{Graph: clone})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second submission missed the cache")
	}
	if second.Graph != "renamed" {
		t.Fatalf("cached result kept stale name %q", second.Graph)
	}
	if second.Throughput.Period != first.Throughput.Period {
		t.Fatal("cache returned a different result")
	}
	s := e.Stats()
	if s.CacheHits != 1 || s.Evaluations != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 evaluation", s)
	}
	if s.HitRate <= 0 || s.HitRate > 1 {
		t.Fatalf("hit rate %v out of range", s.HitRate)
	}
}

func TestSubmitNoCache(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	for i := 0; i < 2; i++ {
		res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			t.Fatal("NoCache submission hit the cache")
		}
	}
	if s := e.Stats(); s.Evaluations != 2 {
		t.Fatalf("evaluations = %d, want 2", s.Evaluations)
	}
}

// TestSingleflightDedup proves that concurrent identical submissions
// trigger exactly one evaluation: the instrumented evalFn blocks until all
// submitters have joined, so each of them must be riding the same call.
func TestSingleflightDedup(t *testing.T) {
	const submitters = 16
	e := newTestEngine(t, Config{Workers: 4})
	var evals atomic.Int64
	joined := make(chan struct{}, submitters)
	release := make(chan struct{})
	inner := e.evalFn
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		evals.Add(1)
		<-release
		return inner(ctx, req)
	}

	var wg sync.WaitGroup
	results := make([]*Result, submitters)
	errs := make([]error, submitters)
	for i := 0; i < submitters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			joined <- struct{}{}
			results[i], errs[i] = e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
		}()
	}
	for i := 0; i < submitters; i++ {
		<-joined
	}
	// All submitters are in flight (or cache-missed and queued) now.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := evals.Load(); n != 1 {
		t.Fatalf("evaluations = %d, want exactly 1", n)
	}
	deduped := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("submitter %d: %v", i, errs[i])
		}
		if results[i].Throughput == nil {
			t.Fatalf("submitter %d: empty result", i)
		}
		if results[i].Deduped {
			deduped++
		}
	}
	if deduped != submitters-1 {
		t.Fatalf("deduped = %d, want %d", deduped, submitters-1)
	}
	if s := e.Stats(); s.Deduped != submitters-1 {
		t.Fatalf("stats.Deduped = %d, want %d", s.Deduped, submitters-1)
	}
}

// TestAbandonedJobCancelled proves the waiter-refcounted job context: when
// every submitter gives up, the in-flight evaluation's context fires.
func TestAbandonedJobCancelled(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	jobCancelled := make(chan struct{})
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		<-ctx.Done()
		close(jobCancelled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Submit(ctx, &Request{Graph: gen.Figure2()})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit returned %v, want context.Canceled", err)
	}
	select {
	case <-jobCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("job context was not cancelled after all waiters left")
	}
}

// TestRaceCancellation: cancelling the submission context aborts a
// portfolio race mid-analysis — the analyses' inner-loop cancellation
// hooks return promptly instead of running to their budgets.
func TestRaceCancellation(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 4})
	// A large-transient graph: heavy enough that no contestant finishes
	// instantly, so the cancel lands mid-race.
	g := gen.LgTransient(1, 42).Graphs[0]
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Submit(ctx, &Request{Graph: g, Method: MethodRace})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) && err != nil {
			// The race may legitimately have won before the cancel.
			t.Fatalf("Submit returned unexpected error %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled race did not return within 10s")
	}
}

func TestSubmitDeadlockGraph(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	res, err := e.Submit(context.Background(), &Request{Graph: gen.DeadlockedRing()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Throughput == nil || res.Throughput.Error == "" {
		t.Fatalf("deadlock not reported: %+v", res.Throughput)
	}
	if !res.Throughput.Optimal {
		t.Fatal("deadlock verdict should be certified")
	}
}

func TestSubmitMultipleAnalyses(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	res, err := e.Submit(context.Background(), &Request{
		Graph:    gen.Figure2(),
		Analyses: []AnalysisKind{AnalysisThroughput, AnalysisSchedule, AnalysisSymbolic, AnalysisSizing},
		Method:   MethodKIter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput == nil || res.Schedule == nil || res.Symbolic == nil || res.Sizing == nil {
		t.Fatalf("missing sections: %+v", res)
	}
	if res.Schedule.Error != "" || res.Symbolic.Error != "" || res.Sizing.Error != "" {
		t.Fatalf("section errors: %+v %+v %+v", res.Schedule, res.Symbolic, res.Sizing)
	}
	if res.Throughput.Period != res.Symbolic.Period {
		t.Fatalf("K-Iter period %s != symbolic period %s", res.Throughput.Period, res.Symbolic.Period)
	}
	if len(res.Sizing.Capacities) != gen.Figure2().NumBuffers() {
		t.Fatalf("sizing returned %d capacities for %d buffers", len(res.Sizing.Capacities), gen.Figure2().NumBuffers())
	}
}

// TestSymbolicReusedForThroughput: when one job requests both the
// symbolic analysis and a raced throughput, the exact symbolic answer is
// reused as the race verdict instead of executing the exploration twice.
func TestSymbolicReusedForThroughput(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	res, err := e.Submit(context.Background(), &Request{
		Graph:    gen.Figure2(),
		Analyses: []AnalysisKind{AnalysisThroughput, AnalysisSymbolic},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Method != MethodSymbolic || !res.Throughput.Optimal {
		t.Fatalf("throughput = %+v, want reused optimal symbolic result", res.Throughput)
	}
	if res.Throughput.Period != res.Symbolic.Period {
		t.Fatalf("sections disagree: %s vs %s", res.Throughput.Period, res.Symbolic.Period)
	}

	dead, err := e.Submit(context.Background(), &Request{
		Graph:    gen.DeadlockedRing(),
		Analyses: []AnalysisKind{AnalysisThroughput, AnalysisSymbolic},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := dead.Throughput
	if tr == nil || !tr.Optimal || tr.Throughput != "0" || tr.Error == "" {
		t.Fatalf("deadlock reuse = %+v, want certified throughput 0", tr)
	}
}

func TestSubmitValidationAndErrors(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	if _, err := e.Submit(context.Background(), nil); err == nil {
		t.Fatal("nil request accepted")
	}
	if _, err := e.Submit(context.Background(), &Request{Graph: csdf.NewGraph("empty")}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), Method: "bogus"}); err == nil {
		t.Fatal("bogus method accepted")
	}
	if _, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), Analyses: []AnalysisKind{"bogus"}}); err == nil {
		t.Fatal("bogus analysis accepted")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := New(Config{Workers: 1})
	e.Close()
	if _, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestSubmitCloseRace: submissions racing Close must either complete or
// fail with ErrClosed — never hang on a job stranded in the queue after
// the drain loop exits.
func TestSubmitCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := New(Config{Workers: 2})
		e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
			return &Result{}, nil
		}
		const submitters = 8
		var wg sync.WaitGroup
		for i := 0; i < submitters; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Distinct structures so nothing coalesces or caches.
				g := gen.HSDFRing(2+i%4, []int64{int64(1 + i)}, 1)
				_, err := e.Submit(context.Background(), &Request{Graph: g, NoCache: true})
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Submit: %v", err)
				}
			}()
		}
		e.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("a submitter hung across Close")
		}
	}
}

// TestMethodIgnoredWithoutThroughput: Method only affects the throughput
// analysis, so non-throughput requests must share one cache entry across
// methods.
func TestMethodIgnoredWithoutThroughput(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	ctx := context.Background()
	first, err := e.Submit(ctx, &Request{Graph: gen.Figure2(), Analyses: []AnalysisKind{AnalysisSymbolic}})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Submit(ctx, &Request{Graph: gen.Figure2(), Analyses: []AnalysisKind{AnalysisSymbolic}, Method: MethodKIter})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("method choice split the cache for a non-throughput request")
	}
	if first.Symbolic.Period != second.Symbolic.Period {
		t.Fatal("cache returned a different result")
	}
}

func TestOverload(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, MaxPending: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		close(started)
		<-release
		return &Result{}, nil
	}
	go e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	<-started
	// A structurally different graph cannot dedup onto the first job.
	_, err := e.Submit(context.Background(), &Request{Graph: gen.SampleRateConverter()})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded Submit: %v, want ErrOverloaded", err)
	}
	close(release)
}

// TestOverloadFailsWaiters: a rejected leader must fail the whole flight
// call, not orphan it — waiters that joined in the window between join and
// the overload check would otherwise hang forever on a never-enqueued job.
func TestOverloadFailsWaiters(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, MaxPending: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		close(started)
		<-release
		return &Result{}, nil
	}
	defer close(release)
	go e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	<-started

	const submitters = 8
	errs := make(chan error, submitters)
	for i := 0; i < submitters; i++ {
		go func() {
			_, err := e.Submit(context.Background(), &Request{Graph: gen.SampleRateConverter()})
			errs <- err
		}()
	}
	for i := 0; i < submitters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("submitter returned %v, want ErrOverloaded", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("a waiter hung on an orphaned flight call")
		}
	}
}

// TestPeriodicDeadlockDefinitive: a certified deadlock found by the
// 1-periodic contestant settles a single-method request (and a race) just
// like one found by K-Iter.
func TestPeriodicDeadlockDefinitive(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	res, err := e.Submit(context.Background(), &Request{Graph: gen.DeadlockedRing(), Method: MethodPeriodic})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	tr := res.Throughput
	if tr == nil || tr.Error == "" || !tr.Optimal || tr.Throughput != "0" {
		t.Fatalf("periodic deadlock verdict = %+v, want certified throughput 0", tr)
	}
}

// TestEvictionEndToEnd: a capacity-1 cache holds only the latest result.
func TestEvictionEndToEnd(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, CacheCapacity: 1, CacheShards: 1})
	ctx := context.Background()
	if _, err := e.Submit(ctx, &Request{Graph: gen.Figure2(), Method: MethodKIter}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(ctx, &Request{Graph: gen.SampleRateConverter(), Method: MethodKIter}); err != nil {
		t.Fatal(err)
	}
	// Figure2 was evicted by the second entry: resubmission re-evaluates.
	res, err := e.Submit(ctx, &Request{Graph: gen.Figure2(), Method: MethodKIter})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("evicted entry served as a cache hit")
	}
	if s := e.Stats(); s.Evaluations != 3 || s.CacheEntries != 1 {
		t.Fatalf("stats = %+v, want 3 evaluations and 1 entry", s)
	}
}
