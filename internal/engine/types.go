// Package engine is the concurrent analysis engine: it accepts jobs (a
// CSDF graph plus a set of requested analyses), runs them on a bounded
// worker pool, deduplicates identical in-flight submissions, memoizes
// completed results in a sharded LRU cache keyed by the graph's structural
// fingerprint, and — for throughput — supports portfolio racing: K-Iter,
// the 1-periodic method and symbolic execution start concurrently and the
// first certified-optimal result wins while the rest are cancelled.
//
// The engine is the serving layer behind cmd/kiterd (HTTP and batch) and
// the architectural seam for future scaling work: sharded cache backends,
// distributed workers and scenario sweeps all plug in behind Submit.
package engine

import (
	"sort"
	"strings"

	"kiter/internal/csdf"
)

// AnalysisKind selects one analysis of a Request.
type AnalysisKind string

const (
	// AnalysisThroughput evaluates the maximum throughput (method
	// selectable, default portfolio racing).
	AnalysisThroughput AnalysisKind = "throughput"
	// AnalysisSchedule materializes an optimal K-periodic schedule.
	AnalysisSchedule AnalysisKind = "schedule"
	// AnalysisSizing computes throughput-preserving buffer capacities.
	AnalysisSizing AnalysisKind = "sizing"
	// AnalysisSymbolic runs self-timed symbolic execution.
	AnalysisSymbolic AnalysisKind = "symbolic"
)

// knownAnalyses lists every valid kind.
var knownAnalyses = map[AnalysisKind]bool{
	AnalysisThroughput: true,
	AnalysisSchedule:   true,
	AnalysisSizing:     true,
	AnalysisSymbolic:   true,
}

// Method selects the throughput evaluation strategy.
type Method string

const (
	// MethodRace races K-Iter, the 1-periodic method and symbolic
	// execution; the first certified-optimal result wins (default).
	MethodRace Method = "race"
	// MethodKIter runs Algorithm 1 alone.
	MethodKIter Method = "kiter"
	// MethodPeriodic runs the 1-periodic approximation alone (the result
	// may be a lower throughput bound, Optimal reports tightness).
	MethodPeriodic Method = "periodic"
	// MethodExpansion runs the K = q full expansion alone.
	MethodExpansion Method = "expansion"
	// MethodSymbolic runs symbolic execution alone.
	MethodSymbolic Method = "symbolic"
)

// knownMethods lists every valid method.
var knownMethods = map[Method]bool{
	MethodRace:      true,
	MethodKIter:     true,
	MethodPeriodic:  true,
	MethodExpansion: true,
	MethodSymbolic:  true,
}

// ValidAnalysis reports whether a names a known analysis — for front-ends
// that want to fail fast on configuration instead of per submission.
func ValidAnalysis(a AnalysisKind) bool { return knownAnalyses[a] }

// ValidMethod reports whether m names a known throughput method.
func ValidMethod(m Method) bool { return knownMethods[m] }

// Request is one unit of work for the engine.
type Request struct {
	// Graph is the graph to analyze. The engine treats it as immutable.
	Graph *csdf.Graph
	// Analyses lists the requested analyses (default: throughput only).
	Analyses []AnalysisKind
	// Method selects the throughput strategy (default: race). It only
	// affects the throughput analysis.
	Method Method
	// ApplyCapacities rewrites declared buffer capacities into reverse
	// buffers (back-pressure modelling) before analysis.
	ApplyCapacities bool
	// NoCache bypasses both cache lookup and cache store.
	NoCache bool
	// NoForward pins the evaluation to this process even when the engine
	// has a cluster Dispatcher. The cluster's receiving handler sets it on
	// forwarded arrivals, capping routing at a single hop (and making
	// forwarding loops impossible) even when replicas' health views
	// diverge about a key's owner.
	NoForward bool

	// cacheKeyHint and fingerprintHint are filled by Submit on the
	// prepared request handed to workers, so the hash is computed once.
	cacheKeyHint    string
	fingerprintHint string
}

// ThroughputResult is the throughput section of a Result. Periods and
// throughputs are exact rationals rendered as "num/den" strings.
type ThroughputResult struct {
	Period     string  `json:"period,omitempty"`
	Throughput string  `json:"throughput,omitempty"`
	Float      float64 `json:"throughputFloat,omitempty"`
	Optimal    bool    `json:"optimal"`
	// Method is the strategy that produced the result — under racing,
	// the winning contestant.
	Method Method `json:"method"`
	// K is the certified periodicity vector (K-Iter only).
	K []int64 `json:"k,omitempty"`
	// Iterations counts K-Iter rounds (K-Iter only).
	Iterations int    `json:"iterations,omitempty"`
	Error      string `json:"error,omitempty"`
}

// ScheduleResult is the schedule section of a Result.
type ScheduleResult struct {
	K       []int64 `json:"k,omitempty"`
	Period  string  `json:"period,omitempty"`
	Latency string  `json:"latency,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// SizingResult is the buffer-sizing section of a Result.
type SizingResult struct {
	Capacities []int64 `json:"capacities,omitempty"`
	Period     string  `json:"period,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// SymbolicResult is the symbolic-execution section of a Result.
type SymbolicResult struct {
	Period        string  `json:"period,omitempty"`
	Throughput    string  `json:"throughput,omitempty"`
	Float         float64 `json:"throughputFloat,omitempty"`
	TransientTime int64   `json:"transientTime,omitempty"`
	CycleTime     int64   `json:"cycleTime,omitempty"`
	Events        int64   `json:"events,omitempty"`
	StatesStored  int     `json:"statesStored,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Result is the outcome of a Request. Analysis-level failures (deadlock,
// budget exhaustion, infeasibility) are reported in the per-section Error
// fields and are cached like any other deterministic outcome;
// infrastructure failures (cancellation, engine shutdown, overload) are
// returned as Submit errors and never cached.
type Result struct {
	// Graph is the name of the analyzed graph (not part of the cache key).
	Graph string `json:"graph,omitempty"`
	// Fingerprint is the structural hash the result was keyed under.
	Fingerprint string `json:"fingerprint"`

	Throughput *ThroughputResult `json:"throughput,omitempty"`
	Schedule   *ScheduleResult   `json:"schedule,omitempty"`
	Sizing     *SizingResult     `json:"sizing,omitempty"`
	Symbolic   *SymbolicResult   `json:"symbolic,omitempty"`

	// CacheHit reports that the result was served from the memo cache;
	// Deduped that it was coalesced onto an identical in-flight job.
	CacheHit bool `json:"cacheHit"`
	Deduped  bool `json:"deduped"`
	// Peer is the cluster replica that evaluated the result when it was
	// forwarded there (empty for local evaluations). It sticks through the
	// local memo cache, so a later CacheHit still shows where the work ran.
	Peer string `json:"peer,omitempty"`
	// ElapsedMS is the wall-clock evaluation time of the job that
	// produced the result (zero-cost for cache hits, shared for deduped
	// submissions).
	ElapsedMS float64 `json:"elapsedMs"`

	// symDeadlock marks a Symbolic section whose Error is a certified
	// deadlock (distinguishing it from budget exhaustion), so the
	// throughput analysis can reuse it as a definitive verdict.
	symDeadlock bool
}

// shallowCopy returns a copy whose section pointers are shared. Sections
// are immutable once published, so sharing is safe; the copy exists so
// that per-submission flags (CacheHit, Deduped, Graph) never mutate the
// cached instance.
func (r *Result) shallowCopy() *Result {
	c := *r
	return &c
}

// normalize applies defaults and returns the deduplicated, sorted analysis
// list (the canonical form used in cache keys).
func (req *Request) normalize() []AnalysisKind {
	if len(req.Analyses) == 0 {
		return []AnalysisKind{AnalysisThroughput}
	}
	seen := map[AnalysisKind]bool{}
	var out []AnalysisKind
	for _, a := range req.Analyses {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cacheKey derives the memoization key: structural fingerprint plus every
// request knob that changes the outcome. Graph and task names are excluded
// (analyses are name-blind), as are per-submission flags.
func cacheKey(fingerprint string, analyses []AnalysisKind, m Method, capacities bool) string {
	var sb strings.Builder
	sb.WriteString(fingerprint)
	sb.WriteByte('|')
	sb.WriteString(string(m))
	if capacities {
		sb.WriteString("|cap")
	}
	for _, a := range analyses {
		sb.WriteByte('|')
		sb.WriteString(string(a))
	}
	return sb.String()
}
