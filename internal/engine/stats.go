package engine

import "sync/atomic"

// raceBuckets are the graph-size categories race winners are recorded
// under, by task count. The portfolio's sweet spot shifts with size —
// symbolic execution tends to win small graphs, K-Iter large ones — and
// these per-category counters are the data a learned dispatch policy
// (skip contestants that never win in a category) will be trained on.
var raceBuckets = [...]struct {
	name string
	max  int // inclusive upper bound on task count
}{
	{"tiny", 4},
	{"small", 16},
	{"medium", 64},
	{"large", int(^uint(0) >> 1)},
}

// raceBucket maps a task count onto its raceBuckets index.
func raceBucket(tasks int) int {
	for i, b := range raceBuckets {
		if tasks <= b.max {
			return i
		}
	}
	return len(raceBuckets) - 1
}

// raceMethods indexes the race contestants in winsByCat.
var raceMethods = [...]Method{MethodKIter, MethodPeriodic, MethodSymbolic}

// counters holds the engine's hot-path telemetry. Everything is atomic:
// the serving path never takes a lock to account.
type counters struct {
	submitted     atomic.Uint64
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	deduped       atomic.Uint64
	evaluations   atomic.Uint64
	remote        atomic.Uint64
	claimsGranted atomic.Uint64
	claimsServed  atomic.Uint64
	errors        atomic.Uint64
	cancelled     atomic.Uint64
	rejected      atomic.Uint64
	panics        atomic.Uint64
	latencyNanos  atomic.Int64
	latencyCount  atomic.Uint64

	winsKIter    atomic.Uint64
	winsPeriodic atomic.Uint64
	winsSymbolic atomic.Uint64
	// winsByCat refines the race-win counters by graph-size bucket:
	// [raceBucket][raceMethods index].
	winsByCat [len(raceBuckets)][len(raceMethods)]atomic.Uint64

	raceBorrowed atomic.Uint64
	raceStarved  atomic.Uint64
}

// raceWin records a portfolio-race victory for m on a graph of the given
// task count.
func (c *counters) raceWin(m Method, tasks int) {
	bucket := raceBucket(tasks)
	switch m {
	case MethodKIter:
		c.winsKIter.Add(1)
		c.winsByCat[bucket][0].Add(1)
	case MethodPeriodic:
		c.winsPeriodic.Add(1)
		c.winsByCat[bucket][1].Add(1)
	case MethodSymbolic:
		c.winsSymbolic.Add(1)
		c.winsByCat[bucket][2].Add(1)
	}
}

// Stats is a point-in-time snapshot of the engine's telemetry.
type Stats struct {
	// Submitted counts Submit calls; CacheHits the ones answered from the
	// memo cache; Deduped the ones coalesced onto an in-flight job.
	Submitted   uint64 `json:"submitted"`
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	Deduped     uint64 `json:"deduped"`
	// Evaluations counts jobs actually computed by workers on this
	// replica; RemoteResults the jobs answered by a cluster peer through
	// the Dispatcher instead.
	Evaluations   uint64 `json:"evaluations"`
	RemoteResults uint64 `json:"remoteResults"`
	// ClaimsGranted counts jobs this replica evaluated under an exclusive
	// cross-process claim; ClaimsServed the jobs resolved by another
	// process's published result during the claim handshake (those also
	// count under RemoteResults, never under Evaluations).
	ClaimsGranted uint64 `json:"claimsGranted,omitempty"`
	ClaimsServed  uint64 `json:"claimsServed,omitempty"`
	// Errors counts failed evaluations, Cancelled abandoned ones and
	// Rejected submissions refused under overload.
	Errors    uint64 `json:"errors"`
	Cancelled uint64 `json:"cancelled"`
	Rejected  uint64 `json:"rejected"`
	// Panics counts solver panics recovered by the isolation layer (worker
	// evaluations and race contestants); each one failed a job with a
	// PanicError instead of crashing the process. Panicking evaluations
	// also count under Errors.
	Panics uint64 `json:"panics"`
	// HitRate is CacheHits / (CacheHits + CacheMisses), in [0, 1].
	HitRate float64 `json:"hitRate"`
	// MeanLatencyMS is the mean wall-clock evaluation time over
	// LatencySamples successful evaluations. Cancelled and failed jobs are
	// excluded — a fast-aborting cancellation would otherwise drag the
	// mean below what completed work actually costs — so Evaluations
	// exceeds LatencySamples by the jobs in flight plus the
	// cancelled/errored ones.
	MeanLatencyMS  float64 `json:"meanLatencyMs"`
	LatencySamples uint64  `json:"latencySamples"`
	// CacheEntries is the current number of memoized results, summed over
	// tiers for tiered backends (a promoted entry counts in each tier
	// holding it).
	CacheEntries int `json:"cacheEntries"`
	// CacheTiers carries per-tier hit/miss/size telemetry when the cache
	// backend reports it (always for the default memory cache and the
	// tiered memory→disk composition); nil otherwise.
	CacheTiers []CacheTierStats `json:"cacheTiers,omitempty"`
	// Workers and Pending describe the pool: configured worker count and
	// jobs submitted but not yet finished; MaxPending is the
	// load-shedding threshold (0 = unbounded).
	Workers    int `json:"workers"`
	Pending    int `json:"pending"`
	MaxPending int `json:"maxPending"`
	// RaceWins counts portfolio-race victories per contestant;
	// RaceWinsByCategory refines them by graph-size bucket (task count:
	// tiny ≤ 4, small ≤ 16, medium ≤ 64, large beyond), keyed
	// bucket → method. Only buckets with at least one win appear.
	RaceWins           map[string]uint64            `json:"raceWins"`
	RaceWinsByCategory map[string]map[string]uint64 `json:"raceWinsByCategory,omitempty"`
	// RaceExtraSlots counts the evaluation slots races borrowed for extra
	// concurrent contestants; RaceStarved the races that found fewer free
	// slots than contestants and narrowed their fan-out (see
	// Config.Workers for the slot-weighted accounting).
	RaceExtraSlots uint64 `json:"raceExtraSlots"`
	RaceStarved    uint64 `json:"raceStarved"`
	// Cluster carries per-peer forward/serve/failover telemetry when the
	// engine dispatches through a cluster (nil on a standalone replica).
	Cluster []PeerStats `json:"cluster,omitempty"`
}

// sub subtracts windowed counters with an underflow clamp. Snapshots are
// not atomic across fields: Stats loads each counter separately, so two
// snapshots racing concurrent traffic (a /metrics scrape during a sweep, a
// prev taken by another goroutine) can observe individual counters in an
// order where a-b would wrap to ~2^64. A clamped zero is an honest "no
// movement visible in this window"; a wrapped counter is garbage that
// breaks every downstream rate computation.
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Delta returns the counter movement from prev to s — the per-run view a
// sweep or batch reports in its closing summary. Monotonic counters are
// subtracted (clamped at zero, see sub); HitRate and MeanLatencyMS are
// recomputed over the window; point-in-time gauges (CacheEntries, Workers,
// Pending, MaxPending) keep s's values. prev must be an earlier snapshot
// of the same engine.
func (s Stats) Delta(prev Stats) Stats {
	d := Stats{
		Submitted:      sub(s.Submitted, prev.Submitted),
		CacheHits:      sub(s.CacheHits, prev.CacheHits),
		CacheMisses:    sub(s.CacheMisses, prev.CacheMisses),
		Deduped:        sub(s.Deduped, prev.Deduped),
		Evaluations:    sub(s.Evaluations, prev.Evaluations),
		RemoteResults:  sub(s.RemoteResults, prev.RemoteResults),
		ClaimsGranted:  sub(s.ClaimsGranted, prev.ClaimsGranted),
		ClaimsServed:   sub(s.ClaimsServed, prev.ClaimsServed),
		Errors:         sub(s.Errors, prev.Errors),
		Cancelled:      sub(s.Cancelled, prev.Cancelled),
		Rejected:       sub(s.Rejected, prev.Rejected),
		Panics:         sub(s.Panics, prev.Panics),
		RaceExtraSlots: sub(s.RaceExtraSlots, prev.RaceExtraSlots),
		RaceStarved:    sub(s.RaceStarved, prev.RaceStarved),
		CacheEntries:   s.CacheEntries,
		Workers:        s.Workers,
		Pending:        s.Pending,
		MaxPending:     s.MaxPending,
		RaceWins:       make(map[string]uint64, len(s.RaceWins)),
	}
	for k, v := range s.RaceWins {
		d.RaceWins[k] = sub(v, prev.RaceWins[k])
	}
	// Category wins subtract per bucket/method; a bucket absent from prev
	// deltas from zero, and buckets that did not move are dropped.
	for bucket, wins := range s.RaceWinsByCategory {
		var db map[string]uint64
		for m, v := range wins {
			if dv := sub(v, prev.RaceWinsByCategory[bucket][m]); dv > 0 {
				if db == nil {
					db = make(map[string]uint64)
				}
				db[m] = dv
			}
		}
		if db != nil {
			if d.RaceWinsByCategory == nil {
				d.RaceWinsByCategory = make(map[string]map[string]uint64)
			}
			d.RaceWinsByCategory[bucket] = db
		}
	}
	// Per-peer counters subtract like the top-level ones (peers matched by
	// address, absent-from-prev deltas from zero); Healthy is a gauge and
	// keeps s's view.
	if len(s.Cluster) > 0 {
		prevPeer := make(map[string]PeerStats, len(prev.Cluster))
		for _, p := range prev.Cluster {
			prevPeer[p.Peer] = p
		}
		d.Cluster = make([]PeerStats, 0, len(s.Cluster))
		for _, p := range s.Cluster {
			q := prevPeer[p.Peer]
			p.Forwarded = sub(p.Forwarded, q.Forwarded)
			p.FailedOver = sub(p.FailedOver, q.FailedOver)
			p.Served = sub(p.Served, q.Served)
			p.Probes = sub(p.Probes, q.Probes)
			p.Retried = sub(p.Retried, q.Retried)
			p.BreakerOpens = sub(p.BreakerOpens, q.BreakerOpens)
			d.Cluster = append(d.Cluster, p)
		}
	}
	// Per-tier counters subtract like the top-level ones; Entries/Bytes
	// are gauges and keep s's values. Tiers are matched by name, so a
	// tier absent from prev (e.g. stats enabled mid-run) deltas from zero.
	if len(s.CacheTiers) > 0 {
		prevTier := make(map[string]CacheTierStats, len(prev.CacheTiers))
		for _, t := range prev.CacheTiers {
			prevTier[t.Tier] = t
		}
		d.CacheTiers = make([]CacheTierStats, 0, len(s.CacheTiers))
		for _, t := range s.CacheTiers {
			p := prevTier[t.Tier]
			t.Hits = sub(t.Hits, p.Hits)
			t.Misses = sub(t.Misses, p.Misses)
			d.CacheTiers = append(d.CacheTiers, t)
		}
	}
	if lookups := d.CacheHits + d.CacheMisses; lookups > 0 {
		d.HitRate = float64(d.CacheHits) / float64(lookups)
	}
	// Mean latency over the window, reconstructed from the cumulative
	// means over *finished* evaluations (LatencySamples, not Evaluations —
	// the latter counts in-flight jobs whose latency is not yet recorded).
	d.LatencySamples = sub(s.LatencySamples, prev.LatencySamples)
	if d.LatencySamples > 0 {
		d.MeanLatencyMS = (s.MeanLatencyMS*float64(s.LatencySamples) -
			prev.MeanLatencyMS*float64(prev.LatencySamples)) / float64(d.LatencySamples)
		if d.MeanLatencyMS < 0 { // float cancellation on near-equal sums
			d.MeanLatencyMS = 0
		}
	}
	return d
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	hits := e.stats.cacheHits.Load()
	misses := e.stats.cacheMisses.Load()
	entries := 0
	if e.cache != nil {
		entries = e.cache.Len()
	}
	s := Stats{
		Submitted:      e.stats.submitted.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		Deduped:        e.stats.deduped.Load(),
		Evaluations:    e.stats.evaluations.Load(),
		RemoteResults:  e.stats.remote.Load(),
		ClaimsGranted:  e.stats.claimsGranted.Load(),
		ClaimsServed:   e.stats.claimsServed.Load(),
		Errors:         e.stats.errors.Load(),
		Cancelled:      e.stats.cancelled.Load(),
		Rejected:       e.stats.rejected.Load(),
		Panics:         e.stats.panics.Load(),
		RaceExtraSlots: e.stats.raceBorrowed.Load(),
		RaceStarved:    e.stats.raceStarved.Load(),
		CacheEntries:   entries,
		Workers:        e.cfg.Workers,
		Pending:        int(e.pending.Load()),
		MaxPending:     max(e.cfg.MaxPending, 0),
		RaceWins: map[string]uint64{
			string(MethodKIter):    e.stats.winsKIter.Load(),
			string(MethodPeriodic): e.stats.winsPeriodic.Load(),
			string(MethodSymbolic): e.stats.winsSymbolic.Load(),
		},
	}
	for bi := range raceBuckets {
		var bucket map[string]uint64
		for mi, m := range raceMethods {
			if v := e.stats.winsByCat[bi][mi].Load(); v > 0 {
				if bucket == nil {
					bucket = make(map[string]uint64)
				}
				bucket[string(m)] = v
			}
		}
		if bucket != nil {
			if s.RaceWinsByCategory == nil {
				s.RaceWinsByCategory = make(map[string]map[string]uint64)
			}
			s.RaceWinsByCategory[raceBuckets[bi].name] = bucket
		}
	}
	if hits+misses > 0 {
		s.HitRate = float64(hits) / float64(hits+misses)
	}
	if ts, ok := e.cache.(TierStatser); ok {
		s.CacheTiers = ts.TierStats()
	}
	if ds, ok := e.cfg.Dispatcher.(DispatchStatser); ok {
		s.Cluster = ds.DispatchStats()
	}
	// latencyNanos is loaded before latencyCount: runJob adds nanos first,
	// so in this order the count can only include samples whose nanos are
	// already visible — the quotient under-reports slightly under
	// concurrent traffic rather than averaging phantom time. (The loads
	// are still two separate atomics; a snapshot is consistent-enough, not
	// transactional, which is why Delta clamps.)
	nanos := e.stats.latencyNanos.Load()
	if n := e.stats.latencyCount.Load(); n > 0 {
		s.LatencySamples = n
		s.MeanLatencyMS = float64(nanos) / float64(n) / 1e6
	}
	return s
}
