package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kiter/internal/faultinject"
	"kiter/internal/gen"
)

// TestWorkerPanicIsolated: a panicking evaluation fails its own job with a
// PanicError — stack attached, Stats.Panics bumped — while the worker pool
// keeps serving subsequent jobs.
func TestWorkerPanicIsolated(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		panic("solver exploded")
	}
	_, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), NoCache: true})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Submit error = %v, want PanicError", err)
	}
	if pe.Where != "evaluate" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError incomplete: where=%q stackLen=%d", pe.Where, len(pe.Stack))
	}
	s := e.Stats()
	if s.Panics != 1 || s.Errors != 1 {
		t.Fatalf("stats after panic: panics=%d errors=%d, want 1/1", s.Panics, s.Errors)
	}

	// The single worker survived: a healthy evaluation still completes.
	e.evalFn = e.evaluate
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	if err != nil || res.Throughput == nil || !res.Throughput.Optimal {
		t.Fatalf("engine dead after panic: %v, %+v", err, res)
	}
}

// TestRaceContestantPanicLosesRace: an injected panic in one race
// contestant is recovered on that contestant's goroutine; the others race
// on and the job still returns the certified-optimal result.
func TestRaceContestantPanicLosesRace(t *testing.T) {
	// The healthy contestants are held back 50ms so the symbolic one is
	// guaranteed to be scheduled — and panic — before the race settles;
	// without the delay a loaded machine can settle the race before the
	// symbolic goroutine even starts, and it exits unrun.
	set, err := faultinject.Parse(
		"solver.symbolic:panic,solver.kiter:latency:50ms,solver.periodic:latency:50ms")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(set)
	defer faultinject.Activate(nil)

	// 3 workers so the race's gate admits every contestant: the symbolic
	// one must actually run (and panic) rather than be cancelled unstarted.
	e := newTestEngine(t, Config{Workers: 3})
	want := figure2Result(t)
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Throughput == nil || !res.Throughput.Optimal || res.Throughput.Period != want {
		t.Fatalf("race with panicking contestant: %+v", res.Throughput)
	}
	// Losing contestants finish asynchronously after the winner settles the
	// race, so the panic counter may lag the Submit return by a beat.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Panics == 0 {
		if time.Now().After(deadline) {
			t.Fatal("contestant panic not counted")
		}
		time.Sleep(time.Millisecond)
	}
	if faultinject.Fired("solver.symbolic") == 0 {
		t.Fatal("failpoint never fired")
	}
}

// TestAllContestantsPanicFailsJobOnly: when every contestant panics, the
// throughput section carries the recovered-panic error (deterministic,
// like any analysis failure) and the engine (and process) survive.
func TestAllContestantsPanicFailsJobOnly(t *testing.T) {
	set, err := faultinject.Parse("solver.kiter:panic,solver.periodic:panic,solver.symbolic:panic")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(set)
	defer faultinject.Activate(nil)

	e := newTestEngine(t, Config{Workers: 2})
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), NoCache: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Throughput == nil || !strings.Contains(res.Throughput.Error, "recovered panic") {
		t.Fatalf("throughput section = %+v, want recovered-panic error", res.Throughput)
	}
	if s := e.Stats(); s.Panics != 3 {
		t.Fatalf("panics = %d, want 3 (one per contestant)", s.Panics)
	}
	faultinject.Activate(nil)
	res, err = e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	if err != nil || res.Throughput == nil || !res.Throughput.Optimal {
		t.Fatalf("engine dead after triple panic: %v, %+v", err, res)
	}
}

// TestSolverEntryErrorInjection: the job-level failpoint fails the whole
// evaluation with the injected error.
func TestSolverEntryErrorInjection(t *testing.T) {
	set, err := faultinject.Parse("solver.entry:error::1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(set)
	defer faultinject.Activate(nil)

	e := newTestEngine(t, Config{Workers: 1})
	if _, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), NoCache: true}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Submit error = %v, want ErrInjected", err)
	}
	// The clause burned out; the next submission is clean.
	if _, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()}); err != nil {
		t.Fatalf("post-budget submission failed: %v", err)
	}
}

// TestCloseRacesSubmitFamily: Close during an in-flight family must
// neither deadlock nor drop callbacks — every member that started gets
// exactly one done invocation (result or ErrClosed), Close returns, and
// SubmitFamily returns. This is the drain path a SIGTERM exercises.
func TestCloseRacesSubmitFamily(t *testing.T) {
	e := New(Config{Workers: 2})
	var started, finished atomic.Int64
	release := make(chan struct{})
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		started.Add(1)
		select {
		case <-release:
		case <-time.After(5 * time.Second):
		}
		return &Result{Fingerprint: req.fingerprintHint}, nil
	}

	const n = 24
	var calls [n]atomic.Int64
	famErr := make(chan error, 1)
	go func() {
		famErr <- e.SubmitFamily(context.Background(), n, FamilyConfig{Width: 4},
			func(i int) (*Request, error) {
				// Distinct durations → distinct fingerprints, so members do
				// not coalesce on the singleflight.
				return &Request{Graph: gen.HSDFRing(2, []int64{int64(i + 1)}, 1), NoCache: true}, nil
			},
			func(r FamilyResult) {
				finished.Add(1)
				calls[r.Index].Add(1)
				if r.Err != nil && !errors.Is(r.Err, ErrClosed) && !errors.Is(r.Err, ErrOverloaded) {
					t.Errorf("member %d: unexpected error %v", r.Index, r.Err)
				}
			})
	}()

	// Let some members get onto workers, then close mid-family while
	// evaluations are blocked — the race this test exists for.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		e.Close()
		close(closed)
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)

	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked against SubmitFamily")
	}
	select {
	case err := <-famErr:
		if err != nil {
			t.Fatalf("SubmitFamily returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SubmitFamily never returned")
	}
	// Exactly one callback per member: the family ran to completion (its
	// context was never cancelled), so every member started and resolved —
	// as a result or as ErrClosed — never twice, never zero times.
	for i := range calls {
		if got := calls[i].Load(); got != 1 {
			t.Fatalf("member %d got %d done callbacks, want 1 (total %d)", i, got, finished.Load())
		}
	}
}

// TestPanicErrorMessage pins the error surface: it names the site and the
// panic value so operators can grep trace logs for it.
func TestPanicErrorMessage(t *testing.T) {
	pe := &PanicError{Where: "solve.kiter", Value: fmt.Errorf("boom")}
	if got := pe.Error(); got != "engine: recovered panic in solve.kiter: boom" {
		t.Fatalf("Error() = %q", got)
	}
}
