package engine

import (
	"container/list"
	"sync"
)

// resultCache is a sharded LRU cache from cache keys to Results. Sharding
// keeps lock contention bounded under concurrent serving: each key maps to
// one shard (FNV-1a over the key), and every shard runs its own mutex and
// its own LRU list. Keys are fingerprint-based, i.e. already uniformly
// distributed.
type resultCache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	bytes    int64      // estimated footprint of the shard's entries
	order    *list.List // front = most recently used
	items    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	res  *Result
	size int64 // estimateResultBytes at insert, so eviction can subtract it
}

// estimateResultBytes approximates one cache entry's heap footprint: the
// key, the Result struct and every string/slice it references, plus fixed
// overhead for the map bucket and LRU list element. An estimate taken once
// at insert is deliberate — Results are immutable after publication, and
// capacity planning needs tier totals that are honest to within a few
// percent, not a precise allocator census.
func estimateResultBytes(key string, res *Result) int64 {
	const (
		entryOverhead = 160 // cacheEntry + list.Element + map bucket share
		ptrSection    = 16  // pointer + allocation header per section
	)
	n := int64(entryOverhead + len(key))
	n += int64(len(res.Graph) + len(res.Fingerprint) + len(res.Peer))
	if t := res.Throughput; t != nil {
		n += ptrSection + int64(len(t.Period)+len(t.Throughput)+len(t.Method)+len(t.Error))
		n += int64(8 * len(t.K))
	}
	if s := res.Schedule; s != nil {
		n += ptrSection + int64(len(s.Period)+len(s.Latency)+len(s.Error))
		n += int64(8 * len(s.K))
	}
	if s := res.Sizing; s != nil {
		n += ptrSection + int64(len(s.Period)+len(s.Error))
		n += int64(8 * len(s.Capacities))
	}
	if s := res.Symbolic; s != nil {
		n += ptrSection + int64(len(s.Period)+len(s.Throughput)+len(s.Error))
	}
	return n
}

// newResultCache builds a cache with the given shard count and total
// capacity. Shard capacities sum exactly to the configured total: each
// shard gets capacity/shards entries and the remainder is spread one entry
// each over the first shards (rounding up per shard instead would inflate
// small caps by up to shards-1 entries). A non-positive capacity yields a
// nil cache, on which every operation is a no-op miss.
func newResultCache(shards, capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	base, rem := capacity/shards, capacity%shards
	c := &resultCache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		perShard := base
		if i < rem {
			perShard++
		}
		c.shards[i] = cacheShard{
			capacity: perShard,
			order:    list.New(),
			items:    make(map[string]*list.Element, perShard),
		}
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	// Inline FNV-1a: the hash/fnv API would allocate a hasher and a key
	// copy on every get/put of the serving hot path.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

// get returns the cached result for key, promoting it to most recently
// used. The returned Result is the shared cached instance — callers must
// shallowCopy before setting per-submission fields.
func (c *resultCache) get(key string) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes key, evicting the shard's least recently used
// entry on overflow.
func (c *resultCache) put(key string, res *Result) {
	if c == nil {
		return
	}
	size := estimateResultBytes(key, res)
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		s.bytes += size - ent.size
		ent.res, ent.size = res, size
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&cacheEntry{key: key, res: res, size: size})
	s.bytes += size
	if s.order.Len() > s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		ent := oldest.Value.(*cacheEntry)
		s.bytes -= ent.size
		delete(s.items, ent.key)
	}
}

// len returns the total number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// bytes returns the cache's estimated footprint (see estimateResultBytes).
func (c *resultCache) bytes() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}
