package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"kiter/internal/kperiodic"
	"kiter/internal/symbexec"
)

// Config tunes an Engine.
type Config struct {
	// Workers is the evaluation pool size (default: GOMAXPROCS). Note
	// that a MethodRace job fans out into up to three concurrent
	// contestant analyses while it holds its single worker slot, so peak
	// compute under racing is up to 3·Workers — size Workers (or choose a
	// single-method default) accordingly on memory-constrained hosts.
	Workers int
	// QueueDepth is the buffered job queue length (default: 2·Workers).
	QueueDepth int
	// CacheCapacity is the total memo-cache size in entries (default
	// 4096; negative disables caching). Ignored when CacheBackend is set.
	CacheCapacity int
	// CacheShards splits the cache to bound lock contention (default 16).
	// Ignored when CacheBackend is set.
	CacheShards int
	// CacheBackend overrides the memo cache entirely (nil keeps the
	// default in-process sharded LRU built from CacheCapacity and
	// CacheShards). The engine takes ownership: Engine.Close closes the
	// backend. Compose tiers with NewTieredCache — e.g. memory over an
	// internal/cachedisk store — to share results across restarts.
	CacheBackend CacheBackend
	// MaxPending bounds jobs submitted but not yet finished; beyond it
	// Submit fails fast with ErrOverloaded (default 16·(Workers+1),
	// negative disables the bound).
	MaxPending int
	// Options are the guard rails passed to every K-periodic evaluation.
	Options kperiodic.Options
	// Symbolic are the budgets passed to every symbolic execution.
	Symbolic symbexec.Options
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 4096
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 16 * (cfg.Workers + 1)
	}
	return cfg
}

// Engine is the concurrent analysis engine. Create one with New, feed it
// with Submit from any number of goroutines, and Close it when done.
type Engine struct {
	cfg    Config
	jobs   chan *job
	cache  CacheBackend // nil when caching is disabled
	flight *flightGroup
	stats  counters

	pending atomic.Int64
	closed  chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	// evalFn computes a job's result; replaced in tests to observe
	// scheduling behaviour without paying for real analyses.
	evalFn func(ctx context.Context, req *Request) (*Result, error)
}

// job couples a request with the flight call its waiters share.
type job struct {
	req  *Request
	call *flightCall
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// ErrOverloaded is returned by Submit when MaxPending jobs are in flight;
// callers should shed load (HTTP 503) or retry with backoff.
var ErrOverloaded = errors.New("engine: too many pending jobs")

// New starts an engine with cfg's worker pool.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	cache := cfg.CacheBackend
	if cache == nil {
		cache = NewMemoryCache(cfg.CacheShards, cfg.CacheCapacity)
	}
	e := &Engine{
		cfg:    cfg,
		jobs:   make(chan *job, cfg.QueueDepth),
		cache:  cache,
		flight: newFlightGroup(),
		closed: make(chan struct{}),
	}
	e.evalFn = e.evaluate
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Close stops the pool: jobs already running on a worker complete
// normally (their contexts are not cancelled, so their waiters still get
// results), queued jobs that no worker picked up fail with ErrClosed, and
// Close returns once every job has been resolved one way or the other and
// the cache backend is closed. It is safe to call once; Submit calls
// racing with Close may either complete or report ErrClosed (backends
// treat post-Close Get/Put as no-op misses, so such stragglers are safe).
func (e *Engine) Close() {
	e.once.Do(func() { close(e.closed) })
	e.wg.Wait()
	// Fail whatever is still queued; enqueue goroutines observe closed
	// themselves, so pending drains to zero.
	for {
		select {
		case j := <-e.jobs:
			e.finishJob(j, nil, ErrClosed)
		default:
			if e.pending.Load() == 0 {
				if e.cache != nil {
					_ = e.cache.Close()
				}
				return
			}
			runtime.Gosched()
		}
	}
}

// Submit analyzes req.Graph, deduplicating against identical in-flight
// submissions and memoizing completed results. It blocks until the result
// is available, ctx is done, or the engine is closed/overloaded. The
// returned Result must be treated as immutable.
func (e *Engine) Submit(ctx context.Context, req *Request) (*Result, error) {
	e.stats.submitted.Add(1)
	if req == nil || req.Graph == nil {
		return nil, errors.New("engine: nil request or graph")
	}
	analyses := req.normalize()
	for _, a := range analyses {
		if !knownAnalyses[a] {
			return nil, fmt.Errorf("engine: unknown analysis %q", a)
		}
	}
	method := req.Method
	if method == "" {
		method = MethodRace
	}
	if !knownMethods[method] {
		return nil, fmt.Errorf("engine: unknown method %q", method)
	}
	if err := req.Graph.Validate(); err != nil {
		return nil, err
	}
	select {
	case <-e.closed:
		return nil, ErrClosed
	default:
	}

	// The prepared request the workers see: capacities applied up front
	// so the fingerprint keys the structure that is actually analyzed.
	prepared := &Request{
		Graph:    req.Graph,
		Analyses: analyses,
		Method:   method,
	}
	if req.ApplyCapacities {
		bounded, err := req.Graph.WithCapacities()
		if err != nil {
			return nil, fmt.Errorf("engine: applying capacities: %w", err)
		}
		prepared.Graph = bounded
	}
	fingerprint := prepared.Graph.FingerprintHex()
	// Method only affects the throughput analysis: keep it out of the
	// key otherwise, so identical non-throughput work coalesces and
	// caches regardless of the (irrelevant) method a caller picked.
	keyMethod := method
	if !slices.Contains(analyses, AnalysisThroughput) {
		keyMethod = ""
	}
	key := cacheKey(fingerprint, analyses, keyMethod, req.ApplyCapacities)

	if !req.NoCache && e.cache != nil {
		if res, ok := e.cache.Get(key); ok {
			e.stats.cacheHits.Add(1)
			out := res.shallowCopy()
			out.Graph = req.Graph.Name
			out.CacheHit = true
			return out, nil
		}
		e.stats.cacheMisses.Add(1)
	}

	c, leader := e.flight.join(key)
	if leader {
		if e.cfg.MaxPending > 0 && e.pending.Load() >= int64(e.cfg.MaxPending) {
			e.stats.rejected.Add(1)
			// Fail the whole call, not just this submitter: a waiter may
			// have joined since join(), and leaving would strand it (and
			// every later submission of this key) on a job that is never
			// enqueued.
			e.flight.finish(c, nil, ErrOverloaded)
			return nil, ErrOverloaded
		}
		e.pending.Add(1)
		// Re-check closed after raising pending: either Close's drain
		// loop observes our increment and keeps consuming the queue until
		// this job is finished, or its final pending read preceded the
		// increment — in which case closed is already observable here and
		// the job never enters the queue. Without this ordering a job
		// enqueued during shutdown could sit in the channel with no
		// worker or drain loop left to read it, hanging every waiter.
		select {
		case <-e.closed:
			e.finishJob(&job{req: prepared, call: c}, nil, ErrClosed)
			return nil, ErrClosed
		default:
		}
		prepared.NoCache = req.NoCache
		prepared.cacheKeyHint = key
		prepared.fingerprintHint = fingerprint
		go e.enqueue(&job{req: prepared, call: c})
	} else {
		e.stats.deduped.Add(1)
	}

	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		out := c.res.shallowCopy()
		out.Graph = req.Graph.Name
		out.Deduped = !leader
		return out, nil
	case <-ctx.Done():
		e.flight.leave(c)
		return nil, ctx.Err()
	}
}

// enqueue hands a job to the pool, giving up when every waiter abandoned
// it or the engine closed before a worker became free.
func (e *Engine) enqueue(j *job) {
	select {
	case e.jobs <- j:
	case <-j.call.jobCtx.Done():
		e.finishJob(j, nil, j.call.jobCtx.Err())
	case <-e.closed:
		e.finishJob(j, nil, ErrClosed)
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case j := <-e.jobs:
			e.runJob(j)
		case <-e.closed:
			return
		}
	}
}

// runJob computes one job and publishes its outcome to every waiter.
func (e *Engine) runJob(j *job) {
	ctx := j.call.jobCtx
	if err := ctx.Err(); err != nil {
		e.finishJob(j, nil, err)
		return
	}
	e.stats.evaluations.Add(1)
	start := time.Now()
	res, err := e.evalFn(ctx, j.req)
	elapsed := time.Since(start)
	switch {
	case err == nil:
		// Latency counts successful evaluations only, as MeanLatencyMS
		// documents: folding in cancelled jobs (often aborted in
		// microseconds) or failures would skew the mean of the work the
		// engine actually completed.
		e.stats.latencyNanos.Add(int64(elapsed))
		e.stats.latencyCount.Add(1)
		res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
		if !j.req.NoCache && e.cache != nil {
			e.cache.Put(j.req.cacheKeyHint, res)
		}
	case contextual(err):
		e.stats.cancelled.Add(1)
	default:
		e.stats.errors.Add(1)
	}
	e.finishJob(j, res, err)
}

// finishJob releases the pending slot, then completes the flight call.
// The order matters: finish wakes the waiters, and a woken submitter may
// immediately Submit again — if pending were still holding this job's
// slot, that submission could observe a stale count at MaxPending and be
// spuriously rejected.
func (e *Engine) finishJob(j *job, res *Result, err error) {
	e.pending.Add(-1)
	e.flight.finish(j.call, res, err)
}
