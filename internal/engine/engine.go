package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"kiter/internal/kperiodic"
	"kiter/internal/symbexec"
	"kiter/internal/telemetry"
)

// Config tunes an Engine.
type Config struct {
	// Workers is the evaluation pool size (default: GOMAXPROCS) and the
	// hard concurrency budget: the pool is slot-weighted, so a MethodRace
	// job charges every concurrently running contestant against Workers.
	// A race holds its worker's slot and borrows up to width-1 extra slots
	// from the idle pool without blocking; contestants beyond the borrowed
	// width share the held slots (degrading toward a sequential portfolio
	// under full load) instead of oversubscribing memory. Peak concurrent
	// analyses therefore never exceed Workers; Stats.RaceExtraSlots and
	// Stats.RaceStarved report how often racing borrowed and how often it
	// had to narrow.
	Workers int
	// QueueDepth is the buffered job queue length (default: 2·Workers).
	QueueDepth int
	// CacheCapacity is the total memo-cache size in entries (default
	// 4096; negative disables caching). Ignored when CacheBackend is set.
	CacheCapacity int
	// CacheShards splits the cache to bound lock contention (default 16).
	// Ignored when CacheBackend is set.
	CacheShards int
	// CacheBackend overrides the memo cache entirely (nil keeps the
	// default in-process sharded LRU built from CacheCapacity and
	// CacheShards). The engine takes ownership: Engine.Close closes the
	// backend. Compose tiers with NewTieredCache — e.g. memory over an
	// internal/cachedisk store — to share results across restarts.
	CacheBackend CacheBackend
	// MaxPending bounds jobs submitted but not yet finished; beyond it
	// Submit fails fast with ErrOverloaded (default 16·(Workers+1),
	// negative disables the bound).
	MaxPending int
	// Options are the guard rails passed to every K-periodic evaluation.
	Options kperiodic.Options
	// Symbolic are the budgets passed to every symbolic execution.
	Symbolic symbexec.Options
	// Dispatcher, when set, gets first claim on every leader job before it
	// reaches the local worker pool — the cluster seam (internal/cluster
	// forwards non-local jobs to their ring owner). Nil keeps every job
	// local. The engine does not own the Dispatcher; close it after Close.
	Dispatcher Dispatcher
	// Claims, when set, extends singleflight across processes: every
	// leader job that reaches a worker claims its cache key through the
	// Claimer first, and either serves the fleet's already-published
	// result, evaluates under an exclusive leased claim, or — on any
	// claim-layer failure — degrades to a plain local evaluation. The
	// engine does not own the Claimer; close it after Close.
	Claims Claimer
	// Metrics, when set, receives the engine's latency histograms and
	// solver-phase instruments (queue wait, per-method solve time, K-Iter
	// rounds, Howard iterations, arcs built/reused). The engine registers
	// its instruments in New, so a Registry serves at most one Engine; nil
	// disables histogram instrumentation at the cost of one nil check per
	// site. Counter-style telemetry stays on Stats either way.
	Metrics *telemetry.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 4096
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 16 * (cfg.Workers + 1)
	}
	return cfg
}

// Engine is the concurrent analysis engine. Create one with New, feed it
// with Submit from any number of goroutines, and Close it when done.
type Engine struct {
	cfg    Config
	jobs   chan *job
	cache  CacheBackend // nil when caching is disabled
	flight *flightGroup
	stats  counters

	// slots is the evaluation-slot semaphore backing the slot-weighted
	// pool: it holds Workers tokens, a worker takes one for the duration of
	// each job, and a race borrows extras (borrowSlots) for its concurrent
	// contestants, so total concurrent analyses never exceed Workers.
	slots chan struct{}

	pending atomic.Int64
	closed  chan struct{}
	// shutdownCtx mirrors closed as a context, so dispatches blocked on
	// network I/O (which take contexts, not channels) die promptly when
	// the engine closes instead of stalling Close for a forward timeout.
	shutdownCtx context.Context
	shutdown    context.CancelFunc
	once        sync.Once
	wg          sync.WaitGroup

	// evalFn computes a job's result; replaced in tests to observe
	// scheduling behaviour without paying for real analyses.
	evalFn func(ctx context.Context, req *Request) (*Result, error)

	// met holds the histogram instruments built from Config.Metrics. Every
	// field may be nil (telemetry disabled); all observation methods no-op
	// on nil receivers.
	met instruments
}

// instruments bundles the engine's histogram/counter instrumentation
// points — the latency-distribution telemetry that Stats' plain counters
// cannot express.
type instruments struct {
	// queueWait is submit→dequeue: the time a leader job spent in the
	// queue plus waiting for an evaluation slot.
	queueWait *telemetry.Histogram
	// evaluation is dequeue→done for successful evaluations — the solve
	// wall time MeanLatencyMS averages, as a full distribution.
	evaluation *telemetry.Histogram
	// cacheLookup times CacheBackend.Get (a disk-tier hit pays a decode).
	cacheLookup *telemetry.Histogram
	// solve is per-method solver wall time, labeled by contestant; under
	// racing every contestant that runs to completion observes.
	solve *telemetry.HistogramVec
	// kiterRounds is K-Iter's Algorithm 1 round count per solve;
	// howardIters the total Howard policy-improvement rounds per solve.
	kiterRounds *telemetry.Histogram
	howardIters *telemetry.Histogram
	// arcsBuilt/arcsReused count incremental-expansion arc work.
	arcsBuilt  *telemetry.Counter
	arcsReused *telemetry.Counter
}

func newInstruments(m *telemetry.Registry) instruments {
	return instruments{
		queueWait: m.Histogram("kiter_engine_queue_wait_seconds",
			"Time from job enqueue to a worker slot, in seconds.", telemetry.LatencyBuckets),
		evaluation: m.Histogram("kiter_engine_evaluation_seconds",
			"Wall time of successful evaluations, in seconds.", telemetry.LatencyBuckets),
		cacheLookup: m.Histogram("kiter_engine_cache_lookup_seconds",
			"Memo-cache lookup time (all tiers), in seconds.", telemetry.LatencyBuckets),
		solve: m.HistogramVec("kiter_solver_solve_seconds",
			"Per-method throughput solve time, in seconds.", telemetry.LatencyBuckets, "method"),
		kiterRounds: m.Histogram("kiter_solver_kiter_rounds",
			"K-Iter Algorithm 1 rounds per solve.", telemetry.CountBuckets),
		howardIters: m.Histogram("kiter_solver_howard_iterations",
			"Howard policy-improvement rounds per solve (summed over K-Iter rounds).", telemetry.CountBuckets),
		arcsBuilt: m.Counter("kiter_solver_arcs_built_total",
			"Constraint arcs built from phase pairs during expansion."),
		arcsReused: m.Counter("kiter_solver_arcs_reused_total",
			"Constraint arcs replayed from a previous round's block cache."),
	}
}

// job couples a request with the flight call its waiters share.
type job struct {
	req  *Request
	call *flightCall
	// ctx is the evaluation context: the flight's jobCtx, wrapped with the
	// submitter's trace span when the request is traced. Cancellation
	// always flows from jobCtx.
	ctx context.Context
	// enqueuedAt stamps the hand-off to the worker pool for the
	// queue-wait histogram and trace span.
	enqueuedAt time.Time
	// published is the successful evaluation's result, recorded so a held
	// cross-process claim can hand it to the owner on release (nil when
	// the evaluation failed or was cancelled — an explicit lease release).
	published *Result
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// ErrOverloaded is returned by Submit when MaxPending jobs are in flight;
// callers should shed load (HTTP 503) or retry with backoff.
var ErrOverloaded = errors.New("engine: too many pending jobs")

// New starts an engine with cfg's worker pool.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	cache := cfg.CacheBackend
	if cache == nil {
		cache = NewMemoryCache(cfg.CacheShards, cfg.CacheCapacity)
	}
	e := &Engine{
		cfg:    cfg,
		jobs:   make(chan *job, cfg.QueueDepth),
		cache:  cache,
		flight: newFlightGroup(),
		closed: make(chan struct{}),
		slots:  make(chan struct{}, cfg.Workers),
	}
	e.shutdownCtx, e.shutdown = context.WithCancel(context.Background())
	e.met = newInstruments(cfg.Metrics)
	for i := 0; i < cfg.Workers; i++ {
		e.slots <- struct{}{}
	}
	e.evalFn = e.evaluate
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Close stops the pool: jobs already running on a worker complete
// normally (their contexts are not cancelled, so their waiters still get
// results), in-flight Dispatcher forwards are cancelled and fail with
// ErrClosed, queued jobs that no worker picked up fail with ErrClosed, and
// Close returns once every job has been resolved one way or the other and
// the cache backend is closed. It is safe to call once; Submit calls
// racing with Close may either complete or report ErrClosed (backends
// treat post-Close Get/Put as no-op misses, so such stragglers are safe).
func (e *Engine) Close() {
	e.once.Do(func() {
		close(e.closed)
		e.shutdown()
	})
	e.wg.Wait()
	// Fail whatever is still queued; enqueue goroutines observe closed
	// themselves, so pending drains to zero.
	for {
		select {
		case j := <-e.jobs:
			e.finishJob(j, nil, ErrClosed)
		default:
			if e.pending.Load() == 0 {
				if e.cache != nil {
					_ = e.cache.Close()
				}
				return
			}
			runtime.Gosched()
		}
	}
}

// Submit analyzes req.Graph, deduplicating against identical in-flight
// submissions and memoizing completed results. It blocks until the result
// is available, ctx is done, or the engine is closed/overloaded. The
// returned Result must be treated as immutable.
func (e *Engine) Submit(ctx context.Context, req *Request) (*Result, error) {
	e.stats.submitted.Add(1)
	if req == nil || req.Graph == nil {
		return nil, errors.New("engine: nil request or graph")
	}
	analyses := req.normalize()
	for _, a := range analyses {
		if !knownAnalyses[a] {
			return nil, fmt.Errorf("engine: unknown analysis %q", a)
		}
	}
	method := req.Method
	if method == "" {
		method = MethodRace
	}
	if !knownMethods[method] {
		return nil, fmt.Errorf("engine: unknown method %q", method)
	}
	if err := req.Graph.Validate(); err != nil {
		return nil, err
	}
	select {
	case <-e.closed:
		return nil, ErrClosed
	default:
	}

	// The prepared request the workers see: capacities applied up front
	// so the fingerprint keys the structure that is actually analyzed.
	prepared := &Request{
		Graph:    req.Graph,
		Analyses: analyses,
		Method:   method,
	}
	if req.ApplyCapacities {
		bounded, err := req.Graph.WithCapacities()
		if err != nil {
			return nil, fmt.Errorf("engine: applying capacities: %w", err)
		}
		prepared.Graph = bounded
	}
	fingerprint := prepared.Graph.FingerprintHex()
	// Method only affects the throughput analysis: keep it out of the
	// key otherwise, so identical non-throughput work coalesces and
	// caches regardless of the (irrelevant) method a caller picked.
	keyMethod := method
	if !slices.Contains(analyses, AnalysisThroughput) {
		keyMethod = ""
	}
	key := cacheKey(fingerprint, analyses, keyMethod, req.ApplyCapacities)

	span := telemetry.FromContext(ctx)
	span.SetAttr("fingerprint", fingerprint)
	span.SetAttr("method", string(method))
	if !req.NoCache && e.cache != nil {
		lookupStart := time.Now()
		res, ok := cacheGet(ctx, e.cache, key)
		lookupDur := time.Since(lookupStart)
		e.met.cacheLookup.Observe(lookupDur.Seconds())
		if span != nil {
			span.Record("cache.lookup", lookupStart, lookupDur)
			span.SetAttr("cacheHit", ok)
		}
		if ok {
			e.stats.cacheHits.Add(1)
			out := res.shallowCopy()
			out.Graph = req.Graph.Name
			out.CacheHit = true
			return out, nil
		}
		e.stats.cacheMisses.Add(1)
	}

	c, leader := e.flight.join(key)
	if leader {
		if e.cfg.MaxPending > 0 && e.pending.Load() >= int64(e.cfg.MaxPending) {
			e.stats.rejected.Add(1)
			// Fail the whole call, not just this submitter: a waiter may
			// have joined since join(), and leaving would strand it (and
			// every later submission of this key) on a job that is never
			// enqueued.
			e.flight.finish(c, nil, ErrOverloaded)
			return nil, ErrOverloaded
		}
		e.pending.Add(1)
		// Re-check closed after raising pending: either Close's drain
		// loop observes our increment and keeps consuming the queue until
		// this job is finished, or its final pending read preceded the
		// increment — in which case closed is already observable here and
		// the job never enters the queue. Without this ordering a job
		// enqueued during shutdown could sit in the channel with no
		// worker or drain loop left to read it, hanging every waiter.
		select {
		case <-e.closed:
			e.finishJob(&job{req: prepared, call: c}, nil, ErrClosed)
			return nil, ErrClosed
		default:
		}
		prepared.NoCache = req.NoCache
		prepared.cacheKeyHint = key
		prepared.fingerprintHint = fingerprint
		// The leader's trace span rides into the evaluation context, so
		// solver phases attach below the submitter that started the job.
		// Deduped waiters share the result, not the tree. Cancellation
		// still flows from jobCtx alone.
		jctx := c.jobCtx
		if span != nil {
			jctx = telemetry.ContextWithSpan(jctx, span)
		}
		// Offer the job to the Dispatcher (cluster forwarding) unless the
		// request pinned itself local: forwarded arrivals set NoForward so
		// routing is capped at one hop even when replicas' health views
		// disagree about who owns a key.
		var djob *DispatchJob
		if e.cfg.Dispatcher != nil && !req.NoForward {
			djob = &DispatchJob{
				Graph:           req.Graph,
				Analyses:        analyses,
				Method:          method,
				ApplyCapacities: req.ApplyCapacities,
				NoCache:         req.NoCache,
				Fingerprint:     fingerprint,
			}
		}
		go e.launch(&job{req: prepared, call: c, ctx: jctx}, djob)
	} else {
		e.stats.deduped.Add(1)
		span.SetAttr("deduped", true)
	}

	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		out := c.res.shallowCopy()
		out.Graph = req.Graph.Name
		out.Deduped = !leader
		return out, nil
	case <-ctx.Done():
		e.flight.leave(c)
		return nil, ctx.Err()
	}
}

// PendingJobs returns the jobs submitted but not yet finished — the live
// load signal admission control reads on every request (Stats() allocates
// a full snapshot and is too heavy for that path).
func (e *Engine) PendingJobs() int { return int(e.pending.Load()) }

// WorkerCount returns the configured evaluation pool size.
func (e *Engine) WorkerCount() int { return e.cfg.Workers }

// QueueWaitQuantile returns the q-quantile of the observed submit→dequeue
// queue waits in seconds, from the kiter_engine_queue_wait_seconds
// histogram; 0 without Config.Metrics or before the first observation.
func (e *Engine) QueueWaitQuantile(q float64) float64 {
	return e.met.queueWait.Quantile(q)
}

// enqueue hands a job to the pool, giving up when every waiter abandoned
// it or the engine closed before a worker became free.
func (e *Engine) enqueue(j *job) {
	j.enqueuedAt = time.Now()
	select {
	case e.jobs <- j:
	case <-j.call.jobCtx.Done():
		e.finishJob(j, nil, j.call.jobCtx.Err())
	case <-e.closed:
		e.finishJob(j, nil, ErrClosed)
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case j := <-e.jobs:
			// Take an evaluation slot for the job's duration. The wait is
			// bounded: slots are only held by running analyses (including
			// race-borrowed extras), all of which complete and release.
			<-e.slots
			if !j.enqueuedAt.IsZero() {
				// Queue wait covers both the channel and the slot wait —
				// the full submit→dequeue gap a loaded pool adds.
				wait := time.Since(j.enqueuedAt)
				e.met.queueWait.Observe(wait.Seconds())
				telemetry.FromContext(j.evalCtx()).Record("queue.wait", j.enqueuedAt, wait)
			}
			e.runJob(j)
			e.slots <- struct{}{}
		case <-e.closed:
			return
		}
	}
}

// borrowSlots takes up to n evaluation slots without blocking and returns
// how many it got — the race fan-out budget. The caller must hand every
// borrowed slot back with returnSlots once the extra work has fully exited.
func (e *Engine) borrowSlots(n int) int {
	got := 0
	for got < n {
		select {
		case <-e.slots:
			got++
		default:
			return got
		}
	}
	return got
}

// returnSlots releases n borrowed evaluation slots.
func (e *Engine) returnSlots(n int) {
	for i := 0; i < n; i++ {
		e.slots <- struct{}{}
	}
}

// evalCtx returns the context evaluations run under: the span-carrying
// wrapper when the job is traced, the bare flight context otherwise.
func (j *job) evalCtx() context.Context {
	if j.ctx != nil {
		return j.ctx
	}
	return j.call.jobCtx
}

// runJob computes one job and publishes its outcome to every waiter.
func (e *Engine) runJob(j *job) {
	ctx := j.evalCtx()
	if err := ctx.Err(); err != nil {
		e.finishJob(j, nil, err)
		return
	}
	// Cross-process singleflight: claim the key at its ring owner before
	// burning a local evaluation on it. A served claim resolves the job
	// without evaluating; a granted claim obliges us to publish the
	// outcome through release; a failed claim degrades to a local solve.
	if res, served, release := e.claimJob(ctx, j); served {
		e.finishJob(j, res, nil)
		return
	} else if release != nil {
		defer func() { release(j.published) }()
	}
	e.stats.evaluations.Add(1)
	start := time.Now()
	res, err := e.safeEval(ctx, j.req)
	elapsed := time.Since(start)
	switch {
	case err == nil:
		// Latency counts successful evaluations only, as MeanLatencyMS
		// documents: folding in cancelled jobs (often aborted in
		// microseconds) or failures would skew the mean of the work the
		// engine actually completed.
		e.stats.latencyNanos.Add(int64(elapsed))
		e.stats.latencyCount.Add(1)
		e.met.evaluation.Observe(elapsed.Seconds())
		res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
		j.published = res
		if !j.req.NoCache && e.cache != nil {
			cachePut(ctx, e.cache, j.req.cacheKeyHint, res)
		}
	case contextual(err):
		e.stats.cancelled.Add(1)
	default:
		e.stats.errors.Add(1)
	}
	e.finishJob(j, res, err)
}

// finishJob releases the pending slot, then completes the flight call.
// The order matters: finish wakes the waiters, and a woken submitter may
// immediately Submit again — if pending were still holding this job's
// slot, that submission could observe a stale count at MaxPending and be
// spuriously rejected.
func (e *Engine) finishJob(j *job, res *Result, err error) {
	e.pending.Add(-1)
	e.flight.finish(j.call, res, err)
}
