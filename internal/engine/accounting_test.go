package engine

import (
	"context"
	"errors"
	"testing"

	"kiter/internal/gen"
)

func TestTighterBound(t *testing.T) {
	res := func(thr string, f float64) *ThroughputResult {
		return &ThroughputResult{Throughput: thr, Float: f}
	}
	cases := []struct {
		name string
		a, b *ThroughputResult
		want bool
	}{
		{"higher throughput is tighter", res("2/3", 0.667), res("1/2", 0.5), true},
		{"lower throughput is not", res("1/2", 0.5), res("2/3", 0.667), false},
		{"equal bounds keep the incumbent", res("1/2", 0.5), res("1/2", 0.5), false},
		{"exact compare beats float rounding", res("100000001/300000000", 1/3.0), res("1/3", 1/3.0), true},
		{"absent throughput is a zero bound", res("", 0), res("1/9", 0.111), false},
		{"any bound beats a zero bound", res("1/9", 0.111), res("", 0), true},
		{"unparseable falls back to floats", res("bogus", 0.8), res("1/2", 0.5), true},
	}
	for _, c := range cases {
		if got := tighterBound(c.a, c.b); got != c.want {
			t.Errorf("%s: tighterBound = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestLatencyCountsSuccessOnly pins the accounting fix: cancelled and
// failed evaluations must not contribute latency samples, so a flood of
// fast-aborting jobs cannot drag MeanLatencyMS down.
func TestLatencyCountsSuccessOnly(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	boom := errors.New("boom")
	mode := "ok"
	e.evalFn = func(ctx context.Context, req *Request) (*Result, error) {
		switch mode {
		case "fail":
			return nil, boom
		case "cancel":
			return nil, context.Canceled
		}
		return &Result{Throughput: &ThroughputResult{Optimal: true}}, nil
	}
	submit := func(n int64) error {
		_, err := e.Submit(context.Background(), &Request{
			Graph: gen.TwoTaskChain(n, 1), Method: MethodKIter, NoCache: true,
		})
		return err
	}
	if err := submit(1); err != nil {
		t.Fatal(err)
	}
	mode = "fail"
	if err := submit(2); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	mode = "cancel"
	if err := submit(3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	s := e.Stats()
	if s.Evaluations != 3 {
		t.Fatalf("evaluations = %d, want 3", s.Evaluations)
	}
	if s.LatencySamples != 1 {
		t.Fatalf("latency samples = %d, want 1 (successes only)", s.LatencySamples)
	}
	if s.Errors != 1 || s.Cancelled != 1 {
		t.Fatalf("errors/cancelled = %d/%d, want 1/1", s.Errors, s.Cancelled)
	}
}
