package engine

import (
	"fmt"
	"testing"
)

func TestCacheHitMissPromotion(t *testing.T) {
	c := newResultCache(4, 8)
	if _, ok := c.get("absent"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("a", &Result{Fingerprint: "a"})
	res, ok := c.get("a")
	if !ok || res.Fingerprint != "a" {
		t.Fatalf("get(a) = %v, %v", res, ok)
	}
	c.put("a", &Result{Fingerprint: "a2"})
	if res, _ := c.get("a"); res.Fingerprint != "a2" {
		t.Fatal("put did not refresh existing entry")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestCacheEviction(t *testing.T) {
	// One shard makes the LRU order deterministic.
	c := newResultCache(1, 3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprint("k", i), &Result{})
	}
	c.get("k0") // promote k0; k1 is now the LRU
	c.put("k3", &Result{})
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
}

func TestCacheShardedCapacity(t *testing.T) {
	c := newResultCache(4, 8)
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprint("key-", i), &Result{})
	}
	// Each of the 4 shards holds at most ceil(8/4) = 2 entries.
	if n := c.len(); n > 8 {
		t.Fatalf("cache grew to %d entries, capacity 8", n)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(4, 0)
	c.put("k", &Result{})
	if _, ok := c.get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}
