package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kiter/internal/gen"
)

// stubDispatcher scripts Dispatch outcomes and records what it saw.
type stubDispatcher struct {
	calls atomic.Int64
	jobs  chan *DispatchJob // buffered capture of dispatched jobs, if set
	fn    func(ctx context.Context, job *DispatchJob) (*Result, bool, error)
}

func (d *stubDispatcher) Dispatch(ctx context.Context, job *DispatchJob) (*Result, bool, error) {
	d.calls.Add(1)
	if d.jobs != nil {
		d.jobs <- job
	}
	return d.fn(ctx, job)
}

func TestDispatcherHandlesJob(t *testing.T) {
	remote := &Result{
		Fingerprint: gen.Figure2().FingerprintHex(),
		Throughput:  &ThroughputResult{Period: "42", Throughput: "1/42", Optimal: true, Method: MethodKIter},
		Peer:        "peer-1",
	}
	d := &stubDispatcher{jobs: make(chan *DispatchJob, 1)}
	d.fn = func(ctx context.Context, job *DispatchJob) (*Result, bool, error) {
		return remote, true, nil
	}
	e := newTestEngine(t, Config{Workers: 2, Dispatcher: d})

	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Throughput == nil || res.Throughput.Period != "42" || res.Peer != "peer-1" {
		t.Fatalf("remote result not published: %+v", res)
	}
	job := <-d.jobs
	if job.Fingerprint != gen.Figure2().FingerprintHex() {
		t.Fatalf("dispatch job fingerprint = %s", job.Fingerprint)
	}
	if job.Method != MethodRace || len(job.Analyses) != 1 || job.Analyses[0] != AnalysisThroughput {
		t.Fatalf("dispatch job not normalized: %+v", job)
	}

	// The remote result was cached under the local key: the repeat is a
	// cache hit and never consults the dispatcher again.
	res2, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
	if err != nil {
		t.Fatalf("repeat Submit: %v", err)
	}
	if !res2.CacheHit || res2.Peer != "peer-1" {
		t.Fatalf("repeat not served from cache with peer attribution: %+v", res2)
	}
	s := e.Stats()
	if s.RemoteResults != 1 || s.Evaluations != 0 {
		t.Fatalf("stats remote=%d evaluations=%d, want 1/0", s.RemoteResults, s.Evaluations)
	}
	if got := d.calls.Load(); got != 1 {
		t.Fatalf("dispatcher consulted %d times, want 1", got)
	}
}

func TestDispatcherDeclinesToLocal(t *testing.T) {
	d := &stubDispatcher{}
	d.fn = func(ctx context.Context, job *DispatchJob) (*Result, bool, error) {
		return nil, false, nil
	}
	e := newTestEngine(t, Config{Workers: 2, Dispatcher: d})
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), Method: MethodKIter})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Throughput == nil || !res.Throughput.Optimal {
		t.Fatalf("local fallback did not evaluate: %+v", res)
	}
	if want := figure2Result(t); res.Throughput.Period != want {
		t.Fatalf("period = %s, want %s", res.Throughput.Period, want)
	}
	s := e.Stats()
	if s.RemoteResults != 0 || s.Evaluations != 1 {
		t.Fatalf("stats remote=%d evaluations=%d, want 0/1", s.RemoteResults, s.Evaluations)
	}
	if d.calls.Load() != 1 {
		t.Fatalf("dispatcher consulted %d times, want 1", d.calls.Load())
	}
}

func TestDispatcherErrorFailsJob(t *testing.T) {
	boom := errors.New("peer exploded mid-flight")
	d := &stubDispatcher{}
	d.fn = func(ctx context.Context, job *DispatchJob) (*Result, bool, error) {
		return nil, true, boom
	}
	e := newTestEngine(t, Config{Workers: 1, Dispatcher: d})
	if _, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()}); !errors.Is(err, boom) {
		t.Fatalf("Submit error = %v, want %v", err, boom)
	}
	if s := e.Stats(); s.Errors != 1 {
		t.Fatalf("errors = %d, want 1", s.Errors)
	}
}

func TestNoForwardSkipsDispatcher(t *testing.T) {
	d := &stubDispatcher{}
	d.fn = func(ctx context.Context, job *DispatchJob) (*Result, bool, error) {
		t.Error("dispatcher consulted for a NoForward request")
		return nil, false, nil
	}
	e := newTestEngine(t, Config{Workers: 1, Dispatcher: d})
	res, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2(), Method: MethodKIter, NoForward: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Throughput == nil || res.Throughput.Period == "" {
		t.Fatalf("NoForward request not evaluated locally: %+v", res)
	}
	if d.calls.Load() != 0 {
		t.Fatalf("dispatcher calls = %d, want 0", d.calls.Load())
	}
}

// TestCloseCancelsInFlightDispatch: Engine.Close must not wait out a slow
// remote forward — the dispatch context dies with the engine and the
// job's waiters get ErrClosed promptly.
func TestCloseCancelsInFlightDispatch(t *testing.T) {
	entered := make(chan struct{})
	d := &stubDispatcher{}
	d.fn = func(ctx context.Context, job *DispatchJob) (*Result, bool, error) {
		close(entered)
		select {
		case <-ctx.Done():
			return nil, true, ctx.Err()
		case <-time.After(30 * time.Second):
			return nil, true, errors.New("dispatch context survived Close")
		}
	}
	e := New(Config{Workers: 1, Dispatcher: d})
	errc := make(chan error, 1)
	go func() {
		_, err := e.Submit(context.Background(), &Request{Graph: gen.Figure2()})
		errc <- err
	}()
	<-entered
	closed := make(chan struct{})
	go func() {
		e.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close stalled behind an in-flight dispatch")
	}
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("waiter got %v, want ErrClosed", err)
	}
}

func TestDispatcherSeesFlightContext(t *testing.T) {
	// A dispatcher blocked mid-forward must observe the flight context die
	// when the last waiter departs — the forwarded-job half of the
	// waiter-refcount contract (see singleflight_test.go for the local
	// half).
	entered := make(chan struct{})
	d := &stubDispatcher{}
	d.fn = func(ctx context.Context, job *DispatchJob) (*Result, bool, error) {
		close(entered)
		select {
		case <-ctx.Done():
			return nil, true, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, true, errors.New("flight context never cancelled")
		}
	}
	e := newTestEngine(t, Config{Workers: 1, Dispatcher: d})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Submit(ctx, &Request{Graph: gen.Figure2()})
		errc <- err
	}()
	<-entered
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit error = %v, want context.Canceled", err)
	}
	// The dispatch returns the cancellation; the engine accounts it as a
	// cancelled job, not an error.
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled counter never moved: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
