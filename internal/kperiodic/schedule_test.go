package kperiodic_test

import (
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
)

func TestScheduleKFigure2(t *testing.T) {
	g := gen.Figure2()
	res := mustKIter(t, g)
	sch, err := kperiodic.ScheduleK(g, res.K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Period.Cmp(res.Period) != 0 {
		t.Errorf("schedule period %s ≠ evaluation period %s", sch.Period, res.Period)
	}
	if err := sch.Validate(g, 4); err != nil {
		t.Errorf("optimal schedule infeasible: %v", err)
	}
}

func TestSchedule1PeriodicFigure2(t *testing.T) {
	g := gen.Figure2()
	K := []int64{1, 1, 1, 1}
	sch, err := kperiodic.ScheduleK(g, K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Period.String() != "18" {
		t.Errorf("1-periodic schedule period = %s, want 18", sch.Period)
	}
	if err := sch.Validate(g, 5); err != nil {
		t.Errorf("1-periodic schedule infeasible: %v", err)
	}
}

func TestScheduleStartOfPeriodicity(t *testing.T) {
	g := gen.Figure2()
	res := mustKIter(t, g)
	sch, err := kperiodic.ScheduleK(g, res.K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// S⟨tp, n+Kt⟩ − S⟨tp, n⟩ = µt for every phase and n.
	for ti := 0; ti < g.NumTasks(); ti++ {
		task := g.Task(csdf.TaskID(ti))
		for p := 1; p <= task.Phases(); p++ {
			for n := int64(1); n <= 3; n++ {
				d := sch.StartOf(csdf.TaskID(ti), p, n+sch.K[ti]).Sub(sch.StartOf(csdf.TaskID(ti), p, n))
				if d.Cmp(sch.Mu[ti]) != 0 {
					t.Fatalf("task %s phase %d: S(n+K)−S(n) = %s, want µ = %s",
						task.Name, p, d, sch.Mu[ti])
				}
			}
		}
	}
}

func TestScheduleValidateAcrossFixtures(t *testing.T) {
	graphs := []*csdf.Graph{
		gen.MultiRateCycle(),
		gen.CyclicCSDF(),
		gen.HSDFRing(4, []int64{1, 2}, 2),
		gen.SampleRateConverter(),
	}
	for _, g := range graphs {
		res := mustKIter(t, g)
		sch, err := kperiodic.ScheduleK(g, res.K, kperiodic.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := sch.Validate(g, 3); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestScheduleValidateRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := kperiodic.KIter(g, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sch, err := kperiodic.ScheduleK(g, res.K, kperiodic.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sch.Validate(g, 3); err != nil {
			t.Errorf("seed %d (%s): %v", seed, g.Name, err)
		}
	}
}

func TestScheduleCatchesBrokenStarts(t *testing.T) {
	// Sanity-check the checker itself: corrupting a start time must be
	// detected.
	g := gen.MultiRateCycle()
	res := mustKIter(t, g)
	sch, err := kperiodic.ScheduleK(g, res.K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pull every start of task B far earlier than its inputs allow.
	for j := range sch.Starts[1] {
		sch.Starts[1][j] = sch.Starts[1][j].Sub(rat.FromInt(1000))
	}
	if err := sch.Validate(g, 2); err == nil {
		t.Error("corrupted schedule passed validation")
	}
}

func TestScheduleDeadlockedGraph(t *testing.T) {
	g := gen.DeadlockedRing()
	_, err := kperiodic.ScheduleK(g, []int64{1, 1}, kperiodic.Options{})
	if err == nil {
		t.Error("schedule produced for dead graph")
	}
}
