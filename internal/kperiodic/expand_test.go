package kperiodic

import (
	"math/big"
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/rat"
)

// figure1 rebuilds the Figure 1 buffer locally (white-box tests cannot
// import gen without an import cycle through the external test package).
func figure1() *csdf.Graph {
	g := csdf.NewGraph("fig1")
	t := g.AddTask("t", []int64{1, 1, 1})
	tp := g.AddTask("t'", []int64{1, 1})
	g.AddBuffer("b", t, tp, []int64{2, 3, 1}, []int64{2, 5}, 0)
	return g
}

// TestConstraintArcsFigure1 checks the Theorem 2 quantities by hand on the
// Figure 1 buffer at K = 1. With ib = 6, ob = 7, gcd = 1 and q = [7, 6]
// (den = q_t·ib = 42), the useful pairs and their β values are:
//
//	(p,p′)=(1,1): Q=2  β=1   (1,2): Q=7  β=6
//	(2,1):        Q=0  β=−1  (2,2): Q=5  β=4
//	(3,1):        Q=−3 β=−4  (3,2): Q=2  β=1
func TestConstraintArcsFigure1(t *testing.T) {
	g := figure1()
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 7 || q[1] != 6 {
		t.Fatalf("q = %v, want [7 6]", q)
	}
	b, err := newBuilder(g, q, []int64{1, 1}, Options{AutoConcurrency: true} /* no self-loops */)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.build(); err != nil {
		t.Fatal(err)
	}
	if b.mg.NumArcs() != 6 {
		t.Fatalf("arcs = %d, want 6", b.mg.NumArcs())
	}
	// Expected H = −β/42 per (p,p′); node(t,p)=p−1, node(t′,p′)=3+p′−1.
	wantH := map[[2]int]rat.Rat{
		{1, 1}: rat.NewRat(-1, 42),
		{1, 2}: rat.NewRat(-6, 42),
		{2, 1}: rat.NewRat(1, 42),
		{2, 2}: rat.NewRat(-4, 42),
		{3, 1}: rat.NewRat(4, 42),
		{3, 2}: rat.NewRat(-1, 42),
	}
	seen := map[[2]int]bool{}
	for i := 0; i < b.mg.NumArcs(); i++ {
		a := b.mg.Arc(i)
		p := a.From + 1
		pp := a.To - 3 + 1
		key := [2]int{p, pp}
		want, ok := wantH[key]
		if !ok {
			t.Errorf("unexpected arc (%d,%d)", p, pp)
			continue
		}
		if a.H.Cmp(want) != 0 {
			t.Errorf("H(%d,%d) = %s, want %s", p, pp, a.H, want)
		}
		if a.L != 1 {
			t.Errorf("L(%d,%d) = %d, want 1", p, pp, a.L)
		}
		seen[key] = true
	}
	if len(seen) != 6 {
		t.Errorf("saw %d distinct pairs, want 6", len(seen))
	}
}

// TestExpansionDuplication checks that K > 1 duplicates the adjacent
// vectors: at K = [2, 1] the source has 6 expanded phases whose cumulative
// production doubles per window, and every H keeps the lcm-free
// denominator qt·ib.
func TestExpansionDuplication(t *testing.T) {
	g := figure1()
	q := []int64{7, 6}
	b, err := newBuilder(g, q, []int64{2, 1}, Options{AutoConcurrency: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.nodes != 6+2 {
		t.Fatalf("nodes = %d, want 8", b.nodes)
	}
	if b.lcmK.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("lcm(K) = %s, want 2", b.lcmK)
	}
	if err := b.build(); err != nil {
		t.Fatal(err)
	}
	// Every arc's H must have denominator dividing q·ib = 42.
	for i := 0; i < b.mg.NumArcs(); i++ {
		h := b.mg.Arc(i).H
		if h.IsZero() {
			continue
		}
		den := h.Den()
		if new(big.Int).Mod(big.NewInt(42), den).Sign() != 0 {
			t.Errorf("arc %d: denominator %s does not divide 42", i, den)
		}
	}
	// Durations repeat: expanded phase 4 of t is original phase 1.
	if d := b.duration(0, 4); d != 1 {
		t.Errorf("duration(t,4) = %d", d)
	}
}

func TestPhaseRefRoundTrip(t *testing.T) {
	g := figure1()
	q := []int64{7, 6}
	b, err := newBuilder(g, q, []int64{3, 2}, Options{AutoConcurrency: true})
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < g.NumTasks(); task++ {
		n := int(b.K[task]) * g.Task(csdf.TaskID(task)).Phases()
		for p := 1; p <= n; p++ {
			node := b.node(csdf.TaskID(task), p)
			ref := b.phaseRef(node)
			if ref.Task != csdf.TaskID(task) || ref.Phase != p {
				t.Fatalf("round-trip (%d,%d) -> node %d -> %+v", task, p, node, ref)
			}
		}
	}
}

func TestPhaseRefDecompose(t *testing.T) {
	ref := PhaseRef{Task: 0, Phase: 5}
	orig, rep := ref.Decompose(3) // ϕ = 3: phase 5 = phase 2 of repeat 2
	if orig != 2 || rep != 2 {
		t.Errorf("Decompose = (%d,%d), want (2,2)", orig, rep)
	}
	orig, rep = PhaseRef{Phase: 3}.Decompose(3)
	if orig != 3 || rep != 1 {
		t.Errorf("Decompose(3) = (%d,%d), want (3,1)", orig, rep)
	}
}

func TestSequentialArcs(t *testing.T) {
	g := csdf.NewGraph("seq")
	g.AddTask("a", []int64{2, 3})
	q := []int64{1}
	b, err := newBuilder(g, q, []int64{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.build(); err != nil {
		t.Fatal(err)
	}
	// 4 expanded phases: 3 chain arcs (H=0) + 1 wrap arc with the
	// lcm-free weight H = K/q.
	if b.mg.NumArcs() != 4 {
		t.Fatalf("arcs = %d, want 4", b.mg.NumArcs())
	}
	var wraps int
	for i := 0; i < b.mg.NumArcs(); i++ {
		a := b.mg.Arc(i)
		if a.H.IsZero() {
			if a.To != a.From+1 {
				t.Errorf("chain arc %d→%d not consecutive", a.From, a.To)
			}
			continue
		}
		wraps++
		if a.From != 3 || a.To != 0 {
			t.Errorf("wrap arc %d→%d, want 3→0", a.From, a.To)
		}
		if a.H.Cmp(rat.NewRat(2, 1)) != 0 { // K/q = 2/1
			t.Errorf("wrap H = %s, want 2", a.H)
		}
		if a.L != 3 { // duration of last expanded phase (orig phase 2)
			t.Errorf("wrap L = %d, want 3", a.L)
		}
	}
	if wraps != 1 {
		t.Errorf("wrap arcs = %d, want 1", wraps)
	}
}

func TestBuilderRejectsBadK(t *testing.T) {
	g := figure1()
	q := []int64{7, 6}
	if _, err := newBuilder(g, q, []int64{1}, Options{AutoConcurrency: true}); err == nil {
		t.Error("short K accepted")
	}
	if _, err := newBuilder(g, q, []int64{0, 1}, Options{AutoConcurrency: true}); err == nil {
		t.Error("zero K accepted")
	}
	if _, err := newBuilder(g, q, []int64{-2, 1}, Options{AutoConcurrency: true}); err == nil {
		t.Error("negative K accepted")
	}
}

func TestOptimalityTestUnit(t *testing.T) {
	q := []int64{6, 12, 6, 1}
	// Circuit over tasks {0,2,3}: gcd = 1, q̄ = [6,·,6,1].
	if optimalityTest([]csdf.TaskID{0, 2, 3}, q, []int64{1, 1, 1, 1}) {
		t.Error("test passed with K=1 but q̄0 = 6")
	}
	if !optimalityTest([]csdf.TaskID{0, 2, 3}, q, []int64{6, 1, 6, 1}) {
		t.Error("test failed with matching K")
	}
	// Circuit over {0,1}: gcd(6,12) = 6, q̄ = [1,2]: K1 must be even.
	if optimalityTest([]csdf.TaskID{0, 1}, q, []int64{1, 1, 1, 1}) {
		t.Error("test passed though q̄1 = 2, K1 = 1")
	}
	if !optimalityTest([]csdf.TaskID{0, 1}, q, []int64{1, 2, 1, 1}) {
		t.Error("test failed with K = [1,2,1,1]")
	}
	// Single-task circuit always passes (q̄ = 1).
	if !optimalityTest([]csdf.TaskID{1}, q, []int64{1, 1, 1, 1}) {
		t.Error("single-task circuit should always pass")
	}
	if optimalityTest(nil, q, []int64{1, 1, 1, 1}) {
		t.Error("empty circuit should fail")
	}
}

func TestUpdateKMatchesPaperExample(t *testing.T) {
	// Section 3.5's narrative with q = [6,12,6,1]: a critical circuit over
	// tasks {A,B} has q̄B = 2; the update turns K = [1,1,1,1] into
	// K = [1,2,1,1].
	q := []int64{6, 12, 6, 1}
	K := []int64{1, 1, 1, 1}
	updateK(K, []csdf.TaskID{0, 1}, q, Options{})
	want := []int64{1, 2, 1, 1}
	for i := range want {
		if K[i] != want[i] {
			t.Fatalf("K = %v, want %v", K, want)
		}
	}
	// A further circuit over {0,2,3} lifts A and C to 6.
	updateK(K, []csdf.TaskID{0, 2, 3}, q, Options{})
	want = []int64{6, 2, 6, 1}
	for i := range want {
		if K[i] != want[i] {
			t.Fatalf("K = %v, want %v", K, want)
		}
	}
}

func TestUpdateKFullUpdate(t *testing.T) {
	q := []int64{6, 12, 6, 1}
	K := []int64{1, 1, 1, 1}
	updateK(K, []csdf.TaskID{0, 1}, q, Options{FullUpdate: true})
	if K[0] != 6 || K[1] != 12 || K[2] != 1 || K[3] != 1 {
		t.Fatalf("K = %v, want [6 12 1 1]", K)
	}
}
