package kperiodic_test

import (
	"strings"
	"testing"

	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
)

func TestBivaluedGraphFigure5(t *testing.T) {
	g := gen.Figure2()
	K := []int64{1, 1, 1, 1}
	// Buffer-induced arcs only, as drawn in the paper's Figure 5.
	arcs, err := kperiodic.BivaluedGraph(g, K, kperiodic.Options{AutoConcurrency: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(arcs) != 10 {
		t.Fatalf("got %d arcs, want 10 (Figure 5)", len(arcs))
	}
	// Every arc must carry the unit phase duration of its source.
	for _, a := range arcs {
		if a.L != 1 {
			t.Errorf("arc %v→%v: L = %d, want 1", a.From, a.To, a.L)
		}
	}
	// Check two hand-computed weights: A1→D1 has H = −1/3 and D1→C1 has
	// H = 1/6 (proportional to the paper's −1/18 and 1/36).
	found := 0
	for _, a := range arcs {
		from := g.Task(a.From.Task).Name
		to := g.Task(a.To.Task).Name
		switch {
		case from == "A" && to == "D":
			if a.H.Cmp(rat.NewRat(-1, 3)) != 0 {
				t.Errorf("H(A1→D1) = %s, want -1/3", a.H)
			}
			found++
		case from == "D" && to == "C":
			if a.H.Cmp(rat.NewRat(1, 6)) != 0 {
				t.Errorf("H(D1→C1) = %s, want 1/6", a.H)
			}
			found++
		}
	}
	if found != 2 {
		t.Errorf("found %d of the 2 hand-checked arcs", found)
	}
}

func TestBivaluedGraphWithSelfLoops(t *testing.T) {
	g := gen.Figure2()
	K := []int64{1, 1, 1, 1}
	withSeq, err := kperiodic.BivaluedGraph(g, K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 10 buffer arcs + sequential arcs: A contributes 2 (chain+wrap),
	// B contributes 3, C and D one wrap each = 17 total.
	if len(withSeq) != 17 {
		t.Errorf("got %d arcs, want 17 with sequential phases", len(withSeq))
	}
}

func TestBivaluedGraphGrowsWithK(t *testing.T) {
	g := gen.Figure2()
	a1, err := kperiodic.BivaluedGraph(g, []int64{1, 1, 1, 1}, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := kperiodic.BivaluedGraph(g, []int64{2, 2, 2, 2}, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a2) <= len(a1) {
		t.Errorf("K=2 graph (%d arcs) not larger than K=1 (%d arcs)", len(a2), len(a1))
	}
}

func TestWriteBivaluedDOT(t *testing.T) {
	g := gen.Figure2()
	var sb strings.Builder
	err := kperiodic.WriteBivaluedDOT(&sb, g, []int64{1, 1, 1, 1}, kperiodic.Options{AutoConcurrency: true})
	if err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, frag := range []string{"digraph", "A_1", "D_1", "(1, "} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

func TestBivaluedGraphErrors(t *testing.T) {
	g := gen.Figure2()
	if _, err := kperiodic.BivaluedGraph(g, []int64{1}, kperiodic.Options{}); err == nil {
		t.Error("short K accepted")
	}
	bad := gen.DeadlockedRing() // consistent, so BivaluedGraph still works
	if _, err := kperiodic.BivaluedGraph(bad, []int64{1, 1}, kperiodic.Options{}); err != nil {
		t.Errorf("structurally valid graph rejected: %v", err)
	}
}
