package kperiodic

import (
	"context"
	"errors"
	"math/big"

	"kiter/internal/csdf"
	"kiter/internal/mcr"
	"kiter/internal/rat"
)

// evaluation bundles the bi-valued graph with its solved MCRP result so
// that K-Iter can re-certify or inspect circuits without rebuilding.
type evaluation struct {
	b   *builder
	res mcr.Result
	// deadlock holds the infeasibility certificate circuit when the MCRP
	// reported one (res is then zero).
	deadlock []PhaseRef
}

// solveK builds the bi-valued graph for (g, q, K) and solves the MCRP. The
// context is polled during constraint generation (the dominating cost), so
// a cancelled ctx aborts mid-expansion rather than after it.
func solveK(ctx context.Context, g *csdf.Graph, q, K []int64, opt Options) (*evaluation, error) {
	b, err := newBuilder(g, q, K, opt)
	if err != nil {
		return nil, err
	}
	b.ctx = ctx
	return resolve(ctx, b, mcr.NewSolver(), opt)
}

// resolve brings the builder's constraint graph up to date and solves the
// MCRP with the given (reusable) solver. K-Iter calls it once per round
// with the same builder and solver, which is what makes repeated rounds
// cheap: unchanged arc blocks are replayed and the solver's scratch is
// recycled.
func resolve(ctx context.Context, b *builder, s *mcr.Solver, opt Options) (*evaluation, error) {
	if err := b.build(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := s.SolveCtx(ctx, b.mg, mcr.Options{SkipCertify: opt.SkipCertify})
	if err != nil {
		var de *mcr.DeadlockError
		if errors.As(err, &de) {
			ev := &evaluation{b: b}
			for _, ai := range de.CycleArcs {
				ev.deadlock = append(ev.deadlock, b.phaseRef(b.mg.Arc(ai).From))
			}
			return ev, nil
		}
		if errors.Is(err, mcr.ErrNoCycle) {
			return nil, ErrUnbounded
		}
		return nil, err
	}
	return &evaluation{b: b, res: res}, nil
}

// toEvaluation converts a solved MCRP into the public Evaluation. The
// builder stores H weights in the lcm-free normalization, so the maximum
// ratio already is the Theorem 3 normalized period Ω_G = Ω_G̃/lcm(K).
func (ev *evaluation) toEvaluation() *Evaluation {
	b := ev.b
	out := &Evaluation{
		K:                append([]int64(nil), b.K...),
		LcmK:             new(big.Int).Set(b.lcmK),
		Certified:        ev.res.Certified,
		Nodes:            b.mg.NumNodes(),
		Arcs:             b.mg.NumArcs(),
		HowardIterations: ev.res.Iterations,
	}
	out.Period = ev.res.Ratio
	if out.Period.Sign() > 0 {
		out.Throughput = out.Period.Inv()
	}
	for _, node := range ev.res.CycleNodes {
		out.Critical = append(out.Critical, b.phaseRef(node))
	}
	out.CriticalTasks = uniqueTasks(out.Critical)
	return out
}

// EvaluateK computes the minimum period over all feasible K-periodic
// schedules of g with the fixed periodicity vector K (Theorems 2 and 3).
// The returned Evaluation carries the exact normalized period
// Ω_G = Ω_G̃/lcm(K), a critical circuit and the Theorem 4 optimality
// verdict for this K.
//
// An infeasible K — a circuit of the bi-valued graph with non-positive
// total time — yields a *DeadlockError only when the circuit also passes
// the multiplicity condition; otherwise EvaluateK reports the infeasibility
// as ErrInfeasibleK, since a larger K may still admit a schedule.
func EvaluateK(g *csdf.Graph, K []int64, opt Options) (*Evaluation, error) {
	return EvaluateKCtx(context.Background(), g, K, opt)
}

// EvaluateKCtx is EvaluateK with cancellation: when ctx is cancelled the
// evaluation aborts (also inside the pair-enumeration inner loop) and the
// context's error is returned.
func EvaluateKCtx(ctx context.Context, g *csdf.Graph, K []int64, opt Options) (*Evaluation, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	ev, err := solveK(ctx, g, q, K, opt)
	if err != nil {
		return nil, err
	}
	if ev.deadlock != nil {
		tasks := uniqueTasks(ev.deadlock)
		if optimalityTest(tasks, q, K) {
			return nil, &DeadlockError{K: append([]int64(nil), K...), Tasks: tasks}
		}
		return nil, &ErrInfeasibleK{K: append([]int64(nil), K...), Tasks: tasks}
	}
	out := ev.toEvaluation()
	out.Optimal = optimalityTest(out.CriticalTasks, q, K)
	return out, nil
}

// ErrInfeasibleK reports that no K-periodic schedule exists for this K,
// with the certificate circuit's tasks; a larger K may admit one (K-Iter
// continues through this situation automatically).
type ErrInfeasibleK struct {
	K     []int64
	Tasks []csdf.TaskID
}

func (e *ErrInfeasibleK) Error() string {
	return "kperiodic: no K-periodic schedule for this K (circuit over given tasks); try a larger K"
}

// Evaluate1 runs the 1-periodic method: the approximate periodic-schedule
// evaluation of [4] that the paper uses as its fast baseline. The result's
// Period is an upper bound on the optimal period (its Throughput a lower
// bound on the maximum throughput); Optimal reports whether it is provably
// tight.
func Evaluate1(g *csdf.Graph, opt Options) (*Evaluation, error) {
	return Evaluate1Ctx(context.Background(), g, opt)
}

// Evaluate1Ctx is Evaluate1 with cancellation.
func Evaluate1Ctx(ctx context.Context, g *csdf.Graph, opt Options) (*Evaluation, error) {
	K := make([]int64, g.NumTasks())
	for i := range K {
		K[i] = 1
	}
	return EvaluateKCtx(ctx, g, K, opt)
}

// Expansion evaluates with K = q, the repetition vector: the classical
// full-expansion technique ([10], reduced variants [12, 6]). This always
// satisfies the optimality test and therefore returns the exact maximum
// throughput, at the cost of a bi-valued graph whose size is governed by
// Σ qt rather than the instance size. It is the optimal baseline of
// Table 1.
func Expansion(g *csdf.Graph, opt Options) (*Evaluation, error) {
	return ExpansionCtx(context.Background(), g, opt)
}

// ExpansionCtx is Expansion with cancellation.
func ExpansionCtx(ctx context.Context, g *csdf.Graph, opt Options) (*Evaluation, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	return EvaluateKCtx(ctx, g, q, opt)
}

// optimalityTest implements Theorem 4: for the tasks of a critical circuit
// c, with q̄t = qt / gcd{qt′ : t′ ∈ c}, the evaluation is optimal when
// every Kt (t ∈ c) is a multiple of q̄t.
func optimalityTest(tasks []csdf.TaskID, q, K []int64) bool {
	if len(tasks) == 0 {
		return false
	}
	var g int64
	for _, t := range tasks {
		g = rat.Gcd(g, q[t])
	}
	for _, t := range tasks {
		qBar := q[t] / g
		if K[t]%qBar != 0 {
			return false
		}
	}
	return true
}
