package kperiodic

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/mcr"
)

// figure2White rebuilds the paper's Figure 2 example locally (white-box
// tests cannot import gen without a cycle); it is the multi-round K-Iter
// hot path guarded below.
func figure2White() *csdf.Graph {
	g := csdf.NewGraph("figure2")
	a := g.AddTask("A", []int64{1, 1})
	b := g.AddTask("B", []int64{1, 1, 1})
	c := g.AddTask("C", []int64{1})
	d := g.AddTask("D", []int64{1})
	g.AddBuffer("A->B", a, b, []int64{3, 5}, []int64{1, 1, 4}, 0)
	g.AddBuffer("B->C", b, c, []int64{6, 2, 1}, []int64{6}, 0)
	g.AddBuffer("C->A", c, a, []int64{2}, []int64{1, 3}, 4)
	g.AddBuffer("A->D", a, d, []int64{3, 5}, []int64{24}, 13)
	g.AddBuffer("D->C", d, c, []int64{36}, []int64{6}, 6)
	return g
}

// arcKey renders one constraint arc canonically for set comparison.
func arcKey(g *mcr.Graph, i int) string {
	a := g.Arc(i)
	return fmt.Sprintf("%d>%d L%d H%s", a.From, a.To, a.L, a.H)
}

func sortedArcs(g *mcr.Graph) []string {
	keys := make([]string, g.NumArcs())
	for i := range keys {
		keys[i] = arcKey(g, i)
	}
	sort.Strings(keys)
	return keys
}

// TestIncrementalMatchesColdRebuild is the equivalence property behind the
// incremental expansion: across randomized sequences of K bumps, a builder
// carried from round to round (replaying cached arc blocks) must produce
// exactly the arc set — and hence the MCRP result — of a builder built
// cold for the same K.
func TestIncrementalMatchesColdRebuild(t *testing.T) {
	graphs := []*csdf.Graph{figure1(), figure2White()}
	for _, seq := range []bool{true, false} {
		for gi, g := range graphs {
			opt := Options{AutoConcurrency: !seq}
			q, err := g.RepetitionVector()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(gi)*31 + boolSeed(seq)))
			K := make([]int64, g.NumTasks())
			for i := range K {
				K[i] = 1
			}
			inc, err := newBuilder(g, q, K, opt)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 12; step++ {
				// Random bump: grow the K of a random subset of tasks by a
				// small factor, as updateK would for a critical circuit.
				if step > 0 {
					for t := range K {
						if rng.Intn(3) == 0 {
							K[t] *= int64(2 + rng.Intn(2))
							if K[t] > 24 {
								K[t] = 1 // wrap to keep expansions small
							}
						}
					}
					if err := inc.setK(K); err != nil {
						t.Fatal(err)
					}
				}
				if err := inc.build(); err != nil {
					t.Fatal(err)
				}
				cold, err := newBuilder(g, q, K, opt)
				if err != nil {
					t.Fatal(err)
				}
				if err := cold.build(); err != nil {
					t.Fatal(err)
				}
				if inc.stats.arcsBuilt+inc.stats.arcsReused != inc.mg.NumArcs() {
					t.Fatalf("step %d: stats built %d + reused %d != arcs %d",
						step, inc.stats.arcsBuilt, inc.stats.arcsReused, inc.mg.NumArcs())
				}
				gotArcs, wantArcs := sortedArcs(inc.mg), sortedArcs(cold.mg)
				if len(gotArcs) != len(wantArcs) {
					t.Fatalf("step %d K=%v: incremental has %d arcs, cold %d",
						step, K, len(gotArcs), len(wantArcs))
				}
				for i := range gotArcs {
					if gotArcs[i] != wantArcs[i] {
						t.Fatalf("step %d K=%v: arc %d differs: %q vs %q",
							step, K, i, gotArcs[i], wantArcs[i])
					}
				}
				incRes, incErr := mcr.Solve(inc.mg, mcr.Options{})
				coldRes, coldErr := mcr.Solve(cold.mg, mcr.Options{})
				if (incErr == nil) != (coldErr == nil) {
					t.Fatalf("step %d K=%v: solve errs diverge: %v vs %v", step, K, incErr, coldErr)
				}
				if incErr == nil && incRes.Ratio.Cmp(coldRes.Ratio) != 0 {
					t.Fatalf("step %d K=%v: ratio %s (incremental) != %s (cold)",
						step, K, incRes.Ratio, coldRes.Ratio)
				}
			}
		}
	}
}

func boolSeed(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestKIterReusesBlocks checks that the multi-round Figure 2 run actually
// exercises the cache: later rounds must replay arcs, and each round's
// accounting must cover the whole constraint graph.
func TestKIterReusesBlocks(t *testing.T) {
	res, err := KIter(figure2White(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("Figure 2 converged in %d rounds; the reuse test needs ≥ 2", res.Iterations)
	}
	reused := 0
	for i, step := range res.Trace {
		if step.ArcsBuilt+step.ArcsReused != step.Arcs {
			t.Errorf("round %d: built %d + reused %d != arcs %d",
				i, step.ArcsBuilt, step.ArcsReused, step.Arcs)
		}
		if i == 0 && step.ArcsReused != 0 {
			t.Errorf("round 0 reused %d arcs before anything was cached", step.ArcsReused)
		}
		reused += step.ArcsReused
	}
	if reused == 0 {
		t.Error("no arcs were reused across the whole K-Iter run")
	}
}

// TestWarmRoundAllocations guards the allocation discipline of the Figure 2
// hot path: with the arc blocks warm and the solver scratch grown, a
// K-Iter style round (rebuild + MCRP solve) must stay within a handful of
// allocations — the Result's circuit slices, nothing proportional to the
// graph.
func TestWarmRoundAllocations(t *testing.T) {
	g := figure2White()
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	K := []int64{3, 4, 6, 1} // the optimal K = q of Figure 2
	b, err := newBuilder(g, q, K, Options{})
	if err != nil {
		t.Fatal(err)
	}
	solver := mcr.NewSolver()
	warm := func() {
		if err := b.setK(K); err != nil {
			t.Fatal(err)
		}
		if err := b.build(); err != nil {
			t.Fatal(err)
		}
		if _, err := solver.Solve(b.mg, mcr.Options{SkipCertify: true}); err != nil {
			t.Fatal(err)
		}
	}
	warm() // grow every backing array
	allocs := testing.AllocsPerRun(50, warm)
	// A warm round allocates only the Result's CycleArcs/CycleNodes copies
	// (plus tolerance for map-free incidentals); anything near the arc or
	// node count means a backing array stopped being reused.
	if allocs > 8 {
		t.Errorf("warm K-Iter round allocates %.1f objects/run, want ≤ 8", allocs)
	}
}
