package kperiodic

import (
	"fmt"
	"io"
	"strings"

	"kiter/internal/csdf"
	"kiter/internal/rat"
)

// BivaluedArc is one arc of the bi-valued graph G = (N, E) of Section 3.3,
// in task/phase coordinates (Figure 5).
type BivaluedArc struct {
	From, To PhaseRef
	L        int64
	H        rat.Rat
}

// BivaluedGraph constructs and returns the arcs of the bi-valued graph for
// g under the periodicity vector K, exactly as used by EvaluateK.
func BivaluedGraph(g *csdf.Graph, K []int64, opt Options) ([]BivaluedArc, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	b, err := newBuilder(g, q, K, opt)
	if err != nil {
		return nil, err
	}
	if err := b.build(); err != nil {
		return nil, err
	}
	arcs := make([]BivaluedArc, 0, b.mg.NumArcs())
	for i := 0; i < b.mg.NumArcs(); i++ {
		a := b.mg.Arc(i)
		arcs = append(arcs, BivaluedArc{
			From: b.phaseRef(a.From),
			To:   b.phaseRef(a.To),
			L:    a.L,
			H:    a.H,
		})
	}
	return arcs, nil
}

// WriteBivaluedDOT renders the bi-valued graph in Graphviz DOT format with
// the (L, H) labels of Figure 5.
func WriteBivaluedDOT(w io.Writer, g *csdf.Graph, K []int64, opt Options) error {
	arcs, err := BivaluedGraph(g, K, opt)
	if err != nil {
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", g.Name+"-bivalued")
	nodeID := func(r PhaseRef) string {
		return fmt.Sprintf("%s_%d", g.Task(r.Task).Name, r.Phase)
	}
	seen := map[string]bool{}
	for _, a := range arcs {
		for _, r := range []PhaseRef{a.From, a.To} {
			id := nodeID(r)
			if !seen[id] {
				seen[id] = true
				fmt.Fprintf(&sb, "  %q [label=%q];\n", id, id)
			}
		}
	}
	for _, a := range arcs {
		fmt.Fprintf(&sb, "  %q -> %q [label=\"(%d, %s)\"];\n", nodeID(a.From), nodeID(a.To), a.L, a.H)
	}
	sb.WriteString("}\n")
	_, err = io.WriteString(w, sb.String())
	return err
}
