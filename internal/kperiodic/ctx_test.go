package kperiodic_test

import (
	"context"
	"errors"
	"testing"

	"kiter/internal/gen"
	"kiter/internal/kperiodic"
)

func TestKIterCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := kperiodic.KIterCtx(ctx, gen.Figure2(), kperiodic.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil && res.Evaluation != nil {
		t.Fatal("cancelled run produced an evaluation")
	}
}

func TestEvaluateKCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := kperiodic.Evaluate1Ctx(ctx, gen.Figure2(), kperiodic.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScheduleKCtxCancelled(t *testing.T) {
	g := gen.Figure2()
	K := make([]int64, g.NumTasks())
	for i := range K {
		K[i] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := kperiodic.ScheduleKCtx(ctx, g, K, kperiodic.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The background-context wrappers must behave exactly as before.
func TestKIterCtxMatchesKIter(t *testing.T) {
	want, err := kperiodic.KIter(gen.Figure2(), kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := kperiodic.KIterCtx(context.Background(), gen.Figure2(), kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Period.Cmp(got.Period) != 0 || want.Iterations != got.Iterations {
		t.Fatalf("KIterCtx diverged: %v vs %v", got.Evaluation, want.Evaluation)
	}
}
