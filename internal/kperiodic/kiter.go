package kperiodic

import (
	"context"
	"errors"
	"fmt"
	"time"

	"kiter/internal/csdf"
	"kiter/internal/mcr"
	"kiter/internal/rat"
	"kiter/internal/telemetry"
)

// IterStep records one round of the K-Iter loop for tracing and the
// convergence experiments.
type IterStep struct {
	K             []int64
	Period        rat.Rat // Ω_G for this K; zero when the K was infeasible
	Infeasible    bool
	CriticalTasks []csdf.TaskID
	Nodes, Arcs   int
	// ArcsBuilt and ArcsReused report the incremental expansion work of
	// this round: constraint arcs recomputed from their buffer's phase
	// pairs vs. replayed from a previous round's block cache.
	ArcsBuilt, ArcsReused int
	// HowardIterations counts the MCRP solver's policy-improvement rounds
	// in this K-Iter round (zero when the round was infeasible before the
	// solve completed).
	HowardIterations int
}

// KIterResult is the outcome of Algorithm 1: an optimal Evaluation plus
// the iteration trace.
type KIterResult struct {
	*Evaluation
	Trace      []IterStep
	Iterations int
}

const defaultMaxIterations = 10000

// maxTracedRounds caps how many K-Iter rounds get their own child span in a
// request trace.
const maxTracedRounds = 32

// KIter computes the exact maximum throughput of g by Algorithm 1 of the
// paper: starting from K = [1,…,1], it repeatedly evaluates the minimum
// K-periodic period, applies the Theorem 4 optimality test to the critical
// circuit, and on failure bumps Kt ← lcm(Kt, q̄t) for every task t of the
// circuit. Every Kt stays a divisor of qt and grows strictly on failure,
// so the loop terminates — in the worst case at K = q, where the test
// always passes.
//
// Intermediate rounds run the float64 MCRP fast path; once the test passes
// the candidate circuit is certified exactly, and if certification reveals
// a different (truly critical) circuit the test is re-applied to it, so the
// final result is exact and carries Optimal = true.
//
// Infeasible Ks (possible on capacity-bounded graphs, whose 1-periodic LP
// may have no solution) are handled by treating the infeasibility
// certificate circuit as critical: if it passes the multiplicity condition
// the graph is declared dead (*DeadlockError), otherwise K grows and the
// loop continues.
func KIter(g *csdf.Graph, opt Options) (*KIterResult, error) {
	return KIterCtx(context.Background(), g, opt)
}

// KIterCtx is KIter with cancellation: the context is polled at every
// Algorithm 1 round and inside each round's bi-valued-graph expansion, so a
// long analysis stops promptly once the caller gives up. On cancellation
// the partial result (the trace of completed rounds) is returned together
// with the context's error.
func KIterCtx(ctx context.Context, g *csdf.Graph, opt Options) (*KIterResult, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	K := make([]int64, g.NumTasks())
	for i := range K {
		K[i] = 1
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = defaultMaxIterations
	}
	inner := opt
	inner.SkipCertify = true

	// One builder and one MCRP solver serve every round: arc blocks whose
	// endpoint K survived the latest updateK are replayed instead of
	// re-enumerated, and the solver's O(n) working arrays are recycled.
	result := &KIterResult{}
	b, err := newBuilder(g, q, K, inner)
	if err != nil {
		result.Iterations = 1
		return result, err
	}
	b.ctx = ctx
	solver := mcr.NewSolver()
	span := telemetry.FromContext(ctx)
	defer func() {
		span.AddInt("iterations", int64(result.Iterations))
		var built, reused int64
		for _, step := range result.Trace {
			built += int64(step.ArcsBuilt)
			reused += int64(step.ArcsReused)
		}
		span.AddInt("arcsBuilt", built)
		span.AddInt("arcsReused", reused)
	}()
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return result, err
		}
		result.Iterations = iter + 1
		if iter > 0 {
			if err := b.setK(K); err != nil {
				return result, err
			}
		}
		roundStart := time.Now()
		ev, err := resolve(ctx, b, solver, inner)
		// Record per-round phases for the first rounds only: a
		// slowly-converging instance would otherwise bloat the trace tree
		// with thousands of children.
		if span != nil && iter < maxTracedRounds {
			span.Record(fmt.Sprintf("round.%d", iter+1), roundStart, time.Since(roundStart))
		}
		if err != nil {
			return result, err
		}
		if ev.deadlock != nil {
			tasks := uniqueTasks(ev.deadlock)
			result.Trace = append(result.Trace, IterStep{
				K:             append([]int64(nil), K...),
				Infeasible:    true,
				CriticalTasks: tasks,
				Nodes:         ev.b.mg.NumNodes(),
				Arcs:          ev.b.mg.NumArcs(),
				ArcsBuilt:     ev.b.stats.arcsBuilt,
				ArcsReused:    ev.b.stats.arcsReused,
			})
			if optimalityTest(tasks, q, K) {
				return result, &DeadlockError{K: append([]int64(nil), K...), Tasks: tasks}
			}
			updateK(K, tasks, q, opt)
			continue
		}

		tasks := criticalTasks(ev)
		result.Trace = append(result.Trace, IterStep{
			K:                append([]int64(nil), K...),
			Period:           ev.res.Ratio,
			CriticalTasks:    tasks,
			Nodes:            ev.b.mg.NumNodes(),
			Arcs:             ev.b.mg.NumArcs(),
			ArcsBuilt:        ev.b.stats.arcsBuilt,
			ArcsReused:       ev.b.stats.arcsReused,
			HowardIterations: ev.res.Iterations,
		})
		if !optimalityTest(tasks, q, K) {
			updateK(K, tasks, q, opt)
			continue
		}

		// The candidate circuit passes; make the circuit exact before
		// trusting the verdict.
		if !opt.SkipCertify && !ev.res.Certified {
			refined, err := solver.RefineCtx(ctx, ev.b.mg, ev.res)
			if err != nil {
				var de *mcr.DeadlockError
				if errors.As(err, &de) {
					var refs []PhaseRef
					for _, ai := range de.CycleArcs {
						refs = append(refs, ev.b.phaseRef(ev.b.mg.Arc(ai).From))
					}
					dTasks := uniqueTasks(refs)
					if optimalityTest(dTasks, q, K) {
						return result, &DeadlockError{K: append([]int64(nil), K...), Tasks: dTasks}
					}
					updateK(K, dTasks, q, opt)
					continue
				}
				// Certification can now be cancelled mid-relaxation; keep
				// the partial-trace contract on that path too.
				return result, err
			}
			ev.res = refined
			tasks = criticalTasks(ev)
			if !optimalityTest(tasks, q, K) {
				// The certified circuit differs and fails the test.
				updateK(K, tasks, q, opt)
				continue
			}
		}
		out := ev.toEvaluation()
		out.Optimal = true
		result.Evaluation = out
		return result, nil
	}
	return nil, fmt.Errorf("kperiodic: K-Iter did not converge within %d iterations", maxIter)
}

func criticalTasks(ev *evaluation) []csdf.TaskID {
	refs := make([]PhaseRef, 0, len(ev.res.CycleNodes))
	for _, node := range ev.res.CycleNodes {
		refs = append(refs, ev.b.phaseRef(node))
	}
	return uniqueTasks(refs)
}

// updateK applies the paper's periodicity bump: for every task t of the
// critical circuit, Kt ← lcm(Kt, q̄t) with q̄t = qt/gcd{qt′ : t′ ∈ c}.
// With FullUpdate (ablation) the circuit's tasks jump straight to Kt = qt.
func updateK(K []int64, tasks []csdf.TaskID, q []int64, opt Options) {
	if opt.FullUpdate {
		for _, t := range tasks {
			K[t] = q[t]
		}
		return
	}
	var g int64
	for _, t := range tasks {
		g = rat.Gcd(g, q[t])
	}
	for _, t := range tasks {
		qBar := q[t] / g
		// Both K[t] and q̄t divide qt, so the lcm fits.
		l, _ := rat.Lcm(K[t], qBar)
		K[t] = l
	}
}
