package kperiodic_test

import (
	"errors"
	"testing"

	"kiter/internal/gen"
	"kiter/internal/kperiodic"
)

func TestInfeasibleKPathThroughKIter(t *testing.T) {
	spec := gen.IndustrialSpecs()[2]
	g, err := gen.Industrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := g.ScaleCapacities(2).WithCapacities()
	if err != nil {
		t.Fatal(err)
	}
	// The 1-periodic method must fail on this instance: either the
	// certificate circuit already proves deadlock, or it only rules out
	// K = 1 (ErrInfeasibleK).
	_, err1 := kperiodic.Evaluate1(bounded, kperiodic.Options{})
	var inf *kperiodic.ErrInfeasibleK
	var dead *kperiodic.DeadlockError
	if !errors.As(err1, &inf) && !errors.As(err1, &dead) {
		t.Fatalf("Evaluate1 err = %v, want infeasibility", err1)
	}
	if errors.As(err1, &inf) {
		if len(inf.Tasks) == 0 || inf.Error() == "" {
			t.Error("empty infeasibility certificate")
		}
	}
	// K-Iter works through growing K and ends with a deadlock
	// certificate; the partial trace documents the traversal.
	res, err2 := kperiodic.KIter(bounded, kperiodic.Options{MaxIterations: 500})
	if !errors.As(err2, &dead) {
		t.Fatalf("KIter err = %v, want DeadlockError", err2)
	}
	if res == nil || len(res.Trace) == 0 {
		t.Fatal("no partial trace returned with the deadlock")
	}
	sawInfeasible := false
	sawGrowth := false
	for _, step := range res.Trace {
		if step.Infeasible {
			sawInfeasible = true
		}
		for _, k := range step.K {
			if k > 1 {
				sawGrowth = true
			}
		}
	}
	if !sawInfeasible {
		t.Error("trace shows no infeasible step")
	}
	if !sawGrowth {
		t.Error("K never grew before the deadlock certificate")
	}
}

func TestFeasibleAboveBoundary(t *testing.T) {
	spec := gen.IndustrialSpecs()[2]
	g, err := gen.Industrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	var res *kperiodic.KIterResult
	for slack := int64(2); slack <= 256; slack *= 2 {
		bounded, berr := g.ScaleCapacities(slack).WithCapacities()
		if berr != nil {
			t.Fatal(berr)
		}
		res, err = kperiodic.KIter(bounded, kperiodic.Options{MaxIterations: 500})
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("no slack ≤ 256 feasible: %v", err)
	}
	if !res.Optimal {
		t.Error("not certified optimal")
	}
	// Tighter buffers can only slow the graph down relative to unbounded.
	unbounded, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Period.Cmp(unbounded.Period) < 0 {
		t.Error("bounded graph faster than unbounded")
	}
}

func TestErrTooLargeBudget(t *testing.T) {
	g := gen.Figure2()
	_, err := kperiodic.EvaluateK(g, []int64{1, 1, 1, 1}, kperiodic.Options{MaxNodes: 3})
	var tl *kperiodic.ErrTooLarge
	if !errors.As(err, &tl) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if tl.Error() == "" {
		t.Error("empty budget message")
	}
	// Pairs budget too.
	_, err = kperiodic.EvaluateK(g, []int64{1, 1, 1, 1}, kperiodic.Options{MaxPairs: 2})
	if !errors.As(err, &tl) {
		t.Fatalf("err = %v, want ErrTooLarge (pairs)", err)
	}
	// K-Iter propagates the budget error with its partial trace.
	res, err := kperiodic.KIter(g, kperiodic.Options{MaxNodes: 3})
	if !errors.As(err, &tl) {
		t.Fatalf("KIter err = %v, want ErrTooLarge", err)
	}
	if res == nil {
		t.Error("no partial result with budget error")
	}
}
