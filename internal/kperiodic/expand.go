package kperiodic

import (
	"context"
	"fmt"
	"math/big"

	"kiter/internal/csdf"
	"kiter/internal/mcr"
	"kiter/internal/rat"
)

// builder assembles the bi-valued graph of the expanded CSDFG G̃ obtained
// by duplicating every task's adjacent vectors Kt times (Section 3.2).
//
// Nodes are the first executions ⟨tp, 1⟩ of the expanded phases
// p ∈ {1, …, Kt·ϕ(t)}. For every buffer b = (t, t′) and every useful pair
// (p, p′) — those with α(p,p′) ≤ β(p,p′) (Theorem 2) — an arc carries
//
//	L = d̃(tp)            (the expanded phase duration)
//	H = −β(p,p′)/(q̃t·ĩb) (an exact rational; q̃t·ĩb = qt·ib·lcm(K))
//
// so that the minimum period of G̃ equals the maximum cost-to-time ratio.
type builder struct {
	g      *csdf.Graph
	q      []int64
	K      []int64
	lcmK   *big.Int
	offset []int // node index of ⟨t1,1⟩ per task
	nodes  int
	mg     *mcr.Graph
	seq    bool            // add implicit sequential self-loops
	ctx    context.Context // polled during pair enumeration; nil = never cancelled
}

func newBuilder(g *csdf.Graph, q, K []int64, opt Options) (*builder, error) {
	if len(K) != g.NumTasks() {
		return nil, fmt.Errorf("kperiodic: K has %d entries for %d tasks", len(K), g.NumTasks())
	}
	for t, k := range K {
		if k <= 0 {
			return nil, fmt.Errorf("kperiodic: K[%d] = %d must be positive", t, k)
		}
	}
	b := &builder{
		g:    g,
		q:    q,
		K:    append([]int64(nil), K...),
		seq:  !opt.AutoConcurrency,
		lcmK: big.NewInt(1),
	}
	tmp := new(big.Int)
	for _, k := range K {
		kb := big.NewInt(k)
		tmp.GCD(nil, nil, b.lcmK, kb)
		b.lcmK.Div(b.lcmK, tmp).Mul(b.lcmK, kb)
	}
	// Size budget: nodes and constraint pairs, checked before any
	// allocation proportional to them.
	var nodes, pairs int64
	for t := 0; t < g.NumTasks(); t++ {
		n, ok := rat.MulCheck(K[t], int64(g.Task(csdf.TaskID(t)).Phases()))
		if !ok {
			return nil, &ErrTooLarge{Nodes: -1}
		}
		nodes, ok = rat.AddCheck(nodes, n)
		if !ok {
			return nil, &ErrTooLarge{Nodes: -1}
		}
	}
	for i := 0; i < g.NumBuffers(); i++ {
		buf := g.Buffer(csdf.BufferID(i))
		nS, okS := rat.MulCheck(K[buf.Src], int64(g.Task(buf.Src).Phases()))
		nD, okD := rat.MulCheck(K[buf.Dst], int64(g.Task(buf.Dst).Phases()))
		p, okP := int64(0), false
		if okS && okD {
			p, okP = rat.MulCheck(nS, nD)
		}
		if !okP {
			return nil, &ErrTooLarge{Nodes: nodes, Pairs: -1}
		}
		pairs, okP = rat.AddCheck(pairs, p)
		if !okP {
			return nil, &ErrTooLarge{Nodes: nodes, Pairs: -1}
		}
	}
	if opt.MaxNodes > 0 && nodes > opt.MaxNodes {
		return nil, &ErrTooLarge{Nodes: nodes, Pairs: pairs}
	}
	if opt.MaxPairs > 0 && pairs > opt.MaxPairs {
		return nil, &ErrTooLarge{Nodes: nodes, Pairs: pairs}
	}
	b.offset = make([]int, g.NumTasks()+1)
	for t := 0; t < g.NumTasks(); t++ {
		b.offset[t] = b.nodes
		b.nodes += int(K[t]) * g.Task(csdf.TaskID(t)).Phases()
	}
	b.offset[g.NumTasks()] = b.nodes
	b.mg = mcr.New(b.nodes)
	return b, nil
}

// node returns the bi-valued graph node of ⟨t, p̃⟩ with p̃ 1-based.
func (b *builder) node(t csdf.TaskID, pTilde int) int {
	return b.offset[t] + pTilde - 1
}

// phaseRef inverts node.
func (b *builder) phaseRef(node int) PhaseRef {
	// Binary search over offsets (tasks are few; linear is fine too).
	lo, hi := 0, len(b.offset)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if b.offset[mid] <= node {
			lo = mid
		} else {
			hi = mid
		}
	}
	return PhaseRef{Task: csdf.TaskID(lo), Phase: node - b.offset[lo] + 1}
}

// duration returns d̃(tp̃) = d(t, ((p̃−1) mod ϕ)+1).
func (b *builder) duration(t csdf.TaskID, pTilde int) int64 {
	task := b.g.Task(t)
	return task.Durations[(pTilde-1)%task.Phases()]
}

// build generates all constraint arcs.
func (b *builder) build() error {
	for i := 0; i < b.g.NumBuffers(); i++ {
		if err := b.addBufferArcs(b.g.Buffer(csdf.BufferID(i))); err != nil {
			return err
		}
	}
	if b.seq {
		for t := 0; t < b.g.NumTasks(); t++ {
			b.addSequentialArcs(csdf.TaskID(t))
		}
	}
	return nil
}

// addBufferArcs enumerates the useful pairs of one buffer of G̃.
//
// With src = t, dst = t′, expanded phase counts ϕ̃ = Kt·ϕ(t) and
// ϕ̃′ = Kt′·ϕ(t′), expanded totals ĩ = Kt·ib and õ = Kt′·ob:
//
//	Q(p,p′)  = O⟨t′p′,1⟩ − I⟨tp,1⟩ − M0 + ĩn(p)
//	α(p,p′)  = ⌈Q − min(ĩn(p), õut(p′))⌉_gcd(ĩ,õ)
//	β(p,p′)  = ⌊Q − 1⌋_gcd(ĩ,õ)
//
// and each pair with α ≤ β yields the arc ⟨tp,1⟩ → ⟨t′p′,1⟩.
func (b *builder) addBufferArcs(buf *csdf.Buffer) error {
	src, dst := buf.Src, buf.Dst
	phiS := b.g.Task(src).Phases()
	phiD := b.g.Task(dst).Phases()
	nS := int(b.K[src]) * phiS
	nD := int(b.K[dst]) * phiD
	ib, ob := buf.TotalIn(), buf.TotalOut()

	iTil, ok := rat.MulCheck(b.K[src], ib)
	if !ok {
		return &rat.ErrOverflow{Op: "expanded production total"}
	}
	oTil, ok := rat.MulCheck(b.K[dst], ob)
	if !ok {
		return &rat.ErrOverflow{Op: "expanded consumption total"}
	}
	gcd := rat.Gcd(iTil, oTil)

	// den = q̃t·ĩ = qt·ib·lcm(K), assembled exactly.
	den := new(big.Int).Mul(big.NewInt(b.q[src]), big.NewInt(ib))
	den.Mul(den, b.lcmK)

	// Cumulative expanded I and O at the first execution of each phase.
	cumI := make([]int64, nS+1) // cumI[p] = Ĩ⟨tp,1⟩
	for p := 1; p <= nS; p++ {
		cumI[p] = cumI[p-1] + buf.In[(p-1)%phiS]
	}
	cumO := make([]int64, nD+1)
	for p := 1; p <= nD; p++ {
		cumO[p] = cumO[p-1] + buf.Out[(p-1)%phiD]
	}

	neg := new(big.Int)
	for p := 1; p <= nS; p++ {
		// One cancellation poll per source phase row: each row costs
		// O(nD) arc insertions, so the poll is amortized while still
		// bounding the latency of a cancel to a single row.
		if b.ctx != nil {
			if err := b.ctx.Err(); err != nil {
				return err
			}
		}
		inP := buf.In[(p-1)%phiS]
		l := b.duration(src, p)
		from := b.node(src, p)
		base := -cumI[p] - buf.Initial + inP
		for pp := 1; pp <= nD; pp++ {
			outP := buf.Out[(pp-1)%phiD]
			q := cumO[pp] + base
			m := inP
			if outP < m {
				m = outP
			}
			alpha := rat.CeilTo(q-m, gcd)
			beta := rat.FloorTo(q-1, gcd)
			if alpha > beta {
				continue
			}
			neg.SetInt64(-beta)
			h := rat.FromBigInts(neg, den)
			b.mg.AddArc(from, b.node(dst, pp), l, h)
		}
	}
	return nil
}

// addSequentialArcs enforces the ordered, non-overlapping execution of a
// task's phases. These are exactly the useful pairs of an implicit
// self-buffer with unit rates and one initial token: an arc p̃ → p̃+1 with
// β = 0 for consecutive phases, and the wrap-around arc ϕ̃ → 1 with
// β = −ϕ̃, i.e. H = ϕ̃/(q̃t·ϕ̃·…) = Kt/(qt·lcm(K)).
func (b *builder) addSequentialArcs(t csdf.TaskID) {
	phi := b.g.Task(t).Phases()
	n := int(b.K[t]) * phi
	for p := 1; p < n; p++ {
		b.mg.AddArc(b.node(t, p), b.node(t, p+1), b.duration(t, p), rat.Rat{})
	}
	// Wrap-around: the next periodicity window starts after this one.
	den := new(big.Int).Mul(big.NewInt(b.q[t]), b.lcmK)
	h := rat.FromBigInts(big.NewInt(b.K[t]), den)
	b.mg.AddArc(b.node(t, n), b.node(t, 1), b.duration(t, n), h)
}
