package kperiodic

import (
	"context"
	"fmt"
	"math/big"

	"kiter/internal/csdf"
	"kiter/internal/mcr"
	"kiter/internal/rat"
)

// builder assembles the bi-valued graph of the expanded CSDFG G̃ obtained
// by duplicating every task's adjacent vectors Kt times (Section 3.2).
//
// Nodes are the first executions ⟨tp, 1⟩ of the expanded phases
// p ∈ {1, …, Kt·ϕ(t)}. For every buffer b = (t, t′) and every useful pair
// (p, p′) — those with α(p,p′) ≤ β(p,p′) (Theorem 2) — an arc carries
//
//	L = d̃(tp)        (the expanded phase duration)
//	H = −β(p,p′)/(qt·ib) (an exact rational)
//
// The H weights are stored in the lcm-free normalization: the paper's
// weight is −β/(q̃t·ĩb) with q̃t·ĩb = qt·ib·lcm(K), and Theorem 3 then
// divides the resulting period by lcm(K) again. Scaling every H of the
// graph by the constant lcm(K) > 0 leaves critical circuits, deadlock
// certificates and Bellman–Ford potentials untouched while making the
// maximum cost-to-time ratio directly equal to the normalized period Ω_G.
// Crucially it also makes every buffer's arc set depend only on the K of
// its two endpoint tasks, which is what lets the builder cache per-buffer
// arc blocks across K-Iter rounds and rebuild only the blocks whose
// endpoint periodicity changed.
type builder struct {
	g      *csdf.Graph
	q      []int64
	K      []int64
	lcmK   *big.Int
	offset []int // node index of ⟨t1,1⟩ per task
	nodes  int
	mg     *mcr.Graph
	seq    bool            // add implicit sequential self-loops
	ctx    context.Context // polled during pair enumeration; nil = never cancelled
	opt    Options         // size budgets, re-checked on every setK

	bufBlocks []arcBlock // per-buffer cached constraint arcs
	seqBlocks []arcBlock // per-task cached sequential arcs (seq only)
	cumI      []int64    // pair-enumeration scratch
	cumO      []int64
	stats     buildStats
}

// buildStats counts the incremental work of the latest build call.
type buildStats struct {
	arcsBuilt  int // arcs recomputed by pair enumeration this round
	arcsReused int // arcs replayed from a previous round's block cache
}

// arcBlock caches the constraint arcs of one buffer (or of one task's
// sequential chain) in block-local coordinates, i.e. as offsets into the
// endpoint tasks' node regions. A block built for the same endpoint K
// values is position-independent: when other tasks' K change, only the
// region offsets move, so the block is replayed by re-basing its arcs.
type arcBlock struct {
	kSrc, kDst int64 // endpoint K values the cache holds arcs for; 0 = empty
	arcs       []blockArc
}

// blockArc is one cached arc: from/to are 0-based expanded-phase offsets
// within the source/destination task regions, h the lcm-free H weight and
// hf its float64 rendering for the MCRP fast path.
type blockArc struct {
	from, to int32
	l        int64
	h        rat.Rat
	hf       float64
}

func newBuilder(g *csdf.Graph, q, K []int64, opt Options) (*builder, error) {
	if err := checkK(g, K); err != nil {
		return nil, err
	}
	b := &builder{
		g:         g,
		q:         q,
		K:         append([]int64(nil), K...),
		seq:       !opt.AutoConcurrency,
		opt:       opt,
		offset:    make([]int, g.NumTasks()+1),
		mg:        mcr.New(0),
		bufBlocks: make([]arcBlock, g.NumBuffers()),
	}
	if b.seq {
		b.seqBlocks = make([]arcBlock, g.NumTasks())
	}
	if err := b.layout(); err != nil {
		return nil, err
	}
	return b, nil
}

func checkK(g *csdf.Graph, K []int64) error {
	if len(K) != g.NumTasks() {
		return fmt.Errorf("kperiodic: K has %d entries for %d tasks", len(K), g.NumTasks())
	}
	for t, k := range K {
		if k <= 0 {
			return fmt.Errorf("kperiodic: K[%d] = %d must be positive", t, k)
		}
	}
	return nil
}

// setK switches the builder to a new periodicity vector. Cached arc
// blocks are untouched: build compares every block's endpoint K values
// against the new vector and recomputes only the stale ones.
func (b *builder) setK(K []int64) error {
	if err := checkK(b.g, K); err != nil {
		return err
	}
	b.K = append(b.K[:0], K...)
	return b.layout()
}

// layout recomputes everything that depends on the whole K vector — the
// size budget, lcm(K), and the task node offsets — and is therefore
// redone on every round regardless of block reuse.
func (b *builder) layout() error {
	g, K := b.g, b.K
	// Size budget: nodes and constraint pairs, checked before any
	// allocation proportional to them.
	var nodes, pairs int64
	for t := 0; t < g.NumTasks(); t++ {
		n, ok := rat.MulCheck(K[t], int64(g.Task(csdf.TaskID(t)).Phases()))
		if !ok {
			return &ErrTooLarge{Nodes: -1}
		}
		nodes, ok = rat.AddCheck(nodes, n)
		if !ok {
			return &ErrTooLarge{Nodes: -1}
		}
	}
	for i := 0; i < g.NumBuffers(); i++ {
		buf := g.Buffer(csdf.BufferID(i))
		nS, okS := rat.MulCheck(K[buf.Src], int64(g.Task(buf.Src).Phases()))
		nD, okD := rat.MulCheck(K[buf.Dst], int64(g.Task(buf.Dst).Phases()))
		p, okP := int64(0), false
		if okS && okD {
			p, okP = rat.MulCheck(nS, nD)
		}
		if !okP {
			return &ErrTooLarge{Nodes: nodes, Pairs: -1}
		}
		pairs, okP = rat.AddCheck(pairs, p)
		if !okP {
			return &ErrTooLarge{Nodes: nodes, Pairs: -1}
		}
	}
	if b.opt.MaxNodes > 0 && nodes > b.opt.MaxNodes {
		return &ErrTooLarge{Nodes: nodes, Pairs: pairs}
	}
	if b.opt.MaxPairs > 0 && pairs > b.opt.MaxPairs {
		return &ErrTooLarge{Nodes: nodes, Pairs: pairs}
	}
	b.nodes = 0
	for t := 0; t < g.NumTasks(); t++ {
		b.offset[t] = b.nodes
		b.nodes += int(K[t]) * g.Task(csdf.TaskID(t)).Phases()
	}
	b.offset[g.NumTasks()] = b.nodes
	if b.lcmK == nil {
		b.lcmK = new(big.Int)
	}
	if l, ok := rat.LcmAll(K...); ok {
		b.lcmK.SetInt64(l)
		return nil
	}
	// lcm(K) left int64; fold it in big arithmetic.
	b.lcmK.SetInt64(1)
	tmp := new(big.Int)
	kb := new(big.Int)
	for _, k := range K {
		kb.SetInt64(k)
		tmp.GCD(nil, nil, b.lcmK, kb)
		b.lcmK.Div(b.lcmK, tmp).Mul(b.lcmK, kb)
	}
	return nil
}

// node returns the bi-valued graph node of ⟨t, p̃⟩ with p̃ 1-based.
func (b *builder) node(t csdf.TaskID, pTilde int) int {
	return b.offset[t] + pTilde - 1
}

// phaseRef inverts node.
func (b *builder) phaseRef(node int) PhaseRef {
	// Binary search over offsets (tasks are few; linear is fine too).
	lo, hi := 0, len(b.offset)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if b.offset[mid] <= node {
			lo = mid
		} else {
			hi = mid
		}
	}
	return PhaseRef{Task: csdf.TaskID(lo), Phase: node - b.offset[lo] + 1}
}

// duration returns d̃(tp̃) = d(t, ((p̃−1) mod ϕ)+1).
func (b *builder) duration(t csdf.TaskID, pTilde int) int64 {
	task := b.g.Task(t)
	return task.Durations[(pTilde-1)%task.Phases()]
}

// build brings the constraint graph up to date with the current K:
// buffer and sequential arc blocks whose endpoint K values are unchanged
// since their last computation are replayed from the cache (re-based on
// the current node offsets); the rest are re-enumerated. The assembled
// arcs land in b.mg, whose arena is pre-sized to the exact total and
// reused across rounds.
func (b *builder) build() error {
	b.stats = buildStats{}
	for i := 0; i < b.g.NumBuffers(); i++ {
		buf := b.g.Buffer(csdf.BufferID(i))
		blk := &b.bufBlocks[i]
		if blk.kSrc == b.K[buf.Src] && blk.kDst == b.K[buf.Dst] {
			b.stats.arcsReused += len(blk.arcs)
			continue
		}
		if err := b.computeBufferBlock(blk, buf); err != nil {
			return err
		}
		b.stats.arcsBuilt += len(blk.arcs)
	}
	if b.seq {
		for t := 0; t < b.g.NumTasks(); t++ {
			blk := &b.seqBlocks[t]
			if blk.kSrc == b.K[t] && blk.kDst == b.K[t] {
				b.stats.arcsReused += len(blk.arcs)
				continue
			}
			b.computeSequentialBlock(blk, csdf.TaskID(t))
			b.stats.arcsBuilt += len(blk.arcs)
		}
	}
	total := 0
	for i := range b.bufBlocks {
		total += len(b.bufBlocks[i].arcs)
	}
	for i := range b.seqBlocks {
		total += len(b.seqBlocks[i].arcs)
	}
	b.mg.Reset(b.nodes)
	b.mg.Reserve(total)
	for i := range b.bufBlocks {
		buf := b.g.Buffer(csdf.BufferID(i))
		b.emit(&b.bufBlocks[i], b.offset[buf.Src], b.offset[buf.Dst])
	}
	for t := range b.seqBlocks {
		b.emit(&b.seqBlocks[t], b.offset[t], b.offset[t])
	}
	return nil
}

// emit replays one block into the constraint graph, re-basing its local
// coordinates on the current task region offsets.
func (b *builder) emit(blk *arcBlock, offSrc, offDst int) {
	for i := range blk.arcs {
		a := &blk.arcs[i]
		b.mg.AddArcHF(offSrc+int(a.from), offDst+int(a.to), a.l, a.h, a.hf)
	}
}

// computeBufferBlock enumerates the useful pairs of one buffer of G̃ into
// its arc block.
//
// With src = t, dst = t′, expanded phase counts ϕ̃ = Kt·ϕ(t) and
// ϕ̃′ = Kt′·ϕ(t′), expanded totals ĩ = Kt·ib and õ = Kt′·ob:
//
//	Q(p,p′)  = O⟨t′p′,1⟩ − I⟨tp,1⟩ − M0 + ĩn(p)
//	α(p,p′)  = ⌈Q − min(ĩn(p), õut(p′))⌉_gcd(ĩ,õ)
//	β(p,p′)  = ⌊Q − 1⌋_gcd(ĩ,õ)
//
// and each pair with α ≤ β yields the arc ⟨tp,1⟩ → ⟨t′p′,1⟩ with
// H = −β/(qt·ib), an int64-backed rational: the denominator is constant
// across the block, so the whole enumeration allocates nothing beyond the
// block's arc slice.
func (b *builder) computeBufferBlock(blk *arcBlock, buf *csdf.Buffer) error {
	src, dst := buf.Src, buf.Dst
	phiS := b.g.Task(src).Phases()
	phiD := b.g.Task(dst).Phases()
	nS := int(b.K[src]) * phiS
	nD := int(b.K[dst]) * phiD
	ib, ob := buf.TotalIn(), buf.TotalOut()

	iTil, ok := rat.MulCheck(b.K[src], ib)
	if !ok {
		return &rat.ErrOverflow{Op: "expanded production total"}
	}
	oTil, ok := rat.MulCheck(b.K[dst], ob)
	if !ok {
		return &rat.ErrOverflow{Op: "expanded consumption total"}
	}
	gcd := rat.Gcd(iTil, oTil)

	// den = qt·ib: the lcm-free H denominator, constant per buffer.
	den, denOK := rat.MulCheck(b.q[src], ib)

	// Cumulative expanded I and O at the first execution of each phase.
	if cap(b.cumI) < nS+1 {
		b.cumI = make([]int64, nS+1)
	}
	cumI := b.cumI[:nS+1] // cumI[p] = Ĩ⟨tp,1⟩
	cumI[0] = 0
	for p := 1; p <= nS; p++ {
		cumI[p] = cumI[p-1] + buf.In[(p-1)%phiS]
	}
	if cap(b.cumO) < nD+1 {
		b.cumO = make([]int64, nD+1)
	}
	cumO := b.cumO[:nD+1]
	cumO[0] = 0
	for p := 1; p <= nD; p++ {
		cumO[p] = cumO[p-1] + buf.Out[(p-1)%phiD]
	}

	blk.kSrc, blk.kDst = 0, 0 // invalid until fully recomputed
	blk.arcs = blk.arcs[:0]
	for p := 1; p <= nS; p++ {
		// One cancellation poll per source phase row: each row costs
		// O(nD) arc insertions, so the poll is amortized while still
		// bounding the latency of a cancel to a single row.
		if b.ctx != nil {
			if err := b.ctx.Err(); err != nil {
				return err
			}
		}
		inP := buf.In[(p-1)%phiS]
		l := b.duration(src, p)
		from := int32(p - 1)
		base := -cumI[p] - buf.Initial + inP
		for pp := 1; pp <= nD; pp++ {
			outP := buf.Out[(pp-1)%phiD]
			q := cumO[pp] + base
			m := inP
			if outP < m {
				m = outP
			}
			alpha := rat.CeilTo(q-m, gcd)
			beta := rat.FloorTo(q-1, gcd)
			if alpha > beta {
				continue
			}
			var h rat.Rat
			if denOK {
				h = rat.NewRat(-beta, den)
			} else {
				num := big.NewInt(-beta)
				d := new(big.Int).Mul(big.NewInt(b.q[src]), big.NewInt(ib))
				h = rat.FromBigInts(num, d)
			}
			blk.arcs = append(blk.arcs, blockArc{
				from: from,
				to:   int32(pp - 1),
				l:    l,
				h:    h,
				hf:   h.Float(),
			})
		}
	}
	blk.kSrc, blk.kDst = b.K[src], b.K[dst]
	return nil
}

// computeSequentialBlock caches the arcs enforcing the ordered,
// non-overlapping execution of a task's phases. These are exactly the
// useful pairs of an implicit self-buffer with unit rates and one initial
// token: an arc p̃ → p̃+1 with β = 0 for consecutive phases, and the
// wrap-around arc ϕ̃ → 1 with β = −ϕ̃, i.e. H = Kt/qt in the lcm-free
// normalization.
func (b *builder) computeSequentialBlock(blk *arcBlock, t csdf.TaskID) {
	phi := b.g.Task(t).Phases()
	n := int(b.K[t]) * phi
	blk.arcs = blk.arcs[:0]
	for p := 1; p < n; p++ {
		blk.arcs = append(blk.arcs, blockArc{
			from: int32(p - 1),
			to:   int32(p),
			l:    b.duration(t, p),
		})
	}
	// Wrap-around: the next periodicity window starts after this one.
	h := rat.NewRat(b.K[t], b.q[t])
	blk.arcs = append(blk.arcs, blockArc{
		from: int32(n - 1),
		to:   0,
		l:    b.duration(t, n),
		h:    h,
		hf:   h.Float(),
	})
	blk.kSrc, blk.kDst = b.K[t], b.K[t]
}
