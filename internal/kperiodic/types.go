// Package kperiodic implements the paper's primary contribution: throughput
// evaluation of Cyclo-Static Dataflow Graphs through K-periodic scheduling
// (Sections 3.1–3.5 of Bodin, Munier-Kordon, Dupont de Dinechin, DAC 2016).
//
// The entry points are:
//
//   - EvaluateK: the minimum period of a K-periodic schedule for a fixed
//     periodicity vector K, via the bi-valued graph / MCRP reduction of
//     Theorems 2 and 3;
//   - Evaluate1: the 1-periodic (periodic) method of [Bodin et al.,
//     ESTIMedia'13], the paper's approximate baseline (K = 1);
//   - Expansion: the classical full-expansion bound (K = q), the optimal
//     baseline the paper compares against;
//   - KIter: Algorithm 1 — iterate EvaluateK, growing K from the critical
//     circuit until the Theorem 4 optimality test passes. The result is the
//     exact maximum throughput of the graph.
//
// Throughput and periods are exact rationals. A graph iteration is the
// execution of every task t exactly qt times; the period Ω is the long-run
// time per graph iteration, and the throughput is 1/Ω.
package kperiodic

import (
	"fmt"
	"math/big"
	"sort"

	"kiter/internal/csdf"
	"kiter/internal/rat"
)

// Options tunes the evaluation.
type Options struct {
	// AutoConcurrency permits several executions of the same task to
	// overlap in time. The paper's model executes the phases of a task in
	// order (Section 2.1); the default (false) enforces this by adding an
	// implicit sequential self-buffer to every task, matching the
	// schedules of Figures 3–5.
	AutoConcurrency bool
	// SkipCertify accepts the float64 MCRP candidate without the exact
	// certification pass. K-Iter always certifies its final answer;
	// intermediate iterations run uncertified regardless.
	SkipCertify bool
	// MaxIterations bounds K-Iter rounds (0 = default 10000).
	MaxIterations int
	// FullUpdate makes K-Iter jump straight to Kt = q̄t-multiples for the
	// whole graph (the expansion ablation) instead of the paper's
	// per-circuit lcm update. Off by default.
	FullUpdate bool
	// MaxNodes, when positive, aborts an evaluation whose expanded
	// bi-valued graph would exceed this node count, with *ErrTooLarge.
	// This is the guard that turns the paper's "> 1 day" cases into a
	// clean report instead of an out-of-memory condition.
	MaxNodes int64
	// MaxPairs, when positive, bounds the number of (p, p′) phase pairs
	// enumerated during constraint generation (the dominating cost).
	MaxPairs int64
}

// ErrTooLarge reports that an expanded bi-valued graph exceeded the
// configured size budget before it could be solved.
type ErrTooLarge struct {
	Nodes, Pairs int64
}

func (e *ErrTooLarge) Error() string {
	return fmt.Sprintf("kperiodic: expanded graph too large (%d nodes, %d phase pairs exceed the configured budget)", e.Nodes, e.Pairs)
}

// PhaseRef identifies a node of the bi-valued graph: an expanded phase of
// a task. Phase is 1-based in 1 … Kt·ϕ(t); OriginalPhase and Repeat recover
// the phase index within an iteration and the iteration index within the
// periodicity window.
type PhaseRef struct {
	Task  csdf.TaskID
	Phase int // expanded phase index, 1-based
}

// Decompose splits the expanded phase index into the original phase
// (1 … ϕ(t)) and the repeat index (1 … Kt), given ϕ(t).
func (p PhaseRef) Decompose(phases int) (origPhase, repeat int) {
	return (p.Phase-1)%phases + 1, (p.Phase-1)/phases + 1
}

// Evaluation is the outcome of a K-periodic throughput evaluation.
type Evaluation struct {
	// K is the periodicity vector used (copy).
	K []int64
	// LcmK is lcm(K).
	LcmK *big.Int
	// Period is Ω_G = Ω_G̃ / lcm(K), the minimum time per graph iteration
	// over all feasible K-periodic schedules (exact).
	Period rat.Rat
	// Throughput is 1/Period, in graph iterations per time unit (exact).
	Throughput rat.Rat
	// Critical is a critical circuit of the bi-valued graph, as expanded
	// phase references in traversal order.
	Critical []PhaseRef
	// CriticalTasks lists the distinct tasks on the critical circuit,
	// sorted by ID.
	CriticalTasks []csdf.TaskID
	// Optimal reports whether the Theorem 4 optimality test passed: the
	// throughput then equals the maximum reachable throughput of G.
	Optimal bool
	// Certified reports whether the MCRP result was exactly certified.
	Certified bool
	// Nodes and Arcs give the bi-valued graph size.
	Nodes, Arcs int
	// HowardIterations counts the policy-improvement rounds the MCRP solver
	// took on the final bi-valued graph.
	HowardIterations int
}

// TaskPeriod returns µt = Ω·Kt/qt, the steady-state period of task t in
// the evaluated schedule (time between execution n and n+Kt of a phase).
func (ev *Evaluation) TaskPeriod(t csdf.TaskID, q []int64) rat.Rat {
	return ev.Period.Mul(rat.NewRat(ev.K[t], q[t]))
}

// String summarizes the evaluation.
func (ev *Evaluation) String() string {
	opt := ""
	if ev.Optimal {
		opt = " (optimal)"
	}
	return fmt.Sprintf("Ω=%s Th=%s K=%v%s", ev.Period, ev.Throughput, ev.K, opt)
}

// DeadlockError reports that no K-periodic schedule exists for the final
// periodicity vector even though the Theorem 4 multiplicity condition holds
// on the infeasible circuit — the sub-graph induced by the circuit's tasks
// can never complete a full iteration: the graph deadlocks.
type DeadlockError struct {
	K     []int64
	Tasks []csdf.TaskID
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("kperiodic: graph deadlocks (certificate circuit over tasks %v at K=%v)", e.Tasks, e.K)
}

// ErrUnbounded is returned when the bi-valued graph has no circuit at all,
// which can only happen with AutoConcurrency: no cyclic dependency bounds
// the throughput.
var ErrUnbounded = fmt.Errorf("kperiodic: throughput unbounded (no circuit in the constraint graph)")

func uniqueTasks(refs []PhaseRef) []csdf.TaskID {
	seen := map[csdf.TaskID]bool{}
	var out []csdf.TaskID
	for _, r := range refs {
		if !seen[r.Task] {
			seen[r.Task] = true
			out = append(out, r.Task)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
