package kperiodic

import (
	"context"
	"fmt"
	"sort"

	"kiter/internal/csdf"
	"kiter/internal/rat"
)

// Schedule is a concrete feasible K-periodic schedule: the start times of
// the first Kt·ϕ(t) executions of every task, plus the per-task period µt.
// Execution ⟨tp, n⟩ with n = α·Kt + β starts at S⟨tp, β⟩ + α·µt
// (Section 2.4).
type Schedule struct {
	K      []int64
	Q      []int64
	Period rat.Rat // Ω_G (graph-iteration period)
	// Starts[t][j] is the start time of expanded phase j+1 of task t
	// (j = (β−1)·ϕ(t) + p − 1).
	Starts [][]rat.Rat
	// Mu[t] is the task period µt = Ω_G·Kt/qt, the time between execution
	// n and n+Kt of any phase of t.
	Mu []rat.Rat

	phases []int
}

// StartOf returns the start time of ⟨t_p, n⟩ for the original phase
// p ∈ 1…ϕ(t) and execution index n ≥ 1.
func (s *Schedule) StartOf(t csdf.TaskID, p int, n int64) rat.Rat {
	kt := s.K[t]
	beta := (n - 1) % kt // 0-based repeat
	alpha := (n - 1) / kt
	idx := int(beta)*s.phases[t] + p - 1
	return s.Starts[t][idx].Add(s.Mu[t].Mul(rat.FromInt(alpha)))
}

// ScheduleK solves the K-periodic scheduling problem for a fixed K and
// materializes an optimal feasible schedule: start times are the exact
// longest-path potentials of the bi-valued graph at the optimal period.
func ScheduleK(g *csdf.Graph, K []int64, opt Options) (*Schedule, error) {
	return ScheduleKCtx(context.Background(), g, K, opt)
}

// ScheduleKCtx is ScheduleK with cancellation.
func ScheduleKCtx(ctx context.Context, g *csdf.Graph, K []int64, opt Options) (*Schedule, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	opt.SkipCertify = false // exact potentials need the exact period
	ev, err := solveK(ctx, g, q, K, opt)
	if err != nil {
		return nil, err
	}
	if ev.deadlock != nil {
		tasks := uniqueTasks(ev.deadlock)
		if optimalityTest(tasks, q, K) {
			return nil, &DeadlockError{K: append([]int64(nil), K...), Tasks: tasks}
		}
		return nil, &ErrInfeasibleK{K: append([]int64(nil), K...), Tasks: tasks}
	}
	b := ev.b
	// Longest-path potentials with arc weights w = L − λ·H, where λ is the
	// optimal ratio in the builder's lcm-free normalization (λ = Ω_G,
	// H = lcm(K)·H̃ — the product λ·H equals Ω̃_G̃·H̃ exactly): at the
	// optimum every circuit has non-positive weight, so Bellman–Ford from
	// an all-zero source converges within n rounds.
	lambda := ev.res.Ratio
	n := b.mg.NumNodes()
	dist := make([]rat.Rat, n)
	for round := 0; round < n; round++ {
		changed := false
		for i := 0; i < b.mg.NumArcs(); i++ {
			a := b.mg.Arc(i)
			w := rat.FromInt(a.L).Sub(lambda.Mul(a.H))
			cand := dist[a.From].Add(w)
			if cand.Cmp(dist[a.To]) > 0 {
				dist[a.To] = cand
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	sch := &Schedule{
		K:      append([]int64(nil), K...),
		Q:      q,
		Period: ev.toEvaluation().Period,
		Starts: make([][]rat.Rat, g.NumTasks()),
		Mu:     make([]rat.Rat, g.NumTasks()),
		phases: make([]int, g.NumTasks()),
	}
	for t := 0; t < g.NumTasks(); t++ {
		sch.phases[t] = g.Task(csdf.TaskID(t)).Phases()
		cnt := int(K[t]) * sch.phases[t]
		sch.Starts[t] = make([]rat.Rat, cnt)
		for j := 0; j < cnt; j++ {
			sch.Starts[t][j] = dist[b.node(csdf.TaskID(t), j+1)]
		}
		sch.Mu[t] = sch.Period.Mul(rat.NewRat(K[t], q[t]))
	}
	return sch, nil
}

// Validate replays the schedule over the given number of graph iterations
// and verifies that no buffer marking ever goes negative (consumption at
// execution start, production at completion, simultaneous productions
// applied first) and — under the default sequential semantics — that each
// task's executions do not overlap. It returns nil when the prefix is
// feasible.
func (s *Schedule) Validate(g *csdf.Graph, iterations int64) error {
	type event struct {
		time    rat.Rat
		produce bool
		buf     csdf.BufferID
		amount  int64
	}
	var events []event
	for _, b := range g.Buffers() {
		src, dst := b.Src, b.Dst
		srcPhases := g.Task(src).Phases()
		dstPhases := g.Task(dst).Phases()
		nSrc := iterations * s.Q[src]
		for n := int64(1); n <= nSrc; n++ {
			for p := 1; p <= srcPhases; p++ {
				if b.In[p-1] == 0 {
					continue
				}
				end := s.StartOf(src, p, n).Add(rat.FromInt(g.Task(src).Durations[p-1]))
				events = append(events, event{time: end, produce: true, buf: b.ID, amount: b.In[p-1]})
			}
		}
		nDst := iterations * s.Q[dst]
		for n := int64(1); n <= nDst; n++ {
			for p := 1; p <= dstPhases; p++ {
				if b.Out[p-1] == 0 {
					continue
				}
				start := s.StartOf(dst, p, n)
				events = append(events, event{time: start, produce: false, buf: b.ID, amount: b.Out[p-1]})
			}
		}
	}
	// Sort by time; productions before consumptions at equal times (a
	// token produced at t may be read by an execution starting at t,
	// matching the ≥ in Theorem 2).
	sort.Slice(events, func(i, j int) bool {
		c := events[i].time.Cmp(events[j].time)
		if c != 0 {
			return c < 0
		}
		return events[i].produce && !events[j].produce
	})
	tokens := make([]int64, g.NumBuffers())
	for i, b := range g.Buffers() {
		tokens[i] = b.Initial
	}
	for _, ev := range events {
		if ev.produce {
			tokens[ev.buf] += ev.amount
		} else {
			tokens[ev.buf] -= ev.amount
			if tokens[ev.buf] < 0 {
				return fmt.Errorf("kperiodic: schedule infeasible: buffer %s negative (%d) at t=%s",
					g.Buffer(ev.buf).Name, tokens[ev.buf], ev.time)
			}
		}
	}
	// Non-overlap per task.
	for t := 0; t < g.NumTasks(); t++ {
		task := g.Task(csdf.TaskID(t))
		var prevEnd rat.Rat
		first := true
		total := iterations * s.Q[t]
		for n := int64(1); n <= total; n++ {
			for p := 1; p <= task.Phases(); p++ {
				st := s.StartOf(csdf.TaskID(t), p, n)
				if !first && st.Cmp(prevEnd) < 0 {
					return fmt.Errorf("kperiodic: schedule overlaps: task %s phase %d execution %d starts at %s before previous end %s",
						task.Name, p, n, st, prevEnd)
				}
				prevEnd = st.Add(rat.FromInt(task.Durations[p-1]))
				first = false
			}
		}
	}
	return nil
}
