package kperiodic_test

import (
	"errors"
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
)

func mustEval1(t *testing.T, g *csdf.Graph) *kperiodic.Evaluation {
	t.Helper()
	ev, err := kperiodic.Evaluate1(g, kperiodic.Options{})
	if err != nil {
		t.Fatalf("Evaluate1(%s): %v", g.Name, err)
	}
	return ev
}

func mustKIter(t *testing.T, g *csdf.Graph) *kperiodic.KIterResult {
	t.Helper()
	res, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatalf("KIter(%s): %v", g.Name, err)
	}
	return res
}

func TestFigure2Anchors(t *testing.T) {
	g := gen.Figure2()
	e1 := mustEval1(t, g)
	if e1.Period.String() != "18" {
		t.Errorf("1-periodic Ω = %s, want 18", e1.Period)
	}
	res := mustKIter(t, g)
	if res.Period.String() != "13" {
		t.Errorf("optimal Ω = %s, want 13", res.Period)
	}
	if !res.Optimal || !res.Certified {
		t.Errorf("optimal=%v certified=%v, want true,true", res.Optimal, res.Certified)
	}
	if res.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", res.Iterations)
	}
	// The K=1 critical circuit passes through tasks A, C, D (IDs 0,2,3),
	// matching the Figure 5 caption's circuit {A1, D1, C1}.
	first := res.Trace[0]
	want := []csdf.TaskID{0, 2, 3}
	if len(first.CriticalTasks) != len(want) {
		t.Fatalf("K=1 critical tasks = %v, want %v", first.CriticalTasks, want)
	}
	for i := range want {
		if first.CriticalTasks[i] != want[i] {
			t.Fatalf("K=1 critical tasks = %v, want %v", first.CriticalTasks, want)
		}
	}
	// The final K equals the repetition vector on this instance.
	q, _ := g.RepetitionVector()
	for i := range q {
		if res.K[i] != q[i] {
			t.Errorf("final K = %v, want q = %v", res.K, q)
			break
		}
	}
}

func TestFigure2ExpansionAgrees(t *testing.T) {
	g := gen.Figure2()
	exp, err := kperiodic.Expansion(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := mustKIter(t, g)
	if exp.Period.Cmp(res.Period) != 0 {
		t.Errorf("expansion Ω = %s, K-Iter Ω = %s", exp.Period, res.Period)
	}
	if !exp.Optimal {
		t.Error("expansion result not optimal")
	}
}

func TestTwoTaskChain(t *testing.T) {
	g := gen.TwoTaskChain(2, 3)
	res := mustKIter(t, g)
	// Sequential tasks, no feedback: the slowest task bounds the period.
	if res.Period.String() != "3" {
		t.Errorf("Ω = %s, want 3", res.Period)
	}
	if res.Throughput.String() != "1/3" {
		t.Errorf("throughput = %s, want 1/3", res.Throughput)
	}
}

func TestHSDFRingOracle(t *testing.T) {
	cases := []struct {
		n      int
		durs   []int64
		tokens int64
		want   string // max(Σd/tokens, max d)
	}{
		{4, []int64{1}, 2, "2"},       // 4/2
		{4, []int64{1}, 1, "4"},       // 4/1
		{3, []int64{2, 3, 1}, 1, "6"}, /* 6/1 */
		{3, []int64{2, 3, 1}, 2, "3"}, // max(3, 3)
		{3, []int64{2, 3, 1}, 6, "3"}, // task bound d=3
		{5, []int64{1, 1}, 3, "5/3"},  // 5/3 > 1
		{2, []int64{10, 1}, 4, "10"},  // task bound
		{6, []int64{1}, 5, "6/5"},     // 6/5
		{7, []int64{2}, 3, "14/3"},    // 14/3 > 2
		{3, []int64{0, 0, 0}, 1, "0"}, // zero-duration ring
	}
	for _, c := range cases {
		g := gen.HSDFRing(c.n, c.durs, c.tokens)
		res := mustKIter(t, g)
		if res.Period.String() != c.want {
			t.Errorf("ring(n=%d,d=%v,m=%d): Ω = %s, want %s",
				c.n, c.durs, c.tokens, res.Period, c.want)
		}
	}
}

func TestPeriodic1IsUpperBound(t *testing.T) {
	graphs := []*csdf.Graph{
		gen.Figure2(),
		gen.MultiRateCycle(),
		gen.CyclicCSDF(),
		gen.HSDFRing(4, []int64{1, 2}, 2),
		gen.SampleRateConverter(),
	}
	for _, g := range graphs {
		e1 := mustEval1(t, g)
		opt := mustKIter(t, g)
		if e1.Period.Cmp(opt.Period) < 0 {
			t.Errorf("%s: 1-periodic Ω %s < optimal Ω %s (impossible)",
				g.Name, e1.Period, opt.Period)
		}
	}
}

func TestKIterMatchesExpansionEverywhere(t *testing.T) {
	graphs := []*csdf.Graph{
		gen.Figure2(),
		gen.MultiRateCycle(),
		gen.CyclicCSDF(),
		gen.UpDownSampler(3, 2),
		gen.SampleRateConverter(),
	}
	for _, g := range graphs {
		opt := mustKIter(t, g)
		exp, err := kperiodic.Expansion(g, kperiodic.Options{})
		if err != nil {
			t.Fatalf("%s: expansion: %v", g.Name, err)
		}
		if opt.Period.Cmp(exp.Period) != 0 {
			t.Errorf("%s: K-Iter Ω = %s ≠ expansion Ω = %s",
				g.Name, opt.Period, exp.Period)
		}
	}
}

func TestTaskBoundRespected(t *testing.T) {
	// With sequential phases, Ω ≥ qt · Σd(t) for every task.
	graphs := []*csdf.Graph{gen.Figure2(), gen.MultiRateCycle(), gen.CyclicCSDF()}
	for _, g := range graphs {
		res := mustKIter(t, g)
		q, err := g.RepetitionVector()
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range g.Tasks() {
			bound := rat.FromInt(q[task.ID] * task.TotalDuration())
			if res.Period.Cmp(bound) < 0 {
				t.Errorf("%s: Ω = %s below task bound %s of %s",
					g.Name, res.Period, bound, task.Name)
			}
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	g := gen.DeadlockedRing()
	_, err := kperiodic.KIter(g, kperiodic.Options{})
	var de *kperiodic.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Tasks) == 0 || de.Error() == "" {
		t.Error("deadlock certificate is empty")
	}
}

func TestCapacityConstrainedRing(t *testing.T) {
	// A→B with dA=2, dB=3 and buffer capacity C: the reverse-buffer
	// encoding creates a ring with C tokens, so Ω = max(5/C, 3).
	for _, c := range []struct {
		cap  int64
		want string
	}{{1, "5"}, {2, "3"}, {5, "3"}} {
		g := gen.TwoTaskChain(2, 3)
		g.SetCapacity(0, c.cap)
		bounded, err := g.WithCapacities()
		if err != nil {
			t.Fatal(err)
		}
		res := mustKIter(t, bounded)
		if res.Period.String() != c.want {
			t.Errorf("capacity %d: Ω = %s, want %s", c.cap, res.Period, c.want)
		}
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	// Larger buffers can only improve (reduce) the period.
	g := gen.MultiRateCycle()
	var prev rat.Rat
	first := true
	for capScale := int64(1); capScale <= 4; capScale++ {
		bounded, err := g.ScaleCapacities(capScale).WithCapacities()
		if err != nil {
			t.Fatal(err)
		}
		res, err := kperiodic.KIter(bounded, kperiodic.Options{})
		if err != nil {
			// Tiny capacities may deadlock; that is fine as long as
			// larger ones succeed.
			var de *kperiodic.DeadlockError
			if errors.As(err, &de) {
				continue
			}
			t.Fatal(err)
		}
		if !first && res.Period.Cmp(prev) > 0 {
			t.Errorf("period grew from %s to %s when scaling capacities to %d",
				prev, res.Period, capScale)
		}
		prev, first = res.Period, false
	}
	if first {
		t.Fatal("no capacity scale admitted a schedule")
	}
}

func TestAutoConcurrencyUnbounded(t *testing.T) {
	// Without sequential self-loops an acyclic graph has no circuit.
	g := gen.TwoTaskChain(2, 3)
	_, err := kperiodic.KIter(g, kperiodic.Options{AutoConcurrency: true})
	if !errors.Is(err, kperiodic.ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestAutoConcurrencyNeverSlower(t *testing.T) {
	graphs := []*csdf.Graph{gen.Figure2(), gen.MultiRateCycle(), gen.CyclicCSDF()}
	for _, g := range graphs {
		seq := mustKIter(t, g)
		conc, err := kperiodic.KIter(g, kperiodic.Options{AutoConcurrency: true})
		if errors.Is(err, kperiodic.ErrUnbounded) {
			// Legitimate: with unbounded re-entrancy and enough initial
			// tokens, overlapping executions pipeline without limit and
			// no cyclic constraint survives at larger K.
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if conc.Period.Cmp(seq.Period) > 0 {
			t.Errorf("%s: auto-concurrency period %s exceeds sequential %s",
				g.Name, conc.Period, seq.Period)
		}
	}
}

func TestEvaluateKExplicitVectors(t *testing.T) {
	g := gen.Figure2()
	// Growing K must never increase the optimal period (larger schedule
	// space). Check along the actual K-Iter trajectory.
	res := mustKIter(t, g)
	var prev rat.Rat
	for i, step := range res.Trace {
		if step.Infeasible {
			continue
		}
		if i > 0 && step.Period.Cmp(prev) > 0 {
			t.Errorf("step %d: period grew from %s to %s", i, prev, step.Period)
		}
		prev = step.Period
	}
	// And EvaluateK on the final K reproduces the optimum.
	ev, err := kperiodic.EvaluateK(g, res.K, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Period.Cmp(res.Period) != 0 {
		t.Errorf("EvaluateK(final K) = %s, want %s", ev.Period, res.Period)
	}
	if !ev.Optimal {
		t.Error("EvaluateK(final K) not optimal")
	}
}

func TestEvaluationAccessors(t *testing.T) {
	g := gen.Figure2()
	res := mustKIter(t, g)
	q, _ := g.RepetitionVector()
	mu := res.TaskPeriod(0, q) // µA = Ω·K_A/q_A
	want := res.Period.Mul(rat.NewRat(res.K[0], q[0]))
	if mu.Cmp(want) != 0 {
		t.Errorf("TaskPeriod = %s, want %s", mu, want)
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
	if res.Nodes == 0 || res.Arcs == 0 {
		t.Error("bi-valued graph size not reported")
	}
}

func TestFullUpdateAblationAgrees(t *testing.T) {
	graphs := []*csdf.Graph{gen.Figure2(), gen.MultiRateCycle(), gen.CyclicCSDF()}
	for _, g := range graphs {
		a := mustKIter(t, g)
		b, err := kperiodic.KIter(g, kperiodic.Options{FullUpdate: true})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if a.Period.Cmp(b.Period) != 0 {
			t.Errorf("%s: lcm-update Ω = %s ≠ full-update Ω = %s",
				g.Name, a.Period, b.Period)
		}
		if b.Iterations > a.Iterations+2 {
			t.Errorf("%s: full update took more iterations (%d vs %d)",
				g.Name, b.Iterations, a.Iterations)
		}
	}
}

func TestKIterOnInconsistentGraph(t *testing.T) {
	g := csdf.NewGraph("bad")
	a := g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 1)
	g.AddSDFBuffer("x", a, b, 1, 1, 0)
	g.AddSDFBuffer("y", a, b, 2, 1, 0)
	if _, err := kperiodic.KIter(g, kperiodic.Options{}); err == nil {
		t.Error("inconsistent graph accepted")
	}
}

func TestSelfLoopTaskOnly(t *testing.T) {
	// A single task alone: its sequential loop bounds the period at
	// q·Σd = Σd.
	g := csdf.NewGraph("solo")
	g.AddTask("a", []int64{2, 5})
	res := mustKIter(t, g)
	if res.Period.String() != "7" {
		t.Errorf("Ω = %s, want 7", res.Period)
	}
	if !res.Optimal {
		t.Error("single-task circuit should certify optimal")
	}
}
