// Package sizing explores the throughput/buffering trade-off for CSDF
// graphs — the application domain of Stuijk et al. [16] that motivates the
// paper's fixed-buffer-size experiments (Table 2). It is built entirely on
// the public machinery of this repository: the reverse-buffer capacity
// encoding (csdf.WithCapacities), exact K-periodic throughput evaluation
// (kperiodic.KIter) and schedule backlog measurement (sched.BufferBacklog).
package sizing

import (
	"context"
	"errors"
	"fmt"

	"kiter/internal/csdf"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
	"kiter/internal/sched"
)

// Point is one sample of the throughput/buffering trade-off curve.
type Point struct {
	// Scale is the capacity slack factor applied to every buffer.
	Scale int64
	// TotalCapacity is the summed capacity over all buffers.
	TotalCapacity int64
	// Period is the exact optimal period at these capacities; the zero
	// Rat with Deadlocked=true means no schedule exists.
	Period     rat.Rat
	Deadlocked bool
}

// TradeOff evaluates the optimal period of g under uniformly scaled buffer
// capacities for every scale in scales (ascending recommended). The
// unbounded graph must be live.
func TradeOff(g *csdf.Graph, scales []int64, opt kperiodic.Options) ([]Point, error) {
	var out []Point
	for _, s := range scales {
		bounded, err := g.ScaleCapacities(s).WithCapacities()
		if err != nil {
			return nil, err
		}
		p := Point{Scale: s}
		for _, b := range g.Buffers() {
			p.TotalCapacity += s*(b.TotalIn()+b.TotalOut()) + b.Initial
		}
		res, err := kperiodic.KIter(bounded, opt)
		var de *kperiodic.DeadlockError
		switch {
		case err == nil:
			p.Period = res.Period
		case errors.As(err, &de):
			p.Deadlocked = true
		default:
			return nil, fmt.Errorf("sizing: scale %d: %w", s, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// OptimalCapacities returns per-buffer capacities that preserve the
// unbounded graph's exact maximum throughput, together with that optimal
// period. The capacities are the peak storage of an optimal K-periodic
// schedule (measured over a window of graph iterations with one extra
// warm-up iteration for safety), so they are feasible by construction —
// generally much tighter than worst-case bounds.
func OptimalCapacities(g *csdf.Graph, opt kperiodic.Options) ([]int64, rat.Rat, error) {
	return OptimalCapacitiesCtx(context.Background(), g, opt)
}

// OptimalCapacitiesCtx is OptimalCapacities with cancellation (through the
// underlying K-Iter and schedule construction).
func OptimalCapacitiesCtx(ctx context.Context, g *csdf.Graph, opt kperiodic.Options) ([]int64, rat.Rat, error) {
	res, err := kperiodic.KIterCtx(ctx, g, opt)
	if err != nil {
		return nil, rat.Rat{}, err
	}
	s, err := kperiodic.ScheduleKCtx(ctx, g, res.K, opt)
	if err != nil {
		return nil, rat.Rat{}, err
	}
	peaks := sched.BufferBacklog(g, s, 3)
	return peaks, res.Period, nil
}

// MinUniformScale performs a dichotomic search for the smallest capacity
// slack factor in [1, maxScale] whose optimal period is at most target.
// It returns the scale, or an error when even maxScale misses the target.
func MinUniformScale(g *csdf.Graph, target rat.Rat, maxScale int64, opt kperiodic.Options) (int64, error) {
	meets := func(s int64) (bool, error) {
		bounded, err := g.ScaleCapacities(s).WithCapacities()
		if err != nil {
			return false, err
		}
		res, err := kperiodic.KIter(bounded, opt)
		var de *kperiodic.DeadlockError
		if errors.As(err, &de) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		return res.Period.Cmp(target) <= 0, nil
	}
	ok, err := meets(maxScale)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("sizing: no scale ≤ %d reaches period %s", maxScale, target)
	}
	lo, hi := int64(1), maxScale // invariant: hi meets the target
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}

// ApplyCapacities clones g, sets the given per-buffer capacities and
// returns the reverse-buffer-encoded graph ready for analysis.
func ApplyCapacities(g *csdf.Graph, caps []int64) (*csdf.Graph, error) {
	if len(caps) != g.NumBuffers() {
		return nil, fmt.Errorf("sizing: %d capacities for %d buffers", len(caps), g.NumBuffers())
	}
	sized := g.Clone()
	for i, c := range caps {
		sized.SetCapacity(csdf.BufferID(i), c)
	}
	return sized.WithCapacities()
}
