package sizing_test

import (
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
	"kiter/internal/sizing"
)

func TestTradeOffMonotone(t *testing.T) {
	g := gen.Figure2()
	points, err := sizing.TradeOff(g, []int64{1, 2, 3, 4}, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Deadlocked {
			if !points[i-1].Deadlocked {
				t.Errorf("scale %d deadlocks though smaller scale %d does not",
					points[i].Scale, points[i-1].Scale)
			}
			continue
		}
		if points[i-1].Deadlocked {
			continue
		}
		if points[i].Period.Cmp(points[i-1].Period) > 0 {
			t.Errorf("period grew with capacity: scale %d → %s, scale %d → %s",
				points[i-1].Scale, points[i-1].Period, points[i].Scale, points[i].Period)
		}
		if points[i].TotalCapacity <= points[i-1].TotalCapacity {
			t.Error("total capacity not increasing with scale")
		}
	}
}

func TestTradeOffConvergesToUnbounded(t *testing.T) {
	g := gen.MultiRateCycle()
	unbounded, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	points, err := sizing.TradeOff(g, []int64{1, 2, 4, 8, 16}, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.Deadlocked {
		t.Fatal("largest scale deadlocked")
	}
	if last.Period.Cmp(unbounded.Period) != 0 {
		t.Errorf("large-capacity period %s ≠ unbounded optimum %s",
			last.Period, unbounded.Period)
	}
}

func TestOptimalCapacitiesPreserveThroughput(t *testing.T) {
	graphs := []*csdf.Graph{gen.Figure2(), gen.MultiRateCycle(), gen.CyclicCSDF()}
	for _, g := range graphs {
		caps, period, err := sizing.OptimalCapacities(g, kperiodic.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		bounded, err := sizing.ApplyCapacities(g, caps)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		res, err := kperiodic.KIter(bounded, kperiodic.Options{})
		if err != nil {
			t.Fatalf("%s: bounded graph unschedulable: %v", g.Name, err)
		}
		if res.Period.Cmp(period) != 0 {
			t.Errorf("%s: bounded Ω = %s, want unbounded optimum %s",
				g.Name, res.Period, period)
		}
	}
}

func TestOptimalCapacitiesRandomGraphs(t *testing.T) {
	for seed := int64(200); seed < 212; seed++ {
		g, err := gen.RandomSmall(seed)
		if err != nil {
			t.Fatal(err)
		}
		caps, period, err := sizing.OptimalCapacities(g, kperiodic.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bounded, err := sizing.ApplyCapacities(g, caps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := kperiodic.KIter(bounded, kperiodic.Options{})
		if err != nil {
			t.Fatalf("seed %d: bounded unschedulable: %v", seed, err)
		}
		if res.Period.Cmp(period) != 0 {
			t.Errorf("seed %d: bounded Ω = %s ≠ %s", seed, res.Period, period)
		}
	}
}

func TestMinUniformScale(t *testing.T) {
	g := gen.MultiRateCycle()
	unbounded, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The unbounded optimum must be reachable at some finite scale.
	s, err := sizing.MinUniformScale(g, unbounded.Period, 64, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 || s > 64 {
		t.Fatalf("scale = %d out of range", s)
	}
	// Scale s meets the target; if s > 1, scale s−1 must not.
	bounded, err := g.ScaleCapacities(s).WithCapacities()
	if err != nil {
		t.Fatal(err)
	}
	res, err := kperiodic.KIter(bounded, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Period.Cmp(unbounded.Period) > 0 {
		t.Errorf("scale %d period %s misses target %s", s, res.Period, unbounded.Period)
	}
	if s > 1 {
		smaller, err := g.ScaleCapacities(s - 1).WithCapacities()
		if err != nil {
			t.Fatal(err)
		}
		sres, err := kperiodic.KIter(smaller, kperiodic.Options{})
		if err == nil && sres.Period.Cmp(unbounded.Period) <= 0 {
			t.Errorf("scale %d already meets the target; %d is not minimal", s-1, s)
		}
	}
}

func TestMinUniformScaleUnreachable(t *testing.T) {
	g := gen.MultiRateCycle()
	// Period 0 cannot be reached with positive durations.
	if _, err := sizing.MinUniformScale(g, rat.Rat{}, 8, kperiodic.Options{}); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestApplyCapacitiesLengthCheck(t *testing.T) {
	g := gen.Figure2()
	if _, err := sizing.ApplyCapacities(g, []int64{1, 2}); err == nil {
		t.Error("wrong capacity count accepted")
	}
}
