package cluster

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDefaultClientTransportSizedToWorkers pins the regression where the
// default forwarding client was a bare http.Client inheriting
// DefaultTransport's MaxIdleConnsPerHost of 2: with a W-worker engine
// forwarding concurrently to one owner, every request past 2 in flight
// paid a fresh dial and left a TIME_WAIT socket behind.
func TestDefaultClientTransportSizedToWorkers(t *testing.T) {
	cfg := Config{Self: "a:1", Peers: []string{"b:1", "c:1"}, Workers: 32}.withDefaults()
	tr, ok := cfg.Client.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T, want *http.Transport", cfg.Client.Transport)
	}
	if tr.MaxIdleConnsPerHost < 32 {
		t.Fatalf("MaxIdleConnsPerHost = %d, want >= Workers (32)", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < tr.MaxIdleConnsPerHost*2 {
		t.Fatalf("MaxIdleConns = %d cannot hold %d idle conns for 2 peers",
			tr.MaxIdleConns, tr.MaxIdleConnsPerHost*2)
	}
	if tr.IdleConnTimeout <= 0 || tr.TLSHandshakeTimeout <= 0 {
		t.Fatalf("transport missing timeouts: idle=%v tls=%v", tr.IdleConnTimeout, tr.TLSHandshakeTimeout)
	}

	// An explicit client (tests, custom TLS) still wins.
	custom := &http.Client{}
	if got := (Config{Self: "a:1", Client: custom}).withDefaults().Client; got != custom {
		t.Fatal("explicit Client overridden by default transport")
	}
}

// TestForwardConnectionReuse drives the cluster's default client with
// rounds of concurrent requests against one host — the forwarding pattern
// of a sweep fanning out to its owner replica — and asserts the server
// sees at most one TCP connection per concurrent slot across all rounds.
// Under the old bare client only 2 idle connections survived between
// rounds, so every later round dialed ~(concurrency-2) fresh connections.
func TestForwardConnectionReuse(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, "{}")
	}))
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	const concurrency, rounds = 8, 5
	cfg := Config{Self: "self:1", Workers: concurrency}.withDefaults()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := cfg.Client.Post(ts.URL, "application/json", strings.NewReader(`{}`))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
		}
		wg.Wait()
	}
	if got := conns.Load(); got > concurrency {
		t.Fatalf("server saw %d connections for %d rounds × %d concurrent requests; "+
			"want <= %d (connection churn)", got, rounds, concurrency, concurrency)
	}
}
