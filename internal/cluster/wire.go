package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"

	"kiter/internal/engine"
	"kiter/internal/resultcodec"
	"kiter/internal/sdf3x"
)

// wireRequest is the body of POST /cluster/evaluate: the original graph in
// the repository's JSON format plus the normalized request knobs, so the
// receiving engine prepares the job exactly as a direct submission and
// lands on the same cache key — that shared key is what makes the owner's
// singleflight and memo cache deduplicate across the whole fleet.
type wireRequest struct {
	Graph      json.RawMessage `json:"graph"`
	Analyses   []string        `json:"analyses,omitempty"`
	Method     string          `json:"method,omitempty"`
	Capacities bool            `json:"capacities,omitempty"`
	NoCache    bool            `json:"noCache,omitempty"`
}

// encodeJob serializes a dispatch job for the forward hop.
func encodeJob(job *engine.DispatchJob) ([]byte, error) {
	var g bytes.Buffer
	if err := sdf3x.WriteJSON(&g, job.Graph); err != nil {
		return nil, fmt.Errorf("cluster: encoding graph: %w", err)
	}
	wr := wireRequest{
		Graph:      g.Bytes(),
		Method:     string(job.Method),
		Capacities: job.ApplyCapacities,
		NoCache:    job.NoCache,
	}
	for _, a := range job.Analyses {
		wr.Analyses = append(wr.Analyses, string(a))
	}
	return json.Marshal(wr)
}

// decodeRequest parses a forwarded body back into an engine request. The
// envelope is decoded strictly — a field this replica does not know means
// a version skew worth failing loudly (the sender then falls back to local
// evaluation) rather than silently dropping a knob.
func decodeRequest(body []byte) (*engine.Request, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var wr wireRequest
	if err := dec.Decode(&wr); err != nil {
		return nil, fmt.Errorf("cluster: decoding request: %w", err)
	}
	g, err := sdf3x.ReadJSON(bytes.NewReader(wr.Graph))
	if err != nil {
		return nil, fmt.Errorf("cluster: decoding graph: %w", err)
	}
	req := &engine.Request{
		Graph:           g,
		Method:          engine.Method(wr.Method),
		ApplyCapacities: wr.Capacities,
		NoCache:         wr.NoCache,
		// One hop only: the owner evaluates even if its own ring view says
		// someone else should (health views can diverge transiently).
		NoForward: true,
	}
	for _, a := range wr.Analyses {
		req.Analyses = append(req.Analyses, engine.AnalysisKind(a))
	}
	return req, nil
}

// decodeResult parses the owner's reply and normalizes the per-submission
// fields: the forwarding engine re-applies its own graph name and dedup
// flags, and CacheHit/Peer describe the remote serve, not the local one.
func decodeResult(body []byte, peer string) (*engine.Result, error) {
	var res engine.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("cluster: decoding result: %w", err)
	}
	return normalizeRemote(&res, peer), nil
}

// decodeBinaryResult is decodeResult for resultcodec replies — the
// negotiated fast path on /cluster/evaluate and the only encoding of the
// cache tier.
func decodeBinaryResult(body []byte, peer string) (*engine.Result, error) {
	res, err := resultcodec.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("cluster: decoding result: %w", err)
	}
	return normalizeRemote(res, peer), nil
}

// normalizeRemote strips the sender's per-submission fields and stamps the
// result's fleet origin.
func normalizeRemote(res *engine.Result, peer string) *engine.Result {
	res.Graph = ""
	res.CacheHit = false
	res.Deduped = false
	res.Peer = peer
	return res
}
