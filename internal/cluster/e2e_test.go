package cluster

import (
	"context"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"kiter/internal/engine"
	"kiter/internal/gen"
	"kiter/internal/sweep"
)

// replica is one in-process kiterd stand-in: engine + cluster + the two
// HTTP endpoints the cluster layer relies on.
type replica struct {
	addr string
	eng  *engine.Engine
	cl   *Cluster
	srv  *http.Server
}

// startFleet boots n replicas on loopback ports, each clustered with all
// the others, mirroring `kiterd -peers` wiring.
func startFleet(t *testing.T, n int) []*replica {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	reps := make([]*replica, n)
	for i := range reps {
		cl, err := New(Config{
			Self:             addrs[i],
			Peers:            addrs, // self is filtered out
			ForwardTimeout:   10 * time.Second,
			ProbeInterval:    20 * time.Millisecond,
			MaxProbeInterval: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", addrs[i], err)
		}
		eng := engine.New(engine.Config{Workers: 2, Dispatcher: cl})
		mux := http.NewServeMux()
		mux.Handle("/cluster/evaluate", cl.EvaluateHandler(eng, 30*time.Second))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(lns[i])
		reps[i] = &replica{addr: addrs[i], eng: eng, cl: cl, srv: srv}
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.srv.Close()
		}
		for _, r := range reps {
			r.eng.Close()
		}
		for _, r := range reps {
			r.cl.Close()
		}
	})
	return reps
}

// testSpec is the sweep fixture shared by the e2e tests: 5×5 scenarios of
// the parametric video pipeline, single-method so evaluation counts are
// exact.
func testSpec(t *testing.T) *sweep.Expansion {
	t.Helper()
	spec := sweep.VideoPipelineSpec(5, 5)
	spec.Method = string(engine.MethodKIter)
	x, err := sweep.Compile(spec, false)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return x
}

func runSweep(t *testing.T, e *engine.Engine, x *sweep.Expansion) *sweep.Envelope {
	t.Helper()
	r := sweep.Runner{Engine: e, PointTimeout: 30 * time.Second}
	env, err := r.Run(context.Background(), x, nil)
	if err != nil {
		t.Fatalf("sweep run: %v", err)
	}
	return env
}

// requireSameEnvelope compares everything deterministic about two sweep
// envelopes (counters, extremes, argmin/argmax, the Pareto front) while
// ignoring wall-clock and engine-stats noise.
func requireSameEnvelope(t *testing.T, got, want *sweep.Envelope) {
	t.Helper()
	if got.Scenarios != want.Scenarios || got.Completed != want.Completed ||
		got.Failed != want.Failed || got.AnalysisErrors != want.AnalysisErrors {
		t.Fatalf("envelope counters diverge: got %d/%d/%d/%d, want %d/%d/%d/%d",
			got.Scenarios, got.Completed, got.Failed, got.AnalysisErrors,
			want.Scenarios, want.Completed, want.Failed, want.AnalysisErrors)
	}
	if got.MinThroughput != want.MinThroughput || got.MaxThroughput != want.MaxThroughput ||
		got.MinPeriod != want.MinPeriod || got.MaxPeriod != want.MaxPeriod {
		t.Fatalf("envelope extremes diverge: got [%s, %s], want [%s, %s]",
			got.MinThroughput, got.MaxThroughput, want.MinThroughput, want.MaxThroughput)
	}
	if got.ArgMinIndex != want.ArgMinIndex || got.ArgMaxIndex != want.ArgMaxIndex {
		t.Fatalf("arg extremes diverge: got %d/%d, want %d/%d",
			got.ArgMinIndex, got.ArgMaxIndex, want.ArgMinIndex, want.ArgMaxIndex)
	}
	if len(got.Pareto) != len(want.Pareto) {
		t.Fatalf("pareto sizes diverge: %d vs %d", len(got.Pareto), len(want.Pareto))
	}
	for i := range got.Pareto {
		g, w := got.Pareto[i], want.Pareto[i]
		if g.Scenario != w.Scenario || g.Axis != w.Axis || g.Throughput != w.Throughput {
			t.Fatalf("pareto[%d] diverges: %+v vs %+v", i, g, w)
		}
	}
}

func fleetEvaluations(reps []*replica) uint64 {
	var total uint64
	for _, r := range reps {
		total += r.eng.Stats().Evaluations
	}
	return total
}

// TestClusterSweepMatchesSingleNode: the same sweep through a 3-replica
// fleet and through a standalone engine must fold to the identical
// envelope, with a real share of the work forwarded to (and served by)
// peers.
func TestClusterSweepMatchesSingleNode(t *testing.T) {
	single := engine.New(engine.Config{Workers: 2})
	defer single.Close()
	want := runSweep(t, single, testSpec(t))

	reps := startFleet(t, 3)
	got := runSweep(t, reps[0].eng, testSpec(t))
	requireSameEnvelope(t, got, want)

	s0 := reps[0].eng.Stats()
	if s0.RemoteResults == 0 {
		t.Fatalf("no job was answered remotely: %+v", s0)
	}
	var forwarded, served uint64
	for _, p := range s0.Cluster {
		forwarded += p.Forwarded
		if p.FailedOver != 0 {
			t.Fatalf("healthy fleet failed over: %+v", s0.Cluster)
		}
	}
	for _, r := range reps[1:] {
		for _, p := range r.eng.Stats().Cluster {
			served += p.Served
		}
	}
	if forwarded == 0 || served == 0 {
		t.Fatalf("forwarded = %d, served = %d; want both > 0", forwarded, served)
	}
	// Work actually spread: the submitting replica did not evaluate
	// everything itself, and the fleet as a whole evaluated each scenario
	// exactly once (forwarding must not duplicate work).
	if s0.Evaluations == uint64(got.Scenarios) {
		t.Fatal("replica 0 evaluated every scenario itself")
	}
	if total := fleetEvaluations(reps); total != uint64(got.Scenarios) {
		t.Fatalf("fleet evaluations = %d, want %d", total, got.Scenarios)
	}
}

// TestClusterWideDedup: duplicate submissions entering through different
// replicas — sequentially and concurrently — must cost exactly one
// evaluation fleet-wide: the owner's singleflight and memo cache are
// shared by construction.
func TestClusterWideDedup(t *testing.T) {
	reps := startFleet(t, 3)
	req := func() *engine.Request {
		return &engine.Request{Graph: gen.Figure2(), Method: engine.MethodKIter}
	}

	// Sequential: one replica after another.
	for _, r := range reps {
		res, err := r.eng.Submit(context.Background(), req())
		if err != nil {
			t.Fatalf("submit via %s: %v", r.addr, err)
		}
		if res.Throughput == nil || !res.Throughput.Optimal {
			t.Fatalf("bad result via %s: %+v", r.addr, res)
		}
	}
	if total := fleetEvaluations(reps); total != 1 {
		t.Fatalf("fleet evaluations after sequential duplicates = %d, want 1", total)
	}

	// Concurrent: a fresh graph submitted 4× through every replica at
	// once. Same-replica duplicates coalesce on the local singleflight,
	// cross-replica ones on the owner's.
	g2 := gen.SampleRateConverter()
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for _, r := range reps {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(e *engine.Engine) {
				defer wg.Done()
				_, err := e.Submit(context.Background(), &engine.Request{Graph: g2, Method: engine.MethodKIter})
				errs <- err
			}(r.eng)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent submit: %v", err)
		}
	}
	if total := fleetEvaluations(reps); total != 2 {
		t.Fatalf("fleet evaluations after concurrent duplicates = %d, want 2 (one per distinct graph)", total)
	}
}

// TestClusterFailover: with one replica's server dead (its engine and the
// rest of the fleet unaware until forwards fail), a sweep through a
// surviving replica still completes with the exact single-node envelope,
// the failures are counted, and the dead peer is out of the ring.
func TestClusterFailover(t *testing.T) {
	single := engine.New(engine.Config{Workers: 2})
	defer single.Close()
	want := runSweep(t, single, testSpec(t))

	reps := startFleet(t, 3)
	// Kill replica 2's HTTP server. Replica 0 still believes it healthy
	// (optimistic start), so the sweep's first job hashed onto it fails
	// over mid-run: evaluated locally, peer marked unhealthy, its
	// remaining keys spilling to ring successors.
	reps[2].srv.Close()

	got := runSweep(t, reps[0].eng, testSpec(t))
	requireSameEnvelope(t, got, want)

	s0 := reps[0].eng.Stats()
	var failedOver uint64
	deadHealthy := true
	for _, p := range s0.Cluster {
		if p.Peer == reps[2].addr {
			failedOver = p.FailedOver
			deadHealthy = p.Healthy
		}
	}
	if failedOver == 0 {
		t.Fatalf("no failover recorded against the dead peer: %+v", s0.Cluster)
	}
	if deadHealthy {
		t.Fatalf("dead peer still marked healthy: %+v", s0.Cluster)
	}
	// The survivors carried the whole sweep between them.
	if total := reps[0].eng.Stats().Evaluations + reps[1].eng.Stats().Evaluations; total != uint64(got.Scenarios) {
		t.Fatalf("survivor evaluations = %d, want %d", total, got.Scenarios)
	}
}
