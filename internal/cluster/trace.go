package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"kiter/internal/telemetry"
)

// FetchTraces collects the named trace's records from every configured
// peer over the pooled transport — the fan-out behind
// GET /debug/traces/{id}?fleet=1. Each peer is asked for its local records
// only (no fleet parameter, so fan-out never recurses), concurrently and
// best-effort: an unreachable or trace-less peer contributes nothing
// rather than failing the stitch. Breaker-open peers are skipped — the
// debug path must not add load to a peer the serving path already
// excluded.
func (c *Cluster) FetchTraces(ctx context.Context, traceID string) []telemetry.RecordedTrace {
	peers := c.snapshotPeers()
	if len(peers) == 0 {
		return nil
	}
	var mu sync.Mutex
	var out []telemetry.RecordedTrace
	var wg sync.WaitGroup
	for _, ps := range peers {
		if !c.alive(ps.addr) {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			recs := c.fetchPeerTraces(ctx, addr, traceID)
			if len(recs) == 0 {
				return
			}
			mu.Lock()
			out = append(out, recs...)
			mu.Unlock()
		}(ps.addr)
	}
	wg.Wait()
	return out
}

// fetchPeerTraces asks one peer for its records of traceID.
func (c *Cluster) fetchPeerTraces(ctx context.Context, addr, traceID string) []telemetry.RecordedTrace {
	fctx, cancel := context.WithTimeout(ctx, c.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet,
		"http://"+addr+"/debug/traces/"+traceID, nil)
	if err != nil {
		return nil
	}
	req.Header.Set(peerHeader, c.self)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil
	}
	var doc struct {
		Records []telemetry.RecordedTrace `json:"records"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil
	}
	return doc.Records
}
