// Package cluster turns N kiterd replicas into one analysis fleet with no
// dependencies beyond net/http. Each replica consistently hashes every
// job's structural fingerprint onto the member ring (self + -peers) and
// forwards non-local jobs to their owner over POST /cluster/evaluate; the
// owner runs them through its own engine, so its singleflight and memo
// cache deduplicate identical work submitted anywhere in the fleet.
//
// The subsystem degrades to a single replica gracefully: a forward that
// fails or times out falls back to transparent local evaluation, the
// failing peer is marked unhealthy (its keys spill to ring successors) and
// re-probed with exponential backoff until it answers /healthz again.
// Routing is capped at one hop — forwarded arrivals are pinned local — so
// diverging health views can cost locality, never loops.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kiter/internal/engine"
	"kiter/internal/telemetry"
)

// peerHeader carries the sender's advertised address on forwarded
// requests, so the owner can attribute its served counters.
const peerHeader = "X-Kiter-Peer"

// Config tunes a Cluster.
type Config struct {
	// Self is this replica's advertised address (host:port). Every replica
	// must appear under exactly the same string in its peers' lists —
	// addresses are ring identities, not just dial targets.
	Self string
	// Peers lists the other replicas' advertised addresses. Self is
	// filtered out, so the full fleet list can be shared verbatim.
	Peers []string
	// ForwardTimeout bounds one forwarded evaluation end to end; beyond it
	// the job falls back to local evaluation. Zero picks the 60s default
	// (match the serving timeout, since the owner is doing real analysis
	// work); negative means no limit, for fleets serving unbounded
	// analyses.
	ForwardTimeout time.Duration
	// ProbeInterval is the base health-probe backoff for an unhealthy peer
	// (default 1s); consecutive failures double it up to MaxProbeInterval
	// (default 30s). ProbeTimeout bounds one probe (default 2s).
	ProbeInterval    time.Duration
	MaxProbeInterval time.Duration
	ProbeTimeout     time.Duration
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
	// Metrics, when non-nil, registers the cluster's forward-RTT histogram
	// (kiter_cluster_forward_seconds, labeled by peer and outcome).
	Metrics *telemetry.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.ForwardTimeout == 0 {
		cfg.ForwardTimeout = 60 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.MaxProbeInterval <= 0 {
		cfg.MaxProbeInterval = 30 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	return cfg
}

// peerState is one peer's health and telemetry.
type peerState struct {
	addr    string
	healthy atomic.Bool

	forwarded  atomic.Uint64
	failedOver atomic.Uint64
	served     atomic.Uint64
	probes     atomic.Uint64

	// mu guards the probe backoff schedule.
	mu        sync.Mutex
	failures  int
	nextProbe time.Time
}

// Cluster implements engine.Dispatcher over a fixed member ring. Create
// one with New, hand it to engine.Config.Dispatcher, mount EvaluateHandler
// on the replica's HTTP mux, and Close it after the engine.
type Cluster struct {
	cfg  Config
	self string
	ring *ring

	// peers is immutable after New (rows are created at construction
	// only), so it is read lock-free on the dispatch path; the rows handle
	// their own synchronization.
	peers map[string]*peerState

	// forwardRTT times each forwarded evaluation end to end, labeled by
	// peer and outcome (ok / error). Nil when Config.Metrics was nil.
	forwardRTT *telemetry.HistogramVec

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds the cluster and starts its health prober. cfg.Peers may
// include cfg.Self (it is ignored); an empty peer list yields a
// single-member cluster that dispatches everything locally.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self address required")
	}
	members := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if p != cfg.Self {
			members = append(members, p)
		}
	}
	ring, err := newRing(members)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		self:  cfg.Self,
		ring:  ring,
		peers: make(map[string]*peerState),
		stop:  make(chan struct{}),
	}
	if cfg.Metrics != nil {
		c.forwardRTT = cfg.Metrics.HistogramVec("kiter_cluster_forward_seconds",
			"Round-trip time of one forwarded evaluation, in seconds.",
			telemetry.LatencyBuckets, "peer", "outcome")
	}
	for _, m := range members {
		if m == cfg.Self {
			continue
		}
		ps := &peerState{addr: m}
		// Optimistic start: a down peer costs one failed forward (answered
		// locally) before probing takes over.
		ps.healthy.Store(true)
		c.peers[m] = ps
	}
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the health prober and releases idle connections. It does not
// touch the engine; close the engine first so no dispatch is in flight.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.cfg.Client.CloseIdleConnections()
}

// Self returns the replica's advertised address.
func (c *Cluster) Self() string { return c.self }

// peer returns the state row for a configured peer, or nil. Rows are
// created only at construction: the forward handler attributes served
// counts through the caller-controlled peer header, and minting rows from
// it would let any client grow the map (and every /stats response)
// without bound.
func (c *Cluster) peer(addr string) *peerState {
	return c.peers[addr]
}

// alive is the ring's health filter: self is always alive.
func (c *Cluster) alive(member string) bool {
	if member == c.self {
		return true
	}
	ps, ok := c.peers[member]
	return ok && ps.healthy.Load()
}

// Owner returns the member the ring currently places key on, applying the
// local health view.
func (c *Cluster) Owner(key string) string {
	if o := c.ring.owner(key, c.alive); o != "" {
		return o
	}
	return c.self
}

// Dispatch implements engine.Dispatcher: jobs the ring places on this
// replica (or on nobody alive) are declined back to the local pool; jobs
// owned by a healthy peer are forwarded. A forward that fails for any
// reason other than the job's own cancellation marks the peer unhealthy
// and falls back to local evaluation, so a dying owner never fails a job —
// it only loses the dedup benefit until a probe revives it.
func (c *Cluster) Dispatch(ctx context.Context, job *engine.DispatchJob) (*engine.Result, bool, error) {
	owner := c.Owner(job.Fingerprint)
	if owner == c.self {
		return nil, false, nil
	}
	ps := c.peer(owner)
	if ps == nil {
		// Cannot happen — the ring only yields configured members — but a
		// nil row must not panic the serving path.
		return nil, false, nil
	}
	fctx, fspan := telemetry.StartSpan(ctx, "cluster.forward")
	fspan.SetAttr("peer", owner)
	start := time.Now()
	res, err := c.forward(fctx, owner, job)
	outcome := "ok"
	if err != nil {
		outcome = "error"
		fspan.SetAttr("error", err.Error())
	}
	fspan.End()
	c.forwardRTT.With(owner, outcome).Observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		ps.forwarded.Add(1)
		return res, true, nil
	case ctx.Err() != nil:
		// Every waiter left (or the submission's own deadline passed)
		// while the forward was in flight: fail the job with the context
		// error instead of burning a local slot on unwanted work.
		return nil, true, ctx.Err()
	default:
		ps.failedOver.Add(1)
		c.markUnhealthy(ps)
		return nil, false, nil
	}
}

// forward runs one job on owner and decodes its result.
func (c *Cluster) forward(ctx context.Context, owner string, job *engine.DispatchJob) (*engine.Result, error) {
	body, err := encodeJob(job)
	if err != nil {
		return nil, err
	}
	fctx := ctx
	if c.cfg.ForwardTimeout > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, c.cfg.ForwardTimeout)
		defer cancel()
	}
	url := "http://" + owner + "/cluster/evaluate"
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(peerHeader, c.self)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s: %s: %s", owner, resp.Status, firstLine(reply))
	}
	res, err := decodeResult(reply, owner)
	if err != nil {
		return nil, err
	}
	if res.Fingerprint != job.Fingerprint {
		// A peer answering for the wrong structure (version skew, proxy
		// mixup) must not poison the local cache; treat it as a failure
		// and evaluate locally.
		return nil, fmt.Errorf("cluster: peer %s answered fingerprint %.12s, want %.12s",
			owner, res.Fingerprint, job.Fingerprint)
	}
	return res, nil
}

// firstLine bounds an error body for log-friendly messages.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(bytes.TrimSpace(b))
}

// markUnhealthy flips a peer out of the ring and schedules its first
// re-probe one base interval out.
func (c *Cluster) markUnhealthy(ps *peerState) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.healthy.Swap(false) {
		ps.failures = 1
		ps.nextProbe = time.Now().Add(c.cfg.ProbeInterval)
	}
}

// probeLoop re-probes unhealthy peers on their backoff schedule until the
// cluster closes. The tick is a fraction of the base interval so a due
// probe never waits a full interval for the clock to notice it.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	tick := c.cfg.ProbeInterval / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			for _, ps := range c.snapshotPeers() {
				if ps.healthy.Load() {
					continue
				}
				ps.mu.Lock()
				due := !now.Before(ps.nextProbe)
				ps.mu.Unlock()
				if due {
					c.probe(ps)
				}
			}
		}
	}
}

// probe checks one peer's /healthz, reviving it on success and doubling
// its backoff (up to MaxProbeInterval) on failure.
func (c *Cluster) probe(ps *peerState) {
	ps.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+ps.addr+"/healthz", nil)
	if err == nil {
		var resp *http.Response
		if resp, err = c.cfg.Client.Do(req); err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %s", resp.Status)
			}
		}
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if err == nil {
		ps.failures = 0
		ps.healthy.Store(true)
		return
	}
	ps.failures++
	// failures counts the initial forward failure plus every failed probe;
	// the n-th consecutive probe failure waits 2^n base intervals, capped.
	backoff := c.cfg.ProbeInterval << min(ps.failures-1, 30)
	if backoff > c.cfg.MaxProbeInterval || backoff <= 0 {
		backoff = c.cfg.MaxProbeInterval
	}
	ps.nextProbe = time.Now().Add(backoff)
}

// snapshotPeers returns the peer rows as a slice.
func (c *Cluster) snapshotPeers() []*peerState {
	out := make([]*peerState, 0, len(c.peers))
	for _, ps := range c.peers {
		out = append(out, ps)
	}
	return out
}

// DispatchStats implements engine.DispatchStatser: one row per known peer,
// sorted by address for stable output.
func (c *Cluster) DispatchStats() []engine.PeerStats {
	peers := c.snapshotPeers()
	sort.Slice(peers, func(a, b int) bool { return peers[a].addr < peers[b].addr })
	out := make([]engine.PeerStats, 0, len(peers))
	for _, ps := range peers {
		out = append(out, engine.PeerStats{
			Peer:       ps.addr,
			Healthy:    ps.healthy.Load(),
			Forwarded:  ps.forwarded.Load(),
			FailedOver: ps.failedOver.Load(),
			Served:     ps.served.Load(),
			Probes:     ps.probes.Load(),
		})
	}
	return out
}
