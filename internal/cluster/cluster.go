// Package cluster turns N kiterd replicas into one analysis fleet with no
// dependencies beyond net/http. Each replica consistently hashes every
// job's structural fingerprint onto the member ring (self + -peers) and
// forwards non-local jobs to their owner over POST /cluster/evaluate; the
// owner runs them through its own engine, so its singleflight and memo
// cache deduplicate identical work submitted anywhere in the fleet.
//
// The subsystem degrades to a single replica gracefully: a forward that
// fails or times out is retried once after a jittered backoff (forwarded
// evaluations are pure analysis, so a double send is idempotent) and then
// falls back to transparent local evaluation. Each peer sits behind a
// circuit breaker: consecutive forward failures past a threshold open it,
// dropping the peer out of the ring (its keys spill to ring successors);
// the health prober re-probes open breakers with exponential backoff and a
// passing /healthz half-opens the peer, letting one trial forward decide
// between closing the breaker and re-opening it. Routing is capped at one
// hop — forwarded arrivals are pinned local — so diverging health views
// can cost locality, never loops.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kiter/internal/engine"
	"kiter/internal/faultinject"
	"kiter/internal/resilience"
	"kiter/internal/telemetry"
)

// peerHeader carries the sender's advertised address on forwarded
// requests, so the owner can attribute its served counters.
const peerHeader = "X-Kiter-Peer"

// Config tunes a Cluster.
type Config struct {
	// Self is this replica's advertised address (host:port). Every replica
	// must appear under exactly the same string in its peers' lists —
	// addresses are ring identities, not just dial targets.
	Self string
	// Peers lists the other replicas' advertised addresses. Self is
	// filtered out, so the full fleet list can be shared verbatim.
	Peers []string
	// ForwardTimeout bounds one forwarded evaluation end to end; beyond it
	// the job falls back to local evaluation. Zero picks the 60s default
	// (match the serving timeout, since the owner is doing real analysis
	// work); negative means no limit, for fleets serving unbounded
	// analyses.
	ForwardTimeout time.Duration
	// ProbeInterval is the base health-probe backoff for an unhealthy peer
	// (default 1s); consecutive failures double it up to MaxProbeInterval
	// (default 30s). ProbeTimeout bounds one probe (default 2s).
	ProbeInterval    time.Duration
	MaxProbeInterval time.Duration
	ProbeTimeout     time.Duration
	// BreakerThreshold is the consecutive forward failures that open a
	// peer's circuit breaker, dropping it out of the ring until a probe
	// half-opens it again (default 3, minimum 1).
	BreakerThreshold int
	// RetryBackoff is the base delay before a failed forward's single
	// retry; the actual sleep is jittered to [base/2, 3*base/2) so
	// synchronized failures do not retry in lockstep (default 25ms).
	RetryBackoff time.Duration
	// Workers sizes the forwarding transport's per-peer connection pool:
	// the engine can have up to Workers evaluations in flight, and under a
	// sweep most of them forward to the same owner replica, so the
	// transport keeps that many idle connections per host instead of
	// net/http's DefaultTransport 2 (which churns a dial + TIME_WAIT per
	// request past 2 concurrent forwards). Zero defaults to GOMAXPROCS,
	// matching the engine's own worker default.
	Workers int
	// ClaimLease enables cross-process singleflight when positive: every
	// leader job claims its cache key at the key's ring owner before
	// evaluating, and a claim is held for this lease (a crashed holder's
	// key frees itself on expiry). Zero/negative disables claims — the
	// Cluster still serves /cluster/claim for peers that have them on.
	ClaimLease time.Duration
	// ClaimPoll is the interval at which a denied claimant polls the
	// owner's publish buffer for the holder's result (default 25ms).
	ClaimPoll time.Duration
	// Client overrides the forwarding HTTP client (tests). When nil, a
	// client over a dedicated transport sized by Workers is built.
	Client *http.Client
	// Metrics, when non-nil, registers the cluster's forward-RTT histogram
	// (kiter_cluster_forward_seconds, labeled by peer and outcome).
	Metrics *telemetry.Registry
	// Recorder, when non-nil, receives the handler-side span trees of the
	// cross-process hops this replica serves (/cluster/evaluate, cache get
	// and put, claim) — each recorded under the caller's trace ID so
	// /debug/traces/{id}?fleet=1 can stitch the fleet-wide tree back
	// together by parent span ID.
	Recorder *telemetry.Recorder
}

func (cfg Config) withDefaults() Config {
	if cfg.ForwardTimeout == 0 {
		cfg.ForwardTimeout = 60 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.MaxProbeInterval <= 0 {
		cfg.MaxProbeInterval = 30 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: newTransport(cfg.Workers, len(cfg.Peers))}
	}
	return cfg
}

// newTransport builds the forwarding transport. Sizing is the point: a
// bare http.Client inherits DefaultTransport's MaxIdleConnsPerHost of 2,
// so a worker pool forwarding W concurrent evaluations to one owner
// replica dials W connections, keeps 2, and closes the rest into
// TIME_WAIT — per round. Holding ~Workers idle connections per peer makes
// steady-state forwarding dial-free.
func newTransport(workers, peers int) *http.Transport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perHost := workers
	if perHost < 4 {
		perHost = 4
	}
	if peers < 1 {
		peers = 1
	}
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          perHost * peers,
		MaxIdleConnsPerHost:   perHost,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// peerState is one peer's health and telemetry. Health is the breaker's
// state: closed and half-open peers are in the ring, open peers are not.
type peerState struct {
	addr    string
	breaker *resilience.Breaker

	forwarded  atomic.Uint64
	failedOver atomic.Uint64
	served     atomic.Uint64
	probes     atomic.Uint64
	retried    atomic.Uint64

	// mu guards the probe backoff schedule.
	mu        sync.Mutex
	failures  int
	nextProbe time.Time
}

// Cluster implements engine.Dispatcher over a fixed member ring. Create
// one with New, hand it to engine.Config.Dispatcher, mount EvaluateHandler
// on the replica's HTTP mux, and Close it after the engine.
type Cluster struct {
	cfg  Config
	self string
	ring *ring

	// peers is immutable after New (rows are created at construction
	// only), so it is read lock-free on the dispatch path; the rows handle
	// their own synchronization.
	peers map[string]*peerState

	// forwardRTT times each forwarded evaluation end to end, labeled by
	// peer and outcome (ok / error). Nil when Config.Metrics was nil.
	forwardRTT *telemetry.HistogramVec

	// claims is the owner-side lease/publish table behind /cluster/claim
	// and the fleet cache tier's publish buffer.
	claims claimTable
	// localCache is the backend the cache handlers serve from — the
	// replica's local tiers, set via SetLocalCache (never the fleet tier,
	// which would recurse).
	localCache atomic.Pointer[engine.CacheBackend]
	// remoteTier records that a RemoteCache rides this cluster, letting a
	// held claim's release skip the publish the tier already performs.
	remoteTier atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds the cluster and starts its health prober. cfg.Peers may
// include cfg.Self (it is ignored); an empty peer list yields a
// single-member cluster that dispatches everything locally.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self address required")
	}
	members := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if p != cfg.Self {
			members = append(members, p)
		}
	}
	ring, err := newRing(members)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		self:  cfg.Self,
		ring:  ring,
		peers: make(map[string]*peerState),
		stop:  make(chan struct{}),
	}
	c.claims.init()
	if cfg.Metrics != nil {
		c.forwardRTT = cfg.Metrics.HistogramVec("kiter_cluster_forward_seconds",
			"Round-trip time of one forwarded evaluation, in seconds.",
			telemetry.LatencyBuckets, "peer", "outcome")
	}
	for _, m := range members {
		if m == cfg.Self {
			continue
		}
		// Breakers start closed (optimistic): a down peer costs a few
		// failed forwards (answered locally) before its breaker opens and
		// probing takes over.
		c.peers[m] = &peerState{addr: m, breaker: resilience.NewBreaker(cfg.BreakerThreshold)}
	}
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the health prober and releases idle connections. It does not
// touch the engine; close the engine first so no dispatch is in flight.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.cfg.Client.CloseIdleConnections()
}

// Self returns the replica's advertised address.
func (c *Cluster) Self() string { return c.self }

// peer returns the state row for a configured peer, or nil. Rows are
// created only at construction: the forward handler attributes served
// counts through the caller-controlled peer header, and minting rows from
// it would let any client grow the map (and every /stats response)
// without bound.
func (c *Cluster) peer(addr string) *peerState {
	return c.peers[addr]
}

// alive is the ring's health filter: self is always alive, peers are
// alive unless their breaker is open (half-open peers take trial traffic).
func (c *Cluster) alive(member string) bool {
	if member == c.self {
		return true
	}
	ps, ok := c.peers[member]
	return ok && ps.breaker.State() != resilience.BreakerOpen
}

// Owner returns the member the ring currently places key on, applying the
// local health view.
func (c *Cluster) Owner(key string) string {
	if o := c.ring.owner(key, c.alive); o != "" {
		return o
	}
	return c.self
}

// Dispatch implements engine.Dispatcher: jobs the ring places on this
// replica (or on nobody alive) are declined back to the local pool; jobs
// owned by a healthy peer are forwarded. A forward that fails for any
// reason other than the job's own cancellation counts against the peer's
// breaker and is retried once after a jittered backoff (evaluations are
// idempotent); a second failure falls back to local evaluation, so a
// dying owner never fails a job — it only loses the dedup benefit until a
// probe half-opens its breaker again.
func (c *Cluster) Dispatch(ctx context.Context, job *engine.DispatchJob) (*engine.Result, bool, error) {
	owner := c.Owner(job.Fingerprint)
	if owner == c.self {
		return nil, false, nil
	}
	ps := c.peer(owner)
	if ps == nil {
		// Cannot happen — the ring only yields configured members — but a
		// nil row must not panic the serving path.
		return nil, false, nil
	}
	fctx, fspan := telemetry.StartSpan(ctx, "cluster.forward")
	fspan.SetAttr("peer", owner)
	defer fspan.End()
	res, err := c.attempt(fctx, owner, job)
	if err == nil {
		ps.breaker.Success()
		ps.forwarded.Add(1)
		return res, true, nil
	}
	if ctx.Err() != nil {
		// Every waiter left (or the submission's own deadline passed)
		// while the forward was in flight: fail the job with the context
		// error instead of burning a local slot on unwanted work.
		return nil, true, ctx.Err()
	}
	c.noteForwardFailure(ps)
	fspan.SetAttr("error", err.Error())
	// Retry once unless that first failure just opened the breaker (the
	// peer is systematically down, not transiently flaky).
	if !ps.breaker.Allow() {
		fspan.Event("breaker.open", "peer", owner)
	} else if sleepCtx(ctx, jitter(c.cfg.RetryBackoff)) {
		ps.retried.Add(1)
		if res, err = c.attempt(fctx, owner, job); err == nil {
			ps.breaker.Success()
			ps.forwarded.Add(1)
			fspan.SetAttr("retried", true)
			return res, true, nil
		}
		if ctx.Err() != nil {
			return nil, true, ctx.Err()
		}
		c.noteForwardFailure(ps)
		fspan.SetAttr("error", err.Error())
	}
	ps.failedOver.Add(1)
	fspan.Event("fallback.local", "peer", owner, "error", err.Error())
	return nil, false, nil
}

// attempt times one forward try into the RTT histogram.
func (c *Cluster) attempt(ctx context.Context, owner string, job *engine.DispatchJob) (*engine.Result, error) {
	start := time.Now()
	res, err := c.forward(ctx, owner, job)
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	c.forwardRTT.With(owner, outcome).Observe(time.Since(start).Seconds())
	return res, err
}

// jitter spreads a base delay to [base/2, 3*base/2).
func jitter(base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	return base/2 + time.Duration(rand.Int63n(int64(base)))
}

// sleepCtx waits d, reporting false if ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// forward runs one job on owner and decodes its result.
func (c *Cluster) forward(ctx context.Context, owner string, job *engine.DispatchJob) (*engine.Result, error) {
	// Chaos seam: "dispatch.forward" fails forward attempts (each retry is
	// a fresh Fire), exercising the retry and breaker paths without a
	// network fault.
	if err := faultinject.Fire(faultinject.PointForward); err != nil {
		telemetry.FromContext(ctx).Event("chaos.severed", "point", faultinject.PointForward, "peer", owner)
		return nil, err
	}
	body, err := encodeJob(job)
	if err != nil {
		return nil, err
	}
	fctx := ctx
	if c.cfg.ForwardTimeout > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, c.cfg.ForwardTimeout)
		defer cancel()
	}
	url := "http://" + owner + "/cluster/evaluate"
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Negotiate the binary result codec; older peers ignore Accept and
	// answer JSON, which stays understood (version-skew tolerance).
	req.Header.Set("Accept", resultContentType)
	req.Header.Set(peerHeader, c.self)
	// Propagate trace context: the owner opens its handler span as a child
	// of this process's cluster.forward span, so the fleet-wide tree
	// stitches back together by parent span ID.
	if sc := telemetry.FromContext(ctx).Context(); sc.Valid() {
		req.Header.Set(telemetry.Traceparent, sc.Traceparent())
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s: %s: %s", owner, resp.Status, firstLine(reply))
	}
	var res *engine.Result
	if strings.HasPrefix(resp.Header.Get("Content-Type"), resultContentType) {
		res, err = decodeBinaryResult(reply, owner)
	} else {
		res, err = decodeResult(reply, owner)
	}
	if err != nil {
		return nil, err
	}
	if res.Fingerprint != job.Fingerprint {
		// A peer answering for the wrong structure (version skew, proxy
		// mixup) must not poison the local cache; treat it as a failure
		// and evaluate locally.
		return nil, fmt.Errorf("cluster: peer %s answered fingerprint %.12s, want %.12s",
			owner, res.Fingerprint, job.Fingerprint)
	}
	return res, nil
}

// firstLine bounds an error body for log-friendly messages.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(bytes.TrimSpace(b))
}

// markUnhealthy force-opens a peer's breaker — flipping it out of the
// ring regardless of its failure count — and schedules its first re-probe
// one base interval out.
func (c *Cluster) markUnhealthy(ps *peerState) {
	if ps.breaker.ForceOpen() {
		c.scheduleProbe(ps)
	}
}

// noteForwardFailure counts one failed forward against the peer's
// breaker; crossing the threshold opens it and hands the peer to the
// prober.
func (c *Cluster) noteForwardFailure(ps *peerState) {
	if ps.breaker.Failure() {
		c.scheduleProbe(ps)
	}
}

// scheduleProbe arms the backoff schedule for a just-opened breaker.
func (c *Cluster) scheduleProbe(ps *peerState) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.failures = 1
	ps.nextProbe = time.Now().Add(c.cfg.ProbeInterval)
}

// probeLoop re-probes unhealthy peers on their backoff schedule until the
// cluster closes. The tick is a fraction of the base interval so a due
// probe never waits a full interval for the clock to notice it.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	tick := c.cfg.ProbeInterval / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			for _, ps := range c.snapshotPeers() {
				// Only open breakers are probed; a half-open peer is
				// already taking trial traffic that will settle its state.
				if ps.breaker.State() != resilience.BreakerOpen {
					continue
				}
				ps.mu.Lock()
				due := !now.Before(ps.nextProbe)
				ps.mu.Unlock()
				if due {
					c.probe(ps)
				}
			}
		}
	}
}

// probe checks one peer's /healthz. Success half-opens the breaker — the
// peer re-enters the ring and the next forward's outcome closes it for
// real or snaps it back open. Failure doubles the probe backoff (up to
// MaxProbeInterval).
func (c *Cluster) probe(ps *peerState) {
	ps.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+ps.addr+"/healthz", nil)
	if err == nil {
		var resp *http.Response
		if resp, err = c.cfg.Client.Do(req); err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %s", resp.Status)
			}
		}
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if err == nil {
		ps.failures = 0
		ps.breaker.HalfOpen()
		return
	}
	ps.failures++
	// failures counts the initial forward failure plus every failed probe;
	// the n-th consecutive probe failure waits 2^n base intervals, capped.
	backoff := c.cfg.ProbeInterval << min(ps.failures-1, 30)
	if backoff > c.cfg.MaxProbeInterval || backoff <= 0 {
		backoff = c.cfg.MaxProbeInterval
	}
	ps.nextProbe = time.Now().Add(backoff)
}

// snapshotPeers returns the peer rows as a slice.
func (c *Cluster) snapshotPeers() []*peerState {
	out := make([]*peerState, 0, len(c.peers))
	for _, ps := range c.peers {
		out = append(out, ps)
	}
	return out
}

// DispatchStats implements engine.DispatchStatser: one row per known peer,
// sorted by address for stable output.
func (c *Cluster) DispatchStats() []engine.PeerStats {
	peers := c.snapshotPeers()
	sort.Slice(peers, func(a, b int) bool { return peers[a].addr < peers[b].addr })
	out := make([]engine.PeerStats, 0, len(peers))
	for _, ps := range peers {
		st := ps.breaker.State()
		out = append(out, engine.PeerStats{
			Peer:         ps.addr,
			Healthy:      st != resilience.BreakerOpen,
			Forwarded:    ps.forwarded.Load(),
			FailedOver:   ps.failedOver.Load(),
			Served:       ps.served.Load(),
			Probes:       ps.probes.Load(),
			Retried:      ps.retried.Load(),
			BreakerState: st.String(),
			BreakerOpens: ps.breaker.Opens(),
		})
	}
	return out
}
