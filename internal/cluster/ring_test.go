package cluster

import (
	"fmt"
	"testing"
)

func TestRingAgreementAcrossMemberOrder(t *testing.T) {
	// Two replicas build their rings from differently ordered (and
	// self-relative) member lists; every key must land on the same owner.
	a, err := newRing([]string{"h1:1", "h2:2", "h3:3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRing([]string{"h3:3", "h1:1", "h2:2", "h1:1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		if oa, ob := a.owner(key, nil), b.owner(key, nil); oa != ob {
			t.Fatalf("key %q: ring A says %s, ring B says %s", key, oa, ob)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r, err := newRing([]string{"h1:1", "h2:2", "h3:3"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("fp-%d", i), nil)]++
	}
	for _, m := range r.members {
		// With 64 vnodes the imbalance stays well inside 3x of fair share;
		// the test only guards against gross skew (e.g. one member owning
		// everything).
		if c := counts[m]; c < keys/9 {
			t.Fatalf("member %s owns only %d of %d keys: %v", m, c, keys, counts)
		}
	}
}

func TestRingHealthFilter(t *testing.T) {
	r, err := newRing([]string{"h1:1", "h2:2", "h3:3"})
	if err != nil {
		t.Fatal(err)
	}
	const key = "some-fingerprint"
	full := r.owner(key, nil)
	alive := func(dead string) func(string) bool {
		return func(m string) bool { return m != dead }
	}
	// Killing the owner moves the key; killing someone else does not.
	moved := r.owner(key, alive(full))
	if moved == full || moved == "" {
		t.Fatalf("owner with %s dead = %q", full, moved)
	}
	for _, m := range r.members {
		if m == full {
			continue
		}
		if got := r.owner(key, alive(m)); got != full {
			t.Fatalf("killing non-owner %s moved the key to %s", m, got)
		}
	}
	// Nobody alive: the caller falls back to itself.
	if got := r.owner(key, func(string) bool { return false }); got != "" {
		t.Fatalf("owner with all dead = %q, want empty", got)
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := newRing(nil); err == nil {
		t.Fatal("newRing(nil) succeeded")
	}
	if _, err := newRing([]string{""}); err == nil {
		t.Fatal("newRing with empty address succeeded")
	}
}
