package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodes is the number of ring points each member is hashed onto. 64
// virtual nodes keep the expected load imbalance across a handful of
// replicas within a few percent while the ring stays small enough that an
// owner lookup is one binary search over a few hundred entries.
const vnodes = 64

// ringEntry is one virtual node: a point on the 64-bit ring owned by
// members[member].
type ringEntry struct {
	point  uint64
	member int
}

// ring consistently hashes job fingerprints onto a fixed member set. The
// member list is sorted before hashing, so every replica that was started
// with the same fleet — in any order, with itself listed implicitly — builds
// the identical ring and agrees on every key's owner. Health is applied at
// lookup time, not build time: a dead member's keys spill to their ring
// successors and return to it the moment a probe revives it, without any
// ring rebuild or coordination.
type ring struct {
	members []string
	entries []ringEntry
}

// newRing builds the ring over the deduplicated member addresses. At least
// one member is required.
func newRing(members []string) (*ring, error) {
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: no members")
	}
	sort.Strings(uniq)
	r := &ring{
		members: uniq,
		entries: make([]ringEntry, 0, len(uniq)*vnodes),
	}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.entries = append(r.entries, ringEntry{
				point:  hashPoint(fmt.Sprintf("%s#%d", m, v)),
				member: i,
			})
		}
	}
	sort.Slice(r.entries, func(a, b int) bool {
		if r.entries[a].point != r.entries[b].point {
			return r.entries[a].point < r.entries[b].point
		}
		// Identical points (a 64-bit hash collision between members) are
		// ordered by member index so every replica still walks them alike.
		return r.entries[a].member < r.entries[b].member
	})
	return r, nil
}

// hashPoint places a string on the ring: FNV-1a (stable across processes
// and platforms) finished with a 64-bit avalanche mix. Raw FNV-1a barely
// diffuses its trailing bytes, so a member's virtual nodes "addr#0" …
// "addr#63" land in one tight band and the ring degenerates into a few
// huge arcs; the (bijective, hence collision-free) finalizer scatters
// them uniformly.
func hashPoint(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner returns the member owning key: the first alive member at or after
// the key's point, walking the ring clockwise. alive filters members (nil
// accepts all); when no member is alive the empty string is returned and
// the caller evaluates locally.
func (r *ring) owner(key string, alive func(member string) bool) string {
	p := hashPoint(key)
	start := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].point >= p })
	// The common case — first candidate alive — allocates nothing; the
	// rejected set is materialized only once a dead member is skipped.
	var rejected []bool
	nrejected := 0
	for off := 0; off < len(r.entries); off++ {
		e := r.entries[(start+off)%len(r.entries)]
		if rejected != nil && rejected[e.member] {
			continue
		}
		m := r.members[e.member]
		if alive == nil || alive(m) {
			return m
		}
		if rejected == nil {
			rejected = make([]bool, len(r.members))
		}
		rejected[e.member] = true
		if nrejected++; nrejected == len(r.members) {
			break
		}
	}
	return ""
}
