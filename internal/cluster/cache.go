package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kiter/internal/engine"
	"kiter/internal/faultinject"
	"kiter/internal/resultcodec"
	"kiter/internal/telemetry"
)

// cacheKeyHeader carries the cache key on /cluster/cache/get|put requests.
// Keys are fingerprint-derived ASCII a few hundred bytes long, well within
// header limits, and putting them here keeps the put body a bare
// resultcodec frame — the same bytes a disk segment stores.
const cacheKeyHeader = "X-Kiter-Cache-Key"

// resultContentType is the media type of a resultcodec frame on the wire,
// used by the cache endpoints and negotiated (via Accept) on
// /cluster/evaluate replies.
const resultContentType = "application/x-kiter-result"

// maxCacheBody caps one cache record on the wire, matching cachedisk's
// per-record payload cap — the size policy every owning replica enforces.
const maxCacheBody = 64 << 20

// cachePutQueue/cachePutWorkers bound the asynchronous remote-put
// machinery: publishes ride a queue drained by a small worker pool, so the
// engine's write-through Put (on the evaluation hot path) never waits on a
// network round trip. A full queue drops the put — the fleet tier is an
// optimization, and the owner can always recompute or be filled by the
// next publisher.
const (
	cachePutQueue   = 256
	cachePutWorkers = 4
)

// keyFingerprint extracts the routing fingerprint from a cache key
// (engine.cacheKey lays keys out as "fingerprint|knobs..."). Routing on
// the fingerprint rather than the whole key keeps cache placement aligned
// with dispatch placement: the replica that evaluates a fingerprint is the
// replica that owns its cached results.
func keyFingerprint(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}

// RemoteCache is the fleet tier: an engine.CacheBackend that reads and
// writes the cluster's shared result space over /cluster/cache/get|put.
// Composed behind the local tiers — NewTieredCache(memory→disk, fleet) —
// it means a cold replica's misses are answered by the ring owner's warm
// cache instead of a recomputation, and every local evaluation is
// published to its owner for the rest of the fleet.
//
// Placement follows the dispatch ring: a key is fetched from (and
// published to) the owner of its fingerprint. Keys this replica owns
// itself are fetched from the ring successor instead — exactly the member
// that owned them before this replica joined — which is what lets a
// freshly joined replica warm-start even the shard it now owns. All
// traffic rides the cluster's pooled transport behind the per-peer
// circuit breakers: an open breaker turns the tier into an instant miss,
// never a stall.
type RemoteCache struct {
	c *Cluster

	hits, misses atomic.Uint64
	bytesMoved   atomic.Uint64 // payload bytes fetched + published

	putCh   chan remotePut
	dropped atomic.Uint64
	wg      sync.WaitGroup
	once    sync.Once

	// kiter_cache_remote_* instruments; nil without Config.Metrics.
	mHits, mMisses, mPuts, mErrors, mDropped *telemetry.Counter
	mRTT                                     *telemetry.HistogramVec
}

type remotePut struct {
	owner string
	key   string
	body  []byte
	// traceparent carries the publishing request's trace context into the
	// async push, so the owner's put handler still joins the right trace.
	traceparent string
}

// NewRemoteCache builds the fleet tier over c's transport and ring. The
// returned backend is owned by the engine it is configured into (its Close
// stops the publish workers but leaves the Cluster running — close the
// Cluster separately, after the engine).
func NewRemoteCache(c *Cluster) *RemoteCache {
	rc := &RemoteCache{
		c:     c,
		putCh: make(chan remotePut, cachePutQueue),
	}
	if m := c.cfg.Metrics; m != nil {
		rc.mHits = m.Counter("kiter_cache_remote_hits_total",
			"Fleet-tier cache lookups answered by a peer.")
		rc.mMisses = m.Counter("kiter_cache_remote_misses_total",
			"Fleet-tier cache lookups that missed (including breaker-open and error short-circuits).")
		rc.mPuts = m.Counter("kiter_cache_remote_puts_total",
			"Results published to their ring owner.")
		rc.mErrors = m.Counter("kiter_cache_remote_errors_total",
			"Fleet-tier operations that failed in transit.")
		rc.mDropped = m.Counter("kiter_cache_remote_dropped_total",
			"Publishes dropped because the async put queue was full.")
		rc.mRTT = m.HistogramVec("kiter_cache_remote_rtt_seconds",
			"Round-trip time of fleet-tier cache operations, in seconds.",
			telemetry.LatencyBuckets, "op")
	}
	rc.wg.Add(cachePutWorkers)
	for i := 0; i < cachePutWorkers; i++ {
		go rc.putWorker()
	}
	c.remoteTier.Store(true)
	return rc
}

// fetchOwner resolves where to read key from: its ring owner, or — when
// this replica owns it — the ring successor that owned it before this
// replica joined. Empty means nobody suitable is alive.
func (rc *RemoteCache) fetchOwner(key string) string {
	fp := keyFingerprint(key)
	owner := rc.c.Owner(fp)
	if owner != rc.c.self {
		return owner
	}
	// Successor lookup: the owner of fp with self excluded from the ring.
	return rc.c.ring.owner(fp, func(m string) bool {
		return m != rc.c.self && rc.c.alive(m)
	})
}

// Get implements engine.CacheBackend: one breaker-guarded round trip to
// the key's owner (or successor). Every failure mode — no peer, open
// breaker, injected fault, transport error, corrupt frame — degrades to a
// miss; the caller then falls through to a local evaluation.
func (rc *RemoteCache) Get(key string) (*engine.Result, bool) {
	return rc.GetCtx(context.Background(), key)
}

// GetCtx is the context-aware Get the engine prefers
// (engine.CtxCacheBackend): the remote hop opens a child span under the
// request's trace, propagates the trace context to the owner, honors the
// caller's cancellation, and explains degrade paths as span events.
func (rc *RemoteCache) GetCtx(ctx context.Context, key string) (*engine.Result, bool) {
	gctx, span := telemetry.StartSpan(ctx, "cache.fleet.get")
	defer span.End()
	owner := rc.fetchOwner(key)
	if owner == "" {
		return rc.miss()
	}
	span.SetAttr("owner", owner)
	ps := rc.c.peer(owner)
	if ps == nil || !ps.breaker.Allow() {
		span.Event("breaker.open", "peer", owner)
		return rc.miss()
	}
	// Chaos seam: the fleet tier degrades with the same "dispatch.forward"
	// point the forwarding path uses — arming it severs the replica from
	// its peers, cache tier included, and everything must fall back to the
	// local tiers.
	if faultinject.Fire(faultinject.PointForward) != nil {
		span.Event("chaos.severed", "point", faultinject.PointForward, "peer", owner)
		return rc.miss()
	}
	start := time.Now()
	res, ok, err := rc.fetch(gctx, owner, key)
	rc.mRTT.With("get").Observe(time.Since(start).Seconds())
	if err != nil {
		rc.c.noteForwardFailure(ps)
		rc.mErrors.Add(1)
		span.SetAttr("error", err.Error())
		return rc.miss()
	}
	ps.breaker.Success()
	span.SetAttr("hit", ok)
	if !ok {
		return rc.miss()
	}
	rc.hits.Add(1)
	rc.mHits.Add(1)
	return res, true
}

func (rc *RemoteCache) miss() (*engine.Result, bool) {
	rc.misses.Add(1)
	rc.mMisses.Add(1)
	return nil, false
}

// fetch performs the GET round trip: 200 + frame is a hit, 204 a miss,
// anything else an error charged to the peer's breaker. The parent ctx
// supplies cancellation and trace context; the op timeout still applies.
func (rc *RemoteCache) fetch(parent context.Context, owner, key string) (*engine.Result, bool, error) {
	ctx, cancel := context.WithTimeout(parent, rc.c.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/cluster/cache/get", nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set(cacheKeyHeader, key)
	req.Header.Set(peerHeader, rc.c.self)
	if sc := telemetry.FromContext(parent).Context(); sc.Valid() {
		req.Header.Set(telemetry.Traceparent, sc.Traceparent())
	}
	resp, err := rc.c.cfg.Client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, nil
	case http.StatusOK:
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("cluster: cache get from %s: %s: %s", owner, resp.Status, firstLine(body))
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheBody+1))
	if err != nil {
		return nil, false, err
	}
	if len(frame) > maxCacheBody {
		return nil, false, fmt.Errorf("cluster: cache get from %s: frame too large", owner)
	}
	// Normalization marks the result fleet-origin (Peer set), which is
	// also what stops the local write-through from bouncing it straight
	// back to the owner.
	res, err := decodeBinaryResult(frame, owner)
	if err != nil {
		return nil, false, err
	}
	rc.bytesMoved.Add(uint64(len(frame)))
	return res, true, nil
}

// Put implements engine.CacheBackend: publish res to its ring owner,
// asynchronously (the caller is the evaluation hot path). Results that
// came from the fleet in the first place (Peer set: remote cache hits,
// forwarded evaluations, claim serves) are skipped — their owner already
// has them — as are keys this replica owns itself: local tiers hold those,
// and peers fetch them from here via the successor rule.
func (rc *RemoteCache) Put(key string, res *engine.Result) {
	rc.PutCtx(context.Background(), key, res)
}

// PutCtx is the context-aware Put (engine.CtxCacheBackend): it captures
// the caller's trace context into the queued publish so the owner's put
// handler records its subtree under the originating request's trace even
// though the push happens asynchronously.
func (rc *RemoteCache) PutCtx(ctx context.Context, key string, res *engine.Result) {
	if res == nil || res.Peer != "" {
		return
	}
	fp := keyFingerprint(key)
	owner := rc.c.Owner(fp)
	if owner == rc.c.self {
		return
	}
	span := telemetry.FromContext(ctx)
	if ps := rc.c.peer(owner); ps == nil || !ps.breaker.Allow() {
		span.Event("breaker.open", "peer", owner, "op", "cache.fleet.put")
		return
	}
	if faultinject.Fire(faultinject.PointForward) != nil {
		span.Event("chaos.severed", "point", faultinject.PointForward, "peer", owner, "op", "cache.fleet.put")
		return
	}
	if resultcodec.EncodedSize(res) > maxCacheBody {
		return
	}
	select {
	case rc.putCh <- remotePut{owner: owner, key: key, body: resultcodec.Encode(res),
		traceparent: span.Context().Traceparent()}:
	default:
		rc.dropped.Add(1)
		rc.mDropped.Add(1)
	}
}

func (rc *RemoteCache) putWorker() {
	defer rc.wg.Done()
	for p := range rc.putCh {
		rc.push(p)
	}
}

// push performs one publish round trip, charging failures to the owner's
// breaker like any other fleet traffic.
func (rc *RemoteCache) push(p remotePut) {
	ps := rc.c.peer(p.owner)
	if ps == nil || !ps.breaker.Allow() {
		return
	}
	start := time.Now()
	err := rc.c.cachePush(p.owner, p.key, p.body, p.traceparent)
	rc.mRTT.With("put").Observe(time.Since(start).Seconds())
	if err != nil {
		rc.c.noteForwardFailure(ps)
		rc.mErrors.Add(1)
		return
	}
	ps.breaker.Success()
	rc.mPuts.Add(1)
	rc.bytesMoved.Add(uint64(len(p.body)))
}

// cachePush POSTs one encoded record to owner's put endpoint. Shared with
// the claim client, which publishes held-claim results the same way.
// traceparent, when non-empty, rides along so the owner's handler joins
// the publishing request's trace.
func (c *Cluster) cachePush(owner, key string, frame []byte, traceparent string) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/cluster/cache/put", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", resultContentType)
	req.Header.Set(cacheKeyHeader, key)
	req.Header.Set(peerHeader, c.self)
	if traceparent != "" {
		req.Header.Set(telemetry.Traceparent, traceparent)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: cache put to %s: %s", owner, resp.Status)
	}
	return nil
}

// opTimeout bounds one cache/claim round trip. These are index lookups
// and byte copies, not analyses, so they get a fraction of the forward
// timeout — a slow owner must cost less than the recomputation it saves.
func (c *Cluster) opTimeout() time.Duration {
	t := c.cfg.ForwardTimeout
	if t <= 0 {
		return 5 * time.Second
	}
	if t /= 4; t > 5*time.Second {
		t = 5 * time.Second
	}
	return t
}

// Len implements engine.CacheBackend. The fleet's entry count lives on
// the owners; this tier reports 0 rather than a misleading guess.
func (rc *RemoteCache) Len() int { return 0 }

// Close implements engine.CacheBackend: it drains the publish queue and
// stops the workers. The Cluster itself is not touched.
func (rc *RemoteCache) Close() error {
	rc.once.Do(func() { close(rc.putCh) })
	rc.wg.Wait()
	return nil
}

// TierStats reports the fleet tier on engine.Stats: Bytes is the payload
// volume moved over the wire in both directions — the bandwidth the tier
// costs, since capacity lives on the owners.
func (rc *RemoteCache) TierStats() []engine.CacheTierStats {
	return []engine.CacheTierStats{{
		Tier:   "fleet",
		Hits:   rc.hits.Load(),
		Misses: rc.misses.Load(),
		Bytes:  int64(rc.bytesMoved.Load()),
	}}
}

// SetLocalCache hands the cluster the backend its cache handlers serve
// from — the replica's local tiers (memory→disk), never the fleet tier
// itself, which would recurse. kiterd wires this before mounting the
// handlers; a cluster without it answers every cache get from the claim
// buffer only.
func (c *Cluster) SetLocalCache(b engine.CacheBackend) {
	c.localCache.Store(&b)
}

func (c *Cluster) localBackend() engine.CacheBackend {
	if p := c.localCache.Load(); p != nil {
		return *p
	}
	return nil
}

// CacheGetHandler serves POST /cluster/cache/get: the owner-side lookup
// of the fleet tier. It consults the replica's local tiers, then the
// claim table's publish buffer (which holds results briefly even when the
// local memo cache is disabled), and replies 200 + resultcodec frame or
// 204 on a miss.
func (c *Cluster) CacheGetHandler() http.Handler {
	return http.HandlerFunc(func(pw http.ResponseWriter, r *http.Request) {
		sw := &statusCapture{ResponseWriter: pw, code: http.StatusOK}
		w := http.ResponseWriter(sw)
		ctx, finish := c.remoteSpan(r, "cluster.cache.get", "/cluster/cache/get")
		defer func() { finish(sw.code) }()
		span := telemetry.FromContext(ctx)
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		key := r.Header.Get(cacheKeyHeader)
		if key == "" {
			writeError(w, http.StatusBadRequest, cacheKeyHeader+" required")
			return
		}
		var res *engine.Result
		if b := c.localBackend(); b != nil {
			if hit, ok := b.Get(key); ok {
				res = hit
			}
		}
		if res == nil {
			res = c.claims.published(key)
		}
		span.SetAttr("hit", res != nil)
		if res == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", resultContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(resultcodec.Encode(res))
	})
}

// CachePutHandler serves POST /cluster/cache/put: a peer publishing a
// result it evaluated for a key this replica owns. The record lands in
// the local tiers (whose quotas are the fleet's size/retention policy for
// this shard) and in the claim table, where it completes any open claim
// on the key and serves claim waiters even on cache-less replicas.
// Oversized and undecodable frames are rejected — the owner enforces the
// policy, it does not trust the publisher.
func (c *Cluster) CachePutHandler() http.Handler {
	return http.HandlerFunc(func(pw http.ResponseWriter, r *http.Request) {
		sw := &statusCapture{ResponseWriter: pw, code: http.StatusOK}
		w := http.ResponseWriter(sw)
		_, finish := c.remoteSpan(r, "cluster.cache.put", "/cluster/cache/put")
		defer func() { finish(sw.code) }()
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		key := r.Header.Get(cacheKeyHeader)
		if key == "" {
			writeError(w, http.StatusBadRequest, cacheKeyHeader+" required")
			return
		}
		frame, err := io.ReadAll(io.LimitReader(r.Body, maxCacheBody+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		if len(frame) > maxCacheBody {
			writeError(w, http.StatusRequestEntityTooLarge, "record exceeds cache policy")
			return
		}
		res, err := resultcodec.Decode(frame)
		if err != nil {
			writeError(w, http.StatusBadRequest, "undecodable record: "+err.Error())
			return
		}
		// The publisher's per-submission fields do not describe this
		// replica's serves; strip them before the record enters the shard.
		res.Graph = ""
		res.CacheHit = false
		res.Deduped = false
		res.Peer = ""
		if b := c.localBackend(); b != nil {
			b.Put(key, res)
		}
		c.claims.publish(key, res, c.claimRetention())
		w.WriteHeader(http.StatusNoContent)
	})
}
