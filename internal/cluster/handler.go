package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"kiter/internal/engine"
	"kiter/internal/resultcodec"
	"kiter/internal/telemetry"
)

// maxForwardBody bounds a forwarded request body, mirroring the public
// API's cap.
const maxForwardBody = 64 << 20

// remoteSpan opens a handler-side root span joined to the caller's trace
// when the request carries a traceparent and the cluster has a flight
// recorder. The returned context carries the span; finish(status) closes
// it and records the tree under the caller's trace ID. Without trace
// context both returns are pass-through no-ops, so untraced internal
// traffic costs two header lookups.
func (c *Cluster) remoteSpan(r *http.Request, name, endpoint string) (context.Context, func(status int)) {
	ctx := r.Context()
	if c.cfg.Recorder == nil {
		return ctx, func(int) {}
	}
	sc, ok := telemetry.ParseTraceparent(r.Header.Get(telemetry.Traceparent))
	if !ok {
		return ctx, func(int) {}
	}
	span := telemetry.NewRemoteTrace(name, sc)
	if peer := r.Header.Get(peerHeader); peer != "" {
		span.SetAttr("caller", peer)
	}
	start := time.Now()
	return telemetry.ContextWithSpan(ctx, span), func(status int) {
		span.End()
		c.cfg.Recorder.Add(telemetry.RecordedTrace{
			TraceID:       sc.TraceID,
			RequestID:     r.Header.Get("X-Request-ID"),
			Endpoint:      endpoint,
			Process:       c.self,
			Status:        status,
			Error:         status >= 400,
			StartUnixNano: start.UnixNano(),
			DurMS:         float64(time.Since(start)) / float64(time.Millisecond),
			Root:          span.Snapshot(),
		})
	}
}

// statusCapture remembers the reply code for the handler-side trace
// record. RequestID passes through to the server's middleware writer so
// error bodies keep their correlation ID.
type statusCapture struct {
	http.ResponseWriter
	code int
}

func (s *statusCapture) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusCapture) RequestID() string {
	if rw, ok := s.ResponseWriter.(interface{ RequestID() string }); ok {
		return rw.RequestID()
	}
	return ""
}

// EvaluateHandler serves the internal POST /cluster/evaluate endpoint: it
// decodes a forwarded job, runs it through this replica's engine with
// forwarding pinned off (one hop max), and replies with the bare
// engine.Result as JSON. timeout bounds one evaluation (0 = none) — give
// it the same per-request budget the public /analyze endpoint uses, so a
// job costs the same wherever the ring lands it.
//
// Infrastructure failures map to status codes the forwarding side treats
// as failover triggers: 503 for overload/shutdown, 504 for timeout, 400
// for undecodable bodies. Analysis-level failures ride inside the Result
// like everywhere else.
func (c *Cluster) EvaluateHandler(e *engine.Engine, timeout time.Duration) http.Handler {
	return http.HandlerFunc(func(pw http.ResponseWriter, r *http.Request) {
		sw := &statusCapture{ResponseWriter: pw, code: http.StatusOK}
		w := http.ResponseWriter(sw)
		ctx, finish := c.remoteSpan(r, "cluster.evaluate", "/cluster/evaluate")
		defer func() { finish(sw.code) }()
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxForwardBody+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		if len(body) > maxForwardBody {
			writeError(w, http.StatusRequestEntityTooLarge, "body too large")
			return
		}
		req, err := decodeRequest(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		res, err := e.Submit(ctx, req)
		if err != nil {
			switch {
			case errors.Is(err, engine.ErrOverloaded), errors.Is(err, engine.ErrClosed):
				writeError(w, http.StatusServiceUnavailable, err.Error())
			case errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "evaluation timed out")
			default:
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		// Attribute the serve to the calling peer. Unknown senders (the
		// header is client-controlled) are ignored rather than given rows.
		if ps := c.peer(r.Header.Get(peerHeader)); ps != nil {
			ps.served.Add(1)
		}
		// Current peers negotiate the binary result codec via Accept; the
		// JSON fallback keeps mixed-version fleets forwarding during a
		// rolling upgrade.
		if strings.Contains(r.Header.Get("Accept"), resultContentType) {
			w.Header().Set("Content-Type", resultContentType)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(resultcodec.Encode(res))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(res)
	})
}

func writeError(w http.ResponseWriter, code int, msg string) {
	body := map[string]string{"error": msg}
	// The serving middleware's writer carries the request's correlation ID;
	// include it in the error body so a failed client call names the server
	// trace to pull.
	if rw, ok := w.(interface{ RequestID() string }); ok {
		if id := rw.RequestID(); id != "" {
			body["requestId"] = id
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}
