package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"kiter/internal/engine"
	"kiter/internal/resultcodec"
)

// maxForwardBody bounds a forwarded request body, mirroring the public
// API's cap.
const maxForwardBody = 64 << 20

// EvaluateHandler serves the internal POST /cluster/evaluate endpoint: it
// decodes a forwarded job, runs it through this replica's engine with
// forwarding pinned off (one hop max), and replies with the bare
// engine.Result as JSON. timeout bounds one evaluation (0 = none) — give
// it the same per-request budget the public /analyze endpoint uses, so a
// job costs the same wherever the ring lands it.
//
// Infrastructure failures map to status codes the forwarding side treats
// as failover triggers: 503 for overload/shutdown, 504 for timeout, 400
// for undecodable bodies. Analysis-level failures ride inside the Result
// like everywhere else.
func (c *Cluster) EvaluateHandler(e *engine.Engine, timeout time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxForwardBody+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		if len(body) > maxForwardBody {
			writeError(w, http.StatusRequestEntityTooLarge, "body too large")
			return
		}
		req, err := decodeRequest(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		res, err := e.Submit(ctx, req)
		if err != nil {
			switch {
			case errors.Is(err, engine.ErrOverloaded), errors.Is(err, engine.ErrClosed):
				writeError(w, http.StatusServiceUnavailable, err.Error())
			case errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "evaluation timed out")
			default:
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		// Attribute the serve to the calling peer. Unknown senders (the
		// header is client-controlled) are ignored rather than given rows.
		if ps := c.peer(r.Header.Get(peerHeader)); ps != nil {
			ps.served.Add(1)
		}
		// Current peers negotiate the binary result codec via Accept; the
		// JSON fallback keeps mixed-version fleets forwarding during a
		// rolling upgrade.
		if strings.Contains(r.Header.Get("Accept"), resultContentType) {
			w.Header().Set("Content-Type", resultContentType)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(resultcodec.Encode(res))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(res)
	})
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
