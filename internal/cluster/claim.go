package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"kiter/internal/engine"
	"kiter/internal/faultinject"
	"kiter/internal/resultcodec"
	"kiter/internal/telemetry"
)

// The claim subsystem is cross-process singleflight: before evaluating a
// key, a replica claims it at the key's ring owner. The owner's claim
// table leases each key to exactly one holder at a time, so duplicate
// submissions arriving at different replicas — even with forwarding off
// and every local memo cache disabled — collapse to one evaluation: the
// first claimant solves and publishes through the owner, and everyone
// else is served the published result.
//
// Leases make the protocol crash-safe: a holder that dies mid-solve lets
// its lease expire, after which the next claimant is granted the key and
// solves it. The table doubles as a short-retention publish buffer —
// published results are kept for one retention window — which is what
// answers claim waiters on replicas that run with no cache at all. Every
// failure path on the client side degrades to (nil, nil): the engine then
// evaluates locally, trading lost dedup for availability.

// claimEntry is one key's claim state at its owner: a held lease
// (holder set, res nil) or a published result (holder empty, res set).
type claimEntry struct {
	holder  string
	expires time.Time // lease expiry while held; retention expiry once published
	res     *engine.Result
}

// claimTable is the owner-side lease/publish map. Bounded: past
// claimTableCap live rows, expired ones are swept, and if the table is
// still full new claims are granted untracked — duplicates of those keys
// may double-solve until pressure passes, which is availability over
// dedup, never unbounded memory.
type claimTable struct {
	mu      sync.Mutex
	entries map[string]*claimEntry
}

const claimTableCap = 8192

func (t *claimTable) init() { t.entries = make(map[string]*claimEntry) }

func (t *claimTable) sweepLocked(now time.Time) {
	for k, e := range t.entries {
		if now.After(e.expires) {
			delete(t.entries, k)
		}
	}
}

// claim attempts to take key's lease for holder. Exactly one of three
// outcomes: the published result, granted=true (holder must evaluate), or
// heldFor — the current holder's remaining lease.
func (t *claimTable) claim(key, holder string, lease time.Duration) (res *engine.Result, granted bool, heldFor time.Duration) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e != nil && e.res != nil && !now.After(e.expires) {
		return e.res, false, 0
	}
	if e != nil && e.res == nil && e.holder != "" && e.holder != holder && now.Before(e.expires) {
		return nil, false, e.expires.Sub(now)
	}
	// Free, expired, stale-published, or re-claimed by its own holder.
	if e == nil {
		if len(t.entries) >= claimTableCap {
			t.sweepLocked(now)
		}
		if len(t.entries) >= claimTableCap {
			return nil, true, 0
		}
		e = &claimEntry{}
		t.entries[key] = e
	}
	e.holder = holder
	e.res = nil
	e.expires = now.Add(lease)
	return nil, true, 0
}

// publish buffers a completed result under key, completing any open claim.
func (t *claimTable) publish(key string, res *engine.Result, retention time.Duration) {
	if res == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		if len(t.entries) >= claimTableCap {
			t.sweepLocked(now)
		}
		if len(t.entries) >= claimTableCap {
			return
		}
		e = &claimEntry{}
		t.entries[key] = e
	}
	e.holder = ""
	e.res = res
	e.expires = now.Add(retention)
}

// release frees key if holder still holds it — an evaluation that failed
// or was cancelled must not make the next claimant wait out the lease.
func (t *claimTable) release(key, holder string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[key]; e != nil && e.res == nil && e.holder == holder {
		delete(t.entries, key)
	}
}

// published returns the buffered result for key, if any.
func (t *claimTable) published(key string) *engine.Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[key]; e != nil && e.res != nil && !time.Now().After(e.expires) {
		return e.res
	}
	return nil
}

// claimRequest is the body of POST /cluster/claim.
type claimRequest struct {
	Key    string `json:"key"`
	Holder string `json:"holder"`
	// Release frees the claim instead of taking it.
	Release bool `json:"release,omitempty"`
}

// claimReply is the handler's response: "granted" (caller holds the lease
// and must evaluate), "done" (a published result is ready on
// /cluster/cache/get), or "held" (another replica is evaluating — poll
// the publish buffer, re-claim after RetryAfterMS).
type claimReply struct {
	Status       string `json:"status"`
	RetryAfterMS int64  `json:"retryAfterMs,omitempty"`
}

// ClaimHandler serves POST /cluster/claim: the owner side of the
// cross-process singleflight protocol.
func (c *Cluster) ClaimHandler() http.Handler {
	return http.HandlerFunc(func(pw http.ResponseWriter, r *http.Request) {
		sw := &statusCapture{ResponseWriter: pw, code: http.StatusOK}
		w := http.ResponseWriter(sw)
		ctx, finish := c.remoteSpan(r, "cluster.claim", "/cluster/claim")
		defer func() { finish(sw.code) }()
		span := telemetry.FromContext(ctx)
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		var cr claimRequest
		if err := json.Unmarshal(body, &cr); err != nil || cr.Key == "" || cr.Holder == "" {
			writeError(w, http.StatusBadRequest, "claim requires key and holder")
			return
		}
		if cr.Release {
			c.claims.release(cr.Key, cr.Holder)
			span.SetAttr("release", true)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		res, granted, heldFor := c.claims.claim(cr.Key, cr.Holder, c.claimLease())
		reply := claimReply{Status: "held", RetryAfterMS: heldFor.Milliseconds()}
		switch {
		case res != nil:
			reply = claimReply{Status: "done"}
		case granted:
			reply = claimReply{Status: "granted"}
		}
		span.SetAttr("status", reply.Status)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(reply)
	})
}

func (c *Cluster) claimLease() time.Duration {
	if c.cfg.ClaimLease > 0 {
		return c.cfg.ClaimLease
	}
	return 30 * time.Second
}

// claimRetention is how long published results stay in the claim buffer:
// one lease window — long enough for every claimant that raced on the key
// to collect the result, short enough that the buffer never becomes a
// cache (the cache tiers are the cache).
func (c *Cluster) claimRetention() time.Duration { return c.claimLease() }

func (c *Cluster) claimPoll() time.Duration {
	if c.cfg.ClaimPoll > 0 {
		return c.cfg.ClaimPoll
	}
	return 25 * time.Millisecond
}

// Claim implements engine.Claimer (see that interface for the contract).
// Keys this replica owns are claimed against its own table in-process;
// everything else goes to the owner over /cluster/claim, breaker-guarded.
// Denied claims poll the owner's publish buffer while the holder solves,
// re-claiming when the holder's lease runs out, for at most two lease
// windows; any error at any step degrades to (nil, nil) — a plain local
// evaluation.
func (c *Cluster) Claim(ctx context.Context, key, fingerprint string) (*engine.Result, func(*engine.Result)) {
	if c.cfg.ClaimLease <= 0 {
		return nil, nil
	}
	owner := c.Owner(fingerprint)
	if owner == c.self {
		return c.claimLocal(ctx, key)
	}
	ps := c.peer(owner)
	if ps == nil {
		return nil, nil
	}
	ctx, span := telemetry.StartSpan(ctx, "cluster.claim")
	span.SetAttr("owner", owner)
	defer span.End()
	deadline := time.Now().Add(2 * c.claimLease())
	for {
		if ctx.Err() != nil {
			return nil, nil
		}
		if !ps.breaker.Allow() {
			span.Event("breaker.open", "peer", owner)
			return nil, nil
		}
		// Chaos seam: like the fleet cache tier, claims sever with the
		// "dispatch.forward" point and the engine solves locally.
		if faultinject.Fire(faultinject.PointForward) != nil {
			span.Event("chaos.severed", "point", faultinject.PointForward, "peer", owner)
			return nil, nil
		}
		reply, err := c.claimCall(ctx, owner, claimRequest{Key: key, Holder: c.self})
		if err != nil {
			c.noteForwardFailure(ps)
			span.SetAttr("error", err.Error())
			return nil, nil
		}
		ps.breaker.Success()
		span.SetAttr("status", reply.Status)
		switch reply.Status {
		case "granted":
			return nil, c.remoteRelease(owner, key)
		case "done":
			if res, ok, err := c.claimFetch(ctx, owner, key); err == nil && ok {
				return res, nil
			}
			// Published at the owner but unfetchable: solve locally rather
			// than loop against a wedged owner.
			return nil, nil
		case "held":
		default:
			return nil, nil
		}
		// Poll the publish buffer until the holder's lease runs out, then
		// loop back to re-claim (picking up an expired holder's key).
		reclaimAt := time.Now().Add(max(time.Duration(reply.RetryAfterMS)*time.Millisecond, c.claimPoll()))
		for time.Now().Before(reclaimAt) {
			if time.Now().After(deadline) || !sleepCtx(ctx, c.claimPoll()) {
				return nil, nil
			}
			res, ok, err := c.claimFetch(ctx, owner, key)
			if err != nil {
				c.noteForwardFailure(ps)
				span.SetAttr("error", err.Error())
				return nil, nil
			}
			ps.breaker.Success()
			if ok {
				return res, nil
			}
		}
		if time.Now().After(deadline) {
			return nil, nil
		}
	}
}

// claimFetch reads the owner's cache/publish buffer once. parent supplies
// cancellation and trace context; the op timeout still applies.
func (c *Cluster) claimFetch(parent context.Context, owner, key string) (*engine.Result, bool, error) {
	ctx, cancel := context.WithTimeout(parent, c.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/cluster/cache/get", nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set(cacheKeyHeader, key)
	req.Header.Set(peerHeader, c.self)
	if sc := telemetry.FromContext(parent).Context(); sc.Valid() {
		req.Header.Set(telemetry.Traceparent, sc.Traceparent())
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("cluster: claim fetch from %s: %s: %s", owner, resp.Status, firstLine(body))
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheBody+1))
	if err != nil {
		return nil, false, err
	}
	res, err := decodeBinaryResult(frame, owner)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// claimCall runs one claim round trip.
func (c *Cluster) claimCall(ctx context.Context, owner string, cr claimRequest) (*claimReply, error) {
	body, err := json.Marshal(cr)
	if err != nil {
		return nil, err
	}
	cctx, cancel := context.WithTimeout(ctx, c.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost,
		"http://"+owner+"/cluster/claim", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(peerHeader, c.self)
	if sc := telemetry.FromContext(ctx).Context(); sc.Valid() {
		req.Header.Set(telemetry.Traceparent, sc.Traceparent())
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: claim at %s: %s: %s", owner, resp.Status, firstLine(reply))
	}
	var out claimReply
	if err := json.Unmarshal(reply, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// remoteRelease builds the release callback for a granted remote claim.
// The engine calls it exactly once after its evaluation: with the result,
// the publish rides the cache-put path, which completes the claim at the
// owner; with nil, an explicit release frees the lease immediately. Both
// run asynchronously — the worker that just finished a solve must not
// block on fleet I/O. When the fleet cache tier is wired, the engine's
// write-through Put already publishes the result, so the success path
// skips the duplicate push (and a put dropped under pressure is backed
// up by lease expiry).
func (c *Cluster) remoteRelease(owner, key string) func(*engine.Result) {
	return func(res *engine.Result) {
		go func() {
			switch {
			case res == nil:
				if body, err := json.Marshal(claimRequest{Key: key, Holder: c.self, Release: true}); err == nil {
					ctx, cancel := context.WithTimeout(context.Background(), c.opTimeout())
					defer cancel()
					req, err := http.NewRequestWithContext(ctx, http.MethodPost,
						"http://"+owner+"/cluster/claim", bytes.NewReader(body))
					if err != nil {
						return
					}
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set(peerHeader, c.self)
					if resp, err := c.cfg.Client.Do(req); err == nil {
						io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
						resp.Body.Close()
					}
				}
			case c.remoteTier.Load():
				// The fleet tier's write-through publish is in flight.
			case resultcodec.EncodedSize(res) <= maxCacheBody:
				_ = c.cachePush(owner, key, resultcodec.Encode(res), "")
			}
		}()
	}
}

// claimLocal claims a self-owned key against the local table, so remote
// claimants and local submissions racing on this owner serialize through
// the same leases.
func (c *Cluster) claimLocal(ctx context.Context, key string) (*engine.Result, func(*engine.Result)) {
	deadline := time.Now().Add(2 * c.claimLease())
	for {
		res, granted, _ := c.claims.claim(key, c.self, c.claimLease())
		if res != nil {
			return res, nil
		}
		if granted {
			return nil, func(r *engine.Result) {
				if r == nil {
					c.claims.release(key, c.self)
					return
				}
				c.claims.publish(key, r, c.claimRetention())
			}
		}
		// Held by a remote claimant evaluating our key: wait for its
		// publish or lease expiry. (The in-process flightGroup already
		// serialized local duplicates, so contention here is remote.)
		if time.Now().After(deadline) || !sleepCtx(ctx, c.claimPoll()) {
			return nil, nil
		}
	}
}
