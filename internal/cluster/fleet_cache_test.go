package cluster

import (
	"context"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"kiter/internal/engine"
	"kiter/internal/faultinject"
	"kiter/internal/gen"
)

// The fleet tier and the claim client are engine backends/seams.
var (
	_ engine.CacheBackend = (*RemoteCache)(nil)
	_ engine.TierStatser  = (*RemoteCache)(nil)
	_ engine.Claimer      = (*Cluster)(nil)
)

// cacheFleetOpts tunes one startCacheFleet replica.
type cacheFleetOpts struct {
	// fleetTier composes a RemoteCache behind the local memory tier.
	fleetTier bool
	// dispatch wires the cluster as the engine's Dispatcher.
	dispatch bool
	// claimLease enables cross-process claims at this lease (0 = off).
	claimLease time.Duration
	// noLocalCache disables the engine's local memo cache entirely.
	noLocalCache bool
}

// startCacheReplica boots one replica with the full PR 9 surface mounted:
// evaluate, cache get/put, claim, healthz — the in-process mirror of
// kiterd's cluster wiring.
func startCacheReplica(t *testing.T, ln net.Listener, peers []string, opts cacheFleetOpts) *replica {
	t.Helper()
	addr := ln.Addr().String()
	cl, err := New(Config{
		Self:             addr,
		Peers:            peers,
		ForwardTimeout:   10 * time.Second,
		ProbeInterval:    20 * time.Millisecond,
		MaxProbeInterval: 100 * time.Millisecond,
		ClaimLease:       opts.claimLease,
		ClaimPoll:        2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("cluster.New(%s): %v", addr, err)
	}
	ecfg := engine.Config{Workers: 2}
	if opts.dispatch {
		ecfg.Dispatcher = cl
	}
	if opts.claimLease > 0 {
		ecfg.Claims = cl
	}
	if opts.noLocalCache {
		ecfg.CacheCapacity = -1
	}
	if opts.fleetTier {
		local := engine.NewMemoryCache(16, 4096)
		cl.SetLocalCache(local)
		ecfg.CacheBackend = engine.NewTieredCache(local, NewRemoteCache(cl))
	} else {
		cl.SetLocalCache(engine.NewMemoryCache(16, 4096))
	}
	eng := engine.New(ecfg)
	mux := http.NewServeMux()
	mux.Handle("/cluster/evaluate", cl.EvaluateHandler(eng, 30*time.Second))
	mux.Handle("/cluster/cache/get", cl.CacheGetHandler())
	mux.Handle("/cluster/cache/put", cl.CachePutHandler())
	mux.Handle("/cluster/claim", cl.ClaimHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	r := &replica{addr: addr, eng: eng, cl: cl, srv: srv}
	t.Cleanup(func() {
		r.srv.Close()
		r.eng.Close()
		r.cl.Close()
	})
	return r
}

// startCacheFleet boots n identically-configured replicas clustered with
// each other.
func startCacheFleet(t *testing.T, n int, opts cacheFleetOpts) []*replica {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	reps := make([]*replica, n)
	for i := range reps {
		reps[i] = startCacheReplica(t, lns[i], addrs, opts)
	}
	return reps
}

// fleetTierStats returns the named tier's stats row from an engine.
func tierStats(t *testing.T, e *engine.Engine, tier string) engine.CacheTierStats {
	t.Helper()
	for _, ts := range e.Stats().CacheTiers {
		if ts.Tier == tier {
			return ts
		}
	}
	t.Fatalf("no %q tier on stats: %+v", tier, e.Stats().CacheTiers)
	return engine.CacheTierStats{}
}

// TestFleetWarmStart is the cold-join acceptance test: after a fleet has
// evaluated a sweep, a freshly joined replica replaying the same
// fingerprint set must be served entirely from the fleet tier — zero local
// solves — including the keys the new ring assigns to the joiner itself
// (fetched from their ring successor, the previous owner).
func TestFleetWarmStart(t *testing.T) {
	single := engine.New(engine.Config{Workers: 2})
	defer single.Close()
	want := runSweep(t, single, testSpec(t))

	opts := cacheFleetOpts{fleetTier: true, dispatch: true}
	reps := startCacheFleet(t, 3, opts)
	got := runSweep(t, reps[0].eng, testSpec(t))
	requireSameEnvelope(t, got, want)
	if total := fleetEvaluations(reps); total != uint64(want.Scenarios) {
		t.Fatalf("warm fleet evaluations = %d, want %d", total, want.Scenarios)
	}

	// Cold replica joins the warm fleet and replays the sweep.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	peers := []string{reps[0].addr, reps[1].addr, reps[2].addr}
	cold := startCacheReplica(t, ln, peers, opts)
	cgot := runSweep(t, cold.eng, testSpec(t))
	requireSameEnvelope(t, cgot, want)

	cs := cold.eng.Stats()
	if cs.Evaluations != 0 {
		t.Fatalf("cold replica solved %d scenarios locally, want 0", cs.Evaluations)
	}
	fleet := tierStats(t, cold.eng, "fleet")
	if fleet.Hits < uint64(want.Scenarios)*9/10 {
		t.Fatalf("fleet-tier hits = %d of %d scenarios, want >= 90%%", fleet.Hits, want.Scenarios)
	}
	if fleet.Bytes == 0 {
		t.Fatalf("fleet tier moved no bytes: %+v", fleet)
	}
	// The memory tier reports a footprint estimate now that promotions
	// filled it (satellite: Bytes for every tier, not just disk).
	if mem := tierStats(t, cold.eng, "memory"); mem.Entries == 0 || mem.Bytes == 0 {
		t.Fatalf("memory tier gauges = %+v, want entries and bytes > 0", mem)
	}
	// And the whole fleet still performed no additional evaluation.
	if total := fleetEvaluations(append(reps, cold)); total != uint64(want.Scenarios) {
		t.Fatalf("fleet evaluations after cold replay = %d, want %d", total, want.Scenarios)
	}
}

// TestFleetTierChaosDegrade arms the dispatch.forward fault — severing
// every fleet interaction: forwards, cache tier, claims — and asserts the
// replica degrades gracefully: warm keys keep serving from the local
// memory tier, cold keys fall back to local evaluation, and no request
// fails.
func TestFleetTierChaosDegrade(t *testing.T) {
	single := engine.New(engine.Config{Workers: 2})
	defer single.Close()
	want := runSweep(t, single, testSpec(t))

	opts := cacheFleetOpts{fleetTier: true, dispatch: true, claimLease: 2 * time.Second}
	reps := startCacheFleet(t, 3, opts)
	got := runSweep(t, reps[0].eng, testSpec(t))
	requireSameEnvelope(t, got, want)

	set, err := faultinject.Parse("dispatch.forward:error")
	if err != nil {
		t.Fatalf("parse faults: %v", err)
	}
	faultinject.Activate(set)
	defer faultinject.Activate(nil)
	firedBefore := faultinject.Fired(faultinject.PointForward)

	// Replica 0 is warm for every key (it ran the sweep): the re-run must
	// be answered wholly by its local tiers.
	evalsBefore := reps[0].eng.Stats().Evaluations
	requireSameEnvelope(t, runSweep(t, reps[0].eng, testSpec(t)), want)
	if d := reps[0].eng.Stats().Evaluations - evalsBefore; d != 0 {
		t.Fatalf("warm replica re-evaluated %d scenarios under chaos, want 0 (memory tier)", d)
	}

	// Replica 1 is warm only for its own shard: everything else must fall
	// back to a local solve — degraded but correct, nothing failing.
	s1Before := reps[1].eng.Stats()
	requireSameEnvelope(t, runSweep(t, reps[1].eng, testSpec(t)), want)
	s1 := reps[1].eng.Stats()
	if d := s1.Evaluations - s1Before.Evaluations; d == 0 {
		t.Fatal("severed replica performed no local evaluations; expected fallback solves")
	}
	if s1.Errors != s1Before.Errors {
		t.Fatalf("chaos surfaced evaluation errors: %d -> %d", s1Before.Errors, s1.Errors)
	}
	if faultinject.Fired(faultinject.PointForward) == firedBefore {
		t.Fatal("dispatch.forward fault never fired; chaos exercised nothing")
	}
}

// TestClaimDedup is the claims acceptance test: duplicate submissions
// through different replicas cost exactly one evaluation even with every
// local memo cache disabled and no forwarding configured — the leased
// claims alone carry the guarantee.
func TestClaimDedup(t *testing.T) {
	reps := startCacheFleet(t, 3, cacheFleetOpts{
		claimLease:   2 * time.Second,
		noLocalCache: true,
	})

	// Sequential duplicates, one replica after another.
	for _, r := range reps {
		res, err := r.eng.Submit(context.Background(), &engine.Request{
			Graph: gen.Figure2(), Method: engine.MethodKIter,
		})
		if err != nil {
			t.Fatalf("submit via %s: %v", r.addr, err)
		}
		if res.Throughput == nil || !res.Throughput.Optimal {
			t.Fatalf("bad result via %s: %+v", r.addr, res)
		}
	}
	if total := fleetEvaluations(reps); total != 1 {
		t.Fatalf("fleet evaluations after sequential duplicates = %d, want 1", total)
	}
	var granted, served uint64
	for _, r := range reps {
		s := r.eng.Stats()
		granted += s.ClaimsGranted
		served += s.ClaimsServed
	}
	if granted != 1 || served != 2 {
		t.Fatalf("claims granted/served = %d/%d, want 1/2", granted, served)
	}

	// Concurrent duplicates of a fresh graph through every replica at
	// once: local singleflight coalesces same-replica copies, the owner's
	// claim table the cross-replica leaders.
	g2 := gen.SampleRateConverter()
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for _, r := range reps {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(e *engine.Engine) {
				defer wg.Done()
				_, err := e.Submit(context.Background(), &engine.Request{Graph: g2, Method: engine.MethodKIter})
				errs <- err
			}(r.eng)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent submit: %v", err)
		}
	}
	if total := fleetEvaluations(reps); total != 2 {
		t.Fatalf("fleet evaluations after concurrent duplicates = %d, want 2 (one per distinct graph)", total)
	}
}

// TestClaimTableLifecycle pins the owner-side lease semantics the protocol
// rests on.
func TestClaimTableLifecycle(t *testing.T) {
	var tb claimTable
	tb.init()
	lease := 50 * time.Millisecond

	// First claimant is granted; a second is held for the lease.
	if res, granted, _ := tb.claim("k", "a", lease); res != nil || !granted {
		t.Fatalf("first claim: res=%v granted=%v", res, granted)
	}
	if _, granted, heldFor := tb.claim("k", "b", lease); granted || heldFor <= 0 {
		t.Fatalf("second claim: granted=%v heldFor=%v", granted, heldFor)
	}
	// The holder may re-claim its own key (idempotent retry).
	if _, granted, _ := tb.claim("k", "a", lease); !granted {
		t.Fatal("holder re-claim denied")
	}

	// Publish completes the claim; subsequent claims see the result.
	res := &engine.Result{Fingerprint: "fp"}
	tb.publish("k", res, time.Minute)
	if got, granted, _ := tb.claim("k", "b", lease); got != res || granted {
		t.Fatalf("post-publish claim: got=%v granted=%v", got, granted)
	}
	if tb.published("k") != res {
		t.Fatal("published lookup missed")
	}

	// Release frees a held key immediately.
	if _, granted, _ := tb.claim("k2", "a", lease); !granted {
		t.Fatal("k2 claim denied")
	}
	tb.release("k2", "a")
	if _, granted, _ := tb.claim("k2", "b", lease); !granted {
		t.Fatal("k2 not reclaimable after release")
	}
	// A non-holder's release is a no-op.
	tb.release("k2", "a")
	if _, granted, _ := tb.claim("k2", "c", lease); granted {
		t.Fatal("stranger release freed a held key")
	}

	// An expired lease is claimable by the next arrival (crashed holder).
	if _, granted, _ := tb.claim("k3", "a", time.Millisecond); !granted {
		t.Fatal("k3 claim denied")
	}
	time.Sleep(5 * time.Millisecond)
	if _, granted, _ := tb.claim("k3", "b", lease); !granted {
		t.Fatal("expired lease not reclaimable")
	}
}

func TestKeyFingerprint(t *testing.T) {
	for in, want := range map[string]string{
		"abc|kiter|throughput": "abc",
		"abc":                  "abc",
		"|kiter":               "",
	} {
		if got := keyFingerprint(in); got != want {
			t.Fatalf("keyFingerprint(%q) = %q, want %q", in, got, want)
		}
	}
}
