package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kiter/internal/engine"
	"kiter/internal/gen"
)

func TestWireRoundTrip(t *testing.T) {
	g := gen.VideoPipeline()
	job := &engine.DispatchJob{
		Graph:           g,
		Analyses:        []engine.AnalysisKind{engine.AnalysisThroughput, engine.AnalysisSchedule},
		Method:          engine.MethodKIter,
		ApplyCapacities: true,
		NoCache:         true,
		Fingerprint:     g.FingerprintHex(),
	}
	body, err := encodeJob(job)
	if err != nil {
		t.Fatalf("encodeJob: %v", err)
	}
	req, err := decodeRequest(body)
	if err != nil {
		t.Fatalf("decodeRequest: %v", err)
	}
	if req.Graph.FingerprintHex() != g.FingerprintHex() {
		t.Fatal("graph fingerprint changed across the wire")
	}
	if req.Method != engine.MethodKIter || !req.ApplyCapacities || !req.NoCache {
		t.Fatalf("request knobs lost: %+v", req)
	}
	if len(req.Analyses) != 2 {
		t.Fatalf("analyses lost: %v", req.Analyses)
	}
	if !req.NoForward {
		t.Fatal("decoded request not pinned local — forwarding loops possible")
	}
}

func TestDecodeRequestRejectsUnknownFields(t *testing.T) {
	if _, err := decodeRequest([]byte(`{"graph": {}, "shiny": true}`)); err == nil {
		t.Fatal("unknown wire field accepted — version skew would be silent")
	}
	if _, err := decodeRequest([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// newTestCluster builds a cluster with fast probe timings.
func newTestCluster(t *testing.T, self string, peers []string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:             self,
		Peers:            peers,
		ForwardTimeout:   5 * time.Second,
		ProbeInterval:    20 * time.Millisecond,
		MaxProbeInterval: 100 * time.Millisecond,
		ProbeTimeout:     time.Second,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestProbeRevivesFlappyPeer(t *testing.T) {
	// A peer that answers /healthz only after a few failures: the cluster
	// must mark it unhealthy on a forward failure, keep backing off, and
	// revive it once a probe succeeds.
	var healthyNow atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.Error(w, "nope", http.StatusInternalServerError)
			return
		}
		if !healthyNow.Load() {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()
	addr := strings.TrimPrefix(peer.URL, "http://")

	c := newTestCluster(t, "self:1", []string{addr})
	ps := c.peer(addr)
	if !ps.healthy.Load() {
		t.Fatal("peer not optimistic-healthy at start")
	}
	c.markUnhealthy(ps)
	if c.alive(addr) {
		t.Fatal("peer alive after markUnhealthy")
	}

	// While it keeps failing, probes accrue and it stays out of the ring.
	deadline := time.Now().Add(2 * time.Second)
	for ps.probes.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("prober never probed: %d probes", ps.probes.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.alive(addr) {
		t.Fatal("failing peer revived")
	}

	healthyNow.Store(true)
	deadline = time.Now().Add(2 * time.Second)
	for !c.alive(addr) {
		if time.Now().After(deadline) {
			t.Fatal("healthy peer never revived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats := c.DispatchStats()
	if len(stats) != 1 || !stats[0].Healthy || stats[0].Probes == 0 {
		t.Fatalf("stats after revival: %+v", stats)
	}
}

func TestOwnerFallsBackToSelfWhenAllPeersDead(t *testing.T) {
	c := newTestCluster(t, "self:1", []string{"p1:1", "p2:2"})
	for _, p := range []string{"p1:1", "p2:2"} {
		c.markUnhealthy(c.peer(p))
	}
	// Every key must now come home.
	for i := 0; i < 50; i++ {
		if o := c.Owner(string(rune('a' + i))); o != "self:1" {
			t.Fatalf("owner with all peers dead = %s", o)
		}
	}
}

func TestSelfExcludedFromPeers(t *testing.T) {
	c := newTestCluster(t, "self:1", []string{"self:1", "p1:1"})
	if _, ok := c.peers["self:1"]; ok {
		t.Fatal("self tracked as its own peer")
	}
	if len(c.DispatchStats()) != 1 {
		t.Fatalf("stats rows = %d, want 1", len(c.DispatchStats()))
	}
}
