package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kiter/internal/engine"
	"kiter/internal/gen"
	"kiter/internal/resilience"
)

func TestWireRoundTrip(t *testing.T) {
	g := gen.VideoPipeline()
	job := &engine.DispatchJob{
		Graph:           g,
		Analyses:        []engine.AnalysisKind{engine.AnalysisThroughput, engine.AnalysisSchedule},
		Method:          engine.MethodKIter,
		ApplyCapacities: true,
		NoCache:         true,
		Fingerprint:     g.FingerprintHex(),
	}
	body, err := encodeJob(job)
	if err != nil {
		t.Fatalf("encodeJob: %v", err)
	}
	req, err := decodeRequest(body)
	if err != nil {
		t.Fatalf("decodeRequest: %v", err)
	}
	if req.Graph.FingerprintHex() != g.FingerprintHex() {
		t.Fatal("graph fingerprint changed across the wire")
	}
	if req.Method != engine.MethodKIter || !req.ApplyCapacities || !req.NoCache {
		t.Fatalf("request knobs lost: %+v", req)
	}
	if len(req.Analyses) != 2 {
		t.Fatalf("analyses lost: %v", req.Analyses)
	}
	if !req.NoForward {
		t.Fatal("decoded request not pinned local — forwarding loops possible")
	}
}

func TestDecodeRequestRejectsUnknownFields(t *testing.T) {
	if _, err := decodeRequest([]byte(`{"graph": {}, "shiny": true}`)); err == nil {
		t.Fatal("unknown wire field accepted — version skew would be silent")
	}
	if _, err := decodeRequest([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// newTestCluster builds a cluster with fast probe timings.
func newTestCluster(t *testing.T, self string, peers []string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:             self,
		Peers:            peers,
		ForwardTimeout:   5 * time.Second,
		ProbeInterval:    20 * time.Millisecond,
		MaxProbeInterval: 100 * time.Millisecond,
		ProbeTimeout:     time.Second,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestProbeRevivesFlappyPeer(t *testing.T) {
	// A peer that answers /healthz only after a few failures: the cluster
	// must mark it unhealthy on a forward failure, keep backing off, and
	// revive it once a probe succeeds.
	var healthyNow atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.Error(w, "nope", http.StatusInternalServerError)
			return
		}
		if !healthyNow.Load() {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()
	addr := strings.TrimPrefix(peer.URL, "http://")

	c := newTestCluster(t, "self:1", []string{addr})
	ps := c.peer(addr)
	if st := ps.breaker.State(); st != resilience.BreakerClosed {
		t.Fatalf("peer breaker %v at start, want closed (optimistic)", st)
	}
	c.markUnhealthy(ps)
	if c.alive(addr) {
		t.Fatal("peer alive after markUnhealthy")
	}

	// While it keeps failing, probes accrue and it stays out of the ring.
	deadline := time.Now().Add(2 * time.Second)
	for ps.probes.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("prober never probed: %d probes", ps.probes.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.alive(addr) {
		t.Fatal("failing peer revived")
	}

	healthyNow.Store(true)
	deadline = time.Now().Add(2 * time.Second)
	for !c.alive(addr) {
		if time.Now().After(deadline) {
			t.Fatal("healthy peer never revived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats := c.DispatchStats()
	if len(stats) != 1 || !stats[0].Healthy || stats[0].Probes == 0 {
		t.Fatalf("stats after revival: %+v", stats)
	}
	// A probe revival is provisional: the peer re-enters the ring
	// half-open, and only a successful forward closes the breaker.
	if stats[0].BreakerState != "half-open" || stats[0].BreakerOpens == 0 {
		t.Fatalf("revived breaker = %q opens=%d, want half-open with an open on record",
			stats[0].BreakerState, stats[0].BreakerOpens)
	}
}

func TestOwnerFallsBackToSelfWhenAllPeersDead(t *testing.T) {
	c := newTestCluster(t, "self:1", []string{"p1:1", "p2:2"})
	for _, p := range []string{"p1:1", "p2:2"} {
		c.markUnhealthy(c.peer(p))
	}
	// Every key must now come home.
	for i := 0; i < 50; i++ {
		if o := c.Owner(string(rune('a' + i))); o != "self:1" {
			t.Fatalf("owner with all peers dead = %s", o)
		}
	}
}

func TestSelfExcludedFromPeers(t *testing.T) {
	c := newTestCluster(t, "self:1", []string{"self:1", "p1:1"})
	if _, ok := c.peers["self:1"]; ok {
		t.Fatal("self tracked as its own peer")
	}
	if len(c.DispatchStats()) != 1 {
		t.Fatalf("stats rows = %d, want 1", len(c.DispatchStats()))
	}
}

// TestForwardRetryThenBreakerOpens walks one peer through the whole
// breaker lifecycle via Dispatch: a flaky forward is retried once before
// failing over, consecutive failures open the breaker (no more retries,
// peer out of the ring), a passing probe half-opens it, and the next
// successful forward closes it again.
func TestForwardRetryThenBreakerOpens(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/cluster/evaluate", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if failing.Load() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		req, err := decodeRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(&engine.Result{Fingerprint: req.Graph.FingerprintHex()})
	})
	peer := httptest.NewServer(mux)
	defer peer.Close()
	addr := strings.TrimPrefix(peer.URL, "http://")

	c := newTestCluster(t, "self:1", []string{addr})
	ps := c.peer(addr)

	// A job whose fingerprint the ring places on the peer.
	g := gen.Figure2()
	job := &engine.DispatchJob{
		Graph:       g,
		Analyses:    []engine.AnalysisKind{engine.AnalysisThroughput},
		Method:      engine.MethodKIter,
		Fingerprint: g.FingerprintHex(),
	}
	if c.Owner(job.Fingerprint) != addr {
		// Both members are healthy; if the ring happens to place this
		// graph on self, dispatch is a no-op and the test proves nothing.
		t.Skip("ring placed the test fingerprint on self")
	}

	ctx := context.Background()
	// Dispatch 1: attempt + retry both fail -> two breaker failures, one
	// retry, one failover, breaker still closed (threshold 3).
	if _, handled, err := c.Dispatch(ctx, job); handled || err != nil {
		t.Fatalf("dispatch 1 = handled %v err %v, want local fallback", handled, err)
	}
	if got := ps.retried.Load(); got != 1 {
		t.Fatalf("retried = %d after dispatch 1, want 1", got)
	}
	if st := ps.breaker.State(); st != resilience.BreakerClosed {
		t.Fatalf("breaker %v after dispatch 1, want closed", st)
	}
	// Dispatch 2: third consecutive failure opens the breaker; no retry
	// against a peer just declared down.
	if _, handled, err := c.Dispatch(ctx, job); handled || err != nil {
		t.Fatalf("dispatch 2 = handled %v err %v, want local fallback", handled, err)
	}
	if st := ps.breaker.State(); st != resilience.BreakerOpen {
		t.Fatalf("breaker %v after dispatch 2, want open", st)
	}
	if got := ps.retried.Load(); got != 1 {
		t.Fatalf("retried = %d after breaker opened, want still 1", got)
	}
	if c.alive(addr) {
		t.Fatal("open-breaker peer still in the ring")
	}

	// The peer recovers: its /healthz already passes, so the prober
	// half-opens the breaker on its schedule.
	failing.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for ps.breaker.State() != resilience.BreakerHalfOpen {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never half-opened: %v", ps.breaker.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Dispatch 3: the half-open trial succeeds and closes the breaker.
	res, handled, err := c.Dispatch(ctx, job)
	if err != nil || !handled || res == nil || res.Peer != addr {
		t.Fatalf("dispatch 3 = %+v handled %v err %v, want forwarded result", res, handled, err)
	}
	if st := ps.breaker.State(); st != resilience.BreakerClosed {
		t.Fatalf("breaker %v after successful trial, want closed", st)
	}
	stats := c.DispatchStats()
	if len(stats) != 1 || stats[0].BreakerOpens != 1 || stats[0].Retried != 1 ||
		stats[0].Forwarded != 1 || stats[0].FailedOver != 2 {
		t.Fatalf("final stats: %+v", stats[0])
	}
}
