package csdf

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrInconsistent is returned when no repetition vector exists, i.e. the
// balance equations qt·ib = qt′·ob admit no positive integer solution.
var ErrInconsistent = errors.New("csdf: graph is not consistent (no repetition vector)")

// ErrRepetitionOverflow is returned by RepetitionVector when the smallest
// repetition vector does not fit in int64 components.
var ErrRepetitionOverflow = errors.New("csdf: repetition vector exceeds int64")

// RepetitionVectorBig computes the smallest positive integer repetition
// vector q such that qt·ib = qt′·ob for every buffer b = (t, t′)
// (Section 2.2). Each weakly-connected component is normalized
// independently to its smallest integer solution. The computation is exact
// (math/big), immune to the integer overflow the paper reports fixing in
// SDF3's implementation.
func (g *Graph) RepetitionVectorBig() ([]*big.Int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.tasks)
	// Fractional solution per component via BFS over the undirected
	// buffer adjacency: fixing f(root)=1, each buffer b=(t,t′) forces
	// f(t′) = f(t)·ib/ob.
	frac := make([]*big.Rat, n)
	adj := make([][]int, n) // buffer indices incident to each task
	for i := range g.buffers {
		b := &g.buffers[i]
		adj[b.Src] = append(adj[b.Src], i)
		if b.Dst != b.Src {
			adj[b.Dst] = append(adj[b.Dst], i)
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var compRoots []TaskID
	queue := make([]TaskID, 0, n)
	for root := 0; root < n; root++ {
		if comp[root] >= 0 {
			continue
		}
		c := len(compRoots)
		compRoots = append(compRoots, TaskID(root))
		comp[root] = c
		frac[root] = big.NewRat(1, 1)
		queue = append(queue[:0], TaskID(root))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, bi := range adj[u] {
				b := &g.buffers[bi]
				ib, ob := b.TotalIn(), b.TotalOut()
				// Self-loop: requires ib == ob, no propagation.
				if b.Src == b.Dst {
					if ib != ob {
						return nil, fmt.Errorf("%w: self-loop buffer %d has ib=%d ≠ ob=%d", ErrInconsistent, bi, ib, ob)
					}
					continue
				}
				var from, to TaskID
				var ratio *big.Rat
				if b.Src == u {
					from, to = b.Src, b.Dst
					ratio = big.NewRat(ib, ob) // f(dst) = f(src)·ib/ob
				} else {
					from, to = b.Dst, b.Src
					ratio = big.NewRat(ob, ib)
				}
				want := new(big.Rat).Mul(frac[from], ratio)
				if frac[to] == nil {
					frac[to] = want
					comp[to] = c
					queue = append(queue, to)
				} else if frac[to].Cmp(want) != 0 {
					return nil, fmt.Errorf("%w: cycle through buffer %d imbalanced", ErrInconsistent, bi)
				}
			}
		}
	}
	// Re-check every buffer (BFS tree covers all, but self-loops and
	// parallel buffers deserve an explicit pass).
	for i := range g.buffers {
		b := &g.buffers[i]
		lhs := new(big.Rat).Mul(frac[b.Src], big.NewRat(b.TotalIn(), 1))
		rhs := new(big.Rat).Mul(frac[b.Dst], big.NewRat(b.TotalOut(), 1))
		if lhs.Cmp(rhs) != 0 {
			return nil, fmt.Errorf("%w: buffer %d imbalanced", ErrInconsistent, i)
		}
	}
	// Scale each component to the smallest positive integer vector:
	// multiply by lcm of denominators, then divide by gcd of numerators.
	q := make([]*big.Int, n)
	for c := range compRoots {
		lcmDen := big.NewInt(1)
		for t := 0; t < n; t++ {
			if comp[t] != c {
				continue
			}
			d := frac[t].Denom()
			gcd := new(big.Int).GCD(nil, nil, lcmDen, d)
			lcmDen.Div(lcmDen, gcd).Mul(lcmDen, d)
		}
		gcdNum := new(big.Int)
		for t := 0; t < n; t++ {
			if comp[t] != c {
				continue
			}
			v := new(big.Rat).Mul(frac[t], new(big.Rat).SetInt(lcmDen))
			q[t] = new(big.Int).Set(v.Num()) // v is integral now
			gcdNum.GCD(nil, nil, gcdNum, q[t])
		}
		if gcdNum.Sign() > 0 && gcdNum.Cmp(big.NewInt(1)) != 0 {
			for t := 0; t < n; t++ {
				if comp[t] == c {
					q[t].Div(q[t], gcdNum)
				}
			}
		}
	}
	return q, nil
}

// RepetitionVector computes the smallest repetition vector as int64
// components, returning ErrRepetitionOverflow if any component does not
// fit. Most callers should use this; RepetitionVectorBig is the exact
// fallback.
func (g *Graph) RepetitionVector() ([]int64, error) {
	qb, err := g.RepetitionVectorBig()
	if err != nil {
		return nil, err
	}
	q := make([]int64, len(qb))
	for i, v := range qb {
		if !v.IsInt64() {
			return nil, ErrRepetitionOverflow
		}
		q[i] = v.Int64()
	}
	return q, nil
}

// Consistent reports whether the graph admits a repetition vector.
func (g *Graph) Consistent() bool {
	_, err := g.RepetitionVectorBig()
	return err == nil
}

// SumRepetition returns Σt qt as a big.Int (the complexity measure used in
// Tables 1 and 2 of the paper).
func (g *Graph) SumRepetition() (*big.Int, error) {
	qb, err := g.RepetitionVectorBig()
	if err != nil {
		return nil, err
	}
	s := new(big.Int)
	for _, v := range qb {
		s.Add(s, v)
	}
	return s, nil
}
