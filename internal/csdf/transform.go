package csdf

import (
	"errors"
	"fmt"
)

// ErrNoCapacities is returned by WithCapacities when no buffer carries a
// capacity bound.
var ErrNoCapacities = errors.New("csdf: no buffer has a capacity bound")

// WithCapacities returns a new graph in which every capacity bound is made
// analytically effective through the classical reverse-buffer encoding: for
// each buffer b = (t, t′) with Capacity C > 0, a reverse buffer
// b′ = (t′, t) is added with in_{b′} = out_b, out_{b′} = in_b and
// M0(b′) = C − M0(b).
//
// The reverse buffer counts the free space of b: the producer t claims
// inb(p) space tokens before phase tp starts (out_{b′} = in_b, consumed at
// start), and the consumer t′ releases outb(p′) space tokens when phase
// t′p′ completes (in_{b′} = out_b, produced at end). A marking of b plus
// its mirror therefore always sums to C, which is exactly the back-pressure
// semantics of a bounded FIFO. Capacity fields are cleared on the result so
// the transform is idempotent in effect.
//
// This is the construction used to produce the "fixed buffer size" rows of
// Table 2 of the paper.
func (g *Graph) WithCapacities() (*Graph, error) {
	bounded := 0
	for i := range g.buffers {
		if g.buffers[i].Capacity > 0 {
			bounded++
		}
	}
	if bounded == 0 {
		return nil, ErrNoCapacities
	}
	out := g.Clone()
	out.Name = g.Name + "+capacities"
	for i := range g.buffers {
		b := &g.buffers[i]
		if b.Capacity <= 0 {
			continue
		}
		rev := out.AddBuffer(
			b.Name+"~rev",
			b.Dst, b.Src,
			b.Out, b.In,
			b.Capacity-b.Initial,
		)
		_ = rev
	}
	for i := range out.buffers {
		out.buffers[i].Capacity = 0
	}
	return out, nil
}

// ScaleCapacities returns a copy of g whose every buffer capacity is set to
// ceil(factor · minimal-feasible-marking surrogate): concretely, capacity
// of each buffer is set to scale·(ib+ob) + M0, a standard safe starting
// size used by buffer-sizing searches. scale must be ≥ 1.
func (g *Graph) ScaleCapacities(scale int64) *Graph {
	out := g.Clone()
	for i := range out.buffers {
		b := &out.buffers[i]
		b.Capacity = scale*(b.TotalIn()+b.TotalOut()) + b.Initial
	}
	return out
}

// Unbounded returns a copy of g with all capacity bounds removed.
func (g *Graph) Unbounded() *Graph {
	out := g.Clone()
	for i := range out.buffers {
		out.buffers[i].Capacity = 0
	}
	return out
}

// NormalizePhases returns a copy of g in which every task whose duration
// and rate vectors are all uniform repetitions of a shorter pattern is
// reduced to that pattern. This is a safe structural simplification: a task
// whose per-phase behaviour repeats k times within one declared iteration
// behaves identically with the shorter phase list and a repetition count k
// times larger, and throughput analyses are invariant to it. Tasks
// referenced by buffers are rewritten consistently.
//
// NormalizePhases is conservative: a task is only reduced when all its
// adjacent rate vectors share the same repetition structure.
func (g *Graph) NormalizePhases() *Graph {
	out := g.Clone()
	for ti := range out.tasks {
		t := &out.tasks[ti]
		n := t.Phases()
		if n <= 1 {
			continue
		}
		// Find the smallest period d dividing n such that durations and
		// every adjacent rate vector are d-periodic.
		for _, d := range divisorsAsc(n) {
			if d == n {
				break
			}
			if !isPeriodic(t.Durations, d) {
				continue
			}
			ok := true
			for bi := range out.buffers {
				b := &out.buffers[bi]
				if b.Src == TaskID(ti) && !isPeriodic(b.In, d) {
					ok = false
					break
				}
				if b.Dst == TaskID(ti) && !isPeriodic(b.Out, d) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			t.Durations = append([]int64(nil), t.Durations[:d]...)
			for bi := range out.buffers {
				b := &out.buffers[bi]
				if b.Src == TaskID(ti) {
					b.In = append([]int64(nil), b.In[:d]...)
				}
				if b.Dst == TaskID(ti) {
					b.Out = append([]int64(nil), b.Out[:d]...)
				}
			}
			break
		}
	}
	return out
}

func divisorsAsc(n int) []int {
	var ds []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
		}
	}
	return ds
}

func isPeriodic(v []int64, d int) bool {
	for i := d; i < len(v); i++ {
		if v[i] != v[i-d] {
			return false
		}
	}
	return true
}

// Stats summarizes a graph for reporting (the columns of Tables 1 and 2).
type Stats struct {
	Tasks       int
	Buffers     int
	TotalPhases int
	MaxPhases   int
	SumQ        string // Σt qt, decimal (may exceed int64)
	IsSDF       bool
}

// ComputeStats returns summary statistics; SumQ is "-" for inconsistent
// graphs.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Tasks:   g.NumTasks(),
		Buffers: g.NumBuffers(),
		IsSDF:   g.IsSDF(),
		SumQ:    "-",
	}
	for i := range g.tasks {
		p := g.tasks[i].Phases()
		s.TotalPhases += p
		if p > s.MaxPhases {
			s.MaxPhases = p
		}
	}
	if sq, err := g.SumRepetition(); err == nil {
		s.SumQ = sq.String()
	}
	return s
}

func (s Stats) String() string {
	kind := "CSDFG"
	if s.IsSDF {
		kind = "SDFG"
	}
	return fmt.Sprintf("%s: %d tasks, %d buffers, %d phases (max %d), Σq=%s",
		kind, s.Tasks, s.Buffers, s.TotalPhases, s.MaxPhases, s.SumQ)
}
