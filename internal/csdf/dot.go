package csdf

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format. Tasks become nodes
// labelled with their name and duration vector; buffers become edges
// labelled with their production/consumption vectors and initial marking,
// matching the visual convention of Figures 1 and 2 of the paper.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", dotID(g.Name))
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for i := range g.tasks {
		t := &g.tasks[i]
		fmt.Fprintf(&b, "  t%d [label=\"%s\\nd=%s\"];\n", i, t.Name, vecString(t.Durations))
	}
	for i := range g.buffers {
		bf := &g.buffers[i]
		label := fmt.Sprintf("%s %s M0=%d", vecString(bf.In), vecString(bf.Out), bf.Initial)
		if bf.Capacity > 0 {
			label += fmt.Sprintf(" cap=%d", bf.Capacity)
		}
		fmt.Fprintf(&b, "  t%d -> t%d [label=%q];\n", bf.Src, bf.Dst, label)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func dotID(s string) string {
	if s == "" {
		return "csdfg"
	}
	return s
}

// vecString formats a rate or duration vector in the paper's bracketed
// style, e.g. [2,3,1].
func vecString(v []int64) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(']')
	return b.String()
}

// String gives a compact one-line description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s(|T|=%d,|B|=%d)", g.Name, len(g.tasks), len(g.buffers))
}
