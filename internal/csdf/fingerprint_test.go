package csdf

import "testing"

func fpGraph(name string, m0 int64) *Graph {
	g := NewGraph(name)
	a := g.AddTask("A", []int64{1, 2})
	b := g.AddSDFTask("B", 3)
	g.AddBuffer("ab", a, b, []int64{2, 1}, []int64{1}, m0)
	return g
}

func TestFingerprintDeterministic(t *testing.T) {
	if fpGraph("g", 0).Fingerprint() != fpGraph("g", 0).Fingerprint() {
		t.Fatal("identical graphs have different fingerprints")
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a, b := fpGraph("one", 0), fpGraph("two", 0)
	b.Task(0).Name = "renamed" // aliasing mutation, test-only
	if a.FingerprintHex() != b.FingerprintHex() {
		t.Fatal("fingerprint depends on names")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpGraph("g", 0).Fingerprint()

	if fpGraph("g", 1).Fingerprint() == base {
		t.Fatal("initial marking change not detected")
	}

	durs := fpGraph("g", 0)
	durs.Task(0).Durations[1] = 7
	if durs.Fingerprint() == base {
		t.Fatal("duration change not detected")
	}

	caps := fpGraph("g", 0)
	caps.SetCapacity(0, 5)
	if caps.Fingerprint() == base {
		t.Fatal("capacity change not detected")
	}

	rates := fpGraph("g", 0)
	rates.Buffer(0).In[0] = 9
	if rates.Fingerprint() == base {
		t.Fatal("rate change not detected")
	}
}

// A boundary shift between adjacent variable-length vectors must change the
// hash: the length prefixes make the encoding self-delimiting.
func TestFingerprintBoundaries(t *testing.T) {
	a := NewGraph("a")
	a.AddTask("t0", []int64{1, 2})
	a.AddTask("t1", []int64{3})
	b := NewGraph("b")
	b.AddTask("t0", []int64{1})
	b.AddTask("t1", []int64{2, 3})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("phase-boundary shift not detected")
	}
}

func TestFingerprintClone(t *testing.T) {
	g := fpGraph("g", 2)
	g.SetCapacity(0, 9)
	if g.Fingerprint() != g.Clone().Fingerprint() {
		t.Fatal("clone changes the fingerprint")
	}
}
