package csdf

import (
	"strings"
	"testing"
	"testing/quick"
)

// figure1 builds the single-buffer example of Figure 1: a buffer b between
// tasks t (3 phases) and t′ (2 phases) with inb=[2,3,1], outb=[2,5], M0=0.
func figure1() (*Graph, BufferID) {
	g := NewGraph("fig1")
	t := g.AddTask("t", []int64{1, 1, 1})
	tp := g.AddTask("t'", []int64{1, 1})
	b := g.AddBuffer("b", t, tp, []int64{2, 3, 1}, []int64{2, 5}, 0)
	return g, b
}

// figure2 builds the running example of Figure 2 with the rate vectors as
// printed: five buffers over tasks A(2 phases), B(3), C(1), D(1).
func figure2() *Graph {
	g := NewGraph("fig2")
	a := g.AddTask("A", []int64{1, 1})
	b := g.AddTask("B", []int64{1, 1, 1})
	c := g.AddTask("C", []int64{1})
	d := g.AddTask("D", []int64{1})
	g.AddBuffer("A->B", a, b, []int64{3, 5}, []int64{1, 1, 4}, 0)
	g.AddBuffer("B->C", b, c, []int64{6, 2, 1}, []int64{6}, 0)
	g.AddBuffer("C->A", c, a, []int64{2}, []int64{1, 3}, 4)
	g.AddBuffer("A->D", a, d, []int64{3, 5}, []int64{24}, 13)
	g.AddBuffer("D->C", d, c, []int64{36}, []int64{6}, 6)
	return g
}

func TestFigure1Totals(t *testing.T) {
	g, bid := figure1()
	b := g.Buffer(bid)
	if ib := b.TotalIn(); ib != 6 {
		t.Errorf("ib = %d, want 6", ib)
	}
	if ob := b.TotalOut(); ob != 7 {
		t.Errorf("ob = %d, want 7", ob)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFigure1CumulativePrecedence(t *testing.T) {
	// The paper's example: ⟨t′2,1⟩ can complete at the completion of
	// ⟨t1,2⟩ since M0 + Ia⟨t1,2⟩ − Oa⟨t′2,1⟩ = 0 + 8 − 7 ≥ 0.
	g, bid := figure1()
	b := g.Buffer(bid)
	if got := CumulativeIn(b, 1, 2); got != 8 {
		t.Errorf("Ia⟨t1,2⟩ = %d, want 8", got)
	}
	if got := CumulativeOut(b, 2, 1); got != 7 {
		t.Errorf("Oa⟨t′2,1⟩ = %d, want 7", got)
	}
	if m := b.Initial + CumulativeIn(b, 1, 2) - CumulativeOut(b, 2, 1); m < 0 {
		t.Errorf("precedence violated: %d < 0", m)
	}
}

func TestFigure2Valid(t *testing.T) {
	g := figure2()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.IsSDF() {
		t.Error("figure 2 graph is cyclo-static, not SDF")
	}
	if g.NumTasks() != 4 || g.NumBuffers() != 5 {
		t.Errorf("size = (%d,%d), want (4,5)", g.NumTasks(), g.NumBuffers())
	}
}

func TestFigure2Repetition(t *testing.T) {
	g := figure2()
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatalf("RepetitionVector: %v", err)
	}
	// The printed rate vectors of Figure 2 are mutually consistent with
	// q = [3,4,6,1]; see EXPERIMENTS.md for the discussion of the
	// caption's q = [6,12,6,1].
	want := []int64{3, 4, 6, 1}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q = %v, want %v", q, want)
		}
	}
	if !g.Consistent() {
		t.Error("Consistent() = false")
	}
}

func TestRepetitionBalances(t *testing.T) {
	g := figure2()
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Buffers() {
		if q[b.Src]*b.TotalIn() != q[b.Dst]*b.TotalOut() {
			t.Errorf("buffer %s: q·ib=%d ≠ q·ob=%d", b.Name,
				q[b.Src]*b.TotalIn(), q[b.Dst]*b.TotalOut())
		}
	}
}

func TestRepetitionSDFChain(t *testing.T) {
	g := NewGraph("chain")
	a := g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 1)
	c := g.AddSDFTask("c", 1)
	g.AddSDFBuffer("ab", a, b, 2, 3, 0)
	g.AddSDFBuffer("bc", b, c, 5, 10, 0)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 1}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q = %v, want %v", q, want)
		}
	}
}

func TestRepetitionDisconnected(t *testing.T) {
	g := NewGraph("two-components")
	a := g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 1)
	c := g.AddSDFTask("c", 1)
	d := g.AddSDFTask("d", 1)
	g.AddSDFBuffer("ab", a, b, 1, 2, 0)
	g.AddSDFBuffer("cd", c, d, 7, 3, 0)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 1, 3, 7}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q = %v, want %v", q, want)
		}
	}
}

func TestRepetitionInconsistent(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 1)
	g.AddSDFBuffer("ab1", a, b, 1, 1, 0)
	g.AddSDFBuffer("ab2", a, b, 2, 1, 0)
	if _, err := g.RepetitionVector(); err == nil {
		t.Fatal("expected inconsistency error")
	}
	if g.Consistent() {
		t.Error("Consistent() = true for inconsistent graph")
	}
}

func TestRepetitionSelfLoop(t *testing.T) {
	g := NewGraph("self")
	a := g.AddTask("a", []int64{1, 2})
	g.AddBuffer("aa", a, a, []int64{1, 0}, []int64{0, 1}, 1)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 1 {
		t.Errorf("q = %v, want [1]", q)
	}

	bad := NewGraph("self-bad")
	b := bad.AddTask("b", []int64{1, 2})
	bad.AddBuffer("bb", b, b, []int64{1, 1}, []int64{0, 1}, 1)
	if _, err := bad.RepetitionVector(); err == nil {
		t.Error("imbalanced self-loop should be inconsistent")
	}
}

func TestRepetitionLargeNoOverflow(t *testing.T) {
	// A multiplier chain whose repetition vector grows geometrically; the
	// exact big.Int computation must not overflow silently.
	g := NewGraph("geo")
	prev := g.AddSDFTask("t0", 1)
	for i := 1; i <= 40; i++ {
		cur := g.AddSDFTask("t", 1)
		g.AddSDFBuffer("e", prev, cur, 2, 3, 0)
		prev = cur
	}
	qb, err := g.RepetitionVectorBig()
	if err != nil {
		t.Fatal(err)
	}
	if qb[0].BitLen() < 40 {
		t.Errorf("q0 suspiciously small: %s", qb[0])
	}
	if _, err := g.RepetitionVector(); err != ErrRepetitionOverflow {
		t.Errorf("int64 conversion error = %v, want ErrRepetitionOverflow", err)
	}
}

func TestSumRepetition(t *testing.T) {
	g := figure2()
	s, err := g.SumRepetition()
	if err != nil {
		t.Fatal(err)
	}
	if s.Int64() != 14 { // 3+4+6+1
		t.Errorf("Σq = %s, want 14", s)
	}
}

func TestValidateErrors(t *testing.T) {
	empty := NewGraph("empty")
	if err := empty.Validate(); err != ErrEmptyGraph {
		t.Errorf("empty graph: %v", err)
	}

	g := NewGraph("g")
	a := g.AddTask("a", nil)
	if err := g.Validate(); err == nil {
		t.Error("task with no phases accepted")
	}

	g = NewGraph("g")
	a = g.AddTask("a", []int64{-1})
	if err := g.Validate(); err == nil {
		t.Error("negative duration accepted")
	}

	g = NewGraph("g")
	a = g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 1)
	g.AddBuffer("ab", a, b, []int64{1, 2}, []int64{1}, 0)
	if err := g.Validate(); err == nil {
		t.Error("mismatched production vector accepted")
	}

	g = NewGraph("g")
	a = g.AddSDFTask("a", 1)
	b = g.AddSDFTask("b", 1)
	g.AddSDFBuffer("ab", a, b, 1, 1, -1)
	if err := g.Validate(); err == nil {
		t.Error("negative marking accepted")
	}

	g = NewGraph("g")
	a = g.AddSDFTask("a", 1)
	b = g.AddSDFTask("b", 1)
	g.AddBuffer("ab", a, b, []int64{0}, []int64{1}, 0)
	if err := g.Validate(); err == nil {
		t.Error("zero total production accepted")
	}

	g = NewGraph("g")
	a = g.AddSDFTask("a", 1)
	b = g.AddSDFTask("b", 1)
	bid := g.AddSDFBuffer("ab", a, b, 1, 1, 5)
	g.SetCapacity(bid, 3)
	if err := g.Validate(); err == nil {
		t.Error("marking above capacity accepted")
	}

	g = NewGraph("g")
	a = g.AddSDFTask("a", 1)
	g.AddBuffer("ax", a, TaskID(7), []int64{1}, []int64{1}, 0)
	if err := g.Validate(); err == nil {
		t.Error("dangling destination accepted")
	}
}

func TestValidationErrorMessage(t *testing.T) {
	e := &ValidationError{Kind: "buffer", ID: 3, Msg: "boom"}
	if !strings.Contains(e.Error(), "buffer 3") {
		t.Errorf("unhelpful message %q", e.Error())
	}
}

func TestClone(t *testing.T) {
	g := figure2()
	c := g.Clone()
	if c.NumTasks() != g.NumTasks() || c.NumBuffers() != g.NumBuffers() {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone must not affect the original.
	c.Task(0).Durations[0] = 99
	if g.Task(0).Durations[0] == 99 {
		t.Error("clone aliases task durations")
	}
	c.Buffer(0).In[0] = 99
	if g.Buffer(0).In[0] == 99 {
		t.Error("clone aliases buffer rates")
	}
}

func TestTaskByName(t *testing.T) {
	g := figure2()
	id, ok := g.TaskByName("C")
	if !ok || g.Task(id).Name != "C" {
		t.Errorf("TaskByName(C) = %v,%v", id, ok)
	}
	if _, ok := g.TaskByName("nope"); ok {
		t.Error("found non-existent task")
	}
}

func TestWithCapacities(t *testing.T) {
	g := NewGraph("cap")
	a := g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 1)
	bid := g.AddSDFBuffer("ab", a, b, 2, 3, 1)
	g.SetCapacity(bid, 7)
	out, err := g.WithCapacities()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumBuffers() != 2 {
		t.Fatalf("buffers = %d, want 2", out.NumBuffers())
	}
	rev := out.Buffer(1)
	if rev.Src != b || rev.Dst != a {
		t.Error("reverse buffer endpoints wrong")
	}
	if rev.In[0] != 3 || rev.Out[0] != 2 {
		t.Errorf("reverse rates = %v/%v, want [3]/[2]", rev.In, rev.Out)
	}
	if rev.Initial != 6 { // 7 - 1
		t.Errorf("reverse marking = %d, want 6", rev.Initial)
	}
	if out.Buffer(0).Capacity != 0 || rev.Capacity != 0 {
		t.Error("capacities not cleared on result")
	}
	if err := out.Validate(); err != nil {
		t.Errorf("transformed graph invalid: %v", err)
	}
	// Invariant: forward + reverse markings sum to the capacity.
	if out.Buffer(0).Initial+rev.Initial != 7 {
		t.Error("marking sum ≠ capacity")
	}
}

func TestWithCapacitiesNone(t *testing.T) {
	g := figure2()
	if _, err := g.WithCapacities(); err != ErrNoCapacities {
		t.Errorf("err = %v, want ErrNoCapacities", err)
	}
}

func TestWithCapacitiesPreservesConsistency(t *testing.T) {
	g := figure2()
	for i := 0; i < g.NumBuffers(); i++ {
		b := g.Buffer(BufferID(i))
		g.SetCapacity(BufferID(i), b.Initial+2*(b.TotalIn()+b.TotalOut()))
	}
	out, err := g.WithCapacities()
	if err != nil {
		t.Fatal(err)
	}
	q1, err := g.Unbounded().RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := out.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("capacity transform changed q: %v vs %v", q1, q2)
		}
	}
}

func TestScaleCapacitiesAndUnbounded(t *testing.T) {
	g := figure2()
	s := g.ScaleCapacities(2)
	for _, b := range s.Buffers() {
		want := 2*(b.TotalIn()+b.TotalOut()) + b.Initial
		if b.Capacity != want {
			t.Errorf("capacity = %d, want %d", b.Capacity, want)
		}
	}
	u := s.Unbounded()
	for _, b := range u.Buffers() {
		if b.Capacity != 0 {
			t.Error("Unbounded left a capacity")
		}
	}
}

func TestNormalizePhases(t *testing.T) {
	g := NewGraph("norm")
	a := g.AddTask("a", []int64{2, 2, 2, 2}) // 2-periodic pattern [2,2]→ reduces to [2]
	b := g.AddSDFTask("b", 1)
	g.AddBuffer("ab", a, b, []int64{1, 1, 1, 1}, []int64{2}, 0)
	n := g.NormalizePhases()
	if got := n.Task(a).Phases(); got != 1 {
		t.Errorf("normalized phases = %d, want 1", got)
	}
	if len(n.Buffer(0).In) != 1 || n.Buffer(0).In[0] != 1 {
		t.Errorf("normalized In = %v, want [1]", n.Buffer(0).In)
	}
	// Consistency must be preserved (q scales accordingly).
	if !n.Consistent() {
		t.Error("normalized graph inconsistent")
	}
}

func TestNormalizePhasesConservative(t *testing.T) {
	g := NewGraph("norm2")
	a := g.AddTask("a", []int64{1, 1}) // durations periodic…
	b := g.AddSDFTask("b", 1)
	g.AddBuffer("ab", a, b, []int64{1, 2}, []int64{3}, 0) // …but rates are not
	n := g.NormalizePhases()
	if got := n.Task(a).Phases(); got != 2 {
		t.Errorf("phases = %d, want 2 (no reduction)", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := figure2()
	s := g.ComputeStats()
	if s.Tasks != 4 || s.Buffers != 5 || s.TotalPhases != 7 || s.MaxPhases != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.SumQ != "14" {
		t.Errorf("SumQ = %s, want 14", s.SumQ)
	}
	if s.IsSDF {
		t.Error("IsSDF true for CSDF graph")
	}
	if !strings.Contains(s.String(), "CSDFG") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestWriteDOT(t *testing.T) {
	g := figure2()
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, frag := range []string{"digraph", "A", "[3,5]", "M0=13", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

func TestCumulativeProperties(t *testing.T) {
	g, bid := figure1()
	b := g.Buffer(bid)
	f := func(p8 uint8, n8 uint8) bool {
		p := int(p8)%len(b.In) + 1
		n := int64(n8)%50 + 1
		// Ia is non-decreasing in n by exactly ib per iteration.
		return CumulativeIn(b, p, n+1)-CumulativeIn(b, p, n) == b.TotalIn()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	fo := func(p8 uint8, n8 uint8) bool {
		p := int(p8)%len(b.Out) + 1
		n := int64(n8)%50 + 1
		return CumulativeOut(b, p, n+1)-CumulativeOut(b, p, n) == b.TotalOut()
	}
	if err := quick.Check(fo, nil); err != nil {
		t.Error(err)
	}
}

func TestRepetitionScalingInvariance(t *testing.T) {
	// Scaling all rates of a buffer by a common factor must not change q.
	f := func(k8 uint8) bool {
		k := int64(k8)%5 + 1
		g := NewGraph("scale")
		a := g.AddSDFTask("a", 1)
		b := g.AddSDFTask("b", 1)
		g.AddSDFBuffer("ab", a, b, 2*k, 3*k, 0)
		q, err := g.RepetitionVector()
		if err != nil {
			return false
		}
		return q[0] == 3 && q[1] == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
