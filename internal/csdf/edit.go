package csdf

import (
	"fmt"
	"maps"
	"slices"
)

// editKind selects the graph quantity an Edit substitutes.
type editKind int

const (
	editDuration editKind = iota
	editProduction
	editConsumption
	editInitial
)

func (k editKind) String() string {
	switch k {
	case editDuration:
		return "duration"
	case editProduction:
		return "production"
	case editConsumption:
		return "consumption"
	case editInitial:
		return "initial"
	}
	return fmt.Sprintf("editKind(%d)", int(k))
}

// Edit is one parameter substitution applied by CloneWithEdits: a new value
// for a task's execution time, a buffer's cyclo-static rate, or a buffer's
// initial marking. Construct edits with SetDuration, SetProduction,
// SetConsumption and SetInitial.
type Edit struct {
	kind   editKind
	task   TaskID
	buffer BufferID
	phase  int // 1-indexed; 0 = every phase
	value  int64
}

// SetDuration substitutes task t's execution time: phase p (1-indexed) when
// p > 0, every phase when p == 0.
func SetDuration(t TaskID, p int, v int64) Edit {
	return Edit{kind: editDuration, task: t, phase: p, value: v}
}

// SetProduction substitutes buffer b's production rate inb(p) (1-indexed
// phase of the source task; p == 0 sets every phase).
func SetProduction(b BufferID, p int, v int64) Edit {
	return Edit{kind: editProduction, buffer: b, phase: p, value: v}
}

// SetConsumption substitutes buffer b's consumption rate outb(p) (1-indexed
// phase of the destination task; p == 0 sets every phase).
func SetConsumption(b BufferID, p int, v int64) Edit {
	return Edit{kind: editConsumption, buffer: b, phase: p, value: v}
}

// SetInitial substitutes buffer b's initial marking M0(b).
func SetInitial(b BufferID, v int64) Edit {
	return Edit{kind: editInitial, buffer: b, value: v}
}

// CloneWithEdits returns a copy of g with the edits applied. The clone is
// copy-on-write: task and buffer records are duplicated, but the rate and
// duration slices of untouched entries are shared with the base graph — a
// scenario family materialized from one base costs O(edits), not O(graph),
// per member. Analyses treat graphs as immutable, so the sharing is safe;
// the clone must not be grown further with AddTask/AddBuffer.
//
// Edits referencing tasks, buffers or phases outside the graph fail; value
// constraints (non-negative durations, positive total rates, …) are the
// caller's to check with Validate, so sweeps over deliberately infeasible
// points can still materialize and report per-scenario validation errors.
func (g *Graph) CloneWithEdits(edits ...Edit) (*Graph, error) {
	c := &Graph{
		Name:    g.Name,
		tasks:   slices.Clone(g.tasks),
		buffers: slices.Clone(g.buffers),
		byName:  maps.Clone(g.byName),
	}
	// clonedDur/clonedIn/clonedOut track which slices were already detached
	// from the base, so stacked edits on one site do not re-copy.
	clonedDur := map[TaskID]bool{}
	clonedIn := map[BufferID]bool{}
	clonedOut := map[BufferID]bool{}
	setAll := func(s []int64, phase int, v int64) error {
		if phase < 0 || phase > len(s) {
			return fmt.Errorf("csdf: edit phase %d out of range 1..%d", phase, len(s))
		}
		if phase == 0 {
			for i := range s {
				s[i] = v
			}
			return nil
		}
		s[phase-1] = v
		return nil
	}
	for _, e := range edits {
		switch e.kind {
		case editDuration:
			if int(e.task) < 0 || int(e.task) >= len(c.tasks) {
				return nil, fmt.Errorf("csdf: edit references unknown task %d", e.task)
			}
			t := &c.tasks[e.task]
			if !clonedDur[e.task] {
				t.Durations = slices.Clone(t.Durations)
				clonedDur[e.task] = true
			}
			if err := setAll(t.Durations, e.phase, e.value); err != nil {
				return nil, fmt.Errorf("%w (task %q)", err, t.Name)
			}
		case editProduction, editConsumption:
			if int(e.buffer) < 0 || int(e.buffer) >= len(c.buffers) {
				return nil, fmt.Errorf("csdf: edit references unknown buffer %d", e.buffer)
			}
			b := &c.buffers[e.buffer]
			if e.kind == editProduction {
				if !clonedIn[e.buffer] {
					b.In = slices.Clone(b.In)
					clonedIn[e.buffer] = true
				}
				if err := setAll(b.In, e.phase, e.value); err != nil {
					return nil, fmt.Errorf("%w (buffer %q production)", err, b.Name)
				}
			} else {
				if !clonedOut[e.buffer] {
					b.Out = slices.Clone(b.Out)
					clonedOut[e.buffer] = true
				}
				if err := setAll(b.Out, e.phase, e.value); err != nil {
					return nil, fmt.Errorf("%w (buffer %q consumption)", err, b.Name)
				}
			}
		case editInitial:
			if int(e.buffer) < 0 || int(e.buffer) >= len(c.buffers) {
				return nil, fmt.Errorf("csdf: edit references unknown buffer %d", e.buffer)
			}
			c.buffers[e.buffer].Initial = e.value
		default:
			return nil, fmt.Errorf("csdf: unknown edit kind %v", e.kind)
		}
	}
	return c, nil
}
