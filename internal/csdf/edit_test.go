package csdf

import (
	"testing"
)

func editBase() *Graph {
	g := NewGraph("edit-base")
	a := g.AddTask("A", []int64{1, 2})
	b := g.AddSDFTask("B", 3)
	g.AddBuffer("ab", a, b, []int64{2, 3}, []int64{5}, 0)
	g.AddBuffer("ba", b, a, []int64{5}, []int64{2, 3}, 5)
	return g
}

func TestCloneWithEditsSubstitutes(t *testing.T) {
	g := editBase()
	c, err := g.CloneWithEdits(
		SetDuration(0, 2, 7),
		SetProduction(0, 1, 4),
		SetConsumption(1, 0, 9),
		SetInitial(1, 42),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Task(0).Durations[1]; got != 7 {
		t.Fatalf("duration = %d, want 7", got)
	}
	if got := c.Buffer(0).In[0]; got != 4 {
		t.Fatalf("production = %d, want 4", got)
	}
	// Phase 0 applies to every entry of the vector.
	for i, v := range c.Buffer(1).Out {
		if v != 9 {
			t.Fatalf("consumption[%d] = %d, want 9", i, v)
		}
	}
	if got := c.Buffer(1).Initial; got != 42 {
		t.Fatalf("initial = %d, want 42", got)
	}
	// The base graph is untouched.
	if g.Task(0).Durations[1] != 2 || g.Buffer(0).In[0] != 2 || g.Buffer(1).Out[0] != 2 || g.Buffer(1).Initial != 5 {
		t.Fatal("base graph mutated by CloneWithEdits")
	}
}

func TestCloneWithEditsSharesUntouchedSlices(t *testing.T) {
	g := editBase()
	c, err := g.CloneWithEdits(SetDuration(0, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	// The edited task's durations are detached; everything else is shared
	// with the base (copy-on-write).
	if &c.Task(0).Durations[0] == &g.Task(0).Durations[0] {
		t.Fatal("edited slice still shared with base")
	}
	if &c.Task(1).Durations[0] != &g.Task(1).Durations[0] {
		t.Fatal("untouched duration slice was copied")
	}
	if &c.Buffer(0).In[0] != &g.Buffer(0).In[0] || &c.Buffer(0).Out[0] != &g.Buffer(0).Out[0] {
		t.Fatal("untouched rate slices were copied")
	}
}

func TestCloneWithEditsStackedOnOneSite(t *testing.T) {
	g := editBase()
	// All-phases then per-phase on the same vector: later edits win.
	c, err := g.CloneWithEdits(SetDuration(0, 0, 5), SetDuration(0, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Task(0).Durations[0] != 5 || c.Task(0).Durations[1] != 8 {
		t.Fatalf("durations = %v, want [5 8]", c.Task(0).Durations)
	}
}

func TestCloneWithEditsRejectsBadSites(t *testing.T) {
	g := editBase()
	cases := []struct {
		name string
		edit Edit
	}{
		{"unknown task", SetDuration(9, 0, 1)},
		{"negative task", SetDuration(-1, 0, 1)},
		{"phase out of range", SetDuration(0, 3, 1)},
		{"unknown buffer", SetInitial(5, 1)},
		{"production phase out of range", SetProduction(1, 2, 1)},
		{"consumption phase out of range", SetConsumption(0, 2, 1)},
	}
	for _, c := range cases {
		if _, err := g.CloneWithEdits(c.edit); err == nil {
			t.Errorf("%s: edit accepted", c.name)
		}
	}
}

func TestCloneWithEditsInvalidValuesCaughtByValidate(t *testing.T) {
	g := editBase()
	c, err := g.CloneWithEdits(SetDuration(0, 1, -1))
	if err != nil {
		t.Fatalf("materialization should succeed: %v", err)
	}
	if err := c.Validate(); err == nil {
		t.Fatal("negative duration passed Validate")
	}
	c, err = g.CloneWithEdits(SetProduction(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Fatal("zero total production passed Validate")
	}
}

func TestCloneWithEditsFingerprintEquality(t *testing.T) {
	g := editBase()
	// A clone with no edits is structurally identical to the base; a clone
	// with an edit differs; re-editing back to the original value restores
	// the fingerprint — the cache-overlap property sweeps rely on.
	same, err := g.CloneWithEdits()
	if err != nil {
		t.Fatal(err)
	}
	if same.FingerprintHex() != g.FingerprintHex() {
		t.Fatal("empty edit list changed the fingerprint")
	}
	changed, err := g.CloneWithEdits(SetInitial(1, 6))
	if err != nil {
		t.Fatal(err)
	}
	if changed.FingerprintHex() == g.FingerprintHex() {
		t.Fatal("initial-token edit did not change the fingerprint")
	}
	restored, err := changed.CloneWithEdits(SetInitial(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if restored.FingerprintHex() != g.FingerprintHex() {
		t.Fatal("restoring the value did not restore the fingerprint")
	}
}
