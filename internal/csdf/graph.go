// Package csdf implements the Cyclo-Static Dataflow Graph (CSDFG) model of
// computation as defined in Section 2 of Bodin, Munier-Kordon and Dupont de
// Dinechin, "Optimal and fast throughput evaluation of CSDF" (DAC 2016).
//
// A CSDFG G = (T, B) is a directed graph whose nodes T are tasks and whose
// arcs B are unbounded FIFO buffers. Every task t is decomposed into ϕ(t)
// phases; the p-th phase has a constant duration d(tp). One iteration of t
// is the ordered execution of phases t1, …, tϕ(t). Every buffer b = (t, t′)
// carries an initial marking M0(b) ∈ ℕ, a production vector inb (inb(p)
// tokens are written at the end of each execution of phase tp) and a
// consumption vector outb (outb(p′) tokens are read before the execution of
// phase t′p′ starts).
//
// A Synchronous Dataflow Graph (SDFG) is the special case ϕ(t) = 1 for all
// tasks.
//
// The package provides the graph builder, structural validation, the
// repetition vector (consistency), capacity-constrained buffer modelling,
// statistics and DOT export. All analyses in the sibling packages consume
// this representation.
package csdf

import (
	"errors"
	"fmt"

	"kiter/internal/rat"
)

// TaskID identifies a task within its Graph. IDs are dense indices assigned
// in insertion order, suitable for slice-based task attributes.
type TaskID int

// BufferID identifies a buffer within its Graph, dense in insertion order.
type BufferID int

// Task is a CSDF task (actor). Tasks are created through Graph.AddTask and
// are immutable afterwards.
type Task struct {
	ID        TaskID
	Name      string
	Durations []int64 // d(tp) per phase, len = ϕ(t)
}

// Phases returns ϕ(t), the number of phases of the task.
func (t *Task) Phases() int { return len(t.Durations) }

// TotalDuration returns the sum of the phase durations of one iteration.
func (t *Task) TotalDuration() int64 {
	var s int64
	for _, d := range t.Durations {
		s += d
	}
	return s
}

// Buffer is a FIFO channel b = (Src, Dst) with cyclo-static rates.
type Buffer struct {
	ID      BufferID
	Name    string
	Src     TaskID
	Dst     TaskID
	In      []int64 // inb(p), len = ϕ(Src): tokens written at end of ⟨Src_p, ·⟩
	Out     []int64 // outb(p′), len = ϕ(Dst): tokens read at start of ⟨Dst_p′, ·⟩
	Initial int64   // M0(b) ≥ 0

	// Capacity is an optional bound on the number of tokens the buffer can
	// hold. Zero means unbounded (the model of Section 2). Analyses ignore
	// Capacity unless the graph is first rewritten with WithCapacities,
	// which encodes each bound as a reverse buffer.
	Capacity int64
}

// TotalIn returns ib = Σp inb(p), the tokens produced per Src iteration.
func (b *Buffer) TotalIn() int64 {
	var s int64
	for _, v := range b.In {
		s += v
	}
	return s
}

// TotalOut returns ob = Σp′ outb(p′), the tokens consumed per Dst iteration.
func (b *Buffer) TotalOut() int64 {
	var s int64
	for _, v := range b.Out {
		s += v
	}
	return s
}

// Graph is a Cyclo-Static Dataflow Graph. Build it with NewGraph, AddTask
// and AddBuffer; analyses treat it as immutable once built.
type Graph struct {
	Name    string
	tasks   []Task
	buffers []Buffer
	byName  map[string]TaskID
}

// NewGraph returns an empty graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]TaskID)}
}

// AddTask appends a task with the given per-phase durations and returns its
// ID. The task has len(durations) phases; durations must be non-negative
// and the slice non-empty (checked by Validate). The slice is copied.
func (g *Graph) AddTask(name string, durations []int64) TaskID {
	id := TaskID(len(g.tasks))
	g.tasks = append(g.tasks, Task{
		ID:        id,
		Name:      name,
		Durations: append([]int64(nil), durations...),
	})
	if name != "" {
		g.byName[name] = id
	}
	return id
}

// AddSDFTask appends a single-phase task (an SDF actor) and returns its ID.
func (g *Graph) AddSDFTask(name string, duration int64) TaskID {
	return g.AddTask(name, []int64{duration})
}

// AddBuffer appends a buffer from src to dst with production vector in,
// consumption vector out and initial marking m0, returning its ID. The rate
// slices are copied. Use Validate to check rate-vector lengths.
func (g *Graph) AddBuffer(name string, src, dst TaskID, in, out []int64, m0 int64) BufferID {
	id := BufferID(len(g.buffers))
	g.buffers = append(g.buffers, Buffer{
		ID:      id,
		Name:    name,
		Src:     src,
		Dst:     dst,
		In:      append([]int64(nil), in...),
		Out:     append([]int64(nil), out...),
		Initial: m0,
	})
	return id
}

// AddSDFBuffer appends a buffer with scalar rates (an SDF channel).
func (g *Graph) AddSDFBuffer(name string, src, dst TaskID, prod, cons, m0 int64) BufferID {
	return g.AddBuffer(name, src, dst, []int64{prod}, []int64{cons}, m0)
}

// SetCapacity records a capacity bound on buffer b (0 = unbounded). The
// bound only takes analytical effect after WithCapacities.
func (g *Graph) SetCapacity(b BufferID, capacity int64) {
	g.buffers[b].Capacity = capacity
}

// NumTasks returns |T|.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumBuffers returns |B|.
func (g *Graph) NumBuffers() int { return len(g.buffers) }

// Task returns the task with the given ID. The returned pointer aliases
// graph storage and must not be mutated.
func (g *Graph) Task(id TaskID) *Task { return &g.tasks[id] }

// Buffer returns the buffer with the given ID. The returned pointer aliases
// graph storage and must not be mutated.
func (g *Graph) Buffer(id BufferID) *Buffer { return &g.buffers[id] }

// Tasks returns the task list in ID order. The slice aliases graph storage.
func (g *Graph) Tasks() []Task { return g.tasks }

// Buffers returns the buffer list in ID order. The slice aliases storage.
func (g *Graph) Buffers() []Buffer { return g.buffers }

// TaskByName looks a task up by name.
func (g *Graph) TaskByName(name string) (TaskID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Name)
	for _, t := range g.tasks {
		c.AddTask(t.Name, t.Durations)
	}
	for _, b := range g.buffers {
		id := c.AddBuffer(b.Name, b.Src, b.Dst, b.In, b.Out, b.Initial)
		c.buffers[id].Capacity = b.Capacity
	}
	return c
}

// IsSDF reports whether every task has exactly one phase, i.e. the graph is
// a Synchronous Dataflow Graph.
func (g *Graph) IsSDF() bool {
	for i := range g.tasks {
		if g.tasks[i].Phases() != 1 {
			return false
		}
	}
	return true
}

// ValidationError describes a structural defect found by Validate.
type ValidationError struct {
	Kind string // "task" or "buffer"
	ID   int
	Msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("csdf: invalid %s %d: %s", e.Kind, e.ID, e.Msg)
}

// ErrEmptyGraph is returned by Validate for graphs with no tasks.
var ErrEmptyGraph = errors.New("csdf: graph has no tasks")

// Validate checks the structural well-formedness of the graph: every task
// has at least one phase and non-negative durations; every buffer connects
// existing tasks, its rate-vector lengths equal the phase counts of its
// endpoints, rates are non-negative with positive totals, and the initial
// marking is non-negative. It returns the first defect found.
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return ErrEmptyGraph
	}
	for i := range g.tasks {
		t := &g.tasks[i]
		if t.Phases() == 0 {
			return &ValidationError{"task", i, "no phases"}
		}
		for p, d := range t.Durations {
			if d < 0 {
				return &ValidationError{"task", i, fmt.Sprintf("negative duration %d at phase %d", d, p+1)}
			}
		}
	}
	for i := range g.buffers {
		b := &g.buffers[i]
		if int(b.Src) < 0 || int(b.Src) >= len(g.tasks) {
			return &ValidationError{"buffer", i, "unknown source task"}
		}
		if int(b.Dst) < 0 || int(b.Dst) >= len(g.tasks) {
			return &ValidationError{"buffer", i, "unknown destination task"}
		}
		if len(b.In) != g.tasks[b.Src].Phases() {
			return &ValidationError{"buffer", i, fmt.Sprintf("production vector has %d entries, source has %d phases", len(b.In), g.tasks[b.Src].Phases())}
		}
		if len(b.Out) != g.tasks[b.Dst].Phases() {
			return &ValidationError{"buffer", i, fmt.Sprintf("consumption vector has %d entries, destination has %d phases", len(b.Out), g.tasks[b.Dst].Phases())}
		}
		for p, v := range b.In {
			if v < 0 {
				return &ValidationError{"buffer", i, fmt.Sprintf("negative production %d at phase %d", v, p+1)}
			}
		}
		for p, v := range b.Out {
			if v < 0 {
				return &ValidationError{"buffer", i, fmt.Sprintf("negative consumption %d at phase %d", v, p+1)}
			}
		}
		if b.TotalIn() <= 0 {
			return &ValidationError{"buffer", i, "zero total production"}
		}
		if b.TotalOut() <= 0 {
			return &ValidationError{"buffer", i, "zero total consumption"}
		}
		if b.Initial < 0 {
			return &ValidationError{"buffer", i, "negative initial marking"}
		}
		if b.Capacity < 0 {
			return &ValidationError{"buffer", i, "negative capacity"}
		}
		if b.Capacity > 0 && b.Initial > b.Capacity {
			return &ValidationError{"buffer", i, "initial marking exceeds capacity"}
		}
	}
	return nil
}

// CumulativeIn returns Ia⟨tp, n⟩ = Σ_{α≤p} inb(α) + (n−1)·ib, the total
// number of tokens produced into b at the completion of the n-th execution
// of phase p (both 1-indexed), as defined in Section 3.1 of the paper.
func CumulativeIn(b *Buffer, p int, n int64) int64 {
	var s int64
	for a := 0; a < p; a++ {
		s += b.In[a]
	}
	return s + (n-1)*b.TotalIn()
}

// CumulativeOut returns Oa⟨t′p′, n′⟩ = Σ_{α≤p′} outb(α) + (n′−1)·ob, the
// total number of tokens consumed from b at the completion of the n′-th
// execution of phase p′ (both 1-indexed).
func CumulativeOut(b *Buffer, p int, n int64) int64 {
	var s int64
	for a := 0; a < p; a++ {
		s += b.Out[a]
	}
	return s + (n-1)*b.TotalOut()
}

// sumCheck adds rate totals with overflow detection, for use by analyses
// that scale rates by repetition counts.
func sumCheck(vs []int64) (int64, error) {
	s, ok := rat.SumInt64(vs)
	if !ok {
		return 0, &rat.ErrOverflow{Op: "rate sum"}
	}
	return s, nil
}
