package csdf

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a 256-bit structural hash of the graph, suitable as a
// memoization key for analysis results.
//
// Two graphs share a fingerprint exactly when they were built from the same
// sequence of tasks (per-phase durations) and buffers (endpoints, rate
// vectors, initial markings, capacities) in the same insertion order. Names
// — of the graph, of tasks, of buffers — are deliberately excluded: every
// analysis in this repository is name-blind, so a renamed copy of a graph
// must hit the same cache entry. The hash is not isomorphism-canonical
// (permuting task insertion order changes it), which is sound for caching:
// equal fingerprints imply structurally identical inputs and therefore
// identical analysis results.
func (g *Graph) Fingerprint() [32]byte {
	h := sha256.New()
	var tmp [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		h.Write(tmp[:])
	}
	wv := func(vs []int64) {
		wi(int64(len(vs)))
		for _, v := range vs {
			wi(v)
		}
	}
	wi(int64(len(g.tasks)))
	for i := range g.tasks {
		wv(g.tasks[i].Durations)
	}
	wi(int64(len(g.buffers)))
	for i := range g.buffers {
		b := &g.buffers[i]
		wi(int64(b.Src))
		wi(int64(b.Dst))
		wv(b.In)
		wv(b.Out)
		wi(b.Initial)
		wi(b.Capacity)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// FingerprintHex returns Fingerprint as a lowercase hex string.
func (g *Graph) FingerprintHex() string {
	fp := g.Fingerprint()
	return hex.EncodeToString(fp[:])
}
