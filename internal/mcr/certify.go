package mcr

import (
	"context"
	"fmt"

	"kiter/internal/rat"
)

// certifyLoop upgrades an uncertified candidate to an exact result. Given
// the candidate circuit's exact ratio λ, an exact Bellman–Ford pass looks
// for a circuit with L(c) − λ·H(c) > 0. None found certifies λ as the
// maximum ratio; otherwise the found circuit's exact ratio strictly
// exceeds λ (or proves infeasibility) and becomes the new candidate.
func (s *Solver) certifyLoop(ctx context.Context, g *Graph, cand Result) (Result, error) {
	res := cand
	for {
		better, err := s.positiveCycle(ctx, g, res.Ratio)
		if err != nil {
			return Result{}, err
		}
		if better == nil {
			res.Certified = true
			return res, nil
		}
		ratio, err := g.CycleRatio(better)
		if err != nil {
			return Result{}, err // infeasible circuit uncovered
		}
		if ratio.Cmp(res.Ratio) <= 0 {
			// Cannot happen for a genuinely positive circuit; guards
			// against an internal extraction bug rather than looping.
			return Result{}, fmt.Errorf("mcr: certification regressed (%s ≤ %s)", ratio, res.Ratio)
		}
		res.Ratio = ratio
		res.CycleArcs = better
		res.CycleNodes = g.nodesOfCycle(better)
		res.Refinements++
	}
}

// Refine upgrades an uncertified candidate result (e.g. from Solve with
// SkipCertify) to an exactly certified one, re-using the candidate circuit
// as the starting point of the certification loop.
func Refine(g *Graph, cand Result) (Result, error) {
	return NewSolver().RefineCtx(context.Background(), g, cand)
}

// RefineCtx is Refine with cancellation, polled once per exact relaxation
// round.
func RefineCtx(ctx context.Context, g *Graph, cand Result) (Result, error) {
	return NewSolver().RefineCtx(ctx, g, cand)
}

// Refine is the Solver equivalent of the package-level Refine, reusing
// the solver's certification scratch.
func (s *Solver) Refine(g *Graph, cand Result) (Result, error) {
	return s.RefineCtx(context.Background(), g, cand)
}

// RefineCtx upgrades cand to an exactly certified result with
// cancellation, reusing the solver's certification scratch.
func (s *Solver) RefineCtx(ctx context.Context, g *Graph, cand Result) (Result, error) {
	if cand.Certified {
		return cand, nil
	}
	return s.certifyLoop(ctx, g, cand)
}

// Certify checks in exact arithmetic that no circuit of g has a
// cost-to-time ratio exceeding lambda (nor an infeasible time sum). It
// returns nil when lambda is an upper bound, and otherwise the arc indices
// of a violating circuit.
func (g *Graph) Certify(lambda rat.Rat) ([]int, error) {
	return NewSolver().positiveCycle(context.Background(), g, lambda)
}

// positiveCycle runs exact Bellman–Ford longest-path relaxation with arc
// weights w(e) = L(e) − λ·H(e) from an implicit super-source (all
// distances start at 0). It returns an elementary circuit with positive
// total weight, or nil when none exists. The context is polled once per
// relaxation round.
func (s *Solver) positiveCycle(ctx context.Context, g *Graph, lambda rat.Rat) ([]int, error) {
	n := g.n
	if n == 0 || len(g.arcs) == 0 {
		return nil, nil
	}
	s.w = growRat(s.w, len(g.arcs))
	for i := range g.arcs {
		a := &g.arcs[i]
		s.w[i] = rat.FromInt(a.L).Sub(lambda.Mul(a.H))
	}
	s.dist = growRat(s.dist, n)
	for i := range s.dist {
		s.dist[i] = rat.Rat{}
	}
	s.pred = growInt32(s.pred, n)
	for i := range s.pred {
		s.pred[i] = -1
	}
	dist, pred := s.dist, s.pred
	var lastUpdated int = -1
	for round := 0; round <= n; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		updated := false
		for i := range g.arcs {
			a := &g.arcs[i]
			cand := dist[a.From].Add(s.w[i])
			if cand.Cmp(dist[a.To]) > 0 {
				dist[a.To] = cand
				pred[a.To] = int32(i)
				updated = true
				lastUpdated = a.To
			}
		}
		if !updated {
			return nil, nil
		}
	}
	// A relaxation succeeded in round n: a positive circuit exists. Walk
	// predecessors n steps to enter the circuit, then cut it out.
	v := lastUpdated
	for i := 0; i < n; i++ {
		v = g.arcs[pred[v]].From
	}
	// v is on a positive circuit; collect arcs until v repeats.
	var arcsRev []int
	u := v
	for {
		ai := pred[u]
		arcsRev = append(arcsRev, int(ai))
		u = g.arcs[ai].From
		if u == v {
			break
		}
		if len(arcsRev) > n {
			return nil, fmt.Errorf("mcr: predecessor walk did not close")
		}
	}
	// Reverse into traversal order.
	arcs := make([]int, len(arcsRev))
	for i, ai := range arcsRev {
		arcs[len(arcsRev)-1-i] = ai
	}
	return arcs, nil
}

// SolveExact computes the maximum cost-to-time ratio without the float64
// fast path: it starts from an arbitrary circuit and applies the exact
// refinement loop only. Slower than Solve but free of floating-point
// behaviour entirely; used for cross-checking.
func SolveExact(g *Graph) (Result, error) {
	s := NewSolver()
	if !s.trim(g) {
		return Result{}, ErrNoCycle
	}
	start, err := g.anyCycle(s.alive)
	if err != nil {
		return Result{}, err
	}
	l, h := g.CycleLH(start)
	if infeasibleCycle(l, h) {
		return Result{}, &DeadlockError{CycleArcs: start, CycleNodes: g.nodesOfCycle(start), L: l, H: h}
	}
	var ratio rat.Rat
	if h.Sign() > 0 {
		ratio = rat.FromInt(l).Div(h)
	} else {
		// Degenerate 0/0 start: use ratio 0 as the initial bound; the
		// refinement loop will find any circuit with positive ratio.
		ratio = rat.Rat{}
	}
	cand := Result{Ratio: ratio, CycleArcs: start, CycleNodes: g.nodesOfCycle(start)}
	res, err := s.certifyLoop(context.Background(), g, cand)
	if err != nil {
		return Result{}, err
	}
	if res.Ratio.Sign() == 0 && h.Sign() == 0 {
		// No circuit with positive time: the instance only has degenerate
		// circuits; report the starting circuit with ratio 0.
		res.CycleArcs = start
		res.CycleNodes = g.nodesOfCycle(start)
	}
	return res, nil
}

// anyCycle returns some circuit of the alive subgraph by following first
// out-arcs until a node repeats.
func (g *Graph) anyCycle(alive []bool) ([]int, error) {
	state := make([]int8, g.n)
	next := make([]int32, g.n)
	for v := range next {
		next[v] = -1
	}
	for v := 0; v < g.n; v++ {
		if !alive[v] {
			continue
		}
		for _, ai := range g.Out(v) {
			if alive[g.arcs[ai].To] {
				next[v] = ai
				break
			}
		}
	}
	for s := 0; s < g.n; s++ {
		if !alive[s] || state[s] != 0 {
			continue
		}
		var path []int // nodes
		v := s
		for state[v] == 0 {
			state[v] = 1
			path = append(path, v)
			v = g.arcs[next[v]].To
		}
		if state[v] == 1 {
			start := 0
			for path[start] != v {
				start++
			}
			cyc := path[start:]
			arcs := make([]int, len(cyc))
			for i, u := range cyc {
				arcs[i] = int(next[u])
			}
			return arcs, nil
		}
		for _, u := range path {
			state[u] = 2
		}
	}
	return nil, ErrNoCycle
}
