package mcr

import (
	"context"
	"errors"
	"testing"

	"kiter/internal/rat"
)

func TestSolveCtxCancelled(t *testing.T) {
	g := ring(64, 3, ri(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveCtx(ctx, g, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx err = %v, want context.Canceled", err)
	}
	// An unconstrained context still solves.
	res, err := SolveCtx(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.Cmp(rat.NewRat(3*64, 64)) != 0 {
		t.Fatalf("ratio = %s, want 3", res.Ratio)
	}
}

func TestRefineCtxCancelled(t *testing.T) {
	g := ring(16, 2, ri(1))
	cand, err := Solve(g, Options{SkipCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RefineCtx(ctx, g, cand); !errors.Is(err, context.Canceled) {
		t.Fatalf("RefineCtx err = %v, want context.Canceled", err)
	}
	refined, err := RefineCtx(context.Background(), g, cand)
	if err != nil {
		t.Fatal(err)
	}
	if !refined.Certified {
		t.Fatal("refined result not certified")
	}
}

// TestSolverReuse runs one Solver across graphs of different shapes and
// sizes to check that recycled scratch state never leaks between solves.
func TestSolverReuse(t *testing.T) {
	s := NewSolver()
	for trial := 0; trial < 3; trial++ {
		for _, n := range []int{3, 17, 5, 64, 2} {
			g := ring(n, int64(n), ri(1))
			res, err := s.Solve(g, Options{})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if res.Ratio.Cmp(ri(int64(n))) != 0 {
				t.Fatalf("n=%d: ratio = %s, want %d", n, res.Ratio, n)
			}
			if len(res.CycleArcs) != n {
				t.Fatalf("n=%d: cycle over %d arcs", n, len(res.CycleArcs))
			}
		}
		// A graph with a dead tail and two competing cycles.
		g := New(6)
		g.AddArc(0, 1, 10, ri(1))
		g.AddArc(1, 0, 10, ri(1))
		g.AddArc(2, 3, 1, ri(1))
		g.AddArc(3, 2, 1, ri(1))
		g.AddArc(4, 0, 1, ri(1)) // tail into the fast cycle
		g.AddArc(5, 4, 1, ri(1))
		res, err := s.Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ratio.Cmp(ri(10)) != 0 {
			t.Fatalf("ratio = %s, want 10", res.Ratio)
		}
	}
}
