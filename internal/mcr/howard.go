package mcr

import (
	"math"

	"kiter/internal/rat"
)

// Options tunes Solve.
type Options struct {
	// SkipCertify disables the exact certification pass; the result is
	// then the float64 Howard candidate (Certified=false). Used by
	// intermediate K-Iter rounds and by throughput-shape benchmarks.
	SkipCertify bool
	// MaxHowardRounds bounds policy-improvement rounds (0 = default).
	// Exceeding the bound is harmless when certification is enabled: the
	// certification loop repairs any suboptimal candidate.
	MaxHowardRounds int
}

const defaultHowardRounds = 10000

// relEps is the relative tolerance for float64 comparisons in the Howard
// fast path. Exactness is restored by certification.
const relEps = 1e-12

func gtEps(a, b float64) bool {
	diff := a - b
	scale := math.Abs(a) + math.Abs(b) + 1
	return diff > relEps*scale
}

// Solve computes the maximum cost-to-time ratio of g and a critical
// circuit. It returns ErrNoCycle for acyclic graphs and a *DeadlockError
// when some circuit admits no finite positive period.
func Solve(g *Graph, opt Options) (Result, error) {
	alive := g.trimToCyclicCore()
	if alive == nil {
		return Result{}, ErrNoCycle
	}
	res, err := g.howard(alive, opt)
	if err != nil {
		return Result{}, err
	}
	if opt.SkipCertify {
		return res, nil
	}
	return g.certifyLoop(res)
}

// trimToCyclicCore returns a membership mask of the nodes from which a
// circuit is reachable (every remaining node keeps at least one outgoing
// arc into the remaining set), or nil when the graph is acyclic.
func (g *Graph) trimToCyclicCore() []bool {
	alive := make([]bool, g.n)
	outDeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		alive[v] = true
		outDeg[v] = len(g.out[v])
	}
	// Repeatedly remove nodes with no outgoing arc into the alive set.
	// Maintain a worklist of candidates.
	var work []int
	for v := 0; v < g.n; v++ {
		if outDeg[v] == 0 {
			work = append(work, v)
		}
	}
	// in-adjacency built lazily only if something trims
	var in [][]int32
	buildIn := func() {
		in = make([][]int32, g.n)
		for i := range g.arcs {
			a := &g.arcs[i]
			in[a.To] = append(in[a.To], int32(i))
		}
	}
	for len(work) > 0 {
		if in == nil {
			buildIn()
		}
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if !alive[v] {
			continue
		}
		alive[v] = false
		for _, ai := range in[v] {
			u := g.arcs[ai].From
			if !alive[u] {
				continue
			}
			outDeg[u]--
			if outDeg[u] == 0 {
				work = append(work, u)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if alive[v] {
			return alive
		}
	}
	return nil
}

// howard runs max-ratio policy iteration on the alive subgraph and returns
// an uncertified candidate result.
func (g *Graph) howard(alive []bool, opt Options) (Result, error) {
	maxRounds := opt.MaxHowardRounds
	if maxRounds <= 0 {
		maxRounds = defaultHowardRounds
	}

	pol := make([]int32, g.n) // arc index chosen per node; -1 = dead
	for v := range pol {
		pol[v] = -1
	}
	for v := 0; v < g.n; v++ {
		if !alive[v] {
			continue
		}
		for _, ai := range g.out[v] {
			if alive[g.arcs[ai].To] {
				pol[v] = ai
				break
			}
		}
	}

	lambda := make([]float64, g.n)
	val := make([]float64, g.n)
	var (
		bestCycle []int
		bestRatio float64
	)

	for round := 0; round < maxRounds; round++ {
		cycle, ratio, derr := g.evaluatePolicy(alive, pol, lambda, val)
		if derr != nil {
			return Result{}, derr
		}
		bestCycle, bestRatio = cycle, ratio

		improved := false
		// Phase A: strict λ improvement.
		for v := 0; v < g.n; v++ {
			if !alive[v] {
				continue
			}
			best := pol[v]
			bestL := lambda[g.arcs[best].To]
			for _, ai := range g.out[v] {
				w := g.arcs[ai].To
				if !alive[w] {
					continue
				}
				if gtEps(lambda[w], bestL) {
					best, bestL = ai, lambda[w]
				}
			}
			if best != pol[v] && gtEps(bestL, lambda[g.arcs[pol[v]].To]) {
				pol[v] = best
				improved = true
			}
		}
		if improved {
			continue
		}
		// Phase B: value improvement at equal λ.
		for v := 0; v < g.n; v++ {
			if !alive[v] {
				continue
			}
			lv := lambda[v]
			cur := val[v]
			for _, ai := range g.out[v] {
				a := &g.arcs[ai]
				w := a.To
				if !alive[w] || gtEps(lv, lambda[w]) || gtEps(lambda[w], lv) {
					continue
				}
				cand := float64(a.L) - lv*a.HF + val[w]
				if gtEps(cand, cur) {
					pol[v] = ai
					cur = cand
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	_ = bestRatio
	if bestCycle == nil {
		return Result{}, ErrNoCycle
	}
	res := Result{
		CycleArcs:  bestCycle,
		CycleNodes: g.nodesOfCycle(bestCycle),
	}
	ratio, err := g.CycleRatio(bestCycle)
	if err != nil {
		return Result{}, err
	}
	res.Ratio = ratio
	return res, nil
}

// evaluatePolicy performs the value-determination step: it finds the
// circuits of the policy's functional graph, computes their exact ratios
// (reporting infeasible circuits as DeadlockError), assigns λ and a
// potential to every alive node, and returns the best policy circuit with
// its float ratio.
func (g *Graph) evaluatePolicy(alive []bool, pol []int32, lambda, val []float64) ([]int, float64, error) {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current path
		black = 2 // finished
	)
	color := make([]int8, g.n)
	var (
		bestCycle []int
		bestRatio = math.Inf(-1)
	)
	order := make([]int, 0, 64) // current path (nodes)
	for s := 0; s < g.n; s++ {
		if !alive[s] || color[s] != white {
			continue
		}
		order = order[:0]
		v := s
		for alive[v] && color[v] == white {
			color[v] = grey
			order = append(order, v)
			v = g.arcs[pol[v]].To
		}
		if color[v] == grey {
			// Found a new policy circuit: the suffix of order from v.
			start := 0
			for order[start] != v {
				start++
			}
			cyc := order[start:]
			arcs := make([]int, len(cyc))
			for i, u := range cyc {
				arcs[i] = int(pol[u])
			}
			l, h := g.CycleLH(arcs)
			if infeasibleCycle(l, h) {
				return nil, 0, &DeadlockError{
					CycleArcs:  arcs,
					CycleNodes: append([]int(nil), cyc...),
					L:          l,
					H:          h,
				}
			}
			var lam float64
			if h.Sign() == 0 {
				// l == 0 too: degenerate circuit, constrains nothing.
				lam = math.Inf(-1)
			} else {
				lam = rat.FromInt(l).Div(h).Float()
			}
			if lam > bestRatio {
				bestRatio = lam
				bestCycle = append([]int(nil), arcs...)
			}
			// Assign λ and potentials around the circuit: fix val of the
			// entry node to 0 and walk the circuit backwards so that
			// val[u] = L − λH + val[next] holds on every arc except the
			// closing one (whose defect is the circuit's zero-sum).
			for _, u := range cyc {
				lambda[u] = lam
			}
			val[v] = 0
			if !math.IsInf(lam, -1) {
				for i := len(cyc) - 1; i >= 1; i-- {
					u := cyc[i]
					a := &g.arcs[pol[u]]
					val[u] = float64(a.L) - lam*a.HF + val[a.To]
				}
			} else {
				for _, u := range cyc {
					val[u] = 0
				}
			}
			for _, u := range cyc {
				color[u] = black
			}
		}
		// Unwind the tree part of the path in reverse, inheriting from the
		// policy successor (already black).
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			if color[u] == black {
				continue
			}
			a := &g.arcs[pol[u]]
			lambda[u] = lambda[a.To]
			if math.IsInf(lambda[u], -1) {
				val[u] = 0
			} else {
				val[u] = float64(a.L) - lambda[u]*a.HF + val[a.To]
			}
			color[u] = black
		}
	}
	if bestCycle == nil {
		return nil, 0, ErrNoCycle
	}
	return bestCycle, bestRatio, nil
}
