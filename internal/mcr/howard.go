package mcr

import (
	"context"
	"math"

	"kiter/internal/rat"
	"kiter/internal/telemetry"
)

// Options tunes Solve.
type Options struct {
	// SkipCertify disables the exact certification pass; the result is
	// then the float64 Howard candidate (Certified=false). Used by
	// intermediate K-Iter rounds and by throughput-shape benchmarks.
	SkipCertify bool
	// MaxHowardRounds bounds policy-improvement rounds (0 = default).
	// Exceeding the bound is harmless when certification is enabled: the
	// certification loop repairs any suboptimal candidate.
	MaxHowardRounds int
}

const defaultHowardRounds = 10000

// relEps is the relative tolerance for float64 comparisons in the Howard
// fast path. Exactness is restored by certification.
const relEps = 1e-12

func gtEps(a, b float64) bool {
	diff := a - b
	scale := math.Abs(a) + math.Abs(b) + 1
	return diff > relEps*scale
}

// Solver runs MCRP resolutions while holding every O(n)/O(m) working array
// for reuse: the cyclic-core trim state, the Howard policy and value
// vectors, the policy-circuit traversal stacks, and the exact
// certification weights. A Solver kept across the rounds of one K-Iter
// run makes each round's resolution allocation-free apart from the
// returned Result. The zero value is ready to use; a Solver must not be
// shared between goroutines.
type Solver struct {
	// cyclic-core trim
	alive   []bool
	outDeg  []int32
	work    []int32
	inStart []int32
	inArcs  []int32
	// Howard policy iteration
	pol    []int32
	lambda []float64
	val    []float64
	color  []int8
	order  []int32
	cycle  []int // current policy circuit, arc indices
	best   []int // best circuit of the latest value-determination pass
	// exact certification
	w    []rat.Rat
	dist []rat.Rat
	pred []int32
}

// NewSolver returns an empty Solver.
func NewSolver() *Solver { return &Solver{} }

// Solve computes the maximum cost-to-time ratio of g and a critical
// circuit. It returns ErrNoCycle for acyclic graphs and a *DeadlockError
// when some circuit admits no finite positive period.
func Solve(g *Graph, opt Options) (Result, error) {
	return NewSolver().SolveCtx(context.Background(), g, opt)
}

// SolveCtx is Solve with cancellation: the context is polled once per
// Howard round and once per certification relaxation round, so a caller
// abandoning a large resolution gets control back after at most O(|E|)
// work.
func SolveCtx(ctx context.Context, g *Graph, opt Options) (Result, error) {
	return NewSolver().SolveCtx(ctx, g, opt)
}

// Solve is the Solver equivalent of the package-level Solve, reusing the
// solver's scratch state.
func (s *Solver) Solve(g *Graph, opt Options) (Result, error) {
	return s.SolveCtx(context.Background(), g, opt)
}

// SolveCtx resolves the MCRP on g with cancellation, reusing the solver's
// scratch state. When the context carries a trace span, the Howard
// iteration count and problem size accumulate onto it — the per-solve
// detail a flame graph needs to tell "many cheap policy rounds" from "few
// expensive ones".
func (s *Solver) SolveCtx(ctx context.Context, g *Graph, opt Options) (Result, error) {
	if !s.trim(g) {
		return Result{}, ErrNoCycle
	}
	res, err := s.howard(ctx, g, opt)
	if err != nil {
		return Result{}, err
	}
	if span := telemetry.FromContext(ctx); span != nil {
		span.AddInt("howardIterations", int64(res.Iterations))
		span.SetAttr("mcrNodes", int64(g.NumNodes()))
		span.SetAttr("mcrArcs", int64(g.NumArcs()))
	}
	if opt.SkipCertify {
		return res, nil
	}
	return s.certifyLoop(ctx, g, res)
}

// trim computes the cyclic core of g into s.alive — the nodes from which a
// circuit is reachable, every one keeping at least one outgoing arc into
// the core — and reports whether any node survives.
func (s *Solver) trim(g *Graph) bool {
	g.ensureCSR()
	n := g.n
	s.alive = growBool(s.alive, n)
	s.outDeg = growInt32(s.outDeg, n)
	s.work = s.work[:0]
	for v := 0; v < n; v++ {
		s.alive[v] = true
		s.outDeg[v] = g.outDeg(v)
		if s.outDeg[v] == 0 {
			s.work = append(s.work, int32(v))
		}
	}
	// The in-adjacency is built lazily, only when something trims.
	inBuilt := false
	for len(s.work) > 0 {
		if !inBuilt {
			s.buildIn(g)
			inBuilt = true
		}
		v := int(s.work[len(s.work)-1])
		s.work = s.work[:len(s.work)-1]
		if !s.alive[v] {
			continue
		}
		s.alive[v] = false
		for _, ai := range s.inArcs[s.inStart[v]:s.inStart[v+1]] {
			u := g.arcs[ai].From
			if !s.alive[u] {
				continue
			}
			s.outDeg[u]--
			if s.outDeg[u] == 0 {
				s.work = append(s.work, int32(u))
			}
		}
	}
	for v := 0; v < n; v++ {
		if s.alive[v] {
			return true
		}
	}
	return false
}

// buildIn builds the CSR in-adjacency of g into the solver's scratch.
func (s *Solver) buildIn(g *Graph) {
	n1 := g.n + 1
	if cap(s.inStart) < n1 {
		s.inStart = make([]int32, n1)
	} else {
		s.inStart = s.inStart[:n1]
		for i := range s.inStart {
			s.inStart[i] = 0
		}
	}
	for i := range g.arcs {
		s.inStart[g.arcs[i].To+1]++
	}
	for v := 0; v < g.n; v++ {
		s.inStart[v+1] += s.inStart[v]
	}
	if cap(s.inArcs) < len(g.arcs) {
		s.inArcs = make([]int32, len(g.arcs))
	} else {
		s.inArcs = s.inArcs[:len(g.arcs)]
	}
	for i := range g.arcs {
		to := g.arcs[i].To
		s.inArcs[s.inStart[to]] = int32(i)
		s.inStart[to]++
	}
	for v := g.n; v > 0; v-- {
		s.inStart[v] = s.inStart[v-1]
	}
	s.inStart[0] = 0
}

// howard runs max-ratio policy iteration on the alive subgraph and returns
// an uncertified candidate result.
func (s *Solver) howard(ctx context.Context, g *Graph, opt Options) (Result, error) {
	maxRounds := opt.MaxHowardRounds
	if maxRounds <= 0 {
		maxRounds = defaultHowardRounds
	}
	n := g.n
	s.pol = growInt32(s.pol, n)
	s.lambda = growFloat64(s.lambda, n)
	s.val = growFloat64(s.val, n)
	for v := 0; v < n; v++ {
		s.pol[v] = -1
		if !s.alive[v] {
			continue
		}
		for _, ai := range g.Out(v) {
			if s.alive[g.arcs[ai].To] {
				s.pol[v] = ai
				break
			}
		}
	}

	rounds := 0
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		rounds = round + 1
		if err := s.evaluatePolicy(g); err != nil {
			return Result{}, err
		}
		arcs := g.arcs
		improved := false
		// Phase A: strict λ improvement.
		for v := 0; v < n; v++ {
			if !s.alive[v] {
				continue
			}
			cur := s.pol[v]
			curL := s.lambda[arcs[cur].To]
			best, bestL := cur, curL
			for _, ai := range g.Out(v) {
				w := arcs[ai].To
				if !s.alive[w] {
					continue
				}
				if gtEps(s.lambda[w], bestL) {
					best, bestL = ai, s.lambda[w]
				}
			}
			if best != cur && gtEps(bestL, curL) {
				s.pol[v] = best
				improved = true
			}
		}
		if improved {
			continue
		}
		// Phase B: value improvement at equal λ.
		for v := 0; v < n; v++ {
			if !s.alive[v] {
				continue
			}
			lv := s.lambda[v]
			cur := s.val[v]
			pol := s.pol[v]
			for _, ai := range g.Out(v) {
				a := &arcs[ai]
				w := a.To
				if !s.alive[w] || gtEps(lv, s.lambda[w]) || gtEps(s.lambda[w], lv) {
					continue
				}
				cand := float64(a.L) - lv*a.HF + s.val[w]
				if gtEps(cand, cur) {
					pol = ai
					cur = cand
					improved = true
				}
			}
			s.pol[v] = pol
		}
		if !improved {
			break
		}
	}
	if len(s.best) == 0 {
		return Result{}, ErrNoCycle
	}
	res := Result{
		CycleArcs:  append([]int(nil), s.best...),
		Iterations: rounds,
	}
	res.CycleNodes = g.nodesOfCycle(res.CycleArcs)
	ratio, err := g.CycleRatio(res.CycleArcs)
	if err != nil {
		return Result{}, err
	}
	res.Ratio = ratio
	return res, nil
}

// evaluatePolicy performs the value-determination step: it finds the
// circuits of the policy's functional graph, computes their exact ratios
// (reporting infeasible circuits as DeadlockError), assigns λ and a
// potential to every alive node, and leaves the best policy circuit in
// s.best.
func (s *Solver) evaluatePolicy(g *Graph) error {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current path
		black = 2 // finished
	)
	n := g.n
	s.color = growInt8(s.color, n)
	for i := range s.color {
		s.color[i] = white
	}
	s.best = s.best[:0]
	bestRatio := math.Inf(-1)
	arcs := g.arcs
	for start := 0; start < n; start++ {
		if !s.alive[start] || s.color[start] != white {
			continue
		}
		s.order = s.order[:0]
		v := start
		for s.alive[v] && s.color[v] == white {
			s.color[v] = grey
			s.order = append(s.order, int32(v))
			v = arcs[s.pol[v]].To
		}
		if s.color[v] == grey {
			// Found a new policy circuit: the suffix of order from v.
			first := 0
			for int(s.order[first]) != v {
				first++
			}
			cyc := s.order[first:]
			s.cycle = s.cycle[:0]
			for _, u := range cyc {
				s.cycle = append(s.cycle, int(s.pol[u]))
			}
			l, h := g.CycleLH(s.cycle)
			if infeasibleCycle(l, h) {
				nodes := make([]int, len(cyc))
				for i, u := range cyc {
					nodes[i] = int(u)
				}
				return &DeadlockError{
					CycleArcs:  append([]int(nil), s.cycle...),
					CycleNodes: nodes,
					L:          l,
					H:          h,
				}
			}
			var lam float64
			if h.Sign() == 0 {
				// l == 0 too: degenerate circuit, constrains nothing.
				lam = math.Inf(-1)
			} else {
				lam = rat.FromInt(l).Div(h).Float()
			}
			if lam > bestRatio {
				bestRatio = lam
				s.best = append(s.best[:0], s.cycle...)
			}
			// Assign λ and potentials around the circuit: fix val of the
			// entry node to 0 and walk the circuit backwards so that
			// val[u] = L − λH + val[next] holds on every arc except the
			// closing one (whose defect is the circuit's zero-sum).
			for _, u := range cyc {
				s.lambda[u] = lam
			}
			s.val[v] = 0
			if !math.IsInf(lam, -1) {
				for i := len(cyc) - 1; i >= 1; i-- {
					u := cyc[i]
					a := &arcs[s.pol[u]]
					s.val[u] = float64(a.L) - lam*a.HF + s.val[a.To]
				}
			} else {
				for _, u := range cyc {
					s.val[u] = 0
				}
			}
			for _, u := range cyc {
				s.color[u] = black
			}
		}
		// Unwind the tree part of the path in reverse, inheriting from the
		// policy successor (already black).
		for i := len(s.order) - 1; i >= 0; i-- {
			u := int(s.order[i])
			if s.color[u] == black {
				continue
			}
			a := &arcs[s.pol[u]]
			s.lambda[u] = s.lambda[a.To]
			if math.IsInf(s.lambda[u], -1) {
				s.val[u] = 0
			} else {
				s.val[u] = float64(a.L) - s.lambda[u]*a.HF + s.val[a.To]
			}
			s.color[u] = black
		}
	}
	if len(s.best) == 0 {
		return ErrNoCycle
	}
	return nil
}

func growBool(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}

func growInt8(b []int8, n int) []int8 {
	if cap(b) < n {
		return make([]int8, n)
	}
	return b[:n]
}

func growInt32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func growFloat64(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

func growRat(b []rat.Rat, n int) []rat.Rat {
	if cap(b) < n {
		return make([]rat.Rat, n)
	}
	return b[:n]
}
