package mcr

import (
	"math"

	"kiter/internal/rat"
)

// MaxCycleMean computes the maximum cycle mean of g — the maximum over
// circuits of Σ L(e) / |c| — using Karp's dynamic program per strongly
// connected component. The H weights are ignored (treated as 1 per arc).
//
// The computation is exact (integer dynamic program, rational comparison).
// It exists as an independent oracle for the unit-time special case: on
// graphs whose arcs all have H = 1, Solve and MaxCycleMean must agree,
// which the test suite exploits, and it serves as an MCRP-engine ablation
// point for HSDF-like instances.
func MaxCycleMean(g *Graph) (rat.Rat, error) {
	comps := g.SCCs()
	best := rat.Rat{}
	found := false
	for _, comp := range comps {
		if len(comp) == 1 {
			// A singleton component only matters if it has a self-loop.
			v := comp[0]
			self := false
			for _, ai := range g.Out(v) {
				if g.arcs[ai].To == v {
					self = true
					break
				}
			}
			if !self {
				continue
			}
		}
		mean, ok := g.karpOnComponent(comp)
		if !ok {
			continue
		}
		if !found || mean.Cmp(best) > 0 {
			best = mean
			found = true
		}
	}
	if !found {
		return rat.Rat{}, ErrNoCycle
	}
	return best, nil
}

// karpOnComponent runs Karp's recurrence on one SCC. It returns the
// component's maximum cycle mean and whether the component contains a
// circuit (false only for degenerate singletons).
func (g *Graph) karpOnComponent(comp []int) (rat.Rat, bool) {
	n := len(comp)
	local := make(map[int]int, n)
	for i, v := range comp {
		local[v] = i
	}
	type larc struct {
		from, to int
		l        int64
	}
	var arcs []larc
	for _, v := range comp {
		lv := local[v]
		for _, ai := range g.Out(v) {
			a := &g.arcs[ai]
			if lw, ok := local[a.To]; ok {
				arcs = append(arcs, larc{from: lv, to: lw, l: a.L})
			}
		}
	}
	if len(arcs) == 0 {
		return rat.Rat{}, false
	}
	const ninf = math.MinInt64 / 4
	// D[k][v] = max cost of a k-arc walk from node 0 to v.
	prev := make([]int64, n)
	cur := make([]int64, n)
	// Keep every level for the final min-max formula.
	levels := make([][]int64, n+1)
	for i := range prev {
		prev[i] = ninf
	}
	prev[0] = 0
	levels[0] = append([]int64(nil), prev...)
	for k := 1; k <= n; k++ {
		for i := range cur {
			cur[i] = ninf
		}
		for _, a := range arcs {
			if prev[a.from] == ninf {
				continue
			}
			if c := prev[a.from] + a.l; c > cur[a.to] {
				cur[a.to] = c
			}
		}
		levels[k] = append([]int64(nil), cur...)
		prev, cur = cur, prev
	}
	dn := levels[n]
	var best rat.Rat
	found := false
	for v := 0; v < n; v++ {
		if dn[v] == ninf {
			continue
		}
		var vmin rat.Rat
		vminSet := false
		for k := 0; k < n; k++ {
			if levels[k][v] == ninf {
				continue
			}
			m := rat.NewRat(dn[v]-levels[k][v], int64(n-k))
			if !vminSet || m.Cmp(vmin) < 0 {
				vmin = m
				vminSet = true
			}
		}
		if !vminSet {
			continue
		}
		if !found || vmin.Cmp(best) > 0 {
			best = vmin
			found = true
		}
	}
	return best, found
}
