package mcr

import (
	"math/rand"
	"testing"

	"kiter/internal/rat"
)

func TestRefinePassthroughWhenCertified(t *testing.T) {
	g := ring(3, 2, ri(1))
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Refine(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Certified || again.Ratio.Cmp(res.Ratio) != 0 {
		t.Errorf("Refine changed a certified result: %+v", again)
	}
}

func TestRefineUpgradesFloatResult(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddArc(i, (i+1)%n, rng.Int63n(30), rat.NewRat(1+rng.Int63n(7), 1+rng.Int63n(5)))
		}
		for e := rng.Intn(n); e > 0; e-- {
			g.AddArc(rng.Intn(n), rng.Intn(n), rng.Int63n(30), rat.NewRat(1+rng.Int63n(7), 1+rng.Int63n(5)))
		}
		fast, err := Solve(g, Options{SkipCertify: true})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Refine(g, fast)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := SolveExact(g)
		if err != nil {
			t.Fatal(err)
		}
		if !refined.Certified {
			t.Fatal("Refine did not certify")
		}
		if refined.Ratio.Cmp(exact.Ratio) != 0 {
			t.Fatalf("trial %d: refined %s ≠ exact %s", trial, refined.Ratio, exact.Ratio)
		}
		if refined.Ratio.Cmp(fast.Ratio) < 0 {
			t.Fatalf("trial %d: refinement regressed below the candidate", trial)
		}
	}
}

func TestHowardRoundsBudgetStillExact(t *testing.T) {
	// Starving Howard of improvement rounds must not break exactness:
	// certification repairs any suboptimal candidate.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(10)
		g := randomUnitHGraph(rng, n)
		limited, err := Solve(g, Options{MaxHowardRounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		full, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if limited.Ratio.Cmp(full.Ratio) != 0 {
			t.Fatalf("trial %d: 1-round %s ≠ full %s", trial, limited.Ratio, full.Ratio)
		}
	}
}

func TestSolveExactOnDegenerateOnlyGraph(t *testing.T) {
	// Only a 0/0 circuit exists: ratio 0 with the circuit reported.
	g := New(2)
	g.AddArc(0, 1, 0, rat.Rat{})
	g.AddArc(1, 0, 0, rat.Rat{})
	res, err := SolveExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.IsZero() {
		t.Errorf("ratio = %s, want 0", res.Ratio)
	}
	if len(res.CycleArcs) == 0 {
		t.Error("no circuit reported")
	}
}

func TestSolveExactDeadlock(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 3, ri(1))
	g.AddArc(1, 0, 3, ri(-1))
	if _, err := SolveExact(g); err == nil {
		t.Error("infeasible circuit accepted")
	}
}

func TestCertifyOnEmptyGraph(t *testing.T) {
	g := New(0)
	viol, err := g.Certify(ri(1))
	if err != nil || viol != nil {
		t.Errorf("empty graph certify = %v,%v", viol, err)
	}
}

func TestRefinementsCounter(t *testing.T) {
	// Two near-tie cycles: the float path may pick either; after
	// refinement the exact ratio is the larger one and the counter
	// reflects whether a repair happened.
	g := New(4)
	g.AddArc(0, 1, 1_000_000_000, ri(1))
	g.AddArc(1, 0, 1_000_000_000, ri(1))
	g.AddArc(2, 3, 2_000_000_001, ri(2))
	g.AddArc(3, 2, 2_000_000_001, ri(2))
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rat.NewRat(2_000_000_001, 2)
	if res.Ratio.Cmp(want) != 0 {
		t.Errorf("ratio = %s, want %s", res.Ratio, want)
	}
	if res.Refinements < 0 {
		t.Error("negative refinement count")
	}
}
