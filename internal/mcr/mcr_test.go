package mcr

import (
	"math/rand"
	"testing"

	"kiter/internal/rat"
)

func ri(v int64) rat.Rat { return rat.FromInt(v) }

// ring builds a single directed cycle 0→1→…→n−1→0 with the given L and H
// per arc.
func ring(n int, l int64, h rat.Rat) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddArc(i, (i+1)%n, l, h)
	}
	return g
}

func TestSolveSingleCycle(t *testing.T) {
	g := ring(4, 3, ri(2)) // ratio = 12/8 = 3/2
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.String() != "3/2" {
		t.Errorf("ratio = %s, want 3/2", res.Ratio)
	}
	if !res.Certified {
		t.Error("result not certified")
	}
	if len(res.CycleArcs) != 4 {
		t.Errorf("cycle has %d arcs, want 4", len(res.CycleArcs))
	}
}

func TestSolvePicksMaxOfTwoCycles(t *testing.T) {
	// Two disjoint cycles: ratio 2 and ratio 5.
	g := New(4)
	g.AddArc(0, 1, 2, ri(1))
	g.AddArc(1, 0, 2, ri(1)) // ratio (2+2)/(1+1)=2
	g.AddArc(2, 3, 7, ri(1))
	g.AddArc(3, 2, 3, ri(1)) // ratio 10/2 = 5
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.String() != "5" {
		t.Errorf("ratio = %s, want 5", res.Ratio)
	}
	nodes := map[int]bool{}
	for _, v := range res.CycleNodes {
		nodes[v] = true
	}
	if !nodes[2] || !nodes[3] || nodes[0] || nodes[1] {
		t.Errorf("critical cycle nodes = %v, want {2,3}", res.CycleNodes)
	}
}

func TestSolveSelfLoop(t *testing.T) {
	g := New(2)
	g.AddArc(0, 0, 9, ri(3)) // ratio 3
	g.AddArc(0, 1, 1, ri(1))
	g.AddArc(1, 0, 1, ri(1)) // 2-cycle ratio (1+1)/(1+1)=1
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.String() != "3" {
		t.Errorf("ratio = %s, want 3", res.Ratio)
	}
	if len(res.CycleArcs) != 1 {
		t.Errorf("expected the self-loop as critical circuit, got %v", res.CycleArcs)
	}
}

func TestSolveFractionalH(t *testing.T) {
	// The kperiodic H weights are fractions like β/(q̃·ĩ); check exact
	// handling: cycle with H = 1/36 + (−1/72) = 1/72, L = 2 ⇒ ratio 144.
	g := New(2)
	g.AddArc(0, 1, 1, rat.NewRat(1, 36))
	g.AddArc(1, 0, 1, rat.NewRat(-1, 72))
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.String() != "144" {
		t.Errorf("ratio = %s, want 144", res.Ratio)
	}
}

func TestSolveAcyclic(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1, ri(1))
	g.AddArc(1, 2, 1, ri(1))
	if _, err := Solve(g, Options{}); err != ErrNoCycle {
		t.Errorf("err = %v, want ErrNoCycle", err)
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	g := New(0)
	if _, err := Solve(g, Options{}); err != ErrNoCycle {
		t.Errorf("err = %v, want ErrNoCycle", err)
	}
}

func TestSolveDeadlockNegativeH(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 1, ri(1))
	g.AddArc(1, 0, 1, ri(-2)) // cycle H = −1 < 0: infeasible
	_, err := Solve(g, Options{})
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestSolveDeadlockZeroH(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 1, ri(1))
	g.AddArc(1, 0, 1, ri(-1)) // cycle H = 0 with L = 2 > 0: infeasible
	_, err := Solve(g, Options{})
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if de.Error() == "" {
		t.Error("empty deadlock message")
	}
}

func TestDeadlockHiddenBehindGoodCycle(t *testing.T) {
	// A healthy cycle plus an infeasible one: must be reported infeasible
	// regardless of which policy Howard starts from.
	g := New(4)
	g.AddArc(0, 1, 1, ri(1))
	g.AddArc(1, 0, 1, ri(1)) // healthy, ratio 1
	g.AddArc(2, 3, 5, ri(1))
	g.AddArc(3, 2, 5, ri(-1)) // H = 0, L = 10: infeasible
	_, err := Solve(g, Options{})
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestSolveMixedSignArcH(t *testing.T) {
	// Negative H on an arc is fine while every circuit's total stays
	// positive.
	g := New(3)
	g.AddArc(0, 1, 2, ri(3))
	g.AddArc(1, 2, 2, ri(-1))
	g.AddArc(2, 0, 2, ri(2)) // H(c) = 4, L(c) = 6 ⇒ 3/2
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.String() != "3/2" {
		t.Errorf("ratio = %s, want 3/2", res.Ratio)
	}
}

func TestSolveTrimsTails(t *testing.T) {
	// Nodes 2,3,4 form a tail/dag attached to a 2-cycle {0,1}.
	g := New(5)
	g.AddArc(0, 1, 4, ri(1))
	g.AddArc(1, 0, 4, ri(1))
	g.AddArc(2, 0, 100, ri(1)) // tail into the cycle
	g.AddArc(3, 4, 50, ri(1))  // dag
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.String() != "4" {
		t.Errorf("ratio = %s, want 4", res.Ratio)
	}
}

func TestSolveZeroCostCycle(t *testing.T) {
	// Cycle with L = 0, H > 0: ratio 0 is valid (a free-running loop).
	g := ring(3, 0, ri(1))
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.IsZero() {
		t.Errorf("ratio = %s, want 0", res.Ratio)
	}
}

func TestSolveDegenerateZeroZeroCycle(t *testing.T) {
	// A 0/0 cycle constrains nothing; alongside a real cycle the real one
	// must win.
	g := New(4)
	g.AddArc(0, 1, 0, rat.Rat{})
	g.AddArc(1, 0, 0, rat.Rat{})
	g.AddArc(2, 3, 6, ri(2))
	g.AddArc(3, 2, 6, ri(2))
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.String() != "3" {
		t.Errorf("ratio = %s, want 3", res.Ratio)
	}
}

func TestCertifyUpperBound(t *testing.T) {
	g := ring(3, 2, ri(1)) // ratio 2
	if viol, err := g.Certify(ri(2)); err != nil || viol != nil {
		t.Errorf("Certify(2) = %v,%v; want nil,nil", viol, err)
	}
	viol, err := g.Certify(ri(1))
	if err != nil || viol == nil {
		t.Errorf("Certify(1) should find a violating circuit, got %v,%v", viol, err)
	}
	if viol != nil {
		r, err := g.CycleRatio(viol)
		if err != nil || r.String() != "2" {
			t.Errorf("violating circuit ratio = %v,%v", r, err)
		}
	}
}

func TestSolveExactMatchesSolve(t *testing.T) {
	g := New(5)
	g.AddArc(0, 1, 3, ri(1))
	g.AddArc(1, 2, 1, ri(2))
	g.AddArc(2, 0, 2, ri(1))
	g.AddArc(2, 3, 8, ri(1))
	g.AddArc(3, 2, 1, ri(1))
	g.AddArc(3, 4, 2, ri(3))
	g.AddArc(4, 3, 9, ri(1))
	a, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio.Cmp(b.Ratio) != 0 {
		t.Errorf("Solve=%s, SolveExact=%s", a.Ratio, b.Ratio)
	}
}

func TestKarpSimple(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1, ri(1))
	g.AddArc(1, 0, 5, ri(1)) // mean 3
	g.AddArc(1, 2, 1, ri(1))
	g.AddArc(2, 1, 1, ri(1)) // mean 1
	m, err := MaxCycleMean(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "3" {
		t.Errorf("mean = %s, want 3", m)
	}
}

func TestKarpSelfLoop(t *testing.T) {
	g := New(1)
	g.AddArc(0, 0, 7, ri(1))
	m, err := MaxCycleMean(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "7" {
		t.Errorf("mean = %s, want 7", m)
	}
}

func TestKarpAcyclic(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 1, ri(1))
	if _, err := MaxCycleMean(g); err != ErrNoCycle {
		t.Errorf("err = %v, want ErrNoCycle", err)
	}
}

// randomUnitHGraph builds a random strongly-cyclic graph with H = 1 arcs.
func randomUnitHGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	// Hamiltonian cycle guarantees strong connectivity.
	for i := 0; i < n; i++ {
		g.AddArc(i, (i+1)%n, rng.Int63n(20), ri(1))
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		g.AddArc(rng.Intn(n), rng.Intn(n), rng.Int63n(20), ri(1))
	}
	return g
}

func TestSolveAgreesWithKarpOnUnitH(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		g := randomUnitHGraph(rng, n)
		res, err := Solve(g, Options{})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		mean, err := MaxCycleMean(g)
		if err != nil {
			t.Fatalf("trial %d: Karp: %v", trial, err)
		}
		if res.Ratio.Cmp(mean) != 0 {
			t.Fatalf("trial %d: Howard=%s, Karp=%s", trial, res.Ratio, mean)
		}
		if !res.Certified {
			t.Fatalf("trial %d: not certified", trial)
		}
	}
}

func TestSolveAgreesWithExactOnRandomRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddArc(i, (i+1)%n, rng.Int63n(15), rat.NewRat(1+rng.Int63n(5), 1+rng.Int63n(6)))
		}
		for e := rng.Intn(2 * n); e > 0; e-- {
			g.AddArc(rng.Intn(n), rng.Intn(n), rng.Int63n(15), rat.NewRat(1+rng.Int63n(5), 1+rng.Int63n(6)))
		}
		a, err := Solve(g, Options{})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		b, err := SolveExact(g)
		if err != nil {
			t.Fatalf("trial %d: SolveExact: %v", trial, err)
		}
		if a.Ratio.Cmp(b.Ratio) != 0 {
			t.Fatalf("trial %d: Solve=%s, SolveExact=%s", trial, a.Ratio, b.Ratio)
		}
	}
}

func TestCriticalCycleRatioMatchesReported(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		g := randomUnitHGraph(rng, n)
		res, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := g.CycleRatio(res.CycleArcs)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cmp(res.Ratio) != 0 {
			t.Fatalf("reported %s but circuit has %s", res.Ratio, r)
		}
		// Circuit must be closed and arcs consecutive.
		for i, ai := range res.CycleArcs {
			next := res.CycleArcs[(i+1)%len(res.CycleArcs)]
			if g.Arc(ai).To != g.Arc(next).From {
				t.Fatal("critical circuit arcs not consecutive")
			}
		}
	}
}

func TestSCCs(t *testing.T) {
	g := New(6)
	g.AddArc(0, 1, 1, ri(1))
	g.AddArc(1, 2, 1, ri(1))
	g.AddArc(2, 0, 1, ri(1)) // SCC {0,1,2}
	g.AddArc(2, 3, 1, ri(1))
	g.AddArc(3, 4, 1, ri(1))
	g.AddArc(4, 3, 1, ri(1)) // SCC {3,4}
	comps := g.SCCs()
	if len(comps) != 4 { // {0,1,2}, {3,4}, {5}, and... count: nodes 5 alone
		// components: {0,1,2}, {3,4}, {5} = 3 components
		t.Logf("components: %v", comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("SCC sizes = %v, want one of each {3,2,1}", sizes)
	}
}

func TestSkipCertify(t *testing.T) {
	g := ring(3, 2, ri(1))
	res, err := Solve(g, Options{SkipCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Error("SkipCertify result claims certification")
	}
	if res.Ratio.String() != "2" {
		t.Errorf("ratio = %s, want 2", res.Ratio)
	}
}

func TestCycleRatioInfeasible(t *testing.T) {
	g := New(2)
	a1 := g.AddArc(0, 1, 1, ri(1))
	a2 := g.AddArc(1, 0, 1, ri(-1))
	if _, err := g.CycleRatio([]int{a1, a2}); err == nil {
		t.Error("expected infeasible-cycle error")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := New(3)
	id := g.AddArc(0, 2, 5, ri(7))
	if g.NumNodes() != 3 || g.NumArcs() != 1 {
		t.Error("wrong counts")
	}
	a := g.Arc(id)
	if a.From != 0 || a.To != 2 || a.L != 5 || a.H.String() != "7" {
		t.Errorf("arc = %+v", a)
	}
	if len(g.Out(0)) != 1 || len(g.Out(1)) != 0 {
		t.Error("adjacency wrong")
	}
}

func TestHugeRatioValues(t *testing.T) {
	// Denominators of the order of Echo's q̃·ĩ (≈ 10⁹): exactness must
	// survive even though floats lose precision.
	g := New(2)
	g.AddArc(0, 1, 1, rat.NewRat(1, 802971540))
	g.AddArc(1, 0, 1, rat.NewRat(1, 802971541))
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rat.FromInt(2).Div(rat.NewRat(1, 802971540).Add(rat.NewRat(1, 802971541)))
	if res.Ratio.Cmp(want) != 0 {
		t.Errorf("ratio = %s, want %s", res.Ratio, want)
	}
}

func TestNearTieCyclesExactness(t *testing.T) {
	// Two cycles whose ratios differ by ~1e-18 — indistinguishable in
	// float64; certification must pick the truly larger one.
	g := New(4)
	g.AddArc(0, 1, 1_000_000_000, ri(1))
	g.AddArc(1, 0, 1_000_000_000, ri(1)) // ratio 10⁹
	g.AddArc(2, 3, 1_000_000_001, ri(1))
	g.AddArc(3, 2, 1_000_000_000, ri(1)) // ratio 10⁹ + ½
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rat.NewRat(2_000_000_001, 2)
	if res.Ratio.Cmp(want) != 0 {
		t.Errorf("ratio = %s, want %s", res.Ratio, want)
	}
}
