// Package mcr solves the Maximum Cost-to-time Ratio Problem (MCRP) on
// bi-valued directed graphs, the computational core of the K-Iter
// algorithm (Section 3.3 of the paper).
//
// A bi-valued graph G = (N, E) carries two weights per arc e: a cost L(e)
// (a phase duration, an integer) and a time H(e) (a rational, possibly
// negative). The cost-to-time ratio of a circuit c is
// R(c) = Σ L(e) / Σ H(e), and the MCRP asks for λ = max over elementary
// circuits of R(c) together with a critical circuit attaining it.
//
// The solver combines a float64 Howard policy iteration (fast path) with an
// exact certification loop: the candidate circuit's ratio is recomputed in
// exact rational arithmetic and a Bellman–Ford positive-cycle check on the
// arc weights L(e) − λ·H(e) either certifies optimality or produces a
// strictly better circuit, whose exact ratio becomes the new candidate.
// Since every candidate is the exact ratio of a real circuit and candidates
// strictly increase, the loop terminates; the published result is exact.
//
// Circuits whose total time is non-positive while their total cost is
// positive make the underlying scheduling LP infeasible; they are reported
// as a DeadlockError carrying the certificate circuit.
//
// Repeated resolutions — the K-Iter loop solves one MCRP per Algorithm 1
// round — should reuse a Solver (persistent scratch state) and rebuild the
// graph in place with Reset/Reserve, which keeps the per-round work
// allocation-free once the backing arrays have grown to steady state.
package mcr

import (
	"errors"
	"fmt"

	"kiter/internal/rat"
)

// Arc is a bi-valued arc. L is the integer cost (a duration); H is the
// exact rational time weight. HF caches H as float64 for the fast path.
type Arc struct {
	From, To int
	L        int64
	H        rat.Rat
	HF       float64
}

// Graph is a bi-valued directed graph under construction or analysis.
// Build with New and AddArc; analyses may be run at any time. The
// out-adjacency is a compressed (CSR) index over the arc arena, built
// lazily after the last AddArc, so construction itself touches only the
// arena. Reset rewinds the graph for a new round while keeping every
// backing array.
//
// A Graph is not safe for concurrent use: even read-style analyses may
// (re)build the adjacency index.
type Graph struct {
	n    int
	arcs []Arc
	// CSR out-adjacency over arcs, valid while csrOK: the arcs leaving v
	// are outArcs[outStart[v]:outStart[v+1]].
	outStart []int32
	outArcs  []int32
	csrOK    bool
}

// New returns an empty bi-valued graph with n nodes (0 … n−1).
func New(n int) *Graph {
	return &Graph{n: n}
}

// Reset rewinds g to an empty graph with n nodes, retaining the arc arena
// and adjacency backing arrays for reuse.
func (g *Graph) Reset(n int) {
	g.n = n
	g.arcs = g.arcs[:0]
	g.csrOK = false
}

// Reserve grows the arc arena's capacity to hold at least m arcs, so a
// build loop with a known arc count performs a single allocation at most.
func (g *Graph) Reserve(m int) {
	if cap(g.arcs) < m {
		arcs := make([]Arc, len(g.arcs), m)
		copy(arcs, g.arcs)
		g.arcs = arcs
	}
}

// AddArc appends an arc from → to with cost l and exact time h, returning
// its arc index.
func (g *Graph) AddArc(from, to int, l int64, h rat.Rat) int {
	return g.AddArcHF(from, to, l, h, h.Float())
}

// AddArcHF is AddArc for callers that already hold the float64 rendering
// of h (e.g. when replaying a cached arc block), skipping the conversion.
func (g *Graph) AddArcHF(from, to int, l int64, h rat.Rat, hf float64) int {
	id := len(g.arcs)
	g.arcs = append(g.arcs, Arc{From: from, To: to, L: l, H: h, HF: hf})
	g.csrOK = false
	return id
}

// ensureCSR (re)builds the out-adjacency index by counting sort over the
// arc arena, reusing the index arrays.
func (g *Graph) ensureCSR() {
	if g.csrOK {
		return
	}
	n1 := g.n + 1
	if cap(g.outStart) < n1 {
		g.outStart = make([]int32, n1)
	} else {
		g.outStart = g.outStart[:n1]
		for i := range g.outStart {
			g.outStart[i] = 0
		}
	}
	for i := range g.arcs {
		g.outStart[g.arcs[i].From+1]++
	}
	for v := 0; v < g.n; v++ {
		g.outStart[v+1] += g.outStart[v]
	}
	if cap(g.outArcs) < len(g.arcs) {
		g.outArcs = make([]int32, len(g.arcs))
	} else {
		g.outArcs = g.outArcs[:len(g.arcs)]
	}
	// outStart is consumed as a running cursor and restored by the final
	// shift-down, the standard two-pass CSR construction.
	for i := range g.arcs {
		from := g.arcs[i].From
		g.outArcs[g.outStart[from]] = int32(i)
		g.outStart[from]++
	}
	for v := g.n; v > 0; v-- {
		g.outStart[v] = g.outStart[v-1]
	}
	g.outStart[0] = 0
	g.csrOK = true
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// NumArcs returns the arc count.
func (g *Graph) NumArcs() int { return len(g.arcs) }

// Arc returns the arc with the given index. The pointer aliases graph
// storage and must not be mutated.
func (g *Graph) Arc(i int) *Arc { return &g.arcs[i] }

// Out returns the indices of arcs leaving v. The slice aliases the
// adjacency index and is invalidated by the next AddArc or Reset.
func (g *Graph) Out(v int) []int32 {
	g.ensureCSR()
	return g.outArcs[g.outStart[v]:g.outStart[v+1]]
}

// outDeg returns the out-degree of v (the CSR must be current).
func (g *Graph) outDeg(v int) int32 {
	return g.outStart[v+1] - g.outStart[v]
}

// CycleLH sums the cost and exact time of the given arc sequence.
func (g *Graph) CycleLH(arcIdx []int) (l int64, h rat.Rat) {
	for _, ai := range arcIdx {
		a := &g.arcs[ai]
		l += a.L
		h = h.Add(a.H)
	}
	return l, h
}

// CycleRatio returns the exact cost-to-time ratio of the circuit given as
// a sequence of arc indices. The circuit's time must be positive.
func (g *Graph) CycleRatio(arcIdx []int) (rat.Rat, error) {
	l, h := g.CycleLH(arcIdx)
	if h.Sign() <= 0 {
		return rat.Rat{}, &DeadlockError{CycleArcs: append([]int(nil), arcIdx...), L: l, H: h}
	}
	return rat.FromInt(l).Div(h), nil
}

// Result is the outcome of an MCRP resolution.
type Result struct {
	// Ratio is the exact maximum cost-to-time ratio λ.
	Ratio rat.Rat
	// CycleArcs is a critical circuit as a sequence of arc indices, in
	// traversal order (the head of arc i is the tail of arc i+1, wrapping).
	CycleArcs []int
	// CycleNodes is the corresponding node sequence (same length).
	CycleNodes []int
	// Certified reports whether the exact certification pass ran.
	Certified bool
	// Iterations counts Howard policy-improvement rounds.
	Iterations int
	// Refinements counts exact certification rounds that found a strictly
	// better circuit than the float candidate.
	Refinements int
}

// ErrNoCycle is returned when the graph has no circuit at all (the
// scheduling problem is unconstrained; throughput is limited only by
// individual tasks).
var ErrNoCycle = errors.New("mcr: graph has no circuit")

// DeadlockError reports a circuit whose total time H(c) is ≤ 0 while its
// total cost is positive (or H(c) < 0 outright): no finite period satisfies
// the cycle's constraints, i.e. the schedule is infeasible for this graph.
type DeadlockError struct {
	CycleArcs  []int
	CycleNodes []int
	L          int64
	H          rat.Rat
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("mcr: infeasible circuit (L=%d, H=%s over %d arcs)", e.L, e.H, len(e.CycleArcs))
}

// nodesOfCycle recovers the node sequence from an arc sequence.
func (g *Graph) nodesOfCycle(arcIdx []int) []int {
	nodes := make([]int, len(arcIdx))
	for i, ai := range arcIdx {
		nodes[i] = g.arcs[ai].From
	}
	return nodes
}

// infeasibleCycle reports whether a circuit with cost l and time h admits
// no positive finite period: Ω·h ≥ l has no solution Ω > 0.
func infeasibleCycle(l int64, h rat.Rat) bool {
	if h.Sign() < 0 {
		return true // Ω ≤ l/h < 0
	}
	if h.Sign() == 0 && l > 0 {
		return true // 0 ≥ l > 0
	}
	return false
}

// SCCs returns the strongly connected components of the graph (Tarjan,
// iterative). Components are returned in reverse topological order; each
// component lists its nodes.
func (g *Graph) SCCs() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		cnt    int
		frames []frame
	)
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ai == 0 {
				index[v] = cnt
				low[v] = cnt
				cnt++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			out := g.Out(v)
			for f.ai < len(out) {
				w := g.arcs[out[f.ai]].To
				f.ai++
				if index[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// post-visit
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comps
}

type frame struct {
	v  int
	ai int
}
