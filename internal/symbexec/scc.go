package symbexec

import (
	"context"
	"fmt"

	"kiter/internal/csdf"
	"kiter/internal/rat"
)

// taskSCCs returns the strongly connected components of the task digraph
// induced by the buffers (Tarjan, iterative), each as a list of TaskIDs.
func taskSCCs(g *csdf.Graph) [][]csdf.TaskID {
	n := g.NumTasks()
	adj := make([][]int, n)
	for _, b := range g.Buffers() {
		if b.Src != b.Dst {
			adj[b.Src] = append(adj[b.Src], int(b.Dst))
		}
	}
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack []int
		comps [][]csdf.TaskID
		cnt   int
	)
	type frame struct{ v, ai int }
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ai == 0 {
				index[v] = cnt
				low[v] = cnt
				cnt++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ai < len(adj[v]) {
				w := adj[v][f.ai]
				f.ai++
				if index[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []csdf.TaskID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, csdf.TaskID(w))
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comps
}

// subgraph extracts the induced subgraph on the given tasks (with all
// buffers whose both endpoints belong to the set), returning it together
// with the mapping from new to old task IDs.
func subgraph(g *csdf.Graph, tasks []csdf.TaskID) (*csdf.Graph, []csdf.TaskID) {
	sub := csdf.NewGraph(fmt.Sprintf("%s/scc", g.Name))
	oldToNew := make(map[csdf.TaskID]csdf.TaskID, len(tasks))
	newToOld := make([]csdf.TaskID, 0, len(tasks))
	for _, t := range tasks {
		task := g.Task(t)
		id := sub.AddTask(task.Name, task.Durations)
		oldToNew[t] = id
		newToOld = append(newToOld, t)
	}
	for _, b := range g.Buffers() {
		src, okS := oldToNew[b.Src]
		dst, okD := oldToNew[b.Dst]
		if okS && okD {
			sub.AddBuffer(b.Name, src, dst, b.In, b.Out, b.Initial)
		}
	}
	return sub, newToOld
}

// runDecomposed evaluates a graph with several SCCs: buffers between
// components never throttle self-timed execution in the long run
// (unbounded FIFOs only accumulate), so the graph's normalized period is
// the maximum over the components' isolated normalized periods. Each
// component period is rescaled from the component-local repetition vector
// to the global one.
func runDecomposed(ctx context.Context, g *csdf.Graph, q []int64, comps [][]csdf.TaskID, opt Options) (*Result, error) {
	best := &Result{}
	haveBest := false
	for _, comp := range comps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var compRes *Result
		sub, newToOld := subgraph(g, comp)
		if sub.NumBuffers() == 0 {
			// A lone task without self-buffers: it fires back-to-back, so
			// its normalized period is q_t · Σd(t).
			t := g.Task(newToOld[0])
			period := rat.FromInt(q[newToOld[0]] * t.TotalDuration())
			compRes = &Result{Period: period}
			if period.Sign() > 0 {
				compRes.Throughput = period.Inv()
			}
		} else {
			subOpt := opt
			subOpt.Reference = 0
			subOpt.TraceHorizon = 0
			r, err := runRecurrence(ctx, sub, subOpt)
			if err != nil {
				return nil, err
			}
			// Rescale: global q restricted to the component is an integer
			// multiple λ of the component's own minimal q′.
			qSub, err := sub.RepetitionVector()
			if err != nil {
				return nil, err
			}
			lambda := q[newToOld[0]] / qSub[0]
			r.Period = r.Period.Mul(rat.FromInt(lambda))
			if r.Period.Sign() > 0 {
				r.Throughput = r.Period.Inv()
			}
			compRes = r
		}
		if !haveBest || compRes.Period.Cmp(best.Period) > 0 {
			events, states := best.Events, best.StatesStored
			best = compRes
			best.Events += events
			best.StatesStored += states
			haveBest = true
		} else {
			best.Events += compRes.Events
			best.StatesStored += compRes.StatesStored
		}
	}
	if !haveBest {
		return nil, fmt.Errorf("symbexec: graph has no tasks")
	}
	return best, nil
}
