package symbexec_test

import (
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/symbexec"
)

func TestReferenceOutOfRange(t *testing.T) {
	g := gen.Figure2()
	if _, err := symbexec.Run(g, symbexec.Options{Reference: 99}); err == nil {
		t.Error("out-of-range reference accepted")
	}
	if _, err := symbexec.Run(g, symbexec.Options{Reference: -1}); err == nil {
		t.Error("negative reference accepted")
	}
}

func TestCSDFPhaseOrderRespected(t *testing.T) {
	// A two-phase consumer whose second phase does all the consuming: the
	// trace must show phases alternating 1,2,1,2,…
	g := csdf.NewGraph("phases")
	src := g.AddSDFTask("src", 1)
	snk := g.AddTask("snk", []int64{1, 1})
	g.AddBuffer("b", src, snk, []int64{1}, []int64{0, 2}, 0)
	_ = src
	trace, dead, err := symbexec.Simulate(g, 20)
	if err != nil || dead {
		t.Fatalf("simulate: %v dead=%v", err, dead)
	}
	wantPhase := 1
	for _, f := range trace {
		if f.Task != snk {
			continue
		}
		if f.Phase != wantPhase {
			t.Fatalf("phase %d fired, want %d", f.Phase, wantPhase)
		}
		wantPhase = wantPhase%2 + 1
	}
}

func TestSequentialNoOverlapInRun(t *testing.T) {
	// The engine must never have two firings of one task in flight: the
	// trace intervals per task are disjoint.
	g := gen.MultiRateCycle()
	trace, dead, err := symbexec.Simulate(g, 60)
	if err != nil || dead {
		t.Fatalf("simulate: %v dead=%v", err, dead)
	}
	lastEnd := map[csdf.TaskID]int64{}
	for _, f := range trace {
		if end, ok := lastEnd[f.Task]; ok && f.Start < end {
			t.Fatalf("task %d fires at %d before previous end %d", f.Task, f.Start, end)
		}
		lastEnd[f.Task] = f.Start + f.Duration
	}
}

func TestTransientReported(t *testing.T) {
	// A ring with skewed markings has a non-trivial transient before the
	// periodic regime.
	g := gen.HSDFRing(6, []int64{1, 5, 2}, 3)
	res, err := symbexec.Run(g, symbexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransientTime < 0 || res.CycleTime <= 0 {
		t.Errorf("transient %d, cycle %d", res.TransientTime, res.CycleTime)
	}
}

func TestMaxStatesBudget(t *testing.T) {
	g := gen.Figure2()
	if _, err := symbexec.Run(g, symbexec.Options{MaxStates: 1}); err == nil {
		// A single stored state can still suffice if the recurrence hits
		// immediately; only flag when no error AND the graph needed more.
		t.Log("recurrence found within one stored state (acceptable)")
	}
}

func TestMultiSCCWithCSDFPhases(t *testing.T) {
	// Decomposition path with cyclo-static rates in both components.
	g := csdf.NewGraph("two-scc-csdf")
	a := g.AddTask("a", []int64{1, 2})
	b := g.AddTask("b", []int64{1})
	c := g.AddTask("c", []int64{2, 1})
	g.AddBuffer("ab", a, b, []int64{1, 1}, []int64{1}, 0) // a → b
	g.AddBuffer("bc", b, c, []int64{3}, []int64{1, 2}, 0) // b → c
	g.AddBuffer("cc", c, c, []int64{1, 0}, []int64{0, 1}, 1)
	res, err := symbexec.Run(g, symbexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ki, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Period.Cmp(ki.Period) != 0 {
		t.Errorf("symbolic Ω = %s ≠ K-Iter Ω = %s", res.Period, ki.Period)
	}
}
