package symbexec_test

import (
	"context"
	"errors"
	"testing"

	"kiter/internal/gen"
	"kiter/internal/symbexec"
)

func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := symbexec.RunCtx(ctx, gen.Figure2(), symbexec.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCtxCancelledDecomposed(t *testing.T) {
	// A multi-SCC graph exercises the decomposed path's propagation.
	g := gen.SampleRateConverter()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := symbexec.RunCtx(ctx, g, symbexec.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCtxMatchesRun(t *testing.T) {
	want, err := symbexec.Run(gen.Figure2(), symbexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := symbexec.RunCtx(context.Background(), gen.Figure2(), symbexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Period.Cmp(got.Period) != 0 {
		t.Fatalf("RunCtx period %s, want %s", got.Period, want.Period)
	}
}
