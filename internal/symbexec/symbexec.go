// Package symbexec implements throughput evaluation by symbolic execution
// — the exact state-space baseline of Ghamarian et al. [8] for SDFG,
// extended to CSDFG by Stuijk et al. [16] — that the paper compares K-Iter
// against in Tables 1 and 2.
//
// The graph is executed self-timed (as soon as possible, Figure 3): every
// task starts its next phase the moment its input tokens are available,
// consuming tokens at the start of a phase and producing at its end, with
// the phases of a task executing in order without overlap. Because a
// consistent CSDFG has a finite state space, the execution eventually
// revisits a state; the tokens-per-time of the detected cycle is the exact
// maximum throughput. The state space is exponential in the repetition
// vector, which is precisely the scalability weakness K-Iter removes —
// budget options make the blow-up observable instead of fatal.
package symbexec

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"kiter/internal/csdf"
	"kiter/internal/rat"
)

// Options tunes the execution.
type Options struct {
	// MaxEvents bounds completed firings (0 = 50 000 000).
	MaxEvents int64
	// MaxStates bounds stored recurrence-detection states (0 = 2 000 000).
	MaxStates int
	// TraceHorizon, when positive, records every firing starting before
	// this time into Result.Trace (for Gantt rendering, Figure 3).
	TraceHorizon int64
	// Reference selects the task whose iterations are counted (default:
	// task 0). Any task gives the same throughput by Theorem 1.
	Reference csdf.TaskID
}

// Firing is one recorded execution ⟨t_phase, n⟩ of the ASAP schedule.
type Firing struct {
	Task     csdf.TaskID
	Phase    int // 1-based
	Start    int64
	Duration int64
}

// Result reports the detected periodic regime.
type Result struct {
	// Period is the exact graph-iteration period Ω (time per execution of
	// every task t exactly qt times).
	Period rat.Rat
	// Throughput is 1/Period.
	Throughput rat.Rat
	// TransientTime is the time at which the recurrent window begins.
	TransientTime int64
	// CycleTime is the length of the recurrent window.
	CycleTime int64
	// Events counts completed firings; StatesStored counts snapshots.
	Events       int64
	StatesStored int
	// Trace holds the firings recorded below TraceHorizon.
	Trace []Firing
}

// ErrDeadlock reports that the self-timed execution reached a state where
// no task can ever fire again.
var ErrDeadlock = errors.New("symbexec: execution deadlocks")

// ErrBudget reports that the state space exceeded the exploration budget
// before a recurrence was found (the "> 1 day" rows of Table 2).
var ErrBudget = errors.New("symbexec: exploration budget exhausted")

const (
	defaultMaxEvents = 50_000_000
	defaultMaxStates = 2_000_000
)

type taskState struct {
	phase     int   // next phase to fire, 0-based
	busy      bool  // a firing is in flight
	remaining int64 // completion time − now, valid when busy
	iters     int64 // completed iterations
}

type engine struct {
	g        *csdf.Graph
	opt      Options
	ctx      context.Context // polled in the event loop; nil = never cancelled
	tokens   []int64         // per buffer
	tasks    []taskState
	inBufs   [][]csdf.BufferID // buffers consumed by task
	outBufs  [][]csdf.BufferID // buffers produced by task
	now      int64
	events   int64
	refDone  bool // reference task completed an iteration since last snapshot
	seen     map[string]seenInfo
	trace    []Firing
	q        []int64
	maxEv    int64
	maxState int
	steps    int // event-loop rounds, for amortized cancellation polls
}

type seenInfo struct {
	time  int64
	iters int64
}

// Run computes the exact maximum throughput of g by symbolic execution.
//
// Strongly connected graphs are executed directly until a state recurrence
// is found. Otherwise the graph is decomposed into its strongly connected
// components: inter-component buffers are unbounded and therefore never
// throttle self-timed execution in the long run, so the graph period is
// the maximum of the components' isolated periods after normalization to
// the global repetition vector (each component is exponentially cheaper to
// execute than the whole, and components with unbounded mutual drift would
// otherwise never revisit a state).
func Run(g *csdf.Graph, opt Options) (*Result, error) {
	return RunCtx(context.Background(), g, opt)
}

// RunCtx is Run with cancellation: the context is polled inside the
// self-timed event loop (every few hundred rounds), so a state-space
// explosion stops promptly once the caller gives up instead of running to
// its event budget.
func RunCtx(ctx context.Context, g *csdf.Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	if int(opt.Reference) < 0 || int(opt.Reference) >= g.NumTasks() {
		return nil, fmt.Errorf("symbexec: reference task %d out of range", opt.Reference)
	}
	comps := taskSCCs(g)
	if len(comps) > 1 {
		return runDecomposed(ctx, g, q, comps, opt)
	}
	return runRecurrence(ctx, g, opt)
}

// runRecurrence executes g self-timed until a state recurrence reveals the
// periodic regime. The self-timed state space must be bounded (guaranteed
// for strongly connected consistent graphs); otherwise the exploration
// budget trips.
func runRecurrence(ctx context.Context, g *csdf.Graph, opt Options) (*Result, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	e := &engine{
		g:        g,
		opt:      opt,
		ctx:      ctx,
		tokens:   make([]int64, g.NumBuffers()),
		tasks:    make([]taskState, g.NumTasks()),
		inBufs:   make([][]csdf.BufferID, g.NumTasks()),
		outBufs:  make([][]csdf.BufferID, g.NumTasks()),
		seen:     make(map[string]seenInfo),
		q:        q,
		maxEv:    opt.MaxEvents,
		maxState: opt.MaxStates,
	}
	if e.maxEv <= 0 {
		e.maxEv = defaultMaxEvents
	}
	if e.maxState <= 0 {
		e.maxState = defaultMaxStates
	}
	for i := 0; i < g.NumBuffers(); i++ {
		b := g.Buffer(csdf.BufferID(i))
		e.tokens[i] = b.Initial
		e.outBufs[b.Src] = append(e.outBufs[b.Src], csdf.BufferID(i))
		e.inBufs[b.Dst] = append(e.inBufs[b.Dst], csdf.BufferID(i))
	}
	return e.run()
}

func (e *engine) run() (*Result, error) {
	ref := csdf.TaskID(e.opt.Reference)
	for {
		// Amortized cancellation poll: one ctx.Err() per 256 event-loop
		// rounds (starting with the first, so a dead context is caught
		// before any work) keeps the overhead invisible next to the
		// O(tasks) scan each round already performs.
		if e.steps++; e.ctx != nil && e.steps&0xff == 1 {
			if err := e.ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Snapshot at reference-iteration boundaries, before re-arming:
		// the sampling instant is deterministic, so in the periodic
		// regime the sampled state recurs.
		if e.refDone {
			e.refDone = false
			key := e.encode()
			if prev, ok := e.seen[key]; ok {
				return e.finish(prev)
			}
			if len(e.seen) >= e.maxState {
				return nil, ErrBudget
			}
			e.seen[key] = seenInfo{time: e.now, iters: e.tasks[ref].iters}
		}
		// Start every firing that can start; zero-duration firings
		// complete inline, so loop to a fixpoint.
		for e.startAll() {
		}
		if e.events > e.maxEv {
			return nil, ErrBudget
		}
		// Advance to the next completion.
		dt := int64(-1)
		for i := range e.tasks {
			if e.tasks[i].busy && (dt < 0 || e.tasks[i].remaining < dt) {
				dt = e.tasks[i].remaining
			}
		}
		if dt < 0 {
			return nil, ErrDeadlock
		}
		e.now += dt
		for i := range e.tasks {
			t := &e.tasks[i]
			if !t.busy {
				continue
			}
			t.remaining -= dt
			if t.remaining == 0 {
				e.complete(csdf.TaskID(i))
			}
		}
		if e.events > e.maxEv {
			return nil, ErrBudget
		}
	}
}

// canStart reports whether task t's next phase has all input tokens.
func (e *engine) canStart(t csdf.TaskID) bool {
	ts := &e.tasks[t]
	if ts.busy {
		return false
	}
	for _, bid := range e.inBufs[t] {
		b := e.g.Buffer(bid)
		if e.tokens[bid] < b.Out[ts.phase] {
			return false
		}
	}
	return true
}

// start consumes input tokens and either arms the firing (d > 0) or
// completes it inline (d = 0).
func (e *engine) start(t csdf.TaskID) {
	ts := &e.tasks[t]
	for _, bid := range e.inBufs[t] {
		b := e.g.Buffer(bid)
		e.tokens[bid] -= b.Out[ts.phase]
	}
	d := e.g.Task(t).Durations[ts.phase]
	if e.opt.TraceHorizon > 0 && e.now < e.opt.TraceHorizon {
		e.trace = append(e.trace, Firing{Task: t, Phase: ts.phase + 1, Start: e.now, Duration: d})
	}
	if d == 0 {
		e.produce(t)
		e.advancePhase(t)
		e.events++
		return
	}
	ts.busy = true
	ts.remaining = d
}

// startAll fires everything currently enabled; returns whether anything
// started (zero-duration completions may enable more).
func (e *engine) startAll() bool {
	any := false
	for i := range e.tasks {
		for e.canStart(csdf.TaskID(i)) {
			e.start(csdf.TaskID(i))
			any = true
			if e.tasks[i].busy {
				break // d > 0: task occupied until completion
			}
			if e.events > e.maxEv {
				return false
			}
		}
	}
	return any
}

func (e *engine) produce(t csdf.TaskID) {
	phase := e.tasks[t].phase
	for _, bid := range e.outBufs[t] {
		b := e.g.Buffer(bid)
		e.tokens[bid] += b.In[phase]
	}
}

func (e *engine) advancePhase(t csdf.TaskID) {
	ts := &e.tasks[t]
	ts.phase++
	if ts.phase == e.g.Task(t).Phases() {
		ts.phase = 0
		ts.iters++
		if t == e.opt.Reference {
			e.refDone = true
		}
	}
}

func (e *engine) complete(t csdf.TaskID) {
	ts := &e.tasks[t]
	ts.busy = false
	e.produce(t)
	e.advancePhase(t)
	e.events++
}

// encode serializes the time-invariant state: buffer tokens, per-task
// phase and remaining times.
func (e *engine) encode() string {
	buf := make([]byte, 0, 8*(len(e.tokens)+2*len(e.tasks)))
	var tmp [8]byte
	for _, v := range e.tokens {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	for i := range e.tasks {
		t := &e.tasks[i]
		rem := int64(-1)
		if t.busy {
			rem = t.remaining
		}
		binary.LittleEndian.PutUint64(tmp[:], uint64(t.phase))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(rem))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

func (e *engine) finish(prev seenInfo) (*Result, error) {
	ref := int(e.opt.Reference)
	dt := e.now - prev.time
	dc := e.tasks[ref].iters - prev.iters
	if dc <= 0 || dt <= 0 {
		// The state repeated without the reference progressing in time:
		// only possible when nothing useful happens — a deadlock in
		// disguise (dt=0 cannot occur: snapshots are taken at most once
		// per time instant between completions).
		return nil, ErrDeadlock
	}
	// Ω = Δt·q_ref / Δc graph-iteration time.
	var period rat.Rat
	if num, ok := rat.MulCheck(dt, e.q[ref]); ok {
		period = rat.NewRat(num, dc)
	} else {
		period = rat.FromInt(dt).Mul(rat.FromInt(e.q[ref])).Div(rat.FromInt(dc))
	}
	return &Result{
		Period:        period,
		Throughput:    period.Inv(),
		TransientTime: prev.time,
		CycleTime:     dt,
		Events:        e.events,
		StatesStored:  len(e.seen),
		Trace:         e.trace,
	}, nil
}
