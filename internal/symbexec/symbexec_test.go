package symbexec_test

import (
	"errors"
	"sort"
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/symbexec"
)

func mustRun(t *testing.T, g *csdf.Graph) *symbexec.Result {
	t.Helper()
	res, err := symbexec.Run(g, symbexec.Options{})
	if err != nil {
		t.Fatalf("Run(%s): %v", g.Name, err)
	}
	return res
}

func TestHSDFRingOracle(t *testing.T) {
	cases := []struct {
		n      int
		durs   []int64
		tokens int64
		want   string
	}{
		{4, []int64{1}, 2, "2"},
		{4, []int64{1}, 1, "4"},
		{3, []int64{2, 3, 1}, 1, "6"},
		{3, []int64{2, 3, 1}, 2, "3"},
		{5, []int64{1, 1}, 3, "5/3"},
		{2, []int64{10, 1}, 4, "10"},
	}
	for _, c := range cases {
		g := gen.HSDFRing(c.n, c.durs, c.tokens)
		res := mustRun(t, g)
		if res.Period.String() != c.want {
			t.Errorf("ring(n=%d,d=%v,m=%d): Ω = %s, want %s",
				c.n, c.durs, c.tokens, res.Period, c.want)
		}
	}
}

func TestFigure2MatchesKIter(t *testing.T) {
	g := gen.Figure2()
	sym := mustRun(t, g)
	if sym.Period.String() != "13" {
		t.Errorf("symbolic Ω = %s, want 13", sym.Period)
	}
	ki, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Period.Cmp(ki.Period) != 0 {
		t.Errorf("symbolic Ω = %s ≠ K-Iter Ω = %s", sym.Period, ki.Period)
	}
}

func TestChainDecomposition(t *testing.T) {
	// Acyclic graph: self-timed tokens accumulate without bound, so the
	// SCC decomposition must kick in. Slowest task dominates.
	g := gen.TwoTaskChain(2, 3)
	res := mustRun(t, g)
	if res.Period.String() != "3" {
		t.Errorf("Ω = %s, want 3", res.Period)
	}
}

func TestMultiRateChainDecomposition(t *testing.T) {
	// src →(2/3) dst: q = [3,2]; normalized periods 3·1 and 2·5 = 10.
	g := csdf.NewGraph("mrchain")
	a := g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 5)
	g.AddSDFBuffer("ab", a, b, 2, 3, 0)
	res := mustRun(t, g)
	if res.Period.String() != "10" {
		t.Errorf("Ω = %s, want 10", res.Period)
	}
}

func TestSCCPlusTailDecomposition(t *testing.T) {
	// A 2-ring bottleneck feeding a fast sink.
	g := csdf.NewGraph("ring+tail")
	a := g.AddSDFTask("a", 3)
	b := g.AddSDFTask("b", 2)
	c := g.AddSDFTask("c", 1)
	g.AddSDFBuffer("ab", a, b, 1, 1, 0)
	g.AddSDFBuffer("ba", b, a, 1, 1, 1)
	g.AddSDFBuffer("bc", b, c, 1, 1, 0)
	res := mustRun(t, g)
	// Ring period = 5 (one token), tail c period = 1.
	if res.Period.String() != "5" {
		t.Errorf("Ω = %s, want 5", res.Period)
	}
}

func TestAgreesWithKIterOnFixtures(t *testing.T) {
	graphs := []*csdf.Graph{
		gen.Figure2(),
		gen.MultiRateCycle(),
		gen.CyclicCSDF(),
		gen.UpDownSampler(3, 2),
		gen.SampleRateConverter(),
		gen.HSDFRing(5, []int64{1, 3}, 2),
	}
	for _, g := range graphs {
		sym := mustRun(t, g)
		ki, err := kperiodic.KIter(g, kperiodic.Options{})
		if err != nil {
			t.Fatalf("%s: KIter: %v", g.Name, err)
		}
		if sym.Period.Cmp(ki.Period) != 0 {
			t.Errorf("%s: symbolic Ω = %s ≠ K-Iter Ω = %s",
				g.Name, sym.Period, ki.Period)
		}
	}
}

func TestCapacityConstrainedAgreement(t *testing.T) {
	for _, capacity := range []int64{1, 2, 5} {
		g := gen.TwoTaskChain(2, 3)
		g.SetCapacity(0, capacity)
		bounded, err := g.WithCapacities()
		if err != nil {
			t.Fatal(err)
		}
		sym := mustRun(t, bounded)
		ki, err := kperiodic.KIter(bounded, kperiodic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sym.Period.Cmp(ki.Period) != 0 {
			t.Errorf("capacity %d: symbolic Ω = %s ≠ K-Iter Ω = %s",
				capacity, sym.Period, ki.Period)
		}
	}
}

func TestDeadlock(t *testing.T) {
	g := gen.DeadlockedRing()
	_, err := symbexec.Run(g, symbexec.Options{})
	if !errors.Is(err, symbexec.ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

func TestPartialDeadlockDetected(t *testing.T) {
	// A healthy source feeding a dead ring: the graph never completes an
	// iteration.
	g := csdf.NewGraph("half-dead")
	s := g.AddSDFTask("src", 1)
	a := g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 1)
	g.AddSDFBuffer("sa", s, a, 1, 1, 0)
	g.AddSDFBuffer("ab", a, b, 1, 1, 0)
	g.AddSDFBuffer("ba", b, a, 1, 1, 0) // dead ring: no tokens
	_, err := symbexec.Run(g, symbexec.Options{})
	if !errors.Is(err, symbexec.ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	g := gen.Figure2()
	_, err := symbexec.Run(g, symbexec.Options{MaxEvents: 3})
	if !errors.Is(err, symbexec.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestInconsistentRejected(t *testing.T) {
	g := csdf.NewGraph("bad")
	a := g.AddSDFTask("a", 1)
	b := g.AddSDFTask("b", 1)
	g.AddSDFBuffer("x", a, b, 1, 1, 0)
	g.AddSDFBuffer("y", a, b, 2, 1, 0)
	if _, err := symbexec.Run(g, symbexec.Options{}); err == nil {
		t.Error("inconsistent graph accepted")
	}
}

func TestReferenceTaskInvariance(t *testing.T) {
	// Theorem 1: every reference task yields the same normalized period.
	g := gen.Figure2()
	base := mustRun(t, g)
	for ref := 1; ref < g.NumTasks(); ref++ {
		res, err := symbexec.Run(g, symbexec.Options{Reference: csdf.TaskID(ref)})
		if err != nil {
			t.Fatalf("ref %d: %v", ref, err)
		}
		if res.Period.Cmp(base.Period) != 0 {
			t.Errorf("ref %d: Ω = %s, want %s", ref, res.Period, base.Period)
		}
	}
}

func TestSimulateASAPTrace(t *testing.T) {
	g := gen.TwoTaskChain(2, 3)
	trace, dead, err := symbexec.Simulate(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dead {
		t.Fatal("chain reported dead")
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// A fires at 0; B's first firing starts exactly when A completes.
	var aStarts, bStarts []int64
	for _, f := range trace {
		switch f.Task {
		case 0:
			aStarts = append(aStarts, f.Start)
		case 1:
			bStarts = append(bStarts, f.Start)
		}
	}
	if aStarts[0] != 0 {
		t.Errorf("A first start = %d, want 0", aStarts[0])
	}
	if len(bStarts) == 0 || bStarts[0] != 2 {
		t.Errorf("B first start = %v, want 2", bStarts)
	}
	// ASAP: A fires back-to-back every 2 time units.
	for i := 1; i < len(aStarts); i++ {
		if aStarts[i]-aStarts[i-1] != 2 {
			t.Errorf("A starts not back-to-back: %v", aStarts)
			break
		}
	}
}

func TestSimulateTraceIsFeasible(t *testing.T) {
	// Replay the trace and check no buffer ever goes negative and no two
	// firings of a task overlap.
	graphs := []*csdf.Graph{gen.Figure2(), gen.MultiRateCycle(), gen.CyclicCSDF()}
	for _, g := range graphs {
		trace, dead, err := symbexec.Simulate(g, 40)
		if err != nil || dead {
			t.Fatalf("%s: err=%v dead=%v", g.Name, err, dead)
		}
		checkTraceFeasible(t, g, trace)
	}
}

// checkTraceFeasible replays firings event by event: consumption at start,
// production at end, sequential tasks.
func checkTraceFeasible(t *testing.T, g *csdf.Graph, trace []symbexec.Firing) {
	t.Helper()
	type event struct {
		time    int64
		isStart bool
		f       symbexec.Firing
	}
	var events []event
	for _, f := range trace {
		events = append(events, event{f.Start, true, f})
		events = append(events, event{f.Start + f.Duration, false, f})
	}
	// Ends before starts at equal times (production available to same-time
	// consumers).
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return !events[i].isStart && events[j].isStart
	})
	tokens := make([]int64, g.NumBuffers())
	for i, b := range g.Buffers() {
		tokens[i] = b.Initial
	}
	busyUntil := make([]int64, g.NumTasks())
	for i := range busyUntil {
		busyUntil[i] = -1
	}
	horizon := int64(0)
	for _, f := range trace {
		if f.Start > horizon {
			horizon = f.Start
		}
	}
	for _, ev := range events {
		if ev.isStart {
			if ev.f.Start < busyUntil[ev.f.Task] {
				t.Errorf("%s: task %d starts at %d before previous firing ends at %d",
					g.Name, ev.f.Task, ev.f.Start, busyUntil[ev.f.Task])
			}
			busyUntil[ev.f.Task] = ev.f.Start + ev.f.Duration
			for _, b := range g.Buffers() {
				if b.Dst == ev.f.Task {
					tokens[b.ID] -= b.Out[ev.f.Phase-1]
					if tokens[b.ID] < 0 {
						t.Fatalf("%s: buffer %s negative (%d) at t=%d",
							g.Name, b.Name, tokens[b.ID], ev.time)
					}
				}
			}
		} else {
			if ev.time > horizon {
				continue // productions past the recorded horizon
			}
			for _, b := range g.Buffers() {
				if b.Src == ev.f.Task {
					tokens[b.ID] += b.In[ev.f.Phase-1]
				}
			}
		}
	}
}

func TestSimulateDeadlockFlag(t *testing.T) {
	g := gen.DeadlockedRing()
	trace, dead, err := symbexec.Simulate(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !dead {
		t.Error("deadlocked ring not flagged")
	}
	if len(trace) != 0 {
		t.Errorf("dead graph produced %d firings", len(trace))
	}
}

func TestZeroDurationTasks(t *testing.T) {
	// A zero-duration middle task: throughput bounded by neighbours.
	g := csdf.NewGraph("zero")
	a := g.AddSDFTask("a", 2)
	z := g.AddSDFTask("z", 0)
	b := g.AddSDFTask("b", 1)
	g.AddSDFBuffer("az", a, z, 1, 1, 0)
	g.AddSDFBuffer("zb", z, b, 1, 1, 0)
	g.AddSDFBuffer("ba", b, a, 1, 1, 1)
	res := mustRun(t, g)
	ki, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Period.Cmp(ki.Period) != 0 {
		t.Errorf("symbolic Ω = %s ≠ K-Iter Ω = %s", res.Period, ki.Period)
	}
}

func TestResultMetadata(t *testing.T) {
	g := gen.Figure2()
	res := mustRun(t, g)
	if res.Events <= 0 {
		t.Error("no events counted")
	}
	if res.CycleTime <= 0 {
		t.Error("no cycle time")
	}
	if res.Throughput.Mul(res.Period).String() != "1" {
		t.Error("throughput ≠ 1/period")
	}
}
