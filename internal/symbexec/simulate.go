package symbexec

import (
	"kiter/internal/csdf"
)

// Simulate runs the self-timed (as soon as possible) execution of the
// whole graph for a finite time horizon and returns the firings that
// started before it, in start-time order. This is the schedule prefix
// drawn in Figure 3 of the paper. The second return value reports whether
// the execution deadlocked before the horizon.
func Simulate(g *csdf.Graph, horizon int64) ([]Firing, bool, error) {
	if err := g.Validate(); err != nil {
		return nil, false, err
	}
	e := &engine{
		g:        g,
		opt:      Options{TraceHorizon: horizon},
		tokens:   make([]int64, g.NumBuffers()),
		tasks:    make([]taskState, g.NumTasks()),
		inBufs:   make([][]csdf.BufferID, g.NumTasks()),
		outBufs:  make([][]csdf.BufferID, g.NumTasks()),
		maxEv:    defaultMaxEvents,
		maxState: defaultMaxStates,
	}
	for i := 0; i < g.NumBuffers(); i++ {
		b := g.Buffer(csdf.BufferID(i))
		e.tokens[i] = b.Initial
		e.outBufs[b.Src] = append(e.outBufs[b.Src], csdf.BufferID(i))
		e.inBufs[b.Dst] = append(e.inBufs[b.Dst], csdf.BufferID(i))
	}
	for e.now < horizon {
		for e.startAll() {
		}
		if e.events > e.maxEv {
			return e.trace, false, ErrBudget
		}
		dt := int64(-1)
		for i := range e.tasks {
			if e.tasks[i].busy && (dt < 0 || e.tasks[i].remaining < dt) {
				dt = e.tasks[i].remaining
			}
		}
		if dt < 0 {
			return e.trace, true, nil
		}
		e.now += dt
		for i := range e.tasks {
			t := &e.tasks[i]
			if !t.busy {
				continue
			}
			t.remaining -= dt
			if t.remaining == 0 {
				e.complete(csdf.TaskID(i))
			}
		}
	}
	return e.trace, false, nil
}
