// Package sdf3x reads and writes CSDF graphs in two interchange formats: a
// compact JSON format native to this repository, and an SDF3-flavoured XML
// dialect compatible in shape with the benchmark format of Stuijk et al.'s
// SDF3 tool [15], which the paper's experiments are distributed in.
package sdf3x

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"kiter/internal/csdf"
)

// jsonGraph is the on-disk JSON shape.
type jsonGraph struct {
	Name    string       `json:"name"`
	Tasks   []jsonTask   `json:"tasks"`
	Buffers []jsonBuffer `json:"buffers"`
}

type jsonTask struct {
	Name      string  `json:"name"`
	Durations []int64 `json:"durations"`
}

type jsonBuffer struct {
	Name     string  `json:"name,omitempty"`
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	In       []int64 `json:"in"`
	Out      []int64 `json:"out"`
	Initial  int64   `json:"initial"`
	Capacity int64   `json:"capacity,omitempty"`
}

// WriteJSON marshals g. Task references use names, so every task must have
// a unique non-empty name; unnamed tasks are emitted as "tN".
func WriteJSON(w io.Writer, g *csdf.Graph) error {
	names := taskNames(g)
	jg := jsonGraph{Name: g.Name}
	for _, t := range g.Tasks() {
		jg.Tasks = append(jg.Tasks, jsonTask{Name: names[t.ID], Durations: t.Durations})
	}
	for _, b := range g.Buffers() {
		jg.Buffers = append(jg.Buffers, jsonBuffer{
			Name: b.Name, Src: names[b.Src], Dst: names[b.Dst],
			In: b.In, Out: b.Out, Initial: b.Initial, Capacity: b.Capacity,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadJSON unmarshals a graph and validates it.
func ReadJSON(r io.Reader) (*csdf.Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("sdf3x: decoding JSON: %w", err)
	}
	g := csdf.NewGraph(jg.Name)
	ids := map[string]csdf.TaskID{}
	for _, t := range jg.Tasks {
		if _, dup := ids[t.Name]; dup {
			return nil, fmt.Errorf("sdf3x: duplicate task name %q", t.Name)
		}
		ids[t.Name] = g.AddTask(t.Name, t.Durations)
	}
	for _, b := range jg.Buffers {
		src, ok := ids[b.Src]
		if !ok {
			return nil, fmt.Errorf("sdf3x: buffer %q: unknown source %q", b.Name, b.Src)
		}
		dst, ok := ids[b.Dst]
		if !ok {
			return nil, fmt.Errorf("sdf3x: buffer %q: unknown destination %q", b.Name, b.Dst)
		}
		id := g.AddBuffer(b.Name, src, dst, b.In, b.Out, b.Initial)
		if b.Capacity > 0 {
			g.SetCapacity(id, b.Capacity)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func taskNames(g *csdf.Graph) []string {
	names := make([]string, g.NumTasks())
	used := map[string]bool{}
	for _, t := range g.Tasks() {
		n := t.Name
		if n == "" || used[n] {
			n = fmt.Sprintf("t%d", t.ID)
		}
		used[n] = true
		names[t.ID] = n
	}
	return names
}

// ReadFile loads a graph, dispatching on the file extension (.json, .xml).
func ReadFile(path string) (*csdf.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return ReadJSON(f)
	case ".xml":
		return ReadXML(f)
	default:
		return nil, fmt.Errorf("sdf3x: unsupported extension %q (want .json or .xml)", filepath.Ext(path))
	}
}

// WriteFile saves a graph, dispatching on the file extension.
func WriteFile(path string, g *csdf.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return WriteJSON(f, g)
	case ".xml":
		return WriteXML(f, g)
	default:
		return fmt.Errorf("sdf3x: unsupported extension %q (want .json or .xml)", filepath.Ext(path))
	}
}
