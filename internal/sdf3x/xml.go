package sdf3x

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kiter/internal/csdf"
)

// The XML dialect follows the SDF3 application-graph shape: actors own
// typed ports with (cyclo-static) rates, channels connect ports, and
// execution times live in a properties section.
//
//	<sdf3 type="csdf">
//	  <applicationGraph name="g">
//	    <csdf name="g">
//	      <actor name="A"><port type="out" name="p0" rate="3,5"/></actor>
//	      <channel name="b" srcActor="A" srcPort="p0"
//	               dstActor="B" dstPort="p1" initialTokens="0" size="8"/>
//	    </csdf>
//	    <csdfProperties>
//	      <actorProperties actor="A">
//	        <processor type="p0" default="true">
//	          <executionTime time="1,1"/>
//	        </processor>
//	      </actorProperties>
//	    </csdfProperties>
//	  </applicationGraph>
//	</sdf3>

type xmlSDF3 struct {
	XMLName xml.Name    `xml:"sdf3"`
	Type    string      `xml:"type,attr"`
	App     xmlAppGraph `xml:"applicationGraph"`
}

type xmlAppGraph struct {
	Name  string        `xml:"name,attr"`
	CSDF  xmlCSDF       `xml:"csdf"`
	Props xmlProperties `xml:"csdfProperties"`
}

type xmlCSDF struct {
	Name     string       `xml:"name,attr"`
	Actors   []xmlActor   `xml:"actor"`
	Channels []xmlChannel `xml:"channel"`
}

type xmlActor struct {
	Name  string    `xml:"name,attr"`
	Ports []xmlPort `xml:"port"`
}

type xmlPort struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"` // "in" | "out"
	Rate string `xml:"rate,attr"` // comma-separated per phase
}

type xmlChannel struct {
	Name          string `xml:"name,attr"`
	SrcActor      string `xml:"srcActor,attr"`
	SrcPort       string `xml:"srcPort,attr"`
	DstActor      string `xml:"dstActor,attr"`
	DstPort       string `xml:"dstPort,attr"`
	InitialTokens int64  `xml:"initialTokens,attr"`
	Size          int64  `xml:"size,attr,omitempty"`
}

type xmlProperties struct {
	Actors []xmlActorProps `xml:"actorProperties"`
}

type xmlActorProps struct {
	Actor     string       `xml:"actor,attr"`
	Processor xmlProcessor `xml:"processor"`
}

type xmlProcessor struct {
	Type    string  `xml:"type,attr"`
	Default bool    `xml:"default,attr"`
	Exec    xmlExec `xml:"executionTime"`
}

type xmlExec struct {
	Time string `xml:"time,attr"`
}

// WriteXML marshals g in the SDF3-flavoured dialect.
func WriteXML(w io.Writer, g *csdf.Graph) error {
	names := taskNames(g)
	doc := xmlSDF3{Type: "csdf"}
	doc.App.Name = g.Name
	doc.App.CSDF.Name = g.Name
	actors := make([]xmlActor, g.NumTasks())
	for _, t := range g.Tasks() {
		actors[t.ID] = xmlActor{Name: names[t.ID]}
		doc.App.Props.Actors = append(doc.App.Props.Actors, xmlActorProps{
			Actor: names[t.ID],
			Processor: xmlProcessor{
				Type: "proc_0", Default: true,
				Exec: xmlExec{Time: rateString(t.Durations)},
			},
		})
	}
	for i, b := range g.Buffers() {
		srcPort := fmt.Sprintf("out%d", i)
		dstPort := fmt.Sprintf("in%d", i)
		actors[b.Src].Ports = append(actors[b.Src].Ports, xmlPort{
			Name: srcPort, Type: "out", Rate: rateString(b.In),
		})
		actors[b.Dst].Ports = append(actors[b.Dst].Ports, xmlPort{
			Name: dstPort, Type: "in", Rate: rateString(b.Out),
		})
		name := b.Name
		if name == "" {
			name = fmt.Sprintf("ch%d", i)
		}
		doc.App.CSDF.Channels = append(doc.App.CSDF.Channels, xmlChannel{
			Name: name, SrcActor: names[b.Src], SrcPort: srcPort,
			DstActor: names[b.Dst], DstPort: dstPort,
			InitialTokens: b.Initial, Size: b.Capacity,
		})
	}
	doc.App.CSDF.Actors = actors
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML unmarshals the SDF3-flavoured dialect and validates the graph.
func ReadXML(r io.Reader) (*csdf.Graph, error) {
	var doc xmlSDF3
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("sdf3x: decoding XML: %w", err)
	}
	name := doc.App.CSDF.Name
	if name == "" {
		name = doc.App.Name
	}
	g := csdf.NewGraph(name)
	// Execution times per actor name.
	durs := map[string][]int64{}
	for _, ap := range doc.App.Props.Actors {
		d, err := parseRates(ap.Processor.Exec.Time)
		if err != nil {
			return nil, fmt.Errorf("sdf3x: actor %q execution time: %w", ap.Actor, err)
		}
		durs[ap.Actor] = d
	}
	ids := map[string]csdf.TaskID{}
	ports := map[string][]int64{} // "actor/port" → rates
	for _, a := range doc.App.CSDF.Actors {
		d, ok := durs[a.Name]
		if !ok {
			// Default: as many unit phases as the longest port rate.
			n := 1
			for _, p := range a.Ports {
				if c := strings.Count(p.Rate, ",") + 1; c > n {
					n = c
				}
			}
			d = make([]int64, n)
			for i := range d {
				d[i] = 1
			}
		}
		if _, dup := ids[a.Name]; dup {
			return nil, fmt.Errorf("sdf3x: duplicate actor %q", a.Name)
		}
		ids[a.Name] = g.AddTask(a.Name, d)
		for _, p := range a.Ports {
			rates, err := parseRates(p.Rate)
			if err != nil {
				return nil, fmt.Errorf("sdf3x: port %s/%s: %w", a.Name, p.Name, err)
			}
			ports[a.Name+"/"+p.Name] = rates
		}
	}
	for _, ch := range doc.App.CSDF.Channels {
		src, ok := ids[ch.SrcActor]
		if !ok {
			return nil, fmt.Errorf("sdf3x: channel %q: unknown actor %q", ch.Name, ch.SrcActor)
		}
		dst, ok := ids[ch.DstActor]
		if !ok {
			return nil, fmt.Errorf("sdf3x: channel %q: unknown actor %q", ch.Name, ch.DstActor)
		}
		in, ok := ports[ch.SrcActor+"/"+ch.SrcPort]
		if !ok {
			return nil, fmt.Errorf("sdf3x: channel %q: unknown port %q", ch.Name, ch.SrcPort)
		}
		out, ok := ports[ch.DstActor+"/"+ch.DstPort]
		if !ok {
			return nil, fmt.Errorf("sdf3x: channel %q: unknown port %q", ch.Name, ch.DstPort)
		}
		in = expandRates(in, g.Task(src).Phases())
		out = expandRates(out, g.Task(dst).Phases())
		id := g.AddBuffer(ch.Name, src, dst, in, out, ch.InitialTokens)
		if ch.Size > 0 {
			g.SetCapacity(id, ch.Size)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func rateString(v []int64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatInt(x, 10)
	}
	return strings.Join(parts, ",")
}

func parseRates(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty rate")
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// expandRates repeats a scalar rate across phases (SDF ports on CSDF
// actors, an SDF3 convention); any other length mismatch is left for
// Validate to report.
func expandRates(r []int64, phases int) []int64 {
	if len(r) == 1 && phases > 1 {
		out := make([]int64, phases)
		for i := range out {
			out[i] = r[0]
		}
		return out
	}
	return r
}
