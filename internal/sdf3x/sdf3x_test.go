package sdf3x_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/sdf3x"
)

func graphsEqual(t *testing.T, a, b *csdf.Graph) {
	t.Helper()
	if a.NumTasks() != b.NumTasks() || a.NumBuffers() != b.NumBuffers() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			a.NumTasks(), a.NumBuffers(), b.NumTasks(), b.NumBuffers())
	}
	for i := 0; i < a.NumTasks(); i++ {
		ta, tb := a.Task(csdf.TaskID(i)), b.Task(csdf.TaskID(i))
		if len(ta.Durations) != len(tb.Durations) {
			t.Fatalf("task %d: phases %d vs %d", i, len(ta.Durations), len(tb.Durations))
		}
		for p := range ta.Durations {
			if ta.Durations[p] != tb.Durations[p] {
				t.Fatalf("task %d phase %d: %d vs %d", i, p, ta.Durations[p], tb.Durations[p])
			}
		}
	}
	for i := 0; i < a.NumBuffers(); i++ {
		ba, bb := a.Buffer(csdf.BufferID(i)), b.Buffer(csdf.BufferID(i))
		if ba.Src != bb.Src || ba.Dst != bb.Dst || ba.Initial != bb.Initial || ba.Capacity != bb.Capacity {
			t.Fatalf("buffer %d differs: %+v vs %+v", i, ba, bb)
		}
		for p := range ba.In {
			if ba.In[p] != bb.In[p] {
				t.Fatalf("buffer %d In[%d]", i, p)
			}
		}
		for p := range ba.Out {
			if ba.Out[p] != bb.Out[p] {
				t.Fatalf("buffer %d Out[%d]", i, p)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := gen.Figure2()
	g.SetCapacity(0, 42)
	var buf bytes.Buffer
	if err := sdf3x.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := sdf3x.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, back)
}

func TestXMLRoundTrip(t *testing.T) {
	g := gen.Figure2()
	g.SetCapacity(2, 17)
	var buf bytes.Buffer
	if err := sdf3x.WriteXML(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "applicationGraph") {
		t.Error("missing SDF3 structure")
	}
	back, err := sdf3x.ReadXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, back)
}

func TestRoundTripPreservesThroughput(t *testing.T) {
	g := gen.Figure2()
	want, err := kperiodic.KIter(g, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sdf3x.WriteXML(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := sdf3x.ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kperiodic.KIter(back, kperiodic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Period.Cmp(want.Period) != 0 {
		t.Errorf("round-trip changed Ω: %s vs %s", got.Period, want.Period)
	}
}

func TestReadWriteFile(t *testing.T) {
	dir := t.TempDir()
	g := gen.MultiRateCycle()
	for _, name := range []string{"g.json", "g.xml"} {
		path := filepath.Join(dir, name)
		if err := sdf3x.WriteFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := sdf3x.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		graphsEqual(t, g, back)
	}
	if err := sdf3x.WriteFile(filepath.Join(dir, "g.txt"), g); err == nil {
		t.Error("unknown extension accepted for write")
	}
	if _, err := sdf3x.ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	os.WriteFile(filepath.Join(dir, "g.yaml"), []byte("x"), 0o644)
	if _, err := sdf3x.ReadFile(filepath.Join(dir, "g.yaml")); err == nil {
		t.Error("unknown extension accepted for read")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","tasks":[{"name":"a","durations":[1]},{"name":"a","durations":[1]}]}`,
		`{"name":"x","tasks":[{"name":"a","durations":[1]}],"buffers":[{"src":"a","dst":"zzz","in":[1],"out":[1]}]}`,
		`{"name":"x","tasks":[{"name":"a","durations":[1]}],"buffers":[{"src":"zzz","dst":"a","in":[1],"out":[1]}]}`,
		// Validation failure: rate length mismatch.
		`{"name":"x","tasks":[{"name":"a","durations":[1]},{"name":"b","durations":[1]}],"buffers":[{"src":"a","dst":"b","in":[1,2],"out":[1]}]}`,
	}
	for i, c := range cases {
		if _, err := sdf3x.ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad JSON accepted", i)
		}
	}
}

func TestReadXMLErrors(t *testing.T) {
	cases := []string{
		`<sdf3`,
		`<sdf3 type="csdf"><applicationGraph name="g"><csdf name="g">
		   <actor name="a"/><actor name="a"/></csdf></applicationGraph></sdf3>`,
		`<sdf3 type="csdf"><applicationGraph name="g"><csdf name="g">
		   <actor name="a"><port name="p" type="out" rate="x"/></actor>
		 </csdf></applicationGraph></sdf3>`,
		`<sdf3 type="csdf"><applicationGraph name="g"><csdf name="g">
		   <actor name="a"><port name="p" type="out" rate="1"/></actor>
		   <channel name="c" srcActor="a" srcPort="p" dstActor="zz" dstPort="q" initialTokens="0"/>
		 </csdf></applicationGraph></sdf3>`,
		`<sdf3 type="csdf"><applicationGraph name="g"><csdf name="g">
		   <actor name="a"><port name="p" type="out" rate="1"/></actor>
		   <channel name="c" srcActor="a" srcPort="nope" dstActor="a" dstPort="p" initialTokens="0"/>
		 </csdf></applicationGraph></sdf3>`,
	}
	for i, c := range cases {
		if _, err := sdf3x.ReadXML(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad XML accepted", i)
		}
	}
}

func TestXMLScalarRateExpansion(t *testing.T) {
	// An SDF-style scalar rate on a CSDF actor expands across phases.
	doc := `<sdf3 type="csdf"><applicationGraph name="g"><csdf name="g">
	  <actor name="a"><port name="o" type="out" rate="2"/></actor>
	  <actor name="b"><port name="i" type="in" rate="1,3"/></actor>
	  <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i" initialTokens="0"/>
	</csdf><csdfProperties>
	  <actorProperties actor="a"><processor type="p" default="true"><executionTime time="1,1,1"/></processor></actorProperties>
	  <actorProperties actor="b"><processor type="p" default="true"><executionTime time="2,2"/></processor></actorProperties>
	</csdfProperties></applicationGraph></sdf3>`
	g, err := sdf3x.ReadXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	b := g.Buffer(0)
	if len(b.In) != 3 || b.In[0] != 2 || b.In[2] != 2 {
		t.Errorf("In = %v, want [2 2 2]", b.In)
	}
	if len(b.Out) != 2 || b.Out[1] != 3 {
		t.Errorf("Out = %v, want [1 3]", b.Out)
	}
}

func TestXMLDefaultDurations(t *testing.T) {
	// Actors without properties default to unit-duration phases.
	doc := `<sdf3 type="csdf"><applicationGraph name="g"><csdf name="g">
	  <actor name="a"><port name="o" type="out" rate="1,2"/></actor>
	  <actor name="b"><port name="i" type="in" rate="3"/></actor>
	  <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i" initialTokens="0"/>
	</csdf></applicationGraph></sdf3>`
	g, err := sdf3x.ReadXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.Task(0).Phases() != 2 || g.Task(0).Durations[0] != 1 {
		t.Errorf("default durations = %v", g.Task(0).Durations)
	}
}
