package telemetry

import (
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"strings"
)

// Traceparent is the HTTP header that carries trace context across
// processes, in the W3C Trace Context shape: 00-<trace-id>-<span-id>-01.
const Traceparent = "traceparent"

// SpanContext identifies one span within one trace: a 32-hex-char trace ID
// shared by every span of the request, fleet-wide, and a 16-hex-char span
// ID unique to this span. The zero value means "no trace" and encodes to
// an empty header.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context carries usable identifiers.
func (sc SpanContext) Valid() bool {
	return len(sc.TraceID) == 32 && len(sc.SpanID) == 16
}

// Traceparent encodes the context as a W3C traceparent header value, or ""
// for an invalid context so callers can skip the header unconditionally.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent decodes a traceparent header value. It accepts any
// version byte (per spec, future versions stay parseable as version 00)
// and rejects malformed or all-zero identifiers.
func ParseTraceparent(h string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) {
		return SpanContext{}, false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: parts[1], SpanID: parts[2]}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewSpanContext mints a fresh trace with a fresh root span ID.
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
}

// Trace and span IDs only need uniqueness, not unpredictability —
// math/rand/v2's per-goroutine ChaCha8 source is cheap and never errors,
// unlike crypto/rand.
func newTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], rand.Uint64())
	binary.BigEndian.PutUint64(b[8:], rand.Uint64())
	if b == ([16]byte{}) {
		b[15] = 1
	}
	return hex.EncodeToString(b[:])
}

func newSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rand.Uint64())
	if b == ([8]byte{}) {
		b[7] = 1
	}
	return hex.EncodeToString(b[:])
}
