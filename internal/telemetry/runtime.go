package telemetry

import (
	"math"
	"runtime/metrics"
)

// runtimeSamples is the fixed set of runtime/metrics this collector maps
// into the exposition. Gauges and counters translate directly;
// Float64Histogram samples (GC pauses, scheduler latency) become
// cumulative-bucket Prometheus histograms.
var runtimeSamples = []struct {
	src  string
	name string
	typ  string // counter | gauge | histogram
	help string
}{
	{"/sched/goroutines:goroutines", "kiter_go_goroutines", "gauge",
		"Live goroutines in the process."},
	{"/sched/latencies:seconds", "kiter_go_sched_latency_seconds", "histogram",
		"Time goroutines spent runnable before running, in seconds."},
	{"/gc/pauses:seconds", "kiter_go_gc_pause_seconds", "histogram",
		"Stop-the-world GC pause durations, in seconds."},
	{"/gc/cycles/total:gc-cycles", "kiter_go_gc_cycles_total", "counter",
		"Completed GC cycles."},
	{"/gc/heap/allocs:bytes", "kiter_go_heap_allocs_bytes_total", "counter",
		"Cumulative bytes allocated on the heap."},
	{"/memory/classes/heap/objects:bytes", "kiter_go_heap_objects_bytes", "gauge",
		"Bytes occupied by live and not-yet-swept heap objects."},
	{"/memory/classes/total:bytes", "kiter_go_memory_total_bytes", "gauge",
		"Total memory mapped by the Go runtime."},
	{"/sched/gomaxprocs:threads", "kiter_go_gomaxprocs", "gauge",
		"GOMAXPROCS: processors usable by the scheduler."},
}

// RegisterRuntimeMetrics adds a scrape-time collector exposing Go runtime
// health — goroutines, heap, GC cycles and pause distribution, scheduler
// latency — next to the serving metrics, so a latency regression can be
// attributed to (or cleared of) runtime pressure without attaching pprof.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i := range runtimeSamples {
		samples[i].Name = runtimeSamples[i].src
	}
	reg.Collect(func(x *ExpoWriter) {
		metrics.Read(samples)
		for i, rs := range runtimeSamples {
			switch samples[i].Value.Kind() {
			case metrics.KindUint64:
				x.Family(rs.name, rs.typ, rs.help)
				x.Sample(rs.name, float64(samples[i].Value.Uint64()))
			case metrics.KindFloat64:
				x.Family(rs.name, rs.typ, rs.help)
				x.Sample(rs.name, samples[i].Value.Float64())
			case metrics.KindFloat64Histogram:
				h := samples[i].Value.Float64Histogram()
				if h != nil {
					x.Family(rs.name, "histogram", rs.help)
					exposeRuntimeHistogram(x, rs.name, h)
				}
			}
		}
	})
}

// exposeRuntimeHistogram renders a runtime Float64Histogram as cumulative
// le buckets. The runtime reports counts between boundary pairs, possibly
// with ±Inf edges; _sum is approximated from bucket midpoints (the runtime
// does not track an exact sum), which is fine for the rate/percentile
// queries these families exist for.
func exposeRuntimeHistogram(x *ExpoWriter, name string, h *metrics.Float64Histogram) {
	var cum uint64
	var sum float64
	for i, count := range h.Counts {
		cum += count
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := hi
		switch {
		case !math.IsInf(lo, -1) && !math.IsInf(hi, 1):
			mid = (lo + hi) / 2
		case math.IsInf(hi, 1):
			mid = lo
		}
		if !math.IsInf(mid, 0) {
			sum += float64(count) * mid
		}
		if !math.IsInf(hi, 1) {
			x.Sample(name+"_bucket", float64(cum), "le", formatBound(hi))
		}
	}
	x.Sample(name+"_bucket", float64(cum), "le", "+Inf")
	x.Sample(name+"_sum", sum)
	x.Sample(name+"_count", float64(cum))
}
