package telemetry

import (
	"sort"
	"sync"
)

// RecordedTrace is one process's view of one trace: the finished span tree
// a handler produced, plus enough request metadata to list and correlate
// it. A fleet-wide trace is several RecordedTraces — one per process the
// request touched — reassembled by Stitch.
type RecordedTrace struct {
	TraceID       string    `json:"traceId"`
	RequestID     string    `json:"requestId,omitempty"`
	Endpoint      string    `json:"endpoint"`
	Process       string    `json:"process,omitempty"`
	Status        int       `json:"status,omitempty"`
	Error         bool      `json:"error,omitempty"`
	StartUnixNano int64     `json:"startUnixNano"`
	DurMS         float64   `json:"durMs"`
	Root          *SpanNode `json:"root"`
}

// Recorder is the always-on flight recorder: a bounded in-memory buffer of
// recent traces with tail-biased retention. Three segments split the
// capacity — a FIFO ring of the most recent traces (cap/2), a
// keep-the-slowest set (cap/4) and a FIFO ring of errored traces (cap/4) —
// so the traces worth debugging (the latency tail and the failures)
// survive long after plain recent traffic has rotated out.
//
// All methods are safe for concurrent use and no-ops on a nil receiver, so
// recording sites run unconditionally.
type Recorder struct {
	mu      sync.Mutex
	recent  []*RecordedTrace // FIFO ring
	recentI int
	slow    []*RecordedTrace // evict-fastest set
	errored []*RecordedTrace // FIFO ring
	errI    int

	recentCap, slowCap, errCap int
	added                      uint64
}

// NewRecorder returns a recorder holding at most cap traces (minimum 8).
func NewRecorder(capacity int) *Recorder {
	if capacity < 8 {
		capacity = 8
	}
	return &Recorder{
		recentCap: capacity / 2,
		slowCap:   capacity / 4,
		errCap:    capacity - capacity/2 - capacity/4,
	}
}

// Add records one finished trace.
func (r *Recorder) Add(t RecordedTrace) {
	if r == nil || t.TraceID == "" || t.Root == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.added++
	rec := &t

	if len(r.recent) < r.recentCap {
		r.recent = append(r.recent, rec)
	} else {
		r.recent[r.recentI] = rec
		r.recentI = (r.recentI + 1) % r.recentCap
	}

	if t.Error {
		if len(r.errored) < r.errCap {
			r.errored = append(r.errored, rec)
		} else {
			r.errored[r.errI] = rec
			r.errI = (r.errI + 1) % r.errCap
		}
		return
	}

	if len(r.slow) < r.slowCap {
		r.slow = append(r.slow, rec)
		return
	}
	// Full: replace the fastest resident if this trace is slower.
	fastest := 0
	for i := 1; i < len(r.slow); i++ {
		if r.slow[i].DurMS < r.slow[fastest].DurMS {
			fastest = i
		}
	}
	if t.DurMS > r.slow[fastest].DurMS {
		r.slow[fastest] = rec
	}
}

// Added returns the lifetime count of recorded traces.
func (r *Recorder) Added() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added
}

// Get returns every retained record for the given trace ID — a process can
// hold several per trace (its /analyze root plus handler-side subtrees for
// evaluate, cache and claim hops it served for peers).
func (r *Recorder) Get(traceID string) []RecordedTrace {
	if r == nil || traceID == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[*RecordedTrace]bool{}
	var out []RecordedTrace
	for _, seg := range [][]*RecordedTrace{r.recent, r.slow, r.errored} {
		for _, rec := range seg {
			if rec.TraceID == traceID && !seen[rec] {
				seen[rec] = true
				out = append(out, *rec)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNano < out[j].StartUnixNano })
	return out
}

// List returns up to limit retained traces, newest first, spanning all
// three retention segments without duplicates.
func (r *Recorder) List(limit int) []RecordedTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	seen := map[*RecordedTrace]bool{}
	var out []RecordedTrace
	for _, seg := range [][]*RecordedTrace{r.recent, r.slow, r.errored} {
		for _, rec := range seg {
			if !seen[rec] {
				seen[rec] = true
				out = append(out, *rec)
			}
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNano > out[j].StartUnixNano })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Stitch reassembles one logical trace from per-process records: each
// record whose root names a parent span ID found in another record's tree
// is grafted under that parent. It returns the resulting roots — one tree
// when every hop was captured; orphaned subtrees (their parent's process
// unreachable or rotated out) stay separate roots, marked detached. The
// second return counts those detached subtrees.
func Stitch(records []RecordedTrace) ([]*SpanNode, int) {
	byID := map[string]*SpanNode{}
	roots := make([]*SpanNode, 0, len(records))
	for i := range records {
		root := records[i].Root
		if root == nil {
			continue
		}
		if records[i].Process != "" && root.Attrs["process"] == nil {
			if root.Attrs == nil {
				root.Attrs = map[string]any{}
			}
			root.Attrs["process"] = records[i].Process
		}
		roots = append(roots, root)
		indexSpans(root, byID)
	}
	// Graft until no progress: a record can parent another record that
	// itself parents a third (analyze → evaluate → cache get).
	for {
		progressed := false
		rest := roots[:0]
		for _, root := range roots {
			parent := byID[root.ParentID]
			if root.ParentID != "" && parent != nil && parent != root && !contains(root, parent) {
				parent.Children = append(parent.Children, root)
				progressed = true
				continue
			}
			rest = append(rest, root)
		}
		roots = rest
		if !progressed {
			break
		}
	}
	detached := 0
	for _, root := range roots {
		if root.ParentID != "" {
			detached++
			if root.Attrs == nil {
				root.Attrs = map[string]any{}
			}
			root.Attrs["detached"] = true
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].StartUnixNano < roots[j].StartUnixNano })
	return roots, detached
}

func indexSpans(n *SpanNode, byID map[string]*SpanNode) {
	if n.SpanID != "" {
		if _, dup := byID[n.SpanID]; !dup {
			byID[n.SpanID] = n
		}
	}
	for _, c := range n.Children {
		indexSpans(c, byID)
	}
}

// contains reports whether target is inside the tree rooted at n — the
// cycle guard for grafting (two records should never parent each other,
// but malformed remote data must not hang the stitcher).
func contains(n, target *SpanNode) bool {
	if n == target {
		return true
	}
	for _, c := range n.Children {
		if contains(c, target) {
			return true
		}
	}
	return false
}
