package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// LogLinearBuckets builds a log-linear bucket boundary ladder: starting at
// lo, each octave doubles the scale and is split into perOctave equal-width
// sub-buckets, for octaves octaves. The result is the ascending slice of
// inclusive upper bounds (the +Inf bucket is implicit), so relative
// resolution stays roughly constant (≤ 1/perOctave) across the whole
// range — the shape latency distributions need: microsecond cache hits and
// multi-second solves land in equally meaningful buckets.
func LogLinearBuckets(lo float64, octaves, perOctave int) []float64 {
	if lo <= 0 || octaves <= 0 || perOctave <= 0 {
		panic("telemetry: LogLinearBuckets arguments must be positive")
	}
	out := make([]float64, 0, octaves*perOctave)
	base := lo
	for o := 0; o < octaves; o++ {
		for i := 1; i <= perOctave; i++ {
			out = append(out, base+base*float64(i)/float64(perOctave))
		}
		base *= 2
	}
	return out
}

// LatencyBuckets is the default layout for request and solve latencies in
// seconds: 1 µs up to ~134 s at two sub-buckets per octave (54 buckets).
var LatencyBuckets = LogLinearBuckets(1e-6, 27, 2)

// CountBuckets is the default layout for iteration/round counts: 1 up to
// 16384 at two sub-buckets per octave.
var CountBuckets = LogLinearBuckets(1, 14, 2)

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Buckets hold non-cumulative counts internally; the Prometheus exposition
// and Quantile compute the cumulative view. All methods are safe on a nil
// receiver (no-ops / zero values), so instrumentation points never have to
// guard for a disabled registry.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending inclusive upper bounds; +Inf implicit
	counts     []atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a standalone histogram outside any Registry, with
// the given ascending bucket bounds (nil → LatencyBuckets). Clients like
// cmd/kiterbench use it to reuse the log-linear layout, merge and quantile
// estimator for their own aggregation without Prometheus exposition.
func NewHistogram(name string, bounds []float64) *Histogram {
	return newHistogram(name, "", bounds)
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending", name))
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose (inclusive) upper bound admits v; beyond every
	// bound lands in the trailing +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration measured in seconds.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts by
// linear interpolation inside the bucket where the cumulative count crosses
// q·total. The estimate is within one bucket of the exact sample quantile
// by construction: every observation in a bucket is bracketed by the
// bucket's bounds. Returns 0 with no observations; values in the +Inf
// bucket report the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (h.bounds[i]-lower)*(target-cum)/n
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge folds other's observations into h. Both histograms must share the
// same bucket layout; merging across layouts would silently misbin.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("telemetry: merging histograms with %d vs %d buckets", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			return fmt.Errorf("telemetry: merging histograms with different bounds at bucket %d (%g vs %g)", i, b, other.bounds[i])
		}
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + other.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// expose writes the histogram in Prometheus text format: cumulative
// le-labeled buckets, then _sum and _count.
func (h *Histogram) expose(x *ExpoWriter, labels []string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		x.Sample(h.name+"_bucket", float64(cum), append(append([]string(nil), labels...), "le", formatBound(b))...)
	}
	cum += h.counts[len(h.bounds)].Load()
	x.Sample(h.name+"_bucket", float64(cum), append(append([]string(nil), labels...), "le", "+Inf")...)
	x.Sample(h.name+"_sum", h.Sum(), labels...)
	x.Sample(h.name+"_count", float64(cum), labels...)
}
