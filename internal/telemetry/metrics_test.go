package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesVecs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Add(3)
	c.Inc()
	cv := r.CounterVec("wins_total", "wins", "method")
	cv.With("kiter").Add(2)
	cv.With("symbolic").Inc()
	r.Gauge("pending", "pending jobs", func() float64 { return 7 })
	hv := r.HistogramVec("solve_seconds", "solve", []float64{1, 2}, "method")
	hv.With("kiter").Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP jobs_total jobs",
		"# TYPE jobs_total counter",
		"jobs_total 4",
		`wins_total{method="kiter"} 2`,
		`wins_total{method="symbolic"} 1`,
		"# TYPE pending gauge",
		"pending 7",
		`solve_seconds_bucket{method="kiter",le="1"} 1`,
		`solve_seconds_count{method="kiter"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryCollector(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(x *ExpoWriter) {
		x.Family("stats_hits_total", "counter", "hits")
		x.Sample("stats_hits_total", 42, "tier", `dis"k\`)
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `stats_hits_total{tier="dis\"k\\"} 42`; !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r.Counter("dup", "")
}

// TestNilRegistry drives every instrument from a nil registry: the whole
// chain must be a silent no-op — this is the disabled-telemetry fast path
// the engine and solvers rely on.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.CounterVec("b", "", "l").With("x").Add(5)
	r.Gauge("c", "", func() float64 { return 1 })
	r.Histogram("d", "", nil).Observe(1)
	r.HistogramVec("e", "", nil, "l").With("x").Observe(1)
	r.Collect(func(*ExpoWriter) { t.Error("collector must not run") })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestVecConcurrentWith(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("n_total", "", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				cv.With("same").Inc()
			}
		}()
	}
	wg.Wait()
	if got := cv.With("same").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
}
