package telemetry

import (
	"context"
	"sync"
	"time"
)

// Span is one node of a per-job trace tree: a named phase with a start
// time, a duration once ended, key/value attributes, events and child
// spans. Spans are safe for concurrent use (race contestants attach
// children to the same parent from separate goroutines) and safe on a nil
// receiver, so instrumentation points run unconditionally and cost a nil
// check when tracing is off.
type Span struct {
	name     string
	start    time.Time
	sc       SpanContext
	parentID string
	root     bool

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []attr
	events   []spanEvent
	children []*Span
}

type attr struct {
	key string
	val any
}

type spanEvent struct {
	name  string
	at    time.Time
	attrs []attr
}

// NewTrace starts a root span — the per-request entry point; everything
// below it attaches through contexts via StartSpan. The root is minted
// with a fresh SpanContext, so every trace is addressable fleet-wide.
func NewTrace(name string) *Span {
	return &Span{name: name, start: time.Now(), sc: NewSpanContext(), root: true}
}

// NewRemoteTrace starts a root span for the receiving side of a
// cross-process hop: it joins the caller's trace (same TraceID) as a child
// of the caller's span, so stitching by parent span ID reassembles one
// logical tree across processes.
func NewRemoteTrace(name string, parent SpanContext) *Span {
	return &Span{
		name:     name,
		start:    time.Now(),
		sc:       SpanContext{TraceID: parent.TraceID, SpanID: newSpanID()},
		parentID: parent.SpanID,
		root:     true,
	}
}

// Context returns the span's identifiers. Nil or ID-less spans return the
// zero SpanContext, which encodes to no traceparent header.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the active span. A nil s
// returns ctx unchanged, so tracing stays a no-op when disabled.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the active span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a child of ctx's active span and returns a context
// carrying it. When ctx has no active span (tracing off) both returns pass
// through: the original ctx and a nil span whose End is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{name: name, start: time.Now()}
	if parent.sc.TraceID != "" {
		child.sc = SpanContext{TraceID: parent.sc.TraceID, SpanID: newSpanID()}
		child.parentID = parent.sc.SpanID
	}
	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, child), child
}

// End closes the span, fixing its duration. Safe to call more than once;
// only the first End counts.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
}

// SetAttr sets a key/value attribute, replacing an existing key.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = val
			return
		}
	}
	s.attrs = append(s.attrs, attr{key: key, val: val})
}

// AddInt accumulates n into an integer attribute, creating it at n — the
// shape solver loops need (arcs built per round, Howard iterations per
// solve) without read-modify-write at every site.
func (s *Span) AddInt(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			if v, ok := s.attrs[i].val.(int64); ok {
				s.attrs[i].val = v + n
				return
			}
		}
	}
	s.attrs = append(s.attrs, attr{key: key, val: n})
}

// Event appends a timestamped point event — breaker opened, chaos fault
// fired, fallback taken — with optional alternating key/value attribute
// pairs. Unlike attributes, events keep ordering and wall-clock placement,
// so a degraded trace explains why it went local.
func (s *Span) Event(name string, kv ...any) {
	if s == nil {
		return
	}
	ev := spanEvent{name: name, at: time.Now()}
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			continue
		}
		ev.attrs = append(ev.attrs, attr{key: key, val: kv[i+1]})
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Record attaches an already-measured phase as a completed child span —
// for phases whose start and end are observed in different goroutines
// (queue wait: enqueue vs. worker dequeue) where threading a live span
// through would be noise.
func (s *Span) Record(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	child := &Span{name: name, start: start, dur: d, ended: true}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// SpanNode is the exported JSON form of a span tree, as returned by
// POST /analyze?trace=1, GET /debug/traces/{id} and the -trace-log NDJSON
// stream. TraceID is set on roots only; SpanID/ParentID appear on spans
// that participate in cross-process propagation.
type SpanNode struct {
	Name          string         `json:"name"`
	TraceID       string         `json:"traceId,omitempty"`
	SpanID        string         `json:"spanId,omitempty"`
	ParentID      string         `json:"parentId,omitempty"`
	StartUnixNano int64          `json:"startUnixNano"`
	DurMS         float64        `json:"durMs"`
	Attrs         map[string]any `json:"attrs,omitempty"`
	Events        []SpanEvent    `json:"events,omitempty"`
	Children      []*SpanNode    `json:"spans,omitempty"`
}

// SpanEvent is the exported form of a point event on a span.
type SpanEvent struct {
	Name       string         `json:"name"`
	AtUnixNano int64          `json:"atUnixNano"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Snapshot renders the span tree rooted at s. Unended spans (a cancelled
// contestant still winding down) report the duration so far.
func (s *Span) Snapshot() *SpanNode {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	n := &SpanNode{
		Name:          s.name,
		SpanID:        s.sc.SpanID,
		ParentID:      s.parentID,
		StartUnixNano: s.start.UnixNano(),
		DurMS:         float64(s.dur) / float64(time.Millisecond),
	}
	if !s.ended {
		n.DurMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if s.root {
		// A root (local or remote): carry the trace ID so the node is
		// self-describing once detached from its Span.
		n.TraceID = s.sc.TraceID
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.key] = a.val
		}
	}
	for _, ev := range s.events {
		out := SpanEvent{Name: ev.name, AtUnixNano: ev.at.UnixNano()}
		if len(ev.attrs) > 0 {
			out.Attrs = make(map[string]any, len(ev.attrs))
			for _, a := range ev.attrs {
				out.Attrs[a.key] = a.val
			}
		}
		n.Events = append(n.Events, out)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.Snapshot())
	}
	return n
}
