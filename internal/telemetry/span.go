package telemetry

import (
	"context"
	"sync"
	"time"
)

// Span is one node of a per-job trace tree: a named phase with a start
// time, a duration once ended, key/value attributes and child spans.
// Spans are safe for concurrent use (race contestants attach children to
// the same parent from separate goroutines) and safe on a nil receiver, so
// instrumentation points run unconditionally and cost a nil check when
// tracing is off.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []attr
	children []*Span
}

type attr struct {
	key string
	val any
}

// NewTrace starts a root span — the per-request entry point; everything
// below it attaches through contexts via StartSpan.
func NewTrace(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the active span. A nil s
// returns ctx unchanged, so tracing stays a no-op when disabled.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the active span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a child of ctx's active span and returns a context
// carrying it. When ctx has no active span (tracing off) both returns pass
// through: the original ctx and a nil span whose End is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, child), child
}

// End closes the span, fixing its duration. Safe to call more than once;
// only the first End counts.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
}

// SetAttr sets a key/value attribute, replacing an existing key.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = val
			return
		}
	}
	s.attrs = append(s.attrs, attr{key: key, val: val})
}

// AddInt accumulates n into an integer attribute, creating it at n — the
// shape solver loops need (arcs built per round, Howard iterations per
// solve) without read-modify-write at every site.
func (s *Span) AddInt(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			if v, ok := s.attrs[i].val.(int64); ok {
				s.attrs[i].val = v + n
				return
			}
		}
	}
	s.attrs = append(s.attrs, attr{key: key, val: n})
}

// Record attaches an already-measured phase as a completed child span —
// for phases whose start and end are observed in different goroutines
// (queue wait: enqueue vs. worker dequeue) where threading a live span
// through would be noise.
func (s *Span) Record(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	child := &Span{name: name, start: start, dur: d, ended: true}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// SpanNode is the exported JSON form of a span tree, as returned by
// POST /analyze?trace=1 and appended to the -trace-log NDJSON stream.
type SpanNode struct {
	Name          string         `json:"name"`
	StartUnixNano int64          `json:"startUnixNano"`
	DurMS         float64        `json:"durMs"`
	Attrs         map[string]any `json:"attrs,omitempty"`
	Children      []*SpanNode    `json:"spans,omitempty"`
}

// Snapshot renders the span tree rooted at s. Unended spans (a cancelled
// contestant still winding down) report the duration so far.
func (s *Span) Snapshot() *SpanNode {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	n := &SpanNode{
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurMS:         float64(s.dur) / float64(time.Millisecond),
	}
	if !s.ended {
		n.DurMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.key] = a.val
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.Snapshot())
	}
	return n
}
