package telemetry

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeThroughContext(t *testing.T) {
	root := NewTrace("analyze")
	ctx := ContextWithSpan(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("FromContext lost the root")
	}
	cctx, child := StartSpan(ctx, "solve")
	if child == nil || FromContext(cctx) != child {
		t.Fatal("StartSpan did not activate the child")
	}
	_, grand := StartSpan(cctx, "howard")
	grand.AddInt("iterations", 3)
	grand.AddInt("iterations", 4)
	grand.SetAttr("method", "kiter")
	grand.End()
	child.End()
	root.Record("queue.wait", time.Now().Add(-time.Millisecond), time.Millisecond)
	root.End()

	n := root.Snapshot()
	if n.Name != "analyze" || len(n.Children) != 2 {
		t.Fatalf("unexpected tree: %+v", n)
	}
	solve := n.Children[0]
	if solve.Name != "solve" || len(solve.Children) != 1 {
		t.Fatalf("unexpected solve node: %+v", solve)
	}
	howard := solve.Children[0]
	if howard.Attrs["iterations"] != int64(7) {
		t.Errorf("AddInt accumulation = %v, want 7", howard.Attrs["iterations"])
	}
	if howard.Attrs["method"] != "kiter" {
		t.Errorf("SetAttr = %v", howard.Attrs["method"])
	}
	if n.Children[1].Name != "queue.wait" || n.Children[1].DurMS <= 0 {
		t.Errorf("Record child wrong: %+v", n.Children[1])
	}
	// Child phases must fit inside the root's wall time.
	if solve.DurMS > n.DurMS {
		t.Errorf("child duration %g exceeds root %g", solve.DurMS, n.DurMS)
	}
}

func TestSpanNoopWithoutTrace(t *testing.T) {
	ctx := context.Background()
	out, s := StartSpan(ctx, "x")
	if s != nil || out != ctx {
		t.Fatal("StartSpan must pass through when tracing is off")
	}
	s.End()
	s.SetAttr("k", 1)
	s.AddInt("k", 1)
	s.Record("r", time.Now(), 0)
	if s.Snapshot() != nil {
		t.Error("nil span snapshot must be nil")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Error("ContextWithSpan(nil) must return ctx unchanged")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewTrace("race")
	ctx := ContextWithSpan(context.Background(), root)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(ctx, "contestant")
			s.AddInt("n", 1)
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Snapshot().Children); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
}

func TestSnapshotOfUnendedSpan(t *testing.T) {
	s := NewTrace("open")
	time.Sleep(time.Millisecond)
	if n := s.Snapshot(); n.DurMS <= 0 {
		t.Error("unended span must report elapsed time so far")
	}
}

func TestTraceLogAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	tl, err := OpenTraceLog(path)
	if err != nil {
		t.Fatal(err)
	}
	root := NewTrace("analyze")
	root.End()
	for i := 0; i < 3; i++ {
		if err := tl.Append(TraceRecord{RequestID: "req-1", Endpoint: "/analyze", Trace: root.Snapshot()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	var rec TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.RequestID != "req-1" || rec.Trace == nil || rec.Trace.Name != "analyze" {
		t.Fatalf("bad record: %+v", rec)
	}
	// nil log swallows appends.
	var nilLog *TraceLog
	if err := nilLog.Append(TraceRecord{}); err != nil {
		t.Error("nil TraceLog.Append must be a no-op")
	}
	if err := nilLog.Close(); err != nil {
		t.Error("nil TraceLog.Close must be a no-op")
	}
}
