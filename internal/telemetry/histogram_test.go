package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestLogLinearBucketLayout(t *testing.T) {
	b := LogLinearBuckets(1, 3, 4)
	want := []float64{1.25, 1.5, 1.75, 2, 2.5, 3, 3.5, 4, 5, 6, 7, 8}
	if len(b) != len(want) {
		t.Fatalf("got %d bounds, want %d: %v", len(b), len(want), b)
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bound %d = %g, want %g", i, b[i], want[i])
		}
	}
	if !sort.Float64sAreSorted(LatencyBuckets) {
		t.Fatal("LatencyBuckets not sorted")
	}
	if !sort.Float64sAreSorted(CountBuckets) {
		t.Fatal("CountBuckets not sorted")
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound semantics:
// a value exactly on a bound lands in that bound's bucket (Prometheus le
// semantics), a value just above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram("t", "", []float64{1, 2, 4})
	h.Observe(1)         // bucket 0 (le=1)
	h.Observe(1.0000001) // bucket 1 (le=2)
	h.Observe(4)         // bucket 2 (le=4)
	h.Observe(5)         // +Inf bucket
	h.Observe(-1)        // below the ladder still lands in bucket 0
	wants := []uint64{2, 1, 1, 1}
	for i, want := range wants {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got, want := h.Sum(), 1+1.0000001+4+5-1; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := newHistogram("a", "", []float64{1, 2, 4})
	b := newHistogram("b", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 3, 9} {
		a.Observe(v)
	}
	for _, v := range []float64{1.5, 2.5} {
		b.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(); got != 5 {
		t.Errorf("merged Count = %d, want 5", got)
	}
	if got, want := a.Sum(), 0.5+3+9+1.5+2.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("merged Sum = %g, want %g", got, want)
	}
	// b untouched.
	if got := b.Count(); got != 2 {
		t.Errorf("source Count = %d, want 2", got)
	}
	mismatched := newHistogram("c", "", []float64{1, 2})
	if err := a.Merge(mismatched); err == nil {
		t.Error("merging mismatched layouts should fail")
	}
	shifted := newHistogram("d", "", []float64{1, 2, 5})
	if err := a.Merge(shifted); err == nil {
		t.Error("merging shifted bounds should fail")
	}
}

// TestHistogramQuantileProperty is the satellite property test: over many
// random samples and distributions, the estimated p99 (and p50) must land
// within one bucket of the exact sorted-sample quantile — the histogram's
// resolution guarantee.
func TestHistogramQuantileProperty(t *testing.T) {
	bounds := LogLinearBuckets(1e-6, 27, 2)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		h := newHistogram("q", "", bounds)
		n := 100 + rng.Intn(2000)
		samples := make([]float64, n)
		for i := range samples {
			var v float64
			switch trial % 3 {
			case 0: // log-uniform over the whole ladder
				v = math.Exp(rng.Float64()*math.Log(1e8)) * 1e-6
			case 1: // heavy-tailed around 1ms
				v = 1e-3 * math.Exp(rng.NormFloat64())
			default: // bimodal: cache hits vs. solves
				if rng.Intn(2) == 0 {
					v = 1e-5 * (1 + rng.Float64())
				} else {
					v = 0.1 * (1 + rng.Float64())
				}
			}
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.5, 0.99} {
			exact := samples[int(math.Ceil(q*float64(n)))-1]
			est := h.Quantile(q)
			lo, hi := bucketRange(bounds, est)
			// Widen by one bucket on each side: the estimate may sit at a
			// boundary shared with the exact value's neighbour bucket.
			loIdx := sort.SearchFloat64s(bounds, lo)
			hiIdx := sort.SearchFloat64s(bounds, hi)
			exactIdx := sort.SearchFloat64s(bounds, exact)
			if exactIdx < loIdx-1 || exactIdx > hiIdx+1 {
				t.Fatalf("trial %d q=%g: estimate %g (buckets %d..%d) vs exact %g (bucket %d): off by more than one bucket",
					trial, q, est, loIdx, hiIdx, exact, exactIdx)
			}
		}
	}
}

// bucketRange returns the bounds of the bucket containing v.
func bucketRange(bounds []float64, v float64) (lo, hi float64) {
	i := sort.SearchFloat64s(bounds, v)
	if i >= len(bounds) {
		return bounds[len(bounds)-1], math.Inf(1)
	}
	if i == 0 {
		return 0, bounds[0]
	}
	return bounds[i-1], bounds[i]
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram("e", "", []float64{1, 2})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(10) // +Inf bucket only
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-only quantile = %g, want highest finite bound 2", got)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Error("nil histogram must report zeros")
	}
	if err := nilH.Merge(h); err != nil {
		t.Error("nil merge must be a no-op")
	}
}

// TestHistogramConcurrentObserve drives concurrent observers under -race
// and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram("c", "", LatencyBuckets)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64())
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if s := h.Sum(); s <= 0 || s >= goroutines*per {
		t.Fatalf("Sum = %g out of range", s)
	}
}

// TestHistogramExpositionCumulative checks the Prometheus rendering:
// le-labeled buckets are cumulative and monotone, ending at +Inf == _count.
func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "test", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 9} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="2"} 2`,
		`lat_seconds_bucket{le="4"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
