// Package telemetry is the dependency-free observability substrate behind
// kiterd's GET /metrics and POST /analyze?trace=1: a metrics registry
// (counters, gauges, log-linear latency histograms) with Prometheus text
// exposition, and lightweight per-job span trees carried through contexts.
//
// Everything is nil-tolerant by design: a nil *Registry hands out nil
// instruments, and every instrument method no-ops on a nil receiver, so
// the engine, solvers and cluster instrument unconditionally and a process
// that never wires a registry pays only a nil check per site.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a callback-backed point-in-time metric: the value function runs
// at scrape time, so gauges never need updating on the serving path.
type Gauge struct {
	name, help string
	fn         func() float64
}

// vec is the shared label-indexing machinery behind CounterVec and
// HistogramVec: children are created on first use and exposed in sorted
// key order for stable scrape output.
type vec[T any] struct {
	mu       sync.Mutex
	children map[string]T
	keys     map[string][]string // label values per child key
	labels   []string
	make     func() T
}

func (v *vec[T]) with(values ...string) T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	child, ok := v.children[key]
	if !ok {
		child = v.make()
		v.children[key] = child
		v.keys[key] = append([]string(nil), values...)
	}
	return child
}

// sortedKeys returns child keys in deterministic order.
func (v *vec[T]) sortedKeys() []string {
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// labelPairs flattens a child's label names and values into the
// alternating form ExpoWriter.Sample takes.
func (v *vec[T]) labelPairs(key string) []string {
	values := v.keys[key]
	pairs := make([]string, 0, 2*len(values))
	for i, name := range v.labels {
		pairs = append(pairs, name, values[i])
	}
	return pairs
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	name, help string
	vec[*Counter]
}

// With returns the child counter for the given label values, creating it
// on first use.
func (c *CounterVec) With(values ...string) *Counter {
	if c == nil {
		return nil
	}
	return c.with(values...)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	name, help string
	bounds     []float64
	vec[*Histogram]
}

// With returns the child histogram for the given label values, creating it
// on first use.
func (h *HistogramVec) With(values ...string) *Histogram {
	if h == nil {
		return nil
	}
	return h.with(values...)
}

// Registry holds instruments and scrape-time collectors and renders them
// all in Prometheus text exposition format. Instruments register exactly
// once by name; requesting a registered name again panics (a config error,
// not a runtime condition).
type Registry struct {
	mu         sync.Mutex
	names      map[string]bool
	exposers   []func(*ExpoWriter)
	collectors []func(*ExpoWriter)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name string, expose func(*ExpoWriter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("telemetry: duplicate metric " + name)
	}
	r.names[name] = true
	r.exposers = append(r.exposers, expose)
}

// Counter registers and returns a counter. Nil registry → nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: name, help: help}
	r.register(name, func(x *ExpoWriter) {
		x.Family(name, "counter", help)
		x.Sample(name, float64(c.Value()))
	})
	return c
}

// CounterVec registers and returns a label-partitioned counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	c := &CounterVec{name: name, help: help}
	c.labels = labels
	c.children = map[string]*Counter{}
	c.keys = map[string][]string{}
	c.make = func() *Counter { return &Counter{name: name, help: help} }
	r.register(name, func(x *ExpoWriter) {
		c.mu.Lock()
		defer c.mu.Unlock()
		x.Family(name, "counter", help)
		for _, k := range c.sortedKeys() {
			x.Sample(name, float64(c.children[k].Value()), c.labelPairs(k)...)
		}
	})
	return c
}

// Gauge registers a callback gauge evaluated at scrape time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, func(x *ExpoWriter) {
		x.Family(name, "gauge", help)
		x.Sample(name, fn())
	})
}

// Histogram registers and returns a histogram with the given bucket upper
// bounds (nil → LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(name, help, bounds)
	r.register(name, func(x *ExpoWriter) {
		x.Family(name, "histogram", help)
		h.expose(x, nil)
	})
	return h
}

// HistogramVec registers and returns a label-partitioned histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	h := &HistogramVec{name: name, help: help, bounds: bounds}
	h.labels = labels
	h.children = map[string]*Histogram{}
	h.keys = map[string][]string{}
	h.make = func() *Histogram { return newHistogram(name, help, bounds) }
	r.register(name, func(x *ExpoWriter) {
		h.mu.Lock()
		defer h.mu.Unlock()
		x.Family(name, "histogram", help)
		for _, k := range h.sortedKeys() {
			h.children[k].expose(x, h.labelPairs(k))
		}
	})
	return h
}

// Collect registers a scrape-time collector: fn runs on every
// WritePrometheus call and emits whole families through the writer. This
// is how point-in-time snapshots (engine.Stats, cluster peers, cache
// tiers) are mapped into the exposition without double-accounting state.
func (r *Registry) Collect(fn func(*ExpoWriter)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// WritePrometheus renders every registered instrument and collector in
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var exposers, collectors []func(*ExpoWriter)
	exposers = append(exposers, r.exposers...)
	collectors = append(collectors, r.collectors...)
	r.mu.Unlock()
	x := &ExpoWriter{w: w}
	for _, e := range exposers {
		e(x)
	}
	for _, c := range collectors {
		c(x)
	}
	return x.err
}

// ExpoWriter writes Prometheus text exposition lines. The first write
// error sticks and suppresses the rest, so callers check once at the end.
type ExpoWriter struct {
	w   io.Writer
	err error
}

// Family writes the # HELP / # TYPE header for a metric family. typ is
// "counter", "gauge" or "histogram".
func (x *ExpoWriter) Family(name, typ, help string) {
	if x.err != nil {
		return
	}
	_, x.err = fmt.Fprintf(x.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample writes one sample line. labelPairs alternates name, value.
func (x *ExpoWriter) Sample(name string, value float64, labelPairs ...string) {
	if x.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labelPairs) > 0 {
		sb.WriteByte('{')
		for i := 0; i+1 < len(labelPairs); i += 2 {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(labelPairs[i])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(labelPairs[i+1]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(value))
	sb.WriteByte('\n')
	_, x.err = io.WriteString(x.w, sb.String())
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a histogram le bound.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
