package telemetry

import (
	"sort"
	"sync"
	"time"
)

// ExemplarTracker remembers, per endpoint, the trace ID of the slowest
// recent request — the exemplar linkage between the latency histograms on
// /metrics and the flight recorder: a bad p99 names the exact trace to
// pull from /debug/traces/{id}. "Recent" means within the window; a stale
// exemplar is replaced by the next observation regardless of duration, so
// the pivot never points at a trace the recorder has long rotated out.
//
// Cardinality stays bounded: one sample per endpoint label (the server
// uses a fixed endpoint set), with the trace ID carried as a label on that
// single sample.
type ExemplarTracker struct {
	window time.Duration
	mu     sync.Mutex
	slow   map[string]exemplar
}

type exemplar struct {
	traceID string
	seconds float64
	at      time.Time
}

// NewExemplarTracker returns a tracker with the given freshness window
// (<= 0 defaults to 2 minutes).
func NewExemplarTracker(window time.Duration) *ExemplarTracker {
	if window <= 0 {
		window = 2 * time.Minute
	}
	return &ExemplarTracker{window: window, slow: map[string]exemplar{}}
}

// Observe offers one request's duration as the endpoint's exemplar.
func (t *ExemplarTracker) Observe(endpoint, traceID string, seconds float64) {
	if t == nil || traceID == "" {
		return
	}
	now := time.Now()
	t.mu.Lock()
	cur, ok := t.slow[endpoint]
	if !ok || seconds > cur.seconds || now.Sub(cur.at) > t.window {
		t.slow[endpoint] = exemplar{traceID: traceID, seconds: seconds, at: now}
	}
	t.mu.Unlock()
}

// Register exposes the exemplars as kiter_http_slowest_trace_seconds — the
// slowest recent duration per endpoint, with the matching trace ID as a
// label for the /debug/traces pivot.
func (t *ExemplarTracker) Register(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.Collect(func(x *ExpoWriter) {
		t.mu.Lock()
		eps := make([]string, 0, len(t.slow))
		for ep := range t.slow {
			eps = append(eps, ep)
		}
		snap := make(map[string]exemplar, len(t.slow))
		for ep, ex := range t.slow {
			snap[ep] = ex
		}
		t.mu.Unlock()
		sort.Strings(eps)
		x.Family("kiter_http_slowest_trace_seconds", "gauge",
			"Duration of the slowest recent request per endpoint; traceId labels the flight-recorder trace to pivot to.")
		for _, ep := range eps {
			ex := snap[ep]
			x.Sample("kiter_http_slowest_trace_seconds", ex.seconds,
				"endpoint", ep, "traceId", ex.traceID)
		}
	})
}
