package telemetry

import (
	"encoding/json"
	"os"
	"sync"
)

// TraceRecord is one NDJSON line of a trace log: a request's span tree
// tagged with the ID the server assigned, so offline tooling (flame-graph
// assembly, per-request drill-down) can correlate lines with access logs.
type TraceRecord struct {
	RequestID string    `json:"requestId"`
	Endpoint  string    `json:"endpoint,omitempty"`
	Trace     *SpanNode `json:"trace"`
}

// TraceLog appends span trees to an NDJSON file, one record per line.
// Appends are serialized and written with a single Write each, so
// concurrent requests never interleave partial lines. A nil *TraceLog
// swallows appends, mirroring the rest of the package's nil tolerance.
type TraceLog struct {
	mu sync.Mutex
	f  *os.File
}

// OpenTraceLog opens (creating or appending to) the NDJSON trace log at
// path.
func OpenTraceLog(path string) (*TraceLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &TraceLog{f: f}, nil
}

// Append writes one record as a single NDJSON line.
func (t *TraceLog) Append(rec TraceRecord) error {
	if t == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err = t.f.Write(append(line, '\n'))
	return err
}

// Close closes the underlying file.
func (t *TraceLog) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.f.Close()
}
