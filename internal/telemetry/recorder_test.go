package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatalf("NewSpanContext invalid: %+v", sc)
	}
	h := sc.Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q not in 00-…-01 shape", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: %q -> %+v (ok=%v), want %+v", h, got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	for _, h := range []string{
		"",
		"garbage",
		"00-aaaa-bbbb-01", // wrong lengths
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16) + "-01", // non-hex
	} {
		if _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", h)
		}
	}
	// Future versions must stay parseable (the spec requires it).
	h := "cc-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01-extra"
	if _, ok := ParseTraceparent(h); !ok {
		t.Fatalf("ParseTraceparent(%q) rejected future version", h)
	}
}

// TestRemoteTraceJoins: a remote root opened from a parsed traceparent
// shares the trace ID and parents under the caller's span.
func TestRemoteTraceJoins(t *testing.T) {
	local := NewTrace("client")
	sc, ok := ParseTraceparent(local.Context().Traceparent())
	if !ok {
		t.Fatal("local span produced unparseable traceparent")
	}
	remote := NewRemoteTrace("server", sc)
	remote.End()
	local.End()
	rn, ln := remote.Snapshot(), local.Snapshot()
	if rn.TraceID != ln.TraceID {
		t.Fatalf("trace IDs diverge: %s vs %s", rn.TraceID, ln.TraceID)
	}
	if rn.ParentID != ln.SpanID {
		t.Fatalf("remote parent %s, want caller span %s", rn.ParentID, ln.SpanID)
	}
	if rn.SpanID == ln.SpanID {
		t.Fatal("remote root reused the caller's span ID")
	}
}

func rec(id string, durMS float64, errored bool) RecordedTrace {
	return RecordedTrace{
		TraceID: id,
		Error:   errored,
		DurMS:   durMS,
		Root:    &SpanNode{Name: "analyze", SpanID: "s" + id},
	}
}

// TestRecorderTailBias: after heavy churn, the slowest and the errored
// traces are still retrievable while ordinary fast traffic has rotated out.
func TestRecorderTailBias(t *testing.T) {
	r := NewRecorder(16)
	r.Add(rec("slowest", 5000, false))
	r.Add(rec("bad", 1, true))
	// Durations creep upward so the evict-fastest policy has strictly
	// slower candidates: fast-0 cannot linger in the slow set on a tie.
	for i := 0; i < 500; i++ {
		r.Add(rec(fmt.Sprintf("fast-%d", i), 1+float64(i)/10, false))
	}
	if got := r.Get("slowest"); len(got) != 1 {
		t.Fatalf("slowest trace evicted: %v", got)
	}
	if got := r.Get("bad"); len(got) != 1 {
		t.Fatalf("errored trace evicted: %v", got)
	}
	if got := r.Get("fast-0"); len(got) != 0 {
		t.Fatalf("ancient fast trace still retained: %v", got)
	}
	if r.Added() != 502 {
		t.Fatalf("Added = %d, want 502", r.Added())
	}
	if list := r.List(0); len(list) == 0 || len(list) > 16 {
		t.Fatalf("List returned %d records for a 16-cap recorder", len(list))
	}
}

// TestStitch: remote subtrees graft under their parent spans across
// multiple hops, and orphans are marked detached.
func TestStitch(t *testing.T) {
	records := []RecordedTrace{
		{TraceID: "t", Process: "a", StartUnixNano: 1, Root: &SpanNode{
			Name: "analyze", SpanID: "root",
			Children: []*SpanNode{{Name: "cluster.forward", SpanID: "fwd"}},
		}},
		{TraceID: "t", Process: "b", StartUnixNano: 2, Root: &SpanNode{
			Name: "cluster.evaluate", SpanID: "eval", ParentID: "fwd",
			Children: []*SpanNode{{Name: "cache.fleet.get", SpanID: "cget"}},
		}},
		// Third hop: b's cache read served by c, parented two levels deep.
		{TraceID: "t", Process: "c", StartUnixNano: 3, Root: &SpanNode{
			Name: "cluster.cache.get", SpanID: "srv", ParentID: "cget",
		}},
		// Orphan: its parent's record was never captured.
		{TraceID: "t", Process: "d", StartUnixNano: 4, Root: &SpanNode{
			Name: "cluster.claim", SpanID: "claim", ParentID: "missing",
		}},
	}
	roots, detached := Stitch(records)
	if detached != 1 {
		t.Fatalf("detached = %d, want 1", detached)
	}
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (one stitched tree + one orphan)", len(roots))
	}
	tree := roots[0]
	if tree.SpanID != "root" {
		t.Fatalf("first root is %s, want the analyze root", tree.SpanID)
	}
	fwd := tree.Children[0]
	if len(fwd.Children) != 1 || fwd.Children[0].SpanID != "eval" {
		t.Fatalf("evaluate subtree not grafted under forward: %+v", fwd)
	}
	cget := fwd.Children[0].Children[0]
	if len(cget.Children) != 1 || cget.Children[0].SpanID != "srv" {
		t.Fatalf("second hop not grafted: %+v", cget)
	}
	if p, _ := fwd.Children[0].Attrs["process"].(string); p != "b" {
		t.Fatalf("grafted subtree lost its process stamp: %v", fwd.Children[0].Attrs)
	}
	orphan := roots[1]
	if orphan.SpanID != "claim" || orphan.Attrs["detached"] != true {
		t.Fatalf("orphan not marked detached: %+v", orphan)
	}
}

// TestStitchCycleGuard: malformed records that parent each other must not
// hang or panic the stitcher.
func TestStitchCycleGuard(t *testing.T) {
	records := []RecordedTrace{
		{TraceID: "t", Root: &SpanNode{Name: "x", SpanID: "x", ParentID: "y"}},
		{TraceID: "t", Root: &SpanNode{Name: "y", SpanID: "y", ParentID: "x"}},
	}
	roots, _ := Stitch(records)
	if len(roots) == 0 {
		t.Fatal("cycle swallowed every root")
	}
}

func TestExemplarTracker(t *testing.T) {
	tr := NewExemplarTracker(0)
	tr.Observe("/analyze", "t1", 0.5)
	tr.Observe("/analyze", "t2", 0.1) // faster: must not replace
	tr.Observe("/sweep", "t3", 1.0)
	reg := NewRegistry()
	tr.Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	if !strings.Contains(expo, `kiter_http_slowest_trace_seconds{endpoint="/analyze",traceId="t1"} 0.5`) {
		t.Fatalf("slowest /analyze exemplar missing or replaced:\n%s", expo)
	}
	if !strings.Contains(expo, `traceId="t3"`) {
		t.Fatalf("/sweep exemplar missing:\n%s", expo)
	}
	// Nil receivers are inert.
	var nilT *ExemplarTracker
	nilT.Observe("/analyze", "t9", 9)
	nilT.Register(reg)
}

func TestRuntimeMetricsRegister(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, family := range []string{
		"kiter_go_goroutines",
		"kiter_go_gc_pause_seconds",
		"kiter_go_sched_latency_seconds",
		"kiter_go_memory_total_bytes",
	} {
		if !strings.Contains(expo, family) {
			t.Fatalf("runtime exposition missing %s:\n%.2000s", family, expo)
		}
	}
}
