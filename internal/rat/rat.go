// Package rat provides exact arithmetic helpers used throughout the
// throughput analyses: overflow-checked int64 gcd/lcm, rounding to a
// multiple of a step (the ⌈x⌉γ and ⌊x⌋γ operators of the paper), and a
// small exact rational type backed by int64 with automatic promotion of
// intermediate results through math/big.
//
// The paper's quantities (repetition vectors, token counts, the H weights
// β/(q̃·ĩ) of the bi-valued graph) overflow 64-bit arithmetic on the larger
// industrial graphs (Echo has Σqt ≈ 8·10⁸), so every helper either detects
// overflow and reports it, or routes through math/big.
package rat

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
)

// Gcd returns the non-negative greatest common divisor of a and b.
// Gcd(0, 0) is 0 by convention.
func Gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GcdAll returns the gcd of all values, 0 for an empty slice.
func GcdAll(vs ...int64) int64 {
	var g int64
	for _, v := range vs {
		g = Gcd(g, v)
		if g == 1 {
			return 1
		}
	}
	return g
}

// Lcm returns the least common multiple of a and b and reports whether the
// computation stayed within int64. Lcm(0, x) is 0.
func Lcm(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	g := Gcd(a, b)
	q := a / g
	return MulCheck(q, b)
}

// LcmAll folds Lcm over all values (1 for an empty slice), reporting
// overflow.
func LcmAll(vs ...int64) (int64, bool) {
	var acc int64 = 1
	for _, v := range vs {
		var ok bool
		acc, ok = Lcm(acc, v)
		if !ok {
			return 0, false
		}
	}
	return acc, true
}

// MulCheck multiplies two int64 values, reporting whether the product fits.
func MulCheck(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// AddCheck adds two int64 values, reporting whether the sum fits.
func AddCheck(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// FloorDiv returns ⌊a/b⌋ for b > 0, correct for negative a.
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for b > 0, correct for negative a.
func CeilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// FloorTo returns ⌊a⌋γ = ⌊a/γ⌋·γ, the largest multiple of γ that is ≤ a.
// γ must be positive.
func FloorTo(a, gamma int64) int64 {
	return FloorDiv(a, gamma) * gamma
}

// CeilTo returns ⌈a⌉γ = ⌈a/γ⌉·γ, the smallest multiple of γ that is ≥ a.
// γ must be positive.
func CeilTo(a, gamma int64) int64 {
	return CeilDiv(a, gamma) * gamma
}

// Rat is an exact rational number. The zero value is 0. Rat values are
// immutable: all operations return new values, so Rats may be freely copied
// and shared.
//
// Representation: a value that fits is held as a reduced int64 fraction
// num/den with den > 0 (the small form) — construction and arithmetic in
// this regime allocate nothing, which is what keeps the bi-valued graph's
// per-arc H weights off the heap. Values that leave the int64 range are
// promoted to a *big.Rat automatically, and big results that shrink back
// into range are demoted, so chains of operations stay in the fast form
// whenever the magnitudes allow.
type Rat struct {
	// Small form, valid when r == nil: the value is num/den, reduced, with
	// den > 0. The zero value (num = 0, den = 0) represents exactly 0.
	num, den int64
	// Big form when non-nil; never holds zero, and never holds a value
	// whose reduced numerator and denominator both fit in int64 (such
	// values are demoted on construction).
	r *big.Rat
}

// smallRat builds the reduced small form for num/den with den > 0 and
// num ≠ 0, falling back to the big form when MinInt64 makes negation or
// reduction unsafe.
func smallRat(num, den int64) Rat {
	if num == math.MinInt64 || den == math.MinInt64 {
		return normBig(big.NewRat(num, den))
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := Gcd(num, den)
	return Rat{num: num / g, den: den / g}
}

// normBig wraps a big.Rat result, demoting it to the small form when it
// fits. The argument is owned by the callee and must not be reused.
func normBig(r *big.Rat) Rat {
	if r.Sign() == 0 {
		return Rat{}
	}
	if n, d := r.Num(), r.Denom(); n.IsInt64() && d.IsInt64() {
		if nn := n.Int64(); nn != math.MinInt64 {
			return Rat{num: nn, den: d.Int64()}
		}
	}
	return Rat{r: r}
}

// asBig views x as a *big.Rat for use as an operand. The result may alias
// x's internal state and must not be mutated.
func (x Rat) asBig() *big.Rat {
	if x.r != nil {
		return x.r
	}
	if x.num == 0 {
		return new(big.Rat)
	}
	return big.NewRat(x.num, x.den)
}

// NewRat returns num/den as an exact rational. den must be non-zero.
func NewRat(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if num == 0 {
		return Rat{}
	}
	return smallRat(num, den)
}

// FromInt returns v as an exact rational.
func FromInt(v int64) Rat {
	if v == 0 {
		return Rat{}
	}
	if v == math.MinInt64 {
		return Rat{r: big.NewRat(v, 1)}
	}
	return Rat{num: v, den: 1}
}

// FromBig returns a Rat with the value of r.
func FromBig(r *big.Rat) Rat {
	if r == nil || r.Sign() == 0 {
		return Rat{}
	}
	return normBig(new(big.Rat).Set(r))
}

// FromBigInts returns num/den as an exact rational. den must be non-zero.
func FromBigInts(num, den *big.Int) Rat {
	if den.Sign() == 0 {
		panic("rat: zero denominator")
	}
	if num.Sign() == 0 {
		return Rat{}
	}
	r := new(big.Rat).SetFrac(new(big.Int).Set(num), new(big.Int).Set(den))
	return normBig(r)
}

// Big returns a copy of x as a *big.Rat.
func (x Rat) Big() *big.Rat {
	if x.r != nil {
		return new(big.Rat).Set(x.r)
	}
	if x.num == 0 {
		return new(big.Rat)
	}
	return big.NewRat(x.num, x.den)
}

// IsZero reports whether x is exactly zero.
func (x Rat) IsZero() bool { return x.r == nil && x.num == 0 }

// Sign returns -1, 0 or +1 according to the sign of x.
func (x Rat) Sign() int {
	if x.r != nil {
		return x.r.Sign()
	}
	switch {
	case x.num > 0:
		return 1
	case x.num < 0:
		return -1
	}
	return 0
}

// Cmp compares x and y, returning -1, 0 or +1.
func (x Rat) Cmp(y Rat) int {
	if x.IsZero() {
		return -y.Sign()
	}
	if y.IsZero() {
		return x.Sign()
	}
	if x.r == nil && y.r == nil {
		if x.den == y.den {
			switch {
			case x.num < y.num:
				return -1
			case x.num > y.num:
				return 1
			}
			return 0
		}
		a, ok1 := MulCheck(x.num, y.den)
		b, ok2 := MulCheck(y.num, x.den)
		if ok1 && ok2 {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		}
	}
	return x.asBig().Cmp(y.asBig())
}

// Add returns x + y.
func (x Rat) Add(y Rat) Rat {
	if x.IsZero() {
		return y
	}
	if y.IsZero() {
		return x
	}
	if x.r == nil && y.r == nil {
		n1, ok1 := MulCheck(x.num, y.den)
		n2, ok2 := MulCheck(y.num, x.den)
		if ok1 && ok2 {
			if n, ok := AddCheck(n1, n2); ok {
				if n == 0 {
					return Rat{}
				}
				if d, ok := MulCheck(x.den, y.den); ok {
					return smallRat(n, d)
				}
			}
		}
	}
	return normBig(new(big.Rat).Add(x.asBig(), y.asBig()))
}

// Sub returns x - y.
func (x Rat) Sub(y Rat) Rat { return x.Add(y.Neg()) }

// Mul returns x · y.
func (x Rat) Mul(y Rat) Rat {
	if x.IsZero() || y.IsZero() {
		return Rat{}
	}
	if x.r == nil && y.r == nil && x.num != math.MinInt64 && y.num != math.MinInt64 {
		// Cross-reduce before multiplying: the factors are reduced, so the
		// cross-reduced product is reduced too and overflow is rarer.
		g1 := Gcd(x.num, y.den)
		g2 := Gcd(y.num, x.den)
		n, ok1 := MulCheck(x.num/g1, y.num/g2)
		d, ok2 := MulCheck(x.den/g2, y.den/g1)
		if ok1 && ok2 {
			return Rat{num: n, den: d}
		}
	}
	return normBig(new(big.Rat).Mul(x.asBig(), y.asBig()))
}

// Div returns x / y. y must be non-zero.
func (x Rat) Div(y Rat) Rat {
	if y.IsZero() {
		panic("rat: division by zero")
	}
	if x.IsZero() {
		return Rat{}
	}
	return x.Mul(y.Inv())
}

// Inv returns 1/x. x must be non-zero.
func (x Rat) Inv() Rat {
	if x.IsZero() {
		panic("rat: inverse of zero")
	}
	if x.r == nil && x.num != math.MinInt64 {
		if x.num < 0 {
			return Rat{num: -x.den, den: -x.num}
		}
		return Rat{num: x.den, den: x.num}
	}
	return normBig(new(big.Rat).Inv(x.asBig()))
}

// Neg returns -x.
func (x Rat) Neg() Rat {
	if x.IsZero() {
		return x
	}
	if x.r == nil && x.num != math.MinInt64 {
		return Rat{num: -x.num, den: x.den}
	}
	return normBig(new(big.Rat).Neg(x.asBig()))
}

// Float returns the nearest float64 to x.
func (x Rat) Float() float64 {
	if x.r != nil {
		f, _ := x.r.Float64()
		return f
	}
	if x.num == 0 {
		return 0
	}
	const exact = 1 << 53
	if (x.num < exact && x.num > -exact) && x.den < exact {
		// Both convert exactly; the division rounds once, correctly.
		return float64(x.num) / float64(x.den)
	}
	f, _ := big.NewRat(x.num, x.den).Float64()
	return f
}

// Num returns a copy of the numerator of x in lowest terms.
func (x Rat) Num() *big.Int {
	if x.r != nil {
		return new(big.Int).Set(x.r.Num())
	}
	return big.NewInt(x.num)
}

// Den returns a copy of the denominator of x in lowest terms (always > 0).
func (x Rat) Den() *big.Int {
	if x.r != nil {
		return new(big.Int).Set(x.r.Denom())
	}
	if x.num == 0 {
		return big.NewInt(1)
	}
	return big.NewInt(x.den)
}

// String formats x as "num/den", or "num" when the denominator is 1.
func (x Rat) String() string {
	if x.r != nil {
		if x.r.IsInt() {
			return x.r.Num().String()
		}
		return x.r.RatString()
	}
	if x.num == 0 {
		return "0"
	}
	if x.den == 1 {
		return strconv.FormatInt(x.num, 10)
	}
	return strconv.FormatInt(x.num, 10) + "/" + strconv.FormatInt(x.den, 10)
}

// Format renders x as a decimal with the given number of fractional digits.
func (x Rat) Format(digits int) string {
	if x.IsZero() {
		return "0"
	}
	return x.asBig().FloatString(digits)
}

// Int64 returns x as an int64 if x is an integer fitting in 64 bits.
func (x Rat) Int64() (int64, bool) {
	if x.r != nil {
		if !x.r.IsInt() || !x.r.Num().IsInt64() {
			return 0, false
		}
		return x.r.Num().Int64(), true
	}
	if x.num == 0 {
		return 0, true
	}
	if x.den != 1 {
		return 0, false
	}
	return x.num, true
}

// Equal reports whether x and y are the same rational.
func (x Rat) Equal(y Rat) bool { return x.Cmp(y) == 0 }

// SumInt64 adds a slice of int64 and reports overflow.
func SumInt64(vs []int64) (int64, bool) {
	var s int64
	for _, v := range vs {
		var ok bool
		s, ok = AddCheck(s, v)
		if !ok {
			return 0, false
		}
	}
	return s, true
}

// ErrOverflow reports that a quantity left the int64 range.
type ErrOverflow struct {
	Op string
}

func (e *ErrOverflow) Error() string {
	return fmt.Sprintf("rat: int64 overflow in %s", e.Op)
}
