// Package rat provides exact arithmetic helpers used throughout the
// throughput analyses: overflow-checked int64 gcd/lcm, rounding to a
// multiple of a step (the ⌈x⌉γ and ⌊x⌋γ operators of the paper), and a
// small exact rational type backed by int64 with automatic promotion of
// intermediate results through math/big.
//
// The paper's quantities (repetition vectors, token counts, the H weights
// β/(q̃·ĩ) of the bi-valued graph) overflow 64-bit arithmetic on the larger
// industrial graphs (Echo has Σqt ≈ 8·10⁸), so every helper either detects
// overflow and reports it, or routes through math/big.
package rat

import (
	"fmt"
	"math/big"
)

// Gcd returns the non-negative greatest common divisor of a and b.
// Gcd(0, 0) is 0 by convention.
func Gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GcdAll returns the gcd of all values, 0 for an empty slice.
func GcdAll(vs ...int64) int64 {
	var g int64
	for _, v := range vs {
		g = Gcd(g, v)
		if g == 1 {
			return 1
		}
	}
	return g
}

// Lcm returns the least common multiple of a and b and reports whether the
// computation stayed within int64. Lcm(0, x) is 0.
func Lcm(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	g := Gcd(a, b)
	q := a / g
	return MulCheck(q, b)
}

// LcmAll folds Lcm over all values (1 for an empty slice), reporting
// overflow.
func LcmAll(vs ...int64) (int64, bool) {
	var acc int64 = 1
	for _, v := range vs {
		var ok bool
		acc, ok = Lcm(acc, v)
		if !ok {
			return 0, false
		}
	}
	return acc, true
}

// MulCheck multiplies two int64 values, reporting whether the product fits.
func MulCheck(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// AddCheck adds two int64 values, reporting whether the sum fits.
func AddCheck(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// FloorDiv returns ⌊a/b⌋ for b > 0, correct for negative a.
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for b > 0, correct for negative a.
func CeilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// FloorTo returns ⌊a⌋γ = ⌊a/γ⌋·γ, the largest multiple of γ that is ≤ a.
// γ must be positive.
func FloorTo(a, gamma int64) int64 {
	return FloorDiv(a, gamma) * gamma
}

// CeilTo returns ⌈a⌉γ = ⌈a/γ⌉·γ, the smallest multiple of γ that is ≥ a.
// γ must be positive.
func CeilTo(a, gamma int64) int64 {
	return CeilDiv(a, gamma) * gamma
}

// Rat is an exact rational number. The zero value is 0. Rat values are
// immutable: all operations return new values, so Rats may be freely copied
// and shared. Internally a *big.Rat is used; construction from int64 pairs
// is provided for convenience.
type Rat struct {
	r *big.Rat // nil means exact zero
}

// NewRat returns num/den as an exact rational. den must be non-zero.
func NewRat(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if num == 0 {
		return Rat{}
	}
	return Rat{r: big.NewRat(num, den)}
}

// FromInt returns v as an exact rational.
func FromInt(v int64) Rat { return NewRat(v, 1) }

// FromBig returns a Rat wrapping a copy of r.
func FromBig(r *big.Rat) Rat {
	if r == nil || r.Sign() == 0 {
		return Rat{}
	}
	return Rat{r: new(big.Rat).Set(r)}
}

// FromBigInts returns num/den as an exact rational. den must be non-zero.
func FromBigInts(num, den *big.Int) Rat {
	if den.Sign() == 0 {
		panic("rat: zero denominator")
	}
	if num.Sign() == 0 {
		return Rat{}
	}
	r := new(big.Rat).SetFrac(new(big.Int).Set(num), new(big.Int).Set(den))
	return Rat{r: r}
}

// Big returns a copy of x as a *big.Rat.
func (x Rat) Big() *big.Rat {
	if x.r == nil {
		return new(big.Rat)
	}
	return new(big.Rat).Set(x.r)
}

// IsZero reports whether x is exactly zero.
func (x Rat) IsZero() bool { return x.r == nil || x.r.Sign() == 0 }

// Sign returns -1, 0 or +1 according to the sign of x.
func (x Rat) Sign() int {
	if x.r == nil {
		return 0
	}
	return x.r.Sign()
}

// Cmp compares x and y, returning -1, 0 or +1.
func (x Rat) Cmp(y Rat) int {
	if x.r == nil && y.r == nil {
		return 0
	}
	if x.r == nil {
		return -y.r.Sign()
	}
	if y.r == nil {
		return x.r.Sign()
	}
	return x.r.Cmp(y.r)
}

// Add returns x + y.
func (x Rat) Add(y Rat) Rat {
	if x.r == nil {
		return y
	}
	if y.r == nil {
		return x
	}
	return Rat{r: new(big.Rat).Add(x.r, y.r)}
}

// Sub returns x - y.
func (x Rat) Sub(y Rat) Rat {
	if y.r == nil {
		return x
	}
	if x.r == nil {
		return Rat{r: new(big.Rat).Neg(y.r)}
	}
	d := new(big.Rat).Sub(x.r, y.r)
	if d.Sign() == 0 {
		return Rat{}
	}
	return Rat{r: d}
}

// Mul returns x · y.
func (x Rat) Mul(y Rat) Rat {
	if x.r == nil || y.r == nil {
		return Rat{}
	}
	return Rat{r: new(big.Rat).Mul(x.r, y.r)}
}

// Div returns x / y. y must be non-zero.
func (x Rat) Div(y Rat) Rat {
	if y.r == nil {
		panic("rat: division by zero")
	}
	if x.r == nil {
		return Rat{}
	}
	return Rat{r: new(big.Rat).Quo(x.r, y.r)}
}

// Inv returns 1/x. x must be non-zero.
func (x Rat) Inv() Rat {
	if x.r == nil {
		panic("rat: inverse of zero")
	}
	return Rat{r: new(big.Rat).Inv(x.r)}
}

// Neg returns -x.
func (x Rat) Neg() Rat {
	if x.r == nil {
		return x
	}
	return Rat{r: new(big.Rat).Neg(x.r)}
}

// Float returns the nearest float64 to x.
func (x Rat) Float() float64 {
	if x.r == nil {
		return 0
	}
	f, _ := x.r.Float64()
	return f
}

// Num returns a copy of the numerator of x in lowest terms.
func (x Rat) Num() *big.Int {
	if x.r == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(x.r.Num())
}

// Den returns a copy of the denominator of x in lowest terms (always > 0).
func (x Rat) Den() *big.Int {
	if x.r == nil {
		return big.NewInt(1)
	}
	return new(big.Int).Set(x.r.Denom())
}

// String formats x as "num/den", or "num" when the denominator is 1.
func (x Rat) String() string {
	if x.r == nil {
		return "0"
	}
	if x.r.IsInt() {
		return x.r.Num().String()
	}
	return x.r.RatString()
}

// Format renders x as a decimal with the given number of fractional digits.
func (x Rat) Format(digits int) string {
	if x.r == nil {
		return "0"
	}
	return x.r.FloatString(digits)
}

// Int64 returns x as an int64 if x is an integer fitting in 64 bits.
func (x Rat) Int64() (int64, bool) {
	if x.r == nil {
		return 0, true
	}
	if !x.r.IsInt() || !x.r.Num().IsInt64() {
		return 0, false
	}
	return x.r.Num().Int64(), true
}

// Equal reports whether x and y are the same rational.
func (x Rat) Equal(y Rat) bool { return x.Cmp(y) == 0 }

// SumInt64 adds a slice of int64 and reports overflow.
func SumInt64(vs []int64) (int64, bool) {
	var s int64
	for _, v := range vs {
		var ok bool
		s, ok = AddCheck(s, v)
		if !ok {
			return 0, false
		}
	}
	return s, true
}

// ErrOverflow reports that a quantity left the int64 range.
type ErrOverflow struct {
	Op string
}

func (e *ErrOverflow) Error() string {
	return fmt.Sprintf("rat: int64 overflow in %s", e.Op)
}
