package rat

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestGcd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{12, 18, 6},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{7, 13, 1},
		{1 << 40, 1 << 20, 1 << 20},
	}
	for _, c := range cases {
		if got := Gcd(c.a, c.b); got != c.want {
			t.Errorf("Gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGcdAll(t *testing.T) {
	if got := GcdAll(); got != 0 {
		t.Errorf("GcdAll() = %d, want 0", got)
	}
	if got := GcdAll(24, 36, 60); got != 12 {
		t.Errorf("GcdAll(24,36,60) = %d, want 12", got)
	}
	if got := GcdAll(7, 9, 5); got != 1 {
		t.Errorf("GcdAll(7,9,5) = %d, want 1", got)
	}
}

func TestLcm(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{0, 5, 0, true},
		{4, 6, 12, true},
		{7, 13, 91, true},
		{1 << 62, 3, 0, false},
	}
	for _, c := range cases {
		got, ok := Lcm(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Lcm(%d,%d) = %d,%v, want %d,%v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestLcmAll(t *testing.T) {
	got, ok := LcmAll(2, 3, 4, 5)
	if !ok || got != 60 {
		t.Errorf("LcmAll(2,3,4,5) = %d,%v, want 60,true", got, ok)
	}
	if got, ok := LcmAll(); !ok || got != 1 {
		t.Errorf("LcmAll() = %d,%v, want 1,true", got, ok)
	}
}

func TestMulAddCheck(t *testing.T) {
	if _, ok := MulCheck(math.MaxInt64, 2); ok {
		t.Error("MulCheck(MaxInt64,2) should overflow")
	}
	if v, ok := MulCheck(1<<31, 1<<31); !ok || v != 1<<62 {
		t.Errorf("MulCheck(2^31,2^31) = %d,%v", v, ok)
	}
	if _, ok := AddCheck(math.MaxInt64, 1); ok {
		t.Error("AddCheck(MaxInt64,1) should overflow")
	}
	if _, ok := AddCheck(math.MinInt64, -1); ok {
		t.Error("AddCheck(MinInt64,-1) should overflow")
	}
	if v, ok := AddCheck(-5, 3); !ok || v != -2 {
		t.Errorf("AddCheck(-5,3) = %d,%v", v, ok)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int64 }{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 5, 0, 1},
		{-1, 5, -1, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.floor {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := CeilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestFloorCeilTo(t *testing.T) {
	// The ⌊x⌋γ and ⌈x⌉γ operators from Section 3.1 of the paper.
	cases := []struct{ a, g, floor, ceil int64 }{
		{7, 3, 6, 9},
		{-7, 3, -9, -6},
		{9, 3, 9, 9},
		{0, 4, 0, 0},
		{-1, 5, -5, 0},
	}
	for _, c := range cases {
		if got := FloorTo(c.a, c.g); got != c.floor {
			t.Errorf("FloorTo(%d,%d) = %d, want %d", c.a, c.g, got, c.floor)
		}
		if got := CeilTo(c.a, c.g); got != c.ceil {
			t.Errorf("CeilTo(%d,%d) = %d, want %d", c.a, c.g, got, c.ceil)
		}
	}
}

func TestFloorCeilToProperties(t *testing.T) {
	f := func(a int32, g32 uint8) bool {
		g := int64(g32)%64 + 1
		x := int64(a)
		fl, ce := FloorTo(x, g), CeilTo(x, g)
		if fl%g != 0 || ce%g != 0 {
			return false
		}
		if fl > x || ce < x {
			return false
		}
		if x-fl >= g || ce-x >= g {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatBasics(t *testing.T) {
	zero := Rat{}
	if !zero.IsZero() || zero.Sign() != 0 || zero.String() != "0" {
		t.Error("zero Rat misbehaves")
	}
	half := NewRat(1, 2)
	third := NewRat(1, 3)
	if half.Cmp(third) != 1 {
		t.Error("1/2 should exceed 1/3")
	}
	sum := half.Add(third)
	if sum.String() != "5/6" {
		t.Errorf("1/2+1/3 = %s, want 5/6", sum)
	}
	if d := half.Sub(half); !d.IsZero() {
		t.Errorf("1/2-1/2 = %s, want 0", d)
	}
	if p := half.Mul(third); p.String() != "1/6" {
		t.Errorf("1/2*1/3 = %s, want 1/6", p)
	}
	if q := half.Div(third); q.String() != "3/2" {
		t.Errorf("(1/2)/(1/3) = %s, want 3/2", q)
	}
	if inv := third.Inv(); inv.String() != "3" {
		t.Errorf("inv(1/3) = %s, want 3", inv)
	}
	if n := half.Neg(); n.String() != "-1/2" {
		t.Errorf("-1/2 = %s", n)
	}
	if f := half.Float(); f != 0.5 {
		t.Errorf("Float(1/2) = %v", f)
	}
}

func TestRatNormalization(t *testing.T) {
	x := NewRat(4, 8)
	if x.Num().Int64() != 1 || x.Den().Int64() != 2 {
		t.Errorf("4/8 not reduced: %s/%s", x.Num(), x.Den())
	}
	y := NewRat(-6, -8)
	if y.String() != "3/4" {
		t.Errorf("-6/-8 = %s, want 3/4", y)
	}
	z := NewRat(6, -8)
	if z.String() != "-3/4" {
		t.Errorf("6/-8 = %s, want -3/4", z)
	}
}

func TestRatInt64(t *testing.T) {
	if v, ok := FromInt(42).Int64(); !ok || v != 42 {
		t.Errorf("Int64(42) = %d,%v", v, ok)
	}
	if _, ok := NewRat(1, 2).Int64(); ok {
		t.Error("Int64(1/2) should fail")
	}
	if v, ok := (Rat{}).Int64(); !ok || v != 0 {
		t.Errorf("Int64(0) = %d,%v", v, ok)
	}
}

func TestRatFromBig(t *testing.T) {
	br := big.NewRat(22, 7)
	x := FromBig(br)
	br.SetInt64(0) // mutate the source; x must be unaffected
	if x.String() != "22/7" {
		t.Errorf("FromBig detached copy failed: %s", x)
	}
	n, d := big.NewInt(10), big.NewInt(4)
	y := FromBigInts(n, d)
	if y.String() != "5/2" {
		t.Errorf("FromBigInts(10,4) = %s, want 5/2", y)
	}
}

func TestRatFormat(t *testing.T) {
	x := NewRat(1, 3)
	if got := x.Format(4); got != "0.3333" {
		t.Errorf("Format(1/3,4) = %q", got)
	}
	if got := (Rat{}).Format(2); got != "0" {
		t.Errorf("Format(0) = %q", got)
	}
}

func TestRatArithmeticProperties(t *testing.T) {
	mk := func(n int16, d uint8) Rat {
		den := int64(d)%20 + 1
		return NewRat(int64(n), den)
	}
	comm := func(an int16, ad uint8, bn int16, bd uint8) bool {
		a, b := mk(an, ad), mk(bn, bd)
		return a.Add(b).Equal(b.Add(a)) && a.Mul(b).Equal(b.Mul(a))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(an int16, ad uint8, bn int16, bd uint8, cn int16, cd uint8) bool {
		a, b, c := mk(an, ad), mk(bn, bd), mk(cn, cd)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	subInverse := func(an int16, ad uint8, bn int16, bd uint8) bool {
		a, b := mk(an, ad), mk(bn, bd)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(subInverse, nil); err != nil {
		t.Error(err)
	}
}

func TestSumInt64(t *testing.T) {
	if s, ok := SumInt64([]int64{1, 2, 3}); !ok || s != 6 {
		t.Errorf("SumInt64 = %d,%v", s, ok)
	}
	if _, ok := SumInt64([]int64{math.MaxInt64, 1}); ok {
		t.Error("SumInt64 overflow not detected")
	}
	if s, ok := SumInt64(nil); !ok || s != 0 {
		t.Errorf("SumInt64(nil) = %d,%v", s, ok)
	}
}

func TestErrOverflow(t *testing.T) {
	e := &ErrOverflow{Op: "lcm"}
	if e.Error() == "" {
		t.Error("empty error message")
	}
}
