module kiter

go 1.24
