// Package kiter is a Go implementation of K-Iter, the optimal and fast
// throughput evaluation algorithm for Cyclo-Static Dataflow Graphs of
// Bodin, Munier-Kordon and Dupont de Dinechin (DAC 2016), together with
// the complete analysis stack the paper builds on and compares against:
//
//   - the CSDF/SDF graph model with consistency analysis and bounded-buffer
//     (back-pressure) modelling;
//   - exact K-periodic throughput evaluation for any periodicity vector K
//     via a bi-valued graph and a maximum cost-to-time ratio solver;
//   - the 1-periodic approximate method and the full-expansion (K = q)
//     optimal baseline;
//   - exact symbolic (self-timed) execution, the state-space baseline;
//   - feasible K-periodic schedule construction with validation, latency
//     and Gantt rendering;
//   - throughput-preserving buffer sizing;
//   - SDF3-flavoured XML and JSON interchange.
//
// # Quick start
//
//	g := kiter.NewGraph("pipeline")
//	a := g.AddTask("A", []int64{1, 2})            // two phases
//	b := g.AddSDFTask("B", 3)                     // one phase
//	g.AddBuffer("ab", a, b, []int64{2, 1}, []int64{1}, 0)
//	res, err := kiter.Throughput(g)               // exact, certified
//	fmt.Println(res.Period, res.Throughput)
//
// All analytical results are exact rationals (see the Rat type): the
// float64 fast path inside the MCRP solver is always certified by exact
// arithmetic before a result is returned.
package kiter

import (
	"context"
	"io"

	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
	"kiter/internal/sched"
	"kiter/internal/sdf3x"
	"kiter/internal/sizing"
	"kiter/internal/symbexec"
)

// Core model types (see internal/csdf for full documentation).
type (
	// Graph is a Cyclo-Static Dataflow Graph.
	Graph = csdf.Graph
	// Task is a CSDF task (actor) with cyclically repeating phases.
	Task = csdf.Task
	// Buffer is a FIFO channel with cyclo-static rates.
	Buffer = csdf.Buffer
	// TaskID and BufferID are dense per-graph identifiers.
	TaskID   = csdf.TaskID
	BufferID = csdf.BufferID
	// Rat is an exact rational number; all periods and throughputs are
	// reported as Rats.
	Rat = rat.Rat
)

// Analysis types.
type (
	// Options tunes the K-periodic analyses.
	Options = kperiodic.Options
	// Evaluation is the result of a K-periodic throughput evaluation.
	Evaluation = kperiodic.Evaluation
	// Result is the outcome of the K-Iter algorithm: an optimal
	// Evaluation plus the iteration trace.
	Result = kperiodic.KIterResult
	// Schedule is a concrete feasible K-periodic schedule.
	Schedule = kperiodic.Schedule
	// SymbolicResult is the outcome of symbolic (self-timed) execution.
	SymbolicResult = symbexec.Result
	// SymbolicOptions bounds the symbolic state-space exploration.
	SymbolicOptions = symbexec.Options
	// Firing is one execution of an ASAP trace.
	Firing = symbexec.Firing
	// DeadlockError certifies that a graph admits no schedule.
	DeadlockError = kperiodic.DeadlockError
	// Gantt is a renderable schedule prefix.
	Gantt = sched.Gantt
	// SizingPoint is one sample of the throughput/buffering trade-off.
	SizingPoint = sizing.Point
)

// NewGraph returns an empty graph with the given name.
func NewGraph(name string) *Graph { return csdf.NewGraph(name) }

// Throughput computes the exact maximum throughput of g with the K-Iter
// algorithm (Algorithm 1 of the paper). The result is certified optimal.
func Throughput(g *Graph) (*Result, error) {
	return kperiodic.KIter(g, Options{})
}

// ThroughputWith is Throughput with explicit options.
func ThroughputWith(g *Graph, opt Options) (*Result, error) {
	return kperiodic.KIter(g, opt)
}

// ThroughputCtx is Throughput with cancellation: the context is polled in
// the K-Iter loop and inside each round's graph expansion, so a long
// analysis stops promptly once the caller gives up.
func ThroughputCtx(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	return kperiodic.KIterCtx(ctx, g, opt)
}

// ThroughputSymbolicCtx is ThroughputSymbolic with cancellation.
func ThroughputSymbolicCtx(ctx context.Context, g *Graph, opt SymbolicOptions) (*SymbolicResult, error) {
	return symbexec.RunCtx(ctx, g, opt)
}

// Fingerprint returns the canonical structural hash of g as a hex string:
// two graphs share it exactly when they are structurally identical
// (names excluded). It is the memoization key used by the analysis engine
// behind the kiterd server.
func Fingerprint(g *Graph) string { return g.FingerprintHex() }

// ThroughputPeriodic runs the 1-periodic approximate method [Bodin et al.,
// ESTIMedia'13]: fast, but the returned throughput is only a lower bound
// unless Optimal is set on the result.
func ThroughputPeriodic(g *Graph, opt Options) (*Evaluation, error) {
	return kperiodic.Evaluate1(g, opt)
}

// ThroughputK evaluates the best K-periodic schedule for a fixed K.
func ThroughputK(g *Graph, K []int64, opt Options) (*Evaluation, error) {
	return kperiodic.EvaluateK(g, K, opt)
}

// ThroughputExpansion evaluates with K = q (classical full expansion) —
// always optimal, exponentially large on multirate graphs.
func ThroughputExpansion(g *Graph, opt Options) (*Evaluation, error) {
	return kperiodic.Expansion(g, opt)
}

// ThroughputSymbolic computes the exact throughput by self-timed symbolic
// execution (the baseline of Stuijk et al. [16]).
func ThroughputSymbolic(g *Graph, opt SymbolicOptions) (*SymbolicResult, error) {
	return symbexec.Run(g, opt)
}

// BuildSchedule materializes an optimal feasible K-periodic schedule for a
// fixed periodicity vector.
func BuildSchedule(g *Graph, K []int64, opt Options) (*Schedule, error) {
	return kperiodic.ScheduleK(g, K, opt)
}

// Simulate runs the self-timed execution for a finite horizon and returns
// the firings started before it (for Gantt charts) and whether the
// execution deadlocked.
func Simulate(g *Graph, horizon int64) ([]Firing, bool, error) {
	return symbexec.Simulate(g, horizon)
}

// GanttFromTrace renders an ASAP trace; GanttFromSchedule renders a
// K-periodic schedule prefix.
func GanttFromTrace(g *Graph, trace []Firing, title string) *Gantt {
	return sched.FromTrace(g, trace, title)
}

// GanttFromSchedule renders the first iterations of a K-periodic schedule.
func GanttFromSchedule(g *Graph, s *Schedule, iterations int64, title string) *Gantt {
	return sched.FromSchedule(g, s, iterations, title)
}

// IterationLatency returns the makespan of the first graph iteration of a
// schedule.
func IterationLatency(g *Graph, s *Schedule) Rat {
	return sched.IterationLatency(g, s)
}

// OptimalCapacities returns per-buffer capacities preserving the exact
// maximum throughput, with that optimal period.
func OptimalCapacities(g *Graph) ([]int64, Rat, error) {
	return sizing.OptimalCapacities(g, Options{})
}

// BufferTradeOff samples the throughput/buffering trade-off curve at the
// given uniform capacity scales.
func BufferTradeOff(g *Graph, scales []int64) ([]SizingPoint, error) {
	return sizing.TradeOff(g, scales, Options{})
}

// MinUniformScale searches the smallest uniform capacity slack reaching
// the target period.
func MinUniformScale(g *Graph, target Rat, maxScale int64) (int64, error) {
	return sizing.MinUniformScale(g, target, maxScale, Options{})
}

// ReadFile loads a graph from .json or .xml (SDF3-flavoured) files;
// WriteFile saves one.
func ReadFile(path string) (*Graph, error) { return sdf3x.ReadFile(path) }

// WriteFile saves a graph to .json or .xml, dispatching on the extension.
func WriteFile(path string, g *Graph) error { return sdf3x.WriteFile(path, g) }

// ReadJSON and friends operate on streams.
func ReadJSON(r io.Reader) (*Graph, error)  { return sdf3x.ReadJSON(r) }
func WriteJSON(w io.Writer, g *Graph) error { return sdf3x.WriteJSON(w, g) }
func ReadXML(r io.Reader) (*Graph, error)   { return sdf3x.ReadXML(r) }
func WriteXML(w io.Writer, g *Graph) error  { return sdf3x.WriteXML(w, g) }

// Figure2 returns the paper's running example graph (Figure 2).
func Figure2() *Graph { return gen.Figure2() }

// SampleRateConverter returns the classical CD-to-DAT rate converter SDFG.
func SampleRateConverter() *Graph { return gen.SampleRateConverter() }

// NewRat builds an exact rational (panics on zero denominator); IntRat an
// integer-valued one.
func NewRat(num, den int64) Rat { return rat.NewRat(num, den) }

// IntRat returns v as an exact rational.
func IntRat(v int64) Rat { return rat.FromInt(v) }
