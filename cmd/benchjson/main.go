// Command benchjson runs the tracked performance suite (the same
// internal/bench.PerfCases behind `go test -bench BenchmarkKIter`) through
// testing.Benchmark and writes a machine-readable JSON record of the K-Iter
// hot path: ns/op, bytes/op, allocs/op per case, plus the Algorithm 1 meta
// counters (convergence rounds, expansion size, arcs recomputed vs. replayed
// by the incremental block cache).
//
//	benchjson                                    # writes bench.json
//	benchjson -o BENCH_pr3.json -baseline BENCH_pr2.json
//
// With -baseline, the previous report's "after" numbers are carried into
// the new report's "before" fields (matching cases by name), so a checked-in
// BENCH_*.json documents one optimization step as a before/after pair and
// the series of files records the perf trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"kiter/internal/bench"
	"kiter/internal/kperiodic"
)

// Metrics is one measurement triple from testing.Benchmark.
type Metrics struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// CaseResult is one perf case's record.
type CaseResult struct {
	Name       string          `json:"name"`
	MultiRound bool            `json:"multi_round"`
	KIter      bench.KIterMeta `json:"kiter"`
	Before     *Metrics        `json:"before,omitempty"`
	After      Metrics         `json:"after"`
	// SpeedupNs and AllocsRatio are before/after quotients (>1 = improved),
	// present only when a baseline was supplied.
	SpeedupNs   float64 `json:"speedup_ns,omitempty"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Label     string       `json:"label"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	Cases     []CaseResult `json:"cases"`
}

func main() {
	var (
		out      = flag.String("o", "bench.json", "output path (checked-in reports are written explicitly, e.g. -o BENCH_pr3.json)")
		baseline = flag.String("baseline", "", "previous BENCH_*.json whose after-numbers become this report's before-numbers")
		label    = flag.String("label", "kiter-hot-path", "report label")
		codec    = flag.Bool("codec", false, "measure the result codec instead: JSON-vs-binary record size and encode/decode ns/op on real analysis results")
	)
	flag.Parse()
	var err error
	if *codec {
		err = runCodec(*out, *label)
	} else {
		err = run(*out, *baseline, *label)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, baseline, label string) error {
	before := map[string]Metrics{}
	if baseline != "" {
		buf, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var prev Report
		if err := json.Unmarshal(buf, &prev); err != nil {
			return fmt.Errorf("decoding baseline %s: %w", baseline, err)
		}
		for _, c := range prev.Cases {
			before[c.Name] = c.After
		}
	}

	rep := Report{Label: label, GoVersion: runtime.Version(), GOARCH: runtime.GOARCH}
	opt := bench.Limits{}.KIterOptions()
	for _, pc := range bench.PerfCases() {
		g := pc.Build()
		meta, err := bench.MeasureKIter(g)
		if err != nil {
			return fmt.Errorf("case %s: %w", pc.Name, err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kperiodic.KIter(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		cr := CaseResult{
			Name:       pc.Name,
			MultiRound: pc.MultiRound,
			KIter:      meta,
			After: Metrics{
				NsOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				BytesOp:  res.AllocedBytesPerOp(),
				AllocsOp: res.AllocsPerOp(),
			},
		}
		if b, ok := before[pc.Name]; ok {
			bb := b
			cr.Before = &bb
			if cr.After.NsOp > 0 {
				cr.SpeedupNs = bb.NsOp / cr.After.NsOp
			}
			if cr.After.AllocsOp > 0 {
				cr.AllocsRatio = float64(bb.AllocsOp) / float64(cr.After.AllocsOp)
			}
		}
		fmt.Printf("%-12s %12.0f ns/op %10d B/op %8d allocs/op  rounds=%d built=%d reused=%d\n",
			pc.Name, cr.After.NsOp, cr.After.BytesOp, cr.After.AllocsOp,
			meta.Rounds, meta.ArcsBuilt, meta.ArcsReused)
		rep.Cases = append(rep.Cases, cr)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(out, buf, 0o644)
}
