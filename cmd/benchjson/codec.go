package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"kiter/internal/csdf"
	"kiter/internal/engine"
	"kiter/internal/gen"
	"kiter/internal/resultcodec"
)

// CodecCase compares the two result encodings on one real analysis result:
// record size and encode/decode cost for encoding/json versus
// internal/resultcodec — the frames cachedisk segments store and the
// cluster's cache/claim endpoints move.
type CodecCase struct {
	Name       string `json:"name"`
	JSONBytes  int    `json:"json_bytes"`
	CodecBytes int    `json:"codec_bytes"`
	// SizeRatio is json/codec (>1 = the binary frame is smaller).
	SizeRatio     float64 `json:"size_ratio"`
	JSONEncodeNs  float64 `json:"json_encode_ns_op"`
	JSONDecodeNs  float64 `json:"json_decode_ns_op"`
	CodecEncodeNs float64 `json:"codec_encode_ns_op"`
	CodecDecodeNs float64 `json:"codec_decode_ns_op"`
}

// CodecReport is the BENCH_codec_*.json document.
type CodecReport struct {
	Label     string      `json:"label"`
	GoVersion string      `json:"go_version"`
	GOARCH    string      `json:"goarch"`
	Cases     []CodecCase `json:"cases"`
}

// codecGraphs is the fixture set: the paper's running examples plus a
// generated mimicdsp instance, analyzed with every section populated so the
// comparison covers the full Result surface.
func codecGraphs() (map[string]*csdf.Graph, []string, error) {
	suite, err := gen.SuiteByName("mimicdsp", 1, 1)
	if err != nil {
		return nil, nil, err
	}
	if len(suite.Graphs) == 0 {
		return nil, nil, fmt.Errorf("mimicdsp suite came back empty")
	}
	order := []string{"figure2", "samplerate", "mimicdsp"}
	return map[string]*csdf.Graph{
		"figure2":    gen.Figure2(),
		"samplerate": gen.SampleRateConverter(),
		"mimicdsp":   suite.Graphs[0],
	}, order, nil
}

func runCodec(out, label string) error {
	e := engine.New(engine.Config{Workers: 2})
	defer e.Close()
	graphs, order, err := codecGraphs()
	if err != nil {
		return err
	}
	rep := CodecReport{Label: label, GoVersion: runtime.Version(), GOARCH: runtime.GOARCH}
	for _, name := range order {
		res, err := e.Submit(context.Background(), &engine.Request{
			Graph:  graphs[name],
			Method: engine.MethodKIter,
			Analyses: []engine.AnalysisKind{
				engine.AnalysisThroughput, engine.AnalysisSchedule, engine.AnalysisSizing,
			},
		})
		if err != nil {
			return fmt.Errorf("case %s: %w", name, err)
		}
		// Strip the per-submission fields exactly as the cache and wire
		// paths do, so the comparison measures stored records.
		res.Graph = ""
		res.CacheHit = false
		res.Deduped = false

		jsonBytes, err := json.Marshal(res)
		if err != nil {
			return err
		}
		frame := resultcodec.Encode(res)
		cc := CodecCase{
			Name:       name,
			JSONBytes:  len(jsonBytes),
			CodecBytes: len(frame),
		}
		if len(frame) > 0 {
			cc.SizeRatio = float64(len(jsonBytes)) / float64(len(frame))
		}
		cc.JSONEncodeNs = benchNs(func() { _, _ = json.Marshal(res) })
		cc.JSONDecodeNs = benchNs(func() {
			var r engine.Result
			_ = json.Unmarshal(jsonBytes, &r)
		})
		cc.CodecEncodeNs = benchNs(func() { _ = resultcodec.Encode(res) })
		cc.CodecDecodeNs = benchNs(func() { _, _ = resultcodec.Decode(frame) })
		fmt.Printf("%-12s json=%6dB codec=%6dB (%.2fx)  enc %7.0f vs %7.0f ns  dec %7.0f vs %7.0f ns\n",
			name, cc.JSONBytes, cc.CodecBytes, cc.SizeRatio,
			cc.JSONEncodeNs, cc.CodecEncodeNs, cc.JSONDecodeNs, cc.CodecDecodeNs)
		rep.Cases = append(rep.Cases, cc)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(out, buf, 0o644)
}

// benchNs measures one operation via testing.Benchmark.
func benchNs(op func()) float64 {
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	return float64(res.T.Nanoseconds()) / float64(res.N)
}
