// Command gengraph emits the benchmark graphs of the evaluation to disk in
// JSON or SDF3-flavoured XML, so they can be inspected, re-used or fed to
// other tools.
//
//	gengraph -out bench/ -format xml
//	gengraph -out bench/ -suite table2 -format json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kiter/internal/bench"
	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/sdf3x"
)

func main() {
	var (
		out     = flag.String("out", "benchgraphs", "output directory")
		suite   = flag.String("suite", "all", "table1 | table2 | fixtures | all")
		format  = flag.String("format", "json", "json | xml")
		mimic   = flag.Int("mimic", 10, "MimicDSP graph count")
		lghsdf  = flag.Int("lghsdf", 10, "LgHSDF graph count")
		lgtrans = flag.Int("lgtransient", 10, "LgTransient graph count")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*out, *suite, *format, *mimic, *lghsdf, *lgtrans, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(out, suite, format string, mimic, lghsdf, lgtrans int, seed int64) error {
	if format != "json" && format != "xml" {
		return fmt.Errorf("unknown format %q", format)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	emit := func(dir string, g *csdf.Graph) error {
		if err := os.MkdirAll(filepath.Join(out, dir), 0o755); err != nil {
			return err
		}
		path := filepath.Join(out, dir, g.Name+"."+format)
		if err := sdf3x.WriteFile(path, g); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Println("wrote", path)
		return nil
	}
	if suite == "fixtures" || suite == "all" {
		fig1, _ := gen.Figure1()
		for _, g := range []*csdf.Graph{fig1, gen.Figure2(), gen.SampleRateConverter(), gen.MultiRateCycle(), gen.CyclicCSDF()} {
			if err := emit("fixtures", g); err != nil {
				return err
			}
		}
	}
	if suite == "table1" || suite == "all" {
		for _, s := range bench.Table1Suites(mimic, lghsdf, lgtrans, seed) {
			for _, g := range s.Graphs {
				if err := emit(s.Name, g); err != nil {
					return err
				}
			}
		}
	}
	if suite == "table2" || suite == "all" {
		for _, spec := range append(gen.IndustrialSpecs(), gen.SyntheticSpecs()...) {
			g, err := gen.Industrial(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gengraph: %s: %v (skipped)\n", spec.Name, err)
				continue
			}
			if err := emit("table2", g); err != nil {
				return err
			}
		}
	}
	return nil
}
