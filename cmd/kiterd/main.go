// Command kiterd serves the concurrent CSDF analysis engine.
//
// HTTP mode (default) exposes a JSON API:
//
//	POST /analyze   analyze a graph (body: a graph in the repository's
//	                JSON format, or an envelope {"graph": …, "analyses":
//	                ["throughput", …], "method": "race", "capacities":
//	                false}); the response carries the analysis result plus
//	                a cache/latency stats snapshot
//	POST /sweep     expand a parametric sweep spec ({"base": graph,
//	                "parameters": [{"name", "target", "values"|"range"},
//	                …]}) into a scenario family and stream one NDJSON line
//	                per scenario plus a closing {"envelope": …} aggregate
//	                (min/max throughput, argmin/argmax, optional Pareto
//	                front); disconnecting cancels the remaining scenarios
//	GET  /healthz   liveness probe; /healthz?ready=1 is the readiness
//	                probe (503 until the engine and cache are serving)
//	GET  /stats     engine telemetry (cache hit rate, latency, race wins)
//	                plus the binary's build/version block
//	GET  /metrics   Prometheus text exposition: request/solve latency
//	                histograms, cache and cluster counters, build info
//
// POST /analyze?trace=1 additionally returns the request's span tree
// (submit → cache lookup → queue wait → solve/analysis phases); with
// -trace-log FILE every analyze request appends its tree as one NDJSON
// line with a request ID. -pprof-addr serves net/http/pprof on a separate
// listener; -version prints the build block and exits.
//
// Batch mode streams a directory (every .json/.xml graph under it) or a
// manifest file (one graph path per line) through the engine in parallel
// and prints one result line per graph:
//
//	kiterd -batch graphs/
//	kiterd -batch manifest.txt -method kiter -analyses throughput,schedule
//	kiterd -batch-suite mimicdsp -batch-count 20 -batch-dir /tmp/suite
//
// With -ndjson, batch mode streams results as newline-delimited JSON in
// completion order — one {"path", "result"} object per line the moment
// each job finishes, then a closing {"summary": …} line — so downstream
// pipeline stages start consuming before the batch ends:
//
//	kiterd -batch graphs/ -ndjson | jq .result.throughput.period
//
// Sweep mode runs one parametric spec file through the same NDJSON
// streaming path and exits non-zero when any scenario fails:
//
//	kiterd -sweep spec.json | jq 'select(.envelope).envelope.maxThroughput'
//
// With -cache-dir, completed results are also persisted to a disk cache
// tier under that directory (memory→disk tiered reads, write-through
// stores), so a restarted or replicated kiterd warm-starts repeat sweeps
// and batches from prior runs; -cache-disk-bytes caps the directory and
// /stats reports per-tier hit counters:
//
//	kiterd -cache-dir /var/cache/kiterd -cache-disk-bytes 268435456
//
// With -peers, N replicas form one analysis fleet: each job is
// consistently hashed onto the member ring and forwarded to its owner
// over an internal POST /cluster/evaluate hop, making the owner's
// singleflight and memo cache deduplicate work fleet-wide. A dead or slow
// owner degrades transparently to local evaluation and is probed back
// into the ring; /stats grows per-peer forwarded/served/failedOver
// counters (see the README's Cluster section for a 3-replica
// walkthrough):
//
//	kiterd -addr 127.0.0.1:9101 -peers 127.0.0.1:9102,127.0.0.1:9103
//
// Clustered replicas also share one result space. -cache-fleet composes a
// fleet cache tier behind the local memory→disk tiers: a miss is answered
// from the key's ring owner over POST /cluster/cache/get (a cold replica
// warm-starts from its peers, including its own shard via the ring
// successor), and every local evaluation is published to its owner.
// -claim-lease (default 30s, 0 disables) extends singleflight across
// processes: before evaluating, a replica claims the key at its ring owner
// over POST /cluster/claim, so duplicate submissions through different
// replicas cost exactly one evaluation even with caching off; a crashed
// holder's lease expires and the key is re-claimed. All of it rides the
// binary result codec (internal/resultcodec) — the same frames the disk
// cache stores — and degrades to local tiers and local solves behind the
// per-peer circuit breakers:
//
//	kiterd -addr 127.0.0.1:9101 -peers 127.0.0.1:9102,127.0.0.1:9103 \
//	       -cache-fleet -claim-lease 30s
//
// HTTP mode drains on SIGTERM/SIGINT: readiness flips to 503 and new
// submissions are refused (503 + Retry-After) while in-flight requests —
// streaming sweeps included — get -drain-timeout to finish; then the disk
// cache is flushed, the final -stats-out snapshot is written, and the
// process exits 0. Under load, requests whose predicted queue wait
// already exceeds their -timeout budget are shed up front with 429 and
// the predicted wait in Retry-After. Per-peer circuit breakers with one
// retried forward cover peer failures; -chaos (or KITER_CHAOS) arms
// fault-injection points for drills (see the README's Operations
// section):
//
//	kiterd -drain-timeout 30s -chaos 'cache.get:error::3,solver.entry:latency:50ms'
//
// Usage:
//
//	kiterd [-addr :8080] [-workers N] [-cache N] [-method race]
//	       [-cache-dir dir] [-cache-disk-bytes N] [-capacities]
//	       [-peers host:port,…] [-self host:port] [-forward-timeout 0]
//	       [-cache-fleet] [-claim-lease 30s]
//	       [-analyses throughput] [-timeout 60s] [-stats-out stats.json]
//	       [-drain-timeout 30s] [-chaos spec]
//	       [-batch dir-or-manifest] [-sweep spec.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"kiter/internal/cachedisk"
	"kiter/internal/cluster"
	"kiter/internal/engine"
	"kiter/internal/faultinject"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/resilience"
	"kiter/internal/symbexec"
	"kiter/internal/telemetry"
)

func main() {
	// run owns all deferred cleanup (engine shutdown, temp suite dirs);
	// exiting from main keeps those defers running on failure.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kiterd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr           = flag.String("addr", ":8080", "HTTP listen address")
		workers        = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 0, "job queue depth (0 = 2×workers)")
		cacheSize      = flag.Int("cache", 4096, "result cache capacity in entries (negative disables)")
		shards         = flag.Int("cache-shards", 16, "result cache shard count")
		cacheDir       = flag.String("cache-dir", "", "directory for a disk result-cache tier under the in-memory one; restarts with the same directory warm-start from prior results (empty = memory only)")
		cacheDiskBytes = flag.Int64("cache-disk-bytes", 256<<20, "disk cache byte quota for -cache-dir; over it the oldest segments are compacted away in the background")
		statsOut       = flag.String("stats-out", "", "write the final engine stats snapshot as JSON to this file on exit (all modes, including HTTP after a drain)")
		maxPending     = flag.Int("max-pending", 0, "max in-flight jobs before shedding load (0 = 16×(workers+1))")
		method         = flag.String("method", "race", "throughput method: race | kiter | periodic | expansion | symbolic")
		analyses       = flag.String("analyses", "throughput", "comma-separated analyses: throughput,schedule,sizing,symbolic")
		capacities     = flag.Bool("capacities", false, "apply declared buffer capacities before analysis")
		timeout        = flag.Duration("timeout", 60*time.Second, "per-request analysis timeout")
		maxNodes       = flag.Int64("max-nodes", 2_000_000, "bi-valued graph node budget per evaluation (0 = unlimited)")
		maxPairs       = flag.Int64("max-pairs", 50_000_000, "phase-pair budget per evaluation (0 = unlimited)")
		symEvents      = flag.Int64("symbolic-budget", 0, "symbolic execution event budget (0 = default)")
		batch          = flag.String("batch", "", "batch mode: analyze a directory or manifest of graph files and exit")
		batchSuite     = flag.String("batch-suite", "", "batch mode: generate a benchmark suite (actualdsp, mimicdsp, lghsdf, lgtransient) and analyze it")
		batchCount     = flag.Int("batch-count", 20, "graphs to generate with -batch-suite")
		batchSeed      = flag.Int64("batch-seed", 1, "generation seed for -batch-suite")
		batchDir       = flag.String("batch-dir", "", "directory to materialize -batch-suite graphs into (default: temp dir)")
		ndjson         = flag.Bool("ndjson", false, "batch mode: stream one JSON result line per graph as jobs finish, plus a summary line")
		sweepSpec      = flag.String("sweep", "", "sweep mode: expand a parametric spec file into a scenario family, stream NDJSON results and exit")
		peers          = flag.String("peers", "", "comma-separated peer replica addresses (host:port); jobs are consistently hashed across self+peers and forwarded to their owner")
		selfAddr       = flag.String("self", "", "advertised cluster address of this replica (default: derived from -addr); every replica must list it under exactly this string")
		forwardTimeout = flag.Duration("forward-timeout", 0, "per-job cluster forward budget before local fallback (0 = -timeout)")
		cacheFleet     = flag.Bool("cache-fleet", false, "compose a fleet cache tier behind the local tiers: misses are answered from the key's ring owner over /cluster/cache and local results are published to their owner, so cold replicas warm-start from the fleet (requires -peers)")
		claimLease     = flag.Duration("claim-lease", 30*time.Second, "cross-process singleflight lease: before evaluating, claim the key at its ring owner so duplicate submissions through different replicas cost one evaluation; the lease bounds how long a crashed holder blocks a key (0 disables; only with -peers)")
		traceLogPath   = flag.String("trace-log", "", "append every /analyze request's span tree as one NDJSON line to this file")
		traceBuffer    = flag.Int("trace-buffer", 256, "HTTP mode: capacity of the always-on flight recorder behind GET /debug/traces — a bounded ring of recent traces biased toward keeping the slowest and errored ones (0 disables tracing entirely)")
		pprofAddr      = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "HTTP mode: budget for in-flight requests to finish after SIGTERM/SIGINT before connections are cut")
		chaos          = flag.String("chaos", "", "fault-injection spec, e.g. cache.get:error::3,solver.entry:latency:50ms (default: $KITER_CHAOS; empty disables)")
		version        = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()

	if *version {
		printVersion(os.Stdout, readBuildInfo())
		return nil
	}

	chaosSpec := *chaos
	if chaosSpec == "" {
		chaosSpec = os.Getenv("KITER_CHAOS")
	}
	if set, err := faultinject.Parse(chaosSpec); err != nil {
		return fmt.Errorf("parsing -chaos: %w", err)
	} else if set != nil {
		faultinject.Activate(set)
		points := faultinject.Points()
		sort.Strings(points)
		fmt.Fprintf(os.Stderr, "kiterd: chaos armed at %s\n", strings.Join(points, ", "))
	}

	// One registry serves the whole process: the engine and cluster register
	// their histograms into it at construction, and GET /metrics renders it.
	// The Go runtime collector (goroutines, heap, GC pauses, scheduler
	// latency) rides along so every scrape carries process health.
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)

	// The flight recorder is built before the cluster so the cluster's
	// handler-side spans (evaluate/cache/claim served for peers) record
	// into the same buffer the local /analyze roots do.
	var recorder *telemetry.Recorder
	var exemplar *telemetry.ExemplarTracker
	if *traceBuffer > 0 {
		recorder = telemetry.NewRecorder(*traceBuffer)
		exemplar = telemetry.NewExemplarTracker(0)
		exemplar.Register(reg)
	}

	cl, err := buildCluster(*peers, *selfAddr, *addr, *forwardTimeout, *timeout, *workers, *claimLease, reg, recorder)
	if err != nil {
		return err
	}
	var dispatcher engine.Dispatcher
	var claims engine.Claimer
	if cl != nil {
		dispatcher = cl
		if *claimLease > 0 {
			claims = cl
		}
		// The cluster outlives the engine: in-flight dispatches finish
		// during e.Close, then the prober stops.
		defer cl.Close()
	}
	if *cacheFleet && cl == nil {
		return fmt.Errorf("-cache-fleet requires -peers (the fleet tier reads from ring owners)")
	}
	// The local tiers (memory, plus disk with -cache-dir) are built
	// explicitly when clustered: the cluster's cache handlers serve this
	// replica's shard from them, and the fleet tier composes behind them.
	local, err := buildCacheBackend(*cacheDir, *cacheDiskBytes, *shards, *cacheSize)
	if err != nil {
		return err
	}
	if cl != nil && local == nil {
		capacity := *cacheSize
		if capacity == 0 {
			capacity = 4096
		}
		local = engine.NewMemoryCache(*shards, capacity)
	}
	backend := local
	if cl != nil {
		if local != nil {
			cl.SetLocalCache(local)
		}
		if *cacheFleet {
			backend = engine.NewTieredCache(local, cluster.NewRemoteCache(cl))
		}
	}
	e := engine.New(engine.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheCapacity: *cacheSize,
		CacheShards:   *shards,
		CacheBackend:  backend, // nil keeps the engine's default memory cache
		MaxPending:    *maxPending,
		Options:       kperiodic.Options{MaxNodes: *maxNodes, MaxPairs: *maxPairs},
		Symbolic:      symbexec.Options{MaxEvents: *symEvents},
		Dispatcher:    dispatcher,
		Claims:        claims,
		Metrics:       reg,
	})
	defer e.Close()
	build := readBuildInfo()
	registerEngineCollector(reg, e)
	registerBuildInfo(reg, build)
	// Admission control predicts queue waits from the engine's own
	// queue-wait histogram and sheds doomed requests before they occupy a
	// pending slot (HTTP 429; see server.admit for the full ladder).
	adm := resilience.NewAdmission(resilience.Estimator{
		QuantileWait: e.QueueWaitQuantile,
		Pending:      e.PendingJobs,
		Workers:      e.WorkerCount(),
	})
	registerAdmissionCollector(reg, adm)
	if *statsOut != "" {
		// Registered after e.Close's defer, so it unwinds before Close:
		// the snapshot sees the live engine and cache tiers.
		defer func() {
			if err := writeStatsFile(*statsOut, e.Stats()); err != nil {
				fmt.Fprintln(os.Stderr, "kiterd: writing -stats-out:", err)
			}
		}()
	}

	tmpl := requestTemplate{
		Method:     engine.Method(*method),
		Analyses:   parseAnalyses(*analyses),
		Capacities: *capacities,
		Timeout:    *timeout,
	}
	// Fail fast on flag typos rather than per submission (a bad -method
	// would otherwise generate a whole batch suite only to fail every
	// graph, or 400 every HTTP request).
	if !engine.ValidMethod(tmpl.Method) {
		return fmt.Errorf("unknown -method %q (want race, kiter, periodic, expansion or symbolic)", *method)
	}
	for _, a := range tmpl.Analyses {
		if !engine.ValidAnalysis(a) {
			return fmt.Errorf("unknown analysis %q in -analyses (want throughput, schedule, sizing or symbolic)", a)
		}
	}

	switch {
	case *sweepSpec != "":
		return runSweepFile(e, *sweepSpec, tmpl, os.Stdout)
	case *batchSuite != "":
		dir := *batchDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "kiterd-suite-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		suite, err := gen.SuiteByName(*batchSuite, *batchCount, *batchSeed)
		if err != nil {
			return err
		}
		paths, err := gen.WriteSuite(dir, suite)
		if err != nil {
			return err
		}
		return runBatch(e, paths, tmpl, os.Stdout, *ndjson)
	case *batch != "":
		paths, err := collectBatchPaths(*batch)
		if err != nil {
			return err
		}
		return runBatch(e, paths, tmpl, os.Stdout, *ndjson)
	default:
		var traceLog *telemetry.TraceLog
		if *traceLogPath != "" {
			traceLog, err = telemetry.OpenTraceLog(*traceLogPath)
			if err != nil {
				return fmt.Errorf("opening -trace-log: %w", err)
			}
			defer traceLog.Close()
		}
		process := ""
		if cl != nil {
			process = cl.Self()
		}
		srv := newServer(e, tmpl, cl, observability{
			reg: reg, traceLog: traceLog, recorder: recorder,
			exemplar: exemplar, process: process, build: build,
		})
		srv.admission = adm
		if cl != nil {
			fmt.Printf("kiterd: clustered as %s (peers: %s)\n", cl.Self(), *peers)
		}
		return serveHTTP(srv, *addr, *pprofAddr, *drainTimeout)
	}
}

// buildCluster assembles the work-distribution layer from the cluster
// flags: nil (single replica, every job local) without -peers, otherwise a
// consistent-hash fleet of self + peers. The advertised self address
// defaults to the listen address, with a bare ":port" completed to
// 127.0.0.1 — fine for a local fleet, but multi-host fleets must set -self
// to the name the peers dial, because addresses are ring identities.
// workers (the -workers flag, 0 = GOMAXPROCS) sizes the forwarding
// transport's per-peer connection pool to the engine's concurrency.
// claimLease (the -claim-lease flag) enables the cross-process
// singleflight claim client when positive.
func buildCluster(peers, self, addr string, forwardTimeout, requestTimeout time.Duration, workers int, claimLease time.Duration, reg *telemetry.Registry, recorder *telemetry.Recorder) (*cluster.Cluster, error) {
	if peers == "" {
		return nil, nil
	}
	if self == "" {
		self = addr
		if strings.HasPrefix(self, ":") {
			self = "127.0.0.1" + self
		}
	}
	var list []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			list = append(list, p)
		}
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("-peers given but empty")
	}
	if forwardTimeout <= 0 {
		forwardTimeout = requestTimeout
	}
	if forwardTimeout <= 0 {
		// -timeout 0 means unlimited analyses; the forward budget must
		// honor that rather than fall into the cluster's 60s default.
		forwardTimeout = -1
	}
	return cluster.New(cluster.Config{
		Self:           self,
		Peers:          list,
		ForwardTimeout: forwardTimeout,
		Workers:        workers,
		ClaimLease:     claimLease,
		Metrics:        reg,
		Recorder:       recorder,
	})
}

// requestTemplate carries the per-process defaults applied to every
// submission (HTTP bodies may override analyses/method/capacities).
type requestTemplate struct {
	Method     engine.Method
	Analyses   []engine.AnalysisKind
	Capacities bool
	Timeout    time.Duration
}

// buildCacheBackend assembles the engine's memo cache from the cache
// flags: nil (the engine's default in-memory sharded LRU) when no -cache-dir
// is set, otherwise a memory→disk tier sharing the same memory knobs, so a
// restarted kiterd re-answers repeat work from the disk tier while serving
// the hot set from memory.
func buildCacheBackend(dir string, diskBytes int64, shards, capacity int) (engine.CacheBackend, error) {
	if dir == "" {
		return nil, nil
	}
	disk, err := cachedisk.Open(dir, cachedisk.Options{MaxBytes: diskBytes})
	if err != nil {
		return nil, fmt.Errorf("opening -cache-dir: %w", err)
	}
	return engine.NewTieredCache(engine.NewMemoryCache(shards, capacity), disk), nil
}

// writeStatsFile dumps a stats snapshot as indented JSON for -stats-out.
// The write is atomic — temp file in the target directory, fsync-free
// rename over the destination — so a scraper polling the path never reads
// a torn snapshot, only the previous or the new one.
func writeStatsFile(path string, s engine.Stats) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".stats-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func parseAnalyses(s string) []engine.AnalysisKind {
	var out []engine.AnalysisKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, engine.AnalysisKind(part))
		}
	}
	return out
}
