package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"kiter/internal/engine"
	"kiter/internal/resilience"
	"kiter/internal/sweep"
)

// TestDrainOnSIGTERM runs a real kiterd subprocess and exercises the full
// drain contract: SIGTERM mid-sweep flips readiness to 503 while the
// in-flight sweep streams to completion, the final -stats-out snapshot is
// written, and the process exits 0. The -chaos latency clause keeps the
// sweep slow enough that the signal genuinely lands mid-flight.
func TestDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e under -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kiterd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building kiterd: %v\n%s", err, out)
	}

	statsPath := filepath.Join(dir, "stats.json")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-method", "kiter",
		"-chaos", "solver.entry:latency:150ms",
		"-drain-timeout", "20s",
		"-stats-out", statsPath,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The listen address is printed once the bind succeeded.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("kiterd never reported its listen address: %v", sc.Err())
	}

	// Start a streaming sweep: 3×3 scenarios, each padded by the injected
	// 150ms solver latency, so the family is still running when we signal.
	body, err := json.Marshal(sweep.VideoPipelineSpec(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/sweep", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST /sweep: %v", err)
	}
	defer resp.Body.Close()
	lines := bufio.NewScanner(resp.Body)
	lines.Buffer(make([]byte, 1<<20), 1<<20)
	if !lines.Scan() {
		t.Fatalf("sweep stream produced nothing: %v", lines.Err())
	}

	// First scenario line is in: the sweep is mid-flight. Signal.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Readiness must flip to 503 during the drain grace window while
	// liveness stays 200.
	readyDeadline := time.Now().Add(900 * time.Millisecond)
	sawDraining := false
	for time.Now().Before(readyDeadline) {
		r, err := http.Get("http://" + addr + "/healthz?ready=1")
		if err != nil {
			break // listener already closed; the 503 window was missed
		}
		code := r.StatusCode
		r.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawDraining = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("readiness never went 503 while draining")
	}
	if r, err := http.Get("http://" + addr + "/healthz"); err == nil {
		if r.StatusCode != http.StatusOK {
			t.Fatalf("liveness = %d while draining, want 200", r.StatusCode)
		}
		r.Body.Close()
	}
	// New work is refused with a retry hint.
	if r, err := http.Post("http://"+addr+"/analyze", "application/json", strings.NewReader("{}")); err == nil {
		if r.StatusCode != http.StatusServiceUnavailable || r.Header.Get("Retry-After") == "" {
			t.Fatalf("draining /analyze = %d (Retry-After %q), want 503 with hint",
				r.StatusCode, r.Header.Get("Retry-After"))
		}
		r.Body.Close()
	}

	// The in-flight sweep still runs to completion: the stream must end
	// with a full envelope, not a cut connection.
	var env *sweep.Envelope
	for lines.Scan() {
		var el sweepEnvelopeLine
		if err := json.Unmarshal(lines.Bytes(), &el); err == nil && el.Envelope != nil {
			env = el.Envelope
		}
	}
	if err := lines.Err(); err != nil {
		t.Fatalf("sweep stream cut during drain: %v", err)
	}
	if env == nil || env.Completed != env.Scenarios || env.Failed != 0 {
		t.Fatalf("drained sweep envelope = %+v, want all scenarios completed", env)
	}

	// Exit 0, with the final stats snapshot written by run()'s defers.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("kiterd exited non-zero after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("kiterd never exited after drain")
	}
	data, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("final -stats-out missing: %v", err)
	}
	var st engine.Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("final stats snapshot not valid JSON: %v", err)
	}
	if st.Submitted == 0 || st.Evaluations == 0 {
		t.Fatalf("final stats snapshot empty: %+v", st)
	}
}

// record drives one request through the server mux and returns the raw
// recorder, without postAnalyze's 200-only assertion — these tests are
// about the refusal paths.
func record(t *testing.T, srv *server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec
}

// TestAdmissionShedsOverBudget drives the 429 path with a stubbed
// estimator: a predicted wait far past the request budget is refused
// before submission, with the estimate in Retry-After and the shed
// counted on /stats.
func TestAdmissionShedsOverBudget(t *testing.T) {
	srv := newTestServer(t)
	srv.admission = resilience.NewAdmission(resilience.Estimator{
		QuantileWait: func(q float64) float64 { return 10 }, // 10s p90 wait
		Pending:      func() int { return 100 },
		Workers:      1,
	})
	rec := record(t, srv, http.MethodPost, "/analyze", graphBody(t))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1000" { // 10s × 100 backlog
		t.Fatalf("Retry-After = %q, want 1000", ra)
	}
	st := srv.admission.Stats()
	if st.Shed != 1 || st.EstimatedWaitMS == 0 {
		t.Fatalf("admission stats = %+v, want one shed and a live estimate", st)
	}
	// Under budget: admitted and served.
	srv.admission = resilience.NewAdmission(resilience.Estimator{
		QuantileWait: func(q float64) float64 { return 0.001 },
		Pending:      func() int { return 0 },
		Workers:      4,
	})
	if rec := record(t, srv, http.MethodPost, "/analyze", graphBody(t)); rec.Code != http.StatusOK {
		t.Fatalf("underloaded status = %d, want 200; body %s", rec.Code, rec.Body)
	}
}

// TestDrainRejectsNewWork pins the in-process drain contract for every
// work-accepting endpoint and both probes.
func TestDrainRejectsNewWork(t *testing.T) {
	srv := newTestServer(t)
	srv.markReady()
	srv.startDrain()

	rec := record(t, srv, http.MethodPost, "/analyze", graphBody(t))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("draining /analyze = %d (Retry-After %q)", rec.Code, rec.Header().Get("Retry-After"))
	}
	rec = record(t, srv, http.MethodPost, "/sweep", []byte("{}"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /sweep = %d, want 503", rec.Code)
	}
	rec = record(t, srv, http.MethodGet, "/healthz?ready=1", nil)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining readiness = %d %s", rec.Code, rec.Body)
	}
	rec = record(t, srv, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("draining liveness = %d, want 200", rec.Code)
	}
	rec = record(t, srv, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"draining": true`) {
		t.Fatalf("draining /stats = %d %s", rec.Code, rec.Body)
	}
}
