package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"kiter/internal/cluster"
	"kiter/internal/engine"
	"kiter/internal/sdf3x"
)

// maxBodyBytes bounds /analyze and /sweep request bodies (64 MiB covers the
// largest Table 2 instances with room to spare).
const maxBodyBytes = 64 << 20

// server is the HTTP front-end over the analysis engine.
type server struct {
	e    *engine.Engine
	tmpl requestTemplate
	mux  *http.ServeMux
	// maxBody bounds request bodies; overridable in tests.
	maxBody int64
}

// newServer builds the HTTP front-end. cl is the optional cluster layer:
// when set, the internal /cluster/evaluate endpoint is mounted so peer
// replicas can forward jobs here, and /stats grows the per-peer cluster
// section (via engine.Stats).
func newServer(e *engine.Engine, tmpl requestTemplate, cl *cluster.Cluster) *server {
	s := &server{e: e, tmpl: tmpl, mux: http.NewServeMux(), maxBody: maxBodyBytes}
	s.mux.HandleFunc("/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	if cl != nil {
		s.mux.Handle("/cluster/evaluate", cl.EvaluateHandler(e, tmpl.Timeout))
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// analyzeEnvelope is the optional request wrapper: a bare graph body (the
// repository's JSON graph format) is accepted too and detected by the
// absence of the "graph" key.
type analyzeEnvelope struct {
	Graph      json.RawMessage `json:"graph"`
	Analyses   []string        `json:"analyses"`
	Method     string          `json:"method"`
	Capacities *bool           `json:"capacities"`
	NoCache    bool            `json:"noCache"`
}

// analyzeResponse is the /analyze reply: the analysis result plus a
// telemetry snapshot taken after the submission, so every response carries
// the serving cache hit-rate and latency counters.
type analyzeResponse struct {
	Result *engine.Result `json:"result"`
	Stats  engine.Stats   `json:"stats"`
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// Probe for the "graph" key to tell an envelope from a bare graph body;
	// envelopes are then decoded strictly so a typo'd knob ("metod",
	// "anlyses") fails loudly instead of silently running the defaults.
	var probe struct {
		Graph json.RawMessage `json:"graph"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var env analyzeEnvelope
	graphJSON := json.RawMessage(body) // bare graph body
	if probe.Graph != nil {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		graphJSON = env.Graph
	}
	g, err := sdf3x.ReadJSON(bytes.NewReader(graphJSON))
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding graph: %v", err)
		return
	}

	req := &engine.Request{
		Graph:           g,
		Analyses:        s.tmpl.Analyses,
		Method:          s.tmpl.Method,
		ApplyCapacities: s.tmpl.Capacities,
		NoCache:         env.NoCache,
	}
	if len(env.Analyses) > 0 {
		req.Analyses = nil
		for _, a := range env.Analyses {
			req.Analyses = append(req.Analyses, engine.AnalysisKind(a))
		}
	}
	if env.Method != "" {
		req.Method = engine.Method(env.Method)
	}
	if env.Capacities != nil {
		req.ApplyCapacities = *env.Capacities
	}

	ctx := r.Context()
	if s.tmpl.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.tmpl.Timeout)
		defer cancel()
	}
	res, err := s.e.Submit(ctx, req)
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrOverloaded):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, engine.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			httpError(w, http.StatusGatewayTimeout, "analysis timed out")
		case errors.Is(err, context.Canceled):
			httpError(w, http.StatusBadRequest, "request cancelled")
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, analyzeResponse{Result: res, Stats: s.e.Stats()})
}

// readBody reads a POST body under the server's size cap, writing the
// 400/413 error response itself when the read fails or the cap is hit.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, false
	}
	if int64(len(body)) > s.maxBody {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.maxBody)
		return nil, false
	}
	return body, true
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.e.Stats().Workers,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.e.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
