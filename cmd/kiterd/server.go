package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"kiter/internal/cluster"
	"kiter/internal/engine"
	"kiter/internal/resilience"
	"kiter/internal/sdf3x"
	"kiter/internal/telemetry"
)

// maxBodyBytes bounds /analyze and /sweep request bodies (64 MiB covers the
// largest Table 2 instances with room to spare).
const maxBodyBytes = 64 << 20

// observability bundles the telemetry seams handed to the server: the
// metrics registry behind GET /metrics, the optional -trace-log NDJSON
// sink, the always-on flight recorder behind GET /debug/traces, the
// exemplar tracker linking /metrics latency to trace IDs, and the build
// block reported by /stats. The zero value is a fully quiet server (no
// /metrics endpoint, no per-request histograms, no trace log, no
// recorder) — what most tests want.
type observability struct {
	reg      *telemetry.Registry
	traceLog *telemetry.TraceLog
	recorder *telemetry.Recorder
	exemplar *telemetry.ExemplarTracker
	// process names this replica in recorded traces — the cluster self
	// address in a fleet, empty standalone.
	process string
	build   buildInfo
}

// server is the HTTP front-end over the analysis engine.
type server struct {
	e    *engine.Engine
	tmpl requestTemplate
	mux  *http.ServeMux
	// cl is the optional cluster layer; the debug trace endpoints use it
	// to fan a ?fleet=1 stitch out to peers.
	cl *cluster.Cluster
	// maxBody bounds request bodies; overridable in tests.
	maxBody int64
	obs     observability
	// httpHist times every request by normalized endpoint and status code;
	// nil (no registry) skips the middleware entirely.
	httpHist *telemetry.HistogramVec
	// ready gates /healthz?ready=1: false until the process finished
	// constructing the engine, cache tiers and cluster and is about to
	// accept traffic. Plain /healthz stays a pure liveness probe — cluster
	// peers probe it to decide ring membership, and a replica that is alive
	// but still warming up must answer those.
	ready atomic.Bool
	// draining flips on SIGTERM: readiness goes 503 and work-accepting
	// endpoints refuse new submissions while in-flight requests (including
	// streaming sweeps) run to completion under the drain budget.
	draining atomic.Bool
	// admission, when non-nil, sheds requests whose estimated queue wait
	// already exceeds their deadline budget (429 before they occupy a
	// pending slot). Nil admits everything — the engine's hard MaxPending
	// cliff is then the only shedding.
	admission *resilience.Admission
	// reqSeq numbers traced requests for the trace log.
	reqSeq atomic.Uint64
}

// newServer builds the HTTP front-end. cl is the optional cluster layer:
// when set, the internal /cluster/evaluate endpoint is mounted so peer
// replicas can forward jobs here, and /stats grows the per-peer cluster
// section (via engine.Stats). obs wires the telemetry seams; the zero
// observability disables all of them.
func newServer(e *engine.Engine, tmpl requestTemplate, cl *cluster.Cluster, obs observability) *server {
	s := &server{e: e, tmpl: tmpl, mux: http.NewServeMux(), cl: cl, maxBody: maxBodyBytes, obs: obs}
	if obs.build == (buildInfo{}) {
		s.obs.build = readBuildInfo()
	}
	s.mux.HandleFunc("/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	if obs.reg != nil {
		s.httpHist = obs.reg.HistogramVec("kiter_http_request_seconds",
			"HTTP request latency by endpoint and status code, in seconds.",
			telemetry.LatencyBuckets, "endpoint", "code")
		s.mux.HandleFunc("/metrics", s.handleMetrics)
	}
	if obs.recorder != nil {
		s.mux.HandleFunc("/debug/traces", s.handleDebugTraces)
		s.mux.HandleFunc("/debug/traces/", s.handleDebugTrace)
	}
	if cl != nil {
		eh := cl.EvaluateHandler(e, tmpl.Timeout)
		s.mux.HandleFunc("/cluster/evaluate", func(w http.ResponseWriter, r *http.Request) {
			// A draining replica refuses forwarded work too: the sending
			// peer's dispatcher falls back to local evaluation, which is
			// exactly where the work must land once this process exits.
			if s.draining.Load() {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, "draining")
				return
			}
			eh.ServeHTTP(w, r)
		})
		// The shared-result-space endpoints. Reads keep serving through a
		// drain — peers warming from this replica's shard cost nothing and
		// beat a recomputation — while writes and claims are refused: a
		// process on its way out must not accept new state or grant leases
		// its exit would strand (callers degrade to local solves).
		s.mux.Handle("/cluster/cache/get", cl.CacheGetHandler())
		ph := cl.CachePutHandler()
		s.mux.HandleFunc("/cluster/cache/put", func(w http.ResponseWriter, r *http.Request) {
			if s.draining.Load() {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, "draining")
				return
			}
			ph.ServeHTTP(w, r)
		})
		ch := cl.ClaimHandler()
		s.mux.HandleFunc("/cluster/claim", func(w http.ResponseWriter, r *http.Request) {
			if s.draining.Load() {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, "draining")
				return
			}
			ch.ServeHTTP(w, r)
		})
	}
	return s
}

// markReady flips the readiness probe to 200. Called once construction is
// complete, immediately before the listener starts accepting.
func (s *server) markReady() { s.ready.Store(true) }

// startDrain rejects new work while in-flight requests finish: readiness
// goes 503 (load balancers stop routing here), /analyze, /sweep and
// /cluster/evaluate refuse new submissions. Liveness stays 200 — the
// process is still up, deliberately finishing its queue.
func (s *server) startDrain() { s.draining.Store(true) }

// admit applies the server's load-control ladder to one work-accepting
// request, writing the refusal itself when the request must not start.
// The contract, from soft to hard:
//
//	429 Too Many Requests — admission control: the estimated queue wait
//	    already exceeds the request's deadline budget, so queueing it
//	    would only burn a pending slot to time out. Retry-After carries
//	    the wait estimate; the request was never submitted.
//	503 Service Unavailable — the hard cliffs: the engine's MaxPending
//	    limit (ErrOverloaded), engine shutdown (ErrClosed), or a draining
//	    process. Retry-After is a floor, not an estimate.
//
// Both are retryable by design; only 429 scales its hint with load.
func (s *server) admit(w http.ResponseWriter) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "draining")
		return false
	}
	if est, shed := s.admission.Check(s.tmpl.Timeout); shed {
		w.Header().Set("Retry-After", retryAfter(est))
		httpError(w, http.StatusTooManyRequests,
			"estimated queue wait %s exceeds the %s request budget", est.Round(time.Millisecond), s.tmpl.Timeout)
		return false
	}
	return true
}

// retryAfter renders a wait estimate as a Retry-After value: whole
// seconds, rounded up, at least 1.
func retryAfter(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// endpointLabel normalizes a request path onto the server's fixed endpoint
// set so the request histogram's label cardinality is bounded by the API
// surface, not by whatever paths clients probe.
func endpointLabel(path string) string {
	switch path {
	case "/analyze", "/sweep", "/healthz", "/stats", "/metrics",
		"/cluster/evaluate", "/cluster/cache/get", "/cluster/cache/put", "/cluster/claim":
		return path
	}
	if strings.HasPrefix(path, "/debug/traces") {
		return "/debug/traces"
	}
	return "other"
}

// traceIDHeader is the response header trace-producing handlers set so the
// middleware can link the request histogram's slowest observation to its
// flight-recorder trace (and so clients learn which trace to pull).
const traceIDHeader = "X-Kiter-Trace-Id"

// requestIDHeader carries the per-request correlation ID: echoed from the
// client when present (and well-formed), generated otherwise, always
// reflected on the response and included in JSON error bodies.
const requestIDHeader = "X-Request-ID"

// statusWriter captures the response code for the request histogram and
// carries the request's correlation ID to error writers downstream.
type statusWriter struct {
	http.ResponseWriter
	code  int
	reqID string
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// RequestID exposes the correlation ID to error body writers (httpError,
// cluster.writeError) through an interface assertion.
func (w *statusWriter) RequestID() string { return w.reqID }

// Flush forwards streaming flushes (the /sweep NDJSON path) through the
// status capture.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID echoes a well-formed client X-Request-ID or mints one.
func (s *server) requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get(requestIDHeader)); id != "" {
		return id
	}
	return fmt.Sprintf("req-%d", s.reqSeq.Add(1))
}

// sanitizeRequestID accepts up to 64 characters of [A-Za-z0-9._-]; anything
// else (header injection, binary junk) is discarded in favor of a
// generated ID.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK, reqID: s.requestID(r)}
	// Reflect the ID on the response and normalize it into the request
	// headers, so handlers (and the cluster handlers' trace records) read
	// one canonical value.
	sw.Header().Set(requestIDHeader, sw.reqID)
	r.Header.Set(requestIDHeader, sw.reqID)
	s.mux.ServeHTTP(sw, r)
	if s.httpHist == nil {
		return
	}
	elapsed := time.Since(start).Seconds()
	ep := endpointLabel(r.URL.Path)
	s.httpHist.With(ep, strconv.Itoa(sw.code)).Observe(elapsed)
	if tid := sw.Header().Get(traceIDHeader); tid != "" {
		s.obs.exemplar.Observe(ep, tid, elapsed)
	}
}

// handleMetrics renders every registered instrument plus the scrape-time
// engine collectors in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WritePrometheus(w)
}

// analyzeEnvelope is the optional request wrapper: a bare graph body (the
// repository's JSON graph format) is accepted too and detected by the
// absence of the "graph" key.
type analyzeEnvelope struct {
	Graph      json.RawMessage `json:"graph"`
	Analyses   []string        `json:"analyses"`
	Method     string          `json:"method"`
	Capacities *bool           `json:"capacities"`
	NoCache    bool            `json:"noCache"`
}

// analyzeResponse is the /analyze reply: the analysis result, and nothing
// else by default — a full engine.Stats snapshot costs a per-request
// allocation walk over every cluster/tier/race-category counter and bloats
// each response with telemetry that grows with the fleet, so it is opt-in
// via ?stats=1 (GET /stats remains the zero-argument way to read it). With
// ?trace=1 the reply also carries the request's span tree and its
// trace-log request ID.
type analyzeResponse struct {
	Result    *engine.Result      `json:"result"`
	Stats     *engine.Stats       `json:"stats,omitempty"`
	RequestID string              `json:"requestId,omitempty"`
	Trace     *telemetry.SpanNode `json:"trace,omitempty"`
}

// boolParam reports whether a query parameter was set truthily.
func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// traceRequested reports whether the client asked for the span tree.
func traceRequested(r *http.Request) bool { return boolParam(r, "trace") }

// statsRequested reports whether the client asked for the stats snapshot.
func statsRequested(r *http.Request) bool { return boolParam(r, "stats") }

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.admit(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// Probe for the "graph" key to tell an envelope from a bare graph body;
	// envelopes are then decoded strictly so a typo'd knob ("metod",
	// "anlyses") fails loudly instead of silently running the defaults.
	var probe struct {
		Graph json.RawMessage `json:"graph"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var env analyzeEnvelope
	graphJSON := json.RawMessage(body) // bare graph body
	if probe.Graph != nil {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		graphJSON = env.Graph
	}
	g, err := sdf3x.ReadJSON(bytes.NewReader(graphJSON))
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding graph: %v", err)
		return
	}

	req := &engine.Request{
		Graph:           g,
		Analyses:        s.tmpl.Analyses,
		Method:          s.tmpl.Method,
		ApplyCapacities: s.tmpl.Capacities,
		NoCache:         env.NoCache,
	}
	if len(env.Analyses) > 0 {
		req.Analyses = nil
		for _, a := range env.Analyses {
			req.Analyses = append(req.Analyses, engine.AnalysisKind(a))
		}
	}
	if env.Method != "" {
		req.Method = engine.Method(env.Method)
	}
	if env.Capacities != nil {
		req.ApplyCapacities = *env.Capacities
	}

	ctx := r.Context()
	if s.tmpl.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.tmpl.Timeout)
		defer cancel()
	}

	// A span tree is built when the client asked for it (?trace=1), the
	// process logs traces (-trace-log), or a flight recorder is running
	// (always the case under -trace-buffer > 0); the engine's
	// instrumentation hangs its submit/solve/analysis children off this
	// root via the context, and — in a fleet — the span's context rides the
	// forward as a traceparent header so the owning replica's handler span
	// joins the same tree.
	wantTrace := traceRequested(r)
	var span *telemetry.Span
	var reqID string
	start := time.Now()
	if wantTrace || s.obs.traceLog != nil || s.obs.recorder != nil {
		reqID = s.middlewareRequestID(w)
		span = telemetry.NewTrace("analyze")
		span.SetAttr("requestId", reqID)
		ctx = telemetry.ContextWithSpan(ctx, span)
		// Expose the trace ID before any write: clients learn which trace
		// to pull, and the middleware links it to the latency exemplar.
		w.Header().Set(traceIDHeader, span.Context().TraceID)
	}
	// finishTrace ends the root, flushes it to the trace log, and files it
	// in the flight recorder; it runs on the error path too, so failed and
	// timed-out requests leave a record (errored traces are exactly the
	// ones the recorder's tail-biased retention fights to keep).
	finishTrace := func(status string, code int) *telemetry.SpanNode {
		if span == nil {
			return nil
		}
		span.SetAttr("status", status)
		span.End()
		node := span.Snapshot()
		if s.obs.traceLog != nil {
			_ = s.obs.traceLog.Append(telemetry.TraceRecord{
				RequestID: reqID, Endpoint: "/analyze", Trace: node,
			})
		}
		if s.obs.recorder != nil {
			s.obs.recorder.Add(telemetry.RecordedTrace{
				TraceID:       span.Context().TraceID,
				RequestID:     reqID,
				Endpoint:      "/analyze",
				Process:       s.obs.process,
				Status:        code,
				Error:         code >= 400,
				StartUnixNano: start.UnixNano(),
				DurMS:         float64(time.Since(start)) / float64(time.Millisecond),
				Root:          node,
			})
		}
		return node
	}

	res, err := s.e.Submit(ctx, req)
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrOverloaded):
			// The hard MaxPending cliff: unlike an admission shed the job
			// was attempted, but the retry hint is the same wait estimate.
			finishTrace("error", http.StatusServiceUnavailable)
			w.Header().Set("Retry-After", retryAfter(s.admission.EstimateWait()))
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, engine.ErrClosed):
			finishTrace("error", http.StatusServiceUnavailable)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			finishTrace("error", http.StatusGatewayTimeout)
			httpError(w, http.StatusGatewayTimeout, "analysis timed out")
		case errors.Is(err, context.Canceled):
			finishTrace("error", http.StatusBadRequest)
			httpError(w, http.StatusBadRequest, "request cancelled")
		default:
			finishTrace("error", http.StatusBadRequest)
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	resp := analyzeResponse{Result: res}
	if statsRequested(r) {
		st := s.e.Stats()
		resp.Stats = &st
	}
	if node := finishTrace("ok", http.StatusOK); node != nil && wantTrace {
		resp.RequestID = reqID
		resp.Trace = node
	}
	writeJSON(w, http.StatusOK, resp)
}

// middlewareRequestID reads the correlation ID the serving middleware
// attached to the response writer; handlers invoked outside the middleware
// (direct mux tests) fall back to a locally numbered ID.
func (s *server) middlewareRequestID(w http.ResponseWriter) string {
	if rw, ok := w.(interface{ RequestID() string }); ok {
		if id := rw.RequestID(); id != "" {
			return id
		}
	}
	return fmt.Sprintf("req-%d", s.reqSeq.Add(1))
}

// readBody reads a POST body under the server's size cap, writing the
// 400/413 error response itself when the read fails or the cap is hit.
// http.MaxBytesReader (not a hand-rolled LimitReader) does the capping so
// an over-cap client's connection is also marked for close: the server
// stops reading the rest of the body and signals Connection: close instead
// of leaving an undrained stream on a keep-alive connection.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", mbe.Limit)
			return nil, false
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, false
	}
	return body, true
}

// handleHealthz serves both probes. The plain GET /healthz is liveness —
// "the process is up and serving HTTP" — and is what cluster peers probe,
// so it answers 200 even while the replica is warming up (an alive replica
// must rejoin the ring). GET /healthz?ready=1 is readiness — 503 until the
// engine, cache tiers and cluster are constructed and the listener is
// accepting — the probe a load balancer should gate traffic on.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if v := r.URL.Query().Get("ready"); v != "" && v != "0" {
		if s.draining.Load() {
			// Draining flips readiness first so load balancers stop routing
			// new traffic here while in-flight requests finish.
			writeJSONIndent(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		if !s.ready.Load() {
			writeJSONIndent(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
			return
		}
		writeJSONIndent(w, http.StatusOK, map[string]any{
			"status":  "ready",
			"workers": s.e.Stats().Workers,
		})
		return
	}
	writeJSONIndent(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.e.Stats().Workers,
	})
}

// statsResponse is the /stats reply: the engine snapshot plus the binary's
// build block, so a fleet scrape can tell replica versions apart.
type statsResponse struct {
	engine.Stats
	Build     buildInfo                  `json:"build"`
	Admission *resilience.AdmissionStats `json:"admission,omitempty"`
	Draining  bool                       `json:"draining,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Stats: s.e.Stats(), Build: s.obs.build, Draining: s.draining.Load()}
	if s.admission != nil {
		st := s.admission.Stats()
		resp.Admission = &st
	}
	writeJSONIndent(w, http.StatusOK, resp)
}

// writeJSON writes a compact JSON response — the hot-path encoder behind
// /analyze, /cluster/evaluate and every error reply. Indentation roughly
// doubles the bytes (and encoder work) of an /analyze result, so pretty
// printing is reserved for the human-facing endpoints via writeJSONIndent.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONIndent pretty-prints for endpoints read by humans (/stats,
// /healthz), where a curl without jq should still be legible.
func writeJSONIndent(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	// Carry the middleware's correlation ID into the error body: a failed
	// call in a client log then names the server-side trace to pull.
	if rw, ok := w.(interface{ RequestID() string }); ok {
		if id := rw.RequestID(); id != "" {
			body["requestId"] = id
		}
	}
	writeJSON(w, code, body)
}
