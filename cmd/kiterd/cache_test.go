package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"kiter/internal/engine"
	"kiter/internal/sweep"
)

// TestSweepRestartServesFromDisk is the warm-restart acceptance path: a
// kiterd with -cache-dir runs a sweep, "restarts" (engine and backend torn
// down, new ones opened over the same directory), reruns the same sweep,
// and answers every scenario from the disk tier — proven by the per-tier
// hit counters on /stats.
func TestSweepRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	spec, err := json.Marshal(sweep.VideoPipelineSpec(3, 3))
	if err != nil {
		t.Fatal(err)
	}

	runSweep := func() (*sweep.Envelope, engine.Stats) {
		t.Helper()
		backend, err := buildCacheBackend(dir, 1<<20, 16, 1024)
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.Config{Workers: 4, CacheBackend: backend})
		defer e.Close() // the "process exit": also closes the disk store
		tmpl := testTemplate()
		tmpl.Method = engine.MethodKIter
		srv := newServer(e, tmpl, nil, observability{})
		code, points, env := postSweep(t, srv, spec)
		if code != http.StatusOK || env == nil {
			t.Fatalf("sweep failed: status %d, envelope %v", code, env)
		}
		if len(points) != env.Scenarios || env.Failed != 0 {
			t.Fatalf("sweep streamed %d points, envelope %+v", len(points), env)
		}
		// Per-tier counters via the HTTP surface, as an operator sees them.
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
		var s engine.Stats
		if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
			t.Fatalf("/stats not decodable: %v", err)
		}
		return env, s
	}

	env1, stats1 := runSweep()
	tiers1 := tiersByName(t, stats1)
	if tiers1["disk"].Hits != 0 {
		t.Fatalf("cold run reported disk hits: %+v", tiers1)
	}
	if tiers1["disk"].Entries == 0 || tiers1["disk"].Bytes == 0 {
		t.Fatalf("cold run persisted nothing: %+v", tiers1)
	}

	env2, stats2 := runSweep()
	tiers2 := tiersByName(t, stats2)
	if tiers2["disk"].Hits == 0 {
		t.Fatalf("restarted sweep answered nothing from disk: %+v", tiers2)
	}
	// Every distinct scenario of the rerun must come from disk: the fresh
	// memory tier misses, the disk tier hits, and nothing is re-evaluated.
	if stats2.Evaluations != 0 {
		t.Fatalf("restarted sweep re-evaluated %d scenarios", stats2.Evaluations)
	}
	if tiers2["memory"].Misses == 0 {
		t.Fatalf("restart should start with a cold memory tier: %+v", tiers2)
	}
	if env2.MinThroughput != env1.MinThroughput || env2.MaxThroughput != env1.MaxThroughput {
		t.Fatalf("disk-served envelope drifted: %+v vs %+v", env2, env1)
	}
}

func tiersByName(t *testing.T, s engine.Stats) map[string]engine.CacheTierStats {
	t.Helper()
	if len(s.CacheTiers) == 0 {
		t.Fatalf("stats carry no cache tiers: %+v", s)
	}
	out := map[string]engine.CacheTierStats{}
	for _, ts := range s.CacheTiers {
		out[ts.Tier] = ts
	}
	return out
}
