package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kiter/internal/cluster"
	"kiter/internal/engine"
	"kiter/internal/faultinject"
	"kiter/internal/resilience"
	"kiter/internal/sweep"
	"kiter/internal/telemetry"
)

// chaosReplica is one full in-process kiterd stack: engine + disk cache
// tier + cluster + the real HTTP server with admission control, exactly
// what `kiterd -peers ... -cache-dir ...` assembles.
type chaosReplica struct {
	addr string
	eng  *engine.Engine
	cl   *cluster.Cluster
	hs   *http.Server
	rec  *telemetry.Recorder
}

// startKiterdFleet boots n full replica stacks on loopback ports and
// returns them with an idempotent stop function.
func startKiterdFleet(t *testing.T, n int) ([]*chaosReplica, func()) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	reps := make([]*chaosReplica, n)
	for i := range reps {
		reg := telemetry.NewRegistry()
		backend, err := buildCacheBackend(t.TempDir(), 8<<20, 4, 256)
		if err != nil {
			t.Fatalf("cache backend: %v", err)
		}
		rec := telemetry.NewRecorder(256)
		cl, err := cluster.New(cluster.Config{
			Self:             addrs[i],
			Peers:            addrs,
			ForwardTimeout:   10 * time.Second,
			ProbeInterval:    20 * time.Millisecond,
			MaxProbeInterval: 100 * time.Millisecond,
			RetryBackoff:     2 * time.Millisecond,
			Metrics:          reg,
			Recorder:         rec,
		})
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", addrs[i], err)
		}
		eng := engine.New(engine.Config{
			Workers:      2,
			Dispatcher:   cl,
			CacheBackend: backend,
			Metrics:      reg,
		})
		registerEngineCollector(reg, eng)
		adm := resilience.NewAdmission(resilience.Estimator{
			QuantileWait: eng.QueueWaitQuantile,
			Pending:      eng.PendingJobs,
			Workers:      eng.WorkerCount(),
		})
		registerAdmissionCollector(reg, adm)
		tmpl := requestTemplate{
			Method:   engine.MethodRace,
			Analyses: []engine.AnalysisKind{engine.AnalysisThroughput},
			Timeout:  30 * time.Second,
		}
		srv := newServer(eng, tmpl, cl, observability{
			reg: reg, recorder: rec,
			exemplar: telemetry.NewExemplarTracker(0), process: addrs[i],
		})
		srv.admission = adm
		srv.markReady()
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i])
		reps[i] = &chaosReplica{addr: addrs[i], eng: eng, cl: cl, hs: hs, rec: rec}
	}
	var stopped bool
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		for _, r := range reps {
			r.hs.Close()
		}
		for _, r := range reps {
			r.eng.Close()
		}
		for _, r := range reps {
			r.cl.Close()
		}
	}
	t.Cleanup(stop)
	return reps, stop
}

// chaosSweepBody is the shared sweep fixture: 5×5 video-pipeline
// scenarios under the racing portfolio.
func chaosSweepBody(t *testing.T) []byte {
	t.Helper()
	spec := sweep.VideoPipelineSpec(5, 5)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// streamSweep POSTs a sweep to one replica and consumes the NDJSON
// stream, invoking onLine after each scenario line and returning the
// closing envelope.
func streamSweep(t *testing.T, addr string, body []byte, onLine func(n int)) *sweep.Envelope {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/sweep", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST /sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sweep: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var env *sweep.Envelope
	lines := 0
	for sc.Scan() {
		line := sc.Bytes()
		var el sweepEnvelopeLine
		if err := json.Unmarshal(line, &el); err == nil && el.Envelope != nil {
			env = el.Envelope
			continue
		}
		lines++
		if onLine != nil {
			onLine(lines)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading sweep stream: %v", err)
	}
	if env == nil {
		t.Fatal("sweep stream ended without an envelope line")
	}
	return env
}

// requireSameEnvelope compares everything deterministic about two sweep
// envelopes, ignoring wall-clock and engine-stats noise.
func requireSameEnvelope(t *testing.T, got, want *sweep.Envelope) {
	t.Helper()
	if got.Scenarios != want.Scenarios || got.Completed != want.Completed ||
		got.Failed != want.Failed || got.AnalysisErrors != want.AnalysisErrors {
		t.Fatalf("envelope counters diverge: got %d/%d/%d/%d, want %d/%d/%d/%d",
			got.Scenarios, got.Completed, got.Failed, got.AnalysisErrors,
			want.Scenarios, want.Completed, want.Failed, want.AnalysisErrors)
	}
	if got.MinThroughput != want.MinThroughput || got.MaxThroughput != want.MaxThroughput ||
		got.MinPeriod != want.MinPeriod || got.MaxPeriod != want.MaxPeriod {
		t.Fatalf("envelope extremes diverge: got [%s, %s], want [%s, %s]",
			got.MinThroughput, got.MaxThroughput, want.MinThroughput, want.MaxThroughput)
	}
	if got.ArgMinIndex != want.ArgMinIndex || got.ArgMaxIndex != want.ArgMaxIndex {
		t.Fatalf("arg extremes diverge: got %d/%d, want %d/%d",
			got.ArgMinIndex, got.ArgMaxIndex, want.ArgMinIndex, want.ArgMaxIndex)
	}
	if len(got.Pareto) != len(want.Pareto) {
		t.Fatalf("pareto sizes diverge: %d vs %d", len(got.Pareto), len(want.Pareto))
	}
}

// fetchStats scrapes one replica's /stats endpoint.
func fetchStats(t *testing.T, addr string) statsResponse {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatalf("GET /stats on %s: %v", addr, err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	return st
}

// TestChaosSweepSurvivesFaults is the fault-tolerance acceptance test: a
// 3-replica fleet runs a sweep while chaos injects solver panics, disk
// cache read errors and forward failures, and one peer is killed
// mid-stream. The envelope must be byte-for-byte the clean run's — every
// fault absorbed by recovery, fallback or retry — with the recovery
// counters visible on /stats and /metrics and zero crashes.
func TestChaosSweepSurvivesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e under -short")
	}
	body := chaosSweepBody(t)

	// Reference run: a clean fleet, no faults.
	cleanReps, stopClean := startKiterdFleet(t, 3)
	cleanEnv := streamSweep(t, cleanReps[0].addr, body, nil)
	stopClean()
	if cleanEnv.Failed != 0 || cleanEnv.Completed != cleanEnv.Scenarios {
		t.Fatalf("clean run not clean: %+v", cleanEnv)
	}

	// Chaos run: fresh fleet (fresh caches and counters), armed faults.
	//   - the symbolic race contestant always panics (recovered per
	//     contestant; K-Iter / 1-periodic still certify optimality)
	//   - the first 6 disk-cache reads fail (degrade to miss)
	//   - the first 2 forward attempts fail (exercise retry + breaker
	//     accounting without a network fault)
	set, err := faultinject.Parse("solver.symbolic:panic,cache.get:error::6,dispatch.forward:error::2")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(set)
	defer faultinject.Activate(nil)

	reps, _ := startKiterdFleet(t, 3)
	killed := false
	env := streamSweep(t, reps[0].addr, body, func(n int) {
		// Kill replica 2's HTTP server a few scenarios in: forwards to it
		// start failing for real, its breaker opens on the killers'
		// peers, and its keys spill to the survivors.
		if n == 3 && !killed {
			killed = true
			reps[2].hs.Close()
		}
	})
	requireSameEnvelope(t, env, cleanEnv)

	// Recovery counters: solver panics were recovered (the losing
	// contestants finish asynchronously, so poll briefly), forwards
	// failed over and retried, and at least one breaker opened.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var panics uint64
		for _, r := range reps[:2] {
			panics += r.eng.Stats().Panics
		}
		if panics > 0 || time.Now().After(deadline) {
			if panics == 0 {
				t.Fatal("no recovered solver panics counted")
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var failedOver, retried, opens uint64
	var panics uint64
	for _, r := range reps[:2] { // replica 2's server is dead; read engines directly
		st := fetchStats(t, r.addr)
		panics += st.Panics
		for _, p := range st.Cluster {
			failedOver += p.FailedOver
			retried += p.Retried
			opens += p.BreakerOpens
		}
	}
	if panics == 0 {
		t.Fatal("/stats shows no recovered panics")
	}
	if failedOver == 0 || retried == 0 || opens == 0 {
		t.Fatalf("recovery counters missing: failedOver=%d retried=%d breakerOpens=%d",
			failedOver, retried, opens)
	}

	// The same counters surface on the Prometheus exposition.
	resp, err := http.Get("http://" + reps[0].addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	expo := string(raw)
	for _, family := range []string{
		"kiter_panics_total",
		"kiter_cluster_breaker_state",
		"kiter_cluster_breaker_opens_total",
		"kiter_cluster_retried_total",
		"kiter_admission_shed_total",
	} {
		if !strings.Contains(expo, family) {
			t.Fatalf("/metrics missing %s family:\n%.2000s", family, expo)
		}
	}

	// Artifacts for the CI chaos-smoke step: final stats snapshots.
	if dir := os.Getenv("CHAOS_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			for i, r := range reps[:2] {
				_ = writeStatsFile(filepath.Join(dir, fmt.Sprintf("chaos-replica-%d.json", i)), r.eng.Stats())
			}
			_ = os.WriteFile(filepath.Join(dir, "chaos-metrics.prom"), []byte(expo), 0o644)
		}
	}
}
