package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"

	"kiter/internal/engine"
	"kiter/internal/sweep"
)

// sweepEnvelopeLine closes a sweep stream with the aggregate.
type sweepEnvelopeLine struct {
	Envelope *sweep.Envelope `json:"envelope"`
}

// handleSweep serves POST /sweep: a parametric sweep spec in, one NDJSON
// line per scenario out (in completion order, flushed as produced), then a
// single {"envelope": …} line. Disconnecting mid-stream cancels every
// scenario still in flight.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Same admission/drain ladder as /analyze (429 shed, 503 draining);
	// a sweep admitted before the drain signal streams to completion.
	if !s.admit(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	spec, err := sweep.ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.tmpl.applySpec(spec)
	x, err := sweep.Compile(spec, s.tmpl.Capacities)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// From here on the response is a stream: the status line is committed
	// before the first scenario resolves, so runtime failures surface as
	// an envelope-less error line rather than a status change.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(p sweep.Point) error {
		if err := enc.Encode(p); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// The configured analysis timeout applies per scenario, not to the
	// sweep as a whole: a long family of fast solves streams to completion
	// while one pathological scenario still cannot pin a worker forever.
	runner := sweep.Runner{Engine: s.e, PointTimeout: s.tmpl.Timeout}
	env, err := runner.Run(r.Context(), x, emit)
	if err != nil {
		// The client is usually gone (emit error / context cancel); write
		// the error line anyway for proxies that buffered the stream.
		_ = enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	_ = enc.Encode(sweepEnvelopeLine{Envelope: env})
	if flusher != nil {
		flusher.Flush()
	}
}

// applySpec fills a spec's unset analysis knobs from the per-process
// defaults, mirroring what /analyze does for its envelope.
func (tmpl requestTemplate) applySpec(spec *sweep.Spec) {
	if spec.Method == "" {
		spec.Method = string(tmpl.Method)
	}
	if len(spec.Analyses) == 0 {
		for _, a := range tmpl.Analyses {
			spec.Analyses = append(spec.Analyses, string(a))
		}
	}
}

// runSweepFile is the batch front-end behind kiterd -sweep: it loads a spec
// file, streams the family through the engine, writes one NDJSON line per
// scenario plus the closing envelope line to out, and fails (non-zero exit
// through main) when any scenario failed to materialize or submit.
func runSweepFile(e *engine.Engine, path string, tmpl requestTemplate, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return err
	}
	tmpl.applySpec(spec)
	x, err := sweep.Compile(spec, tmpl.Capacities)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	// The -timeout budget bounds each scenario, mirroring batch mode's
	// per-graph deadline; the sweep as a whole runs to completion.
	runner := sweep.Runner{Engine: e, PointTimeout: tmpl.Timeout}
	env, err := runner.Run(context.Background(), x, func(p sweep.Point) error {
		return enc.Encode(p)
	})
	if err != nil {
		return err
	}
	if err := enc.Encode(sweepEnvelopeLine{Envelope: env}); err != nil {
		return err
	}
	if env.Failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", env.Failed, env.Scenarios)
	}
	return nil
}
