package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"kiter/internal/engine"
	"kiter/internal/sweep"
	"kiter/internal/telemetry"
)

// sweepEnvelopeLine closes a sweep stream with the aggregate; TraceID names
// the sweep's flight-recorder trace (with its sampled per-scenario spans)
// when the process records traces.
type sweepEnvelopeLine struct {
	Envelope *sweep.Envelope `json:"envelope"`
	TraceID  string          `json:"traceId,omitempty"`
}

// sweepTraceSamples caps the per-scenario spans hung off one sweep's trace:
// scenarios are sampled at a stride that yields at most this many, so a
// 10k-scenario sweep doesn't record a 10k-child span tree.
const sweepTraceSamples = 16

// sweepTrace carries one traced sweep's state: the root span plus the
// sampled per-scenario child spans, opened from scenario goroutines and
// closed from the serialized emit path.
type sweepTrace struct {
	span   *telemetry.Span
	reqID  string
	stride int
	mu     sync.Mutex
	open   map[int]*telemetry.Span
}

// newSweepTrace opens a sweep root span when the server records traces.
func (s *server) newSweepTrace(w http.ResponseWriter, total int) *sweepTrace {
	if s.obs.recorder == nil {
		return nil
	}
	stride := (total + sweepTraceSamples - 1) / sweepTraceSamples
	if stride < 1 {
		stride = 1
	}
	reqID := s.middlewareRequestID(w)
	span := telemetry.NewTrace("sweep")
	span.SetAttr("requestId", reqID)
	span.SetAttr("scenarios", total)
	span.SetAttr("sampleStride", stride)
	w.Header().Set(traceIDHeader, span.Context().TraceID)
	return &sweepTrace{span: span, reqID: reqID, stride: stride, open: map[int]*telemetry.Span{}}
}

// memberContext is the Runner.MemberContext hook: sampled scenarios get a
// child span carried in their submission context, so the engine's
// submit/solve instrumentation lands under it.
func (t *sweepTrace) memberContext(ctx context.Context, i int) context.Context {
	if t == nil || i%t.stride != 0 {
		return ctx
	}
	mctx, sp := telemetry.StartSpan(ctx, "sweep.scenario")
	if sp == nil {
		return ctx
	}
	sp.SetAttr("scenario", i)
	t.mu.Lock()
	t.open[i] = sp
	t.mu.Unlock()
	return mctx
}

// pointDone closes scenario i's sampled span, if one was opened.
func (t *sweepTrace) pointDone(p sweep.Point) {
	if t == nil {
		return
	}
	t.mu.Lock()
	sp := t.open[p.Scenario]
	delete(t.open, p.Scenario)
	t.mu.Unlock()
	if sp == nil {
		return
	}
	if p.Error != "" {
		sp.SetAttr("error", p.Error)
	}
	sp.End()
}

// finish ends the root and files the sweep in the flight recorder.
func (t *sweepTrace) finish(s *server, status string, failed bool, start time.Time) {
	if t == nil {
		return
	}
	t.span.SetAttr("status", status)
	t.span.End()
	code := http.StatusOK
	if failed {
		code = http.StatusInternalServerError
	}
	s.obs.recorder.Add(telemetry.RecordedTrace{
		TraceID:       t.span.Context().TraceID,
		RequestID:     t.reqID,
		Endpoint:      "/sweep",
		Process:       s.obs.process,
		Status:        code,
		Error:         failed,
		StartUnixNano: start.UnixNano(),
		DurMS:         float64(time.Since(start)) / float64(time.Millisecond),
		Root:          t.span.Snapshot(),
	})
}

// handleSweep serves POST /sweep: a parametric sweep spec in, one NDJSON
// line per scenario out (in completion order, flushed as produced), then a
// single {"envelope": …} line. Disconnecting mid-stream cancels every
// scenario still in flight.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Same admission/drain ladder as /analyze (429 shed, 503 draining);
	// a sweep admitted before the drain signal streams to completion.
	if !s.admit(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	spec, err := sweep.ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.tmpl.applySpec(spec)
	x, err := sweep.Compile(spec, s.tmpl.Capacities)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The sweep's root span (and its sampled per-scenario children) must be
	// opened before the stream commits: the trace ID header has to precede
	// the status line.
	start := time.Now()
	trace := s.newSweepTrace(w, x.Total())

	// From here on the response is a stream: the status line is committed
	// before the first scenario resolves, so runtime failures surface as
	// an envelope-less error line rather than a status change.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(p sweep.Point) error {
		trace.pointDone(p)
		if err := enc.Encode(p); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// The configured analysis timeout applies per scenario, not to the
	// sweep as a whole: a long family of fast solves streams to completion
	// while one pathological scenario still cannot pin a worker forever.
	ctx := r.Context()
	if trace != nil {
		ctx = telemetry.ContextWithSpan(ctx, trace.span)
	}
	runner := sweep.Runner{Engine: s.e, PointTimeout: s.tmpl.Timeout, MemberContext: trace.memberContext}
	env, err := runner.Run(ctx, x, emit)
	if err != nil {
		trace.finish(s, "error", true, start)
		// The client is usually gone (emit error / context cancel); write
		// the error line anyway for proxies that buffered the stream.
		_ = enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	trace.finish(s, "ok", false, start)
	line := sweepEnvelopeLine{Envelope: env}
	if trace != nil {
		line.TraceID = trace.span.Context().TraceID
	}
	_ = enc.Encode(line)
	if flusher != nil {
		flusher.Flush()
	}
}

// applySpec fills a spec's unset analysis knobs from the per-process
// defaults, mirroring what /analyze does for its envelope.
func (tmpl requestTemplate) applySpec(spec *sweep.Spec) {
	if spec.Method == "" {
		spec.Method = string(tmpl.Method)
	}
	if len(spec.Analyses) == 0 {
		for _, a := range tmpl.Analyses {
			spec.Analyses = append(spec.Analyses, string(a))
		}
	}
}

// runSweepFile is the batch front-end behind kiterd -sweep: it loads a spec
// file, streams the family through the engine, writes one NDJSON line per
// scenario plus the closing envelope line to out, and fails (non-zero exit
// through main) when any scenario failed to materialize or submit.
func runSweepFile(e *engine.Engine, path string, tmpl requestTemplate, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return err
	}
	tmpl.applySpec(spec)
	x, err := sweep.Compile(spec, tmpl.Capacities)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	// The -timeout budget bounds each scenario, mirroring batch mode's
	// per-graph deadline; the sweep as a whole runs to completion.
	runner := sweep.Runner{Engine: e, PointTimeout: tmpl.Timeout}
	env, err := runner.Run(context.Background(), x, func(p sweep.Point) error {
		return enc.Encode(p)
	})
	if err != nil {
		return err
	}
	if err := enc.Encode(sweepEnvelopeLine{Envelope: env}); err != nil {
		return err
	}
	if env.Failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", env.Failed, env.Scenarios)
	}
	return nil
}
