package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kiter/internal/csdf"
	"kiter/internal/engine"
	"kiter/internal/sdf3x"
	"kiter/internal/sweep"
)

// postSweep runs one in-process /sweep request and splits the NDJSON reply.
func postSweep(t *testing.T, srv *server, body []byte) (int, []sweep.Point, *sweep.Envelope) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/sweep", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec.Code, nil, nil
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var points []sweep.Point
	var env *sweep.Envelope
	for i, line := range lines {
		if i == len(lines)-1 {
			var el sweepEnvelopeLine
			if err := json.Unmarshal([]byte(line), &el); err != nil || el.Envelope == nil {
				t.Fatalf("last line is not an envelope: %q (%v)", line, err)
			}
			env = el.Envelope
			break
		}
		var p sweep.Point
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("unparseable point line %q: %v", line, err)
		}
		points = append(points, p)
	}
	return rec.Code, points, env
}

// TestSweepEndToEnd is the subsystem acceptance path: ≥100 scenarios over
// one base graph stream through POST /sweep as one NDJSON line each plus a
// final envelope, and a second overlapping sweep is answered largely from
// the engine cache — the /stats counters prove the reuse.
func TestSweepEndToEnd(t *testing.T) {
	e := engine.New(engine.Config{Workers: 4})
	t.Cleanup(e.Close)
	tmpl := testTemplate()
	tmpl.Method = engine.MethodKIter
	srv := newServer(e, tmpl, nil, observability{})

	spec := sweep.VideoPipelineSpec(10, 10) // 100 scenarios
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, points, env := postSweep(t, srv, body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(points) != 100 || env.Scenarios != 100 {
		t.Fatalf("%d point lines, envelope %+v", len(points), env)
	}
	seen := map[int]bool{}
	for _, p := range points {
		if p.Error != "" {
			t.Fatalf("scenario %d failed: %s", p.Scenario, p.Error)
		}
		if p.Result == nil || p.Result.Throughput == nil || !p.Result.Throughput.Optimal {
			t.Fatalf("scenario %d: no optimal throughput", p.Scenario)
		}
		if len(p.Params) != 2 {
			t.Fatalf("scenario %d params = %v", p.Scenario, p.Params)
		}
		seen[p.Scenario] = true
	}
	if len(seen) != 100 {
		t.Fatalf("streamed %d distinct scenarios", len(seen))
	}
	if env.Completed != 100 || env.Failed != 0 {
		t.Fatalf("envelope counts: %+v", env)
	}
	if env.MinThroughput == "" || env.MaxThroughput == "" || env.ArgMin == nil || env.ArgMax == nil {
		t.Fatalf("envelope bounds missing: %+v", env)
	}
	if len(env.Pareto) == 0 {
		t.Fatalf("pareto front empty: %+v", env)
	}

	// Overlapping follow-up sweep: 2 extra columns, the other 100 scenarios
	// are structurally identical to the first sweep's and must come from
	// the cache (or in-flight dedup), visible in the envelope's stats delta
	// and the server-wide /stats.
	spec2 := sweep.VideoPipelineSpec(10, 12)
	body2, err := json.Marshal(spec2)
	if err != nil {
		t.Fatal(err)
	}
	code, points, env = postSweep(t, srv, body2)
	if code != http.StatusOK || len(points) != 120 {
		t.Fatalf("second sweep: status %d, %d points", code, len(points))
	}
	if env.Stats.CacheHits+env.Stats.Deduped < 100 {
		t.Fatalf("second sweep reused %d+%d results, want ≥ 100 (stats %+v)",
			env.Stats.CacheHits, env.Stats.Deduped, env.Stats)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var s engine.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.CacheHits+s.Deduped == 0 {
		t.Fatal("/stats shows no cache or singleflight reuse across sweeps")
	}
}

func TestSweepRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)
	chain := `{"tasks":[{"name":"A","durations":[1]}]}`
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "nope", http.StatusBadRequest},
		{"unknown spec field", `{"base": ` + chain + `, "vaules": []}`, http.StatusBadRequest},
		{"no parameters", `{"base": ` + chain + `}`, http.StatusBadRequest},
		{"unknown task", `{"base": ` + chain + `, "parameters": [{"name": "p", "target": {"kind": "duration", "task": "Z"}, "values": [1]}]}`, http.StatusBadRequest},
		{"inverted range", `{"base": ` + chain + `, "parameters": [{"name": "p", "target": {"kind": "duration", "task": "A"}, "range": {"from": 9, "to": 1}}]}`, http.StatusBadRequest},
		{"bad method", `{"base": ` + chain + `, "method": "bogus", "parameters": [{"name": "p", "target": {"kind": "duration", "task": "A"}, "values": [1]}]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/sweep", strings.NewReader(c.body)))
		if rec.Code != c.want {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, rec.Code, c.want, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sweep", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /sweep: status = %d, want 405", rec.Code)
	}
}

// TestOversizedBodies lowers the server's body cap and checks both POST
// endpoints shed with 413 instead of reading an unbounded body. The cap is
// enforced by http.MaxBytesReader, so the over-cap read stops mid-body and
// the response carries the byte limit from the *http.MaxBytesError.
func TestOversizedBodies(t *testing.T) {
	srv := newTestServer(t)
	srv.maxBody = 256
	big := `{"base": {"tasks": [{"name": "` + strings.Repeat("x", 400) + `"}]}}`
	for _, path := range []string{"/analyze", "/sweep"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(big)))
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status = %d, want 413", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "256") {
			t.Errorf("%s: 413 body does not name the limit: %s", path, rec.Body)
		}
	}
}

// TestReadBodyMaxBytesError pins readBody's error mapping: an over-cap
// body surfaces as *http.MaxBytesError → 413 (not a generic 400), and a
// body exactly at the cap is read in full.
func TestReadBodyMaxBytesError(t *testing.T) {
	srv := newTestServer(t)
	srv.maxBody = 64

	rec := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/analyze", strings.NewReader(strings.Repeat("a", 65)))
	if _, ok := srv.readBody(rec, r); ok {
		t.Fatal("over-cap body accepted")
	}
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}

	// Exactly at the cap: MaxBytesReader(n) admits n bytes.
	rec = httptest.NewRecorder()
	r = httptest.NewRequest(http.MethodPost, "/analyze", strings.NewReader(strings.Repeat("a", 64)))
	body, ok := srv.readBody(rec, r)
	if !ok || len(body) != 64 {
		t.Fatalf("at-cap body rejected: ok=%v len=%d (status %d)", ok, len(body), rec.Code)
	}
}

// TestAnalyzeEnvelopeUnknownFields: envelopes are decoded strictly (a
// typo'd knob must not silently fall back to defaults), while bare graph
// bodies keep their lenient decoding for compatibility.
func TestAnalyzeEnvelopeUnknownFields(t *testing.T) {
	srv := newTestServer(t)
	env := `{"graph": ` + string(graphBody(t)) + `, "metod": "kiter"}`
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze", strings.NewReader(env)))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "metod") {
		t.Fatalf("typo'd envelope: status %d, body %s", rec.Code, rec.Body)
	}
	// A bare graph with a stray top-level key still analyzes.
	var bare map[string]json.RawMessage
	if err := json.Unmarshal(graphBody(t), &bare); err != nil {
		t.Fatal(err)
	}
	bare["comment"] = json.RawMessage(`"made with <3"`)
	body, _ := json.Marshal(bare)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("bare graph with extra key: status %d, body %s", rec.Code, rec.Body)
	}
}

// slowGraph returns an SDF pair whose K = q expansion has about n nodes —
// an evaluation slow enough (~100ms per 2·10⁵ nodes) to cancel mid-flight.
func slowGraph(n int64) *csdf.Graph {
	g := csdf.NewGraph(fmt.Sprintf("slow-%d", n))
	a := g.AddSDFTask("A", 3)
	b := g.AddSDFTask("B", 2)
	g.AddSDFBuffer("ab", a, b, 1, n, 0)
	g.AddSDFBuffer("ba", b, a, n, 1, n)
	return g
}

// awaitStat polls an engine counter until it passes a threshold.
func awaitStat(t *testing.T, deadline time.Duration, what string, get func() uint64, min uint64) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if get() >= min {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s did not reach %d within %v", what, min, deadline)
}

// TestAnalyzeClientDisconnectCancelsJob drives a slow /analyze over a real
// connection, drops the client once the evaluation is running, and asserts
// the engine's job context was cancelled (the evaluation aborts and is
// counted, rather than running to completion for nobody).
func TestAnalyzeClientDisconnectCancelsJob(t *testing.T) {
	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(e.Close)
	srv := newServer(e, testTemplate(), nil, observability{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	if err := sdf3x.WriteJSON(&buf, slowGraph(1_500_000)); err != nil {
		t.Fatal(err)
	}
	env := fmt.Sprintf(`{"graph": %s, "method": "expansion"}`, buf.String())

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/analyze", strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// The evaluation counter moves when a worker picks the job up; cancel
	// while it is mid-expansion.
	awaitStat(t, 15*time.Second, "evaluations", func() uint64 { return e.Stats().Evaluations }, 1)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("request succeeded despite cancellation")
	}
	awaitStat(t, 15*time.Second, "cancelled jobs", func() uint64 { return e.Stats().Cancelled }, 1)
}

// TestSweepClientDisconnectCancelsJobs streams a slow sweep over a real
// connection, reads the first NDJSON line, then disconnects: in-flight
// scenario solves must be cancelled (job contexts fire) and the engine
// must drain instead of finishing the family for a dead client.
func TestSweepClientDisconnectCancelsJobs(t *testing.T) {
	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(e.Close)
	srv := newServer(e, testTemplate(), nil, observability{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	spec := sweep.Spec{
		Base:    sweep.GraphJSON(slowGraph(400_000)),
		Method:  "expansion",
		NoCache: true,
		Parameters: []sweep.Param{
			{Name: "m0", Target: sweep.Target{Kind: "initial", Buffer: "ba"},
				Range: &sweep.Range{From: 400_000, To: 400_063}},
		},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	// Read one streamed point, proving the sweep is live, then vanish.
	line := make([]byte, 1)
	for {
		if _, err := resp.Body.Read(line); err != nil || line[0] == '\n' {
			break
		}
	}
	cancel()
	awaitStat(t, 20*time.Second, "cancelled jobs", func() uint64 { return e.Stats().Cancelled }, 1)
	// The family stops early: pending drains without evaluating all 64.
	stop := time.Now().Add(20 * time.Second)
	for time.Now().Before(stop) && e.Stats().Pending > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if p := e.Stats().Pending; p != 0 {
		t.Fatalf("engine still has %d pending jobs after disconnect", p)
	}
	if evals := e.Stats().Evaluations; evals >= 64 {
		t.Fatalf("all %d scenarios evaluated despite disconnect", evals)
	}
}

// TestRunSweepFileFailuresExitNonZero runs the -sweep front-end over a spec
// whose rate hits zero: the infeasible scenario is a failed point, the
// stream still carries every line plus the envelope, and the run returns an
// error so kiterd exits non-zero.
func TestRunSweepFileFailuresExitNonZero(t *testing.T) {
	dir := t.TempDir()
	spec := sweep.Spec{
		Base:   sweep.GraphJSON(slowGraph(4)),
		Method: "kiter",
		Parameters: []sweep.Param{
			{Name: "rate", Target: sweep.Target{Kind: "production", Buffer: "ba"},
				Range: &sweep.Range{From: 0, To: 2}},
		},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(e.Close)
	var out bytes.Buffer
	err = runSweepFile(e, path, testTemplate(), &out)
	if err == nil || !strings.Contains(err.Error(), "1 of 3 scenarios failed") {
		t.Fatalf("err = %v, want failure count", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 { // 3 points + envelope
		t.Fatalf("streamed %d lines:\n%s", len(lines), out.String())
	}
	var el sweepEnvelopeLine
	if err := json.Unmarshal([]byte(lines[3]), &el); err != nil || el.Envelope == nil {
		t.Fatalf("missing envelope line: %q", lines[3])
	}
	if el.Envelope.Failed != 1 || el.Envelope.Completed != 2 {
		t.Fatalf("envelope = %+v", el.Envelope)
	}

	// A clean spec returns nil (exit zero).
	clean := spec
	clean.Parameters = []sweep.Param{
		{Name: "m0", Target: sweep.Target{Kind: "initial", Buffer: "ba"},
			Range: &sweep.Range{From: 4, To: 6}},
	}
	data, _ = json.Marshal(clean)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runSweepFile(e, path, testTemplate(), &out); err != nil {
		t.Fatalf("clean sweep failed: %v\n%s", err, out.String())
	}

	// Spec-level failures (unreadable file, bad spec) also error.
	if err := runSweepFile(e, filepath.Join(dir, "missing.json"), testTemplate(), &out); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

// TestBatchSummaryCountsFailures pins the satellite fix: the plain batch
// summary line reports the failure count (and runBatch errors → exit 1).
func TestBatchSummaryCountsFailures(t *testing.T) {
	dir := t.TempDir()
	g := slowGraph(4)
	if err := sdf3x.WriteFile(filepath.Join(dir, "ok.json"), g); err != nil {
		t.Fatal(err)
	}
	paths := []string{filepath.Join(dir, "ok.json"), filepath.Join(dir, "missing.json")}
	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(e.Close)
	var out bytes.Buffer
	err := runBatch(e, paths, testTemplate(), &out, false)
	if err == nil || !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "2 graphs, 1 failed") {
		t.Fatalf("summary line lacks failure count:\n%s", out.String())
	}
}
