package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kiter/internal/cluster"
	"kiter/internal/engine"
)

func TestBuildCluster(t *testing.T) {
	if cl, err := buildCluster("", "", ":8080", 0, time.Minute, 0, 0, nil, nil); err != nil || cl != nil {
		t.Fatalf("no -peers should mean no cluster: %v, %v", cl, err)
	}
	if _, err := buildCluster(" , ", "", ":8080", 0, time.Minute, 0, 0, nil, nil); err == nil {
		t.Fatal("blank -peers accepted")
	}
	cl, err := buildCluster("127.0.0.1:9101, 127.0.0.1:9102", "", ":9100", 0, time.Minute, 0, 0, nil, nil)
	if err != nil {
		t.Fatalf("buildCluster: %v", err)
	}
	defer cl.Close()
	// A bare ":port" listen address is completed to a dialable loopback
	// self identity.
	if cl.Self() != "127.0.0.1:9100" {
		t.Fatalf("derived self = %s", cl.Self())
	}
}

// TestClusteredServersEndToEnd wires two full kiterd servers (engine +
// cluster + mux) together over real sockets and drives the public
// /analyze API: whichever replica receives the request, the fleet
// evaluates the graph once, and /stats exposes the per-peer counters.
func TestClusteredServersEndToEnd(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	start := func(self, peer string, ln net.Listener) (*engine.Engine, *cluster.Cluster) {
		cl, err := buildCluster(peer, self, self, time.Minute, time.Minute, 0, 0, nil, nil)
		if err != nil {
			t.Fatalf("buildCluster(%s): %v", self, err)
		}
		e := engine.New(engine.Config{Workers: 2, Dispatcher: cl})
		hs := &http.Server{Handler: newServer(e, testTemplate(), cl, observability{})}
		go hs.Serve(ln)
		t.Cleanup(func() { hs.Close(); e.Close(); cl.Close() })
		return e, cl
	}
	engA, _ := start(addrA, addrB, lnA)
	engB, _ := start(addrB, addrA, lnB)

	body := graphBody(t)
	for _, target := range []string{addrA, addrB} {
		resp, err := http.Post("http://"+target+"/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /analyze via %s: %v", target, err)
		}
		var reply struct {
			Result *engine.Result `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze via %s: status %d, err %v", target, resp.StatusCode, err)
		}
		if reply.Result.Throughput == nil || !reply.Result.Throughput.Optimal {
			t.Fatalf("analyze via %s: %+v", target, reply.Result)
		}
	}
	if total := engA.Stats().Evaluations + engB.Stats().Evaluations; total != 1 {
		t.Fatalf("fleet evaluations = %d, want 1 (cluster-wide dedup)", total)
	}

	// /stats on the forwarding side reports the cluster section.
	resp, err := http.Get("http://" + addrA + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats engine.Stats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Cluster) != 1 || stats.Cluster[0].Peer != addrB {
		t.Fatalf("stats.Cluster = %+v, want one row for %s", stats.Cluster, addrB)
	}
	moved := stats.RemoteResults + stats.Cluster[0].Served
	if sB := engB.Stats(); moved == 0 && sB.RemoteResults == 0 {
		t.Fatalf("no cross-replica traffic recorded: A=%+v B=%+v", stats.Cluster, sB.Cluster)
	}
}

// TestFleetCacheServersEndToEnd wires three full kiterd servers the way
// main assembles them with -cache-fleet and -claim-lease — explicit local
// memory tier handed to the cluster, fleet tier composed behind it, claims
// enabled — and checks the shared result space over the public API: one
// evaluation fleet-wide, and /stats reporting the fleet tier.
func TestFleetCacheServersEndToEnd(t *testing.T) {
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	peersOf := func(self string) string {
		var out string
		for _, a := range addrs {
			if a != self {
				if out != "" {
					out += ","
				}
				out += a
			}
		}
		return out
	}
	engines := make([]*engine.Engine, 3)
	for i, ln := range lns {
		self := addrs[i]
		cl, err := buildCluster(peersOf(self), self, self, time.Minute, time.Minute, 0, 2*time.Second, nil, nil)
		if err != nil {
			t.Fatalf("buildCluster(%s): %v", self, err)
		}
		local := engine.NewMemoryCache(16, 4096)
		cl.SetLocalCache(local)
		e := engine.New(engine.Config{
			Workers:      2,
			CacheBackend: engine.NewTieredCache(local, cluster.NewRemoteCache(cl)),
			Dispatcher:   cl,
			Claims:       cl,
		})
		hs := &http.Server{Handler: newServer(e, testTemplate(), cl, observability{})}
		go hs.Serve(ln)
		t.Cleanup(func() { hs.Close(); e.Close(); cl.Close() })
		engines[i] = e
	}

	body := graphBody(t)
	for _, target := range addrs {
		resp, err := http.Post("http://"+target+"/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /analyze via %s: %v", target, err)
		}
		var reply struct {
			Result *engine.Result `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze via %s: status %d, err %v", target, resp.StatusCode, err)
		}
		if reply.Result.Throughput == nil || !reply.Result.Throughput.Optimal {
			t.Fatalf("analyze via %s: %+v", target, reply.Result)
		}
	}
	var evals uint64
	for _, e := range engines {
		evals += e.Stats().Evaluations
	}
	if evals != 1 {
		t.Fatalf("fleet evaluations = %d, want 1 (shared result space)", evals)
	}

	// /stats on any replica reports the fleet tier alongside memory.
	resp, err := http.Get("http://" + addrs[0] + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats engine.Stats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	tiers := map[string]bool{}
	for _, ts := range stats.CacheTiers {
		tiers[ts.Tier] = true
	}
	if !tiers["memory"] || !tiers["fleet"] {
		t.Fatalf("stats.CacheTiers = %+v, want memory and fleet tiers", stats.CacheTiers)
	}
}

// TestWriteStatsFileAtomic: the -stats-out snapshot lands via rename, so a
// concurrent reader sees either the old or the new file, never a torn one
// — and no temp debris is left behind.
func TestWriteStatsFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stats.json")
	if err := os.WriteFile(path, []byte("{\"old\": true}"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Config{Workers: 1})
	defer e.Close()
	if err := writeStatsFile(path, e.Stats()); err != nil {
		t.Fatalf("writeStatsFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s engine.Stats
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if s.Workers != 1 {
		t.Fatalf("snapshot content wrong: %+v", s)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	// Unwritable target directory surfaces as an error, not a partial file.
	if err := writeStatsFile(filepath.Join(dir, "missing", "stats.json"), e.Stats()); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
