package main

import (
	"kiter/internal/engine"
	"kiter/internal/resilience"
	"kiter/internal/telemetry"
)

// registerBuildInfo exposes the binary's build block as the conventional
// constant-1 info gauge.
func registerBuildInfo(reg *telemetry.Registry, b buildInfo) {
	if reg == nil {
		return
	}
	reg.Collect(func(x *telemetry.ExpoWriter) {
		x.Family("kiter_build_info", "gauge", "Build metadata of the serving binary; value is always 1.")
		x.Sample("kiter_build_info", 1,
			"version", b.Version, "goVersion", b.GoVersion, "revision", b.Revision)
	})
}

// registerEngineCollector maps the engine's Stats snapshot onto Prometheus
// families at scrape time. The engine's own counters (counters struct,
// cache tiers, cluster peers) stay the single source of truth — the
// collector re-reads them on every GET /metrics instead of double-counting
// into separate instruments.
func registerEngineCollector(reg *telemetry.Registry, e *engine.Engine) {
	if reg == nil || e == nil {
		return
	}
	reg.Collect(func(x *telemetry.ExpoWriter) {
		s := e.Stats()

		counter := func(name, help string, v uint64) {
			x.Family(name, "counter", help)
			x.Sample(name, float64(v))
		}
		gauge := func(name, help string, v float64) {
			x.Family(name, "gauge", help)
			x.Sample(name, v)
		}

		counter("kiter_engine_submitted_total", "Submit calls accepted by the engine.", s.Submitted)
		counter("kiter_engine_cache_hits_total", "Submissions answered from the memo cache.", s.CacheHits)
		counter("kiter_engine_cache_misses_total", "Submissions that missed the memo cache.", s.CacheMisses)
		counter("kiter_engine_deduped_total", "Submissions coalesced onto an in-flight identical job.", s.Deduped)
		counter("kiter_engine_evaluations_total", "Jobs computed by local workers.", s.Evaluations)
		counter("kiter_engine_remote_results_total", "Jobs answered by a cluster peer.", s.RemoteResults)
		counter("kiter_engine_errors_total", "Failed evaluations.", s.Errors)
		counter("kiter_engine_cancelled_total", "Abandoned evaluations.", s.Cancelled)
		counter("kiter_engine_rejected_total", "Submissions shed under overload.", s.Rejected)
		counter("kiter_panics_total", "Solver panics recovered into job errors (also counted under errors).", s.Panics)
		counter("kiter_race_extra_slots_total", "Evaluation slots borrowed for extra race contestants.", s.RaceExtraSlots)
		counter("kiter_race_starved_total", "Races that found fewer free slots than contestants.", s.RaceStarved)
		counter("kiter_engine_claims_granted_total", "Cross-process claims granted to this replica (it went on to evaluate).", s.ClaimsGranted)
		counter("kiter_engine_claims_served_total", "Submissions answered with a peer's claimed result (also counted under remote results).", s.ClaimsServed)

		gauge("kiter_engine_workers", "Configured worker pool size.", float64(s.Workers))
		gauge("kiter_engine_pending", "Jobs submitted but not yet finished.", float64(s.Pending))
		gauge("kiter_engine_cache_entries", "Memoized results currently stored (summed over tiers).", float64(s.CacheEntries))

		x.Family("kiter_race_wins_total", "counter", "Portfolio-race victories per contestant method.")
		for _, m := range []string{"kiter", "periodic", "symbolic"} {
			x.Sample("kiter_race_wins_total", float64(s.RaceWins[m]), "method", m)
		}
		if len(s.RaceWinsByCategory) > 0 {
			x.Family("kiter_race_category_wins_total", "counter",
				"Portfolio-race victories by graph-size category and method.")
			for _, cat := range []string{"tiny", "small", "medium", "large"} {
				for m, v := range s.RaceWinsByCategory[cat] {
					x.Sample("kiter_race_category_wins_total", float64(v), "category", cat, "method", m)
				}
			}
		}

		if len(s.CacheTiers) > 0 {
			x.Family("kiter_cache_tier_hits_total", "counter", "Memo-cache lookups served by this tier.")
			for _, t := range s.CacheTiers {
				x.Sample("kiter_cache_tier_hits_total", float64(t.Hits), "tier", t.Tier)
			}
			x.Family("kiter_cache_tier_misses_total", "counter", "Memo-cache lookups that missed this tier.")
			for _, t := range s.CacheTiers {
				x.Sample("kiter_cache_tier_misses_total", float64(t.Misses), "tier", t.Tier)
			}
			x.Family("kiter_cache_tier_entries", "gauge", "Entries currently stored in this tier.")
			for _, t := range s.CacheTiers {
				x.Sample("kiter_cache_tier_entries", float64(t.Entries), "tier", t.Tier)
			}
			x.Family("kiter_cache_tier_bytes", "gauge", "Storage footprint of this tier, in bytes.")
			for _, t := range s.CacheTiers {
				x.Sample("kiter_cache_tier_bytes", float64(t.Bytes), "tier", t.Tier)
			}
		}

		if len(s.Cluster) > 0 {
			x.Family("kiter_cluster_peer_healthy", "gauge", "Local health view of the peer (1 = in the ring).")
			for _, p := range s.Cluster {
				v := 0.0
				if p.Healthy {
					v = 1
				}
				x.Sample("kiter_cluster_peer_healthy", v, "peer", p.Peer)
			}
			x.Family("kiter_cluster_forwarded_total", "counter", "Jobs forwarded to the peer with a result returned.")
			for _, p := range s.Cluster {
				x.Sample("kiter_cluster_forwarded_total", float64(p.Forwarded), "peer", p.Peer)
			}
			x.Family("kiter_cluster_failed_over_total", "counter", "Forward attempts that fell back to local evaluation.")
			for _, p := range s.Cluster {
				x.Sample("kiter_cluster_failed_over_total", float64(p.FailedOver), "peer", p.Peer)
			}
			x.Family("kiter_cluster_served_total", "counter", "Jobs evaluated locally on the peer's behalf.")
			for _, p := range s.Cluster {
				x.Sample("kiter_cluster_served_total", float64(p.Served), "peer", p.Peer)
			}
			x.Family("kiter_cluster_probes_total", "counter", "Health probes sent to the peer.")
			for _, p := range s.Cluster {
				x.Sample("kiter_cluster_probes_total", float64(p.Probes), "peer", p.Peer)
			}
			x.Family("kiter_cluster_retried_total", "counter", "Forward attempts retried after a first failure.")
			for _, p := range s.Cluster {
				x.Sample("kiter_cluster_retried_total", float64(p.Retried), "peer", p.Peer)
			}
			x.Family("kiter_cluster_breaker_state", "gauge",
				"Peer circuit-breaker state: 0 closed, 1 half-open, 2 open.")
			for _, p := range s.Cluster {
				x.Sample("kiter_cluster_breaker_state", breakerStateValue(p.BreakerState), "peer", p.Peer)
			}
			x.Family("kiter_cluster_breaker_opens_total", "counter", "Times the peer's circuit breaker opened.")
			for _, p := range s.Cluster {
				x.Sample("kiter_cluster_breaker_opens_total", float64(p.BreakerOpens), "peer", p.Peer)
			}
		}
	})
}

// breakerStateValue maps the wire state names onto the gauge encoding.
func breakerStateValue(state string) float64 {
	switch state {
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return 0
}

// registerAdmissionCollector exposes the admission controller's shed
// counter and live wait estimate at scrape time.
func registerAdmissionCollector(reg *telemetry.Registry, adm *resilience.Admission) {
	if reg == nil || adm == nil {
		return
	}
	reg.Collect(func(x *telemetry.ExpoWriter) {
		st := adm.Stats()
		x.Family("kiter_admission_shed_total", "counter",
			"Requests refused up front because their estimated queue wait exceeded the request budget.")
		x.Sample("kiter_admission_shed_total", float64(st.Shed))
		x.Family("kiter_admission_estimated_wait_seconds", "gauge",
			"Predicted queue wait for a job submitted now, in seconds.")
		x.Sample("kiter_admission_estimated_wait_seconds", st.EstimatedWaitMS/1000)
	})
}
