package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kiter/internal/engine"
	"kiter/internal/gen"
	"kiter/internal/sdf3x"
)

func testTemplate() requestTemplate {
	return requestTemplate{
		Method:   engine.MethodRace,
		Analyses: []engine.AnalysisKind{engine.AnalysisThroughput},
		Timeout:  time.Minute,
	}
}

func newTestServer(t *testing.T) *server {
	t.Helper()
	e := engine.New(engine.Config{Workers: 4})
	t.Cleanup(e.Close)
	return newServer(e, testTemplate(), nil, observability{})
}

func graphBody(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sdf3x.WriteJSON(&buf, gen.Figure2()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnalyzeBareGraph(t *testing.T) {
	srv := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(graphBody(t))))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp analyzeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || resp.Result.Throughput == nil {
		t.Fatalf("missing throughput: %s", rec.Body)
	}
	if !resp.Result.Throughput.Optimal {
		t.Fatal("result not optimal")
	}
	if resp.Stats != nil {
		t.Fatal("stats snapshot present without ?stats=1")
	}
}

// TestAnalyzeMinimalReplyShape pins the default /analyze reply to the
// minimal shape: a compact single-line body whose only key is "result" —
// no stats snapshot (opt-in via ?stats=1), no indentation. The stats
// snapshot grows with cluster/tier/race-category counters, so shipping it
// per request was pure hot-path bloat.
func TestAnalyzeMinimalReplyShape(t *testing.T) {
	srv := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(graphBody(t))))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	if strings.Contains(body, "\n  ") {
		t.Fatalf("/analyze response is pretty-printed:\n%s", body)
	}
	if n := strings.Count(strings.TrimSpace(body), "\n"); n != 0 {
		t.Fatalf("/analyze response spans %d extra lines", n)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &keys); err != nil {
		t.Fatal(err)
	}
	if _, ok := keys["stats"]; ok {
		t.Fatalf("default reply carries stats: %s", body)
	}
	if _, ok := keys["result"]; !ok || len(keys) != 1 {
		t.Fatalf("default reply keys = %v, want [result]", keys)
	}

	// Opting in brings the snapshot back.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze?stats=1", bytes.NewReader(graphBody(t))))
	var resp analyzeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil || resp.Stats.Submitted == 0 {
		t.Fatalf("?stats=1 reply carries no stats: %s", rec.Body)
	}

	// Human-facing endpoints keep the indented encoder.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if !strings.Contains(rec.Body.String(), "\n  ") {
		t.Fatal("/stats response is not pretty-printed")
	}
}

func TestAnalyzeEnvelopeAndCacheStats(t *testing.T) {
	srv := newTestServer(t)
	env := map[string]any{
		"graph":    json.RawMessage(graphBody(t)),
		"method":   "kiter",
		"analyses": []string{"throughput", "symbolic"},
	}
	body, _ := json.Marshal(env)
	var resp analyzeResponse
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze?stats=1", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	if resp.Result.Throughput == nil || resp.Result.Symbolic == nil {
		t.Fatalf("missing sections: %s", mustJSON(resp.Result))
	}
	if resp.Result.Throughput.Method != engine.MethodKIter {
		t.Fatalf("method = %s, want kiter", resp.Result.Throughput.Method)
	}
	if !resp.Result.CacheHit {
		t.Fatal("second identical request was not a cache hit")
	}
	if resp.Stats.CacheHits != 1 || resp.Stats.Evaluations != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 evaluation", resp.Stats)
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"not json", "nope"},
		{"no tasks", `{"name":"empty"}`},
		{"bad method", `{"graph":{"tasks":[{"name":"a","durations":[1]}]},"method":"bogus"}`},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze", strings.NewReader(c.body)))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (body %s)", c.name, rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/analyze", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /analyze: status = %d, want 405", rec.Code)
	}
}

func TestHealthzAndStats(t *testing.T) {
	srv := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var s engine.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("stats not decodable: %v", err)
	}
}

// TestBatchEndToEnd drives the batch front-end over a directory of ≥ 20
// generated suite graphs, twice — the second pass must be all cache hits.
func TestBatchEndToEnd(t *testing.T) {
	dir := t.TempDir()
	suite, err := gen.SuiteByName("mimicdsp", 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Graphs) < 20 {
		t.Fatalf("suite produced only %d graphs", len(suite.Graphs))
	}
	paths, err := gen.WriteSuite(dir, suite)
	if err != nil {
		t.Fatal(err)
	}

	e := engine.New(engine.Config{Workers: 4})
	t.Cleanup(e.Close)
	tmpl := testTemplate()
	tmpl.Method = engine.MethodKIter

	var out bytes.Buffer
	if err := runBatch(e, paths, tmpl, &out, false); err != nil {
		t.Fatalf("runBatch: %v\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "Ω ="); got != len(paths) {
		t.Fatalf("batch printed %d results for %d graphs:\n%s", got, len(paths), out.String())
	}
	s := e.Stats()
	if int(s.Evaluations) != len(paths) {
		t.Fatalf("evaluations = %d, want %d", s.Evaluations, len(paths))
	}

	out.Reset()
	if err := runBatch(e, paths, tmpl, &out, false); err != nil {
		t.Fatalf("second runBatch: %v", err)
	}
	if got := strings.Count(out.String(), "[cached]"); got != len(paths) {
		t.Fatalf("second pass had %d cache hits for %d graphs:\n%s", got, len(paths), out.String())
	}
}

// TestBatchNDJSON checks the streaming output contract: one parseable
// JSON object per graph carrying path and result, a single closing
// summary line, and failures reported inline rather than aborting.
func TestBatchNDJSON(t *testing.T) {
	dir := t.TempDir()
	paths, err := gen.WriteSuite(dir, gen.ActualDSP())
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, filepath.Join(dir, "missing.json"))

	e := engine.New(engine.Config{Workers: 4})
	t.Cleanup(e.Close)
	tmpl := testTemplate()
	tmpl.Method = engine.MethodKIter

	var out bytes.Buffer
	err = runBatch(e, paths, tmpl, &out, true)
	if err == nil || !strings.Contains(err.Error(), "1 of") {
		t.Fatalf("missing graph not counted: err=%v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(paths)+1 {
		t.Fatalf("got %d NDJSON lines for %d graphs (+1 summary):\n%s", len(lines), len(paths), out.String())
	}
	seen := map[string]bool{}
	failures := 0
	for _, line := range lines[:len(lines)-1] {
		var nl ndjsonLine
		if err := json.Unmarshal([]byte(line), &nl); err != nil {
			t.Fatalf("unparseable NDJSON line %q: %v", line, err)
		}
		if nl.Path == "" {
			t.Fatalf("line without path: %q", line)
		}
		seen[nl.Path] = true
		if nl.Error != "" {
			failures++
			continue
		}
		if nl.Result == nil || nl.Result.Throughput == nil || !nl.Result.Throughput.Optimal {
			t.Fatalf("line without optimal throughput result: %q", line)
		}
	}
	if len(seen) != len(paths) {
		t.Fatalf("streamed %d distinct paths, want %d", len(seen), len(paths))
	}
	if failures != 1 {
		t.Fatalf("streamed %d failures, want 1", failures)
	}
	var sum ndjsonSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("unparseable summary %q: %v", lines[len(lines)-1], err)
	}
	if sum.Summary.Graphs != len(paths) || sum.Summary.Failed != 1 {
		t.Fatalf("summary = %+v, want %d graphs / 1 failed", sum.Summary, len(paths))
	}
	if sum.Summary.Stats.Evaluations == 0 {
		t.Fatal("summary carries no engine stats")
	}
}

func TestBatchManifestAndErrors(t *testing.T) {
	dir := t.TempDir()
	paths, err := gen.WriteSuite(dir, gen.ActualDSP())
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "manifest.txt")
	var sb strings.Builder
	sb.WriteString("# batch manifest\n\n")
	for _, p := range paths {
		sb.WriteString(filepath.Base(p) + "\n")
	}
	sb.WriteString("missing.json\n")
	if err := os.WriteFile(manifest, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := collectBatchPaths(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(paths)+1 {
		t.Fatalf("manifest resolved %d paths, want %d", len(got), len(paths)+1)
	}

	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(e.Close)
	var out bytes.Buffer
	err = runBatch(e, got, testTemplate(), &out, false)
	if err == nil || !strings.Contains(err.Error(), "1 of") {
		t.Fatalf("missing graph not reported: err=%v\n%s", err, out.String())
	}

	if _, err := collectBatchPaths(filepath.Join(dir, "does-not-exist")); err == nil {
		t.Fatal("missing batch argument accepted")
	}
}

func TestCollectBatchPathsDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := gen.WriteSuite(dir, gen.ActualDSP()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := collectBatchPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(gen.ActualDSP().Graphs) {
		t.Fatalf("dir walk found %d graphs, want %d", len(paths), len(gen.ActualDSP().Graphs))
	}
	for _, p := range paths {
		if strings.HasSuffix(p, ".txt") {
			t.Fatalf("non-graph file collected: %s", p)
		}
	}
}

func mustJSON(v any) string {
	b, _ := json.MarshalIndent(v, "", "  ")
	return string(b)
}
