package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"kiter/internal/faultinject"
	"kiter/internal/telemetry"
)

// postTracedAnalyze POSTs a graph to one replica and returns the trace ID
// the server exposed on the response.
func postTracedAnalyze(t *testing.T, addr string, body []byte) string {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /analyze via %s: %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /analyze via %s: status %d", addr, resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatalf("analyze via %s: no X-Request-ID response header", addr)
	}
	tid := resp.Header.Get("X-Kiter-Trace-Id")
	if tid == "" {
		t.Fatalf("analyze via %s: no X-Kiter-Trace-Id response header", addr)
	}
	var reply analyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("decoding analyze reply: %v", err)
	}
	if reply.Result == nil || reply.Result.Throughput == nil {
		t.Fatalf("analyze via %s: no throughput result", addr)
	}
	return tid
}

// stitchedTrace is the GET /debug/traces/{id}?fleet=1 reply shape.
type stitchedTrace struct {
	TraceID   string                `json:"traceId"`
	Processes []string              `json:"processes"`
	Records   int                   `json:"records"`
	Detached  int                   `json:"detached"`
	Spans     []*telemetry.SpanNode `json:"spans"`
}

// fetchStitched pulls one trace's fleet-wide stitched tree from addr.
func fetchStitched(t *testing.T, addr, traceID string) stitchedTrace {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/debug/traces/" + traceID + "?fleet=1")
	if err != nil {
		t.Fatalf("GET /debug/traces/%s?fleet=1: %v", traceID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s?fleet=1: status %d", traceID, resp.StatusCode)
	}
	var st stitchedTrace
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding stitched trace: %v", err)
	}
	return st
}

// walkSpans applies f to every node of every tree.
func walkSpans(nodes []*telemetry.SpanNode, f func(*telemetry.SpanNode)) {
	for _, n := range nodes {
		if n == nil {
			continue
		}
		f(n)
		walkSpans(n.Children, f)
	}
}

// spanProcesses collects the distinct "process" attrs stamped on stitched
// subtree roots — how many processes contributed spans to one tree.
func spanProcesses(nodes []*telemetry.SpanNode) map[string]bool {
	procs := map[string]bool{}
	walkSpans(nodes, func(n *telemetry.SpanNode) {
		if p, ok := n.Attrs["process"].(string); ok && p != "" {
			procs[p] = true
		}
	})
	return procs
}

// hasEvent reports whether any span in the trees carries the named event.
func hasEvent(nodes []*telemetry.SpanNode, name string) bool {
	found := false
	walkSpans(nodes, func(n *telemetry.SpanNode) {
		for _, ev := range n.Events {
			if ev.Name == name {
				found = true
			}
		}
	})
	return found
}

// TestFleetStitchedTrace is the distributed-tracing acceptance test: a
// 3-replica fleet serves forwarded /analyze requests, and the stitched
// ?fleet=1 view of a forwarded request's trace is ONE tree containing
// spans recorded by at least two processes, joined across the HTTP hop by
// parent span ID. Then, with the forward chaos point armed, the severed
// forward must leave chaos.severed and fallback.local span events in the
// trace instead of remote spans.
func TestFleetStitchedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e under -short")
	}
	body := graphBody(t)

	// Clean path: the same graph posted through every replica — the two
	// non-owners forward it to the owner's engine, so their traces span
	// two processes.
	reps, stop := startKiterdFleet(t, 3)
	multi := 0
	for _, r := range reps {
		tid := postTracedAnalyze(t, r.addr, body)
		st := fetchStitched(t, r.addr, tid)
		if st.Records == 0 || len(st.Spans) == 0 {
			t.Fatalf("trace %s via %s: empty stitched view: %+v", tid, r.addr, st)
		}
		procs := spanProcesses(st.Spans)
		if len(st.Processes) >= 2 {
			multi++
			// A genuinely distributed trace: the remote handler's subtree
			// must be grafted under the local cluster.forward span, not
			// floating detached, and the span-level process stamps must
			// agree with the record-level processes list.
			if st.Detached != 0 {
				t.Fatalf("trace %s: %d detached subtrees in %+v", tid, st.Detached, st)
			}
			if len(st.Spans) != 1 {
				t.Fatalf("trace %s: stitched into %d roots, want 1", tid, len(st.Spans))
			}
			if len(procs) < 2 {
				t.Fatalf("trace %s: span process stamps %v, want >= 2", tid, procs)
			}
			remote := false
			walkSpans(st.Spans, func(n *telemetry.SpanNode) {
				if n.Name == "cluster.evaluate" {
					remote = true
				}
			})
			if !remote {
				t.Fatalf("trace %s: no cluster.evaluate span in stitched tree", tid)
			}
		}
	}
	if multi == 0 {
		t.Fatal("no request produced a multi-process stitched trace (no forward happened?)")
	}
	stop()

	// Severed path: every forward attempt fails at the chaos point. The
	// non-owner replicas must fall back to local evaluation and their
	// traces must explain the miss as span events.
	set, err := faultinject.Parse("dispatch.forward:error")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(set)
	defer faultinject.Activate(nil)

	reps, _ = startKiterdFleet(t, 3)
	severed, fellBack := false, false
	for _, r := range reps {
		tid := postTracedAnalyze(t, r.addr, body)
		st := fetchStitched(t, r.addr, tid)
		if hasEvent(st.Spans, "chaos.severed") {
			severed = true
		}
		if hasEvent(st.Spans, "fallback.local") {
			fellBack = true
		}
	}
	if !severed || !fellBack {
		t.Fatalf("severed forwards left no explanation: chaos.severed=%v fallback.local=%v",
			severed, fellBack)
	}
}
