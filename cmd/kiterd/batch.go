package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kiter/internal/engine"
	"kiter/internal/sdf3x"
)

// collectBatchPaths resolves the -batch argument: a directory yields every
// .json/.xml file under it (sorted); a regular file is read as a manifest
// of one graph path per line (relative paths resolve against the manifest
// location; blank lines and #-comments are skipped).
func collectBatchPaths(arg string) ([]string, error) {
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		var paths []string
		err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			switch strings.ToLower(filepath.Ext(path)) {
			case ".json", ".xml":
				paths = append(paths, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Strings(paths)
		if len(paths) == 0 {
			return nil, fmt.Errorf("no .json or .xml graphs under %s", arg)
		}
		return paths, nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Dir(arg)
	var paths []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !filepath.IsAbs(line) {
			line = filepath.Join(base, line)
		}
		paths = append(paths, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("manifest %s lists no graphs", arg)
	}
	return paths, nil
}

// batchLine is one graph's outcome in batch mode.
type batchLine struct {
	path string
	res  *engine.Result
	err  error
}

// ndjsonLine is the JSON shape of one streamed batch result.
type ndjsonLine struct {
	Path   string         `json:"path"`
	Error  string         `json:"error,omitempty"`
	Result *engine.Result `json:"result,omitempty"`
}

// ndjsonSummary closes an NDJSON stream with the batch totals.
type ndjsonSummary struct {
	Summary struct {
		Graphs    int          `json:"graphs"`
		Failed    int          `json:"failed"`
		ElapsedMS float64      `json:"elapsed_ms"`
		Stats     engine.Stats `json:"stats"`
	} `json:"summary"`
}

// runBatch streams every graph through the engine in parallel, printing
// one line per graph in input order plus a closing stats summary. With
// ndjson, results are instead emitted as one JSON object per line in
// completion order, the moment each job finishes — a pipeline consumer
// sees the first result while the batch is still running — followed by a
// single {"summary": …} line. Graphs that fail to load or analyze are
// reported but do not abort the batch; the returned error counts them.
func runBatch(e *engine.Engine, paths []string, tmpl requestTemplate, out io.Writer, ndjson bool) error {
	// Input-order printing needs every result; the NDJSON stream does not,
	// so in that mode results are dropped as soon as they are written — a
	// sweep batch holds O(in-flight) results, not O(batch).
	var lines []batchLine
	if !ndjson {
		lines = make([]batchLine, len(paths))
	}
	var ndjsonFailed atomic.Int64
	var outMu sync.Mutex
	emit := func(l batchLine) {
		nl := ndjsonLine{Path: l.path, Result: l.res}
		if l.err != nil {
			nl.Error = l.err.Error()
		}
		buf, err := json.Marshal(nl)
		if err != nil {
			buf, _ = json.Marshal(ndjsonLine{Path: l.path, Error: err.Error()})
		}
		outMu.Lock()
		defer outMu.Unlock()
		out.Write(buf)
		io.WriteString(out, "\n")
	}
	// The engine's worker pool bounds compute; this semaphore, acquired
	// before each goroutine is spawned, bounds live submitter goroutines
	// (and therefore in-flight jobs) below the engine's load-shedding
	// threshold — including a user-lowered -max-pending — even for very
	// large manifests.
	pool := e.Stats()
	width := 2 * pool.Workers
	if pool.MaxPending > 0 && pool.MaxPending < width {
		width = pool.MaxPending
	}
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	start := time.Now()
	for i, path := range paths {
		i, path := i, path
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			l := analyzeFile(e, path, tmpl)
			if ndjson {
				if l.err != nil {
					ndjsonFailed.Add(1)
				}
				emit(l)
				return
			}
			lines[i] = l
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := int(ndjsonFailed.Load())
	for _, l := range lines {
		if l.err != nil {
			failed++
			fmt.Fprintf(out, "%-40s error: %v\n", filepath.Base(l.path), l.err)
			continue
		}
		fmt.Fprintf(out, "%-40s %s\n", filepath.Base(l.path), formatResult(l.res))
	}
	s := e.Stats()
	if ndjson {
		var sum ndjsonSummary
		sum.Summary.Graphs = len(paths)
		sum.Summary.Failed = failed
		sum.Summary.ElapsedMS = float64(elapsed.Microseconds()) / 1000
		sum.Summary.Stats = s
		buf, err := json.Marshal(sum)
		if err == nil {
			out.Write(buf)
			io.WriteString(out, "\n")
		}
	} else {
		fmt.Fprintf(out, "\nbatch: %d graphs, %d failed in %v (%d evaluated, %d cache hits, %d deduped, hit rate %.0f%%, mean eval %.1fms)\n",
			len(paths), failed, elapsed.Round(time.Millisecond), s.Evaluations, s.CacheHits, s.Deduped, 100*s.HitRate, s.MeanLatencyMS)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d graphs failed", failed, len(paths))
	}
	return nil
}

// analyzeFile loads one graph file and submits it.
func analyzeFile(e *engine.Engine, path string, tmpl requestTemplate) batchLine {
	g, err := sdf3x.ReadFile(path)
	if err != nil {
		return batchLine{path: path, err: err}
	}
	ctx := context.Background()
	if tmpl.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, tmpl.Timeout)
		defer cancel()
	}
	res, err := e.Submit(ctx, &engine.Request{
		Graph:           g,
		Analyses:        tmpl.Analyses,
		Method:          tmpl.Method,
		ApplyCapacities: tmpl.Capacities,
	})
	return batchLine{path: path, res: res, err: err}
}

// formatResult renders the batch line for one result.
func formatResult(res *engine.Result) string {
	var sb strings.Builder
	if t := res.Throughput; t != nil {
		if t.Error != "" {
			fmt.Fprintf(&sb, "throughput error: %s", t.Error)
		} else {
			fmt.Fprintf(&sb, "Ω = %-14s Th = %-14s %-9s optimal=%v", t.Period, t.Throughput, t.Method, t.Optimal)
		}
	}
	if s := res.Schedule; s != nil {
		if s.Error != "" {
			fmt.Fprintf(&sb, "  schedule error: %s", s.Error)
		} else {
			fmt.Fprintf(&sb, "  latency = %s", s.Latency)
		}
	}
	if s := res.Symbolic; s != nil && res.Throughput == nil {
		if s.Error != "" {
			fmt.Fprintf(&sb, "  symbolic error: %s", s.Error)
		} else {
			fmt.Fprintf(&sb, "Ω = %-14s (symbolic)", s.Period)
		}
	}
	if s := res.Sizing; s != nil {
		if s.Error != "" {
			fmt.Fprintf(&sb, "  sizing error: %s", s.Error)
		} else {
			total := int64(0)
			for _, c := range s.Capacities {
				total += c
			}
			fmt.Fprintf(&sb, "  capacity = %d over %d buffers", total, len(s.Capacities))
		}
	}
	if res.CacheHit {
		sb.WriteString("  [cached]")
	} else if res.Deduped {
		sb.WriteString("  [deduped]")
	} else {
		fmt.Fprintf(&sb, "  [%.1fms]", res.ElapsedMS)
	}
	return sb.String()
}
